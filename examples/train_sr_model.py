#!/usr/bin/env python3
"""Train a super-resolution model on rendered game content from scratch.

Shows the full training workflow of :mod:`repro.sr.training`: render HR
frames, extract codec-aware LR/HR patch pairs, train an EDSR with the
numpy autograd framework, and evaluate the gain over bilinear
interpolation on a held-out game.

Run:  python examples/train_sr_model.py            (about two minutes)
"""

from __future__ import annotations

import time

from repro.metrics import psnr
from repro.neural import EDSR
from repro.render import build_game
from repro.sr import SRRunner, bilinear, extract_patches, resize, train_sr_model

TRAIN_GAMES = ("G2", "G6", "G9")  # train on these ...
HELDOUT_GAME = "G4"  # ... evaluate on this one


def main() -> None:
    print("rendering training frames...")
    frames = []
    for game_id in TRAIN_GAMES:
        game = build_game(game_id)
        frames += [game.render_frame(i * 9, 448, 256).color for i in range(2)]

    print("extracting codec-aware patch pairs...")
    dataset = extract_patches(
        frames, scale=2, patch_lr=20, per_frame=24, seed=1, codec_quality=70
    )
    print(f"  {len(dataset)} patch pairs")

    model = EDSR(scale=2, n_resblocks=2, n_feats=16, seed=5)
    print(f"training {model.describe()} ...")
    start = time.time()
    report = train_sr_model(model, dataset, epochs=10, batch_size=8, lr=1.5e-3)
    print(
        f"  {report.epochs} epochs in {time.time() - start:.0f}s, "
        f"L1 loss {report.initial_loss:.4f} -> {report.final_loss:.4f}"
    )

    print(f"\nevaluating on held-out {HELDOUT_GAME}...")
    hr = build_game(HELDOUT_GAME).render_frame(3, 448, 256).color
    lr = resize(hr, 128, 224, "bilinear")
    sr_out = SRRunner(model).upscale(lr)
    bl = bilinear(lr, 256, 448)
    print(f"  bilinear: {psnr(hr, bl):6.2f} dB")
    print(f"  our EDSR: {psnr(hr, sr_out):6.2f} dB  ({psnr(hr, sr_out) - psnr(hr, bl):+.2f} dB)")


if __name__ == "__main__":
    main()
