#!/usr/bin/env python3
"""ASCII visualization of the depth-guided RoI detection (Fig. 5 + 8).

Renders a frame of each selected game, runs the Fig. 8 preprocessing, and
prints the depth map, the processed importance map, and the detected RoI
as terminal art — handy for eyeballing what the detector keys on without
an image viewer.

Run:  python examples/roi_visualizer.py [G1 ... G10]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core import RoIDetector
from repro.render import build_game

W, H = 112, 64
CELL = 4  # terminal cell covers CELL x CELL pixels
SHADES = " .:-=+*#%@"


def ascii_map(values: np.ndarray, box=None) -> str:
    """Downsample a [0,1] map to terminal cells, darker = larger value."""
    h, w = values.shape
    rows = []
    for cy in range(0, h - CELL + 1, CELL):
        row = []
        for cx in range(0, w - CELL + 1, CELL):
            inside_roi = box is not None and box.contains_point(cx + CELL / 2, cy + CELL / 2)
            value = values[cy : cy + CELL, cx : cx + CELL].mean()
            char = SHADES[min(int(value * len(SHADES)), len(SHADES) - 1)]
            row.append(f"[{char}]" if inside_roi else f" {char} ")
        rows.append("".join(row))
    return "\n".join(rows)


def show(game_id: str) -> None:
    game = build_game(game_id)
    frame = game.render_frame(5, W, H)
    detector = RoIDetector(24)
    detection = detector.detect(frame.depth)
    box = detection.box

    print(f"\n=== {game_id}: {game.title} ({game.genre}) ===")
    print("\nnearness map (1 - depth; darker glyphs = nearer):")
    print(ascii_map(1.0 - frame.depth))
    print("\nprocessed importance map with detected RoI ([x] cells):")
    processed = detection.preprocess.processed
    peak = processed.max() or 1.0
    print(ascii_map(processed / peak, box))
    print(
        f"\nRoI: {box.width}x{box.height} at ({box.x}, {box.y}); "
        f"foreground threshold {detection.preprocess.foreground_threshold:.3f}; "
        f"selected layer {detection.preprocess.selected_layer}"
    )


def main() -> None:
    game_ids = sys.argv[1:] or ["G1", "G5", "G10"]
    for game_id in game_ids:
        show(game_id)


if __name__ == "__main__":
    main()
