#!/usr/bin/env python3
"""Device capability survey: RoI sizing across real and hypothetical clients.

Reproduces the paper's Sec. IV-B1 negotiation for the two evaluation
devices and extrapolates it to other plausible clients (a budget phone
with a weak NPU, a high-refresh gaming tablet) — showing when
GameStreamSR fits and when a device cannot even cover the foveal minimum
in real time.

Run:  python examples/device_capability.py
"""

from __future__ import annotations

from repro.core import foveal_diameter_inches, min_roi_side_px, plan_roi_window
from repro.platform import npu_sr_latency_ms, pixel_7_pro, samsung_tab_s8
from repro.platform.eyetracking import eyetracking_cost


def describe(device, deadline_ms: float = 16.66) -> None:
    print(f"\n--- {device.name} ---")
    diameter = foveal_diameter_inches(device.viewing_distance_cm)
    print(
        f"display {device.display.width_px}x{device.display.height_px} @ "
        f"{device.display.ppi:.0f} PPI, viewed from {device.viewing_distance_cm:.0f} cm"
    )
    print(f"foveal diameter on screen: {diameter:.2f} in")
    print(f"foveal minimum RoI side (720p frame): {min_roi_side_px(device)} px")
    try:
        plan = plan_roi_window(device, deadline_ms=deadline_ms)
    except RuntimeError as error:
        print(f"NOT VIABLE: {error}")
        return
    latency = npu_sr_latency_ms(plan.side**2, device)
    print(
        f"real-time maximum: {plan.max_side} px -> chosen window "
        f"{plan.side}x{plan.side} ({latency:.1f} ms on the NPU)"
    )
    gaze = eyetracking_cost(device)
    print(
        f"for contrast, camera eye tracking would draw {gaze.power_w:.1f} W "
        f"(~{gaze.battery_drain_pct_per_hour:.0f}%/h of a phone battery); "
        "depth-guided RoI costs the client nothing."
    )


def main() -> None:
    s8 = samsung_tab_s8()
    pixel = pixel_7_pro()

    describe(s8)
    describe(pixel)

    # A budget phone: same display class as the Pixel but a 6x slower NPU.
    budget = pixel.with_overrides(
        name="hypothetical_budget_phone",
        npu_a_ms_per_px=pixel.npu_a_ms_per_px * 6,
    )
    describe(budget)

    # A 120 Hz gaming tablet: the deadline halves to 8.33 ms.
    print("\n=== same S8 hardware, but targeting 120 FPS ===")
    describe(s8.with_overrides(name="samsung_tab_s8_at_120hz"), deadline_ms=8.33)


if __name__ == "__main__":
    main()
