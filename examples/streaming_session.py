#!/usr/bin/env python3
"""A full game-streaming session: GameStreamSR vs the NEMO baseline.

Streams a GOP of the Forza-like racing workload end-to-end (game engine
-> render -> RoI detect -> encode -> network -> decode -> upscale ->
display) on a Pixel 7 Pro model, for both client designs, and prints the
frame-rate / motion-to-photon / energy comparison of the paper's Fig. 10
and 11 — plus measured PSNR against the native HR render.

Run:  python examples/streaming_session.py
"""

from __future__ import annotations

from repro.core import plan_roi_window
from repro.platform import pixel_7_pro
from repro.render import build_game
from repro.sr import SRRunner, default_sr_model
from repro.streaming import (
    GameStreamServer,
    GameStreamSRClient,
    NemoClient,
    StreamGeometry,
    run_session,
)

N_FRAMES = 12
GOP = 12


def main() -> None:
    device = pixel_7_pro()
    plan = plan_roi_window(device)
    runner = SRRunner(default_sr_model())
    geometry = StreamGeometry()  # 128x224 eval <-> 720p modeled

    results = {}
    for label, client, roi_side in (
        ("GameStreamSR", GameStreamSRClient(device, runner, modeled_roi_side=plan.side),
         plan.side_for_frame(geometry.eval_lr_height)),
        ("NEMO (SOTA)", NemoClient(device, runner), None),
    ):
        server = GameStreamServer(
            build_game("G10"), geometry, roi_side=roi_side, gop_size=GOP, quality=70
        )
        print(f"streaming {N_FRAMES} frames of {server.game.title} with {label}...")
        results[label] = run_session(
            server, client, n_frames=N_FRAMES, evaluate_quality=True
        )

    print(f"\n{'metric':38s} {'GameStreamSR':>14s} {'NEMO (SOTA)':>14s}")
    ours, nemo = results["GameStreamSR"], results["NEMO (SOTA)"]
    rows = [
        ("reference upscale latency (ms)", ours.mean_upscale_ms(True), nemo.mean_upscale_ms(True)),
        ("non-reference upscale latency (ms)", ours.mean_upscale_ms(False), nemo.mean_upscale_ms(False)),
        ("upscaling frame rate (FPS)", ours.upscale_fps(), nemo.upscale_fps()),
        ("reference-frame MTP (ms)", ours.mean_mtp(True).total_ms, nemo.mean_mtp(True).total_ms),
        ("energy per frame, GOP-60 (mJ)", ours.gop_weighted_energy(60).total, nemo.gop_weighted_energy(60).total),
        ("mean PSNR vs native render (dB)", ours.mean_psnr(), nemo.mean_psnr()),
        ("stream bitrate (Mbps)", ours.mean_bitrate_mbps(), nemo.mean_bitrate_mbps()),
    ]
    for name, a, b in rows:
        print(f"{name:38s} {a:14.2f} {b:14.2f}")

    print(
        f"\nref-frame speedup: {nemo.mean_upscale_ms(True) / ours.mean_upscale_ms(True):.1f}x   "
        f"MTP improvement: {nemo.mean_mtp(True).total_ms / ours.mean_mtp(True).total_ms:.1f}x   "
        f"energy savings: {(1 - ours.gop_weighted_energy(60).total / nemo.gop_weighted_energy(60).total) * 100:.0f}%"
    )
    print(f"60 FPS conformant: GameStreamSR={ours.realtime_conformant()}, NEMO={nemo.realtime_conformant()}")


if __name__ == "__main__":
    main()
