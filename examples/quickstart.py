#!/usr/bin/env python3
"""Quickstart: one frame through the whole GameStreamSR idea.

Renders a game frame with its depth buffer, negotiates the RoI window for
a Samsung Tab S8, detects the depth-guided RoI, hybrid-upscales the frame
(DNN on the RoI, bilinear elsewhere), and compares quality and modeled
latency against plain bilinear and full-frame DNN SR.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import RoIDetector, RoIAssistedUpscaler, plan_roi_window
from repro.metrics import psnr
from repro.platform import npu_sr_latency_ms, samsung_tab_s8
from repro.render import build_game
from repro.sr import SRRunner, bilinear, default_sr_model

LR_H, LR_W = 128, 224  # reduced stand-in for 720p (see DESIGN.md scale notes)


def main() -> None:
    # --- session start: the client benchmarks its NPU (Fig. 6 step-1) ----
    device = samsung_tab_s8()
    plan = plan_roi_window(device)
    print(f"device: {device.name}")
    print(
        f"RoI window plan: foveal minimum {plan.min_side}px, real-time "
        f"maximum {plan.max_side}px -> using {plan.side}px (on 720p frames)"
    )

    # --- server: render the frame + depth buffer and detect the RoI ------
    game = build_game("G3")  # the Witcher-3-like RPG scene
    hr_truth = game.render_frame(0, LR_W * 2, LR_H * 2).color
    # Anti-aliased LR stream (what the server would encode).
    lr = hr_truth.reshape(LR_H, 2, LR_W, 2, 3).mean(axis=(1, 3))
    depth = game.render_frame(0, LR_W, LR_H).depth

    detector = RoIDetector(plan.side_for_frame(LR_H))
    roi = detector.detect(depth).box
    print(f"\ngame: {game.title} ({game.genre})")
    print(f"detected RoI: {roi.width}x{roi.height} at ({roi.x}, {roi.y})")

    # --- client: hybrid upscale (Fig. 9) ---------------------------------
    print("\nloading SR model (first run trains + caches it)...")
    runner = SRRunner(default_sr_model())
    upscaler = RoIAssistedUpscaler(runner)
    hybrid = upscaler.upscale(lr, roi)

    bilinear_only = bilinear(lr, LR_H * 2, LR_W * 2)
    full_sr = runner.upscale_tiled(lr, tile=72)

    # --- compare quality and modeled latency ------------------------------
    print("\n                         PSNR vs native render    modeled NPU latency")
    rows = [
        ("bilinear only", psnr(hr_truth, bilinear_only), 0.0),
        ("GameStreamSR (RoI DNN)", psnr(hr_truth, hybrid.frame), npu_sr_latency_ms(plan.side**2, device)),
        ("full-frame DNN SR", psnr(hr_truth, full_sr), npu_sr_latency_ms(1280 * 720, device)),
    ]
    for name, quality, latency in rows:
        deadline = "real-time" if latency <= 16.66 else "MISSES 16.66 ms"
        print(f"  {name:24s} {quality:6.2f} dB              {latency:6.1f} ms  ({deadline})")

    print(
        "\nGameStreamSR recovers DNN quality where the player looks while "
        "staying inside the 60 FPS budget."
    )


if __name__ == "__main__":
    main()
