"""Codec trajectory benchmark: motion search, compensation, entropy coding.

Measures the fast codec path (successive-elimination pruned full search,
vectorized compensation, batch bit-packed Exp-Golomb coding, buffered
bitstream reads) against the frozen pre-PR reference implementation in
``_legacy_codec.py`` and writes the numbers to ``BENCH_codec.json`` at the
repo root so the speedup trajectory survives across PRs.  Run::

    PYTHONPATH=src python benchmarks/bench_codec.py          # full run
    PYTHONPATH=src python benchmarks/bench_codec.py --smoke  # seconds, CI

The full run uses the default 256x448 G3 rendered sequence and asserts the
PR's acceptance criteria: >= 4x ``encode_frame``, >= 3x motion estimation,
full-search motion vectors exactly equal to legacy, bitstreams
byte-identical to legacy, and a diamond-mode PSNR delta <= 0.3 dB vs full
search.  Smoke mode swaps in a small frame to exercise every path and
exactness assertion quickly (no speedup floors — tiny shapes don't
amortize anything) and writes ``BENCH_codec.smoke.json`` instead.

Both paths run in the same process: the codec allocates little, so no
allocator isolation is needed (unlike ``bench_hotpath.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.codec.bitstream import BitReader, BitWriter  # noqa: E402
from repro.codec.blocks import split_blocks  # noqa: E402
from repro.codec.color import rgb_to_ycbcr  # noqa: E402
from repro.codec.decoder import VideoDecoder  # noqa: E402
from repro.codec.encoder import VideoEncoder  # noqa: E402
from repro.codec.entropy import decode_blocks, encode_blocks  # noqa: E402
from repro.codec.motion import compensate, estimate_motion  # noqa: E402
from repro.codec.transform import forward_dct, quantize  # noqa: E402
from repro.metrics.psnr import psnr  # noqa: E402

from conftest import write_bench_json  # noqa: E402
from _legacy_codec import (  # noqa: E402
    LegacyBitReader,
    LegacyBitWriter,
    LegacyVideoDecoder,
    LegacyVideoEncoder,
    legacy_compensate,
    legacy_decode_blocks,
    legacy_encode_blocks,
    legacy_estimate_motion,
)

QUALITY = 60
GOP = 60  # paper default: the sequence below is 1 I-frame + P-frames


def _time(fn, repeats: int = 3) -> float:
    """Best-of-N wall time in seconds (fn is called once to warm up)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _frames(smoke: bool) -> list[np.ndarray]:
    from repro.analysis.prerender import rendered_sequence

    if smoke:
        seq = rendered_sequence("G3", width=96, height=64, n_frames=2)
        return [seq.frame(i).color for i in range(2)]
    seq = rendered_sequence("G3", width=448, height=256, n_frames=4)
    return [seq.frame(i).color for i in range(4)]


def _luma(frame: np.ndarray) -> np.ndarray:
    y, _, _ = rgb_to_ycbcr(np.asarray(frame, dtype=np.float64))
    return y * 255.0 - 128.0


def _bench_motion(frames, repeats: int) -> dict:
    cur, ref = _luma(frames[1]), _luma(frames[0])
    legacy_s = _time(lambda: legacy_estimate_motion(cur, ref), repeats)
    fast_s = _time(lambda: estimate_motion(cur, ref), repeats)
    diamond_s = _time(lambda: estimate_motion(cur, ref, method="diamond"), repeats)

    mv_legacy = legacy_estimate_motion(cur, ref)
    mv_fast = estimate_motion(cur, ref)
    if not np.array_equal(mv_legacy, mv_fast):
        raise AssertionError("pruned full search diverged from legacy full search")

    pred_legacy = legacy_compensate(ref, mv_fast)
    comp_legacy_s = _time(lambda: legacy_compensate(ref, mv_fast), repeats)
    comp_fast_s = _time(lambda: compensate(ref, mv_fast), repeats)
    if not np.array_equal(pred_legacy, compensate(ref, mv_fast)):
        raise AssertionError("vectorized compensate diverged from legacy loop")

    return {
        "frame_hw": list(cur.shape),
        "legacy_full_s": round(legacy_s, 4),
        "fast_full_s": round(fast_s, 4),
        "diamond_s": round(diamond_s, 4),
        "speedup_full_vs_legacy": round(legacy_s / fast_s, 2),
        "speedup_diamond_vs_legacy": round(legacy_s / diamond_s, 2),
        "mv_equal_full_vs_legacy": True,
        "compensate_legacy_s": round(comp_legacy_s, 5),
        "compensate_fast_s": round(comp_fast_s, 5),
        "compensate_speedup": round(comp_legacy_s / comp_fast_s, 2),
    }


def _bench_entropy(frames, repeats: int) -> dict:
    blocks = quantize(forward_dct(split_blocks(_luma(frames[0]), 8)), QUALITY)

    def enc_legacy():
        w = LegacyBitWriter()
        legacy_encode_blocks(blocks, w)
        return w.getvalue()

    def enc_fast():
        w = BitWriter()
        encode_blocks(blocks, w)
        return w.getvalue()

    payload_legacy = enc_legacy()
    payload_fast = enc_fast()
    if payload_legacy != payload_fast:
        raise AssertionError("vectorized entropy coder is not byte-identical")

    enc_legacy_s = _time(enc_legacy, repeats)
    enc_fast_s = _time(enc_fast, repeats)
    dec_legacy_s = _time(
        lambda: legacy_decode_blocks(LegacyBitReader(payload_legacy), len(blocks), 8),
        repeats,
    )
    dec_fast_s = _time(
        lambda: decode_blocks(BitReader(payload_fast), len(blocks), 8), repeats
    )
    return {
        "n_blocks": int(len(blocks)),
        "payload_bytes": len(payload_fast),
        "byte_identical": True,
        "encode_legacy_s": round(enc_legacy_s, 5),
        "encode_fast_s": round(enc_fast_s, 5),
        "encode_speedup": round(enc_legacy_s / enc_fast_s, 2),
        "decode_legacy_s": round(dec_legacy_s, 5),
        "decode_fast_s": round(dec_fast_s, 5),
        "decode_speedup": round(dec_legacy_s / dec_fast_s, 2),
    }


def _encode_all(encoder, frames):
    encoder.reset()
    return [encoder.encode_frame(f) for f in frames]


def _bench_frame_codec(frames, repeats: int) -> dict:
    legacy_enc = LegacyVideoEncoder(gop_size=GOP, quality=QUALITY)
    fast_enc = VideoEncoder(gop_size=GOP, quality=QUALITY)

    encoded_legacy = _encode_all(legacy_enc, frames)
    encoded_fast = _encode_all(fast_enc, frames)
    for i, (a, b) in enumerate(zip(encoded_legacy, encoded_fast)):
        if a.payload != b.payload:
            raise AssertionError(f"frame {i}: fast bitstream differs from legacy")

    enc_legacy_s = _time(lambda: _encode_all(legacy_enc, frames), repeats)
    enc_fast_s = _time(lambda: _encode_all(fast_enc, frames), repeats)

    def dec_legacy():
        d = LegacyVideoDecoder()
        d.reset()
        return [d.decode_frame(e) for e in encoded_legacy]

    def dec_fast():
        d = VideoDecoder()
        return d.decode_sequence(encoded_fast)

    rgb_legacy = dec_legacy()[-1].rgb
    rgb_fast = dec_fast()[-1].rgb
    if not np.allclose(rgb_legacy, rgb_fast, atol=1e-9):
        raise AssertionError("fast decoder reconstruction diverged from legacy")
    dec_legacy_s = _time(dec_legacy, repeats)
    dec_fast_s = _time(dec_fast, repeats)

    n = len(frames)
    return {
        "n_frames": n,
        "gop_size": GOP,
        "quality": QUALITY,
        "payload_bytes": [e.size_bytes for e in encoded_fast],
        "bitstream_byte_identical": True,
        "encode_legacy_s_per_frame": round(enc_legacy_s / n, 4),
        "encode_fast_s_per_frame": round(enc_fast_s / n, 4),
        "encode_speedup": round(enc_legacy_s / enc_fast_s, 2),
        "decode_legacy_s_per_frame": round(dec_legacy_s / n, 4),
        "decode_fast_s_per_frame": round(dec_fast_s / n, 4),
        "decode_speedup": round(dec_legacy_s / dec_fast_s, 2),
    }


def _bench_diamond_quality(frames) -> dict:
    """PSNR cost of diamond vs full search through real reconstruction."""
    results = {}
    for method in ("full", "diamond"):
        enc = VideoEncoder(gop_size=GOP, quality=QUALITY, motion_method=method)
        encoded = _encode_all(enc, frames)
        decoded = VideoDecoder().decode_sequence(encoded)
        results[method] = float(
            np.mean([psnr(f, d.rgb) for f, d in zip(frames, decoded)])
        )
    delta = results["full"] - results["diamond"]
    return {
        "sequence": "G3",
        "full_psnr_db": round(results["full"], 3),
        "diamond_psnr_db": round(results["diamond"], 3),
        "delta_db": round(delta, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small frames; exactness asserts only, no speedup floors",
    )
    args = parser.parse_args(argv)

    frames = _frames(args.smoke)
    repeats = 1 if args.smoke else 3

    motion = _bench_motion(frames, repeats)
    entropy = _bench_entropy(frames, repeats)
    frame_codec = _bench_frame_codec(frames, repeats)
    diamond = _bench_diamond_quality(frames)

    report = {
        "mode": "smoke" if args.smoke else "full",
        "machine": {
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "numpy": np.__version__,
            "python": platform.python_version(),
        },
        "motion": motion,
        "entropy": entropy,
        "frame_codec": frame_codec,
        "diamond_quality": diamond,
    }

    failures = []
    if not args.smoke:
        # PR acceptance criteria — keep asserting them so regressions in
        # the fast path show up as a failing bench, not a smaller number.
        if frame_codec["encode_speedup"] < 4.0:
            failures.append(
                f"encode_frame speedup {frame_codec['encode_speedup']}x < 4x"
            )
        if motion["speedup_full_vs_legacy"] < 3.0:
            failures.append(
                f"motion estimation speedup {motion['speedup_full_vs_legacy']}x < 3x"
            )
        if diamond["delta_db"] > 0.3:
            failures.append(
                f"diamond PSNR delta {diamond['delta_db']} dB > 0.3 dB"
            )
    report["criteria_failures"] = failures

    write_bench_json("codec", report, smoke=args.smoke)
    if failures:
        print("CRITERIA FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
