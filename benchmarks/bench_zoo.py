"""Model-zoo benchmark: quality-vs-latency frontier + difficulty dispatch.

For each scene this streams the same session through the GameStreamSR
client once per zoo backend (EDSR reference, int8 EDSR, FSRCNN,
QuickSRNet, GPU bilinear) and once with the difficulty-aware dispatcher
(EDSR + QuickSRNet + GPU bilinear under half the 60 FPS frame budget),
sharing the HR ground-truth renders, and writes ``BENCH_zoo.json`` at
the repo root. Run::

    PYTHONPATH=src python benchmarks/bench_zoo.py          # full run
    PYTHONPATH=src python benchmarks/bench_zoo.py --smoke  # seconds, CI

Reported per scene:

* **frontier**: modeled upscale latency (and fps), mean PSNR, and mean
  per-frame energy for every backend — the quality-vs-latency trade
  curve the zoo spans;
* **dispatch**: the dispatcher's point against the EDSR-everywhere
  reference (speedup, delta-PSNR) plus the ``sr.dispatch/*`` routing
  ledger (tiles per backend, overflow).

Acceptance (full run): every NPU zoo member undercuts EDSR's modeled
upscale latency, and on at least one scene the dispatcher reaches
>= 1.5x upscale-latency reduction vs EDSR-everywhere while losing
<= 0.5 dB mean PSNR.
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.core.roi_sizing import plan_roi_window  # noqa: E402
from repro.platform.calibration import REALTIME_DEADLINE_MS  # noqa: E402
from repro.platform.device import get_device  # noqa: E402
from repro.sr.backends import build_backend  # noqa: E402
from repro.sr.dispatch import DifficultyDispatcher  # noqa: E402
from repro.sr.pretrained import default_sr_model  # noqa: E402
from repro.sr.runner import SRRunner  # noqa: E402
from repro.streaming import (  # noqa: E402
    GameStreamServer,
    StreamGeometry,
    run_session,
)
from repro.streaming.client import GameStreamSRClient  # noqa: E402

from conftest import write_bench_json  # noqa: E402

DEVICE = "samsung_tab_s8"
PROFILE = "tiny"
#: Frontier members, best quality first (EDSR is the paper reference).
FRONTIER = ("edsr", "edsr_int8", "fsrcnn", "quicksrnet", "bilinear_gpu")
#: Dispatcher pool and per-engine budget (half the 60 FPS frame budget:
#: tight enough that the greedy router must spill easy tiles).
DISPATCH_POOL = ("edsr", "quicksrnet", "bilinear_gpu")
DISPATCH_BUDGET_MS = REALTIME_DEADLINE_MS / 2


def _bench_scene(game_id, n_frames, gop_size, device, plan, zoo):
    """One scene: a session per frontier backend plus the dispatcher."""
    from repro.render.games import build_game

    geometry = StreamGeometry(eval_lr_height=64, eval_lr_width=112, lr_source="native")
    game = build_game(game_id)
    roi_side = plan.side_for_frame(geometry.eval_lr_height)

    def make_server():
        return GameStreamServer(game, geometry, roi_side=roi_side, gop_size=gop_size)

    ref_server = make_server()
    hr_cache = {}

    def hr_ref(index):
        if index not in hr_cache:
            hr_cache[index] = ref_server.render_hr_reference(index)
        return hr_cache[index]

    def session(**knobs):
        client = GameStreamSRClient(
            device, zoo["edsr"].runner, modeled_roi_side=plan.side
        )
        return run_session(
            make_server(), client, n_frames=n_frames,
            evaluate_quality=True, hr_reference_fn=hr_ref, **knobs,
        )

    frontier = {}
    for name in FRONTIER:
        result = session(sr_backend=zoo[name])
        frontier[name] = {
            "upscale_ms": round(result.mean_upscale_ms(), 4),
            "upscale_fps": round(1000.0 / result.mean_upscale_ms(), 1),
            "psnr_db": round(result.mean_psnr(), 3),
            "energy_mj": round(result.mean_energy().total, 3),
        }
    edsr = frontier["edsr"]
    for name, point in frontier.items():
        point["delta_psnr_db"] = round(edsr["psnr_db"] - point["psnr_db"], 3)

    dispatcher = DifficultyDispatcher(
        [zoo[name] for name in DISPATCH_POOL], budget_ms=DISPATCH_BUDGET_MS
    )
    routed = session(dispatch=dispatcher)
    metrics = routed.metrics.to_dict()

    def counter(name):
        return int(metrics.get(name, {}).get("value", 0))

    dispatch = {
        "pool": list(DISPATCH_POOL),
        "budget_ms": round(DISPATCH_BUDGET_MS, 4),
        "upscale_ms": round(routed.mean_upscale_ms(), 4),
        "upscale_fps": round(1000.0 / routed.mean_upscale_ms(), 1),
        "psnr_db": round(routed.mean_psnr(), 3),
        "energy_mj": round(routed.mean_energy().total, 3),
        "speedup_vs_edsr": round(
            edsr["upscale_ms"] / routed.mean_upscale_ms(), 3
        ),
        "delta_psnr_db": round(edsr["psnr_db"] - routed.mean_psnr(), 3),
        "observability": {
            "frames": counter("sr.dispatch/frames"),
            "tiles_total": counter("sr.dispatch/tiles_total"),
            "overflow_tiles": counter("sr.dispatch/overflow_tiles"),
            "tiles_per_backend": {
                name: counter(f"sr.dispatch/backend_tiles/{name}")
                for name in DISPATCH_POOL
            },
            "mean_upscale_ms": round(
                metrics.get("sr.dispatch/upscale_ms", {}).get("mean", 0.0), 4
            ),
        },
    }
    return {"frontier": frontier, "dispatch": dispatch}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="two scenes, short GOP, no acceptance criteria (CI smoke)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        games = ["G1", "G3"]
        n_frames, gop_size = 6, 6
    else:
        games = ["G1", "G3", "G5", "G7", "G9"]
        n_frames, gop_size = 18, 18

    device = get_device(DEVICE)
    plan = plan_roi_window(device)
    runner = SRRunner(default_sr_model(profile=PROFILE))
    zoo = {
        name: build_backend(
            name, profile=PROFILE, runner=runner if name == "edsr" else None
        )
        for name in FRONTIER
    }

    scenes = {}
    for game_id in games:
        scene = _bench_scene(game_id, n_frames, gop_size, device, plan, zoo)
        scenes[game_id] = scene
        d = scene["dispatch"]
        print(
            f"{game_id}: edsr {scene['frontier']['edsr']['upscale_ms']:7.3f} ms"
            f" -> dispatch {d['upscale_ms']:7.3f} ms"
            f" ({d['speedup_vs_edsr']:.2f}x)  dPSNR {d['delta_psnr_db']:+.3f} dB"
            f"  tiles {d['observability']['tiles_per_backend']}",
            file=sys.stderr,
        )

    best = max(scenes, key=lambda g: scenes[g]["dispatch"]["speedup_vs_edsr"])
    report = {
        "mode": "smoke" if args.smoke else "full",
        "machine": {
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "numpy": np.__version__,
            "python": platform.python_version(),
        },
        "session": {
            "device": DEVICE,
            "design": "gamestreamsr",
            "profile": PROFILE,
            "modeled_geometry": "1280x720 -> 2560x1440",
            "n_frames": n_frames,
            "gop_size": gop_size,
            "frontier_backends": list(FRONTIER),
        },
        "scenes": scenes,
        "best_dispatch": {
            "game": best,
            "speedup_vs_edsr": scenes[best]["dispatch"]["speedup_vs_edsr"],
            "delta_psnr_db": scenes[best]["dispatch"]["delta_psnr_db"],
        },
    }

    failures = []
    if not args.smoke:
        # PR acceptance criteria — the zoo must actually span a frontier
        # (every NPU member undercuts the EDSR reference latency), and
        # the dispatcher must buy >= 1.5x modeled upscale latency on at
        # least one scene for <= 0.5 dB of mean PSNR.
        for game_id, scene in scenes.items():
            edsr_ms = scene["frontier"]["edsr"]["upscale_ms"]
            for name in ("edsr_int8", "fsrcnn", "quicksrnet"):
                if scene["frontier"][name]["upscale_ms"] >= edsr_ms:
                    failures.append(
                        f"{game_id}: {name} does not undercut EDSR latency"
                    )
        hit = [
            g for g, s in scenes.items()
            if s["dispatch"]["speedup_vs_edsr"] >= 1.5
            and s["dispatch"]["delta_psnr_db"] <= 0.5
        ]
        if not hit:
            failures.append(
                "no scene reaches >= 1.5x dispatch speedup at <= 0.5 dB "
                "PSNR cost"
            )
    report["criteria_failures"] = failures

    write_bench_json("zoo", report, smoke=args.smoke)
    if failures:
        print("CRITERIA FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
