"""Fig. 3 — SR latency vs (a) upscale factor / quality, (b) input resolution.

(a) Larger upscale factors shrink the input (lower latency) but cost
quality — motivating the paper's choice of x2 from 720p.
(b) At x2, only small inputs (~240p / ~RoI-sized windows) meet 16.66 ms —
the opportunity GameStreamSR exploits.
"""

from __future__ import annotations

from repro.analysis.experiments import input_resolution_sweep, upscale_factor_tradeoff
from repro.analysis.tables import format_paper_vs_measured, format_table
from repro.platform.calibration import REALTIME_DEADLINE_MS
from repro.platform.device import samsung_tab_s8
from repro.platform.latency import npu_sr_latency_ms

from conftest import emit_report


def test_fig03a_upscale_factor_tradeoff(benchmark):
    points = upscale_factor_tradeoff(device_name="samsung_tab_s8")
    table = format_table(
        ["factor", "input (eval px)", "NPU latency ms", "bilinear PSNR dB"],
        [
            (f"x{p.factor}", f"{p.input_height}x{p.input_width}", round(p.npu_latency_ms, 1), round(p.bilinear_psnr_db, 2))
            for p in points
        ],
        title="Fig. 3a: upscale factor vs latency and attainable quality (S8 Tab)",
    )
    shape = format_paper_vs_measured(
        [
            ("quality drops as factor grows", "yes", points[0].bilinear_psnr_db > points[-1].bilinear_psnr_db),
            ("latency drops as factor grows", "yes", points[0].npu_latency_ms > points[-1].npu_latency_ms),
            ("x2 is the quality-preserving choice", "yes (Sec. II-C)", True),
        ],
        title="Fig. 3a shape check",
    )
    emit_report("fig03a_tradeoffs", table + "\n\n" + shape)

    psnrs = [p.bilinear_psnr_db for p in points]
    lats = [p.npu_latency_ms for p in points]
    assert psnrs == sorted(psnrs, reverse=True)
    assert lats == sorted(lats, reverse=True)

    benchmark(lambda: upscale_factor_tradeoff(device_name="samsung_tab_s8"))


def test_fig03b_input_resolution_sweep(benchmark):
    rows = input_resolution_sweep(device_name="samsung_tab_s8")
    table = format_table(
        ["input", "pixels", "x2 SR latency ms", f"meets {REALTIME_DEADLINE_MS} ms"],
        [(r["label"], r["pixels"], round(r["latency_ms"], 1), r["meets_deadline"]) for r in rows],
        title="Fig. 3b: x2 SR latency vs input resolution (S8 Tab)",
    )
    by_label = {r["label"]: r for r in rows}
    shape = format_paper_vs_measured(
        [
            ("240p meets real-time", "yes", by_label["240p"]["meets_deadline"]),
            ("720p latency (ms)", "~217", round(by_label["720p"]["latency_ms"], 1)),
            ("720p meets real-time", "no", by_label["720p"]["meets_deadline"]),
        ],
        title="Fig. 3b shape check",
    )
    emit_report("fig03b_resolution_sweep", table + "\n\n" + shape)

    assert by_label["240p"]["meets_deadline"]
    assert not by_label["720p"]["meets_deadline"]

    device = samsung_tab_s8()
    benchmark(lambda: [npu_sr_latency_ms(r["pixels"], device) for r in rows])
