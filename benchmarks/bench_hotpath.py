"""Hot-path trajectory benchmark: conv2d, tiled SR, end-to-end session.

Measures the fast inference path (float32, graph-free forwards, fused
pad+im2col, batched tiles, tuned allocator) against the frozen pre-PR
reference implementation in ``_legacy_inference.py`` and writes the
numbers to ``BENCH_hotpath.json`` at the repo root so the speedup
trajectory survives across PRs. Run::

    PYTHONPATH=src python benchmarks/bench_hotpath.py          # full run
    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke  # seconds, CI

The full run uses the experiment-profile EDSR on a rendered 256x448 G3
frame and asserts the PR's acceptance criteria (fast ``upscale_tiled``
>= 3x over the legacy per-tile loop; float32 within >= 60 dB PSNR of
float64). Smoke mode swaps in a tiny untrained model and a small frame to
exercise every code path quickly (no speedup assertions — tiny shapes
don't amortize anything) and writes ``BENCH_hotpath.smoke.json`` instead.

The legacy baseline is timed in a pristine subprocess with
``REPRO_NO_MALLOC_TUNING=1`` so it runs under glibc's untouched (dynamic)
malloc defaults, exactly as the original code did — calling ``mallopt``
to "reset" thresholds in-process would disable glibc's dynamic threshold
adaptation and unfairly slow the baseline down.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.neural import EDSR, Tensor, no_grad  # noqa: E402
from repro.neural.layers import Conv2d  # noqa: E402
from repro.neural.tensor import set_inference_dtype  # noqa: E402
from repro.metrics.psnr import psnr  # noqa: E402
from repro.sr.runner import SRRunner  # noqa: E402

from _legacy_inference import legacy_upscale_tiled  # noqa: E402
from conftest import write_bench_json  # noqa: E402


def _time(fn, repeats: int = 3) -> float:
    """Best-of-N wall time in seconds (fn is called once to warm up)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_conv2d(channels: int, height: int, width: int, repeats: int) -> dict:
    conv = Conv2d(channels, channels, 3, rng=np.random.default_rng(0))
    x = np.random.default_rng(1).uniform(size=(1, channels, height, width))

    def run(dtype) -> None:
        with no_grad(dtype=dtype):
            conv(Tensor(x))

    f64 = _time(lambda: run(np.float64), repeats)
    f32 = _time(lambda: run(np.float32), repeats)
    return {
        "shape": [1, channels, height, width],
        "f64_ms": round(f64 * 1e3, 3),
        "f32_ms": round(f32 * 1e3, 3),
        "f32_speedup": round(f64 / f32, 2),
    }


def _legacy_baseline_subprocess(smoke: bool, repeats: int) -> float:
    """Time the frozen pre-PR loop in a fresh untuned-allocator process."""
    import subprocess

    env = dict(os.environ)
    env["REPRO_NO_MALLOC_TUNING"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    cmd = [sys.executable, str(Path(__file__).resolve()), "--legacy-only"]
    if smoke:
        cmd.append("--smoke")
    out = subprocess.run(
        cmd, env=env, capture_output=True, text=True, check=True, cwd=str(REPO_ROOT)
    )
    return float(json.loads(out.stdout.strip().splitlines()[-1])["legacy_loop_f64_s"])


def _bench_upscale_tiled(model, image: np.ndarray, legacy_s: float, repeats: int) -> dict:
    runner = SRRunner(model)
    h, w = image.shape[:2]

    fast_whole_s = _time(
        lambda: runner.upscale_tiled(image, tile=max(h, w) * 2, overlap=0), repeats
    )
    fast_batched_s = _time(
        lambda: runner.upscale_tiled(image, tile=144, overlap=8, batch_size=2), repeats
    )
    fast_loop_s = _time(
        lambda: runner.upscale_tiled(image, tile=64, overlap=8, batched=False), repeats
    )

    out_f32 = runner.upscale_tiled(image, tile=max(h, w) * 2, overlap=0)
    prev = set_inference_dtype(np.float64)
    try:
        out_f64 = runner.upscale_tiled(image, tile=max(h, w) * 2, overlap=0)
    finally:
        set_inference_dtype(prev)

    return {
        "frame_hw": [h, w],
        "legacy_loop_f64_s": round(legacy_s, 4),
        "fast_whole_frame_s": round(fast_whole_s, 4),
        "fast_batched_tile144_s": round(fast_batched_s, 4),
        "fast_loop_f32_s": round(fast_loop_s, 4),
        "speedup_whole_vs_legacy": round(legacy_s / fast_whole_s, 2),
        "speedup_batched_vs_legacy": round(legacy_s / fast_batched_s, 2),
        "f32_vs_f64_psnr_db": round(psnr(out_f64, out_f32), 1),
    }


def _bench_session(smoke: bool) -> dict:
    """Wall-time one short end-to-end streaming session (uncached)."""
    from repro.analysis.experiments import quality_geometry, _run_one_session
    from repro.streaming.frames import StreamGeometry

    if smoke:
        geometry = StreamGeometry(
            eval_lr_height=32, eval_lr_width=48, lr_source="downsample"
        )
        n_frames = 2
    else:
        geometry = quality_geometry()
        n_frames = 4

    def run():
        return _run_one_session(
            game_id="G1",
            device_name="samsung_tab_s8",
            design="gamestreamsr",
            geometry=geometry,
            n_frames=n_frames,
            gop_size=4,
            quality=60,
            evaluate_quality=True,
        )

    t0 = time.perf_counter()
    result = run()
    wall = time.perf_counter() - t0
    return {
        "design": "gamestreamsr",
        "geometry_lr_hw": [geometry.eval_lr_height, geometry.eval_lr_width],
        "n_frames": n_frames,
        "wall_s": round(wall, 3),
        "wall_s_per_frame": round(wall / n_frames, 3),
        "mean_psnr_db": round(result.mean_psnr(), 2),
    }


def _bench_subject(smoke: bool):
    """The (model, 256x448-or-small frame) pair both bench modes measure."""
    if smoke:
        model = EDSR(scale=2, n_resblocks=2, n_feats=8, seed=0)
        image = np.random.default_rng(0).uniform(size=(64, 96, 3))
    else:
        from repro.analysis.prerender import rendered_sequence
        from repro.sr.pretrained import default_sr_model

        model = default_sr_model()
        image = rendered_sequence("G3", width=448, height=256, n_frames=2).frame(0).color
    return model, image


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny model + small frame; no speedup assertions",
    )
    parser.add_argument(
        "--legacy-only",
        action="store_true",
        help="internal: time just the frozen legacy loop and print JSON "
        "(run by the parent bench in an untuned-allocator subprocess)",
    )
    args = parser.parse_args(argv)

    if args.legacy_only:
        model, image = _bench_subject(args.smoke)
        legacy_s = _time(
            lambda: legacy_upscale_tiled(model, image, tile=64, overlap=8),
            1 if args.smoke else 2,
        )
        print(json.dumps({"legacy_loop_f64_s": legacy_s}))
        return 0

    legacy_s = _legacy_baseline_subprocess(args.smoke, repeats=1 if args.smoke else 2)
    model, image = _bench_subject(args.smoke)
    if args.smoke:
        conv = _bench_conv2d(channels=8, height=32, width=32, repeats=2)
        tiled = _bench_upscale_tiled(model, image, legacy_s, repeats=1)
    else:
        conv = _bench_conv2d(channels=64, height=128, width=224, repeats=3)
        tiled = _bench_upscale_tiled(model, image, legacy_s, repeats=3)

    session = _bench_session(smoke=args.smoke)

    report = {
        "mode": "smoke" if args.smoke else "full",
        "machine": {
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "numpy": np.__version__,
            "python": platform.python_version(),
        },
        "conv2d_forward": conv,
        "upscale_tiled": tiled,
        "session": session,
    }

    failures = []
    if not args.smoke:
        # PR acceptance criteria — keep asserting them so regressions in the
        # fast path show up as a failing bench, not a silently smaller number.
        if tiled["speedup_whole_vs_legacy"] < 3.0:
            failures.append(
                f"fast upscale_tiled speedup {tiled['speedup_whole_vs_legacy']}x < 3x"
            )
        if tiled["f32_vs_f64_psnr_db"] < 60.0:
            failures.append(
                f"f32 vs f64 PSNR {tiled['f32_vs_f64_psnr_db']} dB < 60 dB"
            )
    report["criteria_failures"] = failures

    write_bench_json("hotpath", report, smoke=args.smoke)
    if failures:
        print("CRITERIA FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
