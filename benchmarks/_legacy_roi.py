"""Frozen pre-fast-path RoI server path (preprocess + Algorithm-1 search).

This is the seed implementation of ``repro.core.depth_preprocess`` /
``repro.core.roi_search`` as it stood before the fast RoI server path:
four redundant depth validations per preprocess, a fresh center-weight
matrix every frame, ``np.histogram``/``np.quantile`` through numpy's
general dispatch, a Python per-layer masked-sum loop, and a full-frame
summed-area table rebuilt for both the coarse and the fine search pass.

It intentionally does NOT track the live core code — do not optimize
this file. ``bench_roi.py`` measures the live path against it, and
``tests/core/test_roi_fast_equivalence.py`` proves the outputs match.

Documented deviations from the seed (the PR's three correctness fixes
are applied here too, so baseline and fast path compute the same
function — exactly how ``_legacy_codec`` carries the motion-epsilon
fix):

- ``_best_position`` ties on exact equality instead of ``>= best - 1e-9``;
- ``layer_bounds`` bumps degenerate quantile bounds with ``np.nextafter``
  instead of the magnitude-blind ``+ 1e-12``;
- the Otsu fallback clamps its split strictly inside the histogram.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import DEFAULT_ROI_CONFIG, RoIConfig
from repro.core.roi_search import RoIBox

__all__ = [
    "LegacyPreprocessResult",
    "LegacyRoIDetector",
    "legacy_preprocess_depth",
    "legacy_search_roi",
    "legacy_window_sums",
]


def _check_depth(depth: np.ndarray) -> np.ndarray:
    depth = np.asarray(depth, dtype=np.float64)
    if depth.ndim != 2:
        raise ValueError(f"expected a 2-D depth map, got shape {depth.shape}")
    if depth.size == 0:
        raise ValueError("depth map is empty")
    if depth.min() < -1e-9 or depth.max() > 1 + 1e-9:
        raise ValueError("depth values must lie in [0, 1]")
    return np.clip(depth, 0.0, 1.0)


def legacy_nearness(depth: np.ndarray) -> np.ndarray:
    return 1.0 - _check_depth(depth)


def legacy_foreground_threshold(
    depth: np.ndarray, config: RoIConfig = DEFAULT_ROI_CONFIG
) -> float:
    depth = _check_depth(depth)
    finite = depth[depth < 1.0]
    if finite.size == 0:
        return 1.0
    lo, hi = float(finite.min()), float(finite.max())
    if hi - lo < 1e-9:
        return hi
    hist, edges = np.histogram(finite, bins=config.histogram_bins, range=(lo, hi))
    kernel = np.ones(config.valley_smoothing) / config.valley_smoothing
    smooth = np.convolve(hist.astype(np.float64), kernel, mode="same")
    cumulative = np.cumsum(hist)

    peak_seen = smooth[0]
    for i in range(1, len(smooth) - 1):
        peak_seen = max(peak_seen, smooth[i])
        is_local_min = smooth[i] <= smooth[i - 1] and smooth[i] <= smooth[i + 1]
        mass_before = cumulative[i]
        mass_after = finite.size - cumulative[i]
        if (
            is_local_min
            and mass_before > config.valley_min_mass * finite.size
            and mass_after > config.valley_min_mass * finite.size
            and smooth[i] < config.valley_dip_ratio * peak_seen
        ):
            return float(edges[i + 1])

    probs = hist.astype(np.float64) / hist.sum()
    centers = (edges[:-1] + edges[1:]) / 2.0
    omega = np.cumsum(probs)
    mu = np.cumsum(probs * centers)
    mu_total = mu[-1]
    with np.errstate(divide="ignore", invalid="ignore"):
        sigma_b = (mu_total * omega - mu) ** 2 / (omega * (1.0 - omega))
    sigma_b[~np.isfinite(sigma_b)] = -1.0
    # (documented deviation: the same last-bin clamp as the live path)
    split = min(int(np.argmax(sigma_b)), len(hist) - 2)
    return float(edges[split + 1])


def legacy_extract_foreground(
    depth: np.ndarray, config: RoIConfig = DEFAULT_ROI_CONFIG
) -> tuple[np.ndarray, float]:
    depth = _check_depth(depth)
    threshold = legacy_foreground_threshold(depth, config)
    return depth <= threshold, threshold


def legacy_center_weight_matrix(
    height: int, width: int, config: RoIConfig = DEFAULT_ROI_CONFIG
) -> np.ndarray:
    if height < 1 or width < 1:
        raise ValueError(f"invalid shape ({height}, {width})")
    ys = np.arange(height, dtype=np.float64) - (height - 1) / 2.0
    xs = np.arange(width, dtype=np.float64) - (width - 1) / 2.0
    sigma = config.center_sigma_frac * np.hypot(height, width)
    gauss = np.exp(-(ys[:, None] ** 2 + xs[None, :] ** 2) / (2.0 * sigma**2))
    return config.center_weight * gauss


def legacy_layer_bounds(
    weighted: np.ndarray, n_layers: int, mode: str = "quantile"
) -> np.ndarray:
    values = np.asarray(weighted, dtype=np.float64).reshape(-1)
    if values.size == 0:
        raise ValueError("cannot layer an empty value set")
    if mode == "range":
        lo = float(values.min())
        hi = float(values.max())
        if hi - lo < 1e-12:
            hi = max(lo + 1e-12, float(np.nextafter(lo, np.inf)))
        return np.linspace(lo, hi, n_layers + 1)
    if mode == "quantile":
        bounds = np.quantile(values, np.linspace(0.0, 1.0, n_layers + 1))
        # (documented deviation: nextafter bump, as in the live path)
        for i in range(1, len(bounds)):
            if bounds[i] <= bounds[i - 1]:
                bounds[i] = np.nextafter(bounds[i - 1], np.inf)
        return bounds
    raise ValueError(f"unknown layer mode {mode!r}")


@dataclass(frozen=True)
class LegacyPreprocessResult:
    foreground_mask: np.ndarray
    foreground_threshold: float
    weight_matrix: np.ndarray
    weighted: np.ndarray
    layer_index: np.ndarray
    selected_layer: int
    processed: np.ndarray


def legacy_preprocess_depth(
    depth: np.ndarray, config: RoIConfig = DEFAULT_ROI_CONFIG
) -> LegacyPreprocessResult:
    depth = _check_depth(depth)
    importance = legacy_nearness(depth)

    mask, threshold = legacy_extract_foreground(depth, config)
    weights = legacy_center_weight_matrix(*depth.shape, config=config)
    weighted = np.where(mask, importance + weights, 0.0)

    fg_values = weighted[mask]
    if fg_values.size == 0:
        weighted_all = importance + weights
        return LegacyPreprocessResult(
            foreground_mask=mask,
            foreground_threshold=threshold,
            weight_matrix=weights,
            weighted=weighted_all,
            layer_index=np.zeros(depth.shape, dtype=np.int64),
            selected_layer=0,
            processed=weighted_all,
        )

    bounds = legacy_layer_bounds(fg_values, config.n_layers, mode=config.layer_mode)
    layer_index = np.full(depth.shape, -1, dtype=np.int64)
    layer_index[mask] = np.clip(
        np.searchsorted(bounds, weighted[mask], side="right") - 1,
        0,
        config.n_layers - 1,
    )

    sums = np.array(
        [weighted[layer_index == layer].sum() for layer in range(config.n_layers)]
    )
    selected = int(np.argmax(sums))
    processed = np.where(layer_index == selected, weighted, 0.0)

    return LegacyPreprocessResult(
        foreground_mask=mask,
        foreground_threshold=threshold,
        weight_matrix=weights,
        weighted=weighted,
        layer_index=layer_index,
        selected_layer=selected,
        processed=processed,
    )


def _legacy_integral_image(values: np.ndarray) -> np.ndarray:
    sat = np.zeros((values.shape[0] + 1, values.shape[1] + 1))
    np.cumsum(np.cumsum(values, axis=0), axis=1, out=sat[1:, 1:])
    return sat


def legacy_window_sums(
    values: np.ndarray, win_h: int, win_w: int, ys: np.ndarray, xs: np.ndarray
) -> np.ndarray:
    # The seed behaviour under measurement: a fresh full-frame SAT per call.
    sat = _legacy_integral_image(values)
    y0 = ys[:, None]
    x0 = xs[None, :]
    y1 = y0 + win_h
    x1 = x0 + win_w
    return sat[y1, x1] - sat[y0, x1] - sat[y1, x0] + sat[y0, x0]


def _best_position(sums, ys, xs, frame_center, win):
    best = sums.max()
    # (documented deviation: exact ties, as in the live path)
    tie_rows, tie_cols = np.nonzero(sums == best)
    cy, cx = frame_center
    win_h, win_w = win
    centers_y = ys[tie_rows] + win_h / 2.0
    centers_x = xs[tie_cols] + win_w / 2.0
    dist2 = (centers_y - cy) ** 2 + (centers_x - cx) ** 2
    pick = int(np.argmin(dist2))
    return int(ys[tie_rows[pick]]), int(xs[tie_cols[pick]])


def _grid(start: int, stop: int, stride: int) -> np.ndarray:
    start = max(start, 0)
    stop = max(stop, start)
    points = np.arange(start, stop + 1, stride)
    if points[-1] != stop:
        points = np.append(points, stop)
    return points


def legacy_search_roi(
    processed: np.ndarray,
    win_h: int,
    win_w: int,
    coarse_stride: int | None = None,
    fine_stride: int = 2,
    boundary: int | None = None,
) -> RoIBox:
    processed = np.asarray(processed, dtype=np.float64)
    if processed.ndim != 2:
        raise ValueError(f"expected 2-D map, got shape {processed.shape}")
    height, width = processed.shape
    if win_h > height or win_w > width:
        raise ValueError(f"window {win_h}x{win_w} larger than map {height}x{width}")
    if coarse_stride is None:
        coarse_stride = max(max(win_h, win_w) // 2, 1)
    if coarse_stride < 1 or fine_stride < 1:
        raise ValueError("strides must be >= 1")
    if fine_stride > coarse_stride:
        raise ValueError(
            f"fine stride ({fine_stride}) must not exceed coarse ({coarse_stride})"
        )
    if boundary is None:
        boundary = coarse_stride

    frame_center = ((height - 1) / 2.0, (width - 1) / 2.0)

    ys = _grid(0, height - win_h, coarse_stride)
    xs = _grid(0, width - win_w, coarse_stride)
    sums = legacy_window_sums(processed, win_h, win_w, ys, xs)
    coarse_y, coarse_x = _best_position(sums, ys, xs, frame_center, (win_h, win_w))

    ys = _grid(coarse_y - boundary, min(coarse_y + boundary, height - win_h), fine_stride)
    xs = _grid(coarse_x - boundary, min(coarse_x + boundary, width - win_w), fine_stride)
    sums = legacy_window_sums(processed, win_h, win_w, ys, xs)
    fine_y, fine_x = _best_position(sums, ys, xs, frame_center, (win_h, win_w))

    return RoIBox(x=fine_x, y=fine_y, width=win_w, height=win_h)


class LegacyRoIDetector:
    """Seed detector: preprocess + full search, no temporal state."""

    def __init__(self, window_side: int, config: RoIConfig = DEFAULT_ROI_CONFIG) -> None:
        if window_side < 2:
            raise ValueError(f"window_side must be >= 2, got {window_side}")
        self.window_side = window_side
        self.config = config

    def detect(self, depth: np.ndarray) -> tuple[RoIBox, LegacyPreprocessResult]:
        depth = np.asarray(depth, dtype=np.float64)
        if depth.ndim != 2:
            raise ValueError(f"expected 2-D depth buffer, got {depth.shape}")
        height, width = depth.shape
        side = min(self.window_side, height, width)
        pre = legacy_preprocess_depth(depth, self.config)
        box = legacy_search_roi(
            pre.processed, win_h=side, win_w=side, fine_stride=self.config.fine_stride
        )
        return box.clamped(height, width), pre
