"""GOP-reuse benchmark: warp-and-refresh SR vs full per-frame SR.

For every game workload (G1-G10, Table I) this streams one GOP through
the GameStreamSR client twice — once with the paper's full per-frame
RoI-SR path and once with ``gop_reuse=True`` (warp the previous SR
output by the decoded motion field, re-run SR only on residual-dirty
blocks) — sharing the same HR ground-truth renders, and writes
``BENCH_gopsr.json`` at the repo root. Run::

    PYTHONPATH=src python benchmarks/bench_gopsr.py          # full run
    PYTHONPATH=src python benchmarks/bench_gopsr.py --smoke  # seconds, CI

Reported per scene:

* **effective client upscale throughput**: frames/s through the modeled
  upscale stage (1000 / mean upscale ms) for both modes, and the reuse
  speedup — the headline table;
* **delta-PSNR over the GOP**: mean PSNR of the full path minus the
  reuse path against the shared native HR reference;
* the ``sr.reuse/*`` tile ledger (reused vs recomputed, refreshes,
  mean dirty fraction).

One scene additionally exports a Fig-13-style transient: the per-frame
PSNR series of both modes across the GOP, showing the I-frame refresh
and the bounded drift between refreshes.

Acceptance (full run): the best scene reaches >= 2x effective upscale
throughput, and no scene loses more than 0.5 dB mean PSNR to reuse.
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.core.roi_sizing import plan_roi_window  # noqa: E402
from repro.platform.device import get_device  # noqa: E402
from repro.render.games import GAME_TABLE, build_game  # noqa: E402
from repro.sr.pretrained import default_sr_model  # noqa: E402
from repro.sr.runner import SRRunner  # noqa: E402
from repro.streaming import (  # noqa: E402
    GameStreamServer,
    StreamGeometry,
    run_session,
)
from repro.streaming.client import GameStreamSRClient  # noqa: E402

from conftest import write_bench_json  # noqa: E402

DEVICE = "samsung_tab_s8"
TRANSIENT_GAME = "G3"


def _bench_scene(game_id, n_frames, gop_size, device, plan, runner):
    """One GOP of ``game_id`` through full-SR and GOP-reuse sessions."""
    geometry = StreamGeometry(eval_lr_height=64, eval_lr_width=112, lr_source="native")
    game = build_game(game_id)
    roi_side = plan.side_for_frame(geometry.eval_lr_height)

    def make_server():
        return GameStreamServer(game, geometry, roi_side=roi_side, gop_size=gop_size)

    # Both modes score against the same ground-truth renders.
    ref_server = make_server()
    hr_cache = {}

    def hr_ref(index):
        if index not in hr_cache:
            hr_cache[index] = ref_server.render_hr_reference(index)
        return hr_cache[index]

    results = {}
    for mode, reuse in (("full", False), ("reuse", True)):
        client = GameStreamSRClient(device, runner, modeled_roi_side=plan.side)
        results[mode] = run_session(
            make_server(),
            client,
            n_frames=n_frames,
            evaluate_quality=True,
            hr_reference_fn=hr_ref,
            gop_reuse=reuse,
        )

    full, reuse = results["full"], results["reuse"]
    up_full = full.mean_upscale_ms()
    up_reuse = reuse.mean_upscale_ms()
    psnr_full = full.mean_psnr()
    psnr_reuse = reuse.mean_psnr()
    metrics = reuse.metrics.to_dict()

    def counter(name):
        return int(metrics.get(name, {}).get("value", 0))

    scene = {
        "upscale_ms_full": round(up_full, 4),
        "upscale_ms_reuse": round(up_reuse, 4),
        "upscale_fps_full": round(1000.0 / up_full, 1),
        "upscale_fps_reuse": round(1000.0 / up_reuse, 1),
        "upscale_speedup": round(up_full / up_reuse, 3),
        "mtp_full_ms": round(full.mean_mtp().total_ms, 3),
        "mtp_reuse_ms": round(reuse.mean_mtp().total_ms, 3),
        "psnr_full_db": round(psnr_full, 3),
        "psnr_reuse_db": round(psnr_reuse, 3),
        "delta_psnr_db": round(psnr_full - psnr_reuse, 3),
        "reuse_observability": {
            "tiles_reused": counter("sr.reuse/tiles_reused"),
            "tiles_recomputed_sr": counter("sr.reuse/tiles_recomputed_sr"),
            "tiles_recomputed_bilinear": counter(
                "sr.reuse/tiles_recomputed_bilinear"
            ),
            "refreshes": counter("sr.reuse/refreshes"),
            "mean_dirty_fraction": round(
                metrics.get("sr.reuse/dirty_fraction", {}).get("mean", 1.0), 4
            ),
            "mean_warp_ms": round(
                metrics.get("sr.reuse/warp_ms", {}).get("mean", 0.0), 4
            ),
        },
    }
    transient = {
        "psnr_full_db": [round(v, 3) for v in full.psnr_series()],
        "psnr_reuse_db": [round(v, 3) for v in reuse.psnr_series()],
        "frame_types": [r.frame_type for r in reuse.records],
    }
    return scene, transient


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="two scenes, tiny GOP, no acceptance criteria (CI smoke)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        games = ["G1", TRANSIENT_GAME]
        n_frames, gop_size = 6, 6
    else:
        games = [game_id for game_id, _, _ in GAME_TABLE]
        n_frames, gop_size = 30, 30

    device = get_device(DEVICE)
    plan = plan_roi_window(device)
    runner = SRRunner(default_sr_model(profile="tiny"))

    scenes = {}
    transient = None
    for game_id in games:
        scene, trans = _bench_scene(
            game_id, n_frames, gop_size, device, plan, runner
        )
        scenes[game_id] = scene
        if game_id == TRANSIENT_GAME:
            transient = trans
        print(
            f"{game_id}: upscale {scene['upscale_fps_full']:7.1f} -> "
            f"{scene['upscale_fps_reuse']:7.1f} fps "
            f"({scene['upscale_speedup']:.2f}x)  "
            f"dPSNR {scene['delta_psnr_db']:+.3f} dB  "
            f"dirty {scene['reuse_observability']['mean_dirty_fraction']:.3f}",
            file=sys.stderr,
        )

    best = max(scenes, key=lambda g: scenes[g]["upscale_speedup"])
    worst_dpsnr = max(scenes, key=lambda g: scenes[g]["delta_psnr_db"])
    report = {
        "mode": "smoke" if args.smoke else "full",
        "machine": {
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "numpy": np.__version__,
            "python": platform.python_version(),
        },
        "session": {
            "device": DEVICE,
            "design": "gamestreamsr",
            "modeled_geometry": "1280x720 -> 2560x1440",
            "n_frames": n_frames,
            "gop_size": gop_size,
        },
        "scenes": scenes,
        "best_speedup": {
            "game": best,
            "upscale_speedup": scenes[best]["upscale_speedup"],
        },
        "worst_delta_psnr": {
            "game": worst_dpsnr,
            "delta_psnr_db": scenes[worst_dpsnr]["delta_psnr_db"],
        },
        "transient": {"game": TRANSIENT_GAME, **(transient or {})},
    }

    failures = []
    if not args.smoke:
        # PR acceptance criteria — one low-motion scene must clear 2x
        # effective upscale throughput, and reuse quality must stay
        # within 0.5 dB of full per-frame SR on every scene.
        if scenes[best]["upscale_speedup"] < 2.0:
            failures.append(
                f"best scene upscale speedup "
                f"{scenes[best]['upscale_speedup']}x ({best}) < 2.0x"
            )
        for game_id, scene in scenes.items():
            if scene["delta_psnr_db"] > 0.5:
                failures.append(
                    f"{game_id} loses {scene['delta_psnr_db']} dB > 0.5 dB to reuse"
                )
    report["criteria_failures"] = failures

    write_bench_json("gopsr", report, smoke=args.smoke)
    if failures:
        print("CRITERIA FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
