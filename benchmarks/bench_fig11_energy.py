"""Fig. 11 — overall energy savings per game w.r.t. SOTA.

Paper: 26 % average savings on the S8 Tab, 33 % on the Pixel 7 Pro, with
the tablet saving less (larger panel overhead).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import ALL_GAME_IDS, performance_sessions
from repro.analysis.tables import format_paper_vs_measured, format_table

from conftest import emit_report

PAPER_SAVINGS = {"samsung_tab_s8": 0.26, "pixel_7_pro": 0.33}


def test_fig11_energy_savings(benchmark):
    rows = []
    summary = []
    for device_name, paper in PAPER_SAVINGS.items():
        ours = performance_sessions(device_name, game_ids=ALL_GAME_IDS)["gamestreamsr"]
        nemo = performance_sessions(device_name, game_ids=ALL_GAME_IDS)["nemo"]
        savings = {}
        for game_id in ALL_GAME_IDS:
            e_ours = ours[game_id].gop_weighted_energy(60).total
            e_nemo = nemo[game_id].gop_weighted_energy(60).total
            savings[game_id] = 1.0 - e_ours / e_nemo
            rows.append((device_name, game_id, f"{savings[game_id] * 100:.1f}%"))
        mean_savings = float(np.mean(list(savings.values())))
        summary.append(
            (f"{device_name} mean savings", f"{paper * 100:.0f}%", f"{mean_savings * 100:.1f}%")
        )
        assert abs(mean_savings - paper) < 0.06, device_name

    table = format_table(
        ["device", "game", "energy savings vs SOTA"],
        rows,
        title="Fig. 11: per-game energy savings (GOP-60 weighted)",
    )
    emit_report(
        "fig11_energy",
        table + "\n\n" + format_paper_vs_measured(summary, title="Fig. 11 anchors"),
    )

    # Ordering: the tablet saves less than the phone (paper's observation).
    s8 = performance_sessions("samsung_tab_s8", game_ids=ALL_GAME_IDS)
    px = performance_sessions("pixel_7_pro", game_ids=ALL_GAME_IDS)

    def mean_savings(sessions):
        vals = []
        for game_id in ALL_GAME_IDS:
            ours_e = sessions["gamestreamsr"][game_id].gop_weighted_energy(60).total
            nemo_e = sessions["nemo"][game_id].gop_weighted_energy(60).total
            vals.append(1 - ours_e / nemo_e)
        return float(np.mean(vals))

    assert mean_savings(s8) < mean_savings(px)

    session = s8["gamestreamsr"]["G3"]
    benchmark(lambda: session.gop_weighted_energy(60))
