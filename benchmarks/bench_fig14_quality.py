"""Fig. 14 — per-game quality vs SOTA: (a) PSNR gain, (b) LPIPS improvement.

Paper: ~2 dB mean PSNR gain over SOTA across the ten games with ours
consistently above the 30 dB floor, and lower (better) LPIPS everywhere,
with a perceptible (~0.15+) average improvement.

Pixel-true end-to-end runs over real GOPs; LPIPS uses the deterministic
perceptual surrogate (DESIGN.md substitutions). Absolute dB depends on
the synthetic content; the *orderings* are asserted.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import ALL_GAME_IDS, quality_sessions
from repro.analysis.tables import format_paper_vs_measured, format_table
from repro.metrics.lpips import lpips

from conftest import emit_report

N_FRAMES = 48
GOP = 48


def _all_quality():
    return {
        game_id: quality_sessions(
            game_id,
            designs=("gamestreamsr", "nemo"),
            n_frames=N_FRAMES,
            gop_size=GOP,
            with_lpips=True,
        )
        for game_id in ALL_GAME_IDS
    }


def test_fig14_quality_vs_sota(benchmark):
    results = _all_quality()
    rows = []
    psnr_gains, lpips_improvements, ours_means = [], [], []
    for game_id, sessions in results.items():
        ours = sessions["gamestreamsr"]
        nemo = sessions["nemo"]
        gain = ours.mean_psnr() - nemo.mean_psnr()
        lp = nemo.mean_lpips() - ours.mean_lpips()  # positive = ours better
        psnr_gains.append(gain)
        lpips_improvements.append(lp)
        ours_means.append(ours.mean_psnr())
        rows.append(
            (
                game_id,
                round(ours.mean_psnr(), 2),
                round(nemo.mean_psnr(), 2),
                f"{gain:+.2f}",
                round(ours.mean_lpips(), 4),
                round(nemo.mean_lpips(), 4),
                f"{lp:+.4f}",
            )
        )
    table = format_table(
        ["game", "ours PSNR", "SOTA PSNR", "gain dB", "ours LPIPS", "SOTA LPIPS", "improvement"],
        rows,
        title=f"Fig. 14: quality vs SOTA over {N_FRAMES}-frame GOPs (10 games)",
    )
    shape = format_paper_vs_measured(
        [
            ("mean PSNR gain over SOTA (dB)", "~2 (GOP-60)", f"{np.mean(psnr_gains):+.2f} (GOP-{GOP})"),
            ("games where ours wins PSNR", "10/10 on average", f"{sum(g > 0 for g in psnr_gains)}/10"),
            ("mean LPIPS improvement", "~0.2", f"{np.mean(lpips_improvements):+.4f}"),
            ("games where ours wins LPIPS", "10/10", f"{sum(l > 0 for l in lpips_improvements)}/10"),
        ],
        title="Fig. 14 shape check",
    )
    emit_report("fig14_quality", table + "\n\n" + shape)

    # Orderings: ours wins on most games for both metrics. The gain grows
    # with GOP length (SOTA decays); at GOP-48 it is smaller than the
    # paper's GOP-60 figure but must be positive on average.
    assert float(np.mean(psnr_gains)) > 0.0
    assert sum(g > 0 for g in psnr_gains) >= 6
    assert sum(l > 0 for l in lpips_improvements) >= 9

    rng = np.random.default_rng(0)
    a = rng.uniform(size=(128, 224, 3))
    b = np.clip(a + rng.normal(scale=0.05, size=a.shape), 0, 1)
    benchmark(lambda: lpips(a, b))
