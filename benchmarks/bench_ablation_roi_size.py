"""Ablation A2 — RoI window size sweep (latency vs quality).

Sweeps the RoI window across the paper's feasible range (foveal minimum
~172 px to beyond the real-time maximum ~300 px on the modeled 720p
frame) and reports the modeled NPU latency next to the measured frame
PSNR of the hybrid upscale on a real decoded G3 frame. Larger windows
buy quality until the 16.66 ms wall.
"""

from __future__ import annotations

from repro.analysis.experiments import default_runner
from repro.analysis.prerender import rendered_sequence
from repro.analysis.tables import format_table
from repro.codec.decoder import VideoDecoder
from repro.codec.encoder import VideoEncoder
from repro.core.detector import RoIDetector
from repro.core.upscaler import RoIAssistedUpscaler
from repro.metrics.psnr import psnr
from repro.platform.calibration import REALTIME_DEADLINE_MS
from repro.platform.device import samsung_tab_s8
from repro.platform.latency import npu_sr_latency_ms

from conftest import emit_report

# Modeled window sides on the 720p frame; eval sides scale by 128/720.
MODELED_SIDES = (100, 172, 240, 300, 400, 560)


def test_ablation_roi_size_sweep(benchmark):
    device = samsung_tab_s8()
    hr = rendered_sequence("G3", 448, 256, 6).frame(5).color
    lr = hr.reshape(128, 2, 224, 2, 3).mean(axis=(1, 3))
    decoded = VideoDecoder().decode_frame(
        VideoEncoder(gop_size=1, quality=70).encode_frame(lr)
    ).rgb
    upscaler = RoIAssistedUpscaler(default_runner())

    rows = []
    psnrs = []
    for modeled_side in MODELED_SIDES:
        eval_side = max(8, round(modeled_side * 128 / 720))
        roi = RoIDetector(eval_side).detect(
            rendered_sequence("G3", 224, 128, 6).frame(5).depth
        ).box
        result = upscaler.upscale(decoded, roi)
        quality = psnr(hr, result.frame)
        latency = npu_sr_latency_ms(modeled_side**2, device)
        psnrs.append(quality)
        rows.append(
            (
                modeled_side,
                eval_side,
                round(latency, 1),
                latency <= REALTIME_DEADLINE_MS,
                round(quality, 3),
            )
        )
    emit_report(
        "ablation_roi_size",
        format_table(
            ["modeled side px", "eval side px", "NPU ms", "real-time", "frame PSNR dB"],
            rows,
            title="A2: RoI window size sweep (G3, S8 Tab model)",
        ),
    )

    # Quality grows with window size; real-time holds only up to ~300.
    assert psnrs[-1] > psnrs[0]
    realtime = [r[3] for r in rows]
    assert realtime[:4] == [True, True, True, True]
    assert realtime[-1] is False

    roi = RoIDetector(54).detect(rendered_sequence("G3", 224, 128, 6).frame(5).depth).box
    benchmark(lambda: upscaler.upscale(decoded, roi))
