"""Fig. 8 — depth-map preprocessing stages.

Runs the four-stage pipeline (foreground extraction, spatial weighting,
layering, layer selection) on rendered game depth buffers and reports
per-stage statistics; benchmarks the full preprocessing + Algorithm-1
search (the work the paper offloads to server GPU shaders).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.depth_preprocess import preprocess_depth
from repro.core.detector import RoIDetector
from repro.render.games import build_game

from conftest import emit_report

GAMES = ("G1", "G3", "G5", "G8", "G10")
W, H = 224, 128


def test_fig08_preprocessing_stages(benchmark):
    rows = []
    for game_id in GAMES:
        frame = build_game(game_id).render_frame(5, W, H)
        result = preprocess_depth(frame.depth)
        box = RoIDetector(54).detect(frame.depth).box
        rows.append(
            (
                game_id,
                round(result.foreground_threshold, 3),
                f"{result.foreground_mask.mean():.2f}",
                result.selected_layer,
                f"{(result.processed > 0).mean():.2f}",
                f"({box.x},{box.y})",
            )
        )
    emit_report(
        "fig08_preprocess",
        format_table(
            ["game", "fg threshold", "fg fraction", "selected layer", "search-space frac", "RoI origin"],
            rows,
            title="Fig. 8: depth preprocessing stages per game (128x224 depth maps)",
        ),
    )

    # The pipeline must shrink the search space below the raw foreground.
    for game_id in GAMES:
        frame = build_game(game_id).render_frame(5, W, H)
        result = preprocess_depth(frame.depth)
        assert (result.processed > 0).mean() <= result.foreground_mask.mean()

    depth = build_game("G3").render_frame(5, W, H).depth
    detector = RoIDetector(54)
    benchmark(lambda: detector.detect(depth))
