"""Table I — the ten game workloads.

Regenerates the workload table with the synthetic scene standing in for
each title (genre-matched; see DESIGN.md substitutions) plus scene
statistics, and benchmarks the renderer on the median-complexity scene.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.render.games import GAME_TABLE, build_game

from conftest import emit_report


def test_table1_workloads(benchmark):
    rows = []
    for game_id, title, genre in GAME_TABLE:
        game = build_game(game_id)
        frame = game.render_frame(0, 112, 64)
        rows.append(
            (
                game_id,
                title,
                genre,
                game.scene.n_triangles(),
                f"{(frame.depth < 1.0).mean():.2f}",
                f"{game.camera_speed:.1f}",
            )
        )
    emit_report(
        "table1_workloads",
        format_table(
            ["id", "paper title", "genre", "triangles", "fg fraction", "cam speed"],
            rows,
            title="Table I: game workloads (synthetic genre-matched scenes)",
        ),
    )
    assert len(rows) == 10

    game = build_game("G3")
    benchmark(lambda: game.render_frame(1, 112, 64))
