"""Sec. II-A / IV-B2 motivation numbers: bandwidth and frame drops.

* Streaming 720p + RoI metadata instead of native 2K cuts bandwidth by
  ~66 % (paper Sec. IV-B2) — measured here with the real codec.
* High-resolution streams suffer heavy frame drops on constrained links
  (the study the paper cites saw 44-90 %) — reproduced with the network
  model's queueing + deadline mechanics.
* Server GPU utilization drops from 79 % to 52 % when rendering 720p
  instead of 1440p, freeing shader capacity for RoI detection.
"""

from __future__ import annotations

from repro.analysis.experiments import bandwidth_comparison
from repro.analysis.tables import format_paper_vs_measured
from repro.network.link import NetworkLink
from repro.platform.latency import server_gpu_utilization

from conftest import emit_report


def test_bandwidth_reduction(benchmark):
    result = bandwidth_comparison(game_id="G3", n_frames=12)
    reduction = result["bandwidth_reduction_pct"]
    report = format_paper_vs_measured(
        [
            ("bandwidth reduction, 720p+RoI vs 2K", "66%", f"{reduction:.1f}%"),
            ("LR bytes/frame (eval scale)", "-", round(result["lr_bytes_per_frame"])),
            ("HR bytes/frame (eval scale)", "-", round(result["hr_bytes_per_frame"])),
        ],
        title="Sec. IV-B2: bandwidth savings from LR streaming",
    )
    emit_report("bandwidth_reduction", report)
    assert 55.0 < reduction < 80.0  # paper: 66 %

    benchmark(lambda: bandwidth_comparison(game_id="G3", n_frames=12))


def test_frame_drops_motivation(benchmark):
    """2K streaming overloads a constrained link; 720p survives."""
    bytes_720p = 30_000  # ~14 Mbps at 60 FPS
    bytes_2k = 90_000  # ~43 Mbps (2K at the same quality, measured ratio)
    link = NetworkLink(bandwidth_mbps=35.0, propagation_ms=8.0, seed=0)
    drops_720 = link.stream_drop_rate(bytes_720p, n_frames=300)
    drops_2k = NetworkLink(bandwidth_mbps=35.0, propagation_ms=8.0, seed=0).stream_drop_rate(
        bytes_2k, n_frames=300
    )
    report = format_paper_vs_measured(
        [
            ("2K stream frame drops", "44-90% (cited study)", f"{drops_2k * 100:.0f}%"),
            ("720p stream frame drops", "low", f"{drops_720 * 100:.0f}%"),
            ("server GPU util at 720p", "52%", f"{server_gpu_utilization(921_600):.0f}%"),
            ("server GPU util at 1440p", "79%", f"{server_gpu_utilization(3_686_400):.0f}%"),
        ],
        title="Sec. II-A motivation: network and server headroom",
    )
    emit_report("frame_drops_motivation", report)
    assert drops_2k > 0.4
    assert drops_720 < 0.1

    benchmark(lambda: NetworkLink(bandwidth_mbps=35.0, seed=0).stream_drop_rate(bytes_2k, n_frames=120))
