"""RoI server-path benchmark: preprocessing, Algorithm-1 search, detect loop.

Measures the fast RoI path (single shared summed-area table, banded
coarse pass, cached center weights, one-pass validation/layer-sums, and
the opt-in temporal warm start) against the frozen pre-PR reference in
``_legacy_roi.py`` and writes the numbers to ``BENCH_roi.json`` at the
repo root so the speedup trajectory survives across PRs.  Run::

    PYTHONPATH=src python benchmarks/bench_roi.py          # full run
    PYTHONPATH=src python benchmarks/bench_roi.py --smoke  # seconds, CI

The full run drives the default 720p detect loop (G3, 256px window) and
asserts the PR's acceptance criteria: >= 3x on the warm-start detect
loop, bit-identical ``RoIBox`` output for the full (non-warm) path on
all ten game scenes, and — for the warm loop — that every frame whose
box differs from the full path is a warm-accepted frame, with its
accept decision (score vs the running full-search reference) recorded in
the report. Warm frames are allowed to differ *only* through that
documented criterion; full-search frames must match the legacy box
exactly. Smoke mode swaps in small frames to exercise every path and
exactness assertion quickly (no speedup floors — tiny shapes don't
amortize anything) and writes ``BENCH_roi.smoke.json`` instead.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from collections import Counter
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.core.config import RoIConfig  # noqa: E402
from repro.core.depth_preprocess import preprocess_depth  # noqa: E402
from repro.core.detector import RoIDetector  # noqa: E402
from repro.core.roi_search import search_roi_scored  # noqa: E402
from repro.render.games import GAME_BUILDERS, build_game  # noqa: E402

from conftest import write_bench_json  # noqa: E402
from _legacy_roi import (  # noqa: E402
    LegacyRoIDetector,
    legacy_preprocess_depth,
    legacy_search_roi,
)

GAME_IDS = list(GAME_BUILDERS)


def _time(fn, repeats: int = 3) -> float:
    """Best-of-N wall time in seconds (fn is called once to warm up)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _sequence(smoke: bool) -> tuple[list[np.ndarray], int]:
    """(depth frames, window side) for the default detect loop."""
    if smoke:
        game = build_game("G3")
        return [game.render_frame(i, 160, 96).depth for i in range(4)], 48
    game = build_game("G3")
    return [game.render_frame(i, 1280, 720).depth for i in range(12)], 256


def _bench_preprocess(depth: np.ndarray, repeats: int) -> dict:
    legacy = legacy_preprocess_depth(depth)
    fast = preprocess_depth(depth)
    for name, a, b in (
        ("foreground_mask", legacy.foreground_mask, fast.foreground_mask),
        ("processed", legacy.processed, fast.processed),
        ("weighted", legacy.weighted, fast.weighted),
        ("layer_index", legacy.layer_index, fast.layer_index),
    ):
        if not np.array_equal(a, b):
            raise AssertionError(f"preprocess field {name} diverged from legacy")
    if legacy.foreground_threshold != fast.foreground_threshold:
        raise AssertionError("foreground_threshold diverged from legacy")
    if legacy.selected_layer != fast.selected_layer:
        raise AssertionError("selected_layer diverged from legacy")

    legacy_s = _time(lambda: legacy_preprocess_depth(depth), repeats)
    fast_s = _time(lambda: preprocess_depth(depth), repeats)
    return {
        "frame_hw": list(depth.shape),
        "fields_equal_legacy": True,
        "legacy_ms": round(legacy_s * 1e3, 3),
        "fast_ms": round(fast_s * 1e3, 3),
        "speedup": round(legacy_s / fast_s, 2),
    }


def _bench_search(depth: np.ndarray, side: int, repeats: int) -> dict:
    pre = preprocess_depth(depth)
    processed, bbox = pre.processed, pre.processed_bbox
    box_legacy = legacy_search_roi(processed, side, side)
    box_fast = search_roi_scored(processed, side, side, bbox=bbox).box
    if box_legacy != box_fast:
        raise AssertionError("banded search box diverged from legacy search")

    legacy_s = _time(lambda: legacy_search_roi(processed, side, side), repeats)
    fast_s = _time(
        lambda: search_roi_scored(processed, side, side, bbox=bbox), repeats
    )
    return {
        "frame_hw": list(processed.shape),
        "window_side": side,
        "box_equal_legacy": True,
        "legacy_ms": round(legacy_s * 1e3, 3),
        "fast_ms": round(fast_s * 1e3, 3),
        "speedup": round(legacy_s / fast_s, 2),
    }


def _iou(a, b) -> float:
    inter = a.intersection_area(b)
    return inter / (a.area + b.area - inter)


def _bench_detect_loop(frames: list[np.ndarray], side: int, repeats: int) -> dict:
    """The headline number: per-frame detection over a rendered sequence.

    Three loops over the same frames: the frozen legacy detector, the fast
    full (non-warm) path, and the warm-start loop. The full path must be
    box-identical to legacy on every frame; warm frames may differ but
    each difference is recorded together with the accept decision that
    permitted it.
    """
    legacy = LegacyRoIDetector(side)
    boxes_legacy = [legacy.detect(d)[0] for d in frames]

    cold = RoIDetector(side)
    boxes_full = [cold.detect(d).box for d in frames]
    full_equal = all(a == b for a, b in zip(boxes_legacy, boxes_full))

    warm_cfg = RoIConfig(warm_start=True)
    warm_det = RoIDetector(side, warm_cfg)
    warm_runs = [warm_det.detect(d) for d in frames]
    modes = Counter(r.search_mode for r in warm_runs)
    divergences = []
    undocumented = 0
    ref = 0.0
    for i, (r, full_box) in enumerate(zip(warm_runs, boxes_full)):
        if r.search_mode == "full":
            ref = r.score
        if r.box != full_box:
            if r.search_mode != "warm":
                undocumented += 1
            divergences.append(
                {
                    "frame": i,
                    "mode": r.search_mode,
                    "score": round(r.score, 3),
                    "reference": round(ref, 3),
                    "accept_floor": round(warm_cfg.warm_start_fraction * ref, 3),
                    "iou_vs_full": round(_iou(r.box, full_box), 3),
                }
            )
            ref = max(ref, r.score)
        elif r.search_mode == "warm":
            ref = max(ref, r.score)
    mean_iou = float(
        np.mean([_iou(r.box, b) for r, b in zip(warm_runs, boxes_full)])
    )

    def run_legacy():
        det = LegacyRoIDetector(side)
        for d in frames:
            det.detect(d)

    def run_full():
        det = RoIDetector(side)
        for d in frames:
            det.detect(d)

    def run_warm():
        det = RoIDetector(side, warm_cfg)
        for d in frames:
            det.detect(d)

    n = len(frames)
    legacy_s = _time(run_legacy, repeats)
    full_s = _time(run_full, repeats)
    warm_s = _time(run_warm, repeats)
    return {
        "sequence": "G3",
        "n_frames": n,
        "frame_hw": list(frames[0].shape),
        "window_side": side,
        "legacy_ms_per_frame": round(legacy_s / n * 1e3, 3),
        "full_ms_per_frame": round(full_s / n * 1e3, 3),
        "warm_ms_per_frame": round(warm_s / n * 1e3, 3),
        "speedup_full": round(legacy_s / full_s, 2),
        "speedup_warm": round(legacy_s / warm_s, 2),
        "full_boxes_equal_legacy": full_equal,
        "warm_modes": dict(modes),
        "warm_mean_iou_vs_full": round(mean_iou, 3),
        "warm_divergences": divergences,
        "warm_undocumented_divergences": undocumented,
    }


def _bench_scene_identity(smoke: bool) -> dict:
    """Full (non-warm) path box identity across all ten game scenes."""
    if smoke:
        w, h, side, frame = 160, 96, 48, 5
    else:
        w, h, side, frame = 1280, 720, 256, 2
    scenes = {}
    identical = True
    for gid in GAME_IDS:
        depth = build_game(gid).render_frame(frame, w, h).depth
        fast = RoIDetector(side).detect(depth).box
        leg, _ = LegacyRoIDetector(side).detect(depth)
        match = fast == leg
        identical &= match
        scenes[gid] = {
            "fast": [fast.x, fast.y],
            "legacy": [leg.x, leg.y],
            "equal": match,
        }
    return {
        "frame_hw": [h, w],
        "window_side": side,
        "all_identical": identical,
        "scenes": scenes,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small frames; exactness asserts only, no speedup floors",
    )
    args = parser.parse_args(argv)

    frames, side = _sequence(args.smoke)
    repeats = 1 if args.smoke else 3

    preprocess = _bench_preprocess(frames[2], repeats)
    search = _bench_search(frames[2], side, repeats)
    detect_loop = _bench_detect_loop(frames, side, repeats)
    identity = _bench_scene_identity(args.smoke)

    report = {
        "mode": "smoke" if args.smoke else "full",
        "machine": {
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "numpy": np.__version__,
            "python": platform.python_version(),
        },
        "preprocess": preprocess,
        "search": search,
        "detect_loop": detect_loop,
        "scene_identity": identity,
    }

    failures = []
    if not identity["all_identical"]:
        failures.append("full-path boxes differ from legacy on some scene")
    if not detect_loop["full_boxes_equal_legacy"]:
        failures.append("full-path loop boxes differ from legacy")
    if detect_loop["warm_undocumented_divergences"]:
        failures.append(
            f"{detect_loop['warm_undocumented_divergences']} non-warm frames "
            "diverged from the full path"
        )
    if not args.smoke:
        # PR acceptance criteria — keep asserting them so regressions in
        # the fast path show up as a failing bench, not a smaller number.
        if detect_loop["speedup_warm"] < 3.0:
            failures.append(
                f"warm detect-loop speedup {detect_loop['speedup_warm']}x < 3x"
            )
        if detect_loop["speedup_full"] < 1.8:
            failures.append(
                f"full detect-loop speedup {detect_loop['speedup_full']}x < 1.8x"
            )
    report["criteria_failures"] = failures

    write_bench_json("roi", report, smoke=args.smoke)
    if failures:
        print("CRITERIA FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
