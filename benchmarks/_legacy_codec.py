"""Frozen pre-fast-path codec, for trajectory benchmarking.

This is a faithful copy of the repo's codec hot loops *before* the fast
codec path (PR 2): per-offset full-frame SAD passes in motion estimation,
a per-block Python loop in motion compensation, and bit-at-a-time
Exp-Golomb entropy coding.  ``bench_codec.py`` keeps measuring the live
path against this fixed reference as the codebase evolves — do not
"optimize" this file.

One deliberate deviation from the seed code: motion-estimation
comparisons use exact ``sad < best_sad`` instead of the old float
``best_sad - 1e-12`` tie epsilon.  The epsilon was removed from the live
path in the same PR that froze this baseline (it demotes genuinely
smaller SADs to ties on real frames), and the baseline adopts the same
comparison so the bench's bitstream byte-identity assertion is
meaningful.  The performance profile is untouched.

Unchanged codec stages (DCT/quantization, color, block reshaping) are
imported from the live modules — they are shared by both paths and not
part of this baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.codec.blocks import block_grid_shape, merge_blocks, pad_to_blocks, split_blocks
from repro.codec.color import (
    rgb_to_ycbcr,
    subsample_chroma,
    upsample_chroma,
    ycbcr_to_rgb,
)
from repro.codec.encoder import PIXEL_SCALE, EncodedFrame
from repro.codec.entropy import zigzag_indices
from repro.codec.transform import dequantize, forward_dct, inverse_dct, quantize


# ----------------------------------------------------------------------
# Bit I/O (per-bit Python loops)
# ----------------------------------------------------------------------
class LegacyBitWriter:
    """Append-only MSB-first bit buffer (bit-at-a-time)."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._accumulator = 0
        self._n_bits = 0

    def write_bit(self, bit: int) -> None:
        self._accumulator = (self._accumulator << 1) | (bit & 1)
        self._n_bits += 1
        if self._n_bits == 8:
            self._bytes.append(self._accumulator)
            self._accumulator = 0
            self._n_bits = 0

    def write_bits(self, value: int, count: int) -> None:
        for shift in range(count - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, value: int) -> None:
        for _ in range(value):
            self.write_bit(0)
        self.write_bit(1)

    def getvalue(self) -> bytes:
        out = bytearray(self._bytes)
        if self._n_bits:
            out.append(self._accumulator << (8 - self._n_bits))
        return bytes(out)

    def __len__(self) -> int:
        return len(self._bytes) * 8 + self._n_bits


class LegacyBitReader:
    """MSB-first reader over a byte string (bit-at-a-time)."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read_bit(self) -> int:
        byte_idx, bit_idx = divmod(self._pos, 8)
        if byte_idx >= len(self._data):
            raise EOFError("bitstream exhausted")
        self._pos += 1
        return (self._data[byte_idx] >> (7 - bit_idx)) & 1

    def read_bits(self, count: int) -> int:
        value = 0
        for _ in range(count):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        count = 0
        while self.read_bit() == 0:
            count += 1
        return count


# ----------------------------------------------------------------------
# Entropy coding (token-at-a-time)
# ----------------------------------------------------------------------
def _write_exp_golomb(writer, value: int) -> None:
    code = value + 1
    n_bits = code.bit_length()
    writer.write_unary(n_bits - 1)
    writer.write_bits(code, n_bits - 1)


def _read_exp_golomb(reader) -> int:
    prefix = reader.read_unary()
    suffix = reader.read_bits(prefix)
    return (1 << prefix) + suffix - 1


def _signed_to_unsigned(value: int) -> int:
    return 2 * value - 1 if value > 0 else -2 * value


def _unsigned_to_signed(code: int) -> int:
    return (code + 1) // 2 if code % 2 else -(code // 2)


def legacy_encode_blocks(blocks: np.ndarray, writer) -> None:
    """Entropy-code quantized integer blocks of shape (N, n, n)."""
    blocks = np.asarray(blocks)
    n = blocks.shape[1]
    rows, cols = zigzag_indices(n)
    scanned = blocks[:, rows, cols].astype(np.int64)
    for coeffs in scanned:
        nonzero = np.flatnonzero(coeffs)
        prev = -1
        for idx in nonzero:
            _write_exp_golomb(writer, int(idx - prev - 1))
            _write_exp_golomb(writer, _signed_to_unsigned(int(coeffs[idx])))
            prev = int(idx)
        _write_exp_golomb(writer, int(n * n - prev - 1))
        _write_exp_golomb(writer, 0)


def legacy_decode_blocks(reader, n_blocks: int, n: int) -> np.ndarray:
    rows, cols = zigzag_indices(n)
    out = np.zeros((n_blocks, n, n), dtype=np.int64)
    for b in range(n_blocks):
        flat = np.zeros(n * n, dtype=np.int64)
        pos = -1
        while True:
            run = _read_exp_golomb(reader)
            level_code = _read_exp_golomb(reader)
            if level_code == 0:
                break
            pos += run + 1
            if pos >= n * n:
                raise ValueError("corrupt bitstream: coefficient index overflow")
            flat[pos] = _unsigned_to_signed(level_code)
        out[b][rows, cols] = flat
    return out


# ----------------------------------------------------------------------
# Motion (per-offset full-frame passes; per-block compensation loop)
# ----------------------------------------------------------------------
def _shift_frame(frame: np.ndarray, dy: int, dx: int) -> np.ndarray:
    h, w = frame.shape
    ys = np.clip(np.arange(h) + dy, 0, h - 1)
    xs = np.clip(np.arange(w) + dx, 0, w - 1)
    return frame[np.ix_(ys, xs)]


def legacy_estimate_motion(
    current: np.ndarray,
    reference: np.ndarray,
    block: int = 8,
    search_radius: int = 7,
) -> np.ndarray:
    """Exhaustive search: one shifted full-frame SAD pass per offset."""
    current = np.asarray(current, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    h, w = current.shape
    nby, nbx = block_grid_shape(h, w, block)
    cur = pad_to_blocks(current, block)
    ref = pad_to_blocks(reference, block)

    best_sad = np.full((nby, nbx), np.inf)
    best_mv = np.zeros((nby, nbx, 2), dtype=np.int64)

    offsets = [
        (dy, dx)
        for dy in range(-search_radius, search_radius + 1)
        for dx in range(-search_radius, search_radius + 1)
    ]
    offsets.sort(key=lambda o: (abs(o[0]) + abs(o[1]), o))

    for dy, dx in offsets:
        shifted = _shift_frame(ref, dy, dx)
        sad = (
            np.abs(cur - shifted)
            .reshape(nby, block, nbx, block)
            .sum(axis=(1, 3))
        )
        better = sad < best_sad
        best_sad = np.where(better, sad, best_sad)
        best_mv[better] = (dy, dx)
    return best_mv


def legacy_compensate(
    reference: np.ndarray, motion_vectors: np.ndarray, block: int = 8
) -> np.ndarray:
    """Per-block gather loop building the motion-compensated prediction."""
    reference = np.asarray(reference, dtype=np.float64)
    h, w = reference.shape
    nby, nbx = block_grid_shape(h, w, block)
    ref = pad_to_blocks(reference, block)
    ph, pw = ref.shape
    predicted = np.empty_like(ref)
    for by in range(nby):
        for bx in range(nbx):
            dy, dx = motion_vectors[by, bx]
            y0 = by * block + int(dy)
            x0 = bx * block + int(dx)
            ys = np.clip(np.arange(y0, y0 + block), 0, ph - 1)
            xs = np.clip(np.arange(x0, x0 + block), 0, pw - 1)
            predicted[
                by * block : (by + 1) * block, bx * block : (bx + 1) * block
            ] = ref[np.ix_(ys, xs)]
    return predicted[:h, :w]


# ----------------------------------------------------------------------
# Frame codec (mirrors VideoEncoder / VideoDecoder on the legacy pieces)
# ----------------------------------------------------------------------
def _legacy_encode_plane(plane, block, quality, writer):
    blocks = split_blocks(plane, block)
    levels = quantize(forward_dct(blocks), quality)
    legacy_encode_blocks(levels, writer)
    recon_blocks = inverse_dct(dequantize(levels, quality))
    return merge_blocks(recon_blocks, plane.shape[0], plane.shape[1], block)


def _legacy_encode_motion(mv, writer):
    for value in mv.reshape(-1):
        _write_exp_golomb(writer, _signed_to_unsigned(int(value)))


class LegacyVideoEncoder:
    """The seed GOP encoder running entirely on the frozen hot loops."""

    def __init__(
        self,
        gop_size: int = 60,
        quality: int = 60,
        block: int = 8,
        search_radius: int = 7,
    ) -> None:
        self.gop_size = gop_size
        self.quality = quality
        self.block = block
        self.search_radius = search_radius
        self._frame_index = 0
        self._recon_y: Optional[np.ndarray] = None
        self._recon_cb: Optional[np.ndarray] = None
        self._recon_cr: Optional[np.ndarray] = None

    def reset(self) -> None:
        self._frame_index = 0
        self._recon_y = self._recon_cb = self._recon_cr = None

    def encode_frame(self, rgb: np.ndarray) -> EncodedFrame:
        rgb = np.asarray(rgb, dtype=np.float64)
        h, w = rgb.shape[:2]
        y, cb, cr = rgb_to_ycbcr(rgb)
        y_p = y * PIXEL_SCALE - 128.0
        cb_p = subsample_chroma(cb) * PIXEL_SCALE
        cr_p = subsample_chroma(cr) * PIXEL_SCALE

        is_reference = self._frame_index % self.gop_size == 0
        writer = LegacyBitWriter()
        mv = None

        if is_reference or self._recon_y is None:
            frame_type = "I"
            recon_y = _legacy_encode_plane(y_p, self.block, self.quality, writer)
            recon_cb = _legacy_encode_plane(cb_p, self.block, self.quality, writer)
            recon_cr = _legacy_encode_plane(cr_p, self.block, self.quality, writer)
        else:
            frame_type = "P"
            mv = legacy_estimate_motion(
                y_p, self._recon_y, block=self.block, search_radius=self.search_radius
            )
            _legacy_encode_motion(mv, writer)
            pred_y = legacy_compensate(self._recon_y, mv, self.block)
            mv_c = np.round(mv / 2.0).astype(np.int64)
            chroma_block = max(self.block // 2, 2)
            pred_cb = legacy_compensate(self._recon_cb, mv_c, chroma_block)
            pred_cr = legacy_compensate(self._recon_cr, mv_c, chroma_block)
            recon_y = pred_y + _legacy_encode_plane(
                y_p - pred_y, self.block, self.quality, writer
            )
            recon_cb = pred_cb + _legacy_encode_plane(
                cb_p - pred_cb, self.block, self.quality, writer
            )
            recon_cr = pred_cr + _legacy_encode_plane(
                cr_p - pred_cr, self.block, self.quality, writer
            )

        self._recon_y = np.clip(recon_y, -128.0, 127.0)
        self._recon_cb = np.clip(recon_cb, -128.0, 127.0)
        self._recon_cr = np.clip(recon_cr, -128.0, 127.0)
        self._frame_index += 1

        return EncodedFrame(
            frame_type=frame_type,
            height=h,
            width=w,
            block=self.block,
            quality=self.quality,
            payload=writer.getvalue(),
            motion_vectors=mv,
        )


def _legacy_decode_plane(reader, height, width, block, quality):
    nby, nbx = block_grid_shape(height, width, block)
    levels = legacy_decode_blocks(reader, nby * nbx, block)
    recon = inverse_dct(dequantize(levels, quality))
    return merge_blocks(recon, height, width, block)


def _legacy_decode_motion(reader, nby, nbx):
    flat = np.empty(nby * nbx * 2, dtype=np.int64)
    for i in range(flat.size):
        flat[i] = _unsigned_to_signed(_read_exp_golomb(reader))
    return flat.reshape(nby, nbx, 2)


@dataclass(frozen=True)
class LegacyDecodedFrame:
    rgb: np.ndarray
    frame_type: str


class LegacyVideoDecoder:
    """The seed GOP decoder running entirely on the frozen hot loops."""

    def __init__(self) -> None:
        self._recon_y = self._recon_cb = self._recon_cr = None

    def reset(self) -> None:
        self._recon_y = self._recon_cb = self._recon_cr = None

    def _to_rgb(self, y, cb, cr):
        h, w = y.shape
        return ycbcr_to_rgb(
            (y + 128.0) / PIXEL_SCALE,
            upsample_chroma(cb / PIXEL_SCALE, h, w),
            upsample_chroma(cr / PIXEL_SCALE, h, w),
        )

    def decode_frame(self, encoded: EncodedFrame) -> LegacyDecodedFrame:
        h, w = encoded.height, encoded.width
        block = encoded.block
        quality = encoded.quality
        ch = -(-h // 2)
        cw = -(-w // 2)
        chroma_block = max(block // 2, 2)
        reader = LegacyBitReader(encoded.payload)

        if encoded.frame_type == "I":
            y = _legacy_decode_plane(reader, h, w, block, quality)
            cb = _legacy_decode_plane(reader, ch, cw, block, quality)
            cr = _legacy_decode_plane(reader, ch, cw, block, quality)
        else:
            nby, nbx = block_grid_shape(h, w, block)
            mv = _legacy_decode_motion(reader, nby, nbx)
            mv_c = np.round(mv / 2.0).astype(np.int64)
            pred_y = legacy_compensate(self._recon_y, mv, block)
            pred_cb = legacy_compensate(self._recon_cb, mv_c, chroma_block)
            pred_cr = legacy_compensate(self._recon_cr, mv_c, chroma_block)
            y = pred_y + _legacy_decode_plane(reader, h, w, block, quality)
            cb = pred_cb + _legacy_decode_plane(reader, ch, cw, block, quality)
            cr = pred_cr + _legacy_decode_plane(reader, ch, cw, block, quality)

        self._recon_y = np.clip(y, -128.0, 127.0)
        self._recon_cb = np.clip(cb, -128.0, 127.0)
        self._recon_cr = np.clip(cr, -128.0, 127.0)
        return LegacyDecodedFrame(
            rgb=self._to_rgb(self._recon_y, self._recon_cb, self._recon_cr),
            frame_type=encoded.frame_type,
        )
