"""Frozen pre-fast-path SR inference, for trajectory benchmarking.

This is a faithful numpy re-implementation of the repo's *original*
inference path (commit ``6873e62``), kept so ``bench_hotpath.py`` can keep
measuring the speedup of the current fast path against a fixed reference
as the codebase evolves:

- float64 activations end to end,
- explicit ``np.pad`` before every conv (a full extra copy of the
  activation, exactly what ``Tensor.pad2d`` materialized),
- the original two-pass im2col (strided window materialized, then copied
  into the column buffer),
- non-in-place bias add / ReLU / residual arithmetic,
- one forward per tile (the original ``upscale_tiled`` loop).

It intentionally does NOT track the live model code — do not "optimize"
this file. Autograd closure bookkeeping is omitted, which only makes the
baseline *faster* than the true original, so reported speedups are
conservative.
"""

from __future__ import annotations

import numpy as np


def _legacy_im2col(x: np.ndarray, kh: int, kw: int, stride: int = 1) -> np.ndarray:
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    cols = np.empty((n, c, kh, kw, out_h * out_w), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            patch = x[
                :, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride
            ]
            cols[:, :, i, j, :] = patch.reshape(n, c, out_h * out_w)
    return cols.reshape(n, c * kh * kw, out_h * out_w)


def _legacy_conv(x: np.ndarray, conv) -> np.ndarray:
    """Apply a ``repro.neural.layers.Conv2d``'s weights the original way."""
    pad = conv.padding
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    n, _, h, w = x.shape
    weight = np.asarray(conv.weight.data, dtype=np.float64)
    c_out, _, kh, kw = weight.shape
    out_h = (h - kh) // conv.stride + 1
    out_w = (w - kw) // conv.stride + 1
    cols = _legacy_im2col(x, kh, kw, conv.stride)
    out = np.matmul(weight.reshape(c_out, -1), cols).reshape(n, c_out, out_h, out_w)
    if conv.bias is not None:
        out = out + np.asarray(conv.bias.data, dtype=np.float64).reshape(1, c_out, 1, 1)
    return out


def _legacy_bilinear_skip(x: np.ndarray, factor: int) -> np.ndarray:
    from repro.sr.interpolate import bilinear

    n, c, h, w = x.shape
    out = np.empty((n, c, h * factor, w * factor), dtype=np.float64)
    for i in range(n):
        hwc = np.ascontiguousarray(x[i].transpose(1, 2, 0))
        out[i] = bilinear(hwc, h * factor, w * factor).transpose(2, 0, 1)
    return out


def legacy_edsr_forward(model, x: np.ndarray) -> np.ndarray:
    """Original float64 EDSR forward on an (N, C, H, W) array."""
    x = np.asarray(x, dtype=np.float64)
    feats = _legacy_conv(x, model.head)
    y = feats
    for block in model.body:
        z = _legacy_conv(y, block.conv1)
        z = np.maximum(z, 0.0)  # fresh array, like Tensor.relu()
        z = _legacy_conv(z, block.conv2)
        y = y + z * block.res_scale
    y = _legacy_conv(y, model.body_tail) + feats
    for stage in model.upsampler.stages:
        if hasattr(stage, "weight"):  # Conv2d
            y = _legacy_conv(y, stage)
        else:  # PixelShuffle
            r = stage.factor
            n, c, h, w = y.shape
            y = (
                y.reshape(n, c // (r * r), r, r, h, w)
                .transpose(0, 1, 4, 2, 5, 3)
                .reshape(n, c // (r * r), h * r, w * r)
            )
    y = _legacy_conv(y, model.tail)
    return y + _legacy_bilinear_skip(x, model.scale)


def legacy_upscale_tiled(
    model, image: np.ndarray, tile: int = 64, overlap: int = 8
) -> np.ndarray:
    """The original per-tile loop: one float64 forward per tile."""
    image = np.asarray(image, dtype=np.float64)
    h, w, c = image.shape
    s = model.scale
    out = np.zeros((h * s, w * s, c))

    step = tile - 2 * overlap
    y = 0
    while y < h:
        x = 0
        core_h = min(step, h - y)
        y0 = max(y - overlap, 0)
        y1 = min(y + core_h + overlap, h)
        while x < w:
            core_w = min(step, w - x)
            x0 = max(x - overlap, 0)
            x1 = min(x + core_w + overlap, w)
            batch = image[y0:y1, x0:x1].transpose(2, 0, 1)[None]
            tile_hr = legacy_edsr_forward(model, batch)[0].transpose(1, 2, 0)
            tile_hr = np.clip(tile_hr, 0.0, 1.0)
            cy = (y - y0) * s
            cx = (x - x0) * s
            out[y * s : (y + core_h) * s, x * s : (x + core_w) * s] = tile_hr[
                cy : cy + core_h * s, cx : cx + core_w * s
            ]
            x += step
        y += step
    return np.clip(out, 0.0, 1.0)
