"""Pipelined-executor benchmark: sustained end-to-end FPS vs the serial loop.

Runs the G3 reference session (720p modeled geometry, GameStreamSR
client, GOP 60) through both executors and writes ``BENCH_pipeline.json``
at the repo root. Run::

    PYTHONPATH=src python benchmarks/bench_pipeline.py          # full run
    PYTHONPATH=src python benchmarks/bench_pipeline.py --smoke  # seconds, CI

Two sustained-FPS views are reported:

* **modeled** (the headline): the per-frame *modeled* server/client stage
  times — the calibrated platform model all paper numbers come from —
  scheduled through the depth-bounded two-stage pipeline
  (:func:`repro.streaming.modeled_pipeline_schedule`). Deterministic and
  host-independent; the >= 1.7x acceptance criterion is asserted here.
* **wall**: measured wall-clock of the two executors on this host. The
  simulation is CPU-bound in both processes, so wall-clock overlap needs
  >= 2 cores; on a single-core host the pipelined run pays the IPC tax
  with no overlap to win back, and the wall speedup is reported but not
  asserted.

A depth sweep documents when ``depth > 2`` helps (it absorbs the I-frame
encode spike at each GOP head), and a ring micro-bench gives the raw
shared-memory transfer numbers the executor builds on. Both executors'
canonical traces are compared byte-for-byte as a bench criterion — a
pipelined speedup that changed the stream would be meaningless.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.core.roi_sizing import plan_roi_window  # noqa: E402
from repro.observability import canonicalize_session_trace  # noqa: E402
from repro.platform.device import get_device  # noqa: E402
from repro.render.games import build_game  # noqa: E402
from repro.sr.pretrained import default_sr_model  # noqa: E402
from repro.sr.runner import SRRunner  # noqa: E402
from repro.streaming import (  # noqa: E402
    GameStreamServer,
    ShmRing,
    StreamGeometry,
    modeled_pipeline_schedule,
    run_session,
    run_session_pipelined,
)
from repro.streaming.client import GameStreamSRClient  # noqa: E402

from conftest import write_bench_json  # noqa: E402

DEVICE = "samsung_tab_s8"
GAME = "G3"


def _make_session(n_frames: int, gop_size: int):
    """Fresh (server, client) pair for the G3 720p-modeled session."""
    device = get_device(DEVICE)
    plan = plan_roi_window(device)
    runner = SRRunner(default_sr_model(profile="tiny"))
    geometry = StreamGeometry(eval_lr_height=64, eval_lr_width=112, lr_source="native")
    server = GameStreamServer(
        build_game(GAME),
        geometry,
        roi_side=plan.side_for_frame(geometry.eval_lr_height),
        gop_size=gop_size,
    )
    client = GameStreamSRClient(device, runner, modeled_roi_side=plan.side)
    return server, client


def _canonical(result) -> str:
    return json.dumps(
        canonicalize_session_trace(result.to_trace_dict()), sort_keys=True
    )


def _bench_sessions(n_frames: int, gop_size: int, depth: int) -> dict:
    server, client = _make_session(n_frames, gop_size)
    t0 = time.perf_counter()
    serial = run_session(server, client, n_frames=n_frames)
    serial_wall_s = time.perf_counter() - t0

    server, client = _make_session(n_frames, gop_size)
    t0 = time.perf_counter()
    pipelined = run_session_pipelined(
        server, client, n_frames=n_frames, depth=depth
    )
    pipelined_wall_s = time.perf_counter() - t0

    identical = _canonical(serial) == _canonical(pipelined)

    traces = serial.frame_traces()
    sweep = {}
    for d in (1, 2, 4, 8):
        sched = modeled_pipeline_schedule(traces, depth=d)
        sweep[str(d)] = {
            "fps": round(sched.pipelined_fps, 2),
            "speedup": round(sched.speedup, 3),
        }
    sched = modeled_pipeline_schedule(traces, depth=depth)

    pipe_metrics = pipelined.metrics.to_dict()
    queue_wait = pipe_metrics.get("pipeline/queue_wait_ms", {})
    return {
        "session": {
            "game": GAME,
            "device": DEVICE,
            "design": "gamestreamsr",
            "modeled_geometry": "1280x720 -> 2560x1440",
            "n_frames": n_frames,
            "gop_size": gop_size,
            "depth": depth,
        },
        "byte_identical": identical,
        "modeled": {
            "serial_fps": round(sched.serial_fps, 2),
            "pipelined_fps": round(sched.pipelined_fps, 2),
            "speedup": round(sched.speedup, 3),
            "server_busy_ms_per_frame": round(sched.server_busy_ms / n_frames, 2),
            "client_busy_ms_per_frame": round(sched.client_busy_ms / n_frames, 2),
            "depth_sweep": sweep,
        },
        "wall": {
            "serial_fps": round(n_frames / serial_wall_s, 2),
            "pipelined_fps": round(n_frames / pipelined_wall_s, 2),
            "speedup": round(serial_wall_s / pipelined_wall_s, 3),
            "serial_s": round(serial_wall_s, 3),
            "pipelined_s": round(pipelined_wall_s, 3),
        },
        "pipeline_observability": {
            "producer_stalls": pipe_metrics.get("pipeline/producer_stalls", {}).get(
                "value"
            ),
            "consumer_stalls": pipe_metrics.get("pipeline/consumer_stalls", {}).get(
                "value", 0.0
            ),
            "mean_queue_wait_ms": round(queue_wait.get("mean", 0.0), 3),
        },
    }


def _bench_ring(iterations: int) -> dict:
    """Raw shared-memory ring throughput (same-process push/pop pairs)."""
    out = {}
    for label, size in (("64KiB", 64 << 10), ("1MiB", 1 << 20)):
        payload = b"\xa5" * size
        ring = ShmRing(capacity=4, slot_bytes=size)
        try:
            t0 = time.perf_counter()
            for i in range(iterations):
                ring.push(payload)
                ring.pop(i)
            elapsed = time.perf_counter() - t0
        finally:
            ring.close()
            ring.unlink()
        out[label] = {
            "roundtrips_per_s": round(iterations / elapsed, 1),
            "throughput_mb_s": round(iterations * size / elapsed / 1e6, 1),
        }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny session, no speedup criteria (CI smoke)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        sessions = _bench_sessions(n_frames=6, gop_size=3, depth=2)
        ring = _bench_ring(iterations=200)
    else:
        sessions = _bench_sessions(n_frames=60, gop_size=60, depth=2)
        ring = _bench_ring(iterations=2000)

    report = {
        "mode": "smoke" if args.smoke else "full",
        "machine": {
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "numpy": np.__version__,
            "python": platform.python_version(),
        },
        "sessions": sessions,
        "ring": ring,
    }

    failures = []
    if not sessions["byte_identical"]:
        failures.append("pipelined canonical trace differs from serial")
    if not args.smoke:
        # PR acceptance criteria — sustained end-to-end FPS on the G3
        # 720p-modeled reference session at depth 2.
        if sessions["modeled"]["speedup"] < 1.7:
            failures.append(
                f"modeled pipeline speedup {sessions['modeled']['speedup']}x < 1.7x"
            )
        if (os.cpu_count() or 1) >= 2 and sessions["wall"]["speedup"] < 1.15:
            # Wall overlap needs a second core; single-core hosts report
            # the number without asserting it.
            failures.append(
                f"wall pipeline speedup {sessions['wall']['speedup']}x < 1.15x "
                f"on a {os.cpu_count()}-core host"
            )
    report["criteria_failures"] = failures

    write_bench_json("pipeline", report, smoke=args.smoke)
    if failures:
        print("CRITERIA FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
