"""Shared helpers for the figure/table benchmarks.

Each bench regenerates one paper artifact: it computes the experiment
(cached under ``.cache/``), prints a paper-vs-measured table, writes the
same table to ``benchmarks/reports/``, and times a representative kernel
under pytest-benchmark. Run with::

    pytest benchmarks/ --benchmark-only

Heavy experiments are cached — the first run renders/encodes/scores real
frame sequences; later runs are fast.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPORTS_DIR = Path(__file__).parent / "reports"


def emit_report(name: str, text: str) -> None:
    """Print a bench table and persist it under benchmarks/reports/."""
    REPORTS_DIR.mkdir(exist_ok=True)
    (REPORTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}", file=sys.stderr)
