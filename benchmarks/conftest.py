"""Shared helpers for the figure/table benchmarks.

Each bench regenerates one paper artifact: it computes the experiment
(cached under ``.cache/``), prints a paper-vs-measured table, writes the
same table to ``benchmarks/reports/``, and times a representative kernel
under pytest-benchmark. Run with::

    pytest benchmarks/ --benchmark-only

Heavy experiments are cached — the first run renders/encodes/scores real
frame sequences; later runs are fast.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPORTS_DIR = Path(__file__).parent / "reports"
REPO_ROOT = Path(__file__).resolve().parents[1]


def emit_report(name: str, text: str) -> None:
    """Print a bench table and persist it under benchmarks/reports/."""
    REPORTS_DIR.mkdir(exist_ok=True)
    (REPORTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}", file=sys.stderr)


def write_bench_json(name: str, report: dict, smoke: bool) -> Path:
    """Write ``BENCH_<name>[.smoke].json`` at the repo root and echo it.

    The single place bench reports are serialized: every report carries a
    leading ``"smoke"`` schema marker, so tooling reading the JSON never
    has to infer the mode from the filename (smoke numbers use tiny
    shapes and must not be compared against full-run trajectories).
    """
    report = {"smoke": smoke, **report}
    filename = f"BENCH_{name}.smoke.json" if smoke else f"BENCH_{name}.json"
    out_path = REPO_ROOT / filename
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {out_path}", file=sys.stderr)
    return out_path
