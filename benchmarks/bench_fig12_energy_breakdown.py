"""Fig. 12 — energy consumption breakdown (G3, Pixel 7 Pro).

Paper anchors: SOTA spends ~46 % of pipeline energy in (software) decode;
GameStreamSR cuts that to ~6 % via the hardware decoder, leaving upscaling
at ~85 % of its (much smaller) total; display/network components are equal
across designs; our upscaling energy is slightly above SOTA's.
"""

from __future__ import annotations

from repro.analysis.experiments import performance_sessions
from repro.analysis.tables import format_paper_vs_measured, format_table

from conftest import emit_report

# Display+network energy is equal across designs by construction (Sec. V-B);
# the two sums merely accumulate in different orders, so equality holds to ulp.
_EQUAL_ENERGY_TOL = 1e-9


def test_fig12_energy_breakdown(benchmark):
    sessions = performance_sessions("pixel_7_pro", game_ids=("G3",))
    ours = sessions["gamestreamsr"]["G3"].gop_weighted_energy(60)
    nemo = sessions["nemo"]["G3"].gop_weighted_energy(60)

    rows = []
    for category in ("decode", "upscale", "network", "display"):
        rows.append(
            (
                category,
                f"{getattr(ours, category):.1f} ({ours.shares()[category] * 100:.0f}%)",
                f"{getattr(nemo, category):.1f} ({nemo.shares()[category] * 100:.0f}%)",
            )
        )
    rows.append(("TOTAL (mJ/frame)", f"{ours.total:.1f}", f"{nemo.total:.1f}"))
    table = format_table(
        ["component", "GameStreamSR", "SOTA"],
        rows,
        title="Fig. 12: per-frame energy breakdown, G3 on Pixel 7 Pro (GOP-60)",
    )
    shape = format_paper_vs_measured(
        [
            ("SOTA decode share", "46%", f"{nemo.shares()['decode'] * 100:.0f}%"),
            ("ours decode share", "6%", f"{ours.shares()['decode'] * 100:.0f}%"),
            ("ours upscale share", "85%", f"{ours.shares()['upscale'] * 100:.0f}%"),
            ("ours/SOTA upscaling energy", "slightly > 1", f"{ours.upscale / nemo.upscale:.2f}"),
            ("display+network equal", "yes", abs(ours.display - nemo.display) < _EQUAL_ENERGY_TOL),
        ],
        title="Fig. 12 anchors",
    )
    emit_report("fig12_energy_breakdown", table + "\n\n" + shape)

    assert abs(nemo.shares()["decode"] - 0.46) < 0.08
    assert abs(ours.shares()["decode"] - 0.06) < 0.03
    assert abs(ours.shares()["upscale"] - 0.85) < 0.06
    assert 1.0 < ours.upscale / nemo.upscale < 1.5

    session = sessions["gamestreamsr"]["G3"]
    benchmark(lambda: session.gop_weighted_energy(60).shares())
