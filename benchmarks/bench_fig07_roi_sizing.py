"""Fig. 7 — RoI window sizing from foveal physiology and device capability.

Reproduces the paper's sizing math: the S8 Tab's foveal minimum of
~172 px on the 720p frame, and the ~300 px real-time maximum found by the
step-1 device probe on both evaluation devices.
"""

from __future__ import annotations

from repro.analysis.experiments import roi_sizing_table
from repro.analysis.tables import format_paper_vs_measured, format_table
from repro.core.roi_sizing import plan_roi_window
from repro.platform.device import samsung_tab_s8

from conftest import emit_report


def test_fig07_roi_sizing(benchmark):
    rows = roi_sizing_table()
    table = format_table(
        ["device", "ppi", "view cm", "min side", "max side", "chosen", "RoI SR ms"],
        [
            (
                r["device"], r["ppi"], r["viewing_cm"], r["min_side"],
                r["max_side"], r["chosen_side"], round(r["roi_latency_ms"], 2),
            )
            for r in rows
        ],
        title="Fig. 7: RoI window sizing (LR-frame pixels)",
    )
    s8 = next(r for r in rows if r["device"] == "samsung_tab_s8")
    shape = format_paper_vs_measured(
        [
            ("S8 foveal min side (px)", "~172", s8["min_side"]),
            ("S8 real-time max side (px)", "~300", s8["max_side"]),
            ("RoI SR within 16.66 ms", "yes", s8["roi_latency_ms"] <= 16.66),
            ("max side covers foveal min", "yes", s8["meets_foveal"]),
        ],
        title="Fig. 7 / Sec. IV-B1 anchors",
    )
    emit_report("fig07_roi_sizing", table + "\n\n" + shape)

    assert abs(s8["min_side"] - 172) <= 5
    assert abs(s8["max_side"] - 300) <= 10
    for r in rows:
        assert r["meets_foveal"]

    device = samsung_tab_s8()
    benchmark(lambda: plan_roi_window(device))
