"""Fig. 13 — transient PSNR over consecutive GOPs for Witcher 3 (G3).

The paper's quality dynamics: SOTA peaks at each reference frame (full
DNN SR) but decays across the GOP as bilinear MV/residual reconstruction
accumulates error, sinking below the 30 dB acceptability line; ours is
slightly lower at the reference but *consistent* across the whole GOP.

Real pixels end-to-end: render -> encode -> decode -> upscale -> PSNR
against the native HR render (reduced geometry; see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import quality_sessions
from repro.analysis.tables import format_paper_vs_measured, format_table
from repro.metrics.psnr import psnr

from conftest import emit_report

N_FRAMES = 72  # two 36-frame GOPs
GOP = 36


def test_fig13_transient_psnr(benchmark):
    sessions = quality_sessions(
        "G3", designs=("gamestreamsr", "nemo"), n_frames=N_FRAMES, gop_size=GOP,
        with_lpips=False,
    )
    ours = sessions["gamestreamsr"].psnr_series()
    nemo = sessions["nemo"].psnr_series()

    rows = [
        (i, "I" if i % GOP == 0 else "P", round(o, 2), round(n, 2))
        for i, (o, n) in enumerate(zip(ours, nemo))
    ]
    table = format_table(
        ["frame", "type", "GameStreamSR dB", "SOTA dB"],
        rows,
        title=f"Fig. 13: transient PSNR, G3, {N_FRAMES // GOP} GOPs of {GOP}",
    )

    nemo_refs = [nemo[i] for i in range(0, N_FRAMES, GOP)]
    nemo_tails = [nemo[i] for i in range(GOP - 4, N_FRAMES, GOP)]
    shape = format_paper_vs_measured(
        [
            ("SOTA peaks at reference frames", "yes", min(nemo_refs) > np.mean(nemo)),
            ("SOTA decays within each GOP (dB)", "falls below 30", round(float(np.mean(nemo_refs) - np.mean(nemo_tails)), 2)),
            ("SOTA late-GOP PSNR < reference", "yes", float(np.mean(nemo_tails)) < float(np.mean(nemo_refs))),
            ("ours variation across GOP (dB)", "flat/consistent", round(max(ours) - min(ours), 2)),
            ("ours PSNR consistently above SOTA tail", "yes", min(ours) > float(np.mean(nemo_tails))),
        ],
        title="Fig. 13 shape check",
    )
    emit_report("fig13_psnr_transient", table + "\n\n" + shape)

    # Shape assertions.
    assert float(np.mean(nemo_refs)) > float(np.mean(nemo_tails)) + 0.5
    assert max(ours) - min(ours) < 1.5  # ours is flat
    assert min(ours) > float(np.mean(nemo_tails))  # ours wins late in GOP

    # Kernel: per-frame PSNR scoring.
    rng = np.random.default_rng(0)
    a = rng.uniform(size=(256, 448, 3))
    b = np.clip(a + rng.normal(scale=0.02, size=a.shape), 0, 1)
    benchmark(lambda: psnr(a, b))
