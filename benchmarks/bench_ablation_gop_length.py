"""Ablation A4 — PSNR gain over SOTA vs GOP length.

The paper's ~2 dB average gain (Fig. 14a) is a GOP-60 number: NEMO's
non-reference reconstruction decays across the GOP, so the longer the
GOP (and game streaming *shortens* GOPs vs video streaming, making
reference peaks more frequent but each tail deeper), the further its
average falls behind GameStreamSR's flat quality. This bench sweeps the
GOP length on G3 and shows the gain growing monotonically — connecting
our reduced-geometry numbers to the paper's headline.
"""

from __future__ import annotations

from repro.analysis.experiments import quality_sessions
from repro.analysis.tables import format_table

from conftest import emit_report

GOP_LENGTHS = (12, 24, 48)


def test_ablation_gop_length(benchmark):
    rows = []
    gains = []
    for gop in GOP_LENGTHS:
        sessions = quality_sessions(
            "G3", designs=("gamestreamsr", "nemo"), n_frames=gop, gop_size=gop,
            with_lpips=False,
        )
        ours = sessions["gamestreamsr"].mean_psnr()
        nemo = sessions["nemo"].mean_psnr()
        gains.append(ours - nemo)
        rows.append((gop, round(ours, 2), round(nemo, 2), f"{ours - nemo:+.2f}"))
    emit_report(
        "ablation_gop_length",
        format_table(
            ["GOP length", "ours PSNR dB", "SOTA PSNR dB", "gain dB"],
            rows,
            title="A4: PSNR gain over SOTA vs GOP length (G3; paper's Fig. 14a uses GOP-60)",
        ),
    )

    # The gain must grow monotonically with GOP length (SOTA decays).
    assert gains == sorted(gains)
    assert gains[-1] > gains[0] + 0.3

    session = quality_sessions("G3", designs=("gamestreamsr",), n_frames=12, gop_size=12, with_lpips=False)
    benchmark(lambda: session["gamestreamsr"].mean_psnr())
