"""Fig. 10 — upscaling speedup, MTP improvement, and MTP breakdown.

(a) Reference-frame upscaling speedup ~13x (S8) / ~14x (Pixel),
    non-reference >= 1.5x, GOP-60 ~2x; output frame rate 4.6 -> ~60 FPS.
(b) End-to-end motion-to-photon improvement ~3.8-4x for reference frames,
    with GameStreamSR under 70 ms everywhere.
(c) Per-stage MTP breakdown for Witcher 3 (G3) on the Pixel 7 Pro.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import ALL_GAME_IDS, performance_sessions
from repro.analysis.tables import format_paper_vs_measured, format_table
from repro.streaming.mtp import MTP_STAGES

from conftest import emit_report

PAPER = {
    "samsung_tab_s8": {"ref_speedup": 13.0, "ref_fps": 61.7, "sota_fps": 4.6, "mtp_x": 3.8},
    "pixel_7_pro": {"ref_speedup": 14.0, "ref_fps": 61.0, "sota_fps": 4.3, "mtp_x": 4.0},
}


def _sessions(device_name):
    return performance_sessions(device_name, game_ids=ALL_GAME_IDS)


def test_fig10a_upscaling_speedup(benchmark):
    rows = []
    checks = []
    for device_name, paper in PAPER.items():
        ours = _sessions(device_name)["gamestreamsr"]
        nemo = _sessions(device_name)["nemo"]
        ref_ours = float(np.mean([s.mean_upscale_ms(True) for s in ours.values()]))
        ref_nemo = float(np.mean([s.mean_upscale_ms(True) for s in nemo.values()]))
        nonref_ours = float(np.mean([s.mean_upscale_ms(False) for s in ours.values()]))
        nonref_nemo = float(np.mean([s.mean_upscale_ms(False) for s in nemo.values()]))
        gop_ours = float(np.mean([s.gop_weighted_upscale_ms(60) for s in ours.values()]))
        gop_nemo = float(np.mean([s.gop_weighted_upscale_ms(60) for s in nemo.values()]))
        rows += [
            (device_name, "ref speedup", f"{paper['ref_speedup']:.0f}x", f"{ref_nemo / ref_ours:.1f}x"),
            (device_name, "non-ref speedup", ">= 1.5x", f"{nonref_nemo / nonref_ours:.2f}x"),
            (device_name, "GOP-60 speedup", "~2x", f"{gop_nemo / gop_ours:.2f}x"),
            (device_name, "ref FPS (ours)", f"{paper['ref_fps']}", f"{1000 / ref_ours:.1f}"),
            (device_name, "ref FPS (SOTA)", f"{paper['sota_fps']}", f"{1000 / ref_nemo:.1f}"),
        ]
        checks.append((ref_nemo / ref_ours, nonref_nemo / nonref_ours, 1000 / ref_ours))

    emit_report(
        "fig10a_speedup",
        format_table(["device", "metric", "paper", "measured"], rows, title="Fig. 10a: upscaling performance"),
    )
    for ref_speedup, nonref_speedup, fps in checks:
        assert 11.0 < ref_speedup < 16.0
        assert nonref_speedup >= 1.45
        assert fps >= 59.0  # real-time output

    benchmark(lambda: _sessions("samsung_tab_s8"))


def test_fig10b_mtp_improvement(benchmark):
    rows = []
    for device_name, paper in PAPER.items():
        ours = _sessions(device_name)["gamestreamsr"]
        nemo = _sessions(device_name)["nemo"]
        ours_ref = float(np.mean([s.mean_mtp(True).total_ms for s in ours.values()]))
        nemo_ref = float(np.mean([s.mean_mtp(True).total_ms for s in nemo.values()]))
        ours_nonref = float(np.mean([s.mean_mtp(False).total_ms for s in ours.values()]))
        nemo_nonref = float(np.mean([s.mean_mtp(False).total_ms for s in nemo.values()]))
        rows += [
            (device_name, "ref MTP improvement", f"~{paper['mtp_x']}x", f"{nemo_ref / ours_ref:.2f}x"),
            (device_name, "ours ref MTP (ms)", "< 70", f"{ours_ref:.1f}"),
            (device_name, "ours non-ref MTP (ms)", "< 70", f"{ours_nonref:.1f}"),
            (device_name, "SOTA non-ref MTP (ms)", "< 100", f"{nemo_nonref:.1f}"),
        ]
        assert 3.2 < nemo_ref / ours_ref < 5.0
        assert ours_ref < 70.0 and ours_nonref < 70.0
        assert nemo_nonref < 100.0

    emit_report(
        "fig10b_mtp",
        format_table(["device", "metric", "paper", "measured"], rows, title="Fig. 10b: motion-to-photon latency"),
    )

    ours_g3 = _sessions("pixel_7_pro")["gamestreamsr"]["G3"]
    benchmark(lambda: ours_g3.mean_mtp(True))


def test_fig10c_mtp_breakdown_g3_pixel(benchmark):
    sessions = _sessions("pixel_7_pro")
    ours = sessions["gamestreamsr"]["G3"].mean_mtp(True)
    nemo = sessions["nemo"]["G3"].mean_mtp(True)
    rows = [
        (stage, round(ours.stage(stage), 1), round(nemo.stage(stage), 1))
        for stage in MTP_STAGES
    ] + [("TOTAL", round(ours.total_ms, 1), round(nemo.total_ms, 1))]
    table = format_table(
        ["stage", "GameStreamSR ms", "SOTA ms"],
        rows,
        title="Fig. 10c: MTP breakdown, G3 reference frame, Pixel 7 Pro",
    )
    shape = format_paper_vs_measured(
        [
            ("ours upscaling stage (ms)", "16.4", round(ours.stage("upscale"), 2)),
            ("SOTA upscaling stage (ms)", "~233", round(nemo.stage("upscale"), 1)),
            ("SOTA upscaling alone violates 150 ms MTP", "yes", nemo.stage("upscale") > 150),
        ],
        title="Fig. 10c anchors",
    )
    emit_report("fig10c_mtp_breakdown", table + "\n\n" + shape)

    assert abs(ours.stage("upscale") - 16.4) < 0.5
    assert nemo.stage("upscale") > 200.0

    benchmark(lambda: sessions["gamestreamsr"]["G3"].mean_mtp(False))
