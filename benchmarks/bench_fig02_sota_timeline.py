"""Fig. 2 — SOTA super-resolution execution timeline over 3 GOPs.

The paper's motivating plot: NEMO's reference-frame upscaling towers over
the 16.66 ms deadline and even its non-reference frames miss it. The
bench reproduces the staircase and benchmarks the NEMO non-reference
reconstruction kernel (the per-frame work behind the timeline).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import sota_timeline
from repro.analysis.tables import format_paper_vs_measured, format_table
from repro.baselines.nemo import reconstruct_nonreference
from conftest import emit_report


def test_fig02_sota_timeline(benchmark):
    rows = sota_timeline(device_name="samsung_tab_s8", n_gops=3, gop_size=8)
    table = format_table(
        ["frame", "type", "upscale ms", "meets 16.66 ms"],
        [(r["frame"], r["type"], round(r["upscale_ms"], 1), r["meets_deadline"]) for r in rows],
        title="Fig. 2: SOTA (NEMO) upscaling timeline, 3 GOPs, S8 Tab",
    )

    refs = [r["upscale_ms"] for r in rows if r["type"] == "I"]
    nonrefs = [r["upscale_ms"] for r in rows if r["type"] == "P"]
    summary = format_paper_vs_measured(
        [
            ("reference upscale latency (ms)", "~217 (4.6 FPS)", round(float(np.mean(refs)), 1)),
            ("non-reference latency (ms)", "> 16.66 (violates 60 FPS)", round(float(np.mean(nonrefs)), 1)),
            ("any frame real-time?", "no", any(r["meets_deadline"] for r in rows)),
        ],
        title="Fig. 2 shape check",
    )
    emit_report("fig02_sota_timeline", table + "\n\n" + summary)

    assert all(not r["meets_deadline"] for r in rows)
    assert min(refs) > 10 * max(nonrefs) / 2  # reference towers over non-ref

    # Kernel: the per-frame NEMO reconstruction math at eval scale.
    rng = np.random.default_rng(0)
    hr_ref = rng.uniform(size=(128, 224, 3))
    mv = rng.integers(-3, 4, size=(8, 14, 2))
    residual = rng.normal(scale=0.02, size=(64, 112, 3))
    benchmark(lambda: reconstruct_nonreference(hr_ref, mv, residual, 2, 8))
