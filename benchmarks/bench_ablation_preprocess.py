"""Ablation A1 — depth-preprocessing design choices (DESIGN.md index).

Compares (a) quantile vs the paper's literal equal-range layering and
(b) center-bias weighting on/off, by where the detected RoI lands across
the ten games. The metric is the RoI centre's distance from the frame
centre — the paper's Insight-1 says the player's focus (and our animated
subjects) sit near the centre.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.core.config import RoIConfig
from repro.core.detector import RoIDetector
from repro.render.games import GAME_TABLE, build_game

from conftest import emit_report

W, H = 224, 128
SIDE = 54
# Float summation order differs between the default and ablation paths;
# allow ties to within one accumulation ulp when comparing their means.
_TIE_SLACK = 1e-9

VARIANTS = {
    "quantile+center (default)": RoIConfig(),
    "range layering (paper literal)": RoIConfig(layer_mode="range"),
    "no center weighting": RoIConfig(center_weight=0.0),
}


def _mean_center_distance(config: RoIConfig) -> float:
    detector = RoIDetector(SIDE, config)
    distances = []
    for game_id, _, _ in GAME_TABLE:
        frame = build_game(game_id).render_frame(5, W, H)
        cx, cy = detector.detect(frame.depth).box.center
        distances.append(float(np.hypot(cx - W / 2, cy - H / 2)))
    return float(np.mean(distances))


def test_ablation_preprocessing_variants(benchmark):
    results = {name: _mean_center_distance(cfg) for name, cfg in VARIANTS.items()}
    table = format_table(
        ["variant", "mean RoI-centre distance (px)"],
        [(name, round(dist, 1)) for name, dist in results.items()],
        title="A1: preprocessing ablation over the ten games (frame centre = player focus)",
    )
    emit_report("ablation_preprocess", table)

    default = results["quantile+center (default)"]
    # The default must track the central subject better than both ablations.
    assert default <= results["range layering (paper literal)"] + _TIE_SLACK
    assert default < results["no center weighting"]
    assert default < 30.0  # lands near the centre in absolute terms

    frame = build_game("G3").render_frame(5, W, H)
    detector = RoIDetector(SIDE, RoIConfig())
    benchmark(lambda: detector.detect(frame.depth))
