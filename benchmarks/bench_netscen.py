"""Network-scenario benchmark: static knob configs vs the ABR loop.

For each trace-driven link scenario (canned cellular/WiFi traces from
:mod:`repro.network.trace`) this streams the same session through the
GameStreamSR client once per *static* knob configuration (pinned codec
quality / GOP length / SR backend, mirroring the ABR ladder's rungs)
and once with the :class:`~repro.streaming.abr.ABRController` closing
the loop, and writes ``BENCH_netscen.json`` at the repo root. Run::

    PYTHONPATH=src python benchmarks/bench_netscen.py          # full run
    PYTHONPATH=src python benchmarks/bench_netscen.py --smoke  # seconds, CI

Reported per scenario x arm:

* **conformance**: fraction of frames delivered inside the per-frame
  network budget *and* upscaled inside the 16.66 ms realtime deadline
  (:meth:`SessionResult.conformance_rate` — skipped reference-lost
  frames fail too, so GOP recovery speed is priced in);
* **mtp**: motion-to-photon mean / p50 / p99 across the session;
* **transport**: drop rate, retransmissions, mean delivered bitrate.

Acceptance (full run): on at least one bursty cellular trace the ABR
arm strictly beats *every* static configuration on conformance — the
co-adaptation claim the PR makes.
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.core.roi_sizing import plan_roi_window  # noqa: E402
from repro.network import SCENARIO_NAMES  # noqa: E402
from repro.platform.device import get_device  # noqa: E402
from repro.sr.backends import build_backend  # noqa: E402
from repro.sr.pretrained import default_sr_model  # noqa: E402
from repro.sr.runner import SRRunner  # noqa: E402
from repro.streaming import (  # noqa: E402
    GameStreamServer,
    StreamGeometry,
    build_abr,
    run_session,
)
from repro.streaming.client import GameStreamSRClient  # noqa: E402

from conftest import write_bench_json  # noqa: E402

DEVICE = "samsung_tab_s8"
PROFILE = "tiny"
GAME = "G3"
NET_BUDGET_MS = 100.0
#: Traces where the burst-loss + outage structure is the point; the
#: acceptance criterion requires the ABR arm to win on one of these.
BURSTY_TRACES = ("lte_walk", "lte_drive")
#: Static arms pin the knobs the ABR ladder co-adapts (quality, GOP
#: length, SR backend) to one rung's operating point for the whole
#: session. Static RoI stays at the device plan — exactly what a
#: non-adaptive GameStreamSR deployment would ship.
STATIC_ARMS = (
    ("static_hq", dict(quality=75, gop_size=60, backend="edsr")),
    ("static_default", dict(quality=60, gop_size=60, backend="edsr")),
    ("static_balanced", dict(quality=45, gop_size=30, backend="quicksrnet")),
    ("static_low", dict(quality=32, gop_size=15, backend="quicksrnet")),
)


def _run_arm(arm, cfg, scenario, n_frames, game, device, plan, runner):
    geometry = StreamGeometry(eval_lr_height=64, eval_lr_width=112, lr_source="native")
    client = GameStreamSRClient(device, runner, modeled_roi_side=plan.side)
    knobs = dict(
        scenario=scenario,
        link_deadline_ms=NET_BUDGET_MS,
        skip_dropped=True,
    )
    if cfg is None:  # the ABR arm
        server = GameStreamServer(
            game, geometry, roi_side=plan.side_for_frame(64), gop_size=60
        )
        knobs["abr"] = build_abr(
            plan.side, plan.min_side, 720,
            runner=runner, profile=PROFILE, net_budget_ms=NET_BUDGET_MS,
        )
    else:
        server = GameStreamServer(
            game, geometry,
            roi_side=plan.side_for_frame(64), gop_size=cfg["gop_size"],
        )
        server.encoder.quality = cfg["quality"]
        knobs["sr_backend"] = build_backend(
            cfg["backend"], profile=PROFILE,
            runner=runner if cfg["backend"] == "edsr" else None,
        )
    result = run_session(server, client, n_frames=n_frames, **knobs)

    mtps = [r.mtp.total_ms for r in result.records]
    metrics = result.metrics.to_dict()
    point = {
        "conformance": round(result.conformance_rate(), 4),
        "drop_rate": round(result.drop_rate(), 4),
        "mtp_mean_ms": round(float(np.mean(mtps)), 3),
        "mtp_p50_ms": round(float(np.percentile(mtps, 50)), 3),
        "mtp_p99_ms": round(float(np.percentile(mtps, 99)), 3),
        "bitrate_mbps": round(result.mean_bitrate_mbps(), 3),
        "retransmissions": result.total_retransmissions(),
    }
    if cfg is not None:
        point["knobs"] = dict(cfg)
    else:
        abr = knobs["abr"]
        point["abr"] = {
            "mean_quality": round(
                metrics.get("abr/quality", {}).get("mean", 0.0), 2
            ),
            "downshifts": abr.n_downshifts,
            "upshifts": abr.n_upshifts,
            "idr_requests": abr.n_idr_requests,
            "final_rung": abr.rung.name,
            "rung_frames": {
                rung.name: int(
                    metrics.get(f"abr/frames_{rung.name}", {}).get("value", 0)
                )
                for rung in abr.ladder
            },
        }
    return point


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="two scenarios, a dozen frames, no acceptance criteria (CI smoke)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scenarios = ["wifi_stable", "lte_drive"]
        n_frames = 12
    else:
        scenarios = list(SCENARIO_NAMES)
        # 300 frames = 5 s of 60 FPS session time: spans lte_drive's
        # first outage segment (1.5-3.5 s) plus the recovery after it.
        n_frames = 300

    from repro.render.games import build_game

    device = get_device(DEVICE)
    plan = plan_roi_window(device)
    runner = SRRunner(default_sr_model(profile=PROFILE))
    game = build_game(GAME)
    arms = list(STATIC_ARMS) + [("abr", None)]

    results = {}
    for scenario in scenarios:
        results[scenario] = {}
        for arm, cfg in arms:
            point = _run_arm(
                arm, cfg, scenario, n_frames, game, device, plan, runner
            )
            results[scenario][arm] = point
            print(
                f"{scenario:14s} {arm:16s} conf {point['conformance']:.3f}"
                f"  drops {point['drop_rate']:.3f}"
                f"  mtp {point['mtp_mean_ms']:6.1f} ms"
                f"  {point['bitrate_mbps']:5.1f} Mbps",
                file=sys.stderr,
            )

    abr_wins = [
        s for s in scenarios
        if all(
            results[s]["abr"]["conformance"] > results[s][arm]["conformance"]
            for arm, _ in STATIC_ARMS
        )
    ]
    report = {
        "mode": "smoke" if args.smoke else "full",
        "machine": {
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "numpy": np.__version__,
            "python": platform.python_version(),
        },
        "session": {
            "device": DEVICE,
            "design": "gamestreamsr",
            "profile": PROFILE,
            "game": GAME,
            "n_frames": n_frames,
            "net_budget_ms": NET_BUDGET_MS,
            "arms": [arm for arm, _ in arms],
        },
        "scenarios": results,
        "abr_wins_conformance_on": abr_wins,
    }

    failures = []
    if not args.smoke:
        # PR acceptance criterion: co-adaptation must pay off where the
        # link is bursty — ABR strictly above every static arm on
        # conformance for at least one cellular trace.
        if not any(s in abr_wins for s in BURSTY_TRACES):
            failures.append(
                "ABR does not beat every static arm on conformance for any "
                f"bursty cellular trace ({', '.join(BURSTY_TRACES)})"
            )
    report["criteria_failures"] = failures

    write_bench_json("netscen", report, smoke=args.smoke)
    if failures:
        print("CRITERIA FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
