"""Fig. 15 / Sec. VI — the RoI-guided SR-integrated decoder (future work).

The paper's prototype: cache the RoI-upscaled reference frame inside an
augmented hardware decoder and reconstruct non-reference frames there,
bypassing the NPU — projected to push energy savings toward ~50 % over
SOTA. The bench runs the prototype client and compares its energy and
quality against the base design and SOTA.
"""

from __future__ import annotations

from repro.analysis.experiments import performance_sessions
from repro.analysis.tables import format_paper_vs_measured, format_table

from conftest import emit_report

DESIGNS = ("gamestreamsr", "nemo", "sr_integrated_decoder")


def test_fig15_sr_integrated_decoder(benchmark):
    sessions = performance_sessions(
        "pixel_7_pro", game_ids=("G3",), designs=DESIGNS
    )
    energies = {d: sessions[d]["G3"].gop_weighted_energy(60) for d in DESIGNS}
    rows = [
        (
            design,
            round(e.total, 1),
            round(e.upscale, 1),
            round(e.decode, 1),
            f"{(1 - e.total / energies['nemo'].total) * 100:.1f}%",
        )
        for design, e in energies.items()
    ]
    table = format_table(
        ["design", "total mJ/frame", "upscale mJ", "decode mJ", "savings vs SOTA"],
        rows,
        title="Fig. 15: SR-integrated decoder prototype energy (G3, Pixel, GOP-60)",
    )
    base_savings = 1 - energies["gamestreamsr"].total / energies["nemo"].total
    future_savings = 1 - energies["sr_integrated_decoder"].total / energies["nemo"].total
    shape = format_paper_vs_measured(
        [
            ("base design savings", "33%", f"{base_savings * 100:.1f}%"),
            ("prototype savings", "as high as ~50%", f"{future_savings * 100:.1f}%"),
            ("prototype beats base design", "yes", future_savings > base_savings),
        ],
        title="Fig. 15 / Sec. VI projection",
    )
    emit_report("fig15_future_decoder", table + "\n\n" + shape)

    assert future_savings > base_savings
    assert future_savings > 0.45  # "as high as 50 %"

    session = sessions["sr_integrated_decoder"]["G3"]
    benchmark(lambda: session.gop_weighted_energy(60))
