"""Setup shim for environments without the `wheel` package (offline dev installs).

`pip install -e .` falls back to `setup.py develop` via --no-use-pep517 when
PEP 660 editable wheels cannot be built; all real metadata lives in
pyproject.toml.
"""
from setuptools import setup

setup()
