"""Public API surface: imports, exports, and small accessors."""

from __future__ import annotations

import importlib

import numpy as np
import pytest

import repro

SUBPACKAGES = (
    "repro.analysis",
    "repro.baselines",
    "repro.cache",
    "repro.cli",
    "repro.codec",
    "repro.core",
    "repro.metrics",
    "repro.network",
    "repro.neural",
    "repro.observability",
    "repro.platform",
    "repro.render",
    "repro.sr",
    "repro.streaming",
)


class TestImports:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_imports(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} has no module docstring"

    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    @pytest.mark.parametrize("module_name", SUBPACKAGES[:1] + SUBPACKAGES[4:])
    def test_all_entries_exist(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestSmallAccessors:
    def test_encoded_frame_size_bits(self, g3_frame):
        from repro.codec import VideoEncoder

        encoded = VideoEncoder(gop_size=1, quality=60).encode_frame(g3_frame.color)
        assert encoded.size_bits == encoded.size_bytes * 8
        assert encoded.is_reference

    def test_render_output_resolution(self, g3_frame):
        assert g3_frame.resolution == (64, 96)

    def test_quality_report_empty_edges(self):
        from repro.metrics import QualityReport

        empty = QualityReport((), (), ())
        assert empty.mean_psnr == float("inf")
        assert empty.mean_ssim == 1.0
        assert empty.mean_lpips == 0.0
        assert len(empty) == 0

    def test_tensor_repr_and_item(self):
        from repro.neural import Tensor

        t = Tensor([1.5], requires_grad=True)
        assert "requires_grad=True" in repr(t)
        assert t.item() == 1.5
        assert Tensor(np.zeros((2, 3))).size == 6

    def test_frame_record_fps(self):
        from repro.platform.energy import EnergyBreakdown
        from repro.streaming.mtp import MTPBreakdown
        from repro.streaming.session import FrameRecord

        record = FrameRecord(
            index=0,
            frame_type="I",
            upscale_ms=20.0,
            mtp=MTPBreakdown({"upscale": 20.0}),
            energy=EnergyBreakdown(1, 1, 1, 1),
            modeled_size_bytes=1000,
        )
        assert record.upscale_fps == pytest.approx(50.0)
        assert record.is_reference

    def test_concat_axis0(self):
        from repro.neural import Tensor, concat

        out = concat([Tensor(np.ones((2, 2))), Tensor(np.zeros((3, 2)))], axis=0)
        assert out.shape == (5, 2)

    def test_game_workload_metadata(self):
        game = repro.build_game("G8")
        assert game.title == "A Plague Tale: Requiem"
        assert game.genre == "Stealth"
