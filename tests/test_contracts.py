"""repro.contracts: spec grammar, checking logic, and the disabled no-op."""

from __future__ import annotations

import numpy as np
import pytest

import repro.contracts as contracts
from repro.contracts import (
    ContractViolation,
    checked,
    contracts_enabled,
    expect,
    parse_spec,
    shaped,
)


class TestParseSpec:
    def test_dims_and_dtype(self):
        (spec,) = parse_spec("H W 3:f32")
        assert spec.dims == ("H", "W", 3)
        assert spec.dtype == "f32"
        assert not spec.allow_none

    def test_alternatives_and_wildcards(self):
        alts = parse_spec("H W:n|N C H W:f64|* *")
        assert [a.dims for a in alts] == [("H", "W"), ("N", "C", "H", "W"), ("*", "*")]
        assert [a.dtype for a in alts] == ["n", "f64", None]

    def test_optional_prefix(self):
        (spec,) = parse_spec("?H W:f32")
        assert spec.allow_none
        assert spec.describe() == "?H W:f32"

    @pytest.mark.parametrize("bad", ["H W:q99", "", "a-b:f32", ":f32"])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises((ValueError, TypeError)):
            parse_spec(bad)


class TestChecked:
    def _f(self, **specs):
        def f(frame, depth=None):
            return "ran"

        return checked(f, specs)

    def test_passing_call(self):
        f = self._f(frame="H W 3:f64", depth="?H W:f64")
        frame = np.zeros((4, 6, 3), dtype=np.float64)
        assert f(frame, np.zeros((4, 6))) == "ran"
        assert f(frame, None) == "ran"

    def test_violation_message_names_everything(self):
        f = self._f(frame="H W 3:f32")
        with pytest.raises(ContractViolation) as err:
            f(np.zeros((4, 6), dtype=np.float64))
        message = str(err.value)
        assert "'frame'" in message  # which argument
        assert "H W 3:f32" in message  # expected spec
        assert "(4, 6)" in message and "float64" in message  # actual
        assert "TestChecked" in message  # where (qualname)

    def test_dim_binding_across_arguments(self):
        def psnr_like(reference, test):
            return True

        f = checked(psnr_like, dict(reference="H W", test="H W"))
        assert f(np.zeros((4, 6)), np.zeros((4, 6)))
        with pytest.raises(ContractViolation, match="already bound"):
            f(np.zeros((4, 6)), np.zeros((4, 7)))

    def test_dim_binding_within_one_argument(self):
        f = self._f(frame="N N")
        assert f(np.zeros((3, 3))) == "ran"
        with pytest.raises(ContractViolation):
            f(np.zeros((3, 4)))

    def test_exact_dtype_vs_kind(self):
        f = self._f(frame="H W:f32")
        with pytest.raises(ContractViolation, match="dtype float64"):
            f(np.zeros((2, 2), dtype=np.float64))
        g = self._f(frame="H W:n")
        assert g(np.zeros((2, 2), dtype=np.int32)) == "ran"
        with pytest.raises(ContractViolation):
            g(np.zeros((2, 2), dtype=bool))

    def test_nan_rejected_at_float_seams(self):
        f = self._f(frame="H W:f")
        bad = np.zeros((2, 2))
        bad[0, 0] = np.nan
        with pytest.raises(ContractViolation, match="non-finite"):
            f(bad)

    def test_none_rejected_unless_optional(self):
        f = self._f(frame="H W")
        with pytest.raises(ContractViolation, match="is None"):
            f(None)

    def test_unknown_spec_name_fails_at_decoration(self):
        def f(frame):
            return frame

        with pytest.raises(ValueError, match="not parameters"):
            checked(f, {"ghost": "H W"})

    def test_violation_is_type_and_value_error(self):
        # Seams historically raised ValueError for bad shapes; enabling
        # contracts must not change which except clauses match.
        assert issubclass(ContractViolation, TypeError)
        assert issubclass(ContractViolation, ValueError)


class TestShapedToggle:
    def test_disabled_is_identity(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTRACTS", "0")
        assert not contracts_enabled()

        def f(frame):
            return frame

        assert shaped(frame="H W 3:f32")(f) is f  # no wrapper at all

    def test_enabled_wraps_and_checks(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTRACTS", "1")
        assert contracts_enabled()

        @shaped(frame="H W 3:f64")
        def f(frame):
            return frame.sum()

        assert f is not f.__wrapped__
        assert f.__repro_contract__ == {"frame": "H W 3:f64"}
        assert f(np.zeros((2, 2, 3))) == 0.0
        with pytest.raises(ContractViolation):
            f(np.zeros((2, 2)))

    def test_expect_disabled_returns_value_untouched(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTRACTS", "0")
        wrong = np.zeros((2, 2))  # would violate the spec below
        assert expect(wrong, "H W 3:f32") is wrong

    def test_expect_enabled_validates(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTRACTS", "1")
        ok = np.zeros((2, 2, 3))
        assert expect(ok, "H W 3:f", name="hr", where="test") is ok
        with pytest.raises(ContractViolation, match="'hr'"):
            expect(np.zeros((2, 2)), "H W 3:f", name="hr", where="test")

    def test_module_flag_matches_environment(self):
        # Whatever mode the suite runs in, the flag must be consistent
        # with the environment the process started with.
        import os

        expected = os.environ.get("REPRO_CONTRACTS", "0") not in ("", "0")
        assert contracts.contracts_enabled() == expected
