"""Parallel session fan-out: cache-aware scheduling, identical artifacts."""

from __future__ import annotations

import os

import pytest

from repro.analysis import parallel
from repro.cache import artifact_path, load_or_build


def _stub_cached_session(kind, **kwargs):
    """Deterministic stand-in for experiments._cached_session that writes
    through the cache with the exact same (name, config) key scheme."""
    return load_or_build(
        f"session-{kind}",
        parallel.session_cache_key(kind, kwargs),
        lambda: {"kind": kind, "kwargs": dict(sorted(kwargs.items())), "pid_free": True},
        subdir="sessions",
    )


@pytest.fixture
def stub_sessions(monkeypatch):
    from repro.analysis import experiments

    monkeypatch.setattr(experiments, "_cached_session", _stub_cached_session)
    # workers > 1 pre-warms the shared SR weights before forking; the stub
    # sessions don't need a model.
    from repro.sr import pretrained

    monkeypatch.setattr(pretrained, "default_sr_model", lambda *a, **k: None)


TASKS = [
    ("perf", {"game_id": "G1", "device_name": "d", "design": "x", "n_frames": 4}),
    ("perf", {"game_id": "G2", "device_name": "d", "design": "x", "n_frames": 2}),
    ("quality", {"game_id": "G1", "device_name": "d", "design": "x", "n_frames": 3}),
    ("quality", {"game_id": "G2", "device_name": "d", "design": "x", "n_frames": 6}),
]


def _artifact_files(root):
    sessions = root / "sessions"
    if not sessions.is_dir():
        return {}
    return {p.name: p.read_bytes() for p in sorted(sessions.iterdir())}


class TestWorkerCount:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SESSION_WORKERS", "3")
        assert parallel.default_worker_count() == 3

    def test_env_floor_is_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_SESSION_WORKERS", "0")
        assert parallel.default_worker_count() == 1

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SESSION_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_SESSION_WORKERS"):
            parallel.default_worker_count()

    def test_default_tracks_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_SESSION_WORKERS", raising=False)
        assert 1 <= parallel.default_worker_count() <= 8


class TestRunSessionMatrix:
    def test_skips_already_cached_tasks(self, tmp_path, monkeypatch, stub_sessions):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        kind, kwargs = TASKS[0]
        _stub_cached_session(kind, **kwargs)  # pre-seed one artifact
        before = artifact_path(
            f"session-{kind}", parallel.session_cache_key(kind, kwargs), subdir="sessions"
        ).stat().st_mtime_ns

        built = []
        monkeypatch.setattr(
            parallel, "_build_session", lambda task: built.append(task)
        )
        parallel.run_session_matrix(TASKS, workers=1)
        assert TASKS[0] not in built
        assert sorted(map(str, built)) == sorted(map(str, TASKS[1:]))
        after = artifact_path(
            f"session-{kind}", parallel.session_cache_key(kind, kwargs), subdir="sessions"
        ).stat().st_mtime_ns
        assert after == before  # cached artifact untouched

    def test_expensive_tasks_scheduled_first(self, tmp_path, monkeypatch, stub_sessions):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        built = []
        monkeypatch.setattr(
            parallel, "_build_session", lambda task: built.append(task)
        )
        parallel.run_session_matrix(TASKS, workers=1)
        kinds = [kind for kind, _ in built]
        assert kinds == ["quality", "quality", "perf", "perf"]
        assert built[0][1]["n_frames"] == 6  # longest quality session first

    def test_parallel_and_serial_artifacts_are_byte_identical(
        self, tmp_path, monkeypatch, stub_sessions
    ):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"

        monkeypatch.setenv("REPRO_CACHE_DIR", str(serial_dir))
        parallel.run_session_matrix(TASKS, workers=1)
        serial_files = _artifact_files(serial_dir)

        monkeypatch.setenv("REPRO_CACHE_DIR", str(parallel_dir))
        parallel.run_session_matrix(TASKS, workers=2)
        parallel_files = _artifact_files(parallel_dir)

        # Same config keys -> same filenames; same builders -> same bytes.
        assert sorted(serial_files) == sorted(parallel_files)
        assert len(serial_files) == len(TASKS)
        for name in serial_files:
            assert serial_files[name] == parallel_files[name], name
        # No stray temp files from the worker write-through.
        assert all(name.endswith(".pkl") for name in parallel_files)

    def test_rerun_is_pure_cache_hit(self, tmp_path, monkeypatch, stub_sessions):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        parallel.run_session_matrix(TASKS, workers=2)
        built = []
        monkeypatch.setattr(
            parallel, "_build_session", lambda task: built.append(task)
        )
        parallel.run_session_matrix(TASKS, workers=2)
        assert built == []

    def test_cache_disabled_builds_everything_in_process(
        self, tmp_path, monkeypatch, stub_sessions
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
        built = []
        monkeypatch.setattr(
            parallel, "_build_session", lambda task: built.append(task)
        )
        parallel.run_session_matrix(TASKS, workers=4)
        assert len(built) == len(TASKS)
        assert not (tmp_path / "sessions").exists()


@pytest.mark.skipif(os.cpu_count() == 1, reason="needs >1 core to be meaningful")
def test_parallel_speedup_possible():  # pragma: no cover - multi-core only
    # The >= 2x-on-4-cores acceptance criterion can only be measured on a
    # multi-core machine; correctness (identical artifacts) is asserted above.
    assert parallel.default_worker_count() >= 2
