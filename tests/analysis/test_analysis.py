"""Tables, render caching, and light experiment drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import (
    input_resolution_sweep,
    roi_sizing_table,
    sota_timeline,
)
from repro.analysis.prerender import PrerenderedWorkload, rendered_sequence
from repro.analysis.tables import fmt, format_paper_vs_measured, format_table
from repro.render.games import build_game


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [(1, 2.5), ("x", "long-cell")])
        lines = text.splitlines()
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "long-cell" in text

    def test_title_included(self):
        assert format_table(["a"], [(1,)], title="Fig. 99").startswith("Fig. 99")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_paper_vs_measured(self):
        text = format_paper_vs_measured([("speedup", "13x", 13.3)])
        assert "paper" in text and "measured" in text and "13x" in text

    def test_fmt(self):
        assert fmt(True) == "yes"
        assert fmt(1234.0) == "1,234"
        assert fmt(0.1234) == "0.12"
        assert fmt(float("nan")) == "-"
        assert fmt("word") == "word"


class TestPrerender:
    def test_bundle_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        bundle = rendered_sequence("G9", 64, 48, 2)
        assert len(bundle) == 2
        frame = bundle.frame(0)
        live = build_game("G9").render_frame(0, 64, 48)
        # uint8/float16 quantization bounds the error.
        assert np.abs(frame.color - live.color).max() < 0.01
        assert np.abs(frame.depth - live.depth).max() < 0.01
        with pytest.raises(IndexError):
            bundle.frame(5)

    def test_cache_hit_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        a = rendered_sequence("G9", 64, 48, 2)
        b = rendered_sequence("G9", 64, 48, 2)
        np.testing.assert_array_equal(a.color_u8, b.color_u8)

    def test_prerendered_workload_falls_back(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        game = PrerenderedWorkload(build_game("G9"))
        game.preload(64, 48, 2)
        cached = game.render_frame(0, 64, 48)
        live = game.render_frame(0, 32, 24)  # resolution miss -> live render
        assert cached.color.shape == (48, 64, 3)
        assert live.color.shape == (24, 32, 3)
        assert game.game_id == "G9" and "Farming" in game.title


class TestLightExperiments:
    def test_roi_sizing_table(self):
        rows = roi_sizing_table()
        assert {r["device"] for r in rows} == {"samsung_tab_s8", "pixel_7_pro"}
        for row in rows:
            assert row["min_side"] <= row["chosen_side"] <= row["max_side"]
            assert row["roi_latency_ms"] <= 16.66 + 1e-9

    def test_input_resolution_sweep_shape(self):
        rows = input_resolution_sweep()
        labels = [r["label"] for r in rows]
        assert labels == ["240p", "360p", "480p", "720p", "1080p"]
        # Fig. 3b shape: only the smallest input is real-time; latency grows.
        assert rows[0]["meets_deadline"] and not rows[-1]["meets_deadline"]
        latencies = [r["latency_ms"] for r in rows]
        assert latencies == sorted(latencies)

    def test_sota_timeline_staircase(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        rows = sota_timeline(n_gops=2, gop_size=3)
        assert len(rows) == 6
        refs = [r for r in rows if r["type"] == "I"]
        nonrefs = [r for r in rows if r["type"] == "P"]
        assert len(refs) == 2
        # Fig. 2 shape: every frame misses 16.66 ms, references massively.
        assert all(not r["meets_deadline"] for r in rows)
        assert min(r["upscale_ms"] for r in refs) > 5 * max(
            r["upscale_ms"] for r in nonrefs
        )
