"""Experiment driver plumbing."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    ALL_GAME_IDS,
    DEVICE_NAMES,
    _make_client,
    perf_geometry,
    quality_geometry,
    upscale_factor_tradeoff,
)
from repro.core.roi_sizing import plan_roi_window
from repro.platform.device import get_device
from repro.streaming.client import GameStreamSRClient, NemoClient


class TestGeometries:
    def test_perf_geometry_native(self):
        geo = perf_geometry()
        assert geo.lr_source == "native"
        assert geo.modeled_lr_pixels == 1280 * 720

    def test_quality_geometry_antialiased(self):
        geo = quality_geometry()
        assert geo.lr_source == "downsample"
        # Same RoI-fraction as the paper: 300/720 of frame height.
        assert geo.eval_lr_height * 300 // 720 > 0


class TestConstants:
    def test_all_games_listed(self):
        assert ALL_GAME_IDS == [f"G{i}" for i in range(1, 11)]

    def test_device_names(self):
        for name in DEVICE_NAMES:
            assert get_device(name).name == name


class TestClientFactory:
    @pytest.fixture(scope="class")
    def plan(self):
        return plan_roi_window(get_device("samsung_tab_s8"))

    def test_designs_route(self, plan, tiny_runner, monkeypatch):
        import repro.analysis.experiments as exp

        monkeypatch.setattr(exp, "default_runner", lambda: tiny_runner)
        device = get_device("samsung_tab_s8")
        assert isinstance(_make_client("gamestreamsr", device, plan), GameStreamSRClient)
        assert isinstance(_make_client("nemo", device, plan), NemoClient)

    def test_unknown_design(self, plan, tiny_runner, monkeypatch):
        import repro.analysis.experiments as exp

        monkeypatch.setattr(exp, "default_runner", lambda: tiny_runner)
        with pytest.raises(ValueError, match="unknown design"):
            _make_client("magic", get_device("samsung_tab_s8"), plan)


class TestTradeoffDriver:
    def test_factor_points_cached(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        points = upscale_factor_tradeoff(factors=(2, 4), target=(64, 112))
        assert [p.factor for p in points] == [2, 4]
        assert points[0].npu_latency_ms > points[1].npu_latency_ms
        # second call hits the cache (same object content)
        again = upscale_factor_tradeoff(factors=(2, 4), target=(64, 112))
        assert [p.bilinear_psnr_db for p in again] == [p.bilinear_psnr_db for p in points]
