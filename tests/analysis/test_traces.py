"""Trace-consuming analysis builders (repro.analysis.traces)."""

from __future__ import annotations

import pytest

from repro.analysis.traces import (
    network_health,
    trace_energy_table,
    trace_mtp_table,
    wall_clock_profile,
)
from repro.platform.device import get_device
from repro.render.games import build_game
from repro.streaming import (
    BilinearClient,
    GameStreamServer,
    SessionResult,
    StreamGeometry,
    run_session,
)


@pytest.fixture(scope="module")
def session():
    geometry = StreamGeometry(eval_lr_height=64, eval_lr_width=112, lr_source="native")
    server = GameStreamServer(build_game("G3"), geometry, roi_side=None, gop_size=3)
    client = BilinearClient(get_device("samsung_tab_s8"))
    return run_session(server, client, n_frames=3)


def test_mtp_table_matches_record_breakdowns(session):
    rows = {r["stage"]: r for r in trace_mtp_table(session)}
    mean_mtp = session.mean_mtp()
    for stage, value in mean_mtp.stages_ms.items():
        assert rows[stage]["mean_ms"] == pytest.approx(value, abs=1e-12)
    assert rows["total"]["mean_ms"] == pytest.approx(mean_mtp.total_ms, abs=1e-9)
    assert rows["total"]["max_frame"] in range(3)


def test_energy_table_splits_categories_into_components(session):
    rows = trace_energy_table(session)
    by_category = {}
    for row in rows:
        by_category.setdefault(row["category"], 0.0)
        by_category[row["category"]] += row["mean_mj_per_frame"]
        assert row["mean_mj_per_frame"] > 0.0
    energy = session.mean_energy()
    assert by_category["decode"] == pytest.approx(energy.decode, abs=1e-9)
    assert by_category["upscale"] == pytest.approx(energy.upscale, abs=1e-9)
    assert by_category["network"] == pytest.approx(energy.network, abs=1e-9)


def test_wall_clock_profile_covers_all_stages(session):
    rows = wall_clock_profile(session)
    names = {r["stage"] for r in rows}
    assert {"render", "encode", "decode", "upscale"} <= names
    assert sum(r["share_pct"] for r in rows) == pytest.approx(100.0)


def test_network_health_on_flat_link(session):
    health = network_health(session)
    assert health["frames"] == 3
    assert health["drop_rate"] == 0.0
    assert health["total_retransmissions"] == 0
    assert health["network_ms_p95"] >= health["network_ms_p50"] > 0.0


def test_builders_reject_traceless_sessions():
    empty = SessionResult(
        game_id="G3",
        design="bilinear",
        device_name="samsung_tab_s8",
        geometry=StreamGeometry(),
        gop_size=1,
    )
    for builder in (trace_mtp_table, trace_energy_table, wall_clock_profile):
        with pytest.raises(ValueError, match="no frame traces"):
            builder(empty)
