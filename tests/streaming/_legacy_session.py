"""Frozen pre-refactor streaming pipeline (seed commit), for equivalence tests.

This is a verbatim-behavior copy of the seed's ``GameStreamServer.next_frame``
and the five clients' monolithic ``process`` methods, before they were
decomposed into the staged :mod:`repro.streaming.pipeline` architecture.
The equivalence test streams the same session through both implementations
and asserts exact float equality of every record. Do NOT "modernize" this
file — its whole value is that it does not change with the production code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.codec.motion import compensate, upscale_motion_vectors
from repro.core.roi_search import RoIBox
from repro.core.upscaler import RoIAssistedUpscaler
from repro.platform import latency as lat
from repro.platform.device import DeviceProfile
from repro.platform.energy import Component
from repro.sr.interpolate import bicubic, bilinear
from repro.sr.runner import SRRunner
from repro.streaming.client import StreamingClient
from repro.streaming.frames import (
    ClientFrameResult,
    ROI_METADATA_BYTES,
    ServerFrame,
)
from repro.streaming.server import GameStreamServer

EnergyStages = Dict[str, List[Tuple[Component, float]]]


def legacy_next_frame(server: GameStreamServer) -> ServerFrame:
    """The seed server pipeline: hand-assembled timing dict, no trace."""
    index = server._index
    server._index += 1

    rendered = server.render_lr(index)
    roi = None
    roi_detect_ms = 0.0
    if server.detector is not None:
        roi = server.detector.detect(rendered.depth).box
        roi_detect_ms = lat.server_roi_detect_ms()

    encoded = server.encoder.encode_frame(rendered.color)
    modeled_bytes = int(round(encoded.size_bytes * server.geometry.byte_scale))
    if roi is not None:
        modeled_bytes += ROI_METADATA_BYTES

    timings = {
        "input": lat.server_input_ms(),
        "game_logic": lat.server_game_logic_ms(),
        "render": lat.server_render_ms(server.geometry.modeled_lr_pixels),
        "roi_detect": roi_detect_ms,
        "encode": lat.server_encode_ms(server.geometry.modeled_lr_pixels),
        "network": lat.transmission_ms(modeled_bytes),
    }
    return ServerFrame(
        index=index,
        encoded=encoded,
        roi=roi,
        geometry=server.geometry,
        server_timings_ms=timings,
        modeled_size_bytes=modeled_bytes,
    )


class _LegacyClientBase(StreamingClient):
    """Seed client base: shared decode + network helpers, no template."""

    def _decode(self, frame, hardware):
        decoded = self.decoder.decode_frame(frame.encoded)
        ms = lat.decode_ms(
            frame.geometry.modeled_lr_pixels, self.device, hardware=hardware
        )
        return decoded, ms

    def _network_stage(self, frame):
        rx_ms = lat.transmission_ms(frame.modeled_size_bytes) - lat.transmission_ms(0)
        return rx_ms, {"network": [(Component.NETWORK_RX, rx_ms)]}

    def process(self, frame: ServerFrame) -> ClientFrameResult:
        raise NotImplementedError


class LegacyGameStreamSRClient(_LegacyClientBase):
    design = "gamestreamsr"

    def __init__(
        self,
        device: DeviceProfile,
        runner: SRRunner,
        modeled_roi_side: Optional[int] = None,
    ) -> None:
        super().__init__(device)
        self.upscaler = RoIAssistedUpscaler(runner)
        self.modeled_roi_side = modeled_roi_side

    def _modeled_roi_pixels(self, frame: ServerFrame) -> int:
        if self.modeled_roi_side is not None:
            return self.modeled_roi_side**2
        return frame.geometry.modeled_roi_pixels(frame.roi)

    def process(self, frame: ServerFrame) -> ClientFrameResult:
        if frame.roi is None:
            raise ValueError("GameStreamSRClient requires server-side RoI data")
        geometry = frame.geometry
        decoded, decode_ms = self._decode(frame, hardware=True)
        result = self.upscaler.upscale(decoded.rgb, frame.roi)

        roi_px = self._modeled_roi_pixels(frame)
        non_roi_px = geometry.modeled_lr_pixels - roi_px
        npu_ms = lat.npu_sr_latency_ms(roi_px, self.device)
        gpu_ms = lat.gpu_bilinear_ms(non_roi_px, self.device)
        merge_ms = lat.merge_ms(geometry.modeled_hr_pixels, self.device)
        upscale_ms = max(npu_ms, gpu_ms)
        rx_ms, energy = self._network_stage(frame)
        energy["decode"] = [(Component.HW_DECODER, decode_ms)]
        energy["upscale"] = [
            (Component.NPU, npu_ms),
            (Component.GPU, gpu_ms + merge_ms),
        ]
        return ClientFrameResult(
            index=frame.index,
            frame_type=frame.encoded.frame_type,
            hr_frame=result.frame,
            client_timings_ms={
                "decode": decode_ms,
                "upscale": upscale_ms,
                "display": lat.display_present_ms(self.device) + merge_ms,
            },
            energy_stages=energy,
        )


class LegacyNemoClient(_LegacyClientBase):
    design = "nemo"

    def __init__(self, device: DeviceProfile, runner: SRRunner, sr_tile: int = 72) -> None:
        super().__init__(device)
        self.runner = runner
        self.sr_tile = sr_tile
        self._hr_reference: Optional[np.ndarray] = None

    def reset(self) -> None:
        super().reset()
        self._hr_reference = None

    def process(self, frame: ServerFrame) -> ClientFrameResult:
        geometry = frame.geometry
        decoded, decode_ms = self._decode(frame, hardware=False)
        scale = geometry.scale
        rx_ms, energy = self._network_stage(frame)

        if decoded.is_reference or self._hr_reference is None:
            hr = self.runner.upscale_tiled(decoded.rgb, tile=self.sr_tile)
            self._hr_reference = hr
            npu_ms = lat.npu_sr_latency_ms(geometry.modeled_lr_pixels, self.device)
            upscale_ms = npu_ms
            energy["decode"] = [(Component.CPU, decode_ms)]
            energy["upscale"] = [(Component.NPU, npu_ms)]
        else:
            from repro.baselines.nemo import reconstruct_nonreference

            hr = reconstruct_nonreference(
                self._hr_reference,
                decoded.motion_vectors,
                decoded.residual_rgb,
                scale=scale,
                block=frame.encoded.block,
            )
            self._hr_reference = hr

            cpu_up_ms = lat.cpu_bilinear_ms(geometry.modeled_lr_pixels, self.device)
            warp_ms = lat.cpu_warp_ms(geometry.modeled_hr_pixels, self.device)
            upscale_ms = cpu_up_ms + warp_ms
            energy["decode"] = [
                (Component.CPU, decode_ms),
                (Component.RECON_MEMORY, warp_ms),
            ]
            energy["upscale"] = [(Component.CPU, cpu_up_ms)]

        return ClientFrameResult(
            index=frame.index,
            frame_type=frame.encoded.frame_type,
            hr_frame=hr,
            client_timings_ms={
                "decode": decode_ms,
                "upscale": upscale_ms,
                "display": lat.display_present_ms(self.device),
            },
            energy_stages=energy,
        )


class LegacyBilinearClient(_LegacyClientBase):
    design = "bilinear"

    def process(self, frame: ServerFrame) -> ClientFrameResult:
        geometry = frame.geometry
        decoded, decode_ms = self._decode(frame, hardware=True)
        s = geometry.scale
        hr = bilinear(
            decoded.rgb, geometry.eval_lr_height * s, geometry.eval_lr_width * s
        )
        gpu_ms = lat.gpu_bilinear_ms(geometry.modeled_lr_pixels, self.device)
        rx_ms, energy = self._network_stage(frame)
        energy["decode"] = [(Component.HW_DECODER, decode_ms)]
        energy["upscale"] = [(Component.GPU, gpu_ms)]
        return ClientFrameResult(
            index=frame.index,
            frame_type=frame.encoded.frame_type,
            hr_frame=hr,
            client_timings_ms={
                "decode": decode_ms,
                "upscale": gpu_ms,
                "display": lat.display_present_ms(self.device),
            },
            energy_stages=energy,
        )


class LegacyFullFrameSRClient(_LegacyClientBase):
    design = "fullframe_sr"

    def __init__(self, device: DeviceProfile, runner: SRRunner, sr_tile: int = 72) -> None:
        super().__init__(device)
        self.runner = runner
        self.sr_tile = sr_tile

    def process(self, frame: ServerFrame) -> ClientFrameResult:
        geometry = frame.geometry
        decoded, decode_ms = self._decode(frame, hardware=True)
        hr = self.runner.upscale_tiled(decoded.rgb, tile=self.sr_tile)
        npu_ms = lat.npu_sr_latency_ms(geometry.modeled_lr_pixels, self.device)
        rx_ms, energy = self._network_stage(frame)
        energy["decode"] = [(Component.HW_DECODER, decode_ms)]
        energy["upscale"] = [(Component.NPU, npu_ms)]
        return ClientFrameResult(
            index=frame.index,
            frame_type=frame.encoded.frame_type,
            hr_frame=hr,
            client_timings_ms={
                "decode": decode_ms,
                "upscale": npu_ms,
                "display": lat.display_present_ms(self.device),
            },
            energy_stages=energy,
        )


class LegacySRIntegratedDecoderClient(_LegacyClientBase):
    design = "sr_integrated_decoder"

    DECODER_AUGMENT_FACTOR = 1.6
    RECON_MS_PER_HR_PX = 5.4e-6

    def __init__(self, device: DeviceProfile, runner: SRRunner) -> None:
        super().__init__(device)
        self.upscaler = RoIAssistedUpscaler(runner)
        self._hr_reference: Optional[np.ndarray] = None

    def reset(self) -> None:
        super().reset()
        self._hr_reference = None

    def _roi_guided_residual(
        self, residual: np.ndarray, roi: RoIBox, h_hr: int, w_hr: int
    ) -> np.ndarray:
        upscaled = bilinear(residual, h_hr, w_hr)
        roi_hr = roi.scaled(h_hr // residual.shape[0])
        patch = roi.extract(residual)
        upscaled[roi_hr.y : roi_hr.y_end, roi_hr.x : roi_hr.x_end] = bicubic(
            patch, roi_hr.height, roi_hr.width
        )
        return upscaled

    def process(self, frame: ServerFrame) -> ClientFrameResult:
        if frame.roi is None:
            raise ValueError("SRIntegratedDecoderClient requires RoI data")
        geometry = frame.geometry
        decoded, hw_decode_ms = self._decode(frame, hardware=True)
        s = geometry.scale
        rx_ms, energy = self._network_stage(frame)

        if decoded.is_reference or self._hr_reference is None:
            result = self.upscaler.upscale(decoded.rgb, frame.roi)
            hr = result.frame
            roi_px = geometry.modeled_roi_pixels(frame.roi)
            npu_ms = lat.npu_sr_latency_ms(roi_px, self.device)
            gpu_ms = lat.gpu_bilinear_ms(geometry.modeled_lr_pixels - roi_px, self.device)
            upscale_ms = max(npu_ms, gpu_ms) + lat.merge_ms(
                geometry.modeled_hr_pixels, self.device
            )
            decode_ms = hw_decode_ms
            energy["decode"] = [(Component.HW_DECODER, decode_ms)]
            energy["upscale"] = [(Component.NPU, npu_ms), (Component.GPU, gpu_ms)]
        else:
            mv_hr = upscale_motion_vectors(decoded.motion_vectors, s)
            block_hr = frame.encoded.block * s
            h_hr = geometry.eval_lr_height * s
            w_hr = geometry.eval_lr_width * s
            prediction = np.stack(
                [
                    compensate(self._hr_reference[..., c], mv_hr, block_hr)
                    for c in range(3)
                ],
                axis=-1,
            )
            residual_hr = self._roi_guided_residual(
                decoded.residual_rgb, frame.roi, h_hr, w_hr
            )
            hr = np.clip(prediction + residual_hr, 0.0, 1.0)
            recon_ms = self.RECON_MS_PER_HR_PX * geometry.modeled_hr_pixels
            decode_ms = hw_decode_ms * self.DECODER_AUGMENT_FACTOR + recon_ms
            upscale_ms = 0.0
            energy["decode"] = [
                (Component.HW_DECODER, hw_decode_ms * self.DECODER_AUGMENT_FACTOR),
                (Component.COMPOSITION, recon_ms),
            ]
            energy["upscale"] = []
        self._hr_reference = hr

        return ClientFrameResult(
            index=frame.index,
            frame_type=frame.encoded.frame_type,
            hr_frame=hr,
            client_timings_ms={
                "decode": decode_ms,
                "upscale": upscale_ms,
                "display": lat.display_present_ms(self.device),
            },
            energy_stages=energy,
        )
