"""Sessions over trace-driven network scenarios with the ABR loop.

The seeded-determinism contract of the ``scenario=``/``abr=`` knobs:
the same :class:`~repro.network.trace.LinkTrace` + seed must produce
identical :class:`~repro.network.link.TransmitResult` sequences — and
therefore byte-identical session traces — run to run, and the serial
and pipelined executors must agree on them canonically.
"""

from __future__ import annotations

import pytest

from repro.core.roi_sizing import plan_roi_window
from repro.network import NetworkLink, build_scenario
from repro.observability import canonicalize_session_trace, validate_session_trace
from repro.platform.device import get_device
from repro.streaming import (
    AdaptiveRoIController,
    BilinearClient,
    GameStreamSRClient,
    GameStreamServer,
    StreamGeometry,
    build_abr,
    run_session,
)
from repro.streaming.pipelined import run_session_pipelined

N_FRAMES = 8
NET_BUDGET_MS = 100.0


def _geometry():
    return StreamGeometry(eval_lr_height=64, eval_lr_width=112, lr_source="native")


def _server(roi_side, gop=N_FRAMES):
    from repro.render.games import build_game

    return GameStreamServer(
        build_game("G3"), _geometry(), roi_side=roi_side, gop_size=gop
    )


def _abr_session_kwargs(runner):
    device = get_device("samsung_tab_s8")
    plan = plan_roi_window(device)
    client = GameStreamSRClient(device, runner, modeled_roi_side=plan.side)
    abr = build_abr(
        plan.side,
        plan.min_side,
        720,
        runner=runner,
        profile="tiny",
        net_budget_ms=NET_BUDGET_MS,
    )
    return client, plan, abr


def _run_serial(runner, scenario="lte_drive", pipelined=False, **extra):
    client, plan, abr = _abr_session_kwargs(runner)
    kwargs = dict(
        n_frames=N_FRAMES,
        scenario=scenario,
        abr=abr,
        link_deadline_ms=NET_BUDGET_MS,
        skip_dropped=True,
        **extra,
    )
    server = _server(plan.side_for_frame(64))
    if pipelined:
        return run_session_pipelined(server, client, **kwargs)
    return run_session(server, client, **kwargs)


class TestSeededDeterminism:
    def test_same_scenario_same_seed_identical_traces(self, tiny_runner):
        """Two independent serial runs over the same canned scenario must
        be byte-identical — including the scenario/abr span metadata."""
        a = _run_serial(tiny_runner).to_trace_dict()
        b = _run_serial(tiny_runner).to_trace_dict()
        assert canonicalize_session_trace(a) == canonicalize_session_trace(b)

    def test_serial_matches_pipelined(self, tiny_runner):
        """The pipelined executor must replay the exact same stochastic
        link + ABR decision sequence as the serial loop."""
        serial = _run_serial(tiny_runner).to_trace_dict()
        piped = _run_serial(tiny_runner, pipelined=True).to_trace_dict()
        assert canonicalize_session_trace(serial) == canonicalize_session_trace(piped)

    def test_prebuilt_link_replays_scenario(self, tiny_runner):
        """scenario= accepts a pre-built TraceDrivenLink; resetting and
        re-running it reproduces the session byte for byte."""
        link = build_scenario("lte_walk", seed=4)
        a = _run_serial(tiny_runner, scenario=link).to_trace_dict()
        link.reset()
        b = _run_serial(tiny_runner, scenario=link).to_trace_dict()
        assert canonicalize_session_trace(a) == canonicalize_session_trace(b)


class TestTraceExport:
    def test_trace_json_schema_valid_with_scenario_metadata(self, tiny_runner, tmp_path):
        result = _run_serial(tiny_runner)
        trace = result.to_trace_dict()
        validate_session_trace(trace)  # raises SchemaError on violation
        result.export_trace_json(tmp_path / "netscen_trace.json")

        net_spans = [
            span
            for frame in trace["frames"]
            for span in frame["spans"]
            if span["name"] == "network" and "scenario" in span["metadata"]
        ]
        assert len(net_spans) == N_FRAMES
        for span in net_spans:
            meta = span["metadata"]
            assert meta["scenario"]["scenario"] == "lte_drive"
            assert meta["scenario"]["bandwidth_mbps"] > 0.0
            assert meta["scenario"]["burst_state"] in ("good", "bad")
            assert meta["abr"]["rung"] in (
                "hq", "default", "balanced", "low", "floor"
            )
            assert meta["abr"]["roi_side"] > 0

    def test_scenario_and_abr_metrics_recorded(self, tiny_runner):
        result = _run_serial(tiny_runner)
        metrics = result.metrics
        assert metrics.counter("net.scenario/frames").value == N_FRAMES
        assert metrics.counter("net.scenario/frames_lte_drive").value == N_FRAMES
        assert metrics.counter("abr/frames").value == N_FRAMES
        assert metrics.histogram("net.scenario/bandwidth_mbps").count == N_FRAMES
        assert metrics.histogram("abr/quality").count == N_FRAMES


class TestABRBehavior:
    def test_abr_downshifts_under_outage(self, tiny_runner):
        """lte_drive's 3.5-5 Mbps outage segments must push the ladder off
        the top rung, and the downshift must force an IDR refresh."""
        client, plan, abr = _abr_session_kwargs(tiny_runner)
        run_session(
            _server(plan.side_for_frame(64)),
            client,
            n_frames=N_FRAMES,
            scenario="lte_drive",
            abr=abr,
            link_deadline_ms=NET_BUDGET_MS,
            skip_dropped=True,
        )
        assert abr.n_downshifts > 0
        assert abr.n_idr_requests > 0
        assert abr.rung_index > 0

    def test_abr_holds_top_rung_on_stable_wifi(self, tiny_runner):
        client, plan, abr = _abr_session_kwargs(tiny_runner)
        result = run_session(
            _server(plan.side_for_frame(64)),
            client,
            n_frames=N_FRAMES,
            scenario="wifi_stable",
            abr=abr,
            link_deadline_ms=NET_BUDGET_MS,
            skip_dropped=True,
        )
        assert abr.n_downshifts == 0
        assert result.drop_rate() == 0.0

    def test_conformance_rate_bounds(self, tiny_runner):
        result = _run_serial(tiny_runner)
        rate = result.conformance_rate()
        assert 0.0 <= rate <= 1.0
        # Conformant frames are a subset of delivered (non-dropped) ones.
        assert rate <= 1.0 - result.drop_rate() + 1e-9


class TestKnobValidation:
    def test_scenario_and_link_mutually_exclusive(self, tiny_runner):
        device = get_device("samsung_tab_s8")
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_session(
                _server(None),
                BilinearClient(device),
                n_frames=2,
                scenario="wifi_stable",
                link=NetworkLink(bandwidth_mbps=20.0, propagation_ms=8.0),
            )

    def test_abr_conflicts_with_subsumed_knobs(self, tiny_runner):
        client, plan, abr = _abr_session_kwargs(tiny_runner)
        adaptive = AdaptiveRoIController(
            initial_side=plan.side, min_side=plan.min_side, max_side=720
        )
        for conflict in (
            dict(adaptive=adaptive),
            dict(gop_reuse=True),
        ):
            with pytest.raises(ValueError, match="mutually exclusive"):
                run_session(
                    _server(plan.side_for_frame(64)),
                    client,
                    n_frames=2,
                    scenario="lte_walk",
                    abr=abr,
                    **conflict,
                )

    def test_bad_scenario_type_rejected(self):
        device = get_device("samsung_tab_s8")
        with pytest.raises(TypeError, match="scenario must be"):
            run_session(
                _server(None), BilinearClient(device), n_frames=2, scenario=42
            )


class TestDefaultPathUnchanged:
    def test_no_scenario_metadata_without_knobs(self, tiny_runner):
        """The default session must not grow scenario/abr metadata or
        metrics — the knobs are strictly additive."""
        device = get_device("samsung_tab_s8")
        plan = plan_roi_window(device)
        client = GameStreamSRClient(device, tiny_runner, modeled_roi_side=plan.side)
        result = run_session(
            _server(plan.side_for_frame(64)), client, n_frames=4
        )
        for record in result.records:
            meta = record.trace.span("network").metadata
            assert "scenario" not in meta
            assert "abr" not in meta
        assert not any(
            n.startswith(("net.scenario/", "abr/")) for n in result.metrics.names()
        )
