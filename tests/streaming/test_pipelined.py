"""Cross-process determinism and failure semantics of the pipelined executor.

The contract under test: :func:`run_session_pipelined` is byte-identical
to the serial :func:`run_session` — same bitstreams, same HR outputs,
same canonical trace export — for every client design, with and without
the lossy transport and the adaptive RoI loop. Plus the ring-buffer
protocol itself, the modeled pipeline schedule, and crash injection
(producer killed mid-GOP -> clean shutdown, truncated-but-valid result).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing as mp
import os
import pickle
import signal

import pytest

from repro.core.roi_sizing import plan_roi_window
from repro.network import NetworkLink
from repro.observability import canonicalize_session_trace, validate_session_trace
from repro.platform.device import get_device
from repro.render.games import build_game
from repro.streaming import (
    AdaptiveRoIController,
    BilinearClient,
    FullFrameSRClient,
    GameStreamSRClient,
    GameStreamServer,
    NemoClient,
    RingOverflow,
    SRIntegratedDecoderClient,
    ShmRing,
    StreamGeometry,
    modeled_pipeline_schedule,
    run_session,
    run_session_pipelined,
)
from repro.streaming.pipeline import FrameTrace

N_FRAMES = 4
GOP = 3  # frames 0..3 -> I P P I: reference and dependent paths both run

DESIGNS = [
    "gamestreamsr",
    "nemo",
    "bilinear",
    "fullframe_sr",
    "sr_integrated_decoder",
]

LINK_KW = dict(bandwidth_mbps=20.0, propagation_ms=8.0, loss_rate=0.3, seed=7)


def _geometry():
    return StreamGeometry(eval_lr_height=64, eval_lr_width=112, lr_source="native")


def _server(roi_side, gop=GOP, game=None):
    return GameStreamServer(
        game if game is not None else build_game("G3"),
        _geometry(),
        roi_side=roi_side,
        gop_size=gop,
    )


def _make_client(design, device, runner, plan):
    """(client, server RoI side) for one design."""
    if design == "gamestreamsr":
        return (
            GameStreamSRClient(device, runner, modeled_roi_side=plan.side),
            plan.side_for_frame(64),
        )
    if design == "nemo":
        return NemoClient(device, runner), None
    if design == "bilinear":
        return BilinearClient(device), None
    if design == "fullframe_sr":
        return FullFrameSRClient(device, runner), None
    if design == "sr_integrated_decoder":
        return SRIntegratedDecoderClient(device, runner), plan.side_for_frame(64)
    raise ValueError(design)


class _CapturingClient:
    """Transparent client proxy hashing each frame's bitstream + HR output.

    Attribute get/set delegate to the wrapped client (the adaptive loop
    *sets* ``modeled_roi_side`` on it), so the session sees the real
    client; ``process`` additionally records sha256(encoded || hr_frame)
    into ``sink`` — the byte-identity evidence the matrix compares.
    """

    def __init__(self, inner, sink):
        object.__setattr__(self, "_inner", inner)
        object.__setattr__(self, "_sink", sink)

    def __getattr__(self, name):
        return getattr(object.__getattribute__(self, "_inner"), name)

    def __setattr__(self, name, value):
        setattr(object.__getattribute__(self, "_inner"), name, value)

    def process(self, frame):
        inner = object.__getattribute__(self, "_inner")
        result = inner.process(frame)
        digest = hashlib.sha256(
            pickle.dumps(frame.encoded) + result.hr_frame.tobytes()
        ).hexdigest()
        object.__getattribute__(self, "_sink").append(digest)
        return result


def _canonical(result) -> str:
    export = result.to_trace_dict()
    validate_session_trace(export)
    return json.dumps(canonicalize_session_trace(export), sort_keys=True)


def _run_both(design, device, runner, plan, *, with_link, with_adaptive):
    """(serial, pipelined) runs of one configuration, with capture."""
    outputs = []
    for executor in (run_session, run_session_pipelined):
        client, roi_side = _make_client(design, device, runner, plan)
        kwargs = {}
        if with_link:
            kwargs["link"] = NetworkLink(**LINK_KW)
            kwargs["link_deadline_ms"] = 60.0
        if with_adaptive:
            kwargs["adaptive"] = AdaptiveRoIController(
                initial_side=plan.side, min_side=plan.min_side, max_side=720
            )
            if roi_side is None:
                roi_side = plan.side_for_frame(64)  # adaptive needs a detector
        digests = []
        result = executor(
            _server(roi_side),
            _CapturingClient(client, digests),
            n_frames=N_FRAMES,
            **kwargs,
        )
        outputs.append((result, digests))
    return outputs


class TestDeterminismMatrix:
    @pytest.mark.parametrize("design", DESIGNS)
    @pytest.mark.parametrize(
        "with_link,with_adaptive",
        [(False, False), (True, False), (False, True), (True, True)],
        ids=["plain", "link", "adaptive", "link+adaptive"],
    )
    def test_pipelined_byte_identical_to_serial(
        self, design, with_link, with_adaptive, tiny_runner
    ):
        device = get_device("samsung_tab_s8")
        plan = plan_roi_window(device)
        (serial, serial_digests), (piped, piped_digests) = _run_both(
            design, device, tiny_runner, plan,
            with_link=with_link, with_adaptive=with_adaptive,
        )
        # Bitstreams + HR outputs, frame by frame.
        assert piped_digests == serial_digests
        assert len(serial_digests) == N_FRAMES
        # Exported trace JSON (canonicalized: wall-clock data stripped).
        assert _canonical(piped) == _canonical(serial)
        # Aggregates derived from the records.
        assert [r.index for r in piped.records] == list(range(N_FRAMES))
        assert [r.dropped for r in piped.records] == [
            r.dropped for r in serial.records
        ]
        assert piped.mean_mtp().total_ms == serial.mean_mtp().total_ms
        assert piped.mean_energy().total == serial.mean_energy().total


class TestPipelineExecution:
    def test_render_prefetch_workers_identical(self, tiny_runner):
        """workers>1 spawns the render-prefetch pool inside the producer;
        renders are pure by index so the stream must not change."""
        device = get_device("samsung_tab_s8")
        plan = plan_roi_window(device)
        client, roi_side = _make_client("gamestreamsr", device, tiny_runner, plan)
        serial = run_session(_server(roi_side), client, n_frames=N_FRAMES)
        client2, _ = _make_client("gamestreamsr", device, tiny_runner, plan)
        piped = run_session_pipelined(
            _server(roi_side), client2, n_frames=N_FRAMES, depth=2, workers=2
        )
        assert _canonical(piped) == _canonical(serial)

    def test_pipeline_metrics_present_and_volatile(self, tiny_runner):
        device = get_device("samsung_tab_s8")
        plan = plan_roi_window(device)
        client, roi_side = _make_client("bilinear", device, tiny_runner, plan)
        result = run_session_pipelined(
            _server(roi_side), client, n_frames=N_FRAMES, depth=2
        )
        names = result.metrics.names()
        assert "pipeline/queue_wait_ms" in names
        assert "pipeline/ring_occupancy" in names
        assert "pipeline/producer_stalls" in names
        assert result.metrics.counter("pipeline/frames_produced").value == N_FRAMES
        # Volatile executor metrics never survive canonicalization.
        canon = canonicalize_session_trace(result.to_trace_dict())
        assert not any(n.startswith("pipeline/") for n in canon["metrics"])
        assert not any(n.startswith("stage_wall_ms/") for n in canon["metrics"])

    def test_skip_dropped_identical_across_executors(self, tiny_runner):
        """The reference-chain skip cascade is consumer-side state: the
        pipelined run must skip exactly the frames the serial run does."""
        device = get_device("samsung_tab_s8")
        plan = plan_roi_window(device)
        runs = []
        for executor in (run_session, run_session_pipelined):
            client, roi_side = _make_client("bilinear", device, tiny_runner, plan)
            runs.append(
                executor(
                    _server(roi_side),
                    client,
                    n_frames=N_FRAMES,
                    link=NetworkLink(**LINK_KW),
                    link_deadline_ms=60.0,
                    skip_dropped=True,
                )
            )
        serial, piped = runs
        assert _canonical(piped) == _canonical(serial)
        assert [r.dropped for r in piped.records] == [
            r.dropped for r in serial.records
        ]

    def test_validation_errors(self, tiny_runner):
        device = get_device("samsung_tab_s8")
        plan = plan_roi_window(device)
        client, roi_side = _make_client("bilinear", device, tiny_runner, plan)
        with pytest.raises(ValueError, match="depth"):
            run_session_pipelined(_server(roi_side), client, n_frames=2, depth=0)
        with pytest.raises(ValueError, match="workers"):
            run_session_pipelined(_server(roi_side), client, n_frames=2, workers=0)
        with pytest.raises(ValueError, match="n_frames"):
            run_session_pipelined(_server(roi_side), client, n_frames=0)


# -- crash injection ------------------------------------------------------
# Module-level so the wrapper pickles into the producer process.


class _KillRender:
    """Game proxy that SIGKILLs its own process at a chosen frame index."""

    def __init__(self, inner, kill_at: int):
        self.inner = inner
        self.kill_at = kill_at
        self.game_id = inner.game_id

    def render_frame(self, frame_index, width, height, fps=60.0):
        if frame_index >= self.kill_at:
            os.kill(os.getpid(), signal.SIGKILL)
        return self.inner.render_frame(frame_index, width, height, fps)


class _RaiseRender:
    """Game proxy that raises inside the producer at a chosen frame."""

    def __init__(self, inner, raise_at: int):
        self.inner = inner
        self.raise_at = raise_at
        self.game_id = inner.game_id

    def render_frame(self, frame_index, width, height, fps=60.0):
        if frame_index >= self.raise_at:
            raise ValueError("injected producer failure")
        return self.inner.render_frame(frame_index, width, height, fps)


class TestCrashInjection:
    def test_worker_killed_mid_gop_truncates_cleanly(self, tiny_runner):
        """SIGKILL at frame 4 (mid second GOP): the session must shut
        down cleanly and return a truncated-but-valid result holding
        every frame published before the kill."""
        device = get_device("samsung_tab_s8")
        plan = plan_roi_window(device)
        client, roi_side = _make_client("gamestreamsr", device, tiny_runner, plan)
        game = _KillRender(build_game("G3"), kill_at=4)
        result = run_session_pipelined(
            _server(roi_side, gop=3, game=game), client, n_frames=6, depth=2
        )
        assert [r.index for r in result.records] == [0, 1, 2, 3]
        assert result.metrics.counter("pipeline/truncated").value == 1
        assert result.metrics.counter("pipeline/frames_missing").value == 2
        # The truncated result is still schema-valid and consistent.
        validate_session_trace(result.to_trace_dict())
        assert result.records[3].frame_type == "I"  # GOP restarted at 3
        # The ring segment is gone (clean unlink despite the dead peer).
        # A fresh session on the same objects still works end to end.
        client2, _ = _make_client("gamestreamsr", device, tiny_runner, plan)
        ok = run_session_pipelined(
            _server(roi_side), client2, n_frames=2, depth=2
        )
        assert len(ok.records) == 2

    def test_producer_exception_propagates(self, tiny_runner):
        device = get_device("samsung_tab_s8")
        plan = plan_roi_window(device)
        client, roi_side = _make_client("bilinear", device, tiny_runner, plan)
        game = _RaiseRender(build_game("G3"), raise_at=2)
        with pytest.raises(RuntimeError, match="injected producer failure"):
            run_session_pipelined(
                _server(roi_side, game=game), client, n_frames=4, depth=2
            )


# -- shared-memory ring ---------------------------------------------------


def _ring_child_producer(name, capacity, slot_bytes, payloads):
    ring = ShmRing(capacity, slot_bytes, name=name, create=False)
    try:
        for p in payloads:
            ring.push(p)
    finally:
        ring.close()


class TestShmRing:
    def test_roundtrip_and_wraparound(self):
        ring = ShmRing(capacity=2, slot_bytes=64)
        try:
            payloads = [bytes([i]) * (i + 1) for i in range(6)]
            got = []
            for i, p in enumerate(payloads):
                ring.push(p)  # capacity 2, consumed in lockstep: never full
                got.append(ring.pop(i))
            assert got == payloads
            assert ring.produced == ring.consumed == 6
        finally:
            ring.close()
            ring.unlink()

    def test_backpressure_bounds_runahead(self):
        ring = ShmRing(capacity=2, slot_bytes=8)
        try:
            ring.push(b"a")
            ring.push(b"b")
            with pytest.raises(TimeoutError):
                ring.push(b"c", timeout_s=0.05)
            assert ring.backpressure_waits == 1
            assert ring.backpressure_wait_ms > 0
            assert ring.pop(0) == b"a"
            ring.push(b"c")  # slot freed: push succeeds
            assert ring.pop(1) == b"b"
            assert ring.pop(2) == b"c"
        finally:
            ring.close()
            ring.unlink()

    def test_overflow_and_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            ShmRing(capacity=0)
        with pytest.raises(ValueError, match="slot_bytes"):
            ShmRing(capacity=1, slot_bytes=0)
        ring = ShmRing(capacity=1, slot_bytes=4)
        try:
            with pytest.raises(RingOverflow):
                ring.push(b"too big for slot")
        finally:
            ring.close()
            ring.unlink()

    def test_pop_timeout(self):
        ring = ShmRing(capacity=1, slot_bytes=8)
        try:
            with pytest.raises(TimeoutError):
                ring.pop(0, timeout_s=0.05)
        finally:
            ring.close()
            ring.unlink()

    def test_cross_process_transfer(self):
        payloads = [bytes([i % 256]) * 100 for i in range(10)]
        ring = ShmRing(capacity=3, slot_bytes=128)
        child = mp.Process(
            target=_ring_child_producer,
            args=(ring.name, 3, 128, payloads),
        )
        child.start()
        try:
            got = [ring.pop(i, alive=child.is_alive, timeout_s=10.0) for i in range(10)]
            assert got == payloads
        finally:
            child.join(timeout=10.0)
            ring.close()
            ring.unlink()

    def test_dead_producer_detected(self):
        ring = ShmRing(capacity=2, slot_bytes=8)
        child = mp.Process(
            target=_ring_child_producer, args=(ring.name, 2, 8, [b"x"])
        )
        child.start()
        try:
            assert ring.pop(0, alive=child.is_alive, timeout_s=10.0) == b"x"
            child.join(timeout=10.0)
            # Frame 1 was never published and the producer is gone.
            assert ring.pop(1, alive=child.is_alive) is None
        finally:
            ring.close()
            ring.unlink()


# -- modeled pipeline schedule --------------------------------------------


def _trace(index, server_ms, client_ms):
    t = FrameTrace(index=index, frame_type="P")
    t.add_span("encode", server_ms)
    t.add_span("upscale", client_ms)
    return t


class TestModeledSchedule:
    def test_balanced_pipeline_approaches_2x(self):
        traces = [_trace(i, 10.0, 10.0) for i in range(100)]
        sched = modeled_pipeline_schedule(traces, depth=2)
        assert sched.serial_total_ms == 2000.0
        # Pipelined: fill (10 ms) + 100 client slots of 10 ms.
        assert sched.pipelined_total_ms == 1010.0
        assert sched.speedup == pytest.approx(2000.0 / 1010.0)

    def test_depth_one_serializes(self):
        # depth=1: server i+1 must wait for client i (single slot).
        traces = [_trace(i, 10.0, 5.0) for i in range(3)]
        sched = modeled_pipeline_schedule(traces, depth=1)
        assert sched.pipelined_total_ms == 45.0
        assert sched.speedup == pytest.approx(1.0)
        # depth=2 overlaps: server free-runs one ahead of the client.
        sched2 = modeled_pipeline_schedule(traces, depth=2)
        assert sched2.pipelined_total_ms == 35.0

    def test_bottleneck_side_bounds_throughput(self):
        traces = [_trace(i, 2.0, 10.0) for i in range(50)]
        sched = modeled_pipeline_schedule(traces, depth=2)
        # Client-bound: sustained FPS ~= 1000 / client_ms.
        assert sched.pipelined_fps == pytest.approx(1000.0 / 10.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            modeled_pipeline_schedule([], depth=2)
        with pytest.raises(ValueError, match="depth"):
            modeled_pipeline_schedule([_trace(0, 1.0, 1.0)], depth=0)
