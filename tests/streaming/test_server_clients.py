"""Server pipeline and the five client designs on short real sessions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.platform import calibration as cal
from repro.platform.device import samsung_tab_s8
from repro.render.games import build_game
from repro.streaming.client import (
    BilinearClient,
    FullFrameSRClient,
    GameStreamSRClient,
    NemoClient,
    SRIntegratedDecoderClient,
)
from repro.streaming.frames import StreamGeometry
from repro.streaming.server import GameStreamServer

GEO = StreamGeometry(eval_lr_height=48, eval_lr_width=80, lr_source="native")
N = 4


@pytest.fixture(scope="module")
def device():
    return samsung_tab_s8()


def make_server(roi_side=20, gop=N):
    return GameStreamServer(build_game("G5"), GEO, roi_side=roi_side, gop_size=gop, quality=60)


class TestServer:
    def test_frame_sequence_structure(self):
        server = make_server(gop=2)
        frames = [server.next_frame() for _ in range(4)]
        assert [f.encoded.frame_type for f in frames] == ["I", "P", "I", "P"]
        assert [f.index for f in frames] == [0, 1, 2, 3]

    def test_roi_attached_and_in_bounds(self):
        frame = make_server().next_frame()
        assert frame.roi is not None
        assert frame.roi.x_end <= 80 and frame.roi.y_end <= 48

    def test_roi_disabled_for_sota(self):
        server = make_server(roi_side=None)
        frame = server.next_frame()
        assert frame.roi is None
        assert frame.server_timings_ms["roi_detect"] == 0.0

    def test_server_timing_stages(self):
        frame = make_server().next_frame()
        for stage in ("input", "game_logic", "render", "encode", "network"):
            assert frame.server_timings_ms[stage] > 0
        assert frame.server_timings_ms["roi_detect"] == cal.SERVER_ROI_DETECT_MS

    def test_modeled_bytes_extrapolated(self):
        frame = make_server().next_frame()
        assert frame.modeled_size_bytes > frame.encoded.size_bytes

    def test_downsample_mode_shares_hr_render(self):
        geo = StreamGeometry(eval_lr_height=48, eval_lr_width=80, lr_source="downsample")
        server = GameStreamServer(build_game("G5"), geo, roi_side=20, gop_size=2)
        frame = server.next_frame()
        hr = server.render_hr_reference(frame.index)
        assert hr.shape == (96, 160, 3)
        lr = server.render_lr(frame.index)
        np.testing.assert_allclose(
            lr.color, hr.reshape(48, 2, 80, 2, 3).mean(axis=(1, 3)), atol=1e-12
        )


class TestClients:
    def run_one(self, client, roi_side=20):
        server = make_server(roi_side=roi_side)
        return [client.process(server.next_frame()) for _ in range(N)]

    def test_gamestreamsr_realtime(self, device, tiny_runner):
        client = GameStreamSRClient(device, tiny_runner, modeled_roi_side=300)
        results = self.run_one(client)
        for r in results:
            assert r.hr_frame.shape == (96, 160, 3)
            assert r.upscale_ms <= cal.REALTIME_DEADLINE_MS
        assert results[0].is_reference and not results[1].is_reference

    def test_gamestreamsr_requires_roi(self, device, tiny_runner):
        client = GameStreamSRClient(device, tiny_runner)
        server = make_server(roi_side=None)
        with pytest.raises(ValueError, match="RoI"):
            client.process(server.next_frame())

    def test_nemo_reference_slow_nonref_medium(self, device, tiny_runner):
        results = self.run_one(NemoClient(device, tiny_runner), roi_side=None)
        ref, nonref = results[0], results[1]
        assert ref.upscale_ms > 200.0  # full-frame DNN SR
        assert 16.66 < nonref.upscale_ms < 40.0
        assert ref.hr_frame.shape == (96, 160, 3)

    def test_nemo_energy_categories(self, device, tiny_runner):
        results = self.run_one(NemoClient(device, tiny_runner), roi_side=None)
        nonref = results[1]
        # NEMO's warp energy is charged to decode (calibration note).
        components = [c for c, _ in nonref.energy_stages["decode"]]
        assert len(components) == 2

    def test_bilinear_fastest(self, device):
        results = self.run_one(BilinearClient(device), roi_side=None)
        assert all(r.upscale_ms < 2.0 for r in results)

    def test_fullframe_sr_always_slow(self, device, tiny_runner):
        results = self.run_one(FullFrameSRClient(device, tiny_runner), roi_side=None)
        assert all(r.upscale_ms > 200.0 for r in results)

    def test_sr_integrated_decoder_bypasses_npu_on_nonref(self, device, tiny_runner):
        results = self.run_one(SRIntegratedDecoderClient(device, tiny_runner))
        ref, nonref = results[0], results[1]
        assert ref.upscale_ms > 0
        assert nonref.upscale_ms == 0.0
        assert nonref.energy_stages["upscale"] == []

    def test_reset_clears_reference_state(self, device, tiny_runner):
        client = NemoClient(device, tiny_runner)
        self.run_one(client, roi_side=None)
        client.reset()
        assert client._hr_reference is None

    def test_outputs_differ_between_designs(self, device, tiny_runner):
        ours = self.run_one(GameStreamSRClient(device, tiny_runner))
        bili = self.run_one(BilinearClient(device))
        assert not np.allclose(ours[0].hr_frame, bili[0].hr_frame)
