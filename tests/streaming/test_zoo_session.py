"""Zoo backend / dispatch session plumbing: identity, knobs, observability."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.neural.models import QuickSRNet
from repro.observability import (
    MetricsRegistry,
    canonicalize_session_trace,
    observe_frame_trace,
    validate_session_trace,
)
from repro.platform.device import samsung_tab_s8
from repro.render.games import build_game
from repro.sr.backends import build_backend
from repro.sr.dispatch import DifficultyDispatcher
from repro.sr.backends import NeuralBackend
from repro.sr.runner import SRRunner
from repro.streaming.client import (
    BilinearClient,
    GameStreamSRClient,
    NemoClient,
    SRIntegratedDecoderClient,
)
from repro.streaming.frames import StreamGeometry
from repro.streaming.pipelined import run_session_pipelined
from repro.streaming.server import GameStreamServer
from repro.streaming.session import apply_client_knobs, run_session

GEO = StreamGeometry(eval_lr_height=48, eval_lr_width=80, lr_source="native")
N = 6


@pytest.fixture(scope="module")
def device():
    return samsung_tab_s8()


@pytest.fixture(scope="module")
def quicksrnet_backend():
    # Identity-initialized (untrained ~ nearest): a usable small net with
    # no training cost in the test suite.
    runner = SRRunner(QuickSRNet(scale=2, n_convs=1, feats=8, seed=0))
    return NeuralBackend(
        "quicksrnet", runner, quality_rank=3,
        latency_scale_field="quicksrnet_npu_latency_scale",
    )


def make_server():
    return GameStreamServer(build_game("G5"), GEO, roi_side=20, gop_size=3, quality=60)


def make_dispatcher(tiny_runner, budget_ms=8.33):
    return DifficultyDispatcher(
        [
            build_backend("edsr", runner=tiny_runner),
            build_backend("bilinear_gpu"),
        ],
        budget_ms=budget_ms,
    )


def canonical(result) -> str:
    export = result.to_trace_dict()
    validate_session_trace(export)
    return json.dumps(canonicalize_session_trace(export), sort_keys=True)


class TestDefaultPathUntouched:
    """sr_backend=None, dispatch=None must leave the paper path alone."""

    @pytest.mark.parametrize("client_cls", [GameStreamSRClient, SRIntegratedDecoderClient])
    def test_no_zoo_artifacts_in_default_traces(
        self, client_cls, device, tiny_runner
    ):
        result = run_session(make_server(), client_cls(device, tiny_runner), n_frames=N)
        for record in result.records:
            meta = record.trace.span("upscale").metadata
            assert "dispatch" not in meta
            assert "sr_backend" not in meta
        assert not any(
            name.startswith("sr.dispatch") for name in result.metrics.names()
        )

    def test_explicit_edsr_backend_reproduces_default(self, device, tiny_runner):
        """The zero-cost zoo member: wrapping the session runner in the
        EDSR backend must not move a single modeled number or pixel."""
        base = run_session(
            make_server(),
            GameStreamSRClient(device, tiny_runner, modeled_roi_side=300),
            n_frames=N, evaluate_quality=True,
        )
        zoo = run_session(
            make_server(),
            GameStreamSRClient(device, tiny_runner, modeled_roi_side=300),
            n_frames=N, evaluate_quality=True,
            sr_backend=build_backend("edsr", runner=tiny_runner),
        )
        assert [r.psnr_db for r in zoo.records] == [r.psnr_db for r in base.records]
        for a, b in zip(base.records, zoo.records):
            assert a.trace.span("upscale").modeled_ms == b.trace.span("upscale").modeled_ms
        assert base.mean_mtp().total_ms == zoo.mean_mtp().total_ms
        assert base.mean_energy().total == zoo.mean_energy().total


class TestBackendKnob:
    def test_small_backend_cuts_modeled_latency(
        self, device, tiny_runner, quicksrnet_backend
    ):
        base = run_session(
            make_server(),
            GameStreamSRClient(device, tiny_runner, modeled_roi_side=300),
            n_frames=N,
        )
        small = run_session(
            make_server(),
            GameStreamSRClient(device, tiny_runner, modeled_roi_side=300),
            n_frames=N, sr_backend=quicksrnet_backend,
        )
        assert small.mean_upscale_ms(True) < base.mean_upscale_ms(True)
        meta = small.records[0].trace.span("upscale").metadata
        assert meta["sr_backend"] == "quicksrnet"
        assert meta["sr_ms"] < meta["merge_ms"] + base.mean_upscale_ms(True)

    def test_backend_scale_mismatch_rejected(self, device, tiny_runner):
        backend = build_backend("bilinear_gpu", scale=3)
        with pytest.raises(ValueError, match="scale"):
            GameStreamSRClient(device, tiny_runner, sr_backend=backend)

    def test_gpu_backend_serializes_with_bilinear_rest(self, device, tiny_runner):
        # A GPU-engine SR backend shares silicon with the non-RoI
        # bilinear: the stage time is the sum, not the max.
        backend = build_backend("bilinear_gpu")
        result = run_session(
            make_server(),
            GameStreamSRClient(device, tiny_runner, modeled_roi_side=300),
            n_frames=2, sr_backend=backend,
        )
        meta = result.records[0].trace.span("upscale").metadata
        span = result.records[0].trace.span("upscale")
        assert span.modeled_ms == pytest.approx(meta["sr_ms"] + meta["gpu_ms"])


class TestKnobValidation:
    def test_mutually_exclusive_with_gop_reuse(
        self, device, tiny_runner, quicksrnet_backend
    ):
        with pytest.raises(ValueError, match="mutually exclusive"):
            GameStreamSRClient(
                device, tiny_runner, gop_reuse=True,
                sr_backend=quicksrnet_backend,
            )
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_session(
                make_server(),
                GameStreamSRClient(device, tiny_runner, sr_backend=quicksrnet_backend),
                n_frames=2, gop_reuse=True,
            )

    def test_dispatch_exclusive_with_backend(
        self, device, tiny_runner, quicksrnet_backend
    ):
        with pytest.raises(ValueError, match="mutually exclusive"):
            GameStreamSRClient(
                device, tiny_runner,
                sr_backend=quicksrnet_backend,
                dispatch=make_dispatcher(tiny_runner),
            )

    @pytest.mark.parametrize("knob", ["sr_backend", "dispatch"])
    def test_unsupported_designs_rejected(self, knob, device, tiny_runner):
        value = (
            make_dispatcher(tiny_runner)
            if knob == "dispatch"
            else build_backend("bilinear_gpu")
        )
        for client in (BilinearClient(device), NemoClient(device, tiny_runner)):
            with pytest.raises(ValueError, match=knob):
                run_session(make_server(), client, n_frames=2, **{knob: value})

    def test_apply_client_knobs_defaults_are_noop(self, device, tiny_runner):
        client = NemoClient(device, tiny_runner)
        apply_client_knobs(client)  # must not raise on any design


class TestDispatchSessions:
    def test_dispatch_ledger_and_display_coupling(self, device, tiny_runner):
        disp = make_dispatcher(tiny_runner)
        result = run_session(
            make_server(),
            GameStreamSRClient(device, tiny_runner, modeled_roi_side=300),
            n_frames=N, dispatch=disp,
        )
        for record in result.records:
            span = record.trace.span("upscale")
            meta = span.metadata["dispatch"]
            assert sum(meta["backend_tiles"].values()) == meta["tiles_total"]
            # Budget honored per engine unless tiles overflowed.
            if meta["overflow_tiles"] == 0:
                for ms in meta["engine_ms"].values():
                    assert ms <= disp.budget_ms + 1e-9
            # The merge still rides the display span.
            display = record.trace.span("display")
            assert display.modeled_ms > span.metadata["merge_ms"]

    def test_dispatch_undercuts_edsr_everywhere(self, device, tiny_runner):
        base = run_session(
            make_server(),
            GameStreamSRClient(device, tiny_runner, modeled_roi_side=300),
            n_frames=N,
        )
        routed = run_session(
            make_server(),
            GameStreamSRClient(device, tiny_runner, modeled_roi_side=300),
            n_frames=N, dispatch=make_dispatcher(tiny_runner),
        )
        assert routed.mean_upscale_ms(True) < base.mean_upscale_ms(True)

    def test_serial_pipelined_byte_identical(self, device, tiny_runner):
        serial = run_session(
            make_server(),
            GameStreamSRClient(device, tiny_runner, modeled_roi_side=300),
            n_frames=N, dispatch=make_dispatcher(tiny_runner),
        )
        piped = run_session_pipelined(
            make_server(),
            GameStreamSRClient(device, tiny_runner, modeled_roi_side=300),
            n_frames=N, dispatch=make_dispatcher(tiny_runner), depth=2,
        )
        assert canonical(serial) == canonical(piped)

    def test_sr_integrated_dispatches_reference_frames_only(
        self, device, tiny_runner
    ):
        result = run_session(
            make_server(),
            SRIntegratedDecoderClient(device, tiny_runner),
            n_frames=N, dispatch=make_dispatcher(tiny_runner),
        )
        for record in result.records:
            meta = record.trace.span("upscale").metadata
            if meta.get("path") == "roi_sr":
                assert "dispatch" in meta
            else:
                assert meta.get("path") == "in_decoder_reconstruction"
                assert "dispatch" not in meta

    def test_observability_counters(self, device, tiny_runner):
        result = run_session(
            make_server(),
            GameStreamSRClient(device, tiny_runner, modeled_roi_side=300),
            n_frames=N, dispatch=make_dispatcher(tiny_runner),
        )
        registry = MetricsRegistry()
        for record in result.records:
            observe_frame_trace(registry, record.trace)
        metrics = registry.to_dict()
        assert metrics["sr.dispatch/frames"]["value"] == N
        tiles_per_frame = result.records[0].trace.span("upscale").metadata[
            "dispatch"
        ]["tiles_total"]
        assert metrics["sr.dispatch/tiles_total"]["value"] == N * tiles_per_frame
        assert metrics["sr.dispatch/upscale_ms"]["count"] == N

    def test_quality_stays_close_to_pure_edsr(self, device, tiny_runner):
        base = run_session(
            make_server(),
            GameStreamSRClient(device, tiny_runner, modeled_roi_side=300),
            n_frames=N, evaluate_quality=True,
        )
        routed = run_session(
            make_server(),
            GameStreamSRClient(device, tiny_runner, modeled_roi_side=300),
            n_frames=N, evaluate_quality=True,
            dispatch=make_dispatcher(tiny_runner),
        )
        base_psnr = np.mean([r.psnr_db for r in base.records])
        routed_psnr = np.mean([r.psnr_db for r in routed.records])
        # Easy tiles went to bilinear; the difficulty metric must keep
        # the damage small (the bench asserts the 0.5 dB criterion at
        # full scale — this is the fast smoke version).
        assert routed_psnr > base_psnr - 2.0
