"""End-to-end sessions with the lossy transport and the adaptive RoI loop.

These exercise the two default-off extension hooks of
:func:`repro.streaming.session.run_session`: a seeded lossy
:class:`NetworkLink` replacing the flat bandwidth model, and an
:class:`AdaptiveRoIController` closing the RoI-sizing loop from measured
upscale spans.
"""

from __future__ import annotations

import pytest

from repro.core.roi_sizing import plan_roi_window
from repro.network import NetworkLink
from repro.platform.device import get_device
from repro.render.games import build_game
from repro.streaming import (
    AdaptiveRoIController,
    BilinearClient,
    GameStreamSRClient,
    GameStreamServer,
    StreamGeometry,
    run_session,
)

N_FRAMES = 6


def _geometry():
    return StreamGeometry(eval_lr_height=64, eval_lr_width=112, lr_source="native")


def _server(roi_side, gop=N_FRAMES):
    return GameStreamServer(build_game("G3"), _geometry(), roi_side=roi_side, gop_size=gop)


class TestLossyLinkSession:
    LINK_KW = dict(bandwidth_mbps=20.0, propagation_ms=8.0, loss_rate=0.3, seed=7)

    def _run(self, deadline_ms=float("inf")):
        device = get_device("samsung_tab_s8")
        return run_session(
            _server(None),
            BilinearClient(device),
            n_frames=N_FRAMES,
            link=NetworkLink(**self.LINK_KW),
            link_deadline_ms=deadline_ms,
        )

    def test_transmit_outcome_replays_into_network_span(self):
        """The session's network spans must match a fresh identically-seeded
        link replayed over the recorded frame sizes, byte for byte."""
        result = self._run()
        replay = NetworkLink(**self.LINK_KW)
        total_retx = 0
        for record in result.records:
            expected = replay.transmit(record.modeled_size_bytes)
            span = record.trace.span("network")
            assert span.modeled_ms == expected.latency_ms
            assert span.metadata["n_packets"] == expected.n_packets
            assert span.metadata["n_retransmissions"] == expected.n_retransmissions
            assert span.metadata["dropped"] == expected.dropped
            assert span.metadata["transport"] == "lossy_link"
            assert record.network_retransmissions == expected.n_retransmissions
            # MTP must flow through the measured (not flat) latency.
            assert record.mtp.stage("network") == expected.latency_ms
            total_retx += expected.n_retransmissions
        assert total_retx > 0  # 30 % loss over 6 frames: retx all but certain
        assert result.total_retransmissions() == total_retx

    def test_retransmissions_surface_in_metrics(self):
        result = self._run()
        assert (
            result.metrics.counter("network_retransmissions").value
            == result.total_retransmissions()
        )

    def test_deadline_drops_match_link_semantics(self):
        """With a tight deadline, drop flags must equal ``latency > deadline``
        and surface in drop_rate + the metrics counter."""
        deadline = 15.0
        result = self._run(deadline_ms=deadline)
        replay = NetworkLink(**self.LINK_KW)
        n_dropped = 0
        for record in result.records:
            expected = replay.transmit(record.modeled_size_bytes, deadline_ms=deadline)
            assert record.dropped == expected.dropped
            assert record.dropped == (expected.latency_ms > deadline)
            n_dropped += int(expected.dropped)
        assert 0 < n_dropped  # lossy 20 Mbps link misses a 15 ms deadline sometimes
        assert result.drop_rate() == n_dropped / N_FRAMES
        assert result.metrics.counter("frames_dropped").value == n_dropped

    def test_lossless_link_equals_flat_model_plus_loss_hooks(self):
        """loss_rate=0 at the calibrated bandwidth/propagation reproduces the
        flat model's latency: the transport stage is then a pure no-op."""
        from repro.platform import calibration as cal
        from repro.platform import latency as lat

        device = get_device("samsung_tab_s8")
        link = NetworkLink(
            bandwidth_mbps=cal.NETWORK_BANDWIDTH_MBPS,
            propagation_ms=cal.NETWORK_PROPAGATION_MS,
            loss_rate=0.0,
        )
        result = run_session(
            _server(None), BilinearClient(device), n_frames=2, link=link
        )
        for record in result.records:
            assert record.mtp.stage("network") == pytest.approx(
                lat.transmission_ms(record.modeled_size_bytes), abs=1e-12
            )
            assert not record.dropped
            assert record.network_retransmissions == 0


def _is_skipped(record):
    return record.trace.span("upscale").metadata.get("skipped", False)


def _canon_trace(trace):
    """Frame-trace dict with the (nondeterministic) wall clock zeroed."""
    d = trace.to_dict()
    d["spans"] = [{**span, "wall_ms": 0.0} for span in d["spans"]]
    return d


class TestSkipDropped:
    """Regression pins for the ``skip_dropped=`` knob of ``run_session``.

    The seeded lossy link at GOP 3 / 80 ms deadline yields a
    deterministic mix: transport-dropped frames (0, 4), P-frames skipped
    on the broken reference chain (1, 2, 5), and a delivered I-frame (3)
    that heals the chain and is processed in full.
    """

    LINK_KW = dict(bandwidth_mbps=20.0, propagation_ms=8.0, loss_rate=0.3, seed=13)
    DEADLINE_MS = 80.0
    GOP = 3

    def _run(self, **kwargs):
        device = get_device("samsung_tab_s8")
        return run_session(
            _server(None, gop=self.GOP),
            BilinearClient(device),
            n_frames=N_FRAMES,
            link=NetworkLink(**self.LINK_KW),
            link_deadline_ms=self.DEADLINE_MS,
            **kwargs,
        )

    def test_default_still_processes_dropped_frames(self):
        """skip_dropped defaults off: dropped frames are decoded and
        upscaled in full — the historical behavior, pinned here."""
        result = self._run()
        dropped = [r for r in result.records if r.dropped]
        assert dropped, "seed must produce at least one drop"
        assert len(dropped) < N_FRAMES, "seed must deliver at least one frame"
        for record in result.records:
            assert record.upscale_ms > 0.0
            for name in ("decode", "upscale", "display"):
                assert "skipped" not in record.trace.span(name).metadata

    def test_skip_dropped_zeroes_client_spans(self):
        result = self._run(skip_dropped=True)
        skipped = [r for r in result.records if _is_skipped(r)]
        assert skipped
        reasons = set()
        for record in skipped:
            assert record.upscale_ms == 0.0
            for name in ("decode", "upscale", "display"):
                span = record.trace.span(name)
                assert span.modeled_ms == 0.0
                assert span.metadata["skipped"] is True
                reasons.add(span.metadata["reason"])
            # The RX radio window was still spent: network energy stays,
            # decode/upscale energy is zero.
            assert record.energy.network > 0.0
            assert record.energy.decode == 0.0
            assert record.energy.upscale == 0.0
        # Both skip causes occur: deadline misses and the broken chain.
        assert reasons == {"transport_drop", "reference_lost"}

    def test_reference_chain_cascades_and_heals_at_i_frame(self):
        """A skipped frame makes later P-frames undecodable (their
        reference is missing or stale) until a delivered I-frame resets
        the decoder."""
        result = self._run(skip_dropped=True)
        reason = {
            r.index: r.trace.span("upscale").metadata.get("reason")
            for r in result.records
        }
        dropped = {r.index for r in result.records if r.dropped}
        assert dropped == {0, 4}
        assert reason[0] == reason[4] == "transport_drop"
        assert reason[1] == reason[2] == reason[5] == "reference_lost"
        # Frame 3 opens a new GOP: delivered I-frame, processed in full.
        assert result.records[3].frame_type == "I"
        assert reason[3] is None
        assert result.records[3].upscale_ms > 0.0

    def test_skip_dropped_leaves_processed_frames_untouched(self):
        """Frames the skip run still processes are byte-identical to the
        default run (the healing I-frame resets decoder state)."""
        base = self._run()
        skip = self._run(skip_dropped=True)
        processed = [r for r in skip.records if not _is_skipped(r)]
        assert processed
        for b in processed:
            a = base.records[b.index]
            assert a.dropped == b.dropped
            assert _canon_trace(a.trace) == _canon_trace(b.trace)
            assert a.mtp.total_ms == b.mtp.total_ms
            assert a.energy == b.energy

    def test_skip_dropped_excludes_frames_from_quality(self):
        result = self._run(skip_dropped=True, evaluate_quality=True)
        assert any(not _is_skipped(r) for r in result.records)
        for record in result.records:
            if _is_skipped(record):
                assert record.psnr_db is None
            else:
                assert record.psnr_db is not None

    def test_skip_dropped_hides_frames_from_adaptive_controller(self):
        """The controller never observes a zeroed upscale span — a skipped
        frame must not be mistaken for a fast one and grow the window."""
        device = get_device("samsung_tab_s8")
        plan = plan_roi_window(device)
        from repro.analysis.experiments import default_runner

        controller = AdaptiveRoIController(
            initial_side=plan.side, min_side=plan.min_side, max_side=720
        )
        client = GameStreamSRClient(device, default_runner(), modeled_roi_side=plan.side)
        result = run_session(
            _server(plan.side_for_frame(64), gop=self.GOP),
            client,
            n_frames=N_FRAMES,
            link=NetworkLink(**self.LINK_KW),
            link_deadline_ms=self.DEADLINE_MS,
            adaptive=controller,
            skip_dropped=True,
        )
        n_skipped = sum(1 for r in result.records if _is_skipped(r))
        assert 0 < n_skipped < N_FRAMES
        assert len(controller._history) == N_FRAMES - n_skipped


class TestAdaptiveSession:
    def test_controller_shrinks_roi_when_over_deadline(self):
        """Pin an oversized RoI so upscale blows the 16.66 ms budget: the
        controller must shrink the side on both server and client."""
        device = get_device("samsung_tab_s8")
        plan = plan_roi_window(device)
        from repro.analysis.experiments import default_runner

        initial = 700  # ~full-frame NPU SR on 720p: way over deadline
        controller = AdaptiveRoIController(
            initial_side=initial, min_side=plan.min_side, max_side=720
        )
        client = GameStreamSRClient(device, default_runner(), modeled_roi_side=initial)
        server = _server(roi_side=64)
        result = run_session(
            server, client, n_frames=N_FRAMES, adaptive=controller
        )

        assert controller.side < initial
        assert controller.miss_rate() > 0.0
        # The side is pushed at frame start and observed at frame end, so
        # the client tracks the controller with one frame of lag: it holds
        # the side the controller had *before* the final observation.
        assert client.modeled_roi_side < initial
        # The server's detection window followed the same applied side
        # (rescaled to the eval frame height, floored at 2).
        expected_eval = max(2, min(round(client.modeled_roi_side * 64 / 720), 64))
        assert server.roi_side == expected_eval
        # Upscale latency must fall as the window shrinks.
        assert result.records[-1].upscale_ms < result.records[0].upscale_ms

    def test_controller_grows_back_under_budget(self):
        device = get_device("samsung_tab_s8")
        plan = plan_roi_window(device)
        from repro.analysis.experiments import default_runner

        controller = AdaptiveRoIController(
            initial_side=plan.min_side, min_side=plan.min_side, max_side=720
        )
        client = GameStreamSRClient(
            device, default_runner(), modeled_roi_side=plan.min_side
        )
        run_session(_server(roi_side=64), client, n_frames=4, adaptive=controller)
        assert controller.side > plan.min_side  # additive growth with headroom

    def test_default_session_never_touches_the_controller_hooks(self):
        """Without adaptive=, a pinned client side stays pinned."""
        device = get_device("samsung_tab_s8")
        from repro.analysis.experiments import default_runner

        plan = plan_roi_window(device)
        client = GameStreamSRClient(device, default_runner(), modeled_roi_side=plan.side)
        server = _server(roi_side=plan.side_for_frame(64))
        before = server.roi_side
        run_session(server, client, n_frames=2)
        assert client.modeled_roi_side == plan.side
        assert server.roi_side == before
