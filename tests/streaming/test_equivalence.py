"""Staged pipeline vs frozen seed implementation: bit-identical sessions.

The multi-layer stage/trace refactor must be a pure re-organization at
the paper's default knobs: for every design, every frame's timing dicts,
MTP stages, energy integrals, payload bytes, and output pixels (PSNR)
must equal the seed implementation *exactly* (no tolerance).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.roi_sizing import plan_roi_window
from repro.platform.device import get_device
from repro.render.games import build_game
from repro.streaming.client import (
    BilinearClient,
    FullFrameSRClient,
    GameStreamSRClient,
    NemoClient,
    SRIntegratedDecoderClient,
)
from repro.streaming.frames import StreamGeometry
from repro.streaming.mtp import mtp_from_frame
from repro.streaming.server import GameStreamServer
from repro.streaming.session import energy_of_frame, run_session

from ._legacy_session import (
    LegacyBilinearClient,
    LegacyFullFrameSRClient,
    LegacyGameStreamSRClient,
    LegacyNemoClient,
    LegacySRIntegratedDecoderClient,
    legacy_next_frame,
)

N_FRAMES = 4
GOP = 3  # frames 0..3 -> I P P I: both reference and dependent paths

DESIGNS = [
    "gamestreamsr",
    "nemo",
    "bilinear",
    "fullframe_sr",
    "sr_integrated_decoder",
]


def _geometry() -> StreamGeometry:
    return StreamGeometry(eval_lr_height=64, eval_lr_width=112, lr_source="downsample")


def _make_server(roi_side):
    return GameStreamServer(
        build_game("G3"), _geometry(), roi_side=roi_side, gop_size=GOP
    )


def _make_pair(design, device, runner, plan):
    """(new client, legacy client, server RoI side) for one design."""
    if design == "gamestreamsr":
        return (
            GameStreamSRClient(device, runner, modeled_roi_side=plan.side),
            LegacyGameStreamSRClient(device, runner, modeled_roi_side=plan.side),
            plan.side_for_frame(64),
        )
    if design == "nemo":
        return NemoClient(device, runner), LegacyNemoClient(device, runner), None
    if design == "bilinear":
        return BilinearClient(device), LegacyBilinearClient(device), None
    if design == "fullframe_sr":
        return (
            FullFrameSRClient(device, runner),
            LegacyFullFrameSRClient(device, runner),
            None,
        )
    if design == "sr_integrated_decoder":
        return (
            SRIntegratedDecoderClient(device, runner),
            LegacySRIntegratedDecoderClient(device, runner),
            plan.side_for_frame(64),
        )
    raise ValueError(design)


@pytest.mark.parametrize("design", DESIGNS)
def test_staged_pipeline_matches_seed_exactly(design, tiny_runner):
    device = get_device("samsung_tab_s8")
    plan = plan_roi_window(device)
    new_client, legacy_client, roi_side = _make_pair(
        design, device, tiny_runner, plan
    )

    # New path: the refactored run_session (default knobs: no link, no
    # adaptive controller), which derives everything from traces.
    new_result = run_session(
        _make_server(roi_side), new_client, n_frames=N_FRAMES, evaluate_quality=True
    )

    # Seed path: frozen server pipeline + monolithic client + dict-based
    # MTP/energy assembly, replayed frame by frame.
    legacy_server = _make_server(roi_side)
    legacy_client.reset()
    for record in new_result.records:
        server_frame = legacy_next_frame(legacy_server)
        client_result = legacy_client.process(server_frame)

        assert record.frame_type == client_result.frame_type
        assert record.modeled_size_bytes == server_frame.modeled_size_bytes

        # Timing views: both dicts must match the seed key-for-key.
        new_frame_trace = record.trace
        assert new_frame_trace is not None
        new_server_timings = {
            s: new_frame_trace.stage_ms(s) for s in server_frame.server_timings_ms
        }
        assert new_server_timings == server_frame.server_timings_ms
        assert record.upscale_ms == client_result.upscale_ms

        # MTP: trace-derived breakdown == seed dict-derived breakdown.
        legacy_mtp = mtp_from_frame(server_frame, client_result)
        assert record.mtp.stages_ms == legacy_mtp.stages_ms

        # Energy: trace integration == seed dict integration, field-exact.
        legacy_energy = energy_of_frame(device, client_result)
        assert record.energy.decode == legacy_energy.decode
        assert record.energy.upscale == legacy_energy.upscale
        assert record.energy.network == legacy_energy.network
        assert record.energy.display == legacy_energy.display

        # Pixels: identical real computation, identical output.
        legacy_psnr = _psnr_against(legacy_server, server_frame.index, client_result)
        assert record.psnr_db == legacy_psnr


def _psnr_against(server, index, client_result):
    from repro.metrics.psnr import psnr

    return psnr(server.render_hr_reference(index), client_result.hr_frame)


def test_energy_dict_view_matches_trace_integration(tiny_runner):
    """The ClientFrameResult.energy_stages view and the trace carry the
    same attributions, so both energy paths integrate identically."""
    from repro.streaming.session import energy_from_trace

    device = get_device("samsung_tab_s8")
    plan = plan_roi_window(device)
    client = NemoClient(device, tiny_runner)
    result = run_session(_make_server(None), client, n_frames=N_FRAMES)
    for record in result.records:
        assert record.trace is not None
        via_trace = energy_from_trace(device, record.trace)
        assert via_trace.total == record.energy.total


def test_client_timings_view_has_only_client_stages(tiny_runner):
    """The client timing dict must not contain a network key (it would
    shadow the server's network stage in the dict-based MTP fallback)."""
    device = get_device("samsung_tab_s8")
    client = BilinearClient(device)
    result = run_session(_make_server(None), client, n_frames=2)
    trace = result.records[0].trace
    assert trace is not None
    # The merged trace still records the client RX span, but outside MTP.
    rx_spans = [s for s in trace.spans if s.name == "network"]
    assert len(rx_spans) == 2  # server downlink + client energy-only RX
    assert rx_spans[0].mtp and not rx_spans[1].mtp
    assert record_keys(result) == {"decode", "upscale", "display"}


def record_keys(result):
    keys = set()
    for r in result.records:
        client_spans = [s for s in r.trace.spans if s.name in ("decode", "upscale", "display")]
        keys.update(s.name for s in client_spans)
    return keys
