"""Units for the stage/trace primitives in repro.streaming.pipeline."""

from __future__ import annotations

import pytest

from repro.observability import (
    FRAME_TRACE_SCHEMA,
    SchemaError,
    validate,
)
from repro.platform import latency as lat
from repro.platform.energy import Component
from repro.streaming.pipeline import (
    CLIENT_STAGES,
    FrameTrace,
    SERVER_STAGES,
    split_transmission,
)


class TestStageRecording:
    def test_stage_records_span_with_wall_clock(self):
        trace = FrameTrace(index=0)
        with trace.stage("decode") as st:
            st.modeled_ms = 3.5
            st.add_energy(Component.HW_DECODER, 3.5)
            st.meta(hardware=True)
        span = trace.span("decode")
        assert span.modeled_ms == 3.5
        assert span.wall_ms >= 0.0
        assert span.mtp
        assert span.metadata == {"hardware": True}
        assert [(a.component, a.ms) for a in span.energy] == [
            (Component.HW_DECODER, 3.5)
        ]

    def test_stage_appends_span_on_exception(self):
        trace = FrameTrace(index=0)
        with pytest.raises(RuntimeError):
            with trace.stage("render") as st:
                st.modeled_ms = 1.0
                raise RuntimeError("boom")
        assert trace.has_span("render")

    def test_negative_modeled_ms_rejected(self):
        trace = FrameTrace(index=0)
        with pytest.raises(ValueError):
            with trace.stage("render") as st:
                st.modeled_ms = -1.0

    def test_unknown_energy_category_rejected(self):
        trace = FrameTrace(index=0)
        with trace.stage("decode") as st:
            with pytest.raises(ValueError):
                st.add_energy(Component.CPU, 1.0, category="display")


class TestFrameTraceAccounting:
    def _trace(self):
        trace = FrameTrace(index=7, frame_type="P")
        trace.add_span("network", 10.0, mtp=True)
        trace.add_span("network", 0.5, mtp=False)  # client RX, energy only
        trace.add_span("decode", 3.0)
        trace.add_span("upscale", 8.0)
        trace.add_span("display", 2.0)
        return trace

    def test_timings_view_sums_mtp_spans_only(self):
        trace = self._trace()
        assert trace.timings_ms(CLIENT_STAGES) == {
            "decode": 3.0,
            "upscale": 8.0,
            "display": 2.0,
        }
        assert trace.stage_ms("network") == 10.0  # the mtp=False RX excluded
        assert trace.total_modeled_ms == 23.0

    def test_duplicate_mtp_spans_sum(self):
        trace = FrameTrace(index=0)
        trace.add_span("upscale", 2.0)
        trace.add_span("upscale", 3.0)
        assert trace.stage_ms("upscale") == 5.0

    def test_absent_stage_is_zero(self):
        trace = FrameTrace(index=0)
        assert trace.timings_ms(SERVER_STAGES)["roi_detect"] == 0.0

    def test_energy_category_redirection(self):
        trace = FrameTrace(index=0)
        trace.add_span("upscale", 5.0)
        trace.span("upscale").add_energy(Component.CPU, 4.0)
        # NEMO-style: warp runs in upscale but is charged to decode.
        trace.span("upscale").add_energy(Component.RECON_MEMORY, 1.0, category="decode")
        stages = trace.energy_stages()
        assert stages["upscale"] == [(Component.CPU, 4.0)]
        assert stages["decode"] == [(Component.RECON_MEMORY, 1.0)]

    def test_category_named_span_contributes_empty_key(self):
        trace = FrameTrace(index=0)
        trace.add_span("upscale", 0.0)  # idle upscaler, no attributions
        assert trace.energy_stages() == {"upscale": []}

    def test_amend_span_replaces_cost_and_energy(self):
        trace = self._trace()
        trace.amend_span(
            "decode",
            modeled_ms=9.0,
            energy=[(Component.HW_DECODER, 6.0), (Component.COMPOSITION, 3.0)],
            augmented=True,
        )
        span = trace.span("decode")
        assert span.modeled_ms == 9.0
        assert len(span.energy) == 2
        assert span.metadata["augmented"] is True

    def test_amend_missing_span_raises(self):
        with pytest.raises(KeyError):
            FrameTrace(index=0).amend_span("network", modeled_ms=1.0)

    def test_extend_merges_server_and_client(self):
        server = FrameTrace(index=3)
        server.add_span("network", 10.0)
        client = FrameTrace(index=3, frame_type="I")
        client.add_span("decode", 3.0)
        merged = server.extend(client)
        assert [s.name for s in merged.spans] == ["network", "decode"]
        assert merged.frame_type == "I"
        assert merged.total_modeled_ms == 13.0

    def test_extend_rejects_index_mismatch(self):
        with pytest.raises(ValueError):
            FrameTrace(index=1).extend(FrameTrace(index=2))

    def test_to_dict_validates_against_schema(self):
        trace = self._trace()
        trace.span("decode").add_energy(Component.HW_DECODER, 3.0)
        validate(trace.to_dict(), FRAME_TRACE_SCHEMA)

    def test_schema_rejects_malformed_span(self):
        d = self._trace().to_dict()
        del d["spans"][0]["modeled_ms"]
        with pytest.raises(SchemaError):
            validate(d, FRAME_TRACE_SCHEMA)


class TestSplitTransmission:
    def test_matches_legacy_float_expressions_exactly(self):
        for n in (0, 1, 1400, 54321):
            split = split_transmission(n)
            assert split.total_ms == lat.transmission_ms(n)
            assert split.propagation_ms == lat.transmission_ms(0)
            # The seed client computed rx as the *difference* of the two
            # totals; the split must preserve that exact expression.
            assert split.serialization_ms == (
                lat.transmission_ms(n) - lat.transmission_ms(0)
            )

    def test_serialization_grows_with_bytes(self):
        assert (
            split_transmission(100_000).serialization_ms
            > split_transmission(10_000).serialization_ms
            > split_transmission(0).serialization_ms
            == 0.0
        )
