"""Adaptive RoI-window controller (thermal-throttling extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.platform.device import samsung_tab_s8
from repro.platform.latency import npu_sr_latency_ms
from repro.streaming.adaptive import AdaptiveRoIController


def make_controller(**overrides) -> AdaptiveRoIController:
    defaults = dict(initial_side=300, min_side=172, max_side=304)
    defaults.update(overrides)
    return AdaptiveRoIController(**defaults)


class TestControl:
    def test_shrinks_on_deadline_miss(self):
        ctl = make_controller()
        side = ctl.observe(20.0)
        assert side < 300

    def test_grows_with_headroom(self):
        ctl = make_controller(initial_side=200)
        side = ctl.observe(8.0)
        assert side == 204

    def test_holds_in_comfort_band(self):
        ctl = make_controller(initial_side=290)
        side = ctl.observe(0.9 * 16.66)  # between 0.8 and headroom
        assert side == 290

    def test_never_below_foveal_floor(self):
        ctl = make_controller(initial_side=180)
        for _ in range(20):
            ctl.observe(30.0)
        assert ctl.side == 172
        assert ctl.at_foveal_floor

    def test_shrink_stays_on_grow_lattice(self):
        """Regression: bare ``int(side * shrink_factor)`` truncation could
        land the side on any integer; a shrink must snap down onto the
        ``min_side + k * grow_step`` lattice that growth preserves."""
        ctl = make_controller()  # 300 -> int(255.0) = 255, off-lattice
        side = ctl.observe(20.0)
        assert side == 252  # 172 + 20 * 4
        assert (side - ctl.min_side) % ctl.grow_step == 0

    def test_shrink_never_rounds_up(self):
        ctl = make_controller(initial_side=176, min_side=172)
        # 176 * 0.85 = 149.6 -> clamped at the floor, never above 149.
        assert ctl.observe(20.0) == 172

    def test_side_invariants_under_arbitrary_latencies(self):
        """Property: under arbitrary latency sequences the side stays in
        ``[min_side, max_side]`` and aligned to the grow_step lattice
        (except when pinned at the ``max_side`` cap)."""
        rng = np.random.default_rng(42)
        for trial in range(50):
            min_side = int(rng.integers(8, 200))
            max_side = min_side + int(rng.integers(0, 600))
            grow = int(rng.integers(1, 17))
            # Start anywhere on the lattice (the planner's sizing is
            # block-aligned); caps may still push the side off it.
            k_max = (max_side - min_side) // grow
            initial = min_side + int(rng.integers(0, k_max + 1)) * grow
            ctl = AdaptiveRoIController(
                initial_side=initial,
                min_side=min_side,
                max_side=max_side,
                grow_step=grow,
            )
            latencies = rng.exponential(12.0, size=60)
            for latency in latencies:
                side = ctl.observe(float(latency))
                assert min_side <= side <= max_side
                assert (side - min_side) % grow == 0 or side == max_side

    def test_never_above_probe_ceiling(self):
        ctl = make_controller(initial_side=300)
        for _ in range(20):
            ctl.observe(5.0)
        assert ctl.side == 304

    def test_miss_rate(self):
        ctl = make_controller()
        ctl.observe(10.0)
        ctl.observe(20.0)
        assert ctl.miss_rate() == pytest.approx(0.5)
        assert make_controller().miss_rate() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            make_controller(initial_side=100)  # below min
        with pytest.raises(ValueError):
            make_controller(min_side=400)
        with pytest.raises(ValueError):
            make_controller(deadline_ms=0)
        with pytest.raises(ValueError):
            make_controller(shrink_factor=1.5)
        with pytest.raises(ValueError):
            make_controller(grow_step=0)
        with pytest.raises(ValueError):
            make_controller().observe(-1.0)


class TestThrottlingScenario:
    def test_recovers_realtime_under_throttling(self):
        """An S8 whose NPU slows 40% mid-session: the controller converges
        back under the deadline within a handful of frames."""
        device = samsung_tab_s8()
        throttled = device.with_overrides(npu_a_ms_per_px=device.npu_a_ms_per_px * 1.4)
        ctl = make_controller(initial_side=300)

        # Cold phase: everything fits.
        for _ in range(5):
            ctl.observe(npu_sr_latency_ms(ctl.side**2, device))
        assert npu_sr_latency_ms(ctl.side**2, device) <= 16.66

        # Throttled phase.
        frames_to_recover = 0
        for _ in range(30):
            latency = npu_sr_latency_ms(ctl.side**2, throttled)
            ctl.observe(latency)
            if latency <= 16.66:
                break
            frames_to_recover += 1
        assert frames_to_recover <= 5
        assert npu_sr_latency_ms(ctl.side**2, throttled) <= 16.66
        assert ctl.side >= ctl.min_side

    def test_stable_after_convergence(self):
        """Post-throttle, the window oscillates only within the AIMD band."""
        device = samsung_tab_s8()
        throttled = device.with_overrides(npu_a_ms_per_px=device.npu_a_ms_per_px * 1.4)
        ctl = make_controller(initial_side=300)
        sides = []
        for _ in range(60):
            ctl.observe(npu_sr_latency_ms(ctl.side**2, throttled))
            sides.append(ctl.side)
        tail = sides[20:]
        assert max(tail) - min(tail) < 60  # bounded oscillation
        # And it spends most frames under the deadline.
        misses = sum(
            npu_sr_latency_ms(s**2, throttled) > 16.66 for s in tail
        )
        assert misses / len(tail) < 0.5
