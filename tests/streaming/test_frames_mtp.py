"""Stream geometry, frame datatypes, and MTP accounting."""

from __future__ import annotations

import pytest

from repro.core.roi_search import RoIBox
from repro.streaming.frames import ROI_METADATA_BYTES, StreamGeometry
from repro.streaming.mtp import MTP_STAGES, MTPBreakdown


class TestGeometry:
    def test_defaults_model_720p(self):
        geo = StreamGeometry()
        assert geo.modeled_lr_pixels == 1280 * 720
        assert geo.modeled_hr_pixels == 2560 * 1440

    def test_pixel_and_byte_scale(self):
        geo = StreamGeometry(eval_lr_height=128, eval_lr_width=224)
        assert geo.pixel_scale == pytest.approx(921600 / (128 * 224))
        # Bytes extrapolate sublinearly (rate-resolution exponent 0.75).
        assert geo.byte_scale == pytest.approx(geo.pixel_scale**0.75)
        assert geo.byte_scale < geo.pixel_scale

    def test_modeled_roi_pixels(self):
        geo = StreamGeometry(eval_lr_height=128, eval_lr_width=224)
        roi = RoIBox(0, 0, 54, 54)
        modeled = geo.modeled_roi_pixels(roi)
        # 54/128 of frame height -> about (300/720)^2 of the modeled frame.
        assert modeled == pytest.approx(54 * 54 * geo.pixel_scale, abs=1)
        assert geo.modeled_roi_pixels(None) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamGeometry(eval_lr_height=1)
        with pytest.raises(ValueError):
            StreamGeometry(scale=0)
        with pytest.raises(ValueError):
            StreamGeometry(lr_source="magic")

    def test_roi_metadata_size(self):
        assert ROI_METADATA_BYTES == 16  # 4 x u32 coordinates


class TestMTP:
    def test_total(self):
        mtp = MTPBreakdown({"input": 5.0, "decode": 3.0, "upscale": 16.0})
        assert mtp.total_ms == 24.0
        assert mtp.stage("render") == 0.0

    def test_conformance(self):
        assert MTPBreakdown({"input": 100.0}).conformant(150.0)
        assert not MTPBreakdown({"input": 200.0}).conformant(150.0)

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown MTP"):
            MTPBreakdown({"teleport": 1.0})

    def test_mean(self):
        a = MTPBreakdown({"decode": 2.0})
        b = MTPBreakdown({"decode": 4.0, "upscale": 10.0})
        mean = MTPBreakdown.mean([a, b])
        assert mean.stage("decode") == 3.0
        assert mean.stage("upscale") == 5.0
        with pytest.raises(ValueError):
            MTPBreakdown.mean([])

    def test_stage_ordering_matches_pipeline(self):
        assert MTP_STAGES[0] == "input"
        assert MTP_STAGES[-1] == "display"
        assert MTP_STAGES.index("decode") > MTP_STAGES.index("network")
