"""Native vs anti-aliased (downsample) LR sources."""

from __future__ import annotations

import numpy as np
import pytest

from repro.render.games import build_game
from repro.streaming.frames import StreamGeometry
from repro.streaming.server import GameStreamServer


@pytest.fixture(scope="module")
def game():
    return build_game("G6")


class TestLRSources:
    def test_native_renders_at_lr(self, game):
        geo = StreamGeometry(eval_lr_height=48, eval_lr_width=80, lr_source="native")
        server = GameStreamServer(game, geo, roi_side=None, gop_size=2)
        lr = server.render_lr(0)
        native = game.render_frame(0, 80, 48)
        np.testing.assert_array_equal(lr.color, native.color)

    def test_downsample_differs_from_native(self, game):
        native_geo = StreamGeometry(eval_lr_height=48, eval_lr_width=80, lr_source="native")
        aa_geo = StreamGeometry(eval_lr_height=48, eval_lr_width=80, lr_source="downsample")
        native = GameStreamServer(game, native_geo, roi_side=None, gop_size=2).render_lr(0)
        aa = GameStreamServer(game, aa_geo, roi_side=None, gop_size=2).render_lr(0)
        assert not np.allclose(native.color, aa.color)

    def test_downsample_is_smoother(self, game):
        """Anti-aliased LR has less high-frequency energy than native LR."""
        def hf_energy(img):
            luma = img @ np.array([0.299, 0.587, 0.114])
            return float(np.abs(np.diff(luma, axis=1)).mean())

        native_geo = StreamGeometry(eval_lr_height=48, eval_lr_width=80, lr_source="native")
        aa_geo = StreamGeometry(eval_lr_height=48, eval_lr_width=80, lr_source="downsample")
        native = GameStreamServer(game, native_geo, roi_side=None, gop_size=2).render_lr(1)
        aa = GameStreamServer(game, aa_geo, roi_side=None, gop_size=2).render_lr(1)
        assert hf_energy(aa.color) < hf_energy(native.color)

    def test_downsample_depth_in_range(self, game):
        geo = StreamGeometry(eval_lr_height=48, eval_lr_width=80, lr_source="downsample")
        lr = GameStreamServer(game, geo, roi_side=None, gop_size=2).render_lr(0)
        assert lr.depth.min() >= 0.0 and lr.depth.max() <= 1.0

    def test_hr_reference_cached_per_index(self, game):
        geo = StreamGeometry(eval_lr_height=48, eval_lr_width=80, lr_source="downsample")
        server = GameStreamServer(game, geo, roi_side=None, gop_size=2)
        server.next_frame()
        a = server.render_hr_reference(0)
        b = server.render_hr_reference(0)
        assert a is b  # same cached array, no re-render
