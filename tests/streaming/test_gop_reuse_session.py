"""GOP-reuse session behavior: identity guarantees, refreshes, transport."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.network.link import NetworkLink
from repro.observability import canonicalize_session_trace
from repro.platform.device import samsung_tab_s8
from repro.render.games import build_game
from repro.streaming.client import (
    BilinearClient,
    GameStreamSRClient,
    SRIntegratedDecoderClient,
)
from repro.streaming.frames import StreamGeometry
from repro.streaming.pipelined import run_session_pipelined
from repro.streaming.server import GameStreamServer
from repro.streaming.session import run_session

GEO = StreamGeometry(eval_lr_height=48, eval_lr_width=80, lr_source="native")
N = 6
GOP = 3


@pytest.fixture(scope="module")
def device():
    return samsung_tab_s8()


def make_server(gop=GOP):
    return GameStreamServer(build_game("G5"), GEO, roi_side=20, gop_size=gop, quality=60)


def make_frames(n=N, gop=GOP):
    server = make_server(gop)
    return [server.next_frame() for _ in range(n)]


def reuse_meta(result_or_record):
    return result_or_record.trace.span("upscale").metadata.get("reuse")


class TestThresholdZeroBitIdentity:
    """threshold 0.0 marks every block dirty, collapsing reuse to the
    exact full per-frame path — the structural equivalence guarantee."""

    def test_gamestreamsr_pixels_identical(self, device, tiny_runner):
        frames = make_frames()
        plain = GameStreamSRClient(device, tiny_runner, modeled_roi_side=300)
        reuse = GameStreamSRClient(
            device, tiny_runner, modeled_roi_side=300,
            gop_reuse=True, reuse_threshold=0.0,
        )
        for frame in frames:
            a = plain.process(frame)
            b = reuse.process(frame)
            assert np.array_equal(a.hr_frame, b.hr_frame)
            assert a.trace.span("upscale").modeled_ms == b.trace.span(
                "upscale"
            ).modeled_ms
            meta = reuse_meta(b)
            assert meta["refresh"] is True
            if frame.encoded.frame_type == "P" and frame.index % GOP != 0:
                assert meta["reason"] == "all_dirty"

    def test_sr_integrated_decoder_identical(self, device, tiny_runner):
        frames = make_frames()
        plain = SRIntegratedDecoderClient(device, tiny_runner)
        reuse = SRIntegratedDecoderClient(
            device, tiny_runner, gop_reuse=True, reuse_threshold=0.0
        )
        for frame in frames:
            a = plain.process(frame)
            b = reuse.process(frame)
            assert np.array_equal(a.hr_frame, b.hr_frame)
            # All-dirty => the residual engine runs in full: identical cost.
            assert a.trace.span("decode").modeled_ms == b.trace.span(
                "decode"
            ).modeled_ms


class TestDefaultOffByteIdentity:
    def test_off_traces_carry_no_reuse_artifacts(self, device, tiny_runner):
        client = GameStreamSRClient(device, tiny_runner, modeled_roi_side=300)
        result = run_session(make_server(), client, n_frames=N)
        for record in result.records:
            assert "reuse" not in record.trace.span("upscale").metadata
            assert all(s.name != "sr.reuse/warp" for s in record.trace.spans)
        assert "sr.reuse/frames" not in result.metrics.to_dict()

    def test_knob_matches_ctor_flag(self, device, tiny_runner):
        """run_session(gop_reuse=True) == constructing the client with it."""
        by_knob = run_session(
            make_server(),
            GameStreamSRClient(device, tiny_runner, modeled_roi_side=300),
            n_frames=N,
            gop_reuse=True,
        )
        by_ctor = run_session(
            make_server(),
            GameStreamSRClient(
                device, tiny_runner, modeled_roi_side=300, gop_reuse=True
            ),
            n_frames=N,
        )
        a = json.dumps(
            canonicalize_session_trace(by_knob.to_trace_dict()), sort_keys=True
        )
        b = json.dumps(
            canonicalize_session_trace(by_ctor.to_trace_dict()), sort_keys=True
        )
        assert a == b

    def test_unsupported_client_raises(self, device):
        with pytest.raises(ValueError, match="gop_reuse"):
            run_session(
                make_server(), BilinearClient(device), n_frames=2, gop_reuse=True
            )


class TestRefreshBoundaries:
    def test_i_frames_always_refresh(self, device, tiny_runner):
        client = GameStreamSRClient(device, tiny_runner, modeled_roi_side=300)
        result = run_session(make_server(), client, n_frames=N, gop_reuse=True)
        n_iframes = sum(1 for r in result.records if r.frame_type == "I")
        assert n_iframes == 2
        metrics = result.metrics.to_dict()
        assert metrics["sr.reuse/refresh_reference_frame"]["value"] == n_iframes
        assert metrics["sr.reuse/frames"]["value"] == N
        for record in result.records:
            meta = reuse_meta(record)
            if record.frame_type == "I":
                assert meta["refresh"] is True
                assert meta["reason"] == "reference_frame"

    def test_warp_frames_emit_warp_span(self, device, tiny_runner):
        client = GameStreamSRClient(device, tiny_runner, modeled_roi_side=300)
        result = run_session(make_server(), client, n_frames=N, gop_reuse=True)
        warped = [
            r for r in result.records if reuse_meta(r)["refresh"] is False
        ]
        assert warped, "GOP 3 on G5 must warp at least one P-frame"
        for record in warped:
            span = record.trace.span("sr.reuse/warp")
            assert span is not None and not span.mtp
            assert span.modeled_ms == reuse_meta(record)["warp_ms"] > 0.0
            ledger = reuse_meta(record)
            assert (
                ledger["tiles_reused"]
                + ledger["tiles_recomputed_sr"]
                + ledger["tiles_recomputed_bilinear"]
                == ledger["tiles_total"]
            )

    def test_index_gap_breaks_chain(self, device, tiny_runner):
        frames = make_frames(n=3, gop=10)  # I P P, one GOP
        client = GameStreamSRClient(
            device, tiny_runner, modeled_roi_side=300, gop_reuse=True
        )
        client.process(frames[0])
        assert reuse_meta(client.process(frames[1]))["refresh"] is False
        # Feed frame 2 relabeled as frame 3 (as if frame 2 were dropped):
        # the cache must refuse to warp across the index gap.
        gap_frame = dataclasses.replace(frames[2], index=frames[2].index + 1)
        meta = reuse_meta(client.process(gap_frame))
        assert meta["refresh"] is True
        assert meta["reason"] == "chain_break"

    def test_reset_clears_cache_and_replays_identically(
        self, device, tiny_runner
    ):
        frames = make_frames()
        client = GameStreamSRClient(
            device, tiny_runner, modeled_roi_side=300, gop_reuse=True
        )
        first = [reuse_meta(client.process(f)) for f in frames]
        client.reset()
        assert client._reuse.hr is None and client._reuse.last_index is None
        second = [reuse_meta(client.process(f)) for f in frames]
        assert first == second

    def test_skip_dropped_cascade_refreshes_on_heal(self, device, tiny_runner):
        """Lossy link + skip_dropped: skipped frames carry no reuse meta,
        and the first processed frame after a gap is a mandatory refresh."""
        client = GameStreamSRClient(device, tiny_runner, modeled_roi_side=300)
        result = run_session(
            make_server(),
            client,
            n_frames=N,
            link=NetworkLink(
                bandwidth_mbps=20.0, propagation_ms=8.0, loss_rate=0.3, seed=13
            ),
            link_deadline_ms=80.0,
            skip_dropped=True,
            gop_reuse=True,
        )
        skipped = [
            r
            for r in result.records
            if r.trace.span("upscale").metadata.get("skipped")
        ]
        assert skipped, "seed must skip at least one frame"
        for record in skipped:
            assert "reuse" not in record.trace.span("upscale").metadata
        healed = False
        gap_open = False
        for record in result.records:
            if record.trace.span("upscale").metadata.get("skipped"):
                gap_open = True
                continue
            meta = reuse_meta(record)
            if gap_open:
                assert meta["refresh"] is True
                healed = True
            gap_open = False
        assert healed, "seed must process a frame after a skip gap"


class TestPipelinedEquivalence:
    def test_pipelined_reuse_byte_identical(self, device, tiny_runner):
        client = GameStreamSRClient(device, tiny_runner, modeled_roi_side=300)
        serial = run_session(make_server(), client, n_frames=N, gop_reuse=True)
        piped = run_session_pipelined(
            make_server(), client, n_frames=N, gop_reuse=True, depth=2
        )
        a = json.dumps(
            canonicalize_session_trace(serial.to_trace_dict()), sort_keys=True
        )
        b = json.dumps(
            canonicalize_session_trace(piped.to_trace_dict()), sort_keys=True
        )
        assert a == b


class TestSRIntegratedDecoderReuse:
    def test_masked_residual_is_cheaper(self, device, tiny_runner):
        frames = make_frames()
        plain = SRIntegratedDecoderClient(device, tiny_runner)
        reuse = SRIntegratedDecoderClient(device, tiny_runner, gop_reuse=True)
        saw_saving = False
        for frame in frames:
            a = plain.process(frame)
            b = reuse.process(frame)
            if frame.encoded.frame_type == "P":
                cost_a = a.trace.span("decode").modeled_ms
                cost_b = b.trace.span("decode").modeled_ms
                assert cost_b <= cost_a + 1e-12
                if cost_b < cost_a:
                    saw_saving = True
                meta = b.trace.span("decode").metadata["reuse"]
                assert 0.0 <= meta["dirty_fraction"] <= 1.0
        assert saw_saving, "some block of some P-frame must be clean"
