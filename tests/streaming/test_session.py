"""Session driver and aggregation."""

from __future__ import annotations

import pytest

from repro.platform.device import samsung_tab_s8
from repro.platform.energy import EnergyBreakdown
from repro.render.games import build_game
from repro.streaming.client import BilinearClient, GameStreamSRClient
from repro.streaming.frames import StreamGeometry
from repro.streaming.server import GameStreamServer
from repro.streaming.session import run_session

GEO = StreamGeometry(eval_lr_height=48, eval_lr_width=80, lr_source="native")


@pytest.fixture(scope="module")
def session(tiny_runner):
    device = samsung_tab_s8()
    server = GameStreamServer(build_game("G9"), GEO, roi_side=20, gop_size=3, quality=60)
    client = GameStreamSRClient(device, tiny_runner, modeled_roi_side=300)
    return run_session(server, client, n_frames=6)


class TestAggregation:
    def test_record_count_and_types(self, session):
        assert len(session.records) == 6
        assert [r.frame_type for r in session.records] == ["I", "P", "P", "I", "P", "P"]

    def test_mean_upscale_by_type(self, session):
        assert session.mean_upscale_ms(True) > 0
        assert session.mean_upscale_ms(False) > 0
        assert session.mean_upscale_ms() > 0

    def test_fps_inverse_of_latency(self, session):
        assert session.upscale_fps() == pytest.approx(1000.0 / session.mean_upscale_ms())

    def test_mtp_contains_all_stages(self, session):
        mtp = session.mean_mtp()
        assert mtp.total_ms > mtp.stage("upscale")
        assert mtp.stage("network") > 0

    def test_energy_breakdown(self, session):
        energy = session.mean_energy()
        assert isinstance(energy, EnergyBreakdown)
        assert energy.total > 0
        assert energy.upscale > energy.decode

    def test_gop_weighting(self, session):
        w1 = session.gop_weighted_upscale_ms(1)
        w60 = session.gop_weighted_upscale_ms(60)
        assert w1 == pytest.approx(session.mean_upscale_ms(True))
        # Ours: ref and non-ref cost the same, so weighting barely moves.
        assert w60 == pytest.approx(session.mean_upscale_ms(False), rel=0.05)
        energy60 = session.gop_weighted_energy(60)
        assert energy60.total > 0
        with pytest.raises(ValueError):
            session.gop_weighted_upscale_ms(0)

    def test_quality_unavailable_raises(self, session):
        with pytest.raises(ValueError, match="quality"):
            session.mean_psnr()
        with pytest.raises(ValueError, match="quality"):
            session.mean_lpips()

    def test_realtime_conformance(self, session):
        assert session.realtime_conformant()

    def test_bitrate(self, session):
        assert session.mean_bitrate_mbps() > 0


class TestQualityPath:
    def test_quality_evaluation(self, tiny_runner):
        geo = StreamGeometry(eval_lr_height=48, eval_lr_width=80, lr_source="downsample")
        server = GameStreamServer(build_game("G9"), geo, roi_side=None, gop_size=3)
        result = run_session(server, BilinearClient(samsung_tab_s8()), n_frames=3, evaluate_quality=True)
        assert len(result.psnr_series()) == 3
        assert result.mean_psnr() > 20

    def test_custom_reference_fn(self, tiny_runner):
        import numpy as np

        geo = StreamGeometry(eval_lr_height=48, eval_lr_width=80, lr_source="native")
        server = GameStreamServer(build_game("G9"), geo, roi_side=None, gop_size=3)
        constant = np.full((96, 160, 3), 0.5)
        result = run_session(
            server,
            BilinearClient(samsung_tab_s8()),
            n_frames=2,
            evaluate_quality=True,
            hr_reference_fn=lambda i: constant,
        )
        assert all(p < 30 for p in result.psnr_series())

    def test_n_frames_validation(self, tiny_runner):
        server = GameStreamServer(build_game("G9"), GEO, roi_side=None, gop_size=3)
        with pytest.raises(ValueError):
            run_session(server, BilinearClient(samsung_tab_s8()), n_frames=0)
