"""The four interprocedural passes over synthetic fixture trees.

Each fixture reproduces the *real* module layout the pass keys off
(``repro.streaming.session`` and friends for knob-parity, ``repro.*``
emission sites for metric-schema) in miniature, then mutates one clean
source per test to introduce exactly the drift the pass exists to
catch — including a deliberately drifted knob signature and the
historical ``sr.dispatch/tiles_total`` collision.
"""

from __future__ import annotations

import pytest

from ._fixtures import make_module

KNOB_RULE = ("knob-parity",)
CONTRACT_RULE = ("contract-consistency",)
FORK_RULE = ("fork-safety",)
METRIC_RULE = ("metric-schema",)


def _mutate(src: str, old: str, new: str) -> str:
    assert old in src, f"fixture drift target {old!r} not found"
    return src.replace(old, new)


# -- knob-parity ---------------------------------------------------------

SESSION_OK = """\
__all__ = ["run_session", "apply_client_knobs"]


def apply_client_knobs(client, *, gop_reuse=False, sr_backend=None, dispatch=None):
    client.configure(gop_reuse, sr_backend, dispatch)


def _validate_abr_knobs(abr, *, adaptive, gop_reuse, sr_backend, dispatch):
    conflicts = [
        name
        for name, on in (
            ("adaptive", adaptive is not None),
            ("gop_reuse", gop_reuse),
            ("sr_backend", sr_backend is not None),
            ("dispatch", dispatch is not None),
        )
        if on
    ]
    if abr is not None and conflicts:
        raise ValueError(str(conflicts))


def run_session(server, client, n_frames, gop_reuse=False, sr_backend=None,
                dispatch=None, scenario=None, abr=None, adaptive=None):
    _validate_abr_knobs(abr, adaptive=adaptive, gop_reuse=gop_reuse,
                        sr_backend=sr_backend, dispatch=dispatch)
    apply_client_knobs(client, gop_reuse=gop_reuse, sr_backend=sr_backend,
                       dispatch=dispatch)
    return n_frames
"""

PIPELINED_OK = """\
from .session import _validate_abr_knobs, apply_client_knobs


def run_session_pipelined(server, client, n_frames, gop_reuse=False,
                          sr_backend=None, dispatch=None, scenario=None,
                          abr=None, adaptive=None, depth=2, workers=1):
    _validate_abr_knobs(abr, adaptive=adaptive, gop_reuse=gop_reuse,
                        sr_backend=sr_backend, dispatch=dispatch)
    apply_client_knobs(client, gop_reuse=gop_reuse, sr_backend=sr_backend,
                       dispatch=dispatch)
    return (n_frames, depth, workers)
"""

CLI_OK = """\
import argparse


def build_parser():
    parser = argparse.ArgumentParser()
    sub = parser.add_subparsers()
    stream = sub.add_parser("stream", help="run one session")
    stream.add_argument("game", nargs="?")
    stream.add_argument("--device")
    stream.add_argument("--frames", type=int)
    stream.add_argument("--profile")
    stream.add_argument("--pipelined", action="store_true")
    stream.add_argument("--depth", type=int)
    stream.add_argument("--workers", type=int)
    stream.add_argument("--gop-reuse", action="store_true")
    stream.add_argument("--sr-backend")
    stream.add_argument("--dispatch", action="store_true")
    stream.add_argument("--dispatch-budget-ms", type=float)
    stream.add_argument("--scenario")
    stream.add_argument("--abr", action="store_true")
    stream.add_argument("--net-budget-ms", type=float)
    stream.add_argument("--trace-json")
    return parser
"""

PARALLEL_OK = """\
def run_session_matrix(tasks, workers=None, pipelined=False):
    return [t for t in tasks]
"""

EXPERIMENTS_OK = """\
def _cached_session(kind, pipelined=False, **kwargs):
    return (kind, pipelined, kwargs)
"""


def _knob_modules(session=SESSION_OK, pipelined=PIPELINED_OK, cli=CLI_OK,
                  parallel=PARALLEL_OK, experiments=EXPERIMENTS_OK):
    return [
        make_module(session, name="repro.streaming.session"),
        make_module(pipelined, name="repro.streaming.pipelined"),
        make_module(cli, name="repro.cli"),
        make_module(parallel, name="repro.analysis.parallel"),
        make_module(experiments, name="repro.analysis.experiments"),
    ]


class TestKnobParity:
    def test_parity_holds_on_clean_fixture(self, lint):
        result = lint(_knob_modules(), KNOB_RULE)
        assert result.ok and not result.new

    def test_drifted_default_in_pipelined(self, lint):
        # The deliberately drifted knob signature: same knob, other default.
        drifted = _mutate(PIPELINED_OK, "gop_reuse=False", "gop_reuse=True")
        result = lint(_knob_modules(pipelined=drifted), KNOB_RULE)
        assert [f for f in result.new if "defaults disagree" in f.message
                and "'gop_reuse'" in f.message]

    def test_knob_missing_from_pipelined(self, lint):
        drifted = _mutate(PIPELINED_OK, "scenario=None,", "")
        result = lint(_knob_modules(pipelined=drifted), KNOB_RULE)
        assert [f for f in result.new
                if "'scenario' is missing from run_session_pipelined" in f.message]

    def test_undocumented_pipelined_extra(self, lint):
        drifted = _mutate(PIPELINED_OK, "depth=2,", "depth=2, slot_budget=4,")
        result = lint(_knob_modules(pipelined=drifted), KNOB_RULE)
        assert [f for f in result.new
                if "'slot_budget'" in f.message and "executor extra" in f.message]

    def test_executor_must_forward_every_helper_knob(self, lint):
        drifted = _mutate(
            SESSION_OK,
            "apply_client_knobs(client, gop_reuse=gop_reuse, sr_backend=sr_backend,\n"
            "                       dispatch=dispatch)",
            "apply_client_knobs(client, gop_reuse=gop_reuse, sr_backend=sr_backend)",
        )
        result = lint(_knob_modules(session=drifted), KNOB_RULE)
        assert [f for f in result.new
                if "without forwarding dispatch" in f.message
                and "run_session calls apply_client_knobs" in f.message]

    def test_validator_exclusion_list_names_every_param(self, lint):
        drifted = _mutate(
            SESSION_OK, '("dispatch", dispatch is not None),\n', ""
        )
        result = lint(_knob_modules(session=drifted), KNOB_RULE)
        assert [f for f in result.new
                if "mutual-exclusion" in f.message and "'dispatch'" in f.message]

    def test_knob_without_cli_flag(self, lint):
        drifted = _mutate(CLI_OK, '    stream.add_argument("--scenario")\n', "")
        result = lint(_knob_modules(cli=drifted), KNOB_RULE)
        assert [f for f in result.new
                if "has no --scenario flag" in f.message]

    def test_cli_flag_without_knob(self, lint):
        drifted = _mutate(
            CLI_OK,
            '    stream.add_argument("--scenario")',
            '    stream.add_argument("--scenario")\n'
            '    stream.add_argument("--mystery")',
        )
        result = lint(_knob_modules(cli=drifted), KNOB_RULE)
        assert [f for f in result.new
                if "--mystery maps to no" in f.message]

    def test_matrix_executor_knob_default_drift(self, lint):
        drifted = _mutate(EXPERIMENTS_OK, "pipelined=False", "pipelined=True")
        result = lint(_knob_modules(experiments=drifted), KNOB_RULE)
        assert [f for f in result.new
                if "'pipelined' defaults disagree between" in f.message]

    def test_degrades_to_noop_on_partial_tree(self, lint):
        # Single-module invocations must not fabricate parity findings.
        result = lint(
            [make_module(SESSION_OK, name="repro.streaming.session")], KNOB_RULE
        )
        assert result.ok and not result.new


# -- contract-consistency ------------------------------------------------

CONTRACT_OK = """\
import numpy as np

from repro.contracts import shaped


@shaped(frame="H W 3:f32", mask="?H W:b")
def consume(frame, mask=None):
    return frame


def caller_ok():
    return consume(np.zeros((4, 4, 3), dtype=np.float32))
"""


def _contract_module(src=CONTRACT_OK):
    return make_module(src, name="repro.fixt.shapes")


class TestContractConsistency:
    def test_clean_fixture(self, lint):
        result = lint(_contract_module(), CONTRACT_RULE)
        assert result.ok and not result.new

    def test_unparseable_spec(self, lint):
        src = _mutate(CONTRACT_OK, '"H W 3:f32"', '"H W 3:zz"')
        result = lint(_contract_module(src), CONTRACT_RULE)
        assert [f for f in result.new if "does not parse" in f.message]

    def test_spec_for_unknown_parameter(self, lint):
        src = _mutate(CONTRACT_OK, 'mask="?H W:b"', 'missing="?H W:b"')
        result = lint(_contract_module(src), CONTRACT_RULE)
        assert [f for f in result.new
                if "'missing'" in f.message and "no such parameter" in f.message]

    def test_dtype_code_as_dim_token(self, lint):
        # "H W f32" parses (f32 becomes a dim variable) but almost
        # certainly lost its ':'; the grammar check names that.
        src = _mutate(CONTRACT_OK, '"H W 3:f32"', '"H W f32"')
        result = lint(_contract_module(src), CONTRACT_RULE)
        assert [f for f in result.new if "missing the ':'" in f.message]

    def test_lowercase_dim_variable(self, lint):
        src = _mutate(CONTRACT_OK, '"H W 3:f32"', '"h W 3:f32"')
        result = lint(_contract_module(src), CONTRACT_RULE)
        assert [f for f in result.new
                if "lowercase dim variable 'h'" in f.message]

    def test_non_literal_spec(self, lint):
        src = _mutate(CONTRACT_OK, '"?H W:b"', "SPEC_VAR")
        src = "SPEC_VAR = object()\n" + src
        result = lint(_contract_module(src), CONTRACT_RULE)
        assert [f for f in result.new if "not a string literal" in f.message]

    def test_call_site_rank_mismatch(self, lint):
        src = _mutate(
            CONTRACT_OK,
            "np.zeros((4, 4, 3), dtype=np.float32)",
            "np.zeros((4, 4), dtype=np.float32)",
        )
        result = lint(_contract_module(src), CONTRACT_RULE)
        assert [f for f in result.new if "can never satisfy" in f.message]

    def test_call_site_dtype_mismatch(self, lint):
        src = _mutate(
            CONTRACT_OK,
            "np.zeros((4, 4, 3), dtype=np.float32)",
            "np.zeros((4, 4, 3))",  # defaults to float64, spec wants f32
        )
        result = lint(_contract_module(src), CONTRACT_RULE)
        assert [f for f in result.new if "can never satisfy" in f.message]

    def test_call_site_literal_dim_mismatch(self, lint):
        src = _mutate(
            CONTRACT_OK,
            "np.zeros((4, 4, 3), dtype=np.float32)",
            "np.zeros((4, 4, 5), dtype=np.float32)",
        )
        result = lint(_contract_module(src), CONTRACT_RULE)
        assert [f for f in result.new if "can never satisfy" in f.message]

    def test_cross_module_call_site(self, lint):
        caller = make_module(
            "import numpy as np\n\n"
            "from .shapes import consume\n\n\n"
            "def bad():\n"
            "    return consume(np.ones((2, 2), dtype=np.float32))\n",
            name="repro.fixt.user",
        )
        result = lint([_contract_module(), caller], CONTRACT_RULE)
        findings = [f for f in result.new if "can never satisfy" in f.message]
        assert findings and findings[0].path == "repro/fixt/user.py"


# -- fork-safety ---------------------------------------------------------

FS_SPAWN = """\
import multiprocessing as mp

from .work import entry


def launch():
    mp.Process(target=entry, args=(1,)).start()
"""

FS_WORK = """\
from .state import lookup


def entry(i):
    return lookup(i)
"""

FS_STATE = """\
import numpy as np

CACHE = {}


def memoize(i, value):
    CACHE[i] = value


def lookup(i):
    rng = np.random.default_rng()
    return CACHE.get(i, rng.standard_normal())
"""


def _fork_modules(spawn=FS_SPAWN, work=FS_WORK, state=FS_STATE):
    return [
        make_module(spawn, name="repro.fixt.spawn"),
        make_module(work, name="repro.fixt.work"),
        make_module(state, name="repro.fixt.state"),
    ]


class TestForkSafety:
    def test_cross_module_unseeded_rng(self, lint):
        result = lint(_fork_modules(), FORK_RULE)
        assert [f for f in result.new
                if "process-divergent randomness" in f.message
                and "reachable from worker entry point 'entry'" in f.message]

    def test_mutated_container_read(self, lint):
        result = lint(_fork_modules(), FORK_RULE)
        assert [f for f in result.new
                if "mutable container 'CACHE'" in f.message]

    def test_seeded_rng_and_unmutated_state_clean(self, lint):
        state = _mutate(FS_STATE, "np.random.default_rng()",
                        "np.random.default_rng(1234)")
        state = _mutate(state, "    CACHE[i] = value\n", "    return (i, value)\n")
        result = lint(_fork_modules(state=state), FORK_RULE)
        assert result.ok and not result.new

    def test_shared_memory_handle_capture(self, lint):
        state = (
            "from multiprocessing.shared_memory import SharedMemory\n\n"
            "SEG = SharedMemory(name='ring', create=True, size=16)\n\n\n"
            "def lookup(i):\n"
            "    return SEG.buf[i]\n"
        )
        result = lint(_fork_modules(state=state), FORK_RULE)
        assert [f for f in result.new
                if "shared-memory handle 'SEG'" in f.message]

    def test_global_rebinding_in_worker(self, lint):
        work = (
            "COUNT = 0\n\n\n"
            "def entry(i):\n"
            "    global COUNT\n"
            "    COUNT = i\n"
        )
        result = lint(_fork_modules(work=work, state="X = 1\n"), FORK_RULE)
        assert [f for f in result.new
                if "rebinds module global(s) COUNT" in f.message]

    def test_initializer_may_populate_globals(self, lint):
        spawn = (
            "from concurrent.futures import ProcessPoolExecutor\n\n"
            "from .work import entry\n\n\n"
            "def launch():\n"
            "    with ProcessPoolExecutor(initializer=entry) as ex:\n"
            "        pass\n"
        )
        work = (
            "STATE = None\n\n\n"
            "def entry():\n"
            "    global STATE\n"
            "    STATE = object()\n"
        )
        result = lint(_fork_modules(spawn=spawn, work=work, state="X = 1\n"),
                      FORK_RULE)
        assert result.ok and not result.new

    def test_local_shadowing_not_flagged(self, lint):
        state = _mutate(
            FS_STATE,
            "def lookup(i):\n"
            "    rng = np.random.default_rng()\n"
            "    return CACHE.get(i, rng.standard_normal())\n",
            "def lookup(i):\n"
            "    CACHE = {}\n"
            "    return CACHE.get(i)\n",
        )
        result = lint(_fork_modules(state=state), FORK_RULE)
        assert result.ok and not result.new

    def test_same_module_syntactic_entry_left_to_per_file_rule(self, lint):
        # When target def and spawn share a module, the nondeterminism
        # pass already sees it; fork-safety must not double-report.
        spawn = (
            "import multiprocessing as mp\n"
            "import numpy as np\n\n\n"
            "def entry(i):\n"
            "    return np.random.default_rng().standard_normal()\n\n\n"
            "def launch():\n"
            "    mp.Process(target=entry).start()\n"
        )
        result = lint([make_module(spawn, name="repro.fixt.spawn")], FORK_RULE)
        assert result.ok and not result.new

    def test_no_spawns_no_findings(self, lint):
        result = lint([make_module(FS_STATE, name="repro.fixt.state")], FORK_RULE)
        assert result.ok and not result.new

    def test_partial_alias_target_resolved(self, lint):
        spawn = (
            "import multiprocessing as mp\n"
            "from functools import partial\n\n"
            "from .work import entry\n\n\n"
            "def launch(flag):\n"
            "    build = partial(entry, 2) if flag else entry\n"
            "    mp.Process(target=build).start()\n"
        )
        result = lint(_fork_modules(spawn=spawn), FORK_RULE)
        assert [f for f in result.new
                if "reachable from worker entry point 'entry'" in f.message]


# -- metric-schema -------------------------------------------------------

METRIC_OK = """\
def emit(registry, spans):
    registry.counter("frames_total").inc()
    for span in spans:
        registry.histogram(f"stage_ms/{span.name}").observe(span.modeled_ms)
"""


def _metric_module(src=METRIC_OK):
    return make_module(src, name="repro.fixt.obs")


class TestMetricSchema:
    def test_clean_fixture(self, lint):
        result = lint(_metric_module(), METRIC_RULE)
        assert result.ok and not result.new

    def test_unregistered_concrete_name(self, lint):
        src = _mutate(METRIC_OK, '"frames_total"', '"bogus/name"')
        result = lint(_metric_module(src), METRIC_RULE)
        assert [f for f in result.new
                if "'bogus/name' is not a registered family" in f.message]

    def test_kind_mismatch(self, lint):
        src = _mutate(METRIC_OK, 'counter("frames_total").inc()',
                      'histogram("frames_total").observe(1.0)')
        result = lint(_metric_module(src), METRIC_RULE)
        assert [f for f in result.new
                if "registered as a counter but used here as a histogram"
                in f.message]

    def test_unregistered_dynamic_family(self, lint):
        src = _mutate(METRIC_OK, 'f"stage_ms/{span.name}"',
                      'f"bogus_family/{span.name}"')
        result = lint(_metric_module(src), METRIC_RULE)
        assert [f for f in result.new
                if "'bogus_family/*' is not registered" in f.message]

    def test_non_literal_name(self, lint):
        src = METRIC_OK + "\n\ndef probe(registry, name):\n" \
            "    registry.counter(name).inc()\n"
        result = lint(_metric_module(src), METRIC_RULE)
        assert [f for f in result.new if "not statically known" in f.message]

    def test_interpolation_only_prefix_rejected(self, lint):
        src = _mutate(METRIC_OK, 'f"stage_ms/{span.name}"', 'f"stage_ms/"')
        result = lint(_metric_module(src), METRIC_RULE)
        assert [f for f in result.new
                if "cannot reduce to a family pattern" in f.message]

    def test_tiles_total_collision_regression(self, lint):
        # The historical bug: a static aggregate and a per-backend
        # f-string sharing one prefix — a backend named "total" would
        # silently merge counts. Both sides must be reported.
        src = (
            "def emit(registry, backends):\n"
            '    registry.counter("sr.dispatch/tiles_total").inc()\n'
            "    for name, count in backends.items():\n"
            '        registry.counter(f"sr.dispatch/tiles_{name}").inc(count)\n'
        )
        result = lint(_metric_module(src), METRIC_RULE)
        assert [f for f in result.new
                if "'sr.dispatch/tiles_*' is not registered" in f.message]
        assert [f for f in result.new
                if "'sr.dispatch/tiles_total' can also be generated by the "
                "dynamic family 'sr.dispatch/tiles_*'" in f.message]

    def test_renamed_backend_family_is_clean(self, lint):
        # The shipped fix: per-backend counts live in their own
        # namespace, so the aggregate is out of the wildcard's reach.
        src = (
            "def emit(registry, backends):\n"
            '    registry.counter("sr.dispatch/tiles_total").inc()\n'
            "    for name, count in backends.items():\n"
            '        registry.counter(f"sr.dispatch/backend_tiles/{name}")'
            ".inc(count)\n"
        )
        result = lint(_metric_module(src), METRIC_RULE)
        assert result.ok and not result.new

    def test_scripts_outside_repro_ignored(self, lint):
        src = _mutate(METRIC_OK, '"frames_total"', '"anything/goes"')
        result = lint([make_module(src, name=None, rel="scripts/probe.py")],
                      METRIC_RULE)
        assert result.ok and not result.new
