"""Framework mechanics: suppressions, baseline, reporters, CLI, self-lint."""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

import pytest

from repro.lint.cli import main
from repro.lint.framework import (
    ModuleInfo,
    registered_passes,
    render_json,
    render_text,
    run_lint,
)

from ._fixtures import make_module

HOT_SNIPPET = "import numpy as np\nx = np.zeros(4)\n"
RULE = ("dtype-discipline",)


class TestSuppression:
    def test_disable_all_wildcard(self, lint):
        src = "import numpy as np\nx = np.zeros(4)  # reprolint: disable=all\n"
        result = lint(make_module(src, name="repro.codec.fixture"), RULE)
        assert result.ok and len(result.suppressed) == 1

    def test_disable_file(self, lint):
        src = (
            "# reprolint: disable-file=dtype-discipline -- fixture\n"
            "import numpy as np\n"
            "x = np.zeros(4)\n"
            "y = np.ones(2)\n"
        )
        result = lint(make_module(src, name="repro.codec.fixture"), RULE)
        assert result.ok and len(result.suppressed) == 2

    def test_wrong_rule_does_not_suppress(self, lint):
        src = (
            "import numpy as np\n"
            "x = np.zeros(4)  # reprolint: disable=epsilon-comparison\n"
        )
        result = lint(make_module(src, name="repro.codec.fixture"), RULE)
        assert not result.ok

    def test_other_line_does_not_suppress(self, lint):
        src = (
            "import numpy as np  # reprolint: disable=dtype-discipline\n"
            "x = np.zeros(4)\n"
        )
        result = lint(make_module(src, name="repro.codec.fixture"), RULE)
        assert not result.ok

    def test_def_line_comment_covers_decorator_findings(self, lint):
        # contract-consistency anchors bad-spec findings on the decorator
        # line; the conventional place for the suppression is the def.
        src = (
            'from repro.contracts import shaped\n\n\n'
            '@shaped(missing="H W")\n'
            "def f(frame):  # reprolint: disable=contract-consistency -- fixture\n"
            "    return frame\n"
        )
        result = lint(
            make_module(src, name="repro.fixt.decorated"),
            ("contract-consistency",),
        )
        assert result.ok and len(result.suppressed) == 1

    def test_decorator_line_comment_still_works(self, lint):
        src = (
            'from repro.contracts import shaped\n\n\n'
            '@shaped(missing="H W")  # reprolint: disable=contract-consistency -- fixture\n'
            "def f(frame):\n"
            "    return frame\n"
        )
        result = lint(
            make_module(src, name="repro.fixt.decorated"),
            ("contract-consistency",),
        )
        assert result.ok and len(result.suppressed) == 1

    def test_neighbouring_def_comment_does_not_leak(self, lint):
        src = (
            'from repro.contracts import shaped\n\n\n'
            "def g():  # reprolint: disable=contract-consistency -- elsewhere\n"
            "    return 0\n\n\n"
            '@shaped(missing="H W")\n'
            "def f(frame):\n"
            "    return frame\n"
        )
        result = lint(
            make_module(src, name="repro.fixt.decorated"),
            ("contract-consistency",),
        )
        assert not result.ok


class TestBaseline:
    def test_matching_entry_filters_finding(self, lint):
        mod = make_module(HOT_SNIPPET, name="repro.codec.fixture")
        baseline = Counter(
            {("dtype-discipline", "repro/codec/fixture.py", "x = np.zeros(4)"): 1}
        )
        result = lint(mod, RULE, baseline=baseline)
        assert result.ok and len(result.baselined) == 1

    def test_baseline_is_text_keyed_not_line_keyed(self, lint):
        # Shift the finding down two lines: the (rule, path, text) key
        # still matches, so line drift never invalidates the baseline.
        src = "import numpy as np\n\n\nx = np.zeros(4)\n"
        baseline = Counter(
            {("dtype-discipline", "repro/codec/fixture.py", "x = np.zeros(4)"): 1}
        )
        result = lint(
            make_module(src, name="repro.codec.fixture"), RULE, baseline=baseline
        )
        assert result.ok and len(result.baselined) == 1

    def test_stale_entry_reported_not_failing(self, lint):
        mod = make_module("import numpy as np\n", name="repro.codec.fixture")
        baseline = Counter(
            {("dtype-discipline", "repro/codec/fixture.py", "gone = np.zeros(4)"): 1}
        )
        result = lint(mod, RULE, baseline=baseline)
        assert result.ok
        assert result.stale_baseline == [
            ("dtype-discipline", "repro/codec/fixture.py", "gone = np.zeros(4)")
        ]

    def test_multiset_semantics(self, lint):
        # Two identical lines, one baseline entry: one baselined, one new.
        src = "import numpy as np\nx = np.zeros(4)\nx = np.zeros(4)\n"
        baseline = Counter(
            {("dtype-discipline", "repro/codec/fixture.py", "x = np.zeros(4)"): 1}
        )
        result = lint(
            make_module(src, name="repro.codec.fixture"), RULE, baseline=baseline
        )
        assert len(result.baselined) == 1 and len(result.new) == 1


class TestModuleInfo:
    def test_name_derivation_under_src(self, tmp_path):
        path = tmp_path / "src" / "repro" / "codec" / "motion.py"
        path.parent.mkdir(parents=True)
        path.write_text("x = 1\n")
        assert ModuleInfo.from_path(path).name == "repro.codec.motion"

    def test_package_init_name(self, tmp_path):
        path = tmp_path / "src" / "repro" / "codec" / "__init__.py"
        path.parent.mkdir(parents=True)
        path.write_text("")
        assert ModuleInfo.from_path(path).name == "repro.codec"

    def test_scripts_have_no_name(self, tmp_path):
        path = tmp_path / "scripts" / "tool.py"
        path.parent.mkdir(parents=True)
        path.write_text("x = 1\n")
        assert ModuleInfo.from_path(path).name is None

    def test_syntax_error_becomes_finding(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(:\n")
        result = run_lint([str(bad)])
        assert [f.rule for f in result.new] == ["syntax-error"]

    def test_pycache_skipped_even_as_direct_path(self, tmp_path):
        # Directory walks already skip __pycache__; a stale .py handed to
        # the CLI as an explicit path must be skipped too.
        stale = tmp_path / "src" / "repro" / "__pycache__" / "fixture.py"
        stale.parent.mkdir(parents=True)
        stale.write_text(HOT_SNIPPET)
        result = run_lint([str(stale)])
        assert result.ok and not result.new


class TestReporters:
    def _result(self, lint):
        return lint(make_module(HOT_SNIPPET, name="repro.codec.fixture"), RULE)

    def test_text_reporter(self, lint):
        text = render_text(self._result(lint))
        assert "repro/codec/fixture.py:2:" in text
        assert "[dtype-discipline]" in text
        assert text.endswith("across 1 file(s)")
        assert text.splitlines()[-1].startswith("FAIL")

    def test_json_reporter_round_trips(self, lint):
        payload = json.loads(render_json(self._result(lint)))
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "dtype-discipline"
        assert payload["findings"][0]["line"] == 2


class TestCli:
    def _write_bad(self, tmp_path: Path) -> Path:
        bad = tmp_path / "src" / "repro" / "codec" / "fixture.py"
        bad.parent.mkdir(parents=True)
        bad.write_text('__all__ = ["x"]\n' + HOT_SNIPPET)
        return bad

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        good = tmp_path / "src" / "repro" / "codec" / "fixture.py"
        good.parent.mkdir(parents=True)
        good.write_text(
            '__all__ = ["x"]\nimport numpy as np\n'
            "x = np.zeros(4, dtype=np.float64)\n"
        )
        assert main([str(tmp_path), "--no-baseline"]) == 0
        assert capsys.readouterr().out.startswith("ok:")

    def test_exit_one_on_findings(self, tmp_path, capsys):
        self._write_bad(tmp_path)
        assert main([str(tmp_path), "--no-baseline"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        assert main([str(tmp_path), "--rules", "no-such-rule"]) == 2

    def test_write_then_read_baseline(self, tmp_path, capsys, monkeypatch):
        self._write_bad(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main([str(tmp_path), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_editing_grandfathered_line_resurfaces_finding(self, tmp_path, capsys):
        # Baselines key on (rule, path, line text): touching the line
        # invalidates the grandfather and the finding comes back.
        bad = self._write_bad(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main([str(tmp_path), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        bad.write_text(bad.read_text().replace("np.zeros(4)", "np.zeros(8)"))
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 1
        capsys.readouterr()

    def test_fail_stale_baseline_flag(self, tmp_path, capsys):
        # Fixing the grandfathered line leaves a dangling baseline entry:
        # tolerated by default, exit 1 under --fail-stale-baseline.
        bad = self._write_bad(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main([str(tmp_path), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        bad.write_text(
            '__all__ = ["x"]\nimport numpy as np\n'
            "x = np.zeros(4, dtype=np.float64)\n"
        )
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 0
        assert main([str(tmp_path), "--baseline", str(baseline),
                     "--fail-stale-baseline"]) == 1
        assert "stale baseline" in capsys.readouterr().err

    def test_rules_subset_isolates_other_rules(self, tmp_path, capsys):
        self._write_bad(tmp_path)
        assert main([str(tmp_path), "--no-baseline",
                     "--rules", "epsilon-comparison"]) == 0
        assert main([str(tmp_path), "--no-baseline",
                     "--rules", "dtype-discipline"]) == 1
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "dtype-discipline",
            "epsilon-comparison",
            "nondeterminism",
            "import-hygiene",
            "public-api",
            "knob-parity",
            "contract-consistency",
            "fork-safety",
            "metric-schema",
        ):
            assert rule in out

    def test_json_format(self, tmp_path, capsys):
        self._write_bad(tmp_path)
        assert main([str(tmp_path), "--no-baseline", "--format", "json"]) == 1
        assert json.loads(capsys.readouterr().out)["ok"] is False


class TestShippedTree:
    """The acceptance criterion: the shipped tree lints clean."""

    REPO = Path(__file__).resolve().parents[2]

    def test_all_five_rules_registered(self):
        assert set(registered_passes()) >= {
            "dtype-discipline",
            "epsilon-comparison",
            "nondeterminism",
            "import-hygiene",
            "public-api",
        }

    def test_whole_program_passes_registered(self):
        assert set(registered_passes()) >= {
            "knob-parity",
            "contract-consistency",
            "fork-safety",
            "metric-schema",
        }

    def test_src_and_tests_lint_clean_without_baseline(self):
        result = run_lint([str(self.REPO / "src"), str(self.REPO / "tests")])
        assert result.ok, render_text(result)

    def test_full_tree_lint_clean_with_baseline(self, monkeypatch):
        from repro.lint.framework import load_baseline

        # Baseline entries key on repo-relative paths, so lint from the
        # repo root exactly as scripts/check.sh does.
        monkeypatch.chdir(self.REPO)
        result = run_lint(
            ["src", "tests", "scripts", "benchmarks"],
            baseline=load_baseline(Path("reprolint-baseline.json")),
        )
        assert result.ok, render_text(result)
        assert not result.stale_baseline
