"""Shared fixtures for the reprolint tests."""

from __future__ import annotations

import pytest

from repro.lint.framework import run_lint


@pytest.fixture
def lint():
    """Run selected rules over fixture modules, returning the LintResult."""

    def _lint(modules, rules, baseline=None):
        if not isinstance(modules, (list, tuple)):
            modules = [modules]
        return run_lint(
            [], rule_names=list(rules), baseline=baseline, modules=list(modules)
        )

    return _lint
