"""Symbol table + call graph in isolation, over a synthetic package.

The fixture package ``repro.fixt`` exercises every resolution path the
whole-program passes depend on: plain defs, ``import x as y`` module
aliases, ``from . import`` with renames, a re-export chain through the
package ``__init__``, class methods with ``self.`` calls, and worker
targets handed to spawners (directly, via ``partial``, and via a local
alias variable).
"""

from __future__ import annotations

import ast

import pytest

from repro.lint.framework import Project
from repro.lint.graph import CallGraph, SymbolTable, callable_refs, dotted_parts

from ._fixtures import make_module

INIT_SRC = """\
from .alpha import helper
"""

ALPHA_SRC = """\
from .beta import leaf as renamed_leaf

def helper(x):
    return renamed_leaf(x)

def top():
    return helper(1)

class Runner:
    def __init__(self):
        self.count = 0

    def go(self):
        return self.step()

    def step(self):
        return helper(2)
"""

BETA_SRC = """\
import repro.fixt.alpha as alpha_mod

def leaf(x):
    return x + 1

def crosswise():
    return alpha_mod.Runner()
"""

SPAWN_SRC = """\
import multiprocessing as mp
from concurrent.futures import ProcessPoolExecutor
from functools import partial

from repro.fixt import helper
from .alpha import top

def entry(i):
    return top() + helper(i)

def launch(flag):
    mp.Process(target=entry, args=(1,)).start()
    build = partial(entry, 2) if flag else entry
    with ProcessPoolExecutor(max_workers=1) as ex:
        ex.submit(build)
"""


@pytest.fixture(scope="module")
def project():
    return Project(
        [
            make_module(INIT_SRC, name="repro.fixt", rel="repro/fixt/__init__.py"),
            make_module(ALPHA_SRC, name="repro.fixt.alpha"),
            make_module(BETA_SRC, name="repro.fixt.beta"),
            make_module(SPAWN_SRC, name="repro.fixt.spawn"),
        ]
    )


@pytest.fixture(scope="module")
def table(project):
    return SymbolTable(project)


@pytest.fixture(scope="module")
def graph(project, table):
    return CallGraph(project, table)


class TestHelpers:
    def test_dotted_parts(self):
        expr = ast.parse("a.b.c", mode="eval").body
        assert dotted_parts(expr) == ("a", "b", "c")

    def test_dotted_parts_rejects_calls(self):
        expr = ast.parse("a().b", mode="eval").body
        assert dotted_parts(expr) is None

    def test_callable_refs_unwraps_partial(self):
        expr = ast.parse("partial(worker, 1)", mode="eval").body
        assert callable_refs(expr) == [("worker",)]

    def test_callable_refs_follows_both_ifexp_arms(self):
        expr = ast.parse("partial(a.f, 1) if flag else g", mode="eval").body
        assert callable_refs(expr) == [("a", "f"), ("g",)]


class TestSymbolTable:
    def test_indexes_functions_classes_methods(self, table):
        assert table.defs["repro.fixt.alpha.helper"].kind == "function"
        assert table.defs["repro.fixt.alpha.Runner"].kind == "class"
        assert table.defs["repro.fixt.alpha.Runner.step"].kind == "method"

    def test_symbol_name_is_last_segment(self, table):
        assert table.defs["repro.fixt.alpha.Runner.step"].name == "step"

    def test_resolve_local_definition(self, table):
        sym = table.resolve("repro.fixt.alpha", ("helper",))
        assert sym is not None and sym.qualname == "repro.fixt.alpha.helper"

    def test_resolve_from_import_rename(self, table):
        sym = table.resolve("repro.fixt.alpha", ("renamed_leaf",))
        assert sym is not None and sym.qualname == "repro.fixt.beta.leaf"

    def test_resolve_module_alias_attribute(self, table):
        sym = table.resolve("repro.fixt.beta", ("alpha_mod", "Runner"))
        assert sym is not None and sym.qualname == "repro.fixt.alpha.Runner"

    def test_resolve_reexport_through_package_init(self, table):
        # spawn does ``from repro.fixt import helper``; the package
        # __init__ re-exports it from .alpha.
        sym = table.resolve("repro.fixt.spawn", ("helper",))
        assert sym is not None and sym.qualname == "repro.fixt.alpha.helper"

    def test_qualified_chases_reexport(self, table):
        sym = table.qualified("repro.fixt.helper")
        assert sym is not None and sym.qualname == "repro.fixt.alpha.helper"

    def test_unknown_name_resolves_to_none(self, table):
        assert table.resolve("repro.fixt.alpha", ("nonexistent",)) is None
        assert table.qualified("repro.fixt.alpha.nonexistent") is None

    def test_external_names_resolve_to_none(self, table):
        # ``mp`` binds to the external multiprocessing module: no symbol.
        assert table.resolve("repro.fixt.spawn", ("mp", "Process")) is None


class TestCallGraph:
    def test_direct_call_edge(self, graph):
        assert "repro.fixt.alpha.helper" in graph.edges["repro.fixt.alpha.top"]

    def test_cross_module_edge_through_rename(self, graph):
        assert "repro.fixt.beta.leaf" in graph.edges["repro.fixt.alpha.helper"]

    def test_self_method_edge(self, graph):
        assert "repro.fixt.alpha.Runner.step" in graph.edges["repro.fixt.alpha.Runner.go"]

    def test_constructor_resolves_to_init(self, graph):
        assert (
            "repro.fixt.alpha.Runner.__init__"
            in graph.edges["repro.fixt.beta.crosswise"]
        )

    def test_reexported_call_edge(self, graph):
        # entry() calls the package-level ``helper`` re-export.
        assert "repro.fixt.alpha.helper" in graph.edges["repro.fixt.spawn.entry"]

    def test_callers_of(self, graph):
        callers = graph.callers_of("repro.fixt.alpha.helper")
        assert "repro.fixt.alpha.top" in callers
        assert "repro.fixt.spawn.entry" in callers

    def test_reachable_closure_with_provenance(self, graph):
        origin = graph.reachable(["repro.fixt.spawn.entry"])
        # entry -> top -> helper -> leaf, every hop attributed to the root.
        for reached in (
            "repro.fixt.spawn.entry",
            "repro.fixt.alpha.top",
            "repro.fixt.alpha.helper",
            "repro.fixt.beta.leaf",
        ):
            assert origin[reached] == "repro.fixt.spawn.entry"
        assert "repro.fixt.spawn.launch" not in origin

    def test_project_properties_are_shared(self, project):
        assert project.symbols is project.symbols
        assert project.call_graph is project.call_graph
        assert project.call_graph.table is project.symbols
