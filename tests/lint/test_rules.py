"""Per-rule fixture snippets: positive, suppressed, and exempt cases.

Every snippet is linted in memory under a synthetic module name (see
``conftest.make_module``), so hot-path scoping is exercised without
touching the real tree. The violating code lives in string literals —
the self-lint of this test file sees only ``ast.Constant`` strings.
"""

from __future__ import annotations

from ._fixtures import make_module


def rules(result):
    return [f.rule for f in result.new]


class TestDtypeDiscipline:
    RULE = ("dtype-discipline",)

    def test_implicit_alloc_flagged_in_hot_package(self, lint):
        mod = make_module(
            "import numpy as np\nx = np.zeros(4)\n", name="repro.codec.fixture"
        )
        result = lint(mod, self.RULE)
        assert rules(result) == ["dtype-discipline"]
        assert result.new[0].line == 2

    def test_explicit_dtype_clean(self, lint):
        mod = make_module(
            "import numpy as np\nx = np.zeros(4, dtype=np.float64)\n",
            name="repro.codec.fixture",
        )
        assert lint(mod, self.RULE).ok

    def test_outside_hot_packages_ignored(self, lint):
        mod = make_module(
            "import numpy as np\nx = np.zeros(4)\n", name="repro.render.fixture"
        )
        assert lint(mod, self.RULE).ok

    def test_bare_float_dtype_flagged_bool_exempt(self, lint):
        src = (
            "import numpy as np\n"
            "a = np.empty(3, dtype=float)\n"
            "b = np.empty(3, dtype=bool)\n"
        )
        result = lint(make_module(src, name="repro.core.fixture"), self.RULE)
        assert [f.line for f in result.new] == [2]

    def test_float64_cast_flagged_literal_alloc_exempt(self, lint):
        src = (
            "import numpy as np\n"
            "def f(x):\n"
            "    y = x.astype(np.float64)\n"
            "    table = np.array([[1.0, 2.0]], dtype=np.float64)\n"
            "    return y, table\n"
        )
        result = lint(make_module(src, name="repro.sr.fixture"), self.RULE)
        assert [f.line for f in result.new] == [3]

    def test_line_suppression(self, lint):
        src = (
            "import numpy as np\n"
            "x = np.zeros(4)  # reprolint: disable=dtype-discipline -- fixture\n"
        )
        result = lint(make_module(src, name="repro.codec.fixture"), self.RULE)
        assert result.ok
        assert len(result.suppressed) == 1


class TestEpsilonComparison:
    RULE = ("epsilon-comparison",)

    def test_abs_difference_vs_tiny_literal_flagged(self, lint):
        src = "def f(a, b):\n    return abs(a - b) < 1e-9\n"
        result = lint(make_module(src, name="repro.core.fixture"), self.RULE)
        assert rules(result) == ["epsilon-comparison"]

    def test_bumped_bound_flagged(self, lint):
        src = "def f(a, b):\n    return a <= b + 1e-12\n"
        result = lint(make_module(src, name="repro.core.fixture"), self.RULE)
        assert rules(result) == ["epsilon-comparison"]

    def test_plain_threshold_guard_clean(self, lint):
        # `norm < 1e-12` degenerate guards have no difference on the other
        # comparator, so they are not the PR-4 bug shape.
        src = "def f(norm):\n    return norm < 1e-12\n"
        assert lint(make_module(src, name="repro.core.fixture"), self.RULE).ok

    def test_named_constant_is_the_sanctioned_remediation(self, lint):
        src = (
            "_TOL = 1e-9  # documented\n"
            "def f(a, b):\n"
            "    return abs(a - b) < _TOL\n"
        )
        assert lint(make_module(src, name="repro.core.fixture"), self.RULE).ok

    def test_tests_exempt(self, lint):
        src = "def f(a, b):\n    assert abs(a - b) < 1e-9\n"
        mod = make_module(src, name=None, rel="tests/fixture/test_fixture.py")
        assert lint(mod, self.RULE).ok


class TestNondeterminism:
    RULE = ("nondeterminism",)

    def test_unseeded_np_random_flagged(self, lint):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        result = lint(make_module(src, name="repro.neural.fixture"), self.RULE)
        assert rules(result) == ["nondeterminism"]

    def test_argless_default_rng_flagged_seeded_clean(self, lint):
        src = (
            "import numpy as np\n"
            "bad = np.random.default_rng()\n"
            "good = np.random.default_rng(1234)\n"
        )
        result = lint(make_module(src, name="repro.neural.fixture"), self.RULE)
        assert [f.line for f in result.new] == [2]

    def test_time_and_stdlib_random_flagged(self, lint):
        src = (
            "import random\nimport time\n"
            "a = random.random()\n"
            "b = time.time()\n"
            "c = random.Random(42)\n"
        )
        result = lint(make_module(src, name="repro.core.fixture"), self.RULE)
        assert [f.line for f in result.new] == [3, 4]

    def test_outside_hot_packages_ignored(self, lint):
        src = "import time\nt = time.time()\n"
        assert lint(make_module(src, name="repro.analysis.fixture"), self.RULE).ok

    def test_worker_entry_point_flagged_outside_hot_packages(self, lint):
        """Process targets are checked everywhere: wall-clock or unseeded
        RNG inside a worker silently breaks cross-process determinism."""
        src = (
            "import time\n"
            "import multiprocessing as mp\n"
            "def _worker(conn):\n"
            "    t = time.time()\n"
            "def launch():\n"
            "    mp.Process(target=_worker).start()\n"
        )
        result = lint(make_module(src, name="repro.analysis.fixture"), self.RULE)
        assert rules(result) == ["nondeterminism"]
        assert [f.line for f in result.new] == [4]
        assert "worker entry point" in result.new[0].message

    def test_worker_entry_unseeded_rng_flagged(self, lint):
        src = (
            "import numpy as np\n"
            "from multiprocessing import Process\n"
            "def _gen():\n"
            "    return np.random.default_rng()\n"
            "p = Process(target=_gen)\n"
        )
        result = lint(make_module(src, name="repro.streaming.fixture"), self.RULE)
        assert [f.line for f in result.new] == [4]

    def test_non_entry_function_still_ignored(self, lint):
        """Spawning a process does not make *every* function a worker:
        only the dispatched targets are held to the worker rules."""
        src = (
            "import time\n"
            "import multiprocessing as mp\n"
            "def _worker(conn):\n"
            "    pass\n"
            "def helper():\n"
            "    return time.time()\n"
            "def launch():\n"
            "    mp.Process(target=_worker).start()\n"
        )
        assert lint(make_module(src, name="repro.analysis.fixture"), self.RULE).ok

    def test_partial_wrapped_dispatch_flagged(self, lint):
        """partial(f, ...) passed to an executor resolves to f."""
        src = (
            "import time\n"
            "from functools import partial\n"
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def _stage(flag, item):\n"
            "    return time.time()\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(partial(_stage, True), items))\n"
        )
        result = lint(make_module(src, name="repro.analysis.fixture"), self.RULE)
        assert [f.line for f in result.new] == [5]


class TestImportHygiene:
    RULE = ("import-hygiene",)

    def test_layering_violation(self, lint):
        low = make_module(
            "from repro.streaming.fixture_hi import thing\n",
            name="repro.core.fixture_lo",
        )
        high = make_module("thing = 1\n", name="repro.streaming.fixture_hi")
        result = lint([low, high], self.RULE)
        assert rules(result) == ["import-hygiene"]
        assert "layering violation" in result.new[0].message

    def test_legal_downward_import(self, lint):
        hi = make_module(
            "import repro.neural.fixture_b\n", name="repro.sr.fixture_a"
        )
        lo = make_module("x = 1\n", name="repro.neural.fixture_b")
        assert lint([hi, lo], self.RULE).ok

    def test_cycle_detected(self, lint):
        a = make_module(
            "import repro.core.fixture_b\n", name="repro.core.fixture_a"
        )
        b = make_module(
            "import repro.core.fixture_a\n", name="repro.core.fixture_b"
        )
        result = lint([a, b], self.RULE)
        assert any("import cycle" in f.message for f in result.new)

    def test_function_local_import_breaks_cycle(self, lint):
        a = make_module(
            "def f():\n    import repro.core.fixture_b\n",
            name="repro.core.fixture_a",
        )
        b = make_module(
            "import repro.core.fixture_a\n", name="repro.core.fixture_b"
        )
        assert lint([a, b], self.RULE).ok

    def test_unknown_package_is_a_finding(self, lint):
        mod = make_module(
            "import repro.newpkg.fixture_t\n", name="repro.core.fixture"
        )
        target = make_module("x = 1\n", name="repro.newpkg.fixture_t")
        result = lint([mod, target], self.RULE)
        assert any("layer table" in f.message for f in result.new)


class TestPublicApi:
    RULE = ("public-api",)

    def test_missing_all_entry_flagged(self, lint):
        src = '__all__ = ["ghost"]\n'
        result = lint(make_module(src, name="repro.core.fixture"), self.RULE)
        assert rules(result) == ["public-api"]

    def test_unexported_public_symbol_flagged(self, lint):
        src = '__all__ = ["f"]\n\ndef f():\n    pass\n\ndef g():\n    pass\n'
        result = lint(make_module(src, name="repro.core.fixture"), self.RULE)
        assert len(result.new) == 1
        assert "g" in result.new[0].message

    def test_underscored_and_imported_names_exempt(self, lint):
        src = (
            "import os\n"
            "from pathlib import Path\n"
            '__all__ = ["f"]\n'
            "def f():\n    pass\n"
            "def _helper():\n    pass\n"
        )
        assert lint(make_module(src, name="repro.core.fixture"), self.RULE).ok

    def test_non_literal_all_reported(self, lint):
        src = "__all__ = [n for n in dir() if n.isupper()]\n"
        result = lint(make_module(src, name="repro.core.fixture"), self.RULE)
        assert any("statically" in f.message for f in result.new)
