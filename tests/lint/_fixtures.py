"""In-memory fixture modules for linting snippets under synthetic names."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.framework import ModuleInfo


def make_module(
    source: str,
    name: str | None = "repro.core.fixture",
    rel: str | None = None,
) -> ModuleInfo:
    """Build an in-memory ModuleInfo from a source snippet.

    ``name`` places the snippet inside the package tree (hot-path rules
    key off it); ``name=None`` models a script/benchmark outside any
    package root.
    """
    if rel is None:
        rel = (name.replace(".", "/") + ".py") if name else "fixture.py"
    return ModuleInfo(
        path=Path(rel),
        rel=rel,
        source=source,
        tree=ast.parse(source),
        name=name,
    )
