"""Units for the metrics registry, histograms, and trace feeding."""

from __future__ import annotations

import json

import pytest

from repro.observability import (
    METRIC_FAMILIES,
    Counter,
    Histogram,
    MetricsRegistry,
    default_latency_buckets,
    match_metric_family,
    observe_frame_trace,
)
from repro.streaming.pipeline import FrameTrace


class TestCounter:
    def test_increments(self):
        c = Counter("frames")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("frames").inc(-1)


class TestHistogram:
    def test_streaming_stats(self):
        h = Histogram("lat", bounds=[1.0, 10.0, 100.0])
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 555.5
        assert h.min == 0.5
        assert h.max == 500.0
        assert h.counts == [1, 1, 1, 1]  # last is the overflow bucket

    def test_quantile_is_conservative_bucket_bound(self):
        h = Histogram("lat", bounds=[1.0, 10.0, 100.0])
        for v in (0.5, 0.6, 0.7, 50.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0  # p50 inside the first bucket
        assert h.quantile(1.0) == 100.0
        assert Histogram("empty", bounds=[1.0]).quantile(0.5) == 0.0

    def test_overflow_quantile_uses_observed_max(self):
        h = Histogram("lat", bounds=[1.0])
        h.observe(123.0)
        assert h.quantile(0.99) == 123.0

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=[1.0, 1.0])

    def test_default_buckets_are_log_spaced(self):
        buckets = default_latency_buckets()
        assert buckets[0] == 0.01
        assert all(b2 / b1 == 2.0 for b1, b2 in zip(buckets, buckets[1:]))


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("b") is reg.histogram("b")

    def test_cross_type_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.histogram("x")
        reg.histogram("y")
        with pytest.raises(ValueError):
            reg.counter("y")

    def test_export_json_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("frames_total").inc(2)
        reg.histogram("stage_ms/decode").observe(3.0)
        path = reg.export_json(tmp_path / "metrics.json")
        data = json.loads(path.read_text())
        assert data["frames_total"]["value"] == 2
        assert data["stage_ms/decode"]["count"] == 1


class TestObserveFrameTrace:
    def _trace(self, dropped=False, retx=0):
        trace = FrameTrace(index=0, frame_type="P")
        trace.add_span("network", 12.0, n_retransmissions=retx, dropped=dropped)
        trace.add_span("decode", 3.0)
        return trace

    def test_feeds_stage_histograms_and_counters(self):
        reg = MetricsRegistry()
        observe_frame_trace(reg, self._trace())
        observe_frame_trace(reg, self._trace())
        assert reg.counter("frames_total").value == 2
        assert reg.histogram("stage_ms/network").count == 2
        assert reg.histogram("stage_ms/network").mean == 12.0
        assert reg.histogram("frame_total_ms").mean == 15.0

    def test_transport_outcomes_surface_as_counters(self):
        reg = MetricsRegistry()
        observe_frame_trace(reg, self._trace(dropped=True, retx=3))
        observe_frame_trace(reg, self._trace())
        assert reg.counter("frames_dropped").value == 1
        assert reg.counter("network_retransmissions").value == 3


class TestMetricFamilies:
    def test_backend_named_total_cannot_merge_into_aggregate(self):
        # Regression: per-backend counts used to live at
        # f"sr.dispatch/tiles_{name}", so a backend literally named
        # "total" silently merged into the aggregate counter.
        reg = MetricsRegistry()
        trace = FrameTrace(index=0, frame_type="P")
        trace.add_span(
            "client",
            1.0,
            dispatch={"tiles_total": 6, "backend_tiles": {"total": 4, "edsr": 2}},
        )
        observe_frame_trace(reg, trace)
        assert reg.counter("sr.dispatch/tiles_total").value == 6
        assert reg.counter("sr.dispatch/backend_tiles/total").value == 4
        assert reg.counter("sr.dispatch/backend_tiles/edsr").value == 2

    def test_match_metric_family(self):
        assert match_metric_family("frames_total") == "frames_total"
        assert match_metric_family("stage_ms/network") == "stage_ms/*"
        assert (
            match_metric_family("sr.dispatch/backend_tiles/fsrcnn")
            == "sr.dispatch/backend_tiles/*"
        )
        assert match_metric_family("unknown/name") is None

    def test_aggregate_is_out_of_every_dynamic_familys_reach(self):
        family = match_metric_family("sr.dispatch/tiles_total")
        assert family == "sr.dispatch/tiles_total"  # exact, never a wildcard

    def test_registered_kinds_are_well_formed(self):
        assert set(METRIC_FAMILIES.values()) <= {"counter", "histogram"}
