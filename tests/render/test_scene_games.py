"""Scene graph, animation, and the ten game workloads (Table I)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.render.camera import Camera
from repro.render.games import GAME_BUILDERS, GAME_TABLE, all_games, build_game
from repro.render.math3d import translation
from repro.render.mesh import box
from repro.render.scene import Scene
from repro.render.shading import Material

W, H = 96, 64


class TestScene:
    def test_add_and_count(self):
        scene = Scene("t")
        scene.add(box(), Material())
        scene.add(box(), Material(), translation(1, 0, 0))
        assert scene.n_triangles() == 24

    def test_static_transform_applied(self):
        scene = Scene("t", camera=Camera(position=np.array([0.0, 0.0, 5.0])))
        scene.add(box(), Material(base_color=(1, 0, 0), unlit=True), translation(0, 0, 0))
        out = scene.render_frame(0.0, W, H)
        assert (out.depth < 1.0).any()

    def test_animator_changes_frames(self):
        scene = Scene("t", camera=Camera(position=np.array([0.0, 0.0, 5.0])))
        scene.add(
            box(), Material(unlit=True), animator=lambda t: translation(3 * t, 0, 0)
        )
        a = scene.render_frame(0.0, W, H)
        b = scene.render_frame(1.0, W, H)
        assert not np.array_equal(a.depth, b.depth)

    def test_camera_animator(self):
        scene = Scene("t", camera_animator=lambda t: Camera(position=np.array([0.0, 0.0, 5.0 + t])))
        assert scene.camera_at(2.0).position[2] == 7.0


class TestGameTable:
    def test_matches_paper_table1(self):
        assert len(GAME_TABLE) == 10
        ids = [g for g, _, _ in GAME_TABLE]
        assert ids == [f"G{i}" for i in range(1, 11)]
        genres = {genre for _, _, genre in GAME_TABLE}
        assert "Racing" in genres and "Stealth" in genres

    def test_builders_cover_table(self):
        assert set(GAME_BUILDERS) == {g for g, _, _ in GAME_TABLE}

    def test_build_game_unknown(self):
        with pytest.raises(ValueError, match="unknown game"):
            build_game("G11")

    def test_all_games(self):
        games = all_games()
        assert [g.game_id for g in games] == [f"G{i}" for i in range(1, 11)]


@pytest.mark.parametrize("game_id", [g for g, _, _ in GAME_TABLE])
class TestEveryWorkload:
    """The structural properties GameStreamSR relies on, per game."""

    _cache: dict = {}

    @pytest.fixture
    def frame(self, game_id):
        if game_id not in self._cache:
            self._cache[game_id] = build_game(game_id).render_frame(3, W, H)
        return self._cache[game_id]

    def test_renders_valid_frame(self, game_id, frame):
        assert frame.color.shape == (H, W, 3)
        assert frame.depth.shape == (H, W)
        assert frame.color.min() >= 0.0 and frame.color.max() <= 1.0
        assert frame.depth.min() >= 0.0 and frame.depth.max() <= 1.0

    def test_has_foreground_content(self, game_id, frame):
        """A meaningful share of pixels shows geometry nearer than far plane."""
        assert (frame.depth < 1.0).mean() > 0.3

    def test_depth_spread(self, game_id, frame):
        """Foreground depths span a range (not a single plane)."""
        fg = frame.depth[frame.depth < 1.0]
        assert fg.max() - fg.min() > 0.05

    def test_motion_between_frames(self, game_id):
        game = build_game(game_id)
        a = game.render_frame(0, W, H)
        b = game.render_frame(6, W, H)
        assert np.abs(a.color - b.color).mean() > 1e-4


class TestWorkloadAPI:
    def test_render_sequence(self):
        frames = build_game("G9").render_sequence(3, W, H)
        assert len(frames) == 3

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            build_game("G1").render_frame(-1, W, H)

    def test_determinism(self):
        a = build_game("G5").render_frame(4, W, H)
        b = build_game("G5").render_frame(4, W, H)
        np.testing.assert_array_equal(a.color, b.color)
        np.testing.assert_array_equal(a.depth, b.depth)
