"""Materials, procedural textures, and the LOD/depth-detail property."""

from __future__ import annotations

import numpy as np
import pytest

from repro.render.shading import (
    DirectionalLight,
    Material,
    TEXTURES,
    bricks,
    checker,
    grass_detail,
    marble,
    stripes,
    value_noise,
)


class TestTextures:
    @pytest.mark.parametrize("name", sorted(TEXTURES))
    def test_range_and_determinism(self, name, rng):
        u = rng.uniform(0, 10, size=200)
        v = rng.uniform(0, 10, size=200)
        fn = TEXTURES[name]
        a = fn(u, v)
        b = fn(u, v)
        np.testing.assert_array_equal(a, b)
        assert a.min() >= -1e-9 and a.max() <= 1 + 1e-9

    def test_checker_alternates(self):
        assert checker(np.array([0.5]), np.array([0.5]))[0] == 0.0
        assert checker(np.array([1.5]), np.array([0.5]))[0] == 1.0

    def test_stripes_period(self):
        u = np.array([0.25, 1.25])
        np.testing.assert_allclose(stripes(u, u), [1.0, 1.0])

    def test_value_noise_smooth(self):
        """Adjacent samples differ less than distant samples on average."""
        u = np.linspace(0, 5, 400)
        noise = value_noise(u, np.zeros_like(u))
        near_diff = np.abs(np.diff(noise)).mean()
        far_diff = np.abs(noise[:-50] - noise[50:]).mean()
        assert near_diff < far_diff

    def test_value_noise_seed_changes_field(self):
        u = np.linspace(0, 5, 50)
        a = value_noise(u, u, seed=1)
        b = value_noise(u, u, seed=2)
        assert not np.allclose(a, b)

    def test_bricks_have_mortar(self):
        u, v = np.meshgrid(np.linspace(0, 4, 64), np.linspace(0, 4, 64))
        pattern = bricks(u.ravel(), v.ravel())
        assert pattern.min() < 0.2 and pattern.max() > 0.7

    def test_marble_and_grass_vary(self):
        u = np.linspace(0, 3, 100)
        assert marble(u, u).std() > 0.05
        assert grass_detail(u, u).std() > 0.02


class TestLight:
    def test_unit_direction(self):
        light = DirectionalLight(direction=(0, -2, 0))
        np.testing.assert_allclose(light.unit_direction(), [0, -1, 0])


class TestMaterial:
    def test_unlit_ignores_light(self):
        mat = Material(base_color=(0.5, 0.5, 0.5), unlit=True)
        out = mat.shade(np.zeros((4, 2)), np.array([0, 1, 0]), np.ones(4), DirectionalLight())
        np.testing.assert_allclose(out, 0.5)

    def test_lambert_brightness_depends_on_normal(self):
        mat = Material(base_color=(1.0, 1.0, 1.0))
        light = DirectionalLight(direction=(0, -1, 0), ambient=0.2)
        uv = np.zeros((1, 2))
        lit = mat.shade(uv, np.array([0.0, 1.0, 0.0]), np.ones(1), light)
        unlit_facing = mat.shade(uv, np.array([0.0, -1.0, 0.0]), np.ones(1), light)
        assert lit[0, 0] > unlit_facing[0, 0]
        assert unlit_facing[0, 0] == pytest.approx(0.2)  # ambient floor

    def test_lod_fades_detail_with_distance(self):
        """The mipmap emulation: texture modulation shrinks as distance grows."""
        mat = Material(
            base_color=(0.5, 0.5, 0.5),
            texture="checker",
            texture_scale=8,
            detail_strength=0.8,
            lod_distance=10.0,
            unlit=True,
        )
        uv = np.stack([np.linspace(0, 1, 256), np.zeros(256)], axis=1)
        near = mat.shade(uv, np.array([0, 1, 0]), np.full(256, 1.0), DirectionalLight())
        far = mat.shade(uv, np.array([0, 1, 0]), np.full(256, 200.0), DirectionalLight())
        assert near.std() > 5 * far.std()

    def test_output_clipped(self):
        mat = Material(base_color=(1.0, 1.0, 1.0), texture="checker", detail_strength=1.0, unlit=True)
        uv = np.stack([np.linspace(0, 4, 64), np.zeros(64)], axis=1)
        out = mat.shade(uv, np.array([0, 1, 0]), np.ones(64), DirectionalLight())
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_unknown_texture_name(self):
        mat = Material(texture="nonexistent")
        with pytest.raises(ValueError, match="unknown texture"):
            mat.shade(np.zeros((1, 2)), np.array([0, 1, 0]), np.ones(1), DirectionalLight())

    def test_callable_texture(self):
        mat = Material(texture=lambda u, v: np.ones_like(u), detail_strength=0.5, unlit=True)
        out = mat.shade(np.zeros((2, 2)), np.array([0, 1, 0]), np.ones(2), DirectionalLight())
        assert out.shape == (2, 3)
