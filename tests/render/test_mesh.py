"""Mesh primitives and operations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.render.math3d import translation
from repro.render.mesh import Mesh, box, cone, cylinder, plane, sphere, terrain

ALL_PRIMS = {
    "box": box(),
    "plane": plane(2, 2, divisions=3),
    "sphere": sphere(1.0, segments=8, rings=6),
    "cylinder": cylinder(),
    "cone": cone(),
    "terrain": terrain(4, 5, lambda x, z: 0.1 * x * z),
}


@pytest.mark.parametrize("name", sorted(ALL_PRIMS))
class TestPrimitiveValidity:
    def test_faces_in_range(self, name):
        mesh = ALL_PRIMS[name]
        assert mesh.faces.min() >= 0
        assert mesh.faces.max() < len(mesh.vertices)

    def test_uvs_per_vertex(self, name):
        mesh = ALL_PRIMS[name]
        assert mesh.uvs.shape == (len(mesh.vertices), 2)

    def test_normals_unit_length(self, name):
        normals = ALL_PRIMS[name].face_normals()
        np.testing.assert_allclose(np.linalg.norm(normals, axis=1), 1.0, atol=1e-9)

    def test_nonempty(self, name):
        assert ALL_PRIMS[name].n_triangles > 0


class TestSpecificGeometry:
    def test_box_extents(self):
        mesh = box(2.0, 4.0, 6.0)
        assert mesh.n_triangles == 12
        lo = mesh.vertices.min(axis=0)
        hi = mesh.vertices.max(axis=0)
        np.testing.assert_allclose(hi - lo, [2.0, 4.0, 6.0])
        np.testing.assert_allclose((hi + lo) / 2, [0, 0, 0], atol=1e-12)

    def test_plane_lies_flat(self):
        mesh = plane(3, 5, divisions=2)
        np.testing.assert_array_equal(mesh.vertices[:, 1], 0.0)
        assert mesh.n_triangles == 2 * 2 * 2

    def test_sphere_radius(self):
        mesh = sphere(2.5, segments=10, rings=8)
        radii = np.linalg.norm(mesh.vertices, axis=1)
        np.testing.assert_allclose(radii, 2.5, atol=1e-9)

    def test_cylinder_height_span(self):
        mesh = cylinder(0.5, 3.0)
        assert mesh.vertices[:, 1].min() == 0.0
        assert mesh.vertices[:, 1].max() == 3.0

    def test_cone_apex(self):
        mesh = cone(1.0, 2.0, segments=6)
        assert mesh.vertices[:, 1].max() == 2.0

    def test_terrain_heights_follow_function(self):
        mesh = terrain(10, 4, lambda x, z: x + z)
        np.testing.assert_allclose(
            mesh.vertices[:, 1], mesh.vertices[:, 0] + mesh.vertices[:, 2]
        )

    def test_terrain_bad_height_fn(self):
        with pytest.raises(ValueError, match="height_fn"):
            terrain(4, 3, lambda x, z: np.zeros(3))


class TestMeshOps:
    def test_transformed_moves_vertices(self):
        mesh = box().transformed(translation(5, 0, 0))
        assert mesh.vertices[:, 0].min() == pytest.approx(4.5)

    def test_transformed_is_a_copy(self):
        mesh = box()
        moved = mesh.transformed(translation(1, 0, 0))
        assert moved is not mesh
        assert mesh.vertices[:, 0].min() == pytest.approx(-0.5)

    def test_merged_with(self):
        a, b = box(), sphere(1, segments=6, rings=4)
        merged = a.merged_with(b)
        assert len(merged.vertices) == len(a.vertices) + len(b.vertices)
        assert merged.n_triangles == a.n_triangles + b.n_triangles
        assert merged.faces.max() < len(merged.vertices)

    def test_degenerate_face_normal_fallback(self):
        mesh = Mesh(
            vertices=np.zeros((3, 3)),
            faces=np.array([[0, 1, 2]]),
            uvs=np.zeros((3, 2)),
        )
        np.testing.assert_array_equal(mesh.face_normals()[0], [0.0, 1.0, 0.0])

    def test_validation(self):
        with pytest.raises(ValueError, match="vertices"):
            Mesh(np.zeros((3, 2)), np.zeros((1, 3), dtype=int), np.zeros((3, 2)))
        with pytest.raises(ValueError, match="out of range"):
            Mesh(np.zeros((3, 3)), np.array([[0, 1, 5]]), np.zeros((3, 2)))
        with pytest.raises(ValueError, match="uvs"):
            Mesh(np.zeros((3, 3)), np.array([[0, 1, 2]]), np.zeros((2, 2)))

    def test_primitive_argument_validation(self):
        with pytest.raises(ValueError):
            plane(1, 1, divisions=0)
        with pytest.raises(ValueError):
            sphere(segments=2)
        with pytest.raises(ValueError):
            cylinder(segments=2)
        with pytest.raises(ValueError):
            cone(segments=1)
