"""Camera matrices and pose helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.render.camera import Camera
from repro.render.math3d import transform_points


class TestCamera:
    def test_view_projection_composes(self):
        camera = Camera(position=np.array([0.0, 0.0, 5.0]), target=np.zeros(3))
        vp = camera.view_projection(160, 90)
        manual = camera.projection_matrix(160 / 90) @ camera.view_matrix()
        np.testing.assert_allclose(vp, manual)

    def test_target_projects_to_center(self):
        camera = Camera(position=np.array([2.0, 1.0, 5.0]), target=np.array([0.0, 0.5, -3.0]))
        clip = transform_points(camera.view_projection(100, 100), camera.target[None])
        ndc = clip[0, :2] / clip[0, 3]
        np.testing.assert_allclose(ndc, [0.0, 0.0], atol=1e-12)

    def test_moved_keeps_intrinsics(self):
        camera = Camera(fov_y=np.deg2rad(45), near=0.5, far=80.0)
        moved = camera.moved([1.0, 2.0, 3.0])
        assert moved.fov_y == camera.fov_y
        assert moved.near == camera.near and moved.far == camera.far
        np.testing.assert_array_equal(moved.position, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(moved.target, camera.target)

    def test_moved_with_target(self):
        moved = Camera().moved([0.0, 0.0, 9.0], target=[1.0, 0.0, 0.0])
        np.testing.assert_array_equal(moved.target, [1.0, 0.0, 0.0])

    def test_viewport_validation(self):
        with pytest.raises(ValueError):
            Camera().view_projection(0, 100)

    def test_w_equals_view_distance(self):
        """The rasterizer relies on w_clip being the view-axis distance."""
        camera = Camera(position=np.zeros(3), target=np.array([0.0, 0.0, -1.0]))
        clip = transform_points(
            camera.view_projection(100, 100), np.array([[0.3, 0.4, -12.0]])
        )
        assert clip[0, 3] == pytest.approx(12.0)
