"""3-D math primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.render.math3d import (
    compose,
    look_at,
    normalize,
    perspective,
    rotation_x,
    rotation_y,
    rotation_z,
    scaling,
    transform_points,
    translation,
)


class TestBasics:
    def test_normalize(self):
        np.testing.assert_allclose(normalize([3.0, 0.0, 4.0]), [0.6, 0.0, 0.8])

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            normalize([0.0, 0.0, 0.0])

    def test_translation(self):
        out = transform_points(translation(1, 2, 3), np.array([[0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(out[0, :3], [1, 2, 3])

    def test_scaling_uniform_and_nonuniform(self):
        np.testing.assert_allclose(np.diag(scaling(2)), [2, 2, 2, 1])
        np.testing.assert_allclose(np.diag(scaling(1, 2, 3)), [1, 2, 3, 1])

    @pytest.mark.parametrize(
        "rot,axis", [(rotation_x, 0), (rotation_y, 1), (rotation_z, 2)]
    )
    def test_rotations_preserve_axis(self, rot, axis):
        point = np.zeros((1, 3))
        point[0, axis] = 1.0
        out = transform_points(rot(0.7), point)
        np.testing.assert_allclose(out[0, :3], point[0], atol=1e-12)

    def test_rotation_y_quarter_turn(self):
        out = transform_points(rotation_y(np.pi / 2), np.array([[1.0, 0.0, 0.0]]))
        np.testing.assert_allclose(out[0, :3], [0.0, 0.0, -1.0], atol=1e-12)

    def test_rotations_are_orthonormal(self):
        for rot in (rotation_x, rotation_y, rotation_z):
            m = rot(1.1)[:3, :3]
            np.testing.assert_allclose(m @ m.T, np.eye(3), atol=1e-12)
            assert np.linalg.det(m) == pytest.approx(1.0)

    def test_compose_order(self):
        # compose(A, B) applies B first: translate then rotate.
        m = compose(rotation_z(np.pi / 2), translation(1, 0, 0))
        out = transform_points(m, np.array([[0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(out[0, :3], [0.0, 1.0, 0.0], atol=1e-12)

    def test_transform_points_shape_check(self):
        with pytest.raises(ValueError):
            transform_points(np.eye(4), np.zeros((3,)))


class TestCameraMath:
    def test_look_at_centers_target(self):
        view = look_at(np.array([0.0, 0.0, 5.0]), np.zeros(3))
        out = transform_points(view, np.array([[0.0, 0.0, 0.0]]))
        # Target lies on the -Z view axis at distance 5.
        np.testing.assert_allclose(out[0, :3], [0.0, 0.0, -5.0], atol=1e-12)

    def test_look_at_preserves_distances(self, rng):
        view = look_at(np.array([1.0, 2.0, 3.0]), np.array([4.0, 0.0, -2.0]))
        pts = rng.normal(size=(10, 3))
        transformed = transform_points(view, pts)[:, :3]
        orig = np.linalg.norm(pts[0] - pts[5])
        new = np.linalg.norm(transformed[0] - transformed[5])
        assert new == pytest.approx(orig)

    def test_perspective_near_far_mapping(self):
        proj = perspective(np.deg2rad(60), 1.0, 1.0, 100.0)
        near = transform_points(proj, np.array([[0.0, 0.0, -1.0]]))
        far = transform_points(proj, np.array([[0.0, 0.0, -100.0]]))
        assert near[0, 2] / near[0, 3] == pytest.approx(-1.0)
        assert far[0, 2] / far[0, 3] == pytest.approx(1.0)

    def test_perspective_w_is_view_distance(self):
        proj = perspective(np.deg2rad(60), 1.6, 0.1, 50.0)
        out = transform_points(proj, np.array([[0.3, -0.2, -7.0]]))
        assert out[0, 3] == pytest.approx(7.0)

    def test_perspective_validation(self):
        with pytest.raises(ValueError):
            perspective(np.deg2rad(60), 1.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            perspective(np.deg2rad(60), 1.0, 10.0, 1.0)
        with pytest.raises(ValueError):
            perspective(0.0, 1.0, 0.1, 10.0)
