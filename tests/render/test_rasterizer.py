"""Z-buffered rasterization: coverage, occlusion, depth, clipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.render.camera import Camera
from repro.render.mesh import Mesh, plane
from repro.render.rasterizer import render, sky_gradient
from repro.render.shading import DirectionalLight, Material


def quad_at(z: float, size: float = 2.0, x: float = 0.0, y: float = 0.0) -> Mesh:
    """A camera-facing square at view depth ``z`` (camera at origin, -Z)."""
    h = size / 2
    verts = np.array(
        [[x - h, y - h, z], [x + h, y - h, z], [x + h, y + h, z], [x - h, y + h, z]]
    )
    faces = np.array([[0, 1, 2], [0, 2, 3]])
    uvs = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=np.float64)
    return Mesh(verts, faces, uvs)


@pytest.fixture
def camera() -> Camera:
    return Camera(position=np.array([0.0, 0.0, 0.0]), target=np.array([0.0, 0.0, -1.0]), far=100.0)


RED = Material(base_color=(1.0, 0.0, 0.0), unlit=True)
BLUE = Material(base_color=(0.0, 0.0, 1.0), unlit=True)


class TestCoverage:
    def test_centered_quad_covers_center(self, camera):
        out = render([(quad_at(-5.0), RED)], camera, 40, 30)
        np.testing.assert_allclose(out.color[15, 20], [1.0, 0.0, 0.0])
        assert out.depth[15, 20] == pytest.approx(5.0 / 100.0, abs=1e-6)

    def test_background_untouched(self, camera):
        out = render([(quad_at(-5.0, size=0.5), RED)], camera, 40, 30)
        assert out.depth[0, 0] == 1.0  # sky
        assert out.depth[15, 20] < 1.0

    def test_empty_scene_is_background(self, camera):
        out = render([], camera, 32, 24, background=(0.1, 0.2, 0.3))
        np.testing.assert_allclose(out.color, np.broadcast_to([0.1, 0.2, 0.3], (24, 32, 3)))
        np.testing.assert_array_equal(out.depth, 1.0)

    def test_offscreen_geometry_ignored(self, camera):
        out = render([(quad_at(-5.0, x=100.0), RED)], camera, 32, 24)
        assert (out.depth == 1.0).all()


class TestOcclusion:
    def test_near_quad_wins(self, camera):
        out = render([(quad_at(-10.0), BLUE), (quad_at(-5.0, size=1.0), RED)], camera, 40, 30)
        np.testing.assert_allclose(out.color[15, 20], [1.0, 0.0, 0.0])

    def test_draw_order_irrelevant(self, camera):
        a = render([(quad_at(-10.0), BLUE), (quad_at(-5.0, size=1.0), RED)], camera, 40, 30)
        b = render([(quad_at(-5.0, size=1.0), RED), (quad_at(-10.0), BLUE)], camera, 40, 30)
        np.testing.assert_array_equal(a.color, b.color)
        np.testing.assert_array_equal(a.depth, b.depth)

    def test_depth_linearized(self, camera):
        near = render([(quad_at(-10.0), RED)], camera, 20, 16).depth[8, 10]
        far = render([(quad_at(-50.0, size=20.0), RED)], camera, 20, 16).depth[8, 10]
        assert near == pytest.approx(0.1, abs=1e-6)
        assert far == pytest.approx(0.5, abs=1e-6)

    def test_beyond_far_plane_clipped(self, camera):
        out = render([(quad_at(-150.0), RED)], camera, 20, 16)
        assert (out.depth == 1.0).all()


class TestNearClipping:
    def test_straddling_geometry_still_renders(self):
        """A ground plane passing under the camera must not vanish."""
        camera = Camera(
            position=np.array([0.0, 1.0, 0.0]),
            target=np.array([0.0, 0.5, -5.0]),
            far=100.0,
        )
        ground = plane(4, 60).transformed(np.eye(4))  # spans z in [-30, 30]
        out = render([(ground, RED)], camera, 40, 30)
        # Lower half of the image shows the ground.
        assert (out.depth[25] < 1.0).any()

    def test_fully_behind_camera_rejected(self, camera):
        out = render([(quad_at(5.0), RED)], camera, 20, 16)
        assert (out.depth == 1.0).all()


class TestShadingIntegration:
    def test_lambert_applied(self, camera):
        lit_mat = Material(base_color=(1.0, 1.0, 1.0))
        light = DirectionalLight(direction=(0, 0, 1), ambient=0.3)
        out = render([(quad_at(-5.0), lit_mat)], camera, 20, 16, light=light)
        # Quad normal faces +Z (toward camera); light travels +Z, i.e. away
        # from the visible face -> only the ambient floor remains.
        center = out.color[8, 10]
        assert center[0] == pytest.approx(0.3, abs=0.02)

    def test_perspective_correct_uv(self, camera):
        """A checker textured quad viewed straight-on has symmetric pattern."""
        mat = Material(
            base_color=(0.5, 0.5, 0.5), texture="checker", texture_scale=4,
            detail_strength=1.0, unlit=True, lod_distance=1e9,
        )
        out = render([(quad_at(-5.0, size=3.0), mat)], camera, 64, 64)
        row = out.color[32, :, 0]
        covered = row[row > 0]  # quad pixels only
        bright_left = (covered[: len(covered) // 2] > 0.5).mean()
        bright_right = (covered[len(covered) // 2 :] > 0.5).mean()
        assert abs(bright_left - bright_right) < 0.25


class TestValidation:
    def test_viewport_too_small(self, camera):
        with pytest.raises(ValueError):
            render([], camera, 1, 10)

    def test_background_shape_check(self, camera):
        with pytest.raises(ValueError, match="background"):
            render([], camera, 10, 10, background=np.zeros((5, 5, 3)))

    def test_sky_gradient_shape(self):
        sky = sky_gradient(30, 20)
        assert sky.shape == (20, 30, 3)
        assert not np.array_equal(sky[0], sky[-1])  # vertical gradient
