"""CLI commands and PPM/PGM image export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.render.io import load_ppm, save_pgm, save_ppm


class TestImageIO:
    def test_ppm_roundtrip(self, tmp_path, rng):
        image = rng.uniform(size=(12, 16, 3))
        path = save_ppm(image, tmp_path / "frame.ppm")
        loaded = load_ppm(path)
        assert loaded.shape == image.shape
        assert np.abs(loaded - image).max() <= 0.5 / 255 + 1e-9

    def test_pgm_header(self, tmp_path):
        path = save_pgm(np.zeros((4, 6)), tmp_path / "depth.pgm")
        data = path.read_bytes()
        assert data.startswith(b"P5\n6 4\n255\n")
        assert len(data) == len(b"P5\n6 4\n255\n") + 24

    def test_shape_validation(self, tmp_path):
        with pytest.raises(ValueError):
            save_ppm(np.zeros((4, 4)), tmp_path / "x.ppm")
        with pytest.raises(ValueError):
            save_pgm(np.zeros((4, 4, 3)), tmp_path / "x.pgm")

    def test_load_rejects_non_ppm(self, tmp_path):
        bad = tmp_path / "bad.ppm"
        bad.write_bytes(b"JFIF....")
        with pytest.raises(ValueError, match="P6"):
            load_ppm(bad)

    def test_creates_directories(self, tmp_path):
        path = save_ppm(np.zeros((2, 2, 3)), tmp_path / "a" / "b" / "x.ppm")
        assert path.exists()


class TestCLI:
    def test_games_command(self, capsys):
        assert main(["games"]) == 0
        out = capsys.readouterr().out
        assert "G10" in out and "Racing" in out

    def test_devices_command(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "samsung_tab_s8" in out and "pixel_7_pro" in out

    def test_detect_command(self, capsys):
        assert main(["detect", "G9", "--width", "96", "--height", "64", "--side", "24"]) == 0
        assert "RoI 24x24" in capsys.readouterr().out

    def test_render_command(self, tmp_path, capsys):
        code = main(
            ["render", "G9", "--frames", "1", "--width", "64", "--height", "48",
             "--out", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "G9_000.ppm").exists()
        assert (tmp_path / "G9_000_depth.pgm").exists()

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.slow
    def test_stream_command(self, capsys, tiny_model):
        assert main(["stream", "G9", "--frames", "4", "--profile", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "gamestreamsr" in out and "nemo" in out

    @pytest.mark.slow
    def test_stream_trace_export(self, tmp_path, capsys, tiny_model):
        import json

        from repro.observability import validate_session_trace

        code = main(
            ["stream", "G9", "--frames", "4", "--profile", "tiny",
             "--trace-json", str(tmp_path)]
        )
        assert code == 0
        for design in ("gamestreamsr", "nemo"):
            path = tmp_path / f"G9_{design}_trace.json"
            assert path.exists()
            data = json.loads(path.read_text())
            validate_session_trace(data)
            assert data["session"]["design"] == design
            assert data["session"]["n_frames"] == 4
            assert len(data["frames"]) == 4
            assert data["metrics"]["frames_total"]["value"] == 4
