"""Difficulty metric and budgeted tile dispatch across fake backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.platform.device import samsung_tab_s8
from repro.platform.energy import Component
from repro.sr.backends import SRBackend
from repro.sr.dispatch import DifficultyDispatcher, tile_difficulty
from repro.sr.interpolate import nearest


@pytest.fixture(scope="module")
def device():
    return samsung_tab_s8()


class FakeBackend(SRBackend):
    """Deterministic test backend: linear latency, recognizable output.

    ``fill=None`` upscales with nearest-neighbour (exact per tile, so a
    single-backend mosaic must reproduce the full-frame filter); a float
    fill paints its tiles with that constant, marking who handled what.
    """

    def __init__(self, name, engine, component, ms_per_px, quality_rank,
                 scale=2, fill=None):
        self.name = name
        self.scale = scale
        self.engine = engine
        self.component = component
        self.quality_rank = quality_rank
        self.ms_per_px = ms_per_px
        self.fill = fill

    def upscale(self, image):
        h, w = image.shape[:2]
        if self.fill is not None:
            return np.full(
                (h * self.scale, w * self.scale, image.shape[2]), self.fill
            )
        return nearest(image, h * self.scale, w * self.scale)

    def upscale_batch(self, tiles):
        n, h, w, c = tiles.shape
        if n == 0:
            return np.empty((0, h * self.scale, w * self.scale, c))
        return np.stack([self.upscale(t) for t in tiles])

    def latency_ms(self, lr_pixels, device):
        return self.ms_per_px * lr_pixels


def big(ms_per_px=0.003, fill=None):
    return FakeBackend("big", "npu", Component.NPU, ms_per_px, 0, fill=fill)


def small(ms_per_px=0.0001, fill=None):
    return FakeBackend("small", "gpu", Component.GPU, ms_per_px, 1, fill=fill)


def patch_with_hard_tile(rng, h=32, w=32, tile=16, hard=(0, 1)):
    patch = np.full((h, w, 3), 0.5)
    hy, hx = hard
    patch[hy * tile : (hy + 1) * tile, hx * tile : (hx + 1) * tile] = (
        rng.uniform(size=(tile, tile, 3))
    )
    return patch


class TestTileDifficulty:
    def test_flat_patch_scores_zero(self):
        d = tile_difficulty(np.full((32, 32, 3), 0.3), tile=16)
        assert d.shape == (2, 2)
        np.testing.assert_allclose(d, 0.0, atol=1e-12)

    def test_texture_scores_higher_than_flat(self, rng):
        d = tile_difficulty(patch_with_hard_tile(rng), tile=16)
        assert d[0, 1] > 10 * max(d[0, 0], d[1, 0], d[1, 1])

    def test_ragged_edges_normalized_per_pixel(self, rng):
        # 40x40 at tile 16 leaves 8-px ragged edges; per-pixel
        # normalization keeps uniform noise roughly uniform across the
        # full and partial tiles.
        d = tile_difficulty(rng.uniform(size=(40, 40, 3)), tile=16)
        assert d.shape == (3, 3)
        assert d.max() / d.min() < 2.0

    def test_extra_energy_added_per_pixel(self):
        patch = np.full((32, 32, 3), 0.3)
        extra = np.zeros((2, 2))
        extra[1, 0] = 256.0  # one LR pixel-unit of residual energy
        d = tile_difficulty(patch, tile=16, extra_energy=extra)
        assert d[1, 0] == pytest.approx(1.0)
        assert d[0, 0] == pytest.approx(0.0, abs=1e-12)

    def test_extra_energy_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="extra_energy"):
            tile_difficulty(
                np.zeros((32, 32, 3)), tile=16, extra_energy=np.zeros((3, 3))
            )

    def test_bad_tile_rejected(self):
        with pytest.raises(ValueError, match="tile"):
            tile_difficulty(np.zeros((8, 8, 3)), tile=0)


class TestDispatcherValidation:
    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            DifficultyDispatcher([], budget_ms=1.0)

    def test_scale_disagreement_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            DifficultyDispatcher(
                [big(), FakeBackend("s3", "gpu", Component.GPU, 0.1, 1, scale=3)],
                budget_ms=1.0,
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DifficultyDispatcher([big(), big()], budget_ms=1.0)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            DifficultyDispatcher([big()], budget_ms=0.0)


class TestPlan:
    def test_infinite_budget_routes_all_to_best(self, device):
        disp = DifficultyDispatcher(
            [big(), small()], budget_ms=float("inf"), tile=16
        )
        plan = disp.plan(np.ones((2, 2)), device)
        assert plan.backend_tiles == {"big": 4, "small": 0}
        assert plan.overflow_tiles == 0
        assert plan.engine_ms["npu"] == pytest.approx(0.003 * 4 * 256)

    def test_hardest_tiles_claim_best_backend_first(self, device):
        # Budget fits exactly one 256-px tile on the big backend.
        disp = DifficultyDispatcher([big(), small()], budget_ms=1.0, tile=16)
        difficulty = np.array([[0.1, 0.9], [0.2, 0.3]])
        plan = disp.plan(difficulty, device)
        assert plan.backend_tiles == {"big": 1, "small": 3}
        grid = plan.assignment.reshape(2, 2)
        assert grid[0, 1] == 0  # the hardest tile got the big model
        assert plan.overflow_tiles == 0

    def test_budget_bounds_every_engine(self, device):
        disp = DifficultyDispatcher([big(), small()], budget_ms=1.0, tile=16)
        plan = disp.plan(np.ones((4, 4)), device)
        for ms in plan.engine_ms.values():
            assert ms <= 1.0 + 1e-9
        assert plan.upscale_ms == max(plan.engine_ms.values())

    def test_overflow_counts_unplaceable_tiles(self, device):
        # One expensive backend, budget fits one tile: the rest overflow
        # onto the fallback (the same backend) and are counted.
        disp = DifficultyDispatcher([big()], budget_ms=1.0, tile=16)
        plan = disp.plan(np.ones((2, 2)), device)
        assert plan.backend_tiles == {"big": 4}
        assert plan.overflow_tiles == 3
        assert plan.engine_ms["npu"] > 1.0

    def test_tile_pixels_override_scales_latency(self, device):
        disp = DifficultyDispatcher(
            [big()], budget_ms=float("inf"), tile=16
        )
        base = disp.plan(np.ones((2, 2)), device)
        modeled = disp.plan(np.ones((2, 2)), device, tile_pixels=1000.0)
        assert modeled.engine_ms["npu"] == pytest.approx(0.003 * 4 * 1000)
        assert base.engine_ms["npu"] == pytest.approx(0.003 * 4 * 256)

    def test_extra_energy_steers_routing(self, device):
        disp = DifficultyDispatcher([big(), small()], budget_ms=1.0, tile=16)
        patch = np.full((32, 32, 3), 0.5)  # uniformly easy
        extra = np.zeros((2, 2))
        extra[1, 1] = 1e6  # heavy codec residual in one tile
        difficulty = tile_difficulty(patch, 16, extra)
        plan = disp.plan(difficulty, device)
        assert plan.assignment.reshape(2, 2)[1, 1] == 0

    def test_meta_payload_is_consistent(self, device):
        disp = DifficultyDispatcher([big(), small()], budget_ms=1.0, tile=16)
        meta = disp.plan(np.ones((2, 2)), device).meta()
        assert meta["tiles_total"] == 4
        assert sum(meta["backend_tiles"].values()) == 4
        assert meta["upscale_ms"] == pytest.approx(max(meta["engine_ms"].values()))


class TestRun:
    def test_single_backend_mosaic_matches_full_filter(self, device, rng):
        # Nearest-neighbour is exact per tile, so a one-member pool must
        # reproduce the full-frame filter through the gather/mosaic path
        # — including ragged right/bottom tiles (22x19 at tile 8).
        disp = DifficultyDispatcher(
            [big(fill=None)], budget_ms=float("inf"), tile=8, halo=2
        )
        patch = rng.uniform(size=(22, 19, 3))
        out, plan = disp.run(patch, device)
        np.testing.assert_allclose(out, nearest(patch, 44, 38), atol=1e-12)
        assert plan.backend_tiles == {"big": 9}

    def test_routing_is_visible_in_output(self, device, rng):
        # Constant-fill backends paint their tiles: the hard tile must
        # come out at the big model's fill, the rest at the small one's.
        disp = DifficultyDispatcher(
            [big(fill=1.0), small(fill=0.25)], budget_ms=1.0, tile=16, halo=0
        )
        patch = patch_with_hard_tile(rng, hard=(0, 1))
        out, plan = disp.run(patch, device)
        assert out.shape == (64, 64, 3)
        np.testing.assert_array_equal(out[0:32, 32:64], 1.0)
        np.testing.assert_array_equal(out[32:64, 0:32], 0.25)
        assert plan.backend_tiles == {"big": 1, "small": 3}

    def test_run_requires_three_channels(self, device):
        disp = DifficultyDispatcher([big()], budget_ms=1.0)
        with pytest.raises(Exception):
            disp.run(np.zeros((16, 16)), device)
