"""SRBackend zoo: latency/energy anchors, batch execution, construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.platform.device import samsung_tab_s8
from repro.platform.energy import Component
from repro.platform.latency import (
    cpu_bicubic_ms,
    gpu_bilinear_ms,
    npu_sr_latency_ms,
)
from repro.sr.backends import (
    NeuralBackend,
    SRBackend,
    available_backends,
    build_backend,
)
from repro.sr.interpolate import bicubic, bilinear


@pytest.fixture(scope="module")
def device():
    return samsung_tab_s8()


class TestZooRegistry:
    def test_available_names(self):
        names = available_backends()
        assert names == (
            "edsr", "edsr_int8", "fsrcnn", "quicksrnet",
            "bicubic_cpu", "bilinear_gpu",
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown SR backend"):
            build_backend("espcn")

    def test_runner_scale_mismatch_rejected(self, tiny_runner):
        with pytest.raises(ValueError, match="scale"):
            build_backend("edsr", scale=3, runner=tiny_runner)

    def test_interp_members_need_no_weights(self):
        for name in ("bicubic_cpu", "bilinear_gpu"):
            backend = build_backend(name)
            assert isinstance(backend, SRBackend)
            assert name in backend.describe()


class TestLatencyAnchors:
    def test_edsr_is_exactly_the_reference_curve(self, device, tiny_runner):
        backend = build_backend("edsr", runner=tiny_runner)
        for px in (1.0, 90_000.0, 921_600.0):
            assert backend.latency_ms(px, device) == npu_sr_latency_ms(px, device)

    def test_scaled_npu_members(self, device, tiny_runner):
        # Construct directly on the shared runner: the anchor fields are
        # what differ between zoo members, not the weights.
        cases = {
            "fsrcnn": device.fsrcnn_npu_latency_scale,
            "quicksrnet": device.quicksrnet_npu_latency_scale,
            "edsr_int8": device.edsr_int8_npu_latency_scale,
        }
        for name, scale in cases.items():
            backend = NeuralBackend(
                name, tiny_runner, quality_rank=1,
                latency_scale_field=f"{name}_npu_latency_scale",
            )
            assert backend.latency_ms(90_000.0, device) == pytest.approx(
                npu_sr_latency_ms(90_000.0, device) * scale
            )
            assert scale < 1.0  # every alternative undercuts EDSR

    def test_interp_members_ride_platform_anchors(self, device):
        assert build_backend("bilinear_gpu").latency_ms(
            50_000.0, device
        ) == gpu_bilinear_ms(50_000.0, device)
        assert build_backend("bicubic_cpu").latency_ms(
            50_000.0, device
        ) == cpu_bicubic_ms(50_000.0, device)

    def test_int8_energy_derated(self, device, tiny_runner):
        backend = NeuralBackend(
            "edsr_int8", tiny_runner, quality_rank=1,
            latency_scale_field="edsr_int8_npu_latency_scale",
            power_scale_field="edsr_int8_npu_power_scale",
        )
        ms = backend.latency_ms(90_000.0, device)
        assert backend.energy_charged_ms(ms, device) == pytest.approx(
            ms * device.edsr_int8_npu_power_scale
        )
        # The default charge is the latency itself.
        edsr = build_backend("edsr", runner=tiny_runner)
        assert edsr.energy_charged_ms(ms, device) == ms

    def test_engine_and_component_wiring(self, device, tiny_runner):
        assert build_backend("edsr", runner=tiny_runner).engine == "npu"
        assert build_backend("edsr", runner=tiny_runner).component is Component.NPU
        gpu = build_backend("bilinear_gpu")
        assert (gpu.engine, gpu.component) == ("gpu", Component.GPU)
        cpu = build_backend("bicubic_cpu")
        assert (cpu.engine, cpu.component) == ("cpu", Component.CPU)


class TestExecution:
    def test_neural_upscale_matches_runner(self, tiny_runner, rng):
        backend = build_backend("edsr", runner=tiny_runner)
        img = rng.uniform(size=(12, 16, 3))
        np.testing.assert_array_equal(
            backend.upscale(img), tiny_runner.upscale(img)
        )

    def test_neural_batch_shape(self, tiny_runner, rng):
        backend = build_backend("edsr", runner=tiny_runner)
        tiles = rng.uniform(size=(3, 8, 8, 3))
        out = backend.upscale_batch(tiles)
        assert out.shape == (3, 16, 16, 3)

    def test_interp_batch_matches_per_tile_filter(self, rng):
        tiles = rng.uniform(size=(4, 6, 6, 3))
        for name, filt in (("bilinear_gpu", bilinear), ("bicubic_cpu", bicubic)):
            backend = build_backend(name)
            out = backend.upscale_batch(tiles)
            assert out.shape == (4, 12, 12, 3)
            for i in range(4):
                np.testing.assert_array_equal(out[i], filt(tiles[i], 12, 12))

    def test_interp_empty_batch(self):
        backend = build_backend("bilinear_gpu")
        out = backend.upscale_batch(np.empty((0, 8, 8, 3)))
        assert out.shape == (0, 16, 16, 3)


class TestZooLoader:
    def test_quicksrnet_trains_and_caches(self):
        from repro.cache import cache_dir
        from repro.neural.models import QuickSRNet
        from repro.sr.pretrained import zoo_sr_model

        model = zoo_sr_model("quicksrnet", profile="tiny")
        assert isinstance(model, QuickSRNet)
        path = cache_dir() / "weights" / "quicksrnet_tiny_x2.npz"
        assert path.exists()
        again = zoo_sr_model("quicksrnet", profile="tiny")
        state = model.state_dict()
        for key, value in again.state_dict().items():
            np.testing.assert_array_equal(value, state[key])

    def test_edsr_int8_is_quantized_default_weights(self, tiny_model):
        from repro.neural.models import QuantizedEDSR
        from repro.sr.pretrained import zoo_sr_model

        model = zoo_sr_model("edsr_int8", profile="tiny")
        assert isinstance(model, QuantizedEDSR)
        assert model.quantized is True

    def test_unknown_arch_rejected(self):
        from repro.sr.pretrained import zoo_sr_model

        with pytest.raises(ValueError, match="unknown zoo architecture"):
            zoo_sr_model("espcn", profile="tiny")
