"""GOP-reuse primitives: HR warp, dirty mask, composite, cache, windows."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.motion import compensate
from repro.sr.gop_reuse import (
    REUSE_DIRTY_THRESHOLD,
    GOPSRCache,
    composite_blocks,
    dirty_block_mask,
    warp_hr,
)


class TestWarpHR:
    @pytest.mark.parametrize("shape", [(32, 48), (27, 41)])
    def test_matches_per_channel_compensate(self, rng, shape):
        """warp_hr is codec motion compensation, vectorized over channels."""
        h, w = shape
        block = 8
        nby, nbx = -(-h // block), -(-w // block)
        reference = rng.random((h, w, 3))
        mv = rng.integers(-6, 7, size=(nby, nbx, 2))
        expected = np.stack(
            [compensate(reference[:, :, c], mv, block) for c in range(3)],
            axis=-1,
        )
        np.testing.assert_array_equal(warp_hr(reference, mv, block), expected)

    def test_zero_motion_is_identity(self, rng):
        reference = rng.random((24, 24, 3))
        mv = np.zeros((3, 3, 2), dtype=np.int64)
        np.testing.assert_array_equal(warp_hr(reference, mv, 8), reference)

    def test_displacement_clamps_at_edges(self, rng):
        reference = rng.random((8, 8, 3))
        mv = np.full((1, 1, 2), 100, dtype=np.int64)
        out = warp_hr(reference, mv, 8)
        # Every read clamps to the bottom-right pixel.
        np.testing.assert_array_equal(out, np.broadcast_to(reference[-1, -1], out.shape))

    def test_rejects_undersized_grid(self, rng):
        with pytest.raises(ValueError):
            warp_hr(rng.random((32, 32, 3)), np.zeros((2, 2, 2), dtype=np.int64), 8)
        with pytest.raises(ValueError):
            warp_hr(rng.random((8, 8, 3)), np.zeros((1, 1, 2), dtype=np.int64), 0)


class TestDirtyBlockMask:
    def test_threshold_zero_marks_everything(self):
        energy = np.zeros((3, 4))
        counts = np.full((3, 4), 64)
        assert dirty_block_mask(energy, counts, 0.0).all()

    def test_huge_threshold_marks_nothing(self, rng):
        energy = rng.random((3, 4))
        counts = np.full((3, 4), 64)
        assert not dirty_block_mask(energy, counts, 1e9).any()

    def test_per_pixel_normalization_respects_ragged_blocks(self):
        # Same total energy, different pixel counts: only the small block
        # crosses the per-pixel threshold.
        energy = np.array([[1.0, 1.0]])
        counts = np.array([[64, 15]])
        mask = dirty_block_mask(energy, counts, 1.0 / 32)
        assert mask.tolist() == [[False, True]]

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            dirty_block_mask(np.zeros((1, 1)), np.ones((1, 1), dtype=int), -1.0)

    def test_default_threshold_splits_noise_from_texture(self):
        counts = np.full((1, 2), 64)
        quantization_noise = 0.1 * REUSE_DIRTY_THRESHOLD * 64
        real_change = 10.0 * REUSE_DIRTY_THRESHOLD * 64
        mask = dirty_block_mask(
            np.array([[quantization_noise, real_change]]), counts,
            REUSE_DIRTY_THRESHOLD,
        )
        assert mask.tolist() == [[False, True]]


class TestCompositeBlocks:
    def test_overwrites_only_masked_blocks(self, rng):
        canvas = rng.random((16, 24, 3))
        before = canvas.copy()
        source = rng.random((16, 24, 3))
        mask = np.zeros((2, 3), dtype=bool)
        mask[0, 1] = mask[1, 2] = True
        out = composite_blocks(canvas, source, mask, 8)
        assert out is canvas  # in place, returned for chaining
        np.testing.assert_array_equal(canvas[0:8, 8:16], source[0:8, 8:16])
        np.testing.assert_array_equal(canvas[8:16, 16:24], source[8:16, 16:24])
        np.testing.assert_array_equal(canvas[:, 0:8], before[:, 0:8])
        np.testing.assert_array_equal(canvas[0:8, 16:24], before[0:8, 16:24])

    def test_ragged_edge_blocks(self, rng):
        canvas = rng.random((13, 19, 3))
        source = rng.random((13, 19, 3))
        mask = np.ones((2, 3), dtype=bool)
        composite_blocks(canvas, source, mask, 8)
        np.testing.assert_array_equal(canvas, source)

    def test_rejects_undersized_mask(self, rng):
        with pytest.raises(ValueError):
            composite_blocks(
                np.zeros((16, 16, 3)), np.zeros((16, 16, 3)),
                np.ones((1, 1), dtype=bool), 8,
            )


class TestGOPSRCache:
    def test_refresh_reason_matrix(self):
        cache = GOPSRCache()
        # Cold cache: any frame refreshes; I-frames report reference_frame.
        assert cache.refresh_reason(0, True) == "reference_frame"
        assert cache.refresh_reason(1, False) == "cold_cache"
        cache.store(np.zeros((4, 4, 3)), 1)
        # Intact chain: the very next P-frame may warp-reuse.
        assert cache.refresh_reason(2, False) is None
        # I-frames always refresh, even with a warm continuous cache.
        assert cache.refresh_reason(2, True) == "reference_frame"
        # A skipped/dropped frame leaves an index gap: chain break.
        assert cache.refresh_reason(4, False) == "chain_break"
        assert cache.refresh_reason(1, False) == "chain_break"

    def test_reset_clears_chain(self):
        cache = GOPSRCache()
        cache.store(np.zeros((4, 4, 3)), 7)
        assert cache.refresh_reason(8, False) is None
        cache.reset()
        assert cache.hr is None
        assert cache.refresh_reason(8, False) == "cold_cache"

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            GOPSRCache(threshold=-1e-9)


class TestUpscaleWindows:
    def test_whole_image_window_matches_upscale(self, tiny_runner, rng):
        """One halo-0 window covering the frame == plain full inference."""
        image = rng.random((16, 16, 3))
        tiles = tiny_runner.upscale_windows(
            image, np.zeros((1, 2), dtype=np.int64), tile=16, halo=0
        )
        np.testing.assert_array_equal(tiles[0], tiny_runner.upscale(image))

    def test_empty_origins(self, tiny_runner, rng):
        out = tiny_runner.upscale_windows(
            rng.random((16, 16, 3)), np.empty((0, 2), dtype=np.int64), tile=8
        )
        s = tiny_runner.scale
        assert out.shape == (0, 8 * s, 8 * s, 3)

    def test_window_stack_shape_and_order(self, tiny_runner, rng):
        image = rng.random((24, 32, 3))
        origins = np.array([[8, 16], [0, 0], [16, 24]], dtype=np.int64)
        s = tiny_runner.scale
        tiles = tiny_runner.upscale_windows(image, origins, tile=8, halo=4)
        assert tiles.shape == (3, 8 * s, 8 * s, 3)
        # Order preserved: each window's halo-padded forward individually.
        solo = tiny_runner.upscale_windows(
            image, origins[1:2], tile=8, halo=4
        )
        np.testing.assert_array_equal(tiles[1], solo[0])

    def test_edge_window_reads_padding(self, tiny_runner, rng):
        image = rng.random((20, 20, 3))
        # Window runs 4 px past the bottom-right corner.
        tiles = tiny_runner.upscale_windows(
            image, np.array([[16, 16]], dtype=np.int64), tile=8, halo=2
        )
        s = tiny_runner.scale
        assert tiles.shape == (1, 8 * s, 8 * s, 3)
        assert np.isfinite(tiles).all()

    def test_rejects_bad_args(self, tiny_runner, rng):
        image = rng.random((16, 16, 3))
        origins = np.zeros((1, 2), dtype=np.int64)
        with pytest.raises(ValueError):
            tiny_runner.upscale_windows(image, origins, tile=0)
        with pytest.raises(ValueError):
            tiny_runner.upscale_windows(image, origins, tile=8, halo=-1)
        with pytest.raises(ValueError):
            tiny_runner.upscale_windows(image, origins, tile=8, batch_size=0)
        with pytest.raises(ValueError):
            tiny_runner.upscale_windows(
                image, np.array([[-1, 0]], dtype=np.int64), tile=8
            )
