"""Batched tiled inference: equivalence with whole-frame and loop paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.psnr import psnr
from repro.neural.tensor import set_inference_dtype


@pytest.fixture
def frame(rng) -> np.ndarray:
    # Smooth-ish content so PSNR comparisons are meaningful, plus noise so
    # nothing is accidentally constant.
    yy, xx = np.mgrid[0:40, 0:56]
    base = 0.5 + 0.3 * np.sin(yy / 7.0) * np.cos(xx / 9.0)
    return np.clip(base[:, :, None] + rng.normal(scale=0.05, size=(40, 56, 3)), 0, 1)


def _interior(img: np.ndarray, margin: int) -> np.ndarray:
    return img[margin:-margin, margin:-margin]


class TestBatchedEquivalence:
    def test_interior_matches_whole_frame(self, tiny_runner, frame):
        # With overlap >= the model's receptive-field radius, every pixel
        # away from the frame border sees an identical receptive field
        # whether it came from a tile or the whole frame.
        s = tiny_runner.scale
        whole = tiny_runner.upscale(frame)
        tiled = tiny_runner.upscale_tiled(frame, tile=32, overlap=8)
        assert tiled.shape == whole.shape
        margin = 10 * s
        np.testing.assert_allclose(
            _interior(tiled, margin), _interior(whole, margin), rtol=0, atol=1e-5
        )
        # Edge pixels differ (reflect halo vs conv zero-padding) but must
        # stay visually identical — this is the seam-free guarantee.
        assert psnr(whole, tiled.astype(np.float64)) >= 40.0

    def test_batched_matches_loop_path(self, tiny_runner, frame):
        s = tiny_runner.scale
        batched = tiny_runner.upscale_tiled(frame, tile=32, overlap=8)
        loop = tiny_runner.upscale_tiled(frame, tile=32, overlap=8, batched=False)
        margin = 10 * s
        np.testing.assert_allclose(
            _interior(batched, margin), _interior(loop, margin), rtol=0, atol=1e-5
        )
        assert psnr(loop, batched.astype(np.float64)) >= 40.0

    def test_oversized_tile_degrades_to_whole_frame(self, tiny_runner, frame):
        # Per-axis clamping: a tile larger than the frame with no overlap is
        # exactly one whole-frame forward — identical to upscale().
        h, w = frame.shape[:2]
        whole = tiny_runner.upscale(frame)
        tiled = tiny_runner.upscale_tiled(frame, tile=4 * max(h, w), overlap=0)
        np.testing.assert_array_equal(tiled, whole)

    def test_batch_size_chunking_is_equivalent(self, tiny_runner, frame):
        one = tiny_runner.upscale_tiled(frame, tile=24, overlap=4, batch_size=1)
        many = tiny_runner.upscale_tiled(frame, tile=24, overlap=4, batch_size=64)
        np.testing.assert_allclose(one, many, rtol=0, atol=1e-5)

    def test_f32_tiled_agrees_with_f64(self, tiny_runner, frame):
        out_f32 = tiny_runner.upscale_tiled(frame, tile=32, overlap=8)
        prev = set_inference_dtype(np.float64)
        try:
            out_f64 = tiny_runner.upscale_tiled(frame, tile=32, overlap=8)
        finally:
            set_inference_dtype(prev)
        assert out_f32.dtype == np.float32
        assert out_f64.dtype == np.float64
        assert psnr(out_f64, out_f32.astype(np.float64)) >= 60.0


class TestBatchedInterface:
    def test_grayscale_roundtrip(self, rng):
        from repro.neural.models import EDSR
        from repro.sr.runner import SRRunner

        runner = SRRunner(EDSR(scale=2, n_resblocks=1, n_feats=4, channels=1, seed=0))
        img = rng.uniform(size=(20, 28))
        out = runner.upscale_tiled(img, tile=16, overlap=4)
        assert out.shape == (40, 56)

    def test_output_clipped_to_unit_range(self, tiny_runner, frame):
        out = tiny_runner.upscale_tiled(frame, tile=32, overlap=8)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_tile_too_small_for_overlap_rejected(self, tiny_runner, frame):
        with pytest.raises(ValueError, match="too small"):
            tiny_runner.upscale_tiled(frame, tile=16, overlap=8)

    def test_bad_batch_size_rejected(self, tiny_runner, frame):
        with pytest.raises(ValueError, match="batch_size"):
            tiny_runner.upscale_tiled(frame, tile=32, overlap=8, batch_size=0)


class TestUpscaleWindowsEdgeCases:
    def test_empty_window_list(self, tiny_runner, frame):
        out = tiny_runner.upscale_windows(
            frame, np.empty((0, 2), dtype=np.int64), tile=16
        )
        s = tiny_runner.scale
        assert out.shape == (0, 16 * s, 16 * s, 3)

    def test_interior_window_matches_whole_frame(self, tiny_runner, frame):
        # A window whose halo'd receptive field stays inside the frame
        # sees exactly the same context as whole-frame inference.
        s = tiny_runner.scale
        whole = tiny_runner.upscale(frame)
        tile = 16
        oy, ox = 12, 20
        out = tiny_runner.upscale_windows(
            frame, np.array([[oy, ox]]), tile=tile, halo=8
        )
        np.testing.assert_allclose(
            out[0],
            whole[oy * s : (oy + tile) * s, ox * s : (ox + tile) * s],
            rtol=0, atol=1e-5,
        )

    def test_windows_flush_against_borders(self, tiny_runner, frame):
        # Origins at every corner, including the bottom-right where the
        # halo (and for the last one, part of the tile) reads padding.
        h, w = frame.shape[:2]
        tile, s = 16, tiny_runner.scale
        origins = np.array(
            [[0, 0], [0, w - tile], [h - tile, 0], [h - tile, w - tile]]
        )
        out = tiny_runner.upscale_windows(frame, origins, tile=tile, halo=8)
        assert out.shape == (4, tile * s, tile * s, 3)
        assert np.isfinite(out).all()
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_window_overhanging_frame_edge(self, tiny_runner, frame):
        # Tile size not dividing the RoI: the last window starts inside
        # the frame but runs past its edge and must read reflect/edge
        # padding instead of raising.
        h, w = frame.shape[:2]
        tile, s = 16, tiny_runner.scale
        origins = np.array([[h - 7, w - 5]])  # 9 + 11 px of overhang
        out = tiny_runner.upscale_windows(frame, origins, tile=tile, halo=4)
        assert out.shape == (1, tile * s, tile * s, 3)
        assert np.isfinite(out).all()

    def test_origin_order_preserved_and_chunking_equivalent(
        self, tiny_runner, frame
    ):
        origins = np.array([[8, 8], [0, 24], [20, 4]])
        a = tiny_runner.upscale_windows(frame, origins, tile=12, halo=4)
        b = tiny_runner.upscale_windows(
            frame, origins, tile=12, halo=4, batch_size=1
        )
        np.testing.assert_allclose(a, b, rtol=0, atol=1e-6)
        # Reversing the origins reverses the output stack.
        c = tiny_runner.upscale_windows(frame, origins[::-1], tile=12, halo=4)
        np.testing.assert_allclose(c, a[::-1], rtol=0, atol=1e-6)

    def test_negative_origin_rejected(self, tiny_runner, frame):
        with pytest.raises(ValueError, match=">= 0"):
            tiny_runner.upscale_windows(frame, np.array([[-1, 0]]), tile=8)


class TestUpscaleBatch:
    def test_empty_stack(self, tiny_runner):
        s = tiny_runner.scale
        out = tiny_runner.upscale_batch(np.empty((0, 12, 10, 3)))
        assert out.shape == (0, 12 * s, 10 * s, 3)

    def test_matches_per_image_upscale(self, tiny_runner, rng):
        tiles = rng.uniform(size=(3, 10, 12, 3))
        batched = tiny_runner.upscale_batch(tiles)
        for i in range(3):
            np.testing.assert_allclose(
                batched[i], tiny_runner.upscale(tiles[i]), rtol=0, atol=1e-5
            )

    def test_chunking_equivalent(self, tiny_runner, rng):
        tiles = rng.uniform(size=(5, 8, 8, 3))
        a = tiny_runner.upscale_batch(tiles, batch_size=2)
        b = tiny_runner.upscale_batch(tiles, batch_size=64)
        np.testing.assert_allclose(a, b, rtol=0, atol=1e-6)

    def test_bad_batch_size_rejected(self, tiny_runner, rng):
        with pytest.raises(ValueError, match="batch_size"):
            tiny_runner.upscale_batch(rng.uniform(size=(1, 8, 8, 3)), batch_size=0)
