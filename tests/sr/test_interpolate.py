"""Classical interpolation filters."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sr.interpolate import FILTERS, bicubic, bilinear, lanczos, nearest, resize, upscale


@pytest.fixture
def gradient_image():
    xs = np.linspace(0, 1, 16)
    return np.tile(xs, (12, 1))


class TestCommonBehaviour:
    @pytest.mark.parametrize("method", sorted(FILTERS))
    def test_identity_at_same_size(self, method, rng):
        img = rng.uniform(size=(9, 13))
        out = resize(img, 9, 13, method)
        np.testing.assert_allclose(out, img, atol=1e-9)

    @pytest.mark.parametrize("method", sorted(FILTERS))
    def test_constant_image_preserved(self, method):
        img = np.full((8, 10), 0.37)
        out = resize(img, 16, 20, method)
        np.testing.assert_allclose(out, 0.37, atol=1e-9)

    @pytest.mark.parametrize("method", sorted(FILTERS))
    def test_color_channels_independent(self, method, rng):
        img = rng.uniform(size=(8, 8, 3))
        out = resize(img, 16, 16, method)
        for c in range(3):
            np.testing.assert_allclose(
                out[..., c], resize(img[..., c], 16, 16, method), atol=1e-12
            )

    @pytest.mark.parametrize("method", sorted(FILTERS))
    def test_downscale(self, method, rng):
        img = rng.uniform(size=(16, 16))
        assert resize(img, 8, 8, method).shape == (8, 8)

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown filter"):
            resize(np.ones((4, 4)), 8, 8, "sinc42")

    def test_size_validation(self):
        with pytest.raises(ValueError):
            resize(np.ones((4, 4)), 0, 8)
        with pytest.raises(ValueError):
            upscale(np.ones((4, 4)), 0)
        with pytest.raises(ValueError):
            bilinear(np.ones(4), 8, 8)


class TestNearest:
    def test_2x_duplicates_pixels(self):
        img = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = nearest(img, 4, 4)
        np.testing.assert_array_equal(out, [[1, 1, 2, 2], [1, 1, 2, 2], [3, 3, 4, 4], [3, 3, 4, 4]])


class TestBilinear:
    def test_midpoint_average(self):
        img = np.array([[0.0, 1.0]])
        out = bilinear(img, 1, 4)
        # Output centres land at source coords -0.25, 0.25, 0.75, 1.25.
        np.testing.assert_allclose(out[0], [0.0, 0.25, 0.75, 1.0])

    def test_preserves_linear_ramp(self, gradient_image):
        out = bilinear(gradient_image, 12, 32)
        diffs = np.diff(out[6])
        assert (diffs >= -1e-9).all()  # still monotone

    def test_range_bounded(self, rng):
        img = rng.uniform(size=(6, 6))
        out = bilinear(img, 18, 18)
        assert out.min() >= img.min() - 1e-9 and out.max() <= img.max() + 1e-9


class TestHigherOrder:
    def test_bicubic_sharper_than_bilinear_on_edge(self):
        img = np.zeros((8, 16))
        img[:, 8:] = 1.0
        bl = bilinear(img, 8, 64)
        bc = bicubic(img, 8, 64)
        # Bicubic transitions faster across the edge (fewer mid-level pixels).
        assert ((bc > 0.2) & (bc < 0.8)).sum() <= ((bl > 0.2) & (bl < 0.8)).sum()

    def test_bicubic_can_overshoot(self):
        img = np.zeros((4, 8))
        img[:, 4:] = 1.0
        out = bicubic(img, 4, 32)
        assert out.min() < -1e-6 or out.max() > 1 + 1e-6

    def test_lanczos_taps(self, rng):
        img = rng.uniform(size=(8, 8))
        a = lanczos(img, 16, 16, taps=2)
        b = lanczos(img, 16, 16, taps=3)
        assert not np.allclose(a, b)

    def test_weights_normalized_at_border(self):
        img = np.full((6, 6), 0.5)
        for fn in (bicubic, lanczos):
            out = fn(img, 12, 12)
            np.testing.assert_allclose(out, 0.5, atol=1e-9)


class TestProperties:
    @given(st.integers(2, 12), st.integers(2, 12), st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_upscale_shape(self, h, w, factor):
        out = upscale(np.zeros((h, w)), factor)
        assert out.shape == (h * factor, w * factor)

    @given(st.integers(2, 10))
    @settings(max_examples=15, deadline=None)
    def test_bilinear_mean_preserved_2x(self, n):
        rng = np.random.default_rng(n)
        img = rng.uniform(size=(n, n))
        out = bilinear(img, 2 * n, 2 * n)
        assert abs(out.mean() - img.mean()) < 0.05
