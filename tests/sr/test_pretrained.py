"""Pretrained-model cache: corrupt checkpoints must heal, not crash."""

from __future__ import annotations

import numpy as np
import pytest

from repro.neural.models import EDSR
from repro.neural.serialization import save_weights
from repro.sr import pretrained


@pytest.fixture
def fast_training(monkeypatch, rng):
    """Shrink the training corpus so a forced retrain takes ~a second."""
    frames = [np.clip(rng.uniform(size=(48, 64, 3)), 0, 1) for _ in range(2)]
    monkeypatch.setattr(pretrained, "training_frames", lambda **kw: frames)


def _weights_path(tmp_path):
    return tmp_path / "weights" / "edsr_tiny_x2.npz"


def test_corrupt_weights_cache_retrains(tmp_path, monkeypatch, fast_training):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    path = _weights_path(tmp_path)
    path.parent.mkdir(parents=True)
    path.write_bytes(b"\x04\x00garbage that is definitely not a zip archive")

    # The seed behaviour was an uncaught zipfile.BadZipFile here.
    model = pretrained.default_sr_model(profile="tiny")
    assert isinstance(model, EDSR)
    # The corrupt file was replaced by a fresh, loadable checkpoint.
    reloaded = pretrained.default_sr_model(profile="tiny")
    for (name_a, a), (name_b, b) in zip(
        sorted(model.named_parameters()), sorted(reloaded.named_parameters())
    ):
        assert name_a == name_b
        np.testing.assert_array_equal(a.data, b.data)


def test_truncated_weights_cache_retrains(tmp_path, monkeypatch, fast_training):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    pretrained.default_sr_model(profile="tiny")
    path = _weights_path(tmp_path)
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    assert isinstance(pretrained.default_sr_model(profile="tiny"), EDSR)


def test_valid_cache_loads_without_training(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    blocks, feats = pretrained.model_geometry("tiny")
    trained = EDSR(scale=2, n_resblocks=blocks, n_feats=feats, seed=7)
    path = _weights_path(tmp_path)
    save_weights(trained, path)

    def boom(*args, **kwargs):
        raise AssertionError("training must not run on a cache hit")

    monkeypatch.setattr(pretrained, "train_sr_model", boom)
    model = pretrained.default_sr_model(profile="tiny")
    np.testing.assert_array_equal(model.head.weight.data, trained.head.weight.data)


def test_save_weights_is_atomic_and_leaves_no_temp(tmp_path):
    model = EDSR(scale=2, n_resblocks=1, n_feats=4, seed=0)
    path = tmp_path / "ckpt.npz"
    # Overwriting a garbage file must go through a temp + rename, never a
    # partial in-place write.
    path.write_bytes(b"junk")
    save_weights(model, path)
    loaded = EDSR(scale=2, n_resblocks=1, n_feats=4, seed=1)
    from repro.neural.serialization import load_weights

    load_weights(loaded, path)
    np.testing.assert_array_equal(loaded.head.weight.data, model.head.weight.data)
    assert [p.name for p in tmp_path.iterdir()] == ["ckpt.npz"]
