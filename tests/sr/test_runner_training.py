"""SR inference runner, patch extraction, and training loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.neural.models import EDSR
from repro.sr.pretrained import PROFILES, default_sr_model, model_geometry
from repro.sr.runner import SRRunner
from repro.sr.training import extract_patches, train_sr_model


@pytest.fixture(scope="module")
def fresh_model():
    return EDSR(scale=2, n_resblocks=1, n_feats=8, seed=2)


class TestRunner:
    def test_upscale_shape_and_range(self, fresh_model, rng):
        runner = SRRunner(fresh_model)
        out = runner.upscale(rng.uniform(size=(10, 14, 3)))
        assert out.shape == (20, 28, 3)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_grayscale_roundtrip(self, rng):
        model = EDSR(scale=2, n_resblocks=1, n_feats=8, channels=1)
        out = SRRunner(model).upscale(rng.uniform(size=(8, 8)))
        assert out.shape == (16, 16)

    def test_tiled_matches_whole(self, fresh_model, rng):
        """Overlap-tiling must not change the output away from tile seams."""
        runner = SRRunner(fresh_model)
        img = rng.uniform(size=(24, 36, 3))
        whole = runner.upscale(img)
        tiled = runner.upscale_tiled(img, tile=20, overlap=6)
        assert np.abs(whole - tiled).mean() < 0.01

    def test_tile_validation(self, fresh_model):
        runner = SRRunner(fresh_model)
        with pytest.raises(ValueError, match="tile"):
            runner.upscale_tiled(np.zeros((8, 8, 3)), tile=8, overlap=4)

    def test_scale_inferred_from_model(self, fresh_model):
        assert SRRunner(fresh_model).scale == 2

    def test_invalid_scale(self):
        class NoScale:
            def eval(self):
                return self

        with pytest.raises(ValueError, match="scale"):
            SRRunner(NoScale())


class TestExtractPatches:
    @pytest.fixture(scope="class")
    def hr_frames(self):
        rng = np.random.default_rng(0)
        return [rng.uniform(size=(64, 80, 3)) for _ in range(2)]

    def test_shapes(self, hr_frames):
        ds = extract_patches(hr_frames, scale=2, patch_lr=12, per_frame=6)
        assert len(ds) == 12
        assert ds.lr.shape == (12, 3, 12, 12)
        assert ds.hr.shape == (12, 3, 24, 24)

    def test_lr_is_downsample_of_hr(self, hr_frames):
        """Without codec round-trip, each LR patch ~ downsampled HR patch."""
        from repro.sr.interpolate import resize

        ds = extract_patches(hr_frames, scale=2, patch_lr=12, per_frame=4, seed=5)
        for lr, hr in zip(ds.lr[:4], ds.hr[:4]):
            expected = resize(hr.transpose(1, 2, 0), 12, 12, "bilinear")
            np.testing.assert_allclose(lr.transpose(1, 2, 0), expected, atol=1e-9)

    def test_codec_quality_degrades_lr(self, hr_frames):
        clean = extract_patches(hr_frames, patch_lr=12, per_frame=4, seed=1)
        coded = extract_patches(hr_frames, patch_lr=12, per_frame=4, seed=1, codec_quality=30)
        np.testing.assert_array_equal(clean.hr, coded.hr)  # HR targets unchanged
        assert not np.allclose(clean.lr, coded.lr)

    def test_detail_bias_prefers_textured_regions(self):
        frame = np.zeros((64, 96, 3))
        rng = np.random.default_rng(3)
        frame[:, 48:] = rng.uniform(size=(64, 48, 3))  # right half textured
        ds = extract_patches([frame], patch_lr=10, per_frame=8, seed=0, detail_bias=1.0)
        assert ds.hr.var(axis=(1, 2, 3)).min() > 1e-3

    def test_batches_cover_dataset(self, hr_frames):
        ds = extract_patches(hr_frames, patch_lr=12, per_frame=5)
        batches = list(ds.batches(4, np.random.default_rng(0)))
        assert sum(len(b[0]) for b in batches) == len(ds)

    def test_validation(self, hr_frames):
        with pytest.raises(ValueError):
            extract_patches([])
        with pytest.raises(ValueError):
            extract_patches(hr_frames, patch_lr=4)
        with pytest.raises(ValueError, match="smaller"):
            extract_patches([np.zeros((10, 10, 3))], patch_lr=24)


class TestTraining:
    def test_loss_decreases(self):
        rng = np.random.default_rng(0)
        frames = [rng.uniform(size=(48, 48, 3)) for _ in range(2)]
        ds = extract_patches(frames, patch_lr=12, per_frame=8, seed=0)
        model = EDSR(scale=2, n_resblocks=1, n_feats=8, seed=1)
        report = train_sr_model(model, ds, epochs=4, batch_size=4, lr=2e-3)
        assert report.final_loss < report.initial_loss
        assert report.epochs == 4 and report.n_patches == 16

    def test_model_left_in_eval_mode(self):
        rng = np.random.default_rng(0)
        ds = extract_patches([rng.uniform(size=(48, 48, 3))], patch_lr=12, per_frame=4)
        model = EDSR(scale=2, n_resblocks=1, n_feats=8)
        train_sr_model(model, ds, epochs=1)
        assert not model.training

    def test_epoch_validation(self):
        rng = np.random.default_rng(0)
        ds = extract_patches([rng.uniform(size=(48, 48, 3))], patch_lr=12, per_frame=2)
        with pytest.raises(ValueError):
            train_sr_model(EDSR(scale=2, n_resblocks=1, n_feats=8), ds, epochs=0)


class TestPretrained:
    def test_profiles_well_formed(self):
        for name in PROFILES:
            blocks, feats = model_geometry(name)
            assert blocks >= 1 and feats >= 1
        assert model_geometry("paper") == (16, 64)

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            model_geometry("huge")
        with pytest.raises(ValueError):
            default_sr_model(profile="huge")

    def test_tiny_model_cached_roundtrip(self, tiny_model):
        again = default_sr_model(profile="tiny")
        a = tiny_model.state_dict()
        b = again.state_dict()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])

    def test_tiny_model_beats_or_matches_bilinear(self, tiny_runner, rng):
        """Even the tiny profile must not be worse than its bilinear skip."""
        from repro.metrics.psnr import psnr
        from repro.render.games import build_game
        from repro.sr.interpolate import bilinear, resize

        hr = build_game("G5").render_frame(1, 128, 96).color
        lr = resize(hr, 48, 64, "bilinear")
        sr = tiny_runner.upscale(lr)
        bl = bilinear(lr, 96, 128)
        assert psnr(hr, sr) > psnr(hr, bl) - 0.3
