"""PSNR / SSIM / LPIPS surrogate and the aggregate report."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    ACCEPTABLE_PSNR_DB,
    PERCEPTIBLE_LPIPS_DIFFERENCE,
    QualityReport,
    compare_sequences,
    lpips,
    mse,
    psnr,
    ssim,
)
from repro.sr.interpolate import bilinear, resize


@pytest.fixture(scope="module")
def photo():
    """A structured test image (checker + gradient) big enough for LPIPS."""
    rng = np.random.default_rng(0)
    ys, xs = np.mgrid[0:96, 0:128]
    base = ((xs // 8 + ys // 8) % 2).astype(np.float64)
    img = np.stack([base, 1 - base, xs / 128.0], axis=-1) * 0.8 + 0.1
    return np.clip(img + rng.normal(scale=0.02, size=img.shape), 0, 1)


class TestPSNR:
    def test_identical_is_infinite(self, photo):
        assert psnr(photo, photo) == float("inf")

    def test_known_mse_relation(self):
        a = np.zeros((10, 10))
        b = np.full((10, 10), 0.1)
        assert mse(a, b) == pytest.approx(0.01)
        assert psnr(a, b) == pytest.approx(20.0)

    def test_data_range(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 25.5)
        assert psnr(a, b, data_range=255) == pytest.approx(20.0)

    def test_monotone_in_noise(self, photo, rng):
        small = np.clip(photo + rng.normal(scale=0.01, size=photo.shape), 0, 1)
        large = np.clip(photo + rng.normal(scale=0.1, size=photo.shape), 0, 1)
        assert psnr(photo, small) > psnr(photo, large)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((4, 4)), np.zeros((4, 5)))
        with pytest.raises(ValueError):
            psnr(np.zeros((4, 4)), np.zeros((4, 4)), data_range=0)

    def test_acceptability_constant(self):
        assert ACCEPTABLE_PSNR_DB == 30.0


class TestSSIM:
    def test_identical_is_one(self, photo):
        assert ssim(photo, photo) == pytest.approx(1.0)

    def test_noise_lowers_ssim(self, photo, rng):
        noisy = np.clip(photo + rng.normal(scale=0.1, size=photo.shape), 0, 1)
        assert ssim(photo, noisy) < 0.95

    def test_blur_lowers_ssim(self, photo):
        blurred = bilinear(resize(photo, 48, 64, "bilinear"), 96, 128)
        assert ssim(photo, blurred) < ssim(photo, photo)

    def test_contrast_change_detected(self, photo):
        assert ssim(photo, np.clip(photo * 0.5, 0, 1)) < 0.9

    def test_validation(self, photo):
        with pytest.raises(ValueError):
            ssim(photo, photo[:50])
        with pytest.raises(ValueError):
            ssim(np.zeros((3, 3)), np.zeros((3, 3)), window=7)
        with pytest.raises(ValueError):
            ssim(photo, photo, data_range=0)


class TestLPIPS:
    def test_identical_is_zero(self, photo):
        assert lpips(photo, photo) == pytest.approx(0.0, abs=1e-12)

    def test_range(self, photo, rng):
        other = rng.uniform(size=photo.shape)
        value = lpips(photo, other)
        assert 0.0 < value < 4.0  # unit-normalized features bound the per-scale distance by 4

    def test_blur_scores_worse_than_mild_noise(self, photo, rng):
        """The property the paper's Fig. 14b rests on: repeated-bilinear
        detail loss is perceptually worse than equal-MSE noise."""
        blurred = bilinear(resize(photo, 24, 32, "bilinear"), 96, 128)
        blur_mse = mse(photo, blurred)
        noisy = np.clip(photo + rng.normal(scale=np.sqrt(blur_mse), size=photo.shape), 0, 1)
        assert lpips(photo, blurred) > lpips(photo, noisy)

    def test_monotone_in_blur(self, photo):
        mild = bilinear(resize(photo, 48, 64, "bilinear"), 96, 128)
        severe = bilinear(resize(photo, 12, 16, "bilinear"), 96, 128)
        assert lpips(photo, severe) > lpips(photo, mild)

    def test_too_small_image_rejected(self):
        tiny = np.zeros((16, 16, 3))
        with pytest.raises(ValueError, match="too small"):
            lpips(tiny, tiny)

    def test_shape_mismatch(self, photo):
        with pytest.raises(ValueError):
            lpips(photo, photo[:64])

    def test_perceptibility_constant(self):
        assert PERCEPTIBLE_LPIPS_DIFFERENCE == 0.15


class TestReport:
    def test_compare_sequences(self, photo, rng):
        noisy = [np.clip(photo + rng.normal(scale=0.03, size=photo.shape), 0, 1) for _ in range(3)]
        report = compare_sequences([photo] * 3, noisy)
        assert len(report) == 3
        assert report.mean_psnr > 25
        assert 0 < report.mean_lpips < 1
        assert report.min_psnr <= report.mean_psnr

    def test_length_mismatch(self, photo):
        with pytest.raises(ValueError):
            compare_sequences([photo], [photo, photo])

    def test_skip_expensive_metrics(self, photo):
        report = compare_sequences([photo], [photo], with_lpips=False, with_ssim=False)
        assert report.mean_lpips == 0.0 and report.mean_ssim == 1.0

    def test_report_identical_means(self, photo):
        report = compare_sequences([photo], [photo])
        assert report.mean_psnr == float("inf")


class TestProperties:
    @given(st.floats(0.01, 0.3))
    @settings(max_examples=10, deadline=None)
    def test_psnr_from_uniform_shift(self, delta):
        a = np.zeros((8, 8))
        b = np.full((8, 8), delta)
        assert psnr(a, b) == pytest.approx(-20 * np.log10(delta), rel=1e-9)
