"""Energy model and the paper's Fig. 11/12 consistency checks."""

from __future__ import annotations

import pytest

from repro.platform import calibration as cal
from repro.platform import latency as lat
from repro.platform.device import pixel_7_pro, samsung_tab_s8
from repro.platform.energy import (
    Component,
    EnergyBreakdown,
    component_power_w,
    overhead_mj,
    stage_energy_mj,
)


class TestBreakdownMath:
    def test_total_and_shares(self):
        b = EnergyBreakdown(decode=10, upscale=70, network=10, display=10)
        assert b.total == 100
        shares = b.shares()
        assert shares["upscale"] == pytest.approx(0.7)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_add_and_scale(self):
        a = EnergyBreakdown(1, 2, 3, 4)
        b = (a + a).scaled(0.5)
        assert b.total == pytest.approx(a.total)

    def test_mean(self):
        a = EnergyBreakdown(0, 0, 0, 0)
        b = EnergyBreakdown(2, 2, 2, 2)
        assert EnergyBreakdown.mean([a, b]).total == pytest.approx(4.0)
        with pytest.raises(ValueError):
            EnergyBreakdown.mean([])

    def test_zero_total_shares(self):
        with pytest.raises(ValueError):
            EnergyBreakdown(0, 0, 0, 0).shares()

    def test_stage_energy(self):
        device = pixel_7_pro()
        assert stage_energy_mj(device, Component.NPU, 10.0) == pytest.approx(
            10.0 * device.npu_power_w
        )
        with pytest.raises(ValueError):
            stage_energy_mj(device, Component.NPU, -1.0)

    def test_all_components_priced(self):
        device = samsung_tab_s8()
        for component in Component:
            assert component_power_w(device, component) > 0


def analytic_frame_energy(device, design: str, is_reference: bool) -> EnergyBreakdown:
    """Per-frame energy straight from the calibrated stage model."""
    lr_px = cal.INPUT_720P_PX
    hr_px = lr_px * 4
    roi_px = 300 * 300
    rx_mj = 2.5 * device.network_rx_power_w  # ~25 KB at 80 Mbps
    if design == "ours":
        upscale = (
            lat.npu_sr_latency_ms(roi_px, device) * device.npu_power_w
            + (lat.gpu_bilinear_ms(lr_px - roi_px, device) + lat.merge_ms(hr_px, device))
            * device.gpu_power_w
        )
        decode = lat.decode_ms(lr_px, device, hardware=True) * device.hw_decoder_power_w
    else:  # NEMO
        decode = lat.decode_ms(lr_px, device, hardware=False) * device.cpu_power_w
        if is_reference:
            upscale = lat.npu_sr_latency_ms(lr_px, device) * device.npu_power_w
        else:
            upscale = lat.cpu_bilinear_ms(lr_px, device) * device.cpu_power_w
            decode += lat.cpu_warp_ms(hr_px, device) * cal.RECON_POWER_W
    return EnergyBreakdown(
        decode=decode, upscale=upscale, network=rx_mj, display=overhead_mj(device)
    )


def gop60(device, design: str) -> EnergyBreakdown:
    ref = analytic_frame_energy(device, design, True)
    nonref = analytic_frame_energy(device, design, False)
    return (ref + nonref.scaled(59)).scaled(1 / 60)


class TestPaperEnergyShapes:
    """Fig. 11/12: savings 26 % (S8) / 33 % (Pixel); ours upscale ~85 %,
    decode ~6 %; SOTA decode ~46 %; ours upscale slightly above SOTA's."""

    def test_pixel_savings_near_33pct(self):
        device = pixel_7_pro()
        savings = 1 - gop60(device, "ours").total / gop60(device, "nemo").total
        assert savings == pytest.approx(0.33, abs=0.04)

    def test_s8_savings_near_26pct(self):
        device = samsung_tab_s8()
        savings = 1 - gop60(device, "ours").total / gop60(device, "nemo").total
        assert savings == pytest.approx(0.26, abs=0.04)

    def test_s8_saves_less_than_pixel(self):
        """Paper: the tablet's larger panel dilutes the savings."""
        s8 = 1 - gop60(samsung_tab_s8(), "ours").total / gop60(samsung_tab_s8(), "nemo").total
        px = 1 - gop60(pixel_7_pro(), "ours").total / gop60(pixel_7_pro(), "nemo").total
        assert s8 < px

    def test_ours_upscale_dominates(self):
        shares = gop60(pixel_7_pro(), "ours").shares()
        assert shares["upscale"] == pytest.approx(0.85, abs=0.06)
        assert shares["decode"] == pytest.approx(0.06, abs=0.03)

    def test_sota_decode_dominant(self):
        shares = gop60(pixel_7_pro(), "nemo").shares()
        assert shares["decode"] == pytest.approx(0.46, abs=0.08)

    def test_ours_upscale_slightly_higher_than_sota(self):
        ours = gop60(pixel_7_pro(), "ours").upscale
        sota = gop60(pixel_7_pro(), "nemo").upscale
        assert 1.0 < ours / sota < 1.5

    def test_display_network_equal_across_designs(self):
        device = pixel_7_pro()
        assert gop60(device, "ours").display == gop60(device, "nemo").display
