"""Device profiles, latency model (paper anchors), probe, eye tracking."""

from __future__ import annotations

import pytest

from repro.platform import calibration as cal
from repro.platform.benchmark import max_realtime_roi_side, probe_latency_curve
from repro.platform.device import DisplaySpec, get_device, pixel_7_pro, samsung_tab_s8
from repro.platform.eyetracking import eyetracking_cost
from repro.platform.latency import (
    cpu_bilinear_ms,
    cpu_warp_ms,
    decode_ms,
    gpu_bilinear_ms,
    npu_sr_latency_ms,
    server_gpu_utilization,
    transmission_ms,
)


@pytest.fixture(scope="module")
def s8():
    return samsung_tab_s8()


@pytest.fixture(scope="module")
def pixel():
    return pixel_7_pro()


class TestDevices:
    def test_get_device(self, s8):
        assert get_device("samsung_tab_s8").name == s8.name
        with pytest.raises(ValueError, match="unknown device"):
            get_device("iphone")

    def test_display_specs_match_datasheets(self, s8, pixel):
        assert (s8.display.width_px, s8.display.height_px) == (2560, 1600)
        assert s8.display.ppi == 274.0  # paper's cited GSMArena value
        assert pixel.display.ppi == 512.0

    def test_with_overrides(self, s8):
        slow = s8.with_overrides(npu_a_ms_per_px=s8.npu_a_ms_per_px * 10)
        assert slow.npu_a_ms_per_px > s8.npu_a_ms_per_px
        assert s8.npu_a_ms_per_px == samsung_tab_s8().npu_a_ms_per_px  # original intact

    def test_display_spec_validation(self):
        with pytest.raises(ValueError):
            DisplaySpec(0, 100, 300)
        with pytest.raises(ValueError):
            DisplaySpec(100, 100, -1)


class TestNPUAnchors:
    """The latency model must hit every number the paper publishes."""

    def test_s8_roi_anchor(self, s8):
        assert npu_sr_latency_ms(300 * 300, s8) == pytest.approx(16.2, abs=0.1)

    def test_s8_fullframe_anchor(self, s8):
        # 4.6 FPS reference-frame rate (Sec. V-B) -> 217.4 ms at 720p.
        assert npu_sr_latency_ms(1280 * 720, s8) == pytest.approx(217.4, rel=0.01)

    def test_pixel_roi_anchor(self, pixel):
        assert npu_sr_latency_ms(300 * 300, pixel) == pytest.approx(16.4, abs=0.1)

    def test_pixel_fullframe_anchor(self, pixel):
        # 4.3 FPS -> 232.6 ms (Fig. 10c shows ~233 ms upscaling for SOTA).
        assert npu_sr_latency_ms(1280 * 720, pixel) == pytest.approx(232.6, rel=0.01)

    def test_monotone_in_pixels(self, s8):
        lat = [npu_sr_latency_ms(px, s8) for px in (1e4, 1e5, 5e5, 1e6)]
        assert lat == sorted(lat)

    def test_superlinear_at_scale(self, s8):
        """The saturation term makes 10x pixels cost more than 10x time."""
        ratio = npu_sr_latency_ms(900_000, s8) / npu_sr_latency_ms(90_000, s8)
        assert ratio > 10.0

    def test_negative_pixels_rejected(self, s8):
        with pytest.raises(ValueError):
            npu_sr_latency_ms(-1, s8)


class TestOtherLatencies:
    def test_gpu_bilinear_anchor(self, s8):
        # Fig. 9: non-RoI bilinear on the S8 GPU takes 1.4 ms.
        assert gpu_bilinear_ms(1280 * 720 - 300 * 300, s8) == pytest.approx(1.4, abs=0.05)

    def test_gpu_bilinear_zero_pixels(self, s8):
        assert gpu_bilinear_ms(0, s8) == 0.0

    def test_nemo_nonref_stage_anchor(self, s8):
        # Sec. V-B: MV/residual upscale + HR reconstruction ~= 25 ms = 1.5x ours.
        stage = cpu_bilinear_ms(1280 * 720, s8) + cpu_warp_ms(2560 * 1440, s8)
        assert stage == pytest.approx(25.0, abs=0.5)
        assert stage / 16.2 == pytest.approx(1.5, abs=0.1)

    def test_decoder_hardware_vs_software(self, s8):
        px = 1280 * 720
        assert decode_ms(px, s8, hardware=True) < decode_ms(px, s8, hardware=False)

    def test_server_gpu_utilization_anchors(self):
        # Sec. IV-B2: 79 % at 1440p, 52 % at 720p on the GTX 3080 Ti.
        assert server_gpu_utilization(1280 * 720) == pytest.approx(52.0, rel=0.01)
        assert server_gpu_utilization(2560 * 1440) == pytest.approx(79.0, rel=0.01)

    def test_transmission_scales_with_bytes(self):
        assert transmission_ms(100_000) > transmission_ms(10_000) > transmission_ms(0)
        with pytest.raises(ValueError):
            transmission_ms(-5)
        with pytest.raises(ValueError):
            transmission_ms(10, bandwidth_mbps=0)


class TestProbe:
    def test_max_roi_near_paper_300(self, s8, pixel):
        # Sec. IV-B1: the real-time maximum on both devices is ~300 px.
        assert abs(max_realtime_roi_side(s8) - 300) <= 10
        assert abs(max_realtime_roi_side(pixel) - 300) <= 10

    def test_probe_respects_deadline(self, s8):
        side = max_realtime_roi_side(s8)
        assert npu_sr_latency_ms(side**2, s8) <= cal.REALTIME_DEADLINE_MS
        assert npu_sr_latency_ms((side + 1) ** 2, s8) > cal.REALTIME_DEADLINE_MS

    def test_larger_deadline_larger_window(self, s8):
        assert max_realtime_roi_side(s8, 33.3) > max_realtime_roi_side(s8, 16.66)

    def test_invalid_deadline(self, s8):
        with pytest.raises(ValueError):
            max_realtime_roi_side(s8, 0)

    def test_probe_curve(self, s8):
        curve = probe_latency_curve(s8, [100, 200, 300])
        assert [s for s, _ in curve] == [100, 200, 300]
        assert curve[0][1] < curve[-1][1]


class TestEyeTracking:
    def test_paper_power_anchor(self, pixel):
        # Sec. III-A: the Pixel 7 Pro draws an extra 2.8 W for camera gaze.
        cost = eyetracking_cost(pixel)
        assert cost.power_w == 2.8
        assert cost.energy_per_frame_mj == pytest.approx(2800 / 60, rel=1e-6)

    def test_battery_drain(self, pixel):
        cost = eyetracking_cost(pixel, battery_wh=19.0)
        assert cost.battery_drain_pct_per_hour == pytest.approx(2.8 / 19 * 100, rel=1e-6)

    def test_validation(self, pixel):
        with pytest.raises(ValueError):
            eyetracking_cost(pixel, fps=0)
        with pytest.raises(ValueError):
            eyetracking_cost(pixel, battery_wh=0)

    def test_eyetracking_dwarfs_roi_detection(self, pixel):
        """The paper's motivation: server-side depth RoI costs the client 0 W."""
        assert eyetracking_cost(pixel).power_w > 1.0
