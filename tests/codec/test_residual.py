"""Per-block residual-energy summaries + lazy DecodedFrame internals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.decoder import VideoDecoder
from repro.codec.encoder import VideoEncoder
from repro.codec.residual import block_energy, block_pixel_counts


def naive_block_energy(residual: np.ndarray, block: int) -> np.ndarray:
    sq = residual * residual
    if sq.ndim == 3:
        sq = sq.sum(axis=2)
    h, w = sq.shape
    nby, nbx = -(-h // block), -(-w // block)
    out = np.zeros((nby, nbx))
    for by in range(nby):
        for bx in range(nbx):
            out[by, bx] = sq[
                by * block : (by + 1) * block, bx * block : (bx + 1) * block
            ].sum()
    return out


class TestBlockEnergy:
    @pytest.mark.parametrize("shape", [(16, 24), (13, 19), (8, 8), (5, 8)])
    @pytest.mark.parametrize("block", [4, 8])
    def test_matches_naive_2d(self, rng, shape, block):
        residual = rng.normal(size=shape)
        np.testing.assert_allclose(
            block_energy(residual, block), naive_block_energy(residual, block),
            atol=1e-10,
        )

    def test_matches_naive_rgb(self, rng):
        residual = rng.normal(size=(21, 34, 3))
        np.testing.assert_allclose(
            block_energy(residual, 8), naive_block_energy(residual, 8), atol=1e-10
        )

    def test_zero_residual_zero_energy(self):
        assert not block_energy(np.zeros((16, 16, 3)), 8).any()

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError):
            block_energy(np.zeros((8, 8)), 0)


class TestBlockPixelCounts:
    def test_exact_grid(self):
        np.testing.assert_array_equal(
            block_pixel_counts(16, 24, 8), np.full((2, 3), 64)
        )

    def test_ragged_edges(self):
        counts = block_pixel_counts(13, 19, 8)
        assert counts.shape == (2, 3)
        # Last row is 5 px tall, last column 3 px wide.
        np.testing.assert_array_equal(
            counts, [[64, 64, 24], [40, 40, 15]]
        )
        assert counts.sum() == 13 * 19

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            block_pixel_counts(0, 8, 8)
        with pytest.raises(ValueError):
            block_pixel_counts(8, 8, 0)


@pytest.fixture(scope="module")
def decoded_pair(g3_sequence):
    """(eager reference planes, decoded frames) for an I+P G3 pair."""
    encoder = VideoEncoder(gop_size=4, quality=60)
    encoded = [encoder.encode_frame(f.color) for f in g3_sequence[:3]]
    return VideoDecoder().decode_sequence(encoded)


class TestLazyDecodedFrame:
    def test_i_frame_has_no_residual(self, decoded_pair):
        iframe = decoded_pair[0]
        assert iframe.is_reference
        assert iframe.prediction_rgb is None
        assert iframe.residual_rgb is None
        assert iframe.residual_block_energy(8) is None

    def test_lazy_until_first_access(self, decoded_pair):
        pframe = decoded_pair[1]
        assert not pframe.is_reference
        assert pframe._prediction_rgb is None  # not computed by the decoder
        assert pframe._residual_rgb is None
        prediction = pframe.prediction_rgb
        assert pframe._prediction_rgb is not None
        assert prediction.shape == pframe.rgb.shape

    def test_residual_is_rgb_minus_prediction(self, decoded_pair):
        pframe = decoded_pair[2]
        np.testing.assert_array_equal(
            pframe.residual_rgb, pframe.rgb - pframe.prediction_rgb
        )

    def test_properties_cache_identity(self, decoded_pair):
        pframe = decoded_pair[1]
        assert pframe.prediction_rgb is pframe.prediction_rgb
        assert pframe.residual_rgb is pframe.residual_rgb

    def test_block_energy_cached_per_block_size(self, decoded_pair):
        pframe = decoded_pair[1]
        e8 = pframe.residual_block_energy(8)
        assert pframe.residual_block_energy(8) is e8
        e4 = pframe.residual_block_energy(4)
        assert e4.shape != e8.shape
        np.testing.assert_allclose(e4.sum(), e8.sum(), atol=1e-10)
        np.testing.assert_allclose(
            e8, block_energy(pframe.residual_rgb, 8), atol=0.0
        )
