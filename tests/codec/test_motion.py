"""Block-matching motion estimation and compensation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.motion import compensate, estimate_motion, upscale_motion_vectors


def shifted_pair(rng, dy: int, dx: int, h: int = 32, w: int = 48):
    """(current, reference) where current is reference shifted by (dy, dx)."""
    reference = rng.uniform(size=(h + 16, w + 16))
    cur = reference[8 + dy : 8 + dy + h, 8 + dx : 8 + dx + w]
    ref = reference[8 : 8 + h, 8 : 8 + w]
    return np.ascontiguousarray(cur), np.ascontiguousarray(ref)


class TestEstimation:
    @pytest.mark.parametrize("dy,dx", [(0, 0), (3, 0), (0, -4), (-2, 5), (7, 7)])
    def test_recovers_global_shift(self, rng, dy, dx):
        cur, ref = shifted_pair(rng, dy, dx)
        mv = estimate_motion(cur, ref, block=8, search_radius=7)
        # Interior blocks (away from frame edges) should see the exact shift.
        interior = mv[1:-1, 1:-1]
        assert (interior == np.array([dy, dx])).all()

    def test_zero_motion_on_identical_frames(self, rng):
        frame = rng.uniform(size=(24, 24))
        mv = estimate_motion(frame, frame, block=8, search_radius=4)
        assert (mv == 0).all()

    def test_flat_regions_prefer_zero_motion(self):
        flat = np.ones((16, 16))
        mv = estimate_motion(flat, flat, block=8, search_radius=3)
        assert (mv == 0).all()

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError, match="mismatch"):
            estimate_motion(rng.uniform(size=(16, 16)), rng.uniform(size=(16, 24)))
        with pytest.raises(ValueError, match="2-D"):
            estimate_motion(np.zeros((4, 4, 3)), np.zeros((4, 4, 3)))
        with pytest.raises(ValueError, match="radius"):
            estimate_motion(np.zeros((8, 8)), np.zeros((8, 8)), search_radius=-1)
        with pytest.raises(ValueError, match="method"):
            estimate_motion(np.zeros((8, 8)), np.zeros((8, 8)), method="spiral")


class TestDiamondSearch:
    @pytest.mark.parametrize("dy,dx", [(0, 0), (2, 0), (0, -2), (-1, 1)])
    def test_recovers_one_step_shift(self, rng, dy, dx):
        # Shifts within one LDSP step are found even on a noise surface.
        cur, ref = shifted_pair(rng, dy, dx)
        mv = estimate_motion(cur, ref, search_radius=7, method="diamond")
        interior = mv[1:-1, 1:-1]
        assert (interior == np.array([dy, dx])).all()

    @pytest.mark.parametrize("dy,dx", [(0, -4), (5, 3), (-6, 0)])
    def test_tracks_large_shift_on_smooth_content(self, dy, dx):
        # Multi-step walks need a descending SAD surface (real imagery,
        # not noise).  Diamond is greedy, so a minority of blocks may stop
        # in a local minimum: require most blocks to recover the shift
        # exactly and the prediction error to collapse vs zero motion.
        yy, xx = np.mgrid[0:64, 0:80].astype(np.float64)
        smooth = (
            np.sin(yy / 9.0) + np.cos(xx / 11.0) + np.sin((yy + xx) / 13.0)
        )
        cur = smooth[8 + dy : 8 + dy + 48, 8 + dx : 8 + dx + 64]
        ref = smooth[8 : 8 + 48, 8 : 8 + 64]
        mv = estimate_motion(cur, ref, search_radius=7, method="diamond")
        interior = mv[1:-1, 1:-1]
        exact = (interior == np.array([dy, dx])).all(axis=-1).mean()
        assert exact >= 0.7
        pred_err = np.abs(cur - compensate(ref, mv))[8:-8, 8:-8].mean()
        zero_err = np.abs(cur - ref)[8:-8, 8:-8].mean()
        assert pred_err <= 0.1 * zero_err

    def test_zero_motion_on_identical_frames(self, rng):
        frame = rng.uniform(size=(24, 24))
        mv = estimate_motion(frame, frame, search_radius=4, method="diamond")
        assert (mv == 0).all()

    def test_respects_search_radius(self, rng):
        cur, ref = shifted_pair(rng, 7, 7)
        mv = estimate_motion(cur, ref, search_radius=3, method="diamond")
        assert np.abs(mv).max() <= 3

    def test_radius_zero(self, rng):
        frame = rng.uniform(size=(16, 16))
        mv = estimate_motion(frame, frame, search_radius=0, method="diamond")
        assert (mv == 0).all()


class TestCompensation:
    def test_reconstructs_shifted_frame(self, rng):
        cur, ref = shifted_pair(rng, 2, -3)
        mv = estimate_motion(cur, ref, block=8, search_radius=5)
        pred = compensate(ref, mv, block=8)
        # Interior pixels match exactly (borders clamp).
        np.testing.assert_allclose(pred[8:-8, 8:-8], cur[8:-8, 8:-8])

    def test_zero_motion_identity(self, rng):
        frame = rng.uniform(size=(16, 24))
        mv = np.zeros((2, 3, 2), dtype=np.int64)
        np.testing.assert_array_equal(compensate(frame, mv, block=8), frame)

    def test_mv_grid_shape_validation(self, rng):
        with pytest.raises(ValueError, match="motion vectors"):
            compensate(rng.uniform(size=(16, 16)), np.zeros((3, 3, 2), dtype=np.int64), 8)

    def test_out_of_bounds_mvs_clamp(self):
        frame = np.arange(64, dtype=np.float64).reshape(8, 8)
        mv = np.full((1, 1, 2), 100, dtype=np.int64)
        pred = compensate(frame, mv, block=8)
        assert pred.shape == (8, 8)
        assert pred[0, 0] == frame[-1, -1]  # clamped to the corner


class TestMVUpscaling:
    def test_scales_displacements(self):
        mv = np.array([[[1, -2]]], dtype=np.int64)
        np.testing.assert_array_equal(upscale_motion_vectors(mv, 2), [[[2, -4]]])

    def test_factor_validation(self):
        with pytest.raises(ValueError):
            upscale_motion_vectors(np.zeros((1, 1, 2)), 0)
