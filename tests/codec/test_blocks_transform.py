"""Block reshaping and DCT/quantization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.blocks import block_grid_shape, merge_blocks, pad_to_blocks, split_blocks
from repro.codec.transform import (
    dequantize,
    forward_dct,
    inverse_dct,
    quant_matrix,
    quantize,
)


class TestBlocks:
    @given(st.integers(3, 40), st.integers(3, 40))
    @settings(max_examples=40, deadline=None)
    def test_split_merge_roundtrip(self, h, w):
        plane = np.arange(h * w, dtype=np.float64).reshape(h, w)
        blocks = split_blocks(plane, 8)
        np.testing.assert_array_equal(merge_blocks(blocks, h, w, 8), plane)

    def test_grid_shape(self):
        assert block_grid_shape(16, 24, 8) == (2, 3)
        assert block_grid_shape(17, 25, 8) == (3, 4)

    def test_pad_uses_edge_values(self):
        plane = np.array([[1.0, 2.0], [3.0, 4.0]])
        padded = pad_to_blocks(plane, 4)
        assert padded.shape == (4, 4)
        assert padded[3, 3] == 4.0

    def test_pad_noop_when_aligned(self):
        plane = np.zeros((8, 16))
        assert pad_to_blocks(plane, 8) is plane

    def test_merge_shape_validation(self):
        with pytest.raises(ValueError):
            merge_blocks(np.zeros((3, 8, 8)), 16, 16, 8)

    def test_block_order_row_major(self):
        plane = np.zeros((16, 16))
        plane[0:8, 8:16] = 1.0  # second block in row-major order
        blocks = split_blocks(plane, 8)
        assert blocks[1].mean() == 1.0
        assert blocks[0].mean() == 0.0


class TestDCT:
    def test_roundtrip(self, rng):
        blocks = rng.normal(size=(5, 8, 8)) * 100
        np.testing.assert_allclose(inverse_dct(forward_dct(blocks)), blocks, atol=1e-9)

    def test_dc_coefficient(self):
        flat = np.full((1, 8, 8), 10.0)
        coeffs = forward_dct(flat)
        assert coeffs[0, 0, 0] == pytest.approx(80.0)  # orthonormal: mean * n
        assert np.abs(coeffs[0]).sum() == pytest.approx(80.0)

    def test_energy_preservation(self, rng):
        """Orthonormal DCT preserves the L2 norm (Parseval)."""
        blocks = rng.normal(size=(3, 8, 8))
        coeffs = forward_dct(blocks)
        assert np.sum(coeffs**2) == pytest.approx(np.sum(blocks**2))


class TestQuantization:
    def test_quality_bounds(self):
        with pytest.raises(ValueError):
            quant_matrix(0)
        with pytest.raises(ValueError):
            quant_matrix(101)

    def test_higher_quality_finer_steps(self):
        assert quant_matrix(90).mean() < quant_matrix(50).mean() < quant_matrix(10).mean()

    def test_high_frequencies_coarser(self):
        steps = quant_matrix(50)
        assert steps[7, 7] > steps[0, 0]

    def test_roundtrip_error_bounded_by_step(self, rng):
        coeffs = rng.normal(size=(4, 8, 8)) * 50
        for quality in (30, 60, 90):
            recon = dequantize(quantize(coeffs, quality), quality)
            steps = quant_matrix(quality)
            assert np.all(np.abs(recon - coeffs) <= steps / 2 + 1e-9)

    def test_non_8_block_sizes(self):
        for n in (4, 16):
            steps = quant_matrix(50, n)
            assert steps.shape == (n, n)
            assert np.all(steps >= 1)

    def test_quantize_returns_integers(self, rng):
        levels = quantize(rng.normal(size=(1, 8, 8)) * 10, 50)
        assert levels.dtype == np.int64
