"""Encoder/decoder end-to-end behaviour on real rendered frames."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.color import rgb_to_ycbcr, subsample_chroma, upsample_chroma, ycbcr_to_rgb
from repro.codec.decoder import VideoDecoder
from repro.codec.encoder import VideoEncoder
from repro.metrics.psnr import psnr


@pytest.fixture(scope="module")
def frames(g3_sequence):
    return [out.color for out in g3_sequence]


# re-export session fixture into module scope
@pytest.fixture(scope="module")
def g3_sequence():
    from repro.render.games import build_game

    game = build_game("G3")
    return [game.render_frame(i, 96, 64) for i in range(6)]


class TestColor:
    def test_ycbcr_roundtrip(self, rng):
        rgb = rng.uniform(size=(10, 12, 3))
        y, cb, cr = rgb_to_ycbcr(rgb)
        np.testing.assert_allclose(ycbcr_to_rgb(y, cb, cr), rgb, atol=1e-9)

    def test_luma_range(self, rng):
        y, cb, cr = rgb_to_ycbcr(rng.uniform(size=(6, 6, 3)))
        assert y.min() >= 0 and y.max() <= 1
        assert abs(cb).max() <= 0.5 + 1e-9 and abs(cr).max() <= 0.5 + 1e-9

    def test_chroma_subsample_upsample(self):
        plane = np.tile(np.array([[0.0, 1.0]]), (8, 4))
        sub = subsample_chroma(plane)
        assert sub.shape == (4, 4)
        np.testing.assert_allclose(sub, 0.5)
        up = upsample_chroma(sub, 8, 8)
        assert up.shape == (8, 8)

    def test_odd_dimensions_padded(self):
        sub = subsample_chroma(np.ones((5, 7)))
        assert sub.shape == (3, 4)


class TestGOPStructure:
    def test_frame_type_pattern(self, frames):
        encoder = VideoEncoder(gop_size=3, quality=60)
        encoded = encoder.encode_sequence(frames)
        assert [e.frame_type for e in encoded] == ["I", "P", "P", "I", "P", "P"]

    def test_reference_flag(self, frames):
        encoder = VideoEncoder(gop_size=3, quality=60)
        encoded = encoder.encode_sequence(frames[:3])
        assert encoded[0].is_reference and not encoded[1].is_reference

    def test_p_frames_smaller_than_i(self, frames):
        encoded = VideoEncoder(gop_size=6, quality=60).encode_sequence(frames)
        i_size = encoded[0].size_bytes
        p_sizes = [e.size_bytes for e in encoded[1:]]
        assert max(p_sizes) < i_size

    def test_reset_restarts_gop(self, frames):
        encoder = VideoEncoder(gop_size=10, quality=60)
        encoder.encode_frame(frames[0])
        assert not encoder.next_is_reference
        encoder.reset()
        assert encoder.next_is_reference

    def test_motion_vectors_attached_to_p_frames(self, frames):
        encoded = VideoEncoder(gop_size=6, quality=60).encode_sequence(frames[:2])
        assert encoded[0].motion_vectors is None
        assert encoded[1].motion_vectors is not None
        assert encoded[1].motion_vectors.shape == (8, 12, 2)  # 64/8 x 96/8


class TestRoundTrip:
    @pytest.mark.parametrize("quality,min_db", [(40, 28.0), (70, 30.0), (95, 33.5)])
    def test_quality_scales_fidelity(self, frames, quality, min_db):
        encoded = VideoEncoder(gop_size=3, quality=quality).encode_sequence(frames[:3])
        decoded = VideoDecoder().decode_sequence(encoded)
        for original, recon in zip(frames, decoded):
            assert psnr(original, recon.rgb) >= min_db

    def test_higher_quality_more_bytes(self, frames):
        low = VideoEncoder(gop_size=1, quality=30).encode_frame(frames[0])
        high = VideoEncoder(gop_size=1, quality=90).encode_frame(frames[0])
        assert high.size_bytes > low.size_bytes

    def test_decoder_matches_encoder_reconstruction(self, frames):
        encoder = VideoEncoder(gop_size=6, quality=60)
        decoder = VideoDecoder()
        for frame in frames:
            decoded = decoder.decode_frame(encoder.encode_frame(frame))
        np.testing.assert_allclose(
            decoded.rgb, encoder.last_reconstruction(), atol=1e-9
        )

    def test_p_frame_internals_consistent(self, frames):
        encoded = VideoEncoder(gop_size=6, quality=60).encode_sequence(frames[:2])
        decoded = VideoDecoder().decode_sequence(encoded)
        p = decoded[1]
        assert p.prediction_rgb is not None and p.residual_rgb is not None
        np.testing.assert_allclose(
            p.prediction_rgb + p.residual_rgb, p.rgb, atol=1e-9
        )

    def test_decode_is_pure_function_of_payload(self, frames):
        encoded = VideoEncoder(gop_size=3, quality=60).encode_sequence(frames[:3])
        a = VideoDecoder().decode_sequence(encoded)
        b = VideoDecoder().decode_sequence(encoded)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.rgb, y.rgb)

    def test_long_gop_no_drift(self, frames):
        """Closed-loop prediction: error does not accumulate across P frames."""
        seq = frames * 2  # 12 frames, single GOP
        encoded = VideoEncoder(gop_size=12, quality=70).encode_sequence(seq)
        decoded = VideoDecoder().decode_sequence(encoded)
        first_p = psnr(seq[1], decoded[1].rgb)
        last_p = psnr(seq[-1], decoded[-1].rgb)
        assert last_p > first_p - 3.0


class TestErrors:
    def test_p_frame_before_reference(self, frames):
        encoded = VideoEncoder(gop_size=2, quality=60).encode_sequence(frames[:2])
        decoder = VideoDecoder()
        with pytest.raises(RuntimeError, match="reference"):
            decoder.decode_frame(encoded[1])

    def test_encoder_input_validation(self):
        with pytest.raises(ValueError):
            VideoEncoder(gop_size=0)
        with pytest.raises(ValueError):
            VideoEncoder().encode_frame(np.zeros((8, 8)))
