"""Bit-level I/O."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.bitstream import BitReader, BitWriter


class TestBitWriter:
    def test_single_bits(self):
        w = BitWriter()
        for bit in (1, 0, 1, 1, 0, 0, 0, 1):
            w.write_bit(bit)
        assert w.getvalue() == bytes([0b10110001])

    def test_partial_byte_padded(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        assert w.getvalue() == bytes([0b10100000])
        assert len(w) == 3

    def test_write_bits_msb_first(self):
        w = BitWriter()
        w.write_bits(0xAB, 8)
        assert w.getvalue() == bytes([0xAB])

    def test_unary(self):
        w = BitWriter()
        w.write_unary(3)
        assert w.getvalue() == bytes([0b00010000])

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(1, -1)


class TestBitReader:
    def test_read_bits(self):
        r = BitReader(bytes([0xAB, 0xCD]))
        assert r.read_bits(8) == 0xAB
        assert r.read_bits(4) == 0xC
        assert r.bits_remaining == 4

    def test_read_unary(self):
        r = BitReader(bytes([0b00010000]))
        assert r.read_unary() == 3

    def test_eof(self):
        r = BitReader(b"")
        with pytest.raises(EOFError):
            r.read_bit()


class TestRoundTrip:
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_bit_sequences(self, bits):
        w = BitWriter()
        for bit in bits:
            w.write_bit(bit)
        r = BitReader(w.getvalue())
        assert [r.read_bit() for _ in bits] == bits

    @given(st.lists(st.tuples(st.integers(0, 2**20), st.integers(1, 21)), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_value_sequences(self, pairs):
        w = BitWriter()
        for value, width in pairs:
            w.write_bits(value & ((1 << width) - 1), width)
        r = BitReader(w.getvalue())
        for value, width in pairs:
            assert r.read_bits(width) == value & ((1 << width) - 1)
