"""Bit-level I/O."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.bitstream import BitReader, BitWriter


class TestBitWriter:
    def test_single_bits(self):
        w = BitWriter()
        for bit in (1, 0, 1, 1, 0, 0, 0, 1):
            w.write_bit(bit)
        assert w.getvalue() == bytes([0b10110001])

    def test_partial_byte_padded(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        assert w.getvalue() == bytes([0b10100000])
        assert len(w) == 3

    def test_write_bits_msb_first(self):
        w = BitWriter()
        w.write_bits(0xAB, 8)
        assert w.getvalue() == bytes([0xAB])

    def test_unary(self):
        w = BitWriter()
        w.write_unary(3)
        assert w.getvalue() == bytes([0b00010000])

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(1, -1)


class TestWriteCodes:
    """Bulk write_codes must match the write_bits loop bit for bit."""

    @given(
        st.lists(
            st.tuples(st.integers(0, 2**20), st.integers(1, 21)),
            min_size=0,
            max_size=30,
        ),
        st.integers(0, 7),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_sequential_writes(self, pairs, lead_bits):
        bulk, loop = BitWriter(), BitWriter()
        for w in (bulk, loop):
            for i in range(lead_bits):  # start mid-byte
                w.write_bit(i & 1)
        values = np.array([v & ((1 << c) - 1) for v, c in pairs], dtype=np.int64)
        widths = np.array([c for _, c in pairs], dtype=np.int64)
        bulk.write_codes(values, widths)
        for v, c in zip(values, widths):
            loop.write_bits(int(v), int(c))
        assert bulk.getvalue() == loop.getvalue()
        assert len(bulk) == len(loop)

    def test_empty_batch(self):
        w = BitWriter()
        w.write_codes(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        assert w.getvalue() == b""

    def test_zero_width_codes_write_nothing(self):
        w = BitWriter()
        w.write_codes(np.array([0, 5, 0]), np.array([0, 3, 0]))
        assert len(w) == 3

    def test_shape_and_negative_width_validation(self):
        with pytest.raises(ValueError, match="1-D"):
            BitWriter().write_codes(np.zeros((2, 2)), np.zeros((2, 2)))
        with pytest.raises(ValueError, match="matching"):
            BitWriter().write_codes(np.zeros(3), np.zeros(2))
        with pytest.raises(ValueError, match=">= 0"):
            BitWriter().write_codes(np.array([1]), np.array([-1]))


class TestBitReader:
    def test_read_bits(self):
        r = BitReader(bytes([0xAB, 0xCD]))
        assert r.read_bits(8) == 0xAB
        assert r.read_bits(4) == 0xC
        assert r.bits_remaining == 4

    def test_read_unary(self):
        r = BitReader(bytes([0b00010000]))
        assert r.read_unary() == 3

    def test_eof(self):
        r = BitReader(b"")
        with pytest.raises(EOFError):
            r.read_bit()

    def test_eof_mid_read_bits(self):
        r = BitReader(bytes([0xFF]))
        with pytest.raises(EOFError):
            r.read_bits(9)

    def test_eof_mid_unary(self):
        # All zeros, no terminating one: the buffered reader must still
        # fault like the bit-at-a-time reader did.
        r = BitReader(bytes([0x00, 0x00]))
        with pytest.raises(EOFError):
            r.read_unary()

    def test_unary_spanning_buffer_refills(self):
        # 70 zero bits then a one: the run crosses the 8-byte fill window.
        data = bytes([0x00] * 8 + [0b00000010, 0x00])
        r = BitReader(data)
        assert r.read_unary() == 70
        assert r.bits_remaining == 80 - 71

    def test_interleaved_reads_track_position(self):
        r = BitReader(bytes([0b10100001, 0b11000000]))
        assert r.read_bit() == 1
        assert r.read_unary() == 1
        assert r.read_bits(4) == 0b0000
        assert r.bits_remaining == 16 - 7


class TestRoundTrip:
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_bit_sequences(self, bits):
        w = BitWriter()
        for bit in bits:
            w.write_bit(bit)
        r = BitReader(w.getvalue())
        assert [r.read_bit() for _ in bits] == bits

    @given(st.lists(st.tuples(st.integers(0, 2**20), st.integers(1, 21)), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_value_sequences(self, pairs):
        w = BitWriter()
        for value, width in pairs:
            w.write_bits(value & ((1 << width) - 1), width)
        r = BitReader(w.getvalue())
        for value, width in pairs:
            assert r.read_bits(width) == value & ((1 << width) - 1)
