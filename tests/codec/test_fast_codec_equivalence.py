"""Fast codec path vs the frozen legacy baseline.

Every mechanism of the fast codec path (PR 2) must be output-equivalent
to the pre-PR implementation frozen in ``benchmarks/_legacy_codec.py``:
pruned full-search motion vectors exactly equal, vectorized compensation
bit-identical, batch-packed entropy bitstreams byte-identical, and the
whole-frame encoder producing byte-identical payloads.  A golden SHA-256
digest of a fixed rendered frame's bitstream guards against future
"optimizations" silently changing bytes.
"""

from __future__ import annotations

import hashlib
import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from _legacy_codec import (  # noqa: E402
    LegacyBitWriter,
    LegacyVideoDecoder,
    LegacyVideoEncoder,
    legacy_compensate,
    legacy_encode_blocks,
    legacy_estimate_motion,
)
from repro.codec.bitstream import BitWriter  # noqa: E402
from repro.codec.color import rgb_to_ycbcr  # noqa: E402
from repro.codec.decoder import VideoDecoder  # noqa: E402
from repro.codec.encoder import VideoEncoder  # noqa: E402
from repro.codec.entropy import encode_blocks  # noqa: E402
from repro.codec.motion import compensate, estimate_motion  # noqa: E402


def _luma(rgb: np.ndarray) -> np.ndarray:
    y, _, _ = rgb_to_ycbcr(np.asarray(rgb, dtype=np.float64))
    return y * 255.0 - 128.0


class TestMotionEquivalence:
    """Pruned full search == exhaustive legacy search, exactly."""

    @pytest.mark.parametrize("radius", [0, 1, 3, 7])
    def test_integer_planes_exact(self, rng, radius):
        # uint8-range integer planes: every SAD is exactly representable,
        # so equality is airtight regardless of summation order.
        cur = rng.integers(0, 256, size=(48, 64)).astype(np.float64)
        ref = rng.integers(0, 256, size=(48, 64)).astype(np.float64)
        np.testing.assert_array_equal(
            estimate_motion(cur, ref, search_radius=radius),
            legacy_estimate_motion(cur, ref, search_radius=radius),
        )

    def test_shifted_integer_content(self, rng):
        base = rng.integers(0, 256, size=(72, 88)).astype(np.float64)
        cur = base[5:53, 7:71]
        ref = base[2:50, 3:67]  # cur is ref shifted by (3, 4)
        np.testing.assert_array_equal(
            estimate_motion(cur, ref), legacy_estimate_motion(cur, ref)
        )

    def test_rendered_float_planes(self, g3_sequence):
        cur = _luma(g3_sequence[1].color)
        ref = _luma(g3_sequence[0].color)
        np.testing.assert_array_equal(
            estimate_motion(cur, ref), legacy_estimate_motion(cur, ref)
        )

    @pytest.mark.parametrize("block", [4, 8])
    def test_non_multiple_dims(self, rng, block):
        cur = rng.integers(0, 256, size=(30, 43)).astype(np.float64)
        ref = rng.integers(0, 256, size=(30, 43)).astype(np.float64)
        np.testing.assert_array_equal(
            estimate_motion(cur, ref, block=block, search_radius=3),
            legacy_estimate_motion(cur, ref, block=block, search_radius=3),
        )


class TestCompensateEquivalence:
    def test_random_mvs_bit_identical(self, rng):
        ref = rng.uniform(-128, 127, size=(40, 56))
        mv = rng.integers(-7, 8, size=(5, 7, 2))
        np.testing.assert_array_equal(
            compensate(ref, mv), legacy_compensate(ref, mv)
        )

    def test_out_of_bounds_mvs_bit_identical(self, rng):
        ref = rng.uniform(-128, 127, size=(16, 24))
        mv = np.array([[[100, -100], [-50, 3], [7, 99]],
                       [[0, 0], [-99, -99], [12, -1]]], dtype=np.int64)
        np.testing.assert_array_equal(
            compensate(ref, mv), legacy_compensate(ref, mv)
        )

    def test_estimated_field_bit_identical(self, g3_sequence):
        cur = _luma(g3_sequence[2].color)
        ref = _luma(g3_sequence[1].color)
        mv = estimate_motion(cur, ref)
        np.testing.assert_array_equal(
            compensate(ref, mv), legacy_compensate(ref, mv)
        )


class TestEntropyByteIdentity:
    def _both(self, blocks: np.ndarray) -> tuple[bytes, bytes]:
        fast, legacy = BitWriter(), LegacyBitWriter()
        encode_blocks(blocks, fast)
        legacy_encode_blocks(blocks, legacy)
        return fast.getvalue(), legacy.getvalue()

    def test_sparse_dense_negative(self, rng):
        sparse = np.zeros((6, 8, 8), dtype=np.int64)
        sparse[::2, 0, 0] = 9
        dense = rng.integers(-30, 30, size=(6, 8, 8))
        negative = -np.abs(rng.integers(0, 200, size=(3, 8, 8)))
        for blocks in (sparse, dense, negative):
            fast, legacy = self._both(blocks)
            assert fast == legacy

    def test_all_zero_blocks(self):
        fast, legacy = self._both(np.zeros((5, 8, 8), dtype=np.int64))
        assert fast == legacy

    def test_mid_stream_alignment(self, rng):
        """Bulk writes must compose with prior odd-bit-offset content."""
        blocks = rng.integers(-15, 15, size=(3, 4, 4))
        fast, legacy = BitWriter(), LegacyBitWriter()
        for w in (fast, legacy):
            w.write_bits(0b10110, 5)  # leave the writer mid-byte
        encode_blocks(blocks, fast)
        legacy_encode_blocks(blocks, legacy)
        assert fast.getvalue() == legacy.getvalue()

    def test_large_levels(self):
        blocks = np.zeros((2, 8, 8), dtype=np.int64)
        blocks[0, 0, 0] = 2**20
        blocks[1, 7, 7] = -(2**20)
        fast, legacy = self._both(blocks)
        assert fast == legacy


class TestFrameCodecEquivalence:
    def test_gop_payloads_byte_identical(self, g3_sequence):
        frames = [f.color for f in g3_sequence[:4]]
        legacy = LegacyVideoEncoder(gop_size=4, quality=60)
        fast = VideoEncoder(gop_size=4, quality=60)
        for i, frame in enumerate(frames):
            a = legacy.encode_frame(frame)
            b = fast.encode_frame(frame)
            assert a.payload == b.payload, f"frame {i} bitstream differs"
            assert a.frame_type == b.frame_type

    def test_decoders_agree(self, g3_sequence):
        frames = [f.color for f in g3_sequence[:3]]
        enc = VideoEncoder(gop_size=3, quality=60)
        encoded = [enc.encode_frame(f) for f in frames]
        fast = VideoDecoder().decode_sequence(encoded)
        legacy = LegacyVideoDecoder()
        for e, d in zip(encoded, fast):
            np.testing.assert_allclose(
                legacy.decode_frame(e).rgb, d.rgb, atol=1e-12
            )


class TestGoldenDigest:
    """Encode a fixed rendered frame and pin the bitstream SHA-256.

    If an 'optimization' changes these digests, it changed the format or
    the encoder's decisions — that must be an explicit, documented break,
    never a silent one.  (Digests cover the payload bytes of an I-frame
    and a following P-frame of the deterministic G3 scene.)
    """

    def test_g3_bitstream_digests_stable(self, g3_sequence):
        enc = VideoEncoder(gop_size=2, quality=60)
        i_frame = enc.encode_frame(g3_sequence[0].color)
        p_frame = enc.encode_frame(g3_sequence[1].color)
        digest_i = hashlib.sha256(i_frame.payload).hexdigest()
        digest_p = hashlib.sha256(p_frame.payload).hexdigest()
        # Regenerate by re-running this encode and printing the digests.
        assert digest_i == (
            "6f0a35d38fc1c6c4b683f11902515cc1c8a0a48190368ba2a5252807f700d6c8"
        )
        assert digest_p == (
            "34e6217cdc18fdaa41009c25fdd0cbc163237e9f67e2ff95df39fc5008638de8"
        )


class TestDiamondQuality:
    def test_diamond_psnr_close_to_full(self, g3_sequence):
        """Measured-quality gate for the documented DESIGN.md claim."""
        from repro.metrics.psnr import psnr

        frames = [f.color for f in g3_sequence[:3]]
        scores = {}
        for method in ("full", "diamond"):
            enc = VideoEncoder(gop_size=3, quality=60, motion_method=method)
            decoded = VideoDecoder().decode_sequence(
                [enc.encode_frame(f) for f in frames]
            )
            scores[method] = np.mean(
                [psnr(f, d.rgb) for f, d in zip(frames, decoded)]
            )
        assert scores["full"] - scores["diamond"] <= 0.3
