"""Zigzag scan and coefficient entropy coding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.entropy import (
    decode_blocks,
    encode_blocks,
    inverse_zigzag,
    read_exp_golomb_array,
    signed_to_unsigned_array,
    unsigned_to_signed_array,
    write_exp_golomb_array,
    zigzag,
    zigzag_indices,
)


class TestZigzag:
    def test_known_4x4_order(self):
        block = np.arange(16).reshape(4, 4)
        flat = zigzag(block)
        # Standard JPEG zigzag for 4x4.
        np.testing.assert_array_equal(
            flat, [0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15]
        )

    def test_inverse(self):
        block = np.arange(64).reshape(8, 8)
        np.testing.assert_array_equal(inverse_zigzag(zigzag(block), 8), block)

    def test_indices_visit_every_cell(self):
        rows, cols = zigzag_indices(8)
        assert len(set(zip(rows.tolist(), cols.tolist()))) == 64

    def test_frequency_ordering(self):
        """Zigzag visits low-frequency (small r+c) coefficients first."""
        rows, cols = zigzag_indices(8)
        sums = rows + cols
        assert all(sums[i] <= sums[i + 1] + 1 for i in range(len(sums) - 1))
        assert sums[0] == 0 and sums[-1] == 14


class TestBlockCoding:
    def roundtrip(self, blocks: np.ndarray) -> np.ndarray:
        writer = BitWriter()
        encode_blocks(blocks, writer)
        return decode_blocks(BitReader(writer.getvalue()), len(blocks), blocks.shape[1])

    def test_simple_roundtrip(self):
        blocks = np.zeros((2, 8, 8), dtype=np.int64)
        blocks[0, 0, 0] = 17
        blocks[1, 3, 4] = -9
        np.testing.assert_array_equal(self.roundtrip(blocks), blocks)

    def test_all_zero_blocks_are_tiny(self):
        writer = BitWriter()
        encode_blocks(np.zeros((10, 8, 8), dtype=np.int64), writer)
        assert len(writer.getvalue()) < 30  # ~2 codes per block

    def test_sparse_cheaper_than_dense(self, rng):
        sparse = np.zeros((4, 8, 8), dtype=np.int64)
        sparse[:, 0, 0] = 5
        dense = rng.integers(-20, 20, size=(4, 8, 8))
        ws, wd = BitWriter(), BitWriter()
        encode_blocks(sparse, ws)
        encode_blocks(dense, wd)
        assert len(ws.getvalue()) < len(wd.getvalue())

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            encode_blocks(np.zeros((2, 8, 4), dtype=np.int64), BitWriter())

    @given(
        arrays(
            dtype=np.int64,
            shape=st.tuples(st.integers(1, 4), st.just(8), st.just(8)),
            elements=st.integers(-255, 255),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, blocks):
        np.testing.assert_array_equal(self.roundtrip(blocks), blocks)

    @given(
        arrays(
            dtype=np.int64,
            shape=st.tuples(st.integers(1, 3), st.just(4), st.just(4)),
            elements=st.integers(-1000, 1000),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property_4x4(self, blocks):
        np.testing.assert_array_equal(self.roundtrip(blocks), blocks)


class TestExpGolombArrays:
    @given(st.lists(st.integers(0, 2**30), min_size=0, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_unsigned_roundtrip(self, values):
        w = BitWriter()
        write_exp_golomb_array(w, np.asarray(values, dtype=np.int64))
        out = read_exp_golomb_array(BitReader(w.getvalue()), len(values))
        np.testing.assert_array_equal(out, values)

    @given(st.lists(st.integers(-(2**30), 2**30), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_signed_mapping_roundtrip(self, values):
        values = np.asarray(values, dtype=np.int64)
        np.testing.assert_array_equal(
            unsigned_to_signed_array(signed_to_unsigned_array(values)), values
        )

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            write_exp_golomb_array(BitWriter(), np.array([3, -1]))


class TestCorruptStreams:
    """decode_blocks error paths on damaged payloads."""

    def _payload(self, blocks: np.ndarray) -> bytes:
        w = BitWriter()
        encode_blocks(blocks, w)
        return w.getvalue()

    def test_coefficient_index_overflow(self):
        # A run pointing past the block end without an EOB marker:
        # run=63 then level, then run=5 (overflows a 64-coefficient block).
        w = BitWriter()
        write_exp_golomb_array(w, np.array([63, 1, 5, 1], dtype=np.int64))
        with pytest.raises(ValueError, match="corrupt bitstream"):
            decode_blocks(BitReader(w.getvalue()), 1, 8)

    def test_truncated_payload_raises_eof(self, rng):
        blocks = rng.integers(-20, 20, size=(4, 8, 8))
        payload = self._payload(blocks)
        with pytest.raises(EOFError):
            decode_blocks(BitReader(payload[: len(payload) // 2]), 4, 8)

    def test_empty_payload_with_blocks_expected(self):
        with pytest.raises(EOFError):
            decode_blocks(BitReader(b""), 1, 8)

    def test_too_many_blocks_requested(self, rng):
        blocks = rng.integers(-20, 20, size=(2, 8, 8))
        payload = self._payload(blocks)
        with pytest.raises(EOFError):
            decode_blocks(BitReader(payload), 8, 8)
