"""Zigzag scan and coefficient entropy coding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.entropy import (
    decode_blocks,
    encode_blocks,
    inverse_zigzag,
    zigzag,
    zigzag_indices,
)


class TestZigzag:
    def test_known_4x4_order(self):
        block = np.arange(16).reshape(4, 4)
        flat = zigzag(block)
        # Standard JPEG zigzag for 4x4.
        np.testing.assert_array_equal(
            flat, [0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15]
        )

    def test_inverse(self):
        block = np.arange(64).reshape(8, 8)
        np.testing.assert_array_equal(inverse_zigzag(zigzag(block), 8), block)

    def test_indices_visit_every_cell(self):
        rows, cols = zigzag_indices(8)
        assert len(set(zip(rows.tolist(), cols.tolist()))) == 64

    def test_frequency_ordering(self):
        """Zigzag visits low-frequency (small r+c) coefficients first."""
        rows, cols = zigzag_indices(8)
        sums = rows + cols
        assert all(sums[i] <= sums[i + 1] + 1 for i in range(len(sums) - 1))
        assert sums[0] == 0 and sums[-1] == 14


class TestBlockCoding:
    def roundtrip(self, blocks: np.ndarray) -> np.ndarray:
        writer = BitWriter()
        encode_blocks(blocks, writer)
        return decode_blocks(BitReader(writer.getvalue()), len(blocks), blocks.shape[1])

    def test_simple_roundtrip(self):
        blocks = np.zeros((2, 8, 8), dtype=np.int64)
        blocks[0, 0, 0] = 17
        blocks[1, 3, 4] = -9
        np.testing.assert_array_equal(self.roundtrip(blocks), blocks)

    def test_all_zero_blocks_are_tiny(self):
        writer = BitWriter()
        encode_blocks(np.zeros((10, 8, 8), dtype=np.int64), writer)
        assert len(writer.getvalue()) < 30  # ~2 codes per block

    def test_sparse_cheaper_than_dense(self, rng):
        sparse = np.zeros((4, 8, 8), dtype=np.int64)
        sparse[:, 0, 0] = 5
        dense = rng.integers(-20, 20, size=(4, 8, 8))
        ws, wd = BitWriter(), BitWriter()
        encode_blocks(sparse, ws)
        encode_blocks(dense, wd)
        assert len(ws.getvalue()) < len(wd.getvalue())

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            encode_blocks(np.zeros((2, 8, 4), dtype=np.int64), BitWriter())

    @given(
        arrays(
            dtype=np.int64,
            shape=st.tuples(st.integers(1, 4), st.just(8), st.just(8)),
            elements=st.integers(-255, 255),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, blocks):
        np.testing.assert_array_equal(self.roundtrip(blocks), blocks)

    @given(
        arrays(
            dtype=np.int64,
            shape=st.tuples(st.integers(1, 3), st.just(4), st.just(4)),
            elements=st.integers(-1000, 1000),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property_4x4(self, blocks):
        np.testing.assert_array_equal(self.roundtrip(blocks), blocks)
