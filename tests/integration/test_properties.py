"""Cross-module property-based tests (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.decoder import VideoDecoder
from repro.codec.encoder import VideoEncoder
from repro.core.roi_search import RoIBox, search_roi
from repro.metrics.psnr import psnr
from repro.sr.interpolate import bilinear


class TestCodecProperties:
    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(16, 33), st.integers(16, 33), st.just(3)),
            elements=st.floats(0.0, 1.0, width=16),
        )
    )
    @settings(max_examples=12, deadline=None, derandomize=True)
    def test_intra_roundtrip_bounded_error(self, frame):
        """Any valid frame survives an I-frame round trip with a loose
        PSNR floor. Per-pixel binary noise is pathological for 4:2:0
        chroma subsampling, so the floor is deliberately generous — the
        tight fidelity checks live in tests/codec on realistic frames."""
        encoder = VideoEncoder(gop_size=1, quality=85)
        decoded = VideoDecoder().decode_frame(encoder.encode_frame(frame))
        assert decoded.rgb.shape == frame.shape
        assert psnr(frame, decoded.rgb) > 14.0

    def test_intra_roundtrip_smooth_frame_high_fidelity(self):
        """A band-limited frame (what cameras/renderers produce) round
        trips at high fidelity — the complement of the adversarial case."""
        ys, xs = np.mgrid[0:32, 0:32]
        frame = np.stack(
            [
                0.5 + 0.4 * np.sin(xs / 5.0),
                0.5 + 0.4 * np.cos(ys / 7.0),
                0.5 + 0.3 * np.sin((xs + ys) / 9.0),
            ],
            axis=-1,
        )
        encoder = VideoEncoder(gop_size=1, quality=85)
        decoded = VideoDecoder().decode_frame(encoder.encode_frame(frame))
        assert psnr(frame, decoded.rgb) > 32.0

    @given(st.integers(1, 6))
    @settings(max_examples=6, deadline=None)
    def test_static_sequence_p_frames_cheap(self, n_frames):
        """A perfectly static stream produces tiny P-frames."""
        rng = np.random.default_rng(0)
        frame = rng.uniform(size=(24, 32, 3))
        encoder = VideoEncoder(gop_size=n_frames + 1, quality=60)
        encoded = encoder.encode_sequence([frame] * (n_frames + 1))
        for p_frame in encoded[1:]:
            assert p_frame.size_bytes < encoded[0].size_bytes / 2


class TestSearchProperties:
    @given(
        st.integers(8, 30),
        st.integers(8, 30),
        st.integers(2, 6),
        st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_search_returns_valid_box(self, h, w, win, seed):
        values = np.random.default_rng(seed).uniform(size=(h, w))
        win = min(win, h, w)
        box = search_roi(values, win, win, fine_stride=1)
        assert 0 <= box.x <= w - win
        assert 0 <= box.y <= h - win
        assert box.width == box.height == win

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_search_never_beats_bruteforce(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.uniform(size=(20, 24))
        box = search_roi(values, 6, 6, fine_stride=1)
        found = values[box.y : box.y + 6, box.x : box.x + 6].sum()
        best = max(
            values[y : y + 6, x : x + 6].sum()
            for y in range(15)
            for x in range(19)
        )
        assert found <= best + 1e-9


class TestUpscalingProperties:
    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(4, 12), st.integers(4, 12)),
            elements=st.floats(0.0, 1.0, width=16),
        ),
        st.integers(2, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_bilinear_stays_in_hull(self, image, factor):
        """Bilinear interpolation never exceeds the input value range."""
        out = bilinear(image, image.shape[0] * factor, image.shape[1] * factor)
        assert out.min() >= image.min() - 1e-9
        assert out.max() <= image.max() + 1e-9

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_roibox_clamp_idempotent(self, x, y):
        box = RoIBox(x * 3, y * 2, 5, 5)
        clamped = box.clamped(20, 20)
        assert clamped.clamped(20, 20) == clamped


class TestMetricProperties:
    @given(
        arrays(
            dtype=np.float64,
            shape=st.just((8, 8)),
            elements=st.floats(0.0, 1.0, width=16),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_psnr_symmetry(self, image):
        other = 1.0 - image
        if np.allclose(image, other):
            pytest.skip("degenerate all-0.5 image")
        assert psnr(image, other) == pytest.approx(psnr(other, image))
