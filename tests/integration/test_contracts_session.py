"""Acceptance: a default-config session runs clean under REPRO_CONTRACTS=1
and produces byte-identical output to the contracts-off run.

Because @shaped reads the flag at import time, each mode gets its own
subprocess; the HR framebuffers of a 2-frame GameStreamSR session are
hashed inside each and compared here.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]

_SESSION_CODE = """
import hashlib
import numpy as np
from repro.contracts import contracts_enabled
from repro.core.roi_sizing import plan_roi_window
from repro.platform.device import get_device
from repro.render.games import build_game
from repro.sr.pretrained import default_sr_model
from repro.sr.runner import SRRunner
from repro.streaming.client import GameStreamSRClient
from repro.streaming.frames import StreamGeometry
from repro.streaming.server import GameStreamServer

device = get_device("samsung_tab_s8")
plan = plan_roi_window(device)
runner = SRRunner(default_sr_model(profile="tiny"))
geometry = StreamGeometry(eval_lr_height=64, eval_lr_width=112, lr_source="native")
server = GameStreamServer(
    build_game("G3"), geometry, roi_side=plan.side_for_frame(64), gop_size=2
)
client = GameStreamSRClient(device, runner, modeled_roi_side=plan.side)
digest = hashlib.sha256()
for _ in range(2):
    out = client.process(server.next_frame())
    digest.update(np.ascontiguousarray(out.hr_frame).tobytes())
print(f"enabled={contracts_enabled()} sha256={digest.hexdigest()}")
"""


def _run_session(contracts_flag: str) -> str:
    env = dict(os.environ, REPRO_CONTRACTS=contracts_flag)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", _SESSION_CODE],
        env=env,
        cwd=REPO,
        capture_output=True,
        text=True,
        check=False,
    )
    assert proc.returncode == 0, (
        f"session with REPRO_CONTRACTS={contracts_flag} failed:\n{proc.stderr}"
    )
    return proc.stdout.strip()

def test_session_clean_and_byte_identical_under_contracts():
    off = _run_session("0")
    on = _run_session("1")
    assert off.startswith("enabled=False ")
    assert on.startswith("enabled=True ")
    assert off.split("sha256=")[1] == on.split("sha256=")[1]
