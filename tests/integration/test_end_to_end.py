"""Cross-module integration: the paper's headline orderings on a mini run.

These use the tiny SR profile and small frames, so the *absolute* numbers
are not the paper's — but every ordering the paper claims must hold:
GameStreamSR is real-time where NEMO is not, saves energy, and keeps
quality between bilinear and full-frame SR.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.roi_sizing import plan_roi_window
from repro.platform import calibration as cal
from repro.platform.device import pixel_7_pro, samsung_tab_s8
from repro.render.games import build_game
from repro.streaming.client import (
    BilinearClient,
    GameStreamSRClient,
    NemoClient,
    SRIntegratedDecoderClient,
)
from repro.streaming.frames import StreamGeometry
from repro.streaming.mtp import mtp_from_frame
from repro.streaming.server import GameStreamServer
from repro.streaming.session import run_session

GEO = StreamGeometry(eval_lr_height=64, eval_lr_width=112, lr_source="native")
N = 6


@pytest.fixture(scope="module")
def sessions(tiny_runner):
    device = samsung_tab_s8()
    plan = plan_roi_window(device)
    out = {}
    for design, make in {
        "ours": lambda: GameStreamSRClient(device, tiny_runner, modeled_roi_side=plan.side),
        "nemo": lambda: NemoClient(device, tiny_runner),
        "bilinear": lambda: BilinearClient(device),
        "future": lambda: SRIntegratedDecoderClient(device, tiny_runner),
    }.items():
        roi = plan.side_for_frame(64) if design in ("ours", "future") else None
        server = GameStreamServer(build_game("G3"), GEO, roi_side=roi, gop_size=N, quality=70)
        out[design] = run_session(server, make(), n_frames=N)
    return out


class TestPaperOrderings:
    def test_reference_speedup_about_13x(self, sessions):
        speedup = sessions["nemo"].mean_upscale_ms(True) / sessions["ours"].mean_upscale_ms(True)
        assert 11.0 < speedup < 16.0

    def test_nonreference_speedup_above_1_4x(self, sessions):
        speedup = sessions["nemo"].mean_upscale_ms(False) / sessions["ours"].mean_upscale_ms(False)
        assert speedup > 1.4

    def test_ours_realtime_nemo_not(self, sessions):
        assert sessions["ours"].realtime_conformant()
        assert not sessions["nemo"].realtime_conformant()

    def test_gop60_speedup_about_2x(self, sessions):
        ratio = sessions["nemo"].gop_weighted_upscale_ms(60) / sessions[
            "ours"
        ].gop_weighted_upscale_ms(60)
        assert 1.5 < ratio < 2.6

    def test_mtp_improvement_about_4x(self, sessions):
        ours = sessions["ours"].mean_mtp(True).total_ms
        nemo = sessions["nemo"].mean_mtp(True).total_ms
        assert 3.0 < nemo / ours < 5.5
        assert ours < 70.0  # the paper's headline bound

    def test_mtp_within_cloud_gaming_budget(self, sessions):
        for reference in (True, False):
            assert sessions["ours"].mean_mtp(reference).total_ms < cal.MTP_FAST_PACED_MS

    def test_energy_savings_positive(self, sessions):
        ours = sessions["ours"].gop_weighted_energy(60).total
        nemo = sessions["nemo"].gop_weighted_energy(60).total
        assert 0.15 < 1 - ours / nemo < 0.45

    def test_future_decoder_saves_further_energy(self, sessions):
        """Fig. 15 prototype: bypassing the NPU on non-reference frames
        should cut upscaling energy well below the base design."""
        ours = sessions["ours"].gop_weighted_energy(60)
        future = sessions["future"].gop_weighted_energy(60)
        assert future.total < 0.8 * ours.total

    def test_bandwidth_against_2k_streaming(self, sessions):
        """Streaming LR + RoI uses far less bandwidth than native 2K."""
        lr_bitrate = sessions["ours"].mean_bitrate_mbps()
        assert lr_bitrate < 60.0  # sane absolute magnitude


class TestQualityOrderings:
    @pytest.fixture(scope="class")
    def quality(self, tiny_runner):
        geo = StreamGeometry(eval_lr_height=64, eval_lr_width=112, lr_source="downsample")
        device = samsung_tab_s8()
        plan = plan_roi_window(device)
        out = {}
        for design, client in {
            "ours": GameStreamSRClient(device, tiny_runner, modeled_roi_side=plan.side),
            "bilinear": BilinearClient(device),
        }.items():
            roi = plan.side_for_frame(64) if design == "ours" else None
            server = GameStreamServer(build_game("G3"), geo, roi_side=roi, gop_size=4, quality=70)
            out[design] = run_session(server, client, n_frames=4, evaluate_quality=True)
        return out

    def test_ours_at_least_bilinear(self, quality):
        assert quality["ours"].mean_psnr() >= quality["bilinear"].mean_psnr() - 0.1

    def test_psnr_stable_across_gop(self, quality):
        series = quality["ours"].psnr_series()
        assert max(series) - min(series) < 2.0


class TestCrossDevice:
    def test_both_devices_run(self, tiny_runner):
        for device in (samsung_tab_s8(), pixel_7_pro()):
            plan = plan_roi_window(device)
            server = GameStreamServer(
                build_game("G10"), GEO, roi_side=plan.side_for_frame(64), gop_size=2
            )
            client = GameStreamSRClient(device, tiny_runner, modeled_roi_side=plan.side)
            result = run_session(server, client, n_frames=2)
            assert result.realtime_conformant()

    def test_mtp_assembly(self, tiny_runner):
        device = samsung_tab_s8()
        server = GameStreamServer(build_game("G1"), GEO, roi_side=24, gop_size=2)
        client = GameStreamSRClient(device, tiny_runner, modeled_roi_side=300)
        frame = server.next_frame()
        result = client.process(frame)
        mtp = mtp_from_frame(frame, result)
        assert mtp.total_ms == pytest.approx(
            sum(frame.server_timings_ms.values()) + sum(result.client_timings_ms.values())
        )
