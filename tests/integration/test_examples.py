"""The shipped examples must actually run."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str, timeout: int = 600) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    return result.stdout


def test_roi_visualizer():
    out = run_example("roi_visualizer.py", "G2")
    assert "Far Cry 5" in out
    assert "RoI:" in out


def test_device_capability():
    out = run_example("device_capability.py")
    assert "samsung_tab_s8" in out
    assert "NOT VIABLE" in out  # the budget-phone scenario
    assert "120" in out


@pytest.mark.slow
def test_quickstart():
    out = run_example("quickstart.py")
    assert "GameStreamSR (RoI DNN)" in out
    assert "real-time" in out
    assert "MISSES 16.66 ms" in out  # full-frame SR row


@pytest.mark.slow
def test_streaming_session():
    out = run_example("streaming_session.py")
    assert "ref-frame speedup" in out
    assert "GameStreamSR=True" in out


@pytest.mark.slow
def test_train_sr_model():
    out = run_example("train_sr_model.py")
    assert "our EDSR" in out
