"""Autograd tensor: op correctness, gradients, broadcasting, tape control."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.neural.tensor import Tensor, as_tensor, concat, is_grad_enabled, no_grad

from ..conftest import numeric_gradient


def check_grad(op, *shapes, seed=0, tol=1e-5):
    """Compare analytic and numeric gradients of ``op`` over random inputs."""
    rng = np.random.default_rng(seed)
    arrays = [rng.normal(size=s) for s in shapes]
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    loss = op(*tensors)
    loss.backward()
    for t, a in zip(tensors, arrays):
        numeric = numeric_gradient(lambda: op(*[Tensor(x) for x in arrays]).item(), a)
        assert t.grad is not None
        np.testing.assert_allclose(t.grad, numeric, atol=tol, rtol=1e-4)


class TestArithmetic:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_array_equal(out.data, [4.0, 6.0])

    def test_scalar_radd_rmul(self):
        t = Tensor([2.0])
        assert (1 + t).data[0] == 3.0
        assert (3 * t).data[0] == 6.0

    def test_sub_div_rsub_rdiv(self):
        t = Tensor([4.0])
        assert (t - 1).data[0] == 3.0
        assert (10 - t).data[0] == 6.0
        assert (t / 2).data[0] == 2.0
        assert (8 / t).data[0] == 2.0

    def test_matmul_values(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 5))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])


class TestGradients:
    def test_add_grad(self):
        check_grad(lambda a, b: (a + b).sum(), (3, 4), (3, 4))

    def test_broadcast_add_grad(self):
        check_grad(lambda a, b: (a + b).sum(), (3, 4), (4,))

    def test_broadcast_scalar_like_grad(self):
        check_grad(lambda a, b: (a * b).sum(), (2, 3), (1, 3))

    def test_mul_grad(self):
        check_grad(lambda a, b: (a * b * a).sum(), (5,), (5,))

    def test_div_grad(self):
        check_grad(lambda a, b: (a / (b * b + 1.0)).sum(), (4,), (4,))

    def test_pow_grad(self):
        check_grad(lambda a: ((a * a + 1.0) ** 1.5).sum(), (6,))

    def test_matmul_grad(self):
        check_grad(lambda a, b: (a @ b).sum(), (3, 4), (4, 2))

    def test_matmul_vector_grad(self):
        check_grad(lambda a, b: a @ b, (5,), (5,))

    def test_relu_grad(self):
        check_grad(lambda a: (a.relu() * a).sum(), (7,), seed=3)

    def test_exp_log_grad(self):
        check_grad(lambda a: ((a * a + 1.0).log() + a.exp()).sum(), (4,))

    def test_tanh_sigmoid_grad(self):
        check_grad(lambda a: (a.tanh() + a.sigmoid()).sum(), (4,))

    def test_abs_grad_away_from_zero(self):
        check_grad(lambda a: (a.abs() + 5.0).sum(), (4,), seed=9)

    def test_clip_grad(self):
        check_grad(lambda a: a.clip(-0.5, 0.5).sum(), (8,))

    def test_sum_axis_grad(self):
        check_grad(lambda a: (a.sum(axis=1) ** 2.0).sum(), (3, 4))

    def test_sum_keepdims_grad(self):
        check_grad(lambda a: (a.sum(axis=0, keepdims=True) * a).sum(), (3, 4))

    def test_mean_grad(self):
        check_grad(lambda a: a.mean(), (3, 5))

    def test_mean_axis_grad(self):
        check_grad(lambda a: (a.mean(axis=(0, 1)) ** 2.0).sum(), (2, 3, 4))

    def test_reshape_transpose_grad(self):
        check_grad(lambda a: (a.reshape(6, 2).transpose(1, 0) ** 2.0).sum(), (3, 4))

    def test_getitem_grad(self):
        check_grad(lambda a: (a[1:, :2] ** 2.0).sum(), (3, 4))

    def test_pad2d_grad(self):
        check_grad(lambda a: (a.pad2d(1) ** 2.0).sum(), (1, 2, 3, 3))

    def test_concat_grad(self):
        check_grad(lambda a, b: (concat([a, b], axis=1) ** 2.0).sum(), (2, 3), (2, 2))

    def test_grad_accumulates_over_reuse(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_diamond_graph(self):
        x = Tensor([1.5], requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        (a * b).backward()  # d/dx 6x^2 = 12x
        assert x.grad[0] == pytest.approx(18.0)


class TestTapeControl:
    def test_no_grad_disables_tape(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2.0
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_detach(self):
        x = Tensor([1.0], requires_grad=True)
        assert not x.detach().requires_grad

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_non_scalar_needs_gradient(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            t.backward()
        t.backward(np.array([1.0, 1.0]))
        np.testing.assert_array_equal(t.grad, [1.0, 1.0])

    def test_backward_gradient_shape_mismatch(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            t.backward(np.ones(3))

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2.0).backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)


class TestProperties:
    @given(
        st.lists(st.floats(-10, 10), min_size=1, max_size=16),
        st.lists(st.floats(-10, 10), min_size=1, max_size=16),
    )
    @settings(max_examples=30, deadline=None)
    def test_add_commutes(self, xs, ys):
        n = min(len(xs), len(ys))
        a, b = Tensor(xs[:n]), Tensor(ys[:n])
        np.testing.assert_allclose((a + b).data, (b + a).data)

    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_matmul_shapes(self, m, k, n):
        out = Tensor(np.ones((m, k))) @ Tensor(np.ones((k, n)))
        assert out.shape == (m, n)
        np.testing.assert_allclose(out.data, k)
