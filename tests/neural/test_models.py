"""EDSR / FSRCNN model behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.neural.models import EDSR, FSRCNNLite, PAPER_EDSR_BLOCKS, PAPER_EDSR_CHANNELS
from repro.neural.tensor import Tensor
from repro.sr.interpolate import bilinear


@pytest.fixture(scope="module")
def small_edsr() -> EDSR:
    return EDSR(scale=2, n_resblocks=2, n_feats=8, seed=0)


class TestEDSR:
    def test_output_shape(self, small_edsr, rng):
        out = small_edsr(Tensor(rng.uniform(size=(2, 3, 10, 14))))
        assert out.shape == (2, 3, 20, 28)

    def test_untrained_is_near_bilinear(self, small_edsr, rng):
        """The bilinear global skip makes the fresh model ~= bilinear."""
        img = rng.uniform(size=(12, 16, 3))
        net = small_edsr(Tensor(img.transpose(2, 0, 1)[None])).numpy()[0].transpose(1, 2, 0)
        up = bilinear(img, 24, 32)
        assert np.abs(net - up).max() < 0.2
        assert np.abs(net - up).mean() < 0.05

    def test_scale_3(self, rng):
        model = EDSR(scale=3, n_resblocks=1, n_feats=8)
        out = model(Tensor(rng.uniform(size=(1, 3, 6, 6))))
        assert out.shape == (1, 3, 18, 18)

    def test_paper_geometry_constants(self):
        assert PAPER_EDSR_BLOCKS == 16 and PAPER_EDSR_CHANNELS == 64

    def test_paper_geometry_forward(self, rng):
        """The full 16x64 EDSR builds and runs (on a tiny input)."""
        model = EDSR(scale=2)  # paper defaults
        assert len(model.body) == PAPER_EDSR_BLOCKS
        out = model(Tensor(rng.uniform(size=(1, 3, 8, 8))))
        assert out.shape == (1, 3, 16, 16)

    def test_describe(self, small_edsr):
        text = small_edsr.describe()
        assert "x2" in text and "2 blocks" in text

    def test_input_validation(self, small_edsr):
        with pytest.raises(ValueError, match="N, C, H, W"):
            small_edsr(Tensor(np.zeros((3, 8, 8))))
        with pytest.raises(ValueError, match="channels"):
            small_edsr(Tensor(np.zeros((1, 1, 8, 8))))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            EDSR(scale=0)
        with pytest.raises(ValueError):
            EDSR(n_resblocks=0)

    def test_deterministic_by_seed(self, rng):
        x = Tensor(rng.uniform(size=(1, 3, 6, 6)))
        a = EDSR(scale=2, n_resblocks=1, n_feats=8, seed=5)(x).numpy()
        b = EDSR(scale=2, n_resblocks=1, n_feats=8, seed=5)(x).numpy()
        np.testing.assert_array_equal(a, b)

    def test_gradients_reach_all_parameters(self, small_edsr, rng):
        small_edsr.zero_grad()
        out = small_edsr(Tensor(rng.uniform(size=(1, 3, 8, 8))))
        (out**2.0).mean().backward()
        for name, p in small_edsr.named_parameters():
            assert p.grad is not None, f"no grad for {name}"


class TestFSRCNN:
    def test_output_shape(self, rng):
        model = FSRCNNLite(scale=2, feats=12, shrink=6, n_maps=2)
        out = model(Tensor(rng.uniform(size=(1, 3, 9, 11))))
        assert out.shape == (1, 3, 18, 22)

    def test_untrained_near_bilinear(self, rng):
        model = FSRCNNLite(scale=2, feats=12, shrink=6, n_maps=2)
        img = rng.uniform(size=(10, 12, 3))
        net = model(Tensor(img.transpose(2, 0, 1)[None])).numpy()[0].transpose(1, 2, 0)
        up = bilinear(img, 20, 24)
        assert np.abs(net - up).mean() < 0.05

    def test_smaller_than_edsr(self):
        assert (
            FSRCNNLite(scale=2).num_parameters()
            < EDSR(scale=2, n_resblocks=3, n_feats=20).num_parameters()
        )

    def test_input_validation(self):
        with pytest.raises(ValueError):
            FSRCNNLite()(Tensor(np.zeros((3, 8, 8))))
