"""Fast inference path: dtype policy, graph-free forwards, fused conv."""

from __future__ import annotations

import numpy as np
import pytest

from repro.neural import functional as F
from repro.neural.alloc import reset_malloc_defaults, tune_malloc_for_large_arrays
from repro.neural.layers import Conv2d
from repro.neural.models import EDSR, _bilinear_skip
from repro.neural.tensor import (
    Tensor,
    active_dtype,
    get_inference_dtype,
    no_grad,
    set_inference_dtype,
)


def _reference_conv(x, weight, bias, stride, padding):
    """Explicit np.pad + two-pass im2col, the pre-fast-path formulation."""
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    n, c, h, w = x.shape
    c_out, _, kh, kw = weight.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    cols = np.empty((n, c, kh, kw, out_h * out_w), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            patch = x[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride]
            cols[:, :, i, j, :] = patch.reshape(n, c, out_h * out_w)
    out = np.matmul(
        weight.reshape(c_out, -1).astype(x.dtype), cols.reshape(n, c * kh * kw, -1)
    ).reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.astype(x.dtype).reshape(1, c_out, 1, 1)
    return out


class TestDtypePolicy:
    def test_default_inference_dtype_is_float32(self):
        assert get_inference_dtype() == np.dtype(np.float32)

    def test_active_dtype_tracks_grad_mode(self):
        assert active_dtype() == np.dtype(np.float64)
        with no_grad():
            assert active_dtype() == get_inference_dtype()
        assert active_dtype() == np.dtype(np.float64)

    def test_tensor_adopts_inference_dtype_under_no_grad(self):
        x = np.ones((2, 3), dtype=np.float64)
        with no_grad():
            assert Tensor(x).dtype == np.float32
        assert Tensor(x).dtype == np.float64

    def test_no_grad_dtype_override_restores(self):
        with no_grad(dtype=np.float64):
            assert get_inference_dtype() == np.dtype(np.float64)
            assert Tensor(np.ones(3)).dtype == np.float64
        assert get_inference_dtype() == np.dtype(np.float32)

    def test_set_inference_dtype_returns_previous(self):
        prev = set_inference_dtype(np.float64)
        try:
            assert prev == np.dtype(np.float32)
            assert get_inference_dtype() == np.dtype(np.float64)
        finally:
            set_inference_dtype(prev)

    def test_set_inference_dtype_rejects_non_float(self):
        with pytest.raises(ValueError, match="float32 or float64"):
            set_inference_dtype(np.int32)
        assert get_inference_dtype() == np.dtype(np.float32)


class TestGraphFreeForwards:
    def test_no_grad_conv_allocates_no_graph(self, rng):
        conv = Conv2d(3, 4, 3, rng=rng)
        with no_grad():
            out = conv(Tensor(rng.uniform(size=(1, 3, 8, 8))))
        assert out._parents == ()
        assert out._backward is None
        assert not out.requires_grad
        assert out.dtype == np.float32

    def test_no_grad_model_forward_allocates_no_graph(self, rng):
        model = EDSR(scale=2, n_resblocks=1, n_feats=4, seed=0)
        with no_grad():
            out = model(Tensor(rng.uniform(size=(1, 3, 6, 10))))
        assert out._parents == ()
        assert out._backward is None
        assert out.dtype == np.float32

    def test_inference_forward_bitwise_matches_taped_forward(self, rng):
        # The in-place inference branches (ResidualBlock/EDSR) must change
        # nothing numerically: in float64 they agree bit for bit with the
        # taped training-path forward.
        model = EDSR(scale=2, n_resblocks=2, n_feats=6, seed=1)
        x = rng.uniform(size=(2, 3, 7, 9))
        taped = model(Tensor(x)).numpy()
        with no_grad(dtype=np.float64):
            fast = model(Tensor(x)).numpy()
        np.testing.assert_array_equal(taped, fast)

    def test_f32_forward_agrees_with_f64(self, rng):
        from repro.metrics.psnr import psnr

        model = EDSR(scale=2, n_resblocks=2, n_feats=8, seed=2)
        x = rng.uniform(size=(1, 3, 16, 24))
        with no_grad(dtype=np.float64):
            ref = model(Tensor(x)).numpy()
        with no_grad():
            fast = model(Tensor(x)).numpy()
        assert fast.dtype == np.float32
        assert psnr(np.clip(ref, 0, 1), np.clip(fast.astype(np.float64), 0, 1)) >= 60.0


class TestFusedConvForward:
    @pytest.mark.parametrize(
        "kernel,stride,padding",
        [(1, 1, 0), (3, 1, 1), (3, 2, 1), (5, 1, 2), (3, 1, 0), (3, 1, 3), (5, 3, 2)],
    )
    def test_matches_pad_im2col_reference(self, rng, kernel, stride, padding):
        x = rng.uniform(size=(2, 3, 11, 13))
        weight = rng.normal(size=(4, 3, kernel, kernel))
        bias = rng.normal(size=(4,))
        out = F._conv2d_forward(x, weight, bias, stride, padding)
        ref = _reference_conv(x, weight, bias, stride, padding)
        np.testing.assert_array_equal(out, ref)

    def test_chunked_path_matches_unchunked(self, rng, monkeypatch):
        # Force the cache-blocked row chunking even at test sizes. The GEMM
        # shape changes, so BLAS may re-order the reduction — allow last-ulp
        # float64 noise but nothing more.
        x = rng.uniform(size=(1, 4, 24, 20))
        weight = rng.normal(size=(6, 4, 3, 3))
        full = F._conv2d_forward(x, weight, None, 1, 1)
        monkeypatch.setattr(F, "_CONV_CHUNK_BYTES", 256)
        chunked = F._conv2d_forward(x, weight, None, 1, 1)
        np.testing.assert_allclose(chunked, full, rtol=1e-12, atol=1e-12)

    def test_fused_im2col_matches_np_pad(self, rng):
        x = rng.uniform(size=(2, 3, 9, 7))
        for kernel, stride, pad in [(3, 1, 1), (3, 2, 2), (5, 1, 2)]:
            cols, out_h, out_w = F._im2col_padded(x, kernel, kernel, stride, pad)
            padded = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
            ref = F.im2col(padded, kernel, kernel, stride)
            np.testing.assert_array_equal(cols, ref)

    def test_kernel_larger_than_input_rejected(self, rng):
        x = rng.uniform(size=(1, 1, 2, 2))
        weight = rng.normal(size=(1, 1, 5, 5))
        with pytest.raises(ValueError, match="larger than"):
            F._conv2d_forward(x, weight, None, 1, 0)


class TestBilinearSkip:
    @pytest.mark.parametrize("factor", [2, 3, 4])
    def test_bit_exact_vs_image_space_bilinear(self, rng, factor):
        from repro.sr.interpolate import bilinear

        x = rng.uniform(size=(2, 3, 6, 5))
        out = _bilinear_skip(x, factor)
        for i in range(x.shape[0]):
            hwc = np.ascontiguousarray(x[i].transpose(1, 2, 0))
            ref = bilinear(hwc, 6 * factor, 5 * factor).transpose(2, 0, 1)
            np.testing.assert_array_equal(out[i], ref)

    def test_preserves_float32(self, rng):
        x = rng.uniform(size=(1, 3, 4, 4)).astype(np.float32)
        assert _bilinear_skip(x, 2).dtype == np.float32


class TestAllocatorTuning:
    def test_tuning_honours_opt_out_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_MALLOC_TUNING", "1")
        assert tune_malloc_for_large_arrays() is False

    def test_tune_and_reset_report_status(self):
        # Both return a bool (False on non-glibc platforms); re-tune after
        # the reset so the rest of the suite keeps the fast allocator.
        try:
            assert isinstance(reset_malloc_defaults(), bool)
        finally:
            assert isinstance(tune_malloc_for_large_arrays(), bool)
