"""conv2d / pixel_shuffle / pooling: correctness and gradients."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.signal import correlate

from repro.neural.functional import avg_pool2d, col2im, conv2d, im2col, pixel_shuffle
from repro.neural.tensor import Tensor

from ..conftest import numeric_gradient


def reference_conv(x, w, b=None, stride=1, padding=0):
    """Direct scipy cross-correlation reference."""
    n, c_in, h, width = x.shape
    c_out = w.shape[0]
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (xp.shape[2] - w.shape[2]) // stride + 1
    ow = (xp.shape[3] - w.shape[3]) // stride + 1
    out = np.zeros((n, c_out, oh, ow))
    for ni in range(n):
        for o in range(c_out):
            acc = np.zeros((xp.shape[2] - w.shape[2] + 1, xp.shape[3] - w.shape[3] + 1))
            for ci in range(c_in):
                acc += correlate(xp[ni, ci], w[o, ci], mode="valid")
            out[ni, o] = acc[::stride, ::stride]
    if b is not None:
        out += b.reshape(1, c_out, 1, 1)
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1), (1, 2)])
    def test_matches_scipy(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 9, 11))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        np.testing.assert_allclose(
            out.data, reference_conv(x, w, b, stride, padding), atol=1e-10
        )

    def test_1x1_kernel(self, rng):
        x = rng.normal(size=(1, 4, 5, 5))
        w = rng.normal(size=(2, 4, 1, 1))
        out = conv2d(Tensor(x), Tensor(w))
        np.testing.assert_allclose(out.data, reference_conv(x, w), atol=1e-10)

    def test_no_bias(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), padding=1)
        assert out.shape == (1, 3, 6, 6)

    def test_gradients_numeric(self, rng):
        x = rng.normal(size=(1, 2, 5, 6))
        w = rng.normal(size=(3, 2, 3, 3)) * 0.3
        b = rng.normal(size=3)
        xt = Tensor(x.copy(), requires_grad=True)
        wt = Tensor(w.copy(), requires_grad=True)
        bt = Tensor(b.copy(), requires_grad=True)
        loss = (conv2d(xt, wt, bt, padding=1) ** 2.0).mean()
        loss.backward()

        def loss_fn():
            return (conv2d(Tensor(xt.data), Tensor(wt.data), Tensor(bt.data), padding=1) ** 2.0).mean().item()

        for t in (wt, bt, xt):
            numeric = numeric_gradient(loss_fn, t.data)
            np.testing.assert_allclose(t.grad, numeric, atol=1e-5, rtol=1e-4)

    def test_strided_gradients_numeric(self, rng):
        x = rng.normal(size=(1, 1, 6, 6))
        w = rng.normal(size=(2, 1, 3, 3)) * 0.3
        xt = Tensor(x.copy(), requires_grad=True)
        wt = Tensor(w.copy(), requires_grad=True)
        (conv2d(xt, wt, stride=2) ** 2.0).mean().backward()

        def loss_fn():
            return (conv2d(Tensor(xt.data), Tensor(wt.data), stride=2) ** 2.0).mean().item()

        for t in (wt, xt):
            np.testing.assert_allclose(
                t.grad, numeric_gradient(loss_fn, t.data), atol=1e-5, rtol=1e-4
            )

    def test_input_validation(self, rng):
        good_w = Tensor(rng.normal(size=(2, 3, 3, 3)))
        with pytest.raises(ValueError, match="N, C, H, W"):
            conv2d(Tensor(np.ones((3, 4, 4))), good_w)
        with pytest.raises(ValueError, match="channel mismatch"):
            conv2d(Tensor(np.ones((1, 2, 4, 4))), good_w)
        with pytest.raises(ValueError, match="stride"):
            conv2d(Tensor(np.ones((1, 3, 4, 4))), good_w, stride=0)
        with pytest.raises(ValueError, match="weight"):
            conv2d(Tensor(np.ones((1, 3, 4, 4))), Tensor(np.ones((2, 3, 3))))

    def test_kernel_larger_than_input(self):
        with pytest.raises(ValueError, match="larger than input"):
            conv2d(Tensor(np.ones((1, 1, 2, 2))), Tensor(np.ones((1, 1, 3, 3))))


class TestIm2Col:
    def test_col2im_is_adjoint(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        x = rng.normal(size=(2, 3, 6, 7))
        cols = im2col(x, 3, 3)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 3)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_shapes(self, rng):
        x = rng.normal(size=(1, 2, 8, 10))
        assert im2col(x, 3, 3).shape == (1, 2 * 9, 6 * 8)
        assert im2col(x, 3, 3, stride=2).shape == (1, 18, 3 * 4)


class TestPixelShuffle:
    def test_rearrangement(self):
        x = np.arange(16.0).reshape(1, 4, 2, 2)
        out = pixel_shuffle(Tensor(x), 2)
        assert out.shape == (1, 1, 4, 4)
        # Output pixel (0,0) block comes from channels [0..3] at (0,0).
        np.testing.assert_array_equal(
            out.data[0, 0, :2, :2], [[x[0, 0, 0, 0], x[0, 1, 0, 0]], [x[0, 2, 0, 0], x[0, 3, 0, 0]]]
        )

    def test_gradient_is_permutation(self, rng):
        x = Tensor(rng.normal(size=(1, 4, 3, 3)), requires_grad=True)
        out = pixel_shuffle(x, 2)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(x.data))

    def test_channel_validation(self):
        with pytest.raises(ValueError, match="divisible"):
            pixel_shuffle(Tensor(np.ones((1, 3, 2, 2))), 2)
        with pytest.raises(ValueError, match="4-D"):
            pixel_shuffle(Tensor(np.ones((3, 2, 2))), 2)


class TestAvgPool:
    def test_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_gradient(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        avg_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full_like(x.data, 0.25))

    def test_divisibility_check(self):
        with pytest.raises(ValueError, match="divisible"):
            avg_pool2d(Tensor(np.ones((1, 1, 5, 4))), 2)
