"""Optimizers: convergence on known problems, state handling, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.neural.optim import Adam, SGD, clip_grad_norm
from repro.neural.tensor import Tensor


def quadratic_step(optimizer, x: Tensor, target: np.ndarray) -> float:
    optimizer.zero_grad()
    loss = ((x - Tensor(target)) ** 2.0).sum()
    loss.backward()
    optimizer.step()
    return loss.item()


class TestSGD:
    def test_converges_on_quadratic(self):
        x = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        target = np.array([1.0, 2.0])
        opt = SGD([x], lr=0.1)
        for _ in range(100):
            quadratic_step(opt, x, target)
        np.testing.assert_allclose(x.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        def run(momentum):
            x = Tensor(np.array([10.0]), requires_grad=True)
            opt = SGD([x], lr=0.02, momentum=momentum)
            for _ in range(30):
                quadratic_step(opt, x, np.zeros(1))
            return abs(float(x.data[0]))

        assert run(0.9) < run(0.0)

    def test_skips_params_without_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([x], lr=0.1)
        opt.step()  # no grad yet; must not raise or move
        assert x.data[0] == 1.0

    def test_validation(self):
        x = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([x], lr=0.0)
        with pytest.raises(ValueError):
            SGD([x], momentum=1.5)
        with pytest.raises(ValueError):
            SGD([Tensor(np.ones(1))], lr=0.1)  # nothing trainable


class TestAdam:
    def test_converges_on_quadratic(self):
        x = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        target = np.array([1.0, 2.0])
        opt = Adam([x], lr=0.2)
        for _ in range(200):
            quadratic_step(opt, x, target)
        np.testing.assert_allclose(x.data, target, atol=1e-3)

    def test_loss_decreases(self):
        x = Tensor(np.array([4.0]), requires_grad=True)
        opt = Adam([x], lr=0.1)
        first = quadratic_step(opt, x, np.zeros(1))
        for _ in range(20):
            last = quadratic_step(opt, x, np.zeros(1))
        assert last < first

    def test_bias_correction_first_step(self):
        """First Adam step moves by ~lr regardless of gradient scale."""
        for scale in (1.0, 1000.0):
            x = Tensor(np.array([scale]), requires_grad=True)
            opt = Adam([x], lr=0.1)
            quadratic_step(opt, x, np.zeros(1))
            assert abs(scale - float(x.data[0])) == pytest.approx(0.1, rel=1e-3)

    def test_validation(self):
        x = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ValueError):
            Adam([x], betas=(1.0, 0.999))


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        x = Tensor(np.ones(4), requires_grad=True)
        (x * 100.0).sum().backward()
        pre = clip_grad_norm([x], max_norm=1.0)
        assert pre == pytest.approx(200.0)
        assert np.linalg.norm(x.grad) == pytest.approx(1.0, rel=1e-6)

    def test_leaves_small_gradients(self):
        x = Tensor(np.ones(4), requires_grad=True)
        (x * 0.01).sum().backward()
        clip_grad_norm([x], max_norm=1.0)
        assert np.linalg.norm(x.grad) == pytest.approx(0.02)

    def test_handles_missing_grads(self):
        assert clip_grad_norm([Tensor(np.ones(1), requires_grad=True)], 1.0) == 0.0
