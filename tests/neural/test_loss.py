"""Loss functions: values and gradient flow."""

from __future__ import annotations

import numpy as np
import pytest

from repro.neural.loss import charbonnier_loss, l1_loss, mse_loss
from repro.neural.tensor import Tensor


@pytest.fixture
def pair():
    pred = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
    target = Tensor(np.array([1.0, 0.0, 5.0]))
    return pred, target


def test_mse_value(pair):
    pred, target = pair
    assert mse_loss(pred, target).item() == pytest.approx((0 + 4 + 4) / 3)


def test_l1_value(pair):
    pred, target = pair
    assert l1_loss(pred, target).item() == pytest.approx((0 + 2 + 2) / 3)


def test_charbonnier_close_to_l1_for_large_errors(pair):
    pred, target = pair
    charb = charbonnier_loss(pred, target, eps=1e-6).item()
    assert charb == pytest.approx(l1_loss(pred, target).item(), rel=1e-3)


def test_charbonnier_smooth_at_zero():
    pred = Tensor(np.zeros(3), requires_grad=True)
    target = Tensor(np.zeros(3))
    loss = charbonnier_loss(pred, target, eps=1e-3)
    loss.backward()
    assert np.all(np.isfinite(pred.grad))


def test_identical_inputs_zero_loss():
    x = Tensor(np.array([1.0, 2.0]))
    assert mse_loss(x, x).item() == 0.0
    assert l1_loss(x, x).item() == 0.0


def test_gradients_flow(pair):
    pred, target = pair
    for loss_fn in (mse_loss, l1_loss, charbonnier_loss):
        pred.zero_grad()
        loss_fn(pred, target).backward()
        assert pred.grad is not None and np.any(pred.grad != 0)


def test_mse_gradient_value():
    pred = Tensor(np.array([3.0]), requires_grad=True)
    mse_loss(pred, Tensor(np.array([1.0]))).backward()
    assert pred.grad[0] == pytest.approx(2 * (3 - 1) / 1)
