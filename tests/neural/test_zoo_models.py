"""Model-zoo architectures: QuickSRNet identity init, fake quantization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.psnr import psnr
from repro.neural.models import (
    EDSR,
    QuantizedEDSR,
    QuickSRNet,
    conv_modules,
    quantize_conv_per_channel,
)
from repro.sr.interpolate import nearest
from repro.sr.runner import SRRunner


class TestQuickSRNet:
    def test_output_shape(self, rng):
        model = QuickSRNet(scale=2, n_convs=2, feats=8, seed=0)
        x = rng.uniform(size=(14, 18, 3))
        out = SRRunner(model).upscale(x)
        assert out.shape == (28, 36, 3)

    def test_identity_init_approximates_nearest(self, rng):
        # The residual repeats are identity-initialized (plus small noise),
        # so the *untrained* network is already a near-nearest-neighbour
        # upscaler — the QuickSRNet trick that makes training converge
        # from a useful starting point instead of from noise.
        model = QuickSRNet(scale=2, n_convs=3, feats=12, seed=1)
        x = rng.uniform(size=(16, 16, 3))
        out = SRRunner(model).upscale(x)
        ref = nearest(x, 32, 32)
        assert np.abs(out - ref).max() < 0.25
        # Random noise input is the worst case for the perturbed
        # identity; an unrelated pair of such images sits near 8 dB.
        assert psnr(ref, out.astype(np.float64)) > 20.0

    def test_describe_mentions_geometry(self):
        model = QuickSRNet(scale=2, n_convs=4, feats=32)
        text = model.describe()
        assert "4" in text and "32" in text

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            QuickSRNet(scale=0)
        with pytest.raises(ValueError):
            QuickSRNet(n_convs=0)
        with pytest.raises(ValueError):
            QuickSRNet(feats=2, channels=3)

    def test_channel_mismatch_rejected(self, rng):
        model = QuickSRNet(scale=2, n_convs=1, feats=8, channels=3, seed=0)
        with pytest.raises(ValueError):
            SRRunner(model).upscale(rng.uniform(size=(8, 8)))


class TestPerChannelQuantization:
    def test_weights_land_on_per_channel_grid(self):
        model = EDSR(scale=2, n_resblocks=1, n_feats=8, seed=3)
        conv = next(conv_modules(model))
        scales = quantize_conv_per_channel(conv, bits=8)
        w = conv.weight.data
        assert scales.shape == (w.shape[0],)
        for o in range(w.shape[0]):
            codes = w[o] / scales[o]
            np.testing.assert_allclose(codes, np.rint(codes), atol=1e-9)
            assert np.abs(codes).max() <= 127.0 + 1e-9

    def test_idempotent(self):
        model = EDSR(scale=2, n_resblocks=1, n_feats=8, seed=3)
        conv = next(conv_modules(model))
        quantize_conv_per_channel(conv)
        once = conv.weight.data.copy()
        quantize_conv_per_channel(conv)
        np.testing.assert_array_equal(conv.weight.data, once)

    def test_zero_channel_guard(self):
        model = EDSR(scale=2, n_resblocks=1, n_feats=8, seed=3)
        conv = next(conv_modules(model))
        conv.weight.data[0] = 0.0
        scales = quantize_conv_per_channel(conv)
        assert scales[0] == 1.0
        np.testing.assert_array_equal(conv.weight.data[0], 0.0)

    def test_too_few_bits_rejected(self):
        model = EDSR(scale=2, n_resblocks=1, n_feats=8, seed=3)
        with pytest.raises(ValueError):
            quantize_conv_per_channel(next(conv_modules(model)), bits=1)


class TestQuantizedEDSR:
    def test_quantize_marks_and_perturbs(self):
        model = QuantizedEDSR(scale=2, n_resblocks=1, n_feats=8, seed=5)
        before = [c.weight.data.copy() for c in conv_modules(model)]
        assert model.quantized is False
        assert model.quantize() is model
        assert model.quantized is True
        after = [c.weight.data for c in conv_modules(model)]
        assert any(not np.array_equal(a, b) for a, b in zip(before, after))

    def test_output_close_to_float_reference(self, rng):
        ref = EDSR(scale=2, n_resblocks=1, n_feats=8, seed=5)
        quant = QuantizedEDSR(scale=2, n_resblocks=1, n_feats=8, seed=9)
        quant.load_state_dict(ref.state_dict())
        quant.quantize()
        x = rng.uniform(size=(12, 12, 3))
        out_ref = SRRunner(ref).upscale(x)
        out_q = SRRunner(quant).upscale(x)
        # 8-bit per-channel fake quantization barely moves the output.
        assert psnr(out_ref.astype(np.float64), out_q.astype(np.float64)) > 35.0

    def test_load_state_dict_resets_flag(self):
        ref = EDSR(scale=2, n_resblocks=1, n_feats=8, seed=5)
        quant = QuantizedEDSR(scale=2, n_resblocks=1, n_feats=8, seed=9)
        quant.quantize()
        quant.load_state_dict(ref.state_dict())
        assert quant.quantized is False

    def test_describe_tracks_precision(self):
        model = QuantizedEDSR(scale=2, n_resblocks=1, n_feats=8, seed=5)
        assert "float" in model.describe()
        model.quantize()
        assert "int8" in model.describe()
