"""Module system, layers, and parameter management."""

from __future__ import annotations

import numpy as np
import pytest

from repro.neural.layers import (
    Conv2d,
    Module,
    PixelShuffle,
    PReLU,
    ReLU,
    ResidualBlock,
    ScaledAdd,
    Sequential,
    Upsampler,
)
from repro.neural.tensor import Tensor


class TestModuleRegistry:
    def test_parameters_collected_recursively(self):
        block = ResidualBlock(4)
        # two convs, each weight + bias
        assert len(block.parameters()) == 4

    def test_named_parameters_paths(self):
        block = ResidualBlock(4)
        names = dict(block.named_parameters())
        assert "conv1.weight" in names and "conv2.bias" in names

    def test_num_parameters(self):
        conv = Conv2d(2, 3, 3)
        assert conv.num_parameters() == 3 * 2 * 9 + 3

    def test_zero_grad(self):
        conv = Conv2d(1, 1, 3)
        out = conv(Tensor(np.ones((1, 1, 4, 4))))
        out.sum().backward()
        assert conv.weight.grad is not None
        conv.zero_grad()
        assert conv.weight.grad is None

    def test_train_eval_propagates(self):
        seq = Sequential(Conv2d(1, 1, 3), ReLU())
        seq.eval()
        assert not seq.training and not next(iter(seq)).training
        seq.train()
        assert seq.training

    def test_state_dict_roundtrip(self):
        a = ResidualBlock(3, rng=np.random.default_rng(1))
        b = ResidualBlock(3, rng=np.random.default_rng(2))
        b.load_state_dict(a.state_dict())
        x = Tensor(np.random.default_rng(0).normal(size=(1, 3, 5, 5)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_state_dict_missing_key(self):
        block = ResidualBlock(3)
        state = block.state_dict()
        state.pop("conv1.weight")
        with pytest.raises(KeyError, match="missing"):
            block.load_state_dict(state)

    def test_state_dict_shape_mismatch(self):
        block = ResidualBlock(3)
        state = block.state_dict()
        state["conv1.weight"] = np.zeros((1, 1, 3, 3))
        with pytest.raises(ValueError, match="shape"):
            block.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor([1.0]))


class TestConv2dLayer:
    def test_same_padding_default(self):
        conv = Conv2d(2, 4, 3)
        out = conv(Tensor(np.zeros((1, 2, 7, 9))))
        assert out.shape == (1, 4, 7, 9)

    def test_explicit_padding(self):
        conv = Conv2d(1, 1, 3, padding=0)
        assert conv(Tensor(np.zeros((1, 1, 5, 5)))).shape == (1, 1, 3, 3)

    def test_no_bias(self):
        conv = Conv2d(1, 1, 3, bias=False)
        assert conv.bias is None
        assert len(conv.parameters()) == 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Conv2d(0, 1, 3)


class TestActivations:
    def test_relu(self):
        out = ReLU()(Tensor([-1.0, 2.0]))
        np.testing.assert_array_equal(out.data, [0.0, 2.0])

    def test_prelu_negative_slope(self):
        prelu = PReLU(init=0.1)
        out = prelu(Tensor([-2.0, 3.0]))
        np.testing.assert_allclose(out.data, [-0.2, 3.0])

    def test_prelu_alpha_trains(self):
        prelu = PReLU(init=0.25)
        loss = (prelu(Tensor([-1.0, -2.0])) ** 2.0).sum()
        loss.backward()
        assert prelu.alpha.grad is not None and abs(prelu.alpha.grad[0]) > 0


class TestComposite:
    def test_sequential_order(self):
        seq = Sequential(ReLU(), PReLU(init=0.5))
        out = seq(Tensor([-4.0, 4.0]))
        np.testing.assert_allclose(out.data, [0.0, 4.0])
        assert len(seq) == 2

    def test_scaled_add(self):
        double = Sequential(ReLU())
        mod = ScaledAdd(double, scale=0.5)
        out = mod(Tensor([2.0]))
        assert out.data[0] == pytest.approx(3.0)

    def test_residual_block_near_identity_with_zero_scale(self, rng):
        block = ResidualBlock(3, res_scale=0.0)
        x = Tensor(rng.normal(size=(1, 3, 4, 4)))
        np.testing.assert_allclose(block(x).data, x.data)

    def test_pixel_shuffle_layer(self):
        out = PixelShuffle(2)(Tensor(np.zeros((1, 8, 3, 3))))
        assert out.shape == (1, 2, 6, 6)


class TestUpsampler:
    @pytest.mark.parametrize("factor,expect", [(1, 1), (2, 2), (3, 3), (4, 4)])
    def test_factors(self, factor, expect):
        up = Upsampler(8, factor)
        out = up(Tensor(np.zeros((1, 8, 4, 4))))
        assert out.shape == (1, 8, 4 * expect, 4 * expect)

    def test_unsupported_factor(self):
        with pytest.raises(ValueError, match="unsupported"):
            Upsampler(8, 5)

    def test_factor_validation(self):
        with pytest.raises(ValueError):
            Upsampler(8, 0)
