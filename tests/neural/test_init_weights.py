"""Weight initializers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.neural.init import kaiming_uniform, xavier_uniform, zeros


class TestFans:
    def test_conv_fan_scaling(self):
        rng = np.random.default_rng(0)
        small = kaiming_uniform((8, 4, 3, 3), rng)
        rng = np.random.default_rng(0)
        large = kaiming_uniform((8, 16, 3, 3), rng)
        # Larger fan-in -> smaller bound.
        assert np.abs(large).max() < np.abs(small).max()

    def test_linear_shape(self):
        rng = np.random.default_rng(0)
        w = xavier_uniform((10, 20), rng)
        assert w.shape == (10, 20)
        bound = np.sqrt(6.0 / 30)
        assert np.abs(w).max() <= bound

    def test_kaiming_bound(self):
        rng = np.random.default_rng(0)
        w = kaiming_uniform((4, 2, 3, 3), rng)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / (2 * 9))
        assert np.abs(w).max() <= bound

    def test_unsupported_shape(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            kaiming_uniform((5,), rng)

    def test_deterministic_by_rng(self):
        a = kaiming_uniform((4, 4, 3, 3), np.random.default_rng(7))
        b = kaiming_uniform((4, 4, 3, 3), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_zeros(self):
        np.testing.assert_array_equal(zeros((3, 2)), np.zeros((3, 2)))
