"""Weight checkpoint save/load."""

from __future__ import annotations

import numpy as np
import pytest

from repro.neural.models import EDSR
from repro.neural.serialization import load_state, load_weights, save_weights
from repro.neural.tensor import Tensor


def test_roundtrip_preserves_outputs(tmp_path, rng):
    model = EDSR(scale=2, n_resblocks=1, n_feats=8, seed=3)
    x = Tensor(rng.uniform(size=(1, 3, 6, 6)))
    expected = model(x).numpy()

    path = tmp_path / "weights.npz"
    save_weights(model, path)
    fresh = EDSR(scale=2, n_resblocks=1, n_feats=8, seed=99)
    load_weights(fresh, path)
    np.testing.assert_allclose(fresh(x).numpy(), expected)


def test_load_state_raw(tmp_path):
    model = EDSR(scale=2, n_resblocks=1, n_feats=8)
    path = tmp_path / "w.npz"
    save_weights(model, path)
    state = load_state(path)
    assert set(state) == set(model.state_dict())
    for key, value in state.items():
        assert value.shape == model.state_dict()[key].shape


def test_geometry_mismatch_rejected(tmp_path):
    save_weights(EDSR(scale=2, n_resblocks=1, n_feats=8), tmp_path / "w.npz")
    other = EDSR(scale=2, n_resblocks=2, n_feats=8)
    with pytest.raises(KeyError):
        load_weights(other, tmp_path / "w.npz")


def test_creates_parent_directory(tmp_path):
    nested = tmp_path / "a" / "b" / "w.npz"
    save_weights(EDSR(scale=2, n_resblocks=1, n_feats=8), nested)
    assert nested.exists()
