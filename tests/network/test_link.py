"""Network link model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.link import MTU_BYTES, NetworkLink, packet_sizes


class TestSerialization:
    def test_time_from_bandwidth(self):
        link = NetworkLink(bandwidth_mbps=80.0, propagation_ms=0.0)
        # 10 KB at 80 Mbps = 80,000 bits / 80,000 bits-per-ms = 1 ms.
        assert link.serialization_ms(10_000) == pytest.approx(1.0)

    def test_propagation_added(self):
        link = NetworkLink(bandwidth_mbps=80.0, propagation_ms=5.0)
        result = link.transmit(10_000)
        assert result.latency_ms == pytest.approx(6.0)
        assert not result.dropped

    def test_packet_count(self):
        link = NetworkLink()
        assert link.transmit(1).n_packets == 1
        assert link.transmit(MTU_BYTES + 1).n_packets == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkLink(bandwidth_mbps=0)
        with pytest.raises(ValueError):
            NetworkLink(loss_rate=1.0)
        with pytest.raises(ValueError):
            NetworkLink().serialization_ms(-1)


class TestLoss:
    def test_lossless_is_deterministic(self):
        link = NetworkLink(loss_rate=0.0)
        a = link.transmit(50_000)
        b = link.transmit(50_000)
        assert a.latency_ms == b.latency_ms
        assert a.n_retransmissions == 0

    def test_loss_adds_latency(self):
        clean = NetworkLink(loss_rate=0.0).transmit(500_000)
        lossy_link = NetworkLink(loss_rate=0.3, seed=1)
        lossy = lossy_link.transmit(500_000)
        assert lossy.n_retransmissions > 0
        assert lossy.latency_ms > clean.latency_ms

    def test_deadline_marks_drop(self):
        link = NetworkLink(bandwidth_mbps=1.0, propagation_ms=5.0)
        assert link.transmit(100_000, deadline_ms=10.0).dropped
        assert not link.transmit(100, deadline_ms=100.0).dropped


class TestPacketization:
    def test_packet_sizes_partial_tail(self):
        sizes = packet_sizes(MTU_BYTES + 200)
        assert list(sizes) == [MTU_BYTES, 200]
        assert int(sizes.sum()) == MTU_BYTES + 200

    def test_packet_sizes_exact_multiple(self):
        sizes = packet_sizes(3 * MTU_BYTES)
        assert list(sizes) == [MTU_BYTES] * 3

    def test_tiny_frame_single_packet(self):
        assert list(packet_sizes(1)) == [1]


class TestRetransmitSerialization:
    """Regression: retransmission rounds must serialize the actual byte
    sizes of the lost packets, not ``lost * MTU_BYTES`` — losing a
    partial tail packet re-clocks only its own bytes."""

    def test_partial_tail_retransmit_charges_actual_bytes(self):
        # 2 packets: one full MTU + a 200-byte tail. Force every packet
        # lost exactly once, then delivered.
        size = MTU_BYTES + 200
        link = NetworkLink(bandwidth_mbps=80.0, propagation_ms=5.0, loss_rate=0.5)
        rounds = iter(
            [np.array([True, True]), np.array([False, False])]
        )
        link._lose_packets = lambda n, p: next(rounds)
        result = link.transmit(size)
        # Serialization: full frame once + both packets once more — the
        # old code would have charged 2 * MTU_BYTES for the retransmit.
        expected_ser = link.serialization_ms(size) + link.serialization_ms(size)
        assert result.serialization_ms == pytest.approx(expected_ser)
        assert result.latency_ms == pytest.approx(
            expected_ser + 5.0 + 2 * 5.0
        )
        assert result.n_retransmissions == 2

    def test_lost_tail_only_recharges_tail(self):
        size = MTU_BYTES + 200
        link = NetworkLink(bandwidth_mbps=80.0, propagation_ms=0.0, loss_rate=0.5)
        rounds = iter([np.array([False, True]), np.array([False])])
        link._lose_packets = lambda n, p: next(rounds)
        result = link.transmit(size)
        assert result.serialization_ms == pytest.approx(
            link.serialization_ms(size) + link.serialization_ms(200)
        )
        assert result.n_retransmissions == 1

    def test_serialization_ms_excludes_propagation(self):
        link = NetworkLink(bandwidth_mbps=80.0, propagation_ms=7.0, loss_rate=0.0)
        result = link.transmit(10_000)
        assert result.serialization_ms == pytest.approx(
            link.serialization_ms(10_000)
        )
        assert result.propagation_total_ms == pytest.approx(7.0)


class TestStreamDropRate:
    def test_high_bitrate_drops_more(self):
        """The paper's motivation: 2K streams overload the link (Sec. II-A)."""
        link_720 = NetworkLink(bandwidth_mbps=40.0, seed=0)
        link_2k = NetworkLink(bandwidth_mbps=40.0, seed=0)
        drops_720 = link_720.stream_drop_rate(frame_bytes=30_000, n_frames=120)
        drops_2k = link_2k.stream_drop_rate(frame_bytes=110_000, n_frames=120)
        assert drops_2k > drops_720
        assert drops_2k > 0.3  # severe, like the study the paper cites

    def test_ample_bandwidth_no_drops(self):
        link = NetworkLink(bandwidth_mbps=500.0)
        assert link.stream_drop_rate(frame_bytes=30_000, n_frames=60) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkLink().stream_drop_rate(1000, fps=0)

    def test_retransmit_rtt_does_not_occupy_queue(self):
        """Regression: each retransmission round's 2x propagation used to
        stay inside the link busy window (``queue_free_at = finish -
        propagation_ms``), so retransmit RTTs blocked the queue as if
        they serialized bytes. With ample bandwidth and a fat RTT, one
        retransmission per frame must not cascade into a backlog."""
        frame_bytes = 10_000
        n_full = len(packet_sizes(frame_bytes))

        def lose_tail_once(n, loss_rate):
            mask = np.zeros(n, dtype=bool)
            if n == n_full:  # first round: lose only the tail packet
                mask[-1] = True
            return mask

        lossy = NetworkLink(bandwidth_mbps=80.0, propagation_ms=10.0, loss_rate=0.5)
        lossy._lose_packets = lose_tail_once
        lossless = NetworkLink(bandwidth_mbps=80.0, propagation_ms=10.0)
        # Delivery latency with one retransmit round: ~1 ms serialization
        # + 3 x 10 ms propagation ~= 31 ms < the 2-frame (33.3 ms) slack,
        # and serialization alone (~1 ms) is far under the 16.7 ms frame
        # period — so neither link may ever drop. The old accounting
        # charged ~21 ms of occupancy per frame and cascaded to drops.
        kwargs = dict(frame_bytes=frame_bytes, fps=60.0, n_frames=120)
        assert lossless.stream_drop_rate(**kwargs) == 0.0
        assert lossy.stream_drop_rate(**kwargs) == 0.0
