"""Network link model."""

from __future__ import annotations

import pytest

from repro.network.link import MTU_BYTES, NetworkLink


class TestSerialization:
    def test_time_from_bandwidth(self):
        link = NetworkLink(bandwidth_mbps=80.0, propagation_ms=0.0)
        # 10 KB at 80 Mbps = 80,000 bits / 80,000 bits-per-ms = 1 ms.
        assert link.serialization_ms(10_000) == pytest.approx(1.0)

    def test_propagation_added(self):
        link = NetworkLink(bandwidth_mbps=80.0, propagation_ms=5.0)
        result = link.transmit(10_000)
        assert result.latency_ms == pytest.approx(6.0)
        assert not result.dropped

    def test_packet_count(self):
        link = NetworkLink()
        assert link.transmit(1).n_packets == 1
        assert link.transmit(MTU_BYTES + 1).n_packets == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkLink(bandwidth_mbps=0)
        with pytest.raises(ValueError):
            NetworkLink(loss_rate=1.0)
        with pytest.raises(ValueError):
            NetworkLink().serialization_ms(-1)


class TestLoss:
    def test_lossless_is_deterministic(self):
        link = NetworkLink(loss_rate=0.0)
        a = link.transmit(50_000)
        b = link.transmit(50_000)
        assert a.latency_ms == b.latency_ms
        assert a.n_retransmissions == 0

    def test_loss_adds_latency(self):
        clean = NetworkLink(loss_rate=0.0).transmit(500_000)
        lossy_link = NetworkLink(loss_rate=0.3, seed=1)
        lossy = lossy_link.transmit(500_000)
        assert lossy.n_retransmissions > 0
        assert lossy.latency_ms > clean.latency_ms

    def test_deadline_marks_drop(self):
        link = NetworkLink(bandwidth_mbps=1.0, propagation_ms=5.0)
        assert link.transmit(100_000, deadline_ms=10.0).dropped
        assert not link.transmit(100, deadline_ms=100.0).dropped


class TestStreamDropRate:
    def test_high_bitrate_drops_more(self):
        """The paper's motivation: 2K streams overload the link (Sec. II-A)."""
        link_720 = NetworkLink(bandwidth_mbps=40.0, seed=0)
        link_2k = NetworkLink(bandwidth_mbps=40.0, seed=0)
        drops_720 = link_720.stream_drop_rate(frame_bytes=30_000, n_frames=120)
        drops_2k = link_2k.stream_drop_rate(frame_bytes=110_000, n_frames=120)
        assert drops_2k > drops_720
        assert drops_2k > 0.3  # severe, like the study the paper cites

    def test_ample_bandwidth_no_drops(self):
        link = NetworkLink(bandwidth_mbps=500.0)
        assert link.stream_drop_rate(frame_bytes=30_000, n_frames=60) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkLink().stream_drop_rate(1000, fps=0)
