"""Trace-driven link scenarios: schedules, burst loss, determinism."""

from __future__ import annotations

import pytest

from repro.network import (
    SCENARIO_NAMES,
    GilbertElliott,
    LinkTrace,
    NetworkLink,
    TraceDrivenLink,
    TraceSegment,
    available_scenarios,
    build_scenario,
    synthetic_trace,
)


def two_phase_trace(**kwargs) -> LinkTrace:
    return LinkTrace(
        name="two_phase",
        segments=(
            TraceSegment(0.0, 40.0, 10.0, 0.0),
            TraceSegment(1_000.0, 8.0, 30.0, 0.0),
        ),
        **kwargs,
    )


class TestLinkTrace:
    def test_segment_lookup(self):
        trace = two_phase_trace()
        assert trace.segment_at(0.0).bandwidth_mbps == 40.0
        assert trace.segment_at(999.9).bandwidth_mbps == 40.0
        assert trace.segment_at(1_000.0).bandwidth_mbps == 8.0
        assert trace.segment_at(50_000.0).bandwidth_mbps == 8.0  # holds last

    def test_loop_wraps(self):
        trace = two_phase_trace(loop=True, duration_ms=2_000.0)
        assert trace.segment_at(2_000.0).bandwidth_mbps == 40.0
        assert trace.segment_at(3_500.0).bandwidth_mbps == 8.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkTrace(name="empty", segments=())
        with pytest.raises(ValueError):
            LinkTrace(
                name="late_start",
                segments=(TraceSegment(5.0, 10.0, 5.0),),
            )
        with pytest.raises(ValueError):
            LinkTrace(
                name="unsorted",
                segments=(
                    TraceSegment(0.0, 10.0, 5.0),
                    TraceSegment(0.0, 20.0, 5.0),
                ),
            )
        with pytest.raises(ValueError):
            two_phase_trace(loop=True, duration_ms=500.0)
        with pytest.raises(ValueError):
            TraceSegment(0.0, -1.0, 5.0)


class TestTraceDrivenLink:
    def test_conditions_follow_schedule(self):
        link = TraceDrivenLink(two_phase_trace())
        fast = link.transmit(30_000, at_ms=0.0)
        slow = link.transmit(30_000, at_ms=1_500.0)
        # 30 KB: 6 ms at 40 Mbps vs 30 ms at 8 Mbps, plus propagation.
        assert fast.latency_ms == pytest.approx(6.0 + 10.0)
        assert slow.latency_ms == pytest.approx(30.0 + 30.0)

    def test_last_transmit_meta(self):
        link = TraceDrivenLink(two_phase_trace())
        link.transmit(30_000, at_ms=1_200.0)
        meta = link.last_transmit_meta
        assert meta["scenario"] == "two_phase"
        assert meta["bandwidth_mbps"] == 8.0
        assert meta["at_ms"] == 1_200.0
        assert meta["burst_state"] == "good"

    def test_jitter_is_seeded_and_additive(self):
        trace = two_phase_trace(jitter_ms=3.0)
        a = TraceDrivenLink(trace, seed=5)
        b = TraceDrivenLink(trace, seed=5)
        ra, rb = a.transmit(30_000), b.transmit(30_000)
        assert ra == rb
        assert ra.latency_ms > 6.0 + 10.0  # jitter strictly adds
        assert a.last_transmit_meta["jitter_ms"] > 0.0

    def test_reset_replays_identically(self):
        link = build_scenario("lte_drive", seed=9)
        first = [link.transmit(30_000, at_ms=i * 16.66) for i in range(30)]
        link.reset()
        second = [link.transmit(30_000, at_ms=i * 16.66) for i in range(30)]
        assert first == second

    def test_same_trace_same_seed_identical_sequences(self):
        """The seeded-determinism contract: two independently built links
        over the same trace + seed emit identical TransmitResults."""
        for name in SCENARIO_NAMES:
            a = build_scenario(name, seed=3)
            b = build_scenario(name, seed=3)
            seq_a = [a.transmit(25_000, at_ms=i * 16.66) for i in range(40)]
            seq_b = [b.transmit(25_000, at_ms=i * 16.66) for i in range(40)]
            assert seq_a == seq_b, name

    def test_is_a_network_link(self):
        assert isinstance(build_scenario("wifi_stable"), NetworkLink)


class TestGilbertElliott:
    def test_burst_losses_cluster(self):
        """With a sticky bad state, losses arrive in runs: the lossy
        trace must show longer loss bursts than an i.i.d. link of the
        same average rate would essentially never produce."""
        trace = LinkTrace(
            name="bursty",
            segments=(TraceSegment(0.0, 40.0, 5.0, 0.0),),
            ge_loss=GilbertElliott(
                p_g2b=0.05, p_b2g=0.1, p_loss_bad=0.9
            ),
        )
        link = TraceDrivenLink(trace, seed=2)
        retx = [link.transmit(30_000, at_ms=i * 16.66).n_retransmissions for i in range(200)]
        bursty_frames = sum(1 for r in retx if r >= 5)
        assert sum(retx) > 0
        assert bursty_frames > 0  # multi-packet loss runs occur

    def test_validation(self):
        with pytest.raises(ValueError):
            GilbertElliott(p_g2b=1.5)
        with pytest.raises(ValueError):
            GilbertElliott(p_loss_bad=1.0, p_b2g=0.0)


class TestScenarios:
    def test_registry(self):
        assert set(SCENARIO_NAMES) == {
            "wifi_stable",
            "wifi_congested",
            "lte_walk",
            "lte_drive",
            "5g_mmwave",
        }
        assert "synthetic:<seed>" in available_scenarios()

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario("carrier_pigeon")
        with pytest.raises(ValueError, match="integer seed"):
            build_scenario("synthetic:abc")

    def test_synthetic_is_seeded(self):
        a, b = synthetic_trace(7), synthetic_trace(7)
        assert a == b
        assert synthetic_trace(8) != a

    def test_synthetic_within_ranges(self):
        trace = synthetic_trace(11, bandwidth_range=(4.0, 60.0), max_loss=0.05)
        for seg in trace.segments:
            assert 4.0 <= seg.bandwidth_mbps <= 60.0
            assert 0.0 <= seg.loss_rate <= 0.05
        assert trace.loop
