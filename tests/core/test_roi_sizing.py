"""Foveal/device RoI window sizing (paper Sec. IV-B1, Fig. 7)."""

from __future__ import annotations

import pytest

from repro.core.roi_sizing import (
    RoIWindowPlan,
    foveal_diameter_cm,
    foveal_diameter_inches,
    min_roi_side_px,
    plan_roi_window,
)
from repro.platform.device import pixel_7_pro, samsung_tab_s8


class TestFovealMath:
    def test_paper_diameter_anchor(self):
        # Sec. IV-B1: 2 * 30 cm * tan(3 deg) = 3.14 cm ~= 1.25 in.
        assert foveal_diameter_cm(30.0, 6.0) == pytest.approx(3.14, abs=0.01)
        assert foveal_diameter_inches(30.0, 6.0) == pytest.approx(1.25, abs=0.02)

    def test_scales_with_distance(self):
        assert foveal_diameter_cm(60.0) == pytest.approx(2 * foveal_diameter_cm(30.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            foveal_diameter_cm(0.0)
        with pytest.raises(ValueError):
            foveal_diameter_cm(30.0, 0.0)


class TestMinSide:
    def test_s8_paper_anchor(self):
        # Paper: ~343 px on the 2K display -> ~172 px on the 720p frame.
        side = min_roi_side_px(samsung_tab_s8(), scale_factor=2)
        assert abs(side - 172) <= 5

    def test_scale_factor_shrinks_window(self):
        s8 = samsung_tab_s8()
        assert min_roi_side_px(s8, 4) < min_roi_side_px(s8, 2)

    def test_higher_ppi_larger_window(self):
        assert min_roi_side_px(pixel_7_pro()) > 0
        # Pixel has ~2x PPI but sits closer; compare at equal distance.
        s8 = samsung_tab_s8()
        dense = s8.with_overrides(display=s8.display.__class__(2560, 1600, ppi=548.0))
        assert min_roi_side_px(dense) == pytest.approx(2 * min_roi_side_px(s8), abs=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            min_roi_side_px(samsung_tab_s8(), scale_factor=0)


class TestPlan:
    def test_s8_plan(self):
        plan = plan_roi_window(samsung_tab_s8())
        assert plan.min_side <= plan.side == plan.max_side
        assert abs(plan.max_side - 300) <= 10  # paper: ~300 px max
        assert plan.meets_foveal_minimum

    def test_pixel_plan_meets_foveal(self):
        plan = plan_roi_window(pixel_7_pro())
        assert plan.meets_foveal_minimum

    def test_infeasible_device_raises(self):
        s8 = samsung_tab_s8()
        glacial = s8.with_overrides(npu_a_ms_per_px=s8.npu_a_ms_per_px * 100)
        with pytest.raises(RuntimeError, match="foveal"):
            plan_roi_window(glacial)

    def test_side_for_frame_preserves_fraction(self):
        plan = plan_roi_window(samsung_tab_s8())
        side_128 = plan.side_for_frame(128)
        assert side_128 / 128 == pytest.approx(plan.side / 720, abs=0.01)

    def test_side_for_frame_clamps(self):
        plan = RoIWindowPlan("d", 100, 300, 300, 720)
        assert plan.side_for_frame(4) == 2  # floor of 2
        assert plan.side_for_frame(720) == 300
        with pytest.raises(ValueError):
            plan.side_for_frame(0)
