"""RoIDetector (server) and RoIAssistedUpscaler (client) integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.detector import RoIDetection, RoIDetector, center_roi
from repro.core.roi_search import RoIBox
from repro.core.upscaler import RoIAssistedUpscaler
from repro.render.games import GAME_TABLE, build_game
from repro.sr.interpolate import bilinear


class TestCenterRoI:
    def test_centered(self):
        box = center_roi(100, 200, 40)
        assert box.center == (100.0, 50.0)

    def test_clamps_to_frame(self):
        box = center_roi(30, 30, 100)
        assert box.width == 30 and box.height == 30


class TestDetector:
    def test_detects_synthetic_blob(self, synthetic_depth):
        detection = RoIDetector(16).detect(synthetic_depth)
        assert isinstance(detection, RoIDetection)
        blob = RoIBox(34, 24, 16, 16)
        assert detection.box.intersection_area(blob) > 0

    def test_box_inside_frame(self, synthetic_depth):
        box = RoIDetector(16).detect(synthetic_depth).box
        assert box.x_end <= 80 and box.y_end <= 60

    def test_window_clamped_to_frame(self):
        box = RoIDetector(500).detect(np.full((40, 50), 0.5)).box
        assert box.width == 40 and box.height == 40

    def test_validation(self):
        with pytest.raises(ValueError):
            RoIDetector(1)
        with pytest.raises(ValueError):
            RoIDetector(16).detect(np.zeros((4, 4, 3)))

    @pytest.mark.parametrize("game_id", [g for g, _, _ in GAME_TABLE])
    def test_centers_on_subject_for_every_game(self, game_id):
        """The paper's key behaviour: depth-guided RoI lands on the
        centre-biased foreground subject in all ten genres."""
        frame = build_game(game_id).render_frame(5, 224, 128)
        box = RoIDetector(54).detect(frame.depth).box
        cx, cy = box.center
        assert abs(cx - 112) < 40, f"{game_id}: RoI x={cx} far from centre"
        assert abs(cy - 64) < 48, f"{game_id}: RoI y={cy} far from centre"

    def test_detection_is_deterministic(self, g3_frame):
        a = RoIDetector(24).detect(g3_frame.depth).box
        b = RoIDetector(24).detect(g3_frame.depth).box
        assert a == b


class TestHybridUpscaler:
    @pytest.fixture(scope="class")
    def upscaled(self, tiny_runner):
        rng = np.random.default_rng(0)
        frame = rng.uniform(size=(32, 48, 3))
        roi = RoIBox(10, 8, 16, 16)
        result = RoIAssistedUpscaler(tiny_runner).upscale(frame, roi)
        return frame, roi, result

    def test_output_shape(self, upscaled):
        frame, roi, result = upscaled
        assert result.frame.shape == (64, 96, 3)
        assert result.output_pixels == 64 * 96

    def test_outside_roi_is_bilinear(self, upscaled):
        """Non-RoI pixels must exactly match the GPU bilinear path."""
        frame, roi, result = upscaled
        reference = bilinear(frame, 64, 96)
        hr_roi = roi.scaled(2)
        mask = np.ones((64, 96), dtype=bool)
        mask[hr_roi.y : hr_roi.y_end, hr_roi.x : hr_roi.x_end] = False
        np.testing.assert_allclose(result.frame[mask], reference[mask], atol=1e-12)

    def test_inside_roi_is_dnn(self, upscaled, tiny_runner):
        frame, roi, result = upscaled
        expected = tiny_runner.upscale(roi.extract(frame))
        hr_roi = result.roi_hr
        np.testing.assert_allclose(
            result.frame[hr_roi.y : hr_roi.y_end, hr_roi.x : hr_roi.x_end],
            expected,
            atol=1e-12,
        )

    def test_pixel_accounting(self, upscaled):
        frame, roi, result = upscaled
        assert result.roi_pixels == roi.area
        assert result.non_roi_pixels == 32 * 48 - roi.area

    def test_roi_must_fit(self, tiny_runner):
        upscaler = RoIAssistedUpscaler(tiny_runner)
        with pytest.raises(ValueError, match="exceeds frame"):
            upscaler.upscale(np.zeros((16, 16, 3)), RoIBox(10, 10, 10, 10))

    def test_frame_shape_validation(self, tiny_runner):
        with pytest.raises(ValueError):
            RoIAssistedUpscaler(tiny_runner).upscale(np.zeros((16, 16)), RoIBox(0, 0, 4, 4))
