"""Algorithm 1 RoI search and the RoIBox type."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.roi_search import (
    RoIBox,
    search_roi,
    search_roi_scored,
    warm_search_roi,
    window_sums,
)


def brute_force_best(values, win_h, win_w):
    """Exhaustive max-sum window (the oracle Algorithm 1 approximates)."""
    best, best_pos = -np.inf, (0, 0)
    h, w = values.shape
    for y in range(h - win_h + 1):
        for x in range(w - win_w + 1):
            s = values[y : y + win_h, x : x + win_w].sum()
            if s > best + 1e-12:
                best, best_pos = s, (y, x)
    return best, best_pos


def dense_oracle_box(values, win_h, win_w):
    """Dense SAT argmax with the same exact-tie center-bias rule: the
    ground truth a stride-1 coarse+fine search must reproduce exactly."""
    h, w = values.shape
    ys = np.arange(h - win_h + 1)
    xs = np.arange(w - win_w + 1)
    sums = window_sums(values, win_h, win_w, ys, xs)
    best = sums.max()
    tie_r, tie_c = np.nonzero(sums == best)
    cy, cx = (h - 1) / 2.0, (w - 1) / 2.0
    d2 = (tie_r + win_h / 2.0 - cy) ** 2 + (tie_c + win_w / 2.0 - cx) ** 2
    pick = int(np.argmin(d2))
    return RoIBox(x=int(tie_c[pick]), y=int(tie_r[pick]), width=win_w, height=win_h)


class TestWindowSums:
    def test_matches_brute_force(self, rng):
        values = rng.uniform(size=(20, 30))
        ys = np.arange(0, 13, 3)
        xs = np.arange(0, 23, 4)
        sums = window_sums(values, 8, 8, ys, xs)
        for i, y in enumerate(ys):
            for j, x in enumerate(xs):
                assert sums[i, j] == pytest.approx(values[y : y + 8, x : x + 8].sum())

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_property_full_grid(self, win_h, win_w):
        rng = np.random.default_rng(win_h * 10 + win_w)
        values = rng.uniform(size=(12, 14))
        ys = np.arange(0, 12 - win_h + 1)
        xs = np.arange(0, 14 - win_w + 1)
        sums = window_sums(values, win_h, win_w, ys, xs)
        best_exh, pos = brute_force_best(values, win_h, win_w)
        assert sums.max() == pytest.approx(best_exh)


class TestSearch:
    def test_finds_planted_blob(self):
        values = np.zeros((60, 80))
        values[34:44, 50:60] = 1.0
        box = search_roi(values, 10, 10, fine_stride=1)
        assert (box.y, box.x) == (34, 50)

    def test_fine_stride_one_matches_bruteforce(self, rng):
        values = rng.uniform(size=(40, 50)) ** 4  # peaky field
        box = search_roi(values, 12, 12, fine_stride=1)
        best, _ = brute_force_best(values, 12, 12)
        found = values[box.y : box.y_end, box.x : box.x_end].sum()
        # Coarse+fine is a heuristic; it must come close to the optimum.
        assert found >= 0.85 * best

    def test_center_tiebreak(self):
        """On a uniform map every window ties; the centre must win."""
        values = np.ones((40, 60))
        box = search_roi(values, 10, 10, fine_stride=1)
        cx, cy = box.center
        assert abs(cx - 30) <= 5 and abs(cy - 20) <= 5

    def test_full_size_window(self):
        values = np.ones((16, 16))
        box = search_roi(values, 16, 16)
        assert (box.x, box.y) == (0, 0)

    def test_stride_defaults_follow_paper(self, rng):
        """Coarse stride defaults to max(h, w)/2 and must still find a
        strong blob after fine refinement."""
        values = np.zeros((64, 64))
        values[20:36, 28:44] = 1.0
        box = search_roi(values, 16, 16)  # default strides
        overlap = box.intersection_area(RoIBox(28, 20, 16, 16))
        assert overlap >= 0.5 * 16 * 16

    def test_validation(self):
        values = np.ones((10, 10))
        with pytest.raises(ValueError, match="larger than map"):
            search_roi(values, 20, 20)
        with pytest.raises(ValueError, match="strides"):
            search_roi(values, 4, 4, coarse_stride=0)
        with pytest.raises(ValueError, match="fine stride"):
            search_roi(values, 4, 4, coarse_stride=2, fine_stride=3)
        # Message differs by mode: the function's own "2-D" check, or the
        # @shaped rank contract when REPRO_CONTRACTS=1.
        with pytest.raises(ValueError, match="2-D|rank 3"):
            search_roi(np.ones((4, 4, 3)), 2, 2)

    def test_exact_tie_regression(self):
        """A window whose sum falls within 1e-9 of the max but below it
        must NOT enter the tie set. The seed's absolute epsilon let this
        center-closer near-miss window steal the win from the true
        maximum at the corner."""
        values = np.zeros((8, 8))
        values[0:2, 0:2] = 0.25  # corner window: sum exactly 1.0
        values[3:5, 3:5] = 0.25
        values[4, 4] = 0.25 - 1e-10  # center window: sum 1.0 - 1e-10
        box = search_roi(values, 2, 2, coarse_stride=1, fine_stride=1)
        assert (box.y, box.x) == (0, 0)

    def test_uniform_map_still_ties_to_center(self):
        """Exact ties (uniform map) must still break toward the centre —
        the epsilon fix may only shrink the tie set, never the rule."""
        values = np.full((12, 16), 0.125)
        box = search_roi(values, 4, 4, coarse_stride=1, fine_stride=1)
        # Both (3, 5) and (4, 6) anchors are equidistant from the centre;
        # scan order resolves to the first.
        assert (box.y, box.x) == (3, 5)


class TestDenseOracle:
    """Stride-1 coarse+fine must equal the dense argmax *exactly* —
    including tie-breaking — with and without the bbox fast path."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_maps(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.random((30, 40)) ** 3
        oracle = dense_oracle_box(values, 8, 8)
        assert search_roi(values, 8, 8, coarse_stride=1, fine_stride=1) == oracle
        rows, cols = np.nonzero(values > 0.5)
        if rows.size:
            bbox = (rows.min(), rows.max(), cols.min(), cols.max())
            sparse = np.where(values > 0.5, values, 0.0)
            assert (
                search_roi_scored(
                    sparse, 8, 8, coarse_stride=1, fine_stride=1, bbox=bbox
                ).box
                == dense_oracle_box(sparse, 8, 8)
            )

    def test_all_background(self):
        values = np.zeros((20, 24))
        oracle = dense_oracle_box(values, 6, 6)
        assert search_roi(values, 6, 6, coarse_stride=1, fine_stride=1) == oracle

    def test_single_plane(self):
        values = np.full((20, 24), 0.7)
        oracle = dense_oracle_box(values, 6, 6)
        assert search_roi(values, 6, 6, coarse_stride=1, fine_stride=1) == oracle

    def test_window_equals_frame(self):
        values = np.random.default_rng(3).random((16, 16))
        assert search_roi(values, 16, 16) == RoIBox(0, 0, 16, 16)
        assert warm_search_roi(
            values, 16, 16, prev=RoIBox(0, 0, 16, 16)
        ).box == RoIBox(0, 0, 16, 16)

    @pytest.mark.parametrize("seed", range(4))
    def test_warm_with_dense_boundary_matches_oracle(self, seed):
        """A warm search whose boundary covers the whole valid range at
        stride 1 sees every window, so it must also match the oracle."""
        rng = np.random.default_rng(100 + seed)
        values = rng.random((24, 30))
        oracle = dense_oracle_box(values, 6, 6)
        local = warm_search_roi(
            values, 6, 6, prev=RoIBox(10, 8, 6, 6), fine_stride=1, boundary=30
        )
        assert local.box == oracle


class TestRoIBox:
    def test_geometry(self):
        box = RoIBox(4, 6, 10, 8)
        assert box.x_end == 14 and box.y_end == 14
        assert box.area == 80
        assert box.center == (9.0, 10.0)

    def test_scaled(self):
        assert RoIBox(2, 3, 4, 5).scaled(2) == RoIBox(4, 6, 8, 10)
        with pytest.raises(ValueError):
            RoIBox(0, 0, 2, 2).scaled(0)

    def test_clamped(self):
        assert RoIBox(18, 0, 8, 8).clamped(20, 20) == RoIBox(12, 0, 8, 8)
        with pytest.raises(ValueError):
            RoIBox(0, 0, 30, 30).clamped(20, 20)

    def test_extract(self, rng):
        frame = rng.uniform(size=(20, 30, 3))
        box = RoIBox(5, 2, 10, 6)
        np.testing.assert_array_equal(box.extract(frame), frame[2:8, 5:15])

    def test_contains_and_intersection(self):
        a = RoIBox(0, 0, 10, 10)
        b = RoIBox(5, 5, 10, 10)
        assert a.contains_point(9, 9) and not a.contains_point(10, 10)
        assert a.intersection_area(b) == 25
        assert a.intersection_area(RoIBox(20, 20, 5, 5)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RoIBox(0, 0, 0, 5)
        with pytest.raises(ValueError):
            RoIBox(-1, 0, 5, 5)

    @given(st.integers(0, 20), st.integers(0, 20), st.integers(1, 10), st.integers(1, 10), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_scaling_preserves_area_ratio(self, x, y, w, h, s):
        box = RoIBox(x, y, w, h)
        assert box.scaled(s).area == box.area * s * s
