"""Algorithm 1 RoI search and the RoIBox type."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.roi_search import RoIBox, search_roi, window_sums


def brute_force_best(values, win_h, win_w):
    """Exhaustive max-sum window (the oracle Algorithm 1 approximates)."""
    best, best_pos = -np.inf, (0, 0)
    h, w = values.shape
    for y in range(h - win_h + 1):
        for x in range(w - win_w + 1):
            s = values[y : y + win_h, x : x + win_w].sum()
            if s > best + 1e-12:
                best, best_pos = s, (y, x)
    return best, best_pos


class TestWindowSums:
    def test_matches_brute_force(self, rng):
        values = rng.uniform(size=(20, 30))
        ys = np.arange(0, 13, 3)
        xs = np.arange(0, 23, 4)
        sums = window_sums(values, 8, 8, ys, xs)
        for i, y in enumerate(ys):
            for j, x in enumerate(xs):
                assert sums[i, j] == pytest.approx(values[y : y + 8, x : x + 8].sum())

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_property_full_grid(self, win_h, win_w):
        rng = np.random.default_rng(win_h * 10 + win_w)
        values = rng.uniform(size=(12, 14))
        ys = np.arange(0, 12 - win_h + 1)
        xs = np.arange(0, 14 - win_w + 1)
        sums = window_sums(values, win_h, win_w, ys, xs)
        best_exh, pos = brute_force_best(values, win_h, win_w)
        assert sums.max() == pytest.approx(best_exh)


class TestSearch:
    def test_finds_planted_blob(self):
        values = np.zeros((60, 80))
        values[34:44, 50:60] = 1.0
        box = search_roi(values, 10, 10, fine_stride=1)
        assert (box.y, box.x) == (34, 50)

    def test_fine_stride_one_matches_bruteforce(self, rng):
        values = rng.uniform(size=(40, 50)) ** 4  # peaky field
        box = search_roi(values, 12, 12, fine_stride=1)
        best, _ = brute_force_best(values, 12, 12)
        found = values[box.y : box.y_end, box.x : box.x_end].sum()
        # Coarse+fine is a heuristic; it must come close to the optimum.
        assert found >= 0.85 * best

    def test_center_tiebreak(self):
        """On a uniform map every window ties; the centre must win."""
        values = np.ones((40, 60))
        box = search_roi(values, 10, 10, fine_stride=1)
        cx, cy = box.center
        assert abs(cx - 30) <= 5 and abs(cy - 20) <= 5

    def test_full_size_window(self):
        values = np.ones((16, 16))
        box = search_roi(values, 16, 16)
        assert (box.x, box.y) == (0, 0)

    def test_stride_defaults_follow_paper(self, rng):
        """Coarse stride defaults to max(h, w)/2 and must still find a
        strong blob after fine refinement."""
        values = np.zeros((64, 64))
        values[20:36, 28:44] = 1.0
        box = search_roi(values, 16, 16)  # default strides
        overlap = box.intersection_area(RoIBox(28, 20, 16, 16))
        assert overlap >= 0.5 * 16 * 16

    def test_validation(self):
        values = np.ones((10, 10))
        with pytest.raises(ValueError, match="larger than map"):
            search_roi(values, 20, 20)
        with pytest.raises(ValueError, match="strides"):
            search_roi(values, 4, 4, coarse_stride=0)
        with pytest.raises(ValueError, match="fine stride"):
            search_roi(values, 4, 4, coarse_stride=2, fine_stride=3)
        with pytest.raises(ValueError, match="2-D"):
            search_roi(np.ones((4, 4, 3)), 2, 2)


class TestRoIBox:
    def test_geometry(self):
        box = RoIBox(4, 6, 10, 8)
        assert box.x_end == 14 and box.y_end == 14
        assert box.area == 80
        assert box.center == (9.0, 10.0)

    def test_scaled(self):
        assert RoIBox(2, 3, 4, 5).scaled(2) == RoIBox(4, 6, 8, 10)
        with pytest.raises(ValueError):
            RoIBox(0, 0, 2, 2).scaled(0)

    def test_clamped(self):
        assert RoIBox(18, 0, 8, 8).clamped(20, 20) == RoIBox(12, 0, 8, 8)
        with pytest.raises(ValueError):
            RoIBox(0, 0, 30, 30).clamped(20, 20)

    def test_extract(self, rng):
        frame = rng.uniform(size=(20, 30, 3))
        box = RoIBox(5, 2, 10, 6)
        np.testing.assert_array_equal(box.extract(frame), frame[2:8, 5:15])

    def test_contains_and_intersection(self):
        a = RoIBox(0, 0, 10, 10)
        b = RoIBox(5, 5, 10, 10)
        assert a.contains_point(9, 9) and not a.contains_point(10, 10)
        assert a.intersection_area(b) == 25
        assert a.intersection_area(RoIBox(20, 20, 5, 5)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RoIBox(0, 0, 0, 5)
        with pytest.raises(ValueError):
            RoIBox(-1, 0, 5, 5)

    @given(st.integers(0, 20), st.integers(0, 20), st.integers(1, 10), st.integers(1, 10), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_scaling_preserves_area_ratio(self, x, y, w, h, s):
        box = RoIBox(x, y, w, h)
        assert box.scaled(s).area == box.area * s * s
