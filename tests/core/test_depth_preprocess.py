"""Depth-map preprocessing pipeline (paper Fig. 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import RoIConfig
from repro.core.depth_preprocess import (
    center_weight_matrix,
    extract_foreground,
    foreground_threshold,
    layer_bounds,
    nearness,
    preprocess_depth,
)


class TestNearness:
    def test_inverts_depth(self):
        depth = np.array([[0.0, 0.5, 1.0]])
        np.testing.assert_allclose(nearness(depth), [[1.0, 0.5, 0.0]])

    def test_validation(self):
        with pytest.raises(ValueError):
            nearness(np.array([1.0, 2.0]))  # out of range
        with pytest.raises(ValueError):
            nearness(np.zeros((2, 2, 2)))
        with pytest.raises(ValueError):
            nearness(np.zeros((0, 3)))


class TestForegroundExtraction:
    def test_bimodal_separation(self):
        """A near cluster and a far cluster with a clean gap."""
        depth = np.full((40, 40), 0.7)
        depth[10:25, 10:25] = 0.1
        mask, threshold = extract_foreground(depth)
        assert 0.1 < threshold < 0.7
        assert mask[15, 15] and not mask[0, 0]

    def test_synthetic_scene(self, synthetic_depth):
        mask, threshold = extract_foreground(synthetic_depth)
        assert mask[30, 40]  # the near blob
        assert not mask[15, 15]  # mid background

    def test_sky_always_background(self, synthetic_depth):
        mask, _ = extract_foreground(synthetic_depth)
        assert not mask[:5].any()

    def test_all_sky_degenerates_gracefully(self):
        assert foreground_threshold(np.ones((10, 10))) == 1.0

    def test_single_plane(self):
        depth = np.full((10, 10), 0.3)
        assert foreground_threshold(depth) == pytest.approx(0.3)

    def test_unimodal_falls_back_to_otsu(self, rng):
        """Smooth unimodal depth has no gap; Otsu must produce a split."""
        depth = np.clip(rng.normal(0.5, 0.08, size=(50, 50)), 0.01, 0.99)
        threshold = foreground_threshold(depth)
        assert 0.2 < threshold < 0.8
        mask = depth <= threshold
        assert 0.05 < mask.mean() < 0.95

    def test_otsu_far_end_regression(self):
        """When between-class variance peaks in the last histogram bin,
        an unclamped argmax returns the histogram's upper edge itself —
        classifying every finite pixel as foreground and turning the
        masking step into a no-op. The split must stay strictly inside
        the histogram. (Three micro-clusters: cumulative float error
        keeps the valley walk from firing, and the mass sits so close to
        the near end that sigma_b is maximized at the far edge.)"""
        depth = np.concatenate(
            [
                np.full(47, 0.5),
                np.full(2, 0.5 + 1e-9),
                np.full(2, 0.5 + 2e-9),
            ]
        ).reshape(3, 17)
        threshold = foreground_threshold(depth)
        assert threshold < depth.max()
        assert not (depth <= threshold).all()


class TestCenterWeights:
    def test_peak_at_center(self):
        weights = center_weight_matrix(31, 41)
        assert weights[15, 20] == weights.max()
        assert weights[0, 0] < weights[15, 20]

    def test_amplitude_from_config(self):
        cfg = RoIConfig(center_weight=0.7)
        assert center_weight_matrix(21, 21, cfg).max() == pytest.approx(0.7)

    def test_symmetry(self):
        weights = center_weight_matrix(20, 30)
        np.testing.assert_allclose(weights, weights[::-1])
        np.testing.assert_allclose(weights, weights[:, ::-1])

    def test_validation(self):
        with pytest.raises(ValueError):
            center_weight_matrix(0, 10)

    def test_cached_and_read_only(self):
        """Repeat calls with the same (shape, config) hit the memo and the
        shared array must be immutable so one caller can't poison it."""
        a = center_weight_matrix(24, 36)
        b = center_weight_matrix(24, 36)
        assert a is b
        assert not a.flags.writeable
        with pytest.raises(ValueError):
            a[0, 0] = 9.0

    def test_cache_distinguishes_config(self):
        # Odd dims so a pixel sits exactly at the centre (max == amplitude).
        default = center_weight_matrix(17, 17)
        custom = center_weight_matrix(17, 17, RoIConfig(center_weight=0.9))
        assert custom.max() == pytest.approx(0.9)
        assert default.max() != pytest.approx(0.9)


class TestLayering:
    def test_range_mode_even_spacing(self):
        bounds = layer_bounds(np.array([0.0, 1.0]), 4, mode="range")
        np.testing.assert_allclose(bounds, [0, 0.25, 0.5, 0.75, 1.0])

    def test_quantile_mode_equal_population(self, rng):
        values = rng.exponential(size=4000)
        bounds = layer_bounds(values, 4, mode="quantile")
        counts = np.histogram(values, bins=bounds)[0]
        assert counts.min() > 0.8 * counts.max()

    def test_bounds_strictly_increasing(self):
        bounds = layer_bounds(np.full(10, 0.5), 4, mode="quantile")
        assert (np.diff(bounds) > 0).all()

    def test_degenerate_bounds_large_magnitude_regression(self):
        """A fixed +1e-12 bump vanishes under float spacing at large
        magnitudes (1e6 + 1e-12 == 1e6), leaving duplicate bin edges that
        make every layer after the first empty. The separation must scale
        with the value (np.nextafter)."""
        for mode in ("quantile", "range"):
            bounds = layer_bounds(np.full(10, 1e6), 4, mode=mode)
            assert (np.diff(bounds) > 0).all(), mode

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            layer_bounds(np.ones(4), 2, mode="magic")
        with pytest.raises(ValueError):
            layer_bounds(np.array([]), 2)


class TestFullPipeline:
    def test_synthetic_blob_selected(self, synthetic_depth):
        result = preprocess_depth(synthetic_depth)
        # The near central blob must survive into the processed map.
        assert result.processed[30, 40] > 0
        # Sky must not.
        assert (result.processed[:5] == 0).all()

    def test_intermediates_exposed(self, synthetic_depth):
        result = preprocess_depth(synthetic_depth)
        assert result.foreground_mask.dtype == bool
        assert result.weight_matrix.shape == synthetic_depth.shape
        assert result.layer_index.shape == synthetic_depth.shape
        assert 0 <= result.selected_layer < RoIConfig().n_layers
        assert result.shape == synthetic_depth.shape

    def test_background_layer_is_minus_one(self, synthetic_depth):
        result = preprocess_depth(synthetic_depth)
        assert (result.layer_index[:5] == -1).all()

    def test_all_background_frame(self):
        result = preprocess_depth(np.ones((20, 30)))
        # Degenerate frame: processed map falls back to centre weighting.
        assert result.processed[10, 15] > result.processed[0, 0]

    def test_paper_literal_range_mode_runs(self, synthetic_depth):
        result = preprocess_depth(synthetic_depth, RoIConfig(layer_mode="range"))
        assert result.processed.shape == synthetic_depth.shape

    def test_game_depth(self, g3_frame):
        result = preprocess_depth(g3_frame.depth)
        assert (result.processed > 0).any()
        assert result.foreground_threshold < 1.0
