"""Fast RoI server path vs the frozen legacy baseline.

The fast path (shared summed-area table, banded coarse pass, cached
preprocessing, warm start) must be output-equivalent to the pre-PR
implementation frozen in ``benchmarks/_legacy_roi.py``: every Fig. 8
intermediate bit-identical, every Algorithm-1 box equal, on every game
scene. The exact numpy replicas inside the fast preprocessing
(``np.histogram`` / ``np.quantile``) are fuzzed against numpy here. The
warm-start path is exempt from bit-identity only through its documented
accept criterion — tested separately.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from _legacy_roi import (  # noqa: E402
    LegacyRoIDetector,
    legacy_preprocess_depth,
    legacy_search_roi,
    legacy_window_sums,
)
from repro.core.config import RoIConfig  # noqa: E402
from repro.core.depth_preprocess import (  # noqa: E402
    _quantile_linear,
    _uniform_histogram,
    preprocess_depth,
)
from repro.core.detector import RoIDetector  # noqa: E402
from repro.core.roi_search import (  # noqa: E402
    _integral_image,
    search_roi_scored,
    warm_search_roi,
    window_sums,
)
from repro.render.games import GAME_BUILDERS, build_game  # noqa: E402

GAME_IDS = list(GAME_BUILDERS)


@pytest.fixture(scope="module")
def scene_depths():
    """One small rendered depth buffer per game scene."""
    return {
        gid: build_game(gid).render_frame(5, 160, 96).depth for gid in GAME_IDS
    }


class TestPreprocessEquivalence:
    """Every Fig. 8 intermediate bit-identical to the frozen seed."""

    def test_all_scenes(self, scene_depths):
        for gid, depth in scene_depths.items():
            legacy = legacy_preprocess_depth(depth)
            fast = preprocess_depth(depth)
            assert fast.foreground_threshold == legacy.foreground_threshold, gid
            assert fast.selected_layer == legacy.selected_layer, gid
            np.testing.assert_array_equal(
                fast.foreground_mask, legacy.foreground_mask, err_msg=gid
            )
            np.testing.assert_array_equal(
                fast.processed, legacy.processed, err_msg=gid
            )
            # Lazy full-frame intermediates must materialize identically.
            np.testing.assert_array_equal(fast.weighted, legacy.weighted, err_msg=gid)
            np.testing.assert_array_equal(
                fast.layer_index, legacy.layer_index, err_msg=gid
            )

    def test_degenerate_all_background(self):
        depth = np.ones((24, 32))
        legacy = legacy_preprocess_depth(depth)
        fast = preprocess_depth(depth)
        np.testing.assert_array_equal(fast.processed, legacy.processed)
        # Degenerate frame falls back to centre weighting; the bbox must
        # still track the nonzero extent of whatever map came out.
        r0, r1, c0, c1 = fast.processed_bbox
        rows, cols = np.nonzero(fast.processed)
        assert (r0, r1, c0, c1) == (
            rows.min(), rows.max(), cols.min(), cols.max()
        )

    def test_bbox_is_nonzero_extent(self, scene_depths):
        for gid, depth in scene_depths.items():
            fast = preprocess_depth(depth)
            r0, r1, c0, c1 = fast.processed_bbox
            rows, cols = np.nonzero(fast.processed)
            assert (r0, r1) == (rows.min(), rows.max()), gid
            assert (c0, c1) == (cols.min(), cols.max()), gid


class TestNumpyReplicas:
    """The single-pass replicas must match numpy bit-for-bit."""

    def test_histogram_fuzz(self, rng):
        for trial in range(120):
            n = int(rng.integers(1, 4000))
            scale = 10.0 ** int(rng.integers(-5, 6))
            values = rng.random(n) * scale
            if trial % 5 == 0:
                values = np.round(values, 2)  # exact edge collisions
            if trial % 11 == 0:
                values[:] = values[0] + np.arange(n) * 1e-15
            lo, hi = float(values.min()), float(values.max())
            if hi <= lo:
                continue
            n_bins = int(rng.integers(2, 128))
            try:
                counts_ref, edges_ref = np.histogram(
                    values, bins=n_bins, range=(lo, hi)
                )
            except ValueError:
                # numpy refuses sub-ulp ranges ("too many bins for data
                # range"); production guards those out before histogramming.
                continue
            counts, edges = _uniform_histogram(values, n_bins, lo, hi)
            np.testing.assert_array_equal(counts, counts_ref)
            np.testing.assert_array_equal(edges, edges_ref)

    def test_quantile_fuzz(self, rng):
        for trial in range(120):
            n = int(rng.integers(1, 3000))
            scale = 10.0 ** int(rng.integers(-5, 6))
            values = rng.random(n) * scale
            if trial % 7 == 0:
                values = np.round(values, 1)  # heavy duplicates
            if trial % 13 == 0:
                values[:] = values[0]  # constant
            qs = np.linspace(0.0, 1.0, int(rng.integers(2, 9)))
            np.testing.assert_array_equal(
                _quantile_linear(values, qs), np.quantile(values, qs)
            )


class TestSearchEquivalence:
    def test_shared_sat_matches_fresh(self, rng):
        values = rng.random((40, 56))
        sat = _integral_image(values)
        ys = np.arange(0, 33, 3)
        xs = np.arange(0, 49, 5)
        np.testing.assert_array_equal(
            window_sums(values, 8, 8, ys, xs),
            window_sums(None, 8, 8, ys, xs, sat=sat),
        )
        np.testing.assert_array_equal(
            window_sums(values, 8, 8, ys, xs),
            legacy_window_sums(values, 8, 8, ys, xs),
        )

    def test_banded_matches_legacy_on_scenes(self, scene_depths):
        for gid, depth in scene_depths.items():
            pre = preprocess_depth(depth)
            box_legacy = legacy_search_roi(pre.processed, 48, 48)
            res = search_roi_scored(pre.processed, 48, 48, bbox=pre.processed_bbox)
            assert res.box == box_legacy, gid
            assert res.mode == "full"

    def test_banded_matches_legacy_random_sparse(self, rng):
        """Random sparse maps with a genuine bbox prune."""
        for _ in range(25):
            values = np.zeros((60, 80))
            r0, c0 = int(rng.integers(0, 40)), int(rng.integers(0, 56))
            h, w = int(rng.integers(4, 20)), int(rng.integers(4, 24))
            values[r0 : r0 + h, c0 : c0 + w] = rng.random((h, w)) + 0.1
            rows, cols = np.nonzero(values)
            bbox = (rows.min(), rows.max(), cols.min(), cols.max())
            box_legacy = legacy_search_roi(values, 12, 12)
            assert (
                search_roi_scored(values, 12, 12, bbox=bbox).box == box_legacy
            )

    def test_near_tie_falls_back_to_full_table(self):
        """Mirror-symmetric content creates exact ties that only the
        full-frame table resolves the same way as the seed; the banded
        path must detect the near-tie and re-run on the full table."""
        values = np.zeros((64, 96))
        values[20:30, 10:20] = 0.5  # two identical blobs, mirrored
        values[20:30, 76:86] = 0.5
        rows, cols = np.nonzero(values)
        bbox = (rows.min(), rows.max(), cols.min(), cols.max())
        box_legacy = legacy_search_roi(values, 10, 10, fine_stride=1)
        box_fast = search_roi_scored(
            values, 10, 10, fine_stride=1, bbox=bbox
        ).box
        assert box_fast == box_legacy


class TestDetectorEquivalence:
    def test_boxes_equal_all_scenes(self, scene_depths):
        for gid, depth in scene_depths.items():
            fast = RoIDetector(48).detect(depth)
            box_legacy, _ = LegacyRoIDetector(48).detect(depth)
            assert fast.box == box_legacy, gid
            assert fast.search_mode == "full"
            assert fast.score > 0


class TestWarmStart:
    def test_static_scene_reproduces_full_box(self, scene_depths):
        depth = scene_depths["G3"]
        det = RoIDetector(48, RoIConfig(warm_start=True))
        first = det.detect(depth)
        second = det.detect(depth)
        assert first.search_mode == "full"
        assert second.search_mode == "warm"
        assert second.box == first.box
        # Identical depth + identical (reused) stats => identical score.
        assert second.score == first.score

    def test_score_drop_falls_back_to_full(self, scene_depths):
        depth = scene_depths["G3"]
        det = RoIDetector(48, RoIConfig(warm_start=True))
        det.detect(depth)
        # A scene cut: content collapses to a tiny far-corner blob. The
        # local winner's sum craters below the accept floor, so the
        # detector must fall back and match a stateless full search.
        cut = np.full_like(depth, 0.95)
        cut[2:10, 2:10] = 0.05
        warm_result = det.detect(cut)
        cold_result = RoIDetector(48).detect(cut)
        assert warm_result.search_mode == "full"
        assert warm_result.box == cold_result.box

    def test_warm_only_differs_via_documented_criterion(self, scene_depths):
        """Any frame whose box differs from the stateless full path must
        be a warm-accepted frame (score >= fraction * reference)."""
        game = build_game("G3")
        frames = [game.render_frame(i, 160, 96).depth for i in range(8)]
        cfg = RoIConfig(warm_start=True)
        warm_det = RoIDetector(48, cfg)
        ref = 0.0
        for d in frames:
            r = warm_det.detect(d)
            full_box = RoIDetector(48).detect(d).box
            if r.search_mode == "full":
                ref = r.score
            else:
                assert r.score >= cfg.warm_start_fraction * ref
                ref = max(ref, r.score)
            if r.box != full_box:
                assert r.search_mode == "warm"

    def test_stale_stats_degenerate_returns_none(self, scene_depths):
        depth = scene_depths["G3"]
        full = preprocess_depth(depth)
        # No pixel sits under a stale threshold of ~0 => None (caller
        # falls back to the full pipeline).
        stats = full.stats._replace(foreground_threshold=-1.0)
        assert preprocess_depth(depth, reuse=stats) is None

    def test_reusing_own_stats_is_identity(self, scene_depths):
        depth = scene_depths["G3"]
        full = preprocess_depth(depth)
        again = preprocess_depth(depth, reuse=full.stats)
        np.testing.assert_array_equal(again.processed, full.processed)
        assert again.selected_layer == full.selected_layer

    def test_reset_drops_temporal_state(self, scene_depths):
        depth = scene_depths["G3"]
        det = RoIDetector(48, RoIConfig(warm_start=True))
        det.detect(depth)
        det.reset()
        assert det.detect(depth).search_mode == "full"

    def test_shape_change_disables_warm(self, scene_depths):
        det = RoIDetector(48, RoIConfig(warm_start=True))
        det.detect(scene_depths["G3"])
        other = build_game("G3").render_frame(5, 128, 80).depth
        assert det.detect(other).search_mode == "full"

    def test_warm_search_grid_contains_prev_anchor(self, rng):
        values = rng.random((50, 70))
        full = search_roi_scored(values, 16, 16)
        local = warm_search_roi(values, 16, 16, prev=full.box)
        assert local.mode == "warm"
        # Static map: the local pass re-finds at least the previous box.
        assert local.score >= full.score or local.box == full.box
