"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import RoIConfig
from repro.render.games import build_game
from repro.sr.pretrained import default_sr_model
from repro.sr.runner import SRRunner


def pytest_collection_modifyitems(config, items):
    # Every test that isn't explicitly `slow` belongs to the fast tier-1
    # set that scripts/check.sh runs (`pytest -m tier1`).
    for item in items:
        if "slow" not in item.keywords:
            item.add_marker(pytest.mark.tier1)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_model():
    """A 1-block/8-channel EDSR, trained once and cached under .cache/."""
    return default_sr_model(profile="tiny")


@pytest.fixture(scope="session")
def tiny_runner(tiny_model) -> SRRunner:
    return SRRunner(tiny_model)


@pytest.fixture(scope="session")
def g3_frame():
    """One small rendered (color, depth) pair from the Witcher-3-like scene."""
    return build_game("G3").render_frame(2, 96, 64)


@pytest.fixture(scope="session")
def g3_sequence():
    """Six consecutive small frames of G3 (for codec/streaming tests)."""
    game = build_game("G3")
    return [game.render_frame(i, 96, 64) for i in range(6)]


@pytest.fixture
def roi_config() -> RoIConfig:
    return RoIConfig()


@pytest.fixture
def synthetic_depth() -> np.ndarray:
    """A depth map with a clear near blob on a far background + sky."""
    depth = np.full((60, 80), 0.6)
    depth[:10, :] = 1.0  # sky
    depth[24:40, 34:50] = 0.08  # near object, slightly right of centre
    depth[50:, :] = 0.2  # near ground strip
    return depth


def numeric_gradient(fn, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` wrt ``array`` (dense)."""
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn()
        flat[i] = orig - eps
        lo = fn()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad
