"""NEMO reconstruction math."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.nemo import reconstruct_nonreference
from repro.sr.interpolate import bilinear


class TestReconstruction:
    def test_static_scene_zero_residual_is_identity(self, rng):
        hr = rng.uniform(size=(32, 48, 3))
        mv = np.zeros((2, 3, 2), dtype=np.int64)  # 16x24 LR, block 8
        residual = np.zeros((16, 24, 3))
        out = reconstruct_nonreference(hr, mv, residual, scale=2, block=8)
        np.testing.assert_allclose(out, hr)

    def test_translation_recovered_via_mvs(self, rng):
        """HR warp with 2x-scaled MVs reproduces a global LR shift."""
        big = rng.uniform(size=(48, 64, 3))
        hr_ref = big[0:32, 0:48]
        hr_cur = big[4:36, 6:54]  # shifted by (4, 6) HR px = (2, 3) LR px
        mv = np.tile(np.array([2, 3], dtype=np.int64), (2, 3, 1))
        out = reconstruct_nonreference(hr_ref, mv, np.zeros((16, 24, 3)), 2, 8)
        # Interior matches (borders clamp).
        np.testing.assert_allclose(out[4:-8, 8:-8], hr_cur[4:-8, 8:-8], atol=1e-12)

    def test_residual_added_after_upscale(self):
        hr = np.zeros((16, 16, 3))
        residual = np.full((8, 8, 3), 0.25)
        mv = np.zeros((1, 1, 2), dtype=np.int64)
        out = reconstruct_nonreference(hr, mv, residual, 2, 8)
        expected = np.clip(bilinear(residual, 16, 16), 0, 1)
        np.testing.assert_allclose(out, expected)

    def test_output_clipped(self):
        hr = np.ones((16, 16, 3))
        residual = np.full((8, 8, 3), 0.9)
        out = reconstruct_nonreference(hr, np.zeros((1, 1, 2), dtype=np.int64), residual, 2, 8)
        assert out.max() <= 1.0

    def test_validation(self, rng):
        hr = rng.uniform(size=(16, 16, 3))
        with pytest.raises(ValueError, match="HR reference"):
            reconstruct_nonreference(np.zeros((16, 16)), np.zeros((1, 1, 2)), np.zeros((8, 8, 3)), 2, 8)
        with pytest.raises(ValueError, match="residual"):
            reconstruct_nonreference(hr, np.zeros((1, 1, 2), dtype=np.int64), np.zeros((4, 4, 3)), 2, 8)
