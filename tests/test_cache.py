"""Content-addressed artifact cache."""

from __future__ import annotations

from repro.cache import cache_dir, config_key, load_or_build


def test_config_key_stable_and_order_insensitive():
    assert config_key({"a": 1, "b": 2}) == config_key({"b": 2, "a": 1})
    assert config_key({"a": 1}) != config_key({"a": 2})


def test_load_or_build_caches(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    calls = []

    def builder():
        calls.append(1)
        return {"value": 42}

    a = load_or_build("thing", {"x": 1}, builder)
    b = load_or_build("thing", {"x": 1}, builder)
    assert a == b == {"value": 42}
    assert len(calls) == 1  # second call hit the cache


def test_different_config_rebuilds(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert load_or_build("t", {"x": 1}, lambda: 1) == 1
    assert load_or_build("t", {"x": 2}, lambda: 2) == 2


def test_cache_dir_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
    assert cache_dir() == tmp_path / "custom"
    assert cache_dir().is_dir()
