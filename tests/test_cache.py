"""Content-addressed artifact cache."""

from __future__ import annotations

from repro.cache import (
    artifact_path,
    cache_dir,
    cache_disabled,
    config_key,
    load_or_build,
    memoize,
)


def test_config_key_stable_and_order_insensitive():
    assert config_key({"a": 1, "b": 2}) == config_key({"b": 2, "a": 1})
    assert config_key({"a": 1}) != config_key({"a": 2})


def test_load_or_build_caches(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    calls = []

    def builder():
        calls.append(1)
        return {"value": 42}

    a = load_or_build("thing", {"x": 1}, builder)
    b = load_or_build("thing", {"x": 1}, builder)
    assert a == b == {"value": 42}
    assert len(calls) == 1  # second call hit the cache


def test_different_config_rebuilds(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert load_or_build("t", {"x": 1}, lambda: 1) == 1
    assert load_or_build("t", {"x": 2}, lambda: 2) == 2


def test_cache_dir_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
    assert cache_dir() == tmp_path / "custom"
    assert cache_dir().is_dir()


def test_corrupt_artifact_rebuilds(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    path = artifact_path("t", {"x": 1})
    path.parent.mkdir(parents=True)
    path.write_bytes(b"\x04not a pickle")
    assert load_or_build("t", {"x": 1}, lambda: "rebuilt") == "rebuilt"
    # The corrupt file was replaced and now round-trips.
    assert load_or_build("t", {"x": 1}, lambda: "never called") == "rebuilt"


def test_cache_disable_env_bypasses_read_and_write(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
    assert cache_disabled()
    calls = []

    def builder():
        calls.append(1)
        return "fresh"

    assert load_or_build("t", {"x": 1}, builder) == "fresh"
    assert load_or_build("t", {"x": 1}, builder) == "fresh"
    assert len(calls) == 2  # no read-back
    assert not artifact_path("t", {"x": 1}).exists()  # no write-through


def test_no_temp_files_left_behind(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    load_or_build("t", {"x": 1}, lambda: list(range(100)))
    leftovers = [p for p in (tmp_path / "artifacts").iterdir() if p.suffix != ".pkl"]
    assert leftovers == []


def test_memoize_caches_by_kwargs_and_keeps_metadata(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    calls = []

    @memoize("square")
    def square(n):
        """Square a number."""
        calls.append(n)
        return n * n

    assert square.__name__ == "square"  # functools.wraps applied
    assert square.__doc__ == "Square a number."
    assert square(n=3) == 9
    assert square(n=3) == 9
    assert square(n=4) == 16
    assert calls == [3, 4]
