#!/usr/bin/env python
"""Session-pipeline smoke: a 5-frame G3 session per design, trace-validated.

Streams a short session through every client design, validates the
per-frame trace export against the pinned JSON schema
(:mod:`repro.observability.schema`), and sanity-checks the invariants the
staged pipeline guarantees (MTP sum == span sum, energy categories
present, one MTP network span). Exits non-zero on any violation — this is
the check.sh gate that the stage/trace architecture stays wired end to
end without running the heavy analysis matrices.

With ``--pipelined`` every design is additionally streamed through the
software-pipelined executor (``repro.streaming.pipelined``, depth 2) and
its canonical trace export is asserted byte-identical to the serial run.

``--gop-reuse``, ``--sr-backend NAME`` and ``--dispatch`` (mutually
exclusive) restrict the matrix to the RoI designs and stream them with
the corresponding SR-execution knob on, asserting its per-frame ledger
(reuse decisions / backend name / dispatch counters) is recorded.

``--scenario NAME`` streams over a trace-driven time-varying link
(skip-dropped transport, 100 ms delivery budget) and asserts the
``net.scenario/*`` ledger; ``--abr`` (requires ``--scenario``) closes
the bitrate control loop on the RoI designs and asserts the ``abr/*``
ledger — both still byte-identical between executors with --pipelined.

Usage: PYTHONPATH=src python scripts/pipeline_smoke.py [--out DIR] [--pipelined]
           [--gop-reuse | --sr-backend NAME | --dispatch]
           [--scenario NAME [--abr]]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

# Contracts must be on before any repro import: @shaped reads the flag at
# decoration (module-import) time. The smoke run doubles as the CI proof
# that a full session satisfies every seam contract.
os.environ.setdefault("REPRO_CONTRACTS", "1")

N_FRAMES = 5
GOP = 4  # both reference and dependent frames inside 5 streamed frames


def build_clients(device, runner, plan, roi_only=False):
    from repro.streaming import (
        BilinearClient,
        FullFrameSRClient,
        GameStreamSRClient,
        NemoClient,
        SRIntegratedDecoderClient,
    )

    roi_eval = plan.side_for_frame(64)
    if roi_only:
        # Only the designs with GOP-reuse / zoo-backend / dispatch paths;
        # run_session flips the knob on, exercising apply_client_knobs too.
        return [
            (GameStreamSRClient(device, runner, modeled_roi_side=plan.side), roi_eval),
            (SRIntegratedDecoderClient(device, runner), roi_eval),
        ]
    return [
        (GameStreamSRClient(device, runner, modeled_roi_side=plan.side), roi_eval),
        (NemoClient(device, runner), None),
        (BilinearClient(device), None),
        (FullFrameSRClient(device, runner), None),
        (SRIntegratedDecoderClient(device, runner), roi_eval),
    ]


def check_session(result, out_dir: Path) -> None:
    from repro.observability import validate_session_trace
    from repro.streaming import ENERGY_CATEGORIES

    export = result.to_trace_dict()
    validate_session_trace(export)
    path = result.export_trace_json(out_dir / f"{result.design}_trace.json")
    json.loads(path.read_text())  # the file itself parses back

    assert len(result.records) == N_FRAMES, "record count mismatch"
    assert result.metrics.counter("frames_total").value == N_FRAMES
    for record in result.records:
        trace = record.trace
        assert trace is not None, "staged session must attach traces"
        # MTP derived from the trace must equal the span sum exactly.
        assert record.mtp.total_ms == trace.total_modeled_ms
        # The downlink is counted once: one MTP network span (server's),
        # one energy-only RX span (client's).
        net = [s for s in trace.spans if s.name == "network"]
        assert [s.mtp for s in net] == [True, False], "network span ownership"
        # Every Fig. 12 category integrates to a finite number.
        cats = set(trace.energy_stages())
        assert cats <= set(ENERGY_CATEGORIES), f"unknown categories {cats}"
        assert record.energy.total > 0.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="trace output dir (default: tmp)")
    parser.add_argument(
        "--pipelined",
        action="store_true",
        help="also run each design through the pipelined executor and "
        "assert its canonical trace export is byte-identical to serial",
    )
    parser.add_argument(
        "--gop-reuse",
        action="store_true",
        help="smoke only the GOP-reuse designs with gop_reuse=True "
        "(warp-and-refresh SR cache) instead of the default matrix",
    )
    parser.add_argument(
        "--sr-backend",
        default=None,
        metavar="NAME",
        help="smoke only the RoI designs with the named zoo backend "
        "driving the RoI SR (see repro.sr.backends.available_backends)",
    )
    parser.add_argument(
        "--dispatch",
        action="store_true",
        help="smoke only the RoI designs with difficulty-aware tile "
        "dispatch (EDSR + bilinear_gpu pool, half-deadline budget)",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="stream over a trace-driven time-varying link (see "
        "repro.network.trace.available_scenarios) with skip-dropped "
        "transport and assert the net.scenario/* ledger is recorded",
    )
    parser.add_argument(
        "--abr",
        action="store_true",
        help="close the bitrate control loop on the RoI designs (requires "
        "--scenario; subsumes the static SR-execution knobs)",
    )
    args = parser.parse_args(argv)
    if sum(map(bool, (args.gop_reuse, args.sr_backend, args.dispatch))) > 1:
        parser.error("--gop-reuse, --sr-backend and --dispatch are exclusive")
    if args.abr and not args.scenario:
        parser.error("--abr requires --scenario")
    if args.abr and (args.gop_reuse or args.sr_backend or args.dispatch):
        parser.error("--abr subsumes --gop-reuse/--sr-backend/--dispatch")

    from repro.core.roi_sizing import plan_roi_window
    from repro.platform.device import get_device
    from repro.render.games import build_game
    from repro.sr.pretrained import default_sr_model
    from repro.sr.runner import SRRunner
    from repro.streaming import GameStreamServer, StreamGeometry, run_session

    device = get_device("samsung_tab_s8")
    plan = plan_roi_window(device)
    runner = SRRunner(default_sr_model(profile="tiny"))
    geometry = StreamGeometry(eval_lr_height=64, eval_lr_width=112, lr_source="native")

    sr_backend = None
    dispatch = None
    if args.sr_backend:
        from repro.sr.backends import build_backend

        sr_backend = build_backend(
            args.sr_backend, profile="tiny",
            runner=runner if args.sr_backend == "edsr" else None,
        )
    if args.dispatch:
        from repro.platform.calibration import REALTIME_DEADLINE_MS
        from repro.sr.backends import build_backend
        from repro.sr.dispatch import DifficultyDispatcher

        dispatch = DifficultyDispatcher(
            [build_backend("edsr", runner=runner), build_backend("bilinear_gpu")],
            budget_ms=REALTIME_DEADLINE_MS / 2,
        )
    net_budget_ms = 100.0

    def make_knobs():
        # A fresh knob set per run: the ABR controller is stateful, so
        # the serial and pipelined runs must each get their own instance
        # (the scenario link is rebuilt by name inside run_session).
        knobs = dict(
            gop_reuse=args.gop_reuse, sr_backend=sr_backend, dispatch=dispatch
        )
        if args.scenario:
            knobs["scenario"] = args.scenario
            knobs["link_deadline_ms"] = net_budget_ms
            knobs["skip_dropped"] = True
        if args.abr:
            from repro.streaming import build_abr

            del knobs["gop_reuse"], knobs["sr_backend"], knobs["dispatch"]
            knobs["abr"] = build_abr(
                plan.side, plan.min_side, 720,
                runner=runner, profile="tiny", net_budget_ms=net_budget_ms,
            )
        return knobs

    roi_only = (
        args.gop_reuse or sr_backend is not None or dispatch is not None
        or args.abr
    )

    def make_server(roi_side):
        return GameStreamServer(
            build_game("G3"), geometry, roi_side=roi_side, gop_size=GOP
        )

    out_dir = Path(args.out) if args.out else Path(tempfile.mkdtemp(prefix="traces-"))
    for client, roi_side in build_clients(device, runner, plan, roi_only):
        result = run_session(
            make_server(roi_side), client, n_frames=N_FRAMES, **make_knobs(),
        )
        check_session(result, out_dir)
        if args.scenario:
            # Every frame transmitted over the trace-driven link records
            # the conditions it saw.
            assert result.metrics.counter("net.scenario/frames").value == N_FRAMES, (
                f"net.scenario/frames not recorded for {result.design}"
            )
        if args.abr:
            assert result.metrics.counter("abr/frames").value == N_FRAMES, (
                f"abr/frames not recorded for {result.design}"
            )
        if args.gop_reuse:
            # Every frame of a reuse run carries the reuse decision record.
            assert result.metrics.counter("sr.reuse/frames").value == N_FRAMES, (
                f"sr.reuse/frames not recorded for {result.design}"
            )
            # Frame 0 is an I-frame: the cache must log a refresh for it.
            assert result.metrics.counter("sr.reuse/refreshes").value >= 1, (
                f"no sr.reuse refresh recorded for {result.design}"
            )
        if sr_backend is not None:
            # Every RoI-SR frame must carry the backend's name in its span.
            named = [
                r.trace.span("upscale").metadata.get("sr_backend")
                for r in result.records
                if r.trace.span("upscale").metadata.get("path") != (
                    "in_decoder_reconstruction"
                )
            ]
            assert named and all(n == sr_backend.name for n in named), (
                f"sr_backend={sr_backend.name} not recorded for {result.design}"
            )
        if dispatch is not None:
            assert result.metrics.counter("sr.dispatch/frames").value >= 1, (
                f"sr.dispatch/frames not recorded for {result.design}"
            )
        suffix = ""
        if args.pipelined:
            from repro.observability import canonicalize_session_trace
            from repro.streaming import run_session_pipelined

            piped = run_session_pipelined(
                make_server(roi_side), client, n_frames=N_FRAMES, depth=2,
                **make_knobs(),
            )
            serial_canon = json.dumps(
                canonicalize_session_trace(result.to_trace_dict()), sort_keys=True
            )
            piped_canon = json.dumps(
                canonicalize_session_trace(piped.to_trace_dict()), sort_keys=True
            )
            assert piped_canon == serial_canon, (
                f"pipelined canonical trace diverged from serial "
                f"for {result.design}"
            )
            suffix = "  pipelined byte-identical"
        print(
            f"ok: {result.design:22s} mtp {result.mean_mtp().total_ms:7.2f} ms  "
            f"energy {result.mean_energy().total:7.2f} mJ  traces validated"
            f"{suffix}"
        )
    print(f"ok: schema-validated trace exports in {out_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
