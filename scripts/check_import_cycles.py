#!/usr/bin/env python
"""Fail if the repro package has module-level import cycles.

Builds the module-level import graph of ``src/repro`` with ``ast`` (no
imports are executed) and runs a DFS cycle search. Function-local lazy
imports are intentionally ignored — they are the sanctioned way to break
a cycle (e.g. ``analysis.parallel`` workers importing ``experiments``).

Usage: python scripts/check_import_cycles.py [src/repro]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Set


def module_name(path: Path, src_root: Path) -> str:
    rel = path.relative_to(src_root).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def resolve_relative(module: str, node: ast.ImportFrom, is_package: bool) -> str | None:
    """Absolute target of a ``from ... import`` as seen from ``module``."""
    if node.level == 0:
        return node.module
    # Level 1 from a package __init__ means the package itself; from a
    # plain module it means the parent package — mirror the import system.
    parts = module.split(".")
    drop = node.level - (1 if is_package else 0)
    if drop > len(parts):
        return None
    base = parts[: len(parts) - drop]
    if node.module:
        base.append(node.module)
    return ".".join(base)


def module_level_imports(tree: ast.Module) -> Iterator[ast.stmt]:
    """Top-level import statements, including those inside try/if blocks
    (still executed at import time) but not inside function/class bodies."""
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node
        elif isinstance(node, (ast.If, ast.Try, ast.With)):
            for field in ("body", "orelse", "finalbody", "handlers"):
                for child in getattr(node, field, []):
                    if isinstance(child, ast.ExceptHandler):
                        stack.extend(child.body)
                    elif isinstance(child, ast.stmt):
                        stack.append(child)


def build_graph(src_root: Path, package: str) -> Dict[str, Set[str]]:
    # Module names are rooted at the package (``repro.streaming.pipeline``)
    # so absolute-import targets resolve against the graph keys directly.
    files = {
        module_name(p, src_root.parent): p for p in sorted(src_root.rglob("*.py"))
    }
    graph: Dict[str, Set[str]] = {name: set() for name in files}
    for name, path in files.items():
        tree = ast.parse(path.read_text(), filename=str(path))
        is_package = path.name == "__init__.py"
        targets: Set[str] = set()
        for node in module_level_imports(tree):
            if isinstance(node, ast.Import):
                targets.update(alias.name for alias in node.names)
            else:
                base = resolve_relative(name, node, is_package)
                if base is None:
                    continue
                targets.add(base)
                # ``from pkg import sub`` imports pkg.sub when it exists.
                targets.update(
                    f"{base}.{alias.name}" for alias in node.names
                )
        for target in targets:
            # Longest known prefix: importing pkg.mod.attr depends on pkg.mod.
            while target and target not in graph:
                target = target.rpartition(".")[0]
            if not target or target == name or not target.startswith(package):
                continue
            # A submodule importing its own ancestor package (``from . import
            # sibling``) is not a cycle: the ancestor is already present,
            # partially initialized, in sys.modules when the submodule runs.
            if name.startswith(target + "."):
                continue
            graph[name].add(target)
    return graph


def find_cycle(graph: Dict[str, Set[str]]) -> List[str] | None:
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    path: List[str] = []

    def dfs(node: str) -> List[str] | None:
        color[node] = GREY
        path.append(node)
        for dep in sorted(graph[node]):
            if color[dep] == GREY:
                return path[path.index(dep):] + [dep]
            if color[dep] == WHITE:
                cycle = dfs(dep)
                if cycle:
                    return cycle
        color[node] = BLACK
        path.pop()
        return None

    for node in sorted(graph):
        if color[node] == WHITE:
            cycle = dfs(node)
            if cycle:
                return cycle
    return None


def main(argv: List[str]) -> int:
    src_root = Path(argv[1]) if len(argv) > 1 else Path("src/repro")
    if not src_root.is_dir():
        print(f"error: {src_root} is not a directory", file=sys.stderr)
        return 2
    graph = build_graph(src_root.resolve(), src_root.resolve().name)
    cycle = find_cycle(graph)
    if cycle:
        print("import cycle detected:", " -> ".join(cycle), file=sys.stderr)
        return 1
    n_edges = sum(len(v) for v in graph.values())
    print(f"ok: {len(graph)} modules, {n_edges} edges, no module-level cycles")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
