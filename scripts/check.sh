#!/usr/bin/env bash
# Tier-1 gate: fast correctness tests + a smoke pass of the hot-path bench.
#
#   scripts/check.sh            # what CI / pre-merge should run
#
# The full benchmarks (with speedup acceptance criteria) are separate,
# longer runs:  PYTHONPATH=src python benchmarks/bench_hotpath.py
#               PYTHONPATH=src python benchmarks/bench_codec.py
#               PYTHONPATH=src python benchmarks/bench_roi.py
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="${PWD}/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compile check =="
python -m compileall -q src scripts benchmarks
echo "ok: all sources byte-compile"

echo "== static analysis (reprolint) =="
# Per-file rules (import cycles, layering, dtype discipline, epsilon
# comparisons, nondeterminism, public-API drift) plus the whole-program
# passes (knob-parity, contract-consistency, fork-safety, metric-schema)
# in one run. Fails on any finding not in reprolint-baseline.json
# (grandfathered legacy benchmarks only) and on baseline entries that no
# longer match any source line.
python -m repro.lint --fail-stale-baseline src tests scripts benchmarks

echo "== tier-1 tests =="
python -m pytest -q -m tier1

echo "== session-pipeline smoke (REPRO_CONTRACTS=1, serial + pipelined) =="
# --pipelined also streams each design through the software-pipelined
# executor and asserts byte-identity of the canonical trace exports.
REPRO_CONTRACTS=1 python scripts/pipeline_smoke.py --pipelined

echo "== GOP-reuse smoke (REPRO_CONTRACTS=1, serial + pipelined) =="
# Streams the reuse-capable designs with gop_reuse=True: contract-checked
# warp/mask/composite seams plus pipelined byte-identity of reuse traces.
REPRO_CONTRACTS=1 python scripts/pipeline_smoke.py --pipelined --gop-reuse

echo "== model-zoo backend smoke (REPRO_CONTRACTS=1, serial + pipelined) =="
# RoI designs driven by a non-default zoo backend and by the
# difficulty-aware tile dispatcher, pipelined byte-identity included.
REPRO_CONTRACTS=1 python scripts/pipeline_smoke.py --pipelined --sr-backend quicksrnet
REPRO_CONTRACTS=1 python scripts/pipeline_smoke.py --pipelined --dispatch

echo "== network-scenario + ABR smoke (REPRO_CONTRACTS=1, serial + pipelined) =="
# Trace-driven time-varying link with skip-dropped transport, then the
# ABR loop co-adapting quality/GOP/RoI/backend on top of it — both with
# pipelined byte-identity of the canonical trace exports.
REPRO_CONTRACTS=1 python scripts/pipeline_smoke.py --pipelined --scenario wifi_congested
REPRO_CONTRACTS=1 python scripts/pipeline_smoke.py --pipelined --scenario lte_drive --abr

echo "== hot-path bench (smoke) =="
python benchmarks/bench_hotpath.py --smoke >/dev/null
echo "ok: wrote BENCH_hotpath.smoke.json"

echo "== codec bench (smoke) =="
python benchmarks/bench_codec.py --smoke >/dev/null
echo "ok: wrote BENCH_codec.smoke.json"

echo "== roi bench (smoke) =="
python benchmarks/bench_roi.py --smoke >/dev/null
echo "ok: wrote BENCH_roi.smoke.json"

echo "== pipeline bench (smoke) =="
python benchmarks/bench_pipeline.py --smoke >/dev/null
echo "ok: wrote BENCH_pipeline.smoke.json"

echo "== GOP-reuse bench (smoke) =="
python benchmarks/bench_gopsr.py --smoke >/dev/null
echo "ok: wrote BENCH_gopsr.smoke.json"

echo "== model-zoo bench (smoke) =="
python benchmarks/bench_zoo.py --smoke >/dev/null
echo "ok: wrote BENCH_zoo.smoke.json"

echo "== network-scenario bench (smoke) =="
python benchmarks/bench_netscen.py --smoke >/dev/null
echo "ok: wrote BENCH_netscen.smoke.json"
