"""End-to-end streaming session driver and result aggregation.

:func:`run_session` streams ``n_frames`` of one game through a server and
a client design, collecting per-frame latencies, MTP breakdowns, energy,
and (optionally) quality against the native HR render. All of the paper's
evaluation figures are computed from :class:`SessionResult` objects.

The loop is staged end to end: every frame carries a merged
:class:`~repro.streaming.pipeline.FrameTrace` (server render/RoI/encode/
network spans + client decode/upscale/display spans) from which the MTP
and energy aggregates are derived, and which feeds the session's
:class:`~repro.observability.MetricsRegistry`. Two optional, default-off
extension hooks wire previously-orphaned subsystems into the loop:

* ``link`` — a lossy :class:`~repro.network.NetworkLink` transport stage
  replacing the flat bandwidth model: per-frame packetization, random
  loss, retransmission rounds, and deadline-based frame drops, all
  surfaced in the network span (Sec. II-A's motivation, end to end).
* ``adaptive`` — an :class:`~repro.streaming.adaptive.AdaptiveRoIController`
  policy fed each frame's measured upscale span, driving the server's
  RoI window side (and a pinned client-side modeled RoI) via AIMD.

With both left at ``None`` the session is numerically identical to the
paper's static configuration (guarded by the equivalence tests).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..metrics.lpips import lpips as lpips_metric
from ..metrics.psnr import psnr as psnr_metric
from ..network.link import NetworkLink, TransmitResult
from ..network.trace import build_scenario
from ..observability import MetricsRegistry, observe_frame_trace
from ..platform import calibration as cal
from ..platform.device import DeviceProfile
from ..platform.energy import Component, EnergyBreakdown, overhead_mj, stage_energy_mj
from .abr import ABRController
from .adaptive import AdaptiveRoIController
from .client import StreamingClient
from .frames import ClientFrameResult, ServerFrame, StreamGeometry
from .mtp import MTPBreakdown, mtp_from_frame
from .pipeline import FrameTrace, split_transmission
from .server import GameStreamServer

__all__ = [
    "FrameRecord",
    "SessionResult",
    "apply_client_knobs",
    "run_session",
    "energy_of_frame",
    "energy_from_trace",
]


def energy_of_frame(
    device: DeviceProfile, client_result: ClientFrameResult
) -> EnergyBreakdown:
    """Integrate one frame's energy stages into a Fig. 12 breakdown."""
    totals = {"decode": 0.0, "upscale": 0.0, "network": 0.0}
    for category, stages in client_result.energy_stages.items():
        if category not in totals:
            raise ValueError(f"unknown energy category {category!r}")
        for component, ms in stages:
            totals[category] += stage_energy_mj(device, component, ms)
    return EnergyBreakdown(
        decode=totals["decode"],
        upscale=totals["upscale"],
        network=totals["network"],
        display=overhead_mj(device),
    )


def energy_from_trace(device: DeviceProfile, trace: FrameTrace) -> EnergyBreakdown:
    """Integrate a frame trace's energy attributions into a Fig. 12 breakdown.

    Walks spans in recording order and accumulates per-category totals in
    the same order as :func:`energy_of_frame` does over the dict view, so
    both paths produce bit-identical sums.
    """
    totals = {"decode": 0.0, "upscale": 0.0, "network": 0.0}
    for span in trace.spans:
        for attr in span.energy:
            category = attr.resolved_category(span.name)
            if category not in totals:
                raise ValueError(f"unknown energy category {category!r}")
            totals[category] += stage_energy_mj(device, attr.component, attr.ms)
    return EnergyBreakdown(
        decode=totals["decode"],
        upscale=totals["upscale"],
        network=totals["network"],
        display=overhead_mj(device),
    )


@dataclass(frozen=True)
class FrameRecord:
    """Everything measured for one streamed frame."""

    index: int
    frame_type: str
    upscale_ms: float
    mtp: MTPBreakdown
    energy: EnergyBreakdown
    modeled_size_bytes: int
    psnr_db: Optional[float] = None
    lpips: Optional[float] = None
    #: Transport-stage outcome (always False/0 on the flat default link).
    dropped: bool = False
    network_retransmissions: int = 0
    #: Merged server+client stage trace for this frame.
    trace: Optional[FrameTrace] = None

    @property
    def is_reference(self) -> bool:
        return self.frame_type == "I"

    @property
    def upscale_fps(self) -> float:
        """Output frame rate the upscaling stage alone can sustain."""
        return 1000.0 / self.upscale_ms if self.upscale_ms > 0 else float("inf")


@dataclass
class SessionResult:
    """Aggregated metrics of one streaming session."""

    game_id: str
    design: str
    device_name: str
    geometry: StreamGeometry
    gop_size: int
    records: List[FrameRecord] = field(default_factory=list)
    #: Per-session metrics registry fed from the frame traces.
    metrics: Optional[MetricsRegistry] = None

    def _select(self, reference: Optional[bool]) -> List[FrameRecord]:
        if reference is None:
            return self.records
        return [r for r in self.records if r.is_reference == reference]

    def mean_upscale_ms(self, reference: Optional[bool] = None) -> float:
        records = self._select(reference)
        if not records:
            raise ValueError("no matching frames in session")
        return float(np.mean([r.upscale_ms for r in records]))

    def upscale_fps(self, reference: Optional[bool] = None) -> float:
        return 1000.0 / self.mean_upscale_ms(reference)

    def gop_upscale_ms(self) -> float:
        """Total upscaling time across the session (GOP throughput basis)."""
        return float(np.sum([r.upscale_ms for r in self.records]))

    def mean_mtp(self, reference: Optional[bool] = None) -> MTPBreakdown:
        return MTPBreakdown.mean([r.mtp for r in self._select(reference)])

    def mean_energy(self) -> EnergyBreakdown:
        return EnergyBreakdown.mean([r.energy for r in self.records])

    def mean_psnr(self) -> float:
        vals = [r.psnr_db for r in self.records if r.psnr_db is not None]
        if not vals:
            raise ValueError("session was run without quality evaluation")
        return float(np.mean(vals))

    def mean_lpips(self) -> float:
        vals = [r.lpips for r in self.records if r.lpips is not None]
        if not vals:
            raise ValueError("session was run without quality evaluation")
        return float(np.mean(vals))

    def psnr_series(self) -> List[float]:
        return [r.psnr_db for r in self.records if r.psnr_db is not None]

    # -- transport/observability aggregates ------------------------------

    def frame_traces(self) -> List[FrameTrace]:
        """The merged per-frame traces (empty for hand-built records)."""
        return [r.trace for r in self.records if r.trace is not None]

    def drop_rate(self) -> float:
        """Fraction of frames the transport stage dropped past deadline."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.dropped) / len(self.records)

    def total_retransmissions(self) -> int:
        return sum(r.network_retransmissions for r in self.records)

    def to_trace_dict(self) -> Dict[str, Any]:
        """Structured JSON-able export: session header + per-frame traces
        + metrics snapshot (schema: ``repro.observability.schema``)."""
        return {
            "session": {
                "game_id": self.game_id,
                "design": self.design,
                "device": self.device_name,
                "n_frames": len(self.records),
                "gop_size": self.gop_size,
            },
            "frames": [t.to_dict() for t in self.frame_traces()],
            "metrics": self.metrics.to_dict() if self.metrics is not None else {},
        }

    def export_trace_json(self, path: Path | str) -> Path:
        """Write the per-frame trace export as JSON and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_trace_dict(), indent=2))
        return path

    # -- GOP-weighted aggregates -----------------------------------------
    # Per-frame-type costs are deterministic given the platform model, so
    # metrics for the paper's 60-frame GOPs (1 reference + 59 dependents)
    # can be synthesized from shorter simulated sessions.

    def gop_weighted_upscale_ms(self, gop_size: int = 60) -> float:
        """Mean per-frame upscaling latency over a synthetic GOP."""
        if gop_size < 1:
            raise ValueError(f"gop_size must be >= 1, got {gop_size}")
        ref = self.mean_upscale_ms(reference=True)
        if gop_size == 1:
            return ref
        nonref = self.mean_upscale_ms(reference=False)
        return (ref + (gop_size - 1) * nonref) / gop_size

    def gop_weighted_energy(self, gop_size: int = 60) -> EnergyBreakdown:
        """Mean per-frame energy breakdown over a synthetic GOP."""
        if gop_size < 1:
            raise ValueError(f"gop_size must be >= 1, got {gop_size}")
        ref = EnergyBreakdown.mean(
            [r.energy for r in self.records if r.is_reference]
        )
        if gop_size == 1:
            return ref
        nonref = EnergyBreakdown.mean(
            [r.energy for r in self.records if not r.is_reference]
        )
        return (ref + nonref.scaled(gop_size - 1)).scaled(1.0 / gop_size)

    def realtime_conformant(self, deadline_ms: float = cal.REALTIME_DEADLINE_MS) -> bool:
        """Do all frames meet the 60 FPS upscaling deadline?"""
        return all(r.upscale_ms <= deadline_ms for r in self.records)

    def conformance_rate(
        self, deadline_ms: float = cal.REALTIME_DEADLINE_MS
    ) -> float:
        """Fraction of frames delivered *and* upscaled inside budget.

        The per-scenario headline of ``bench_netscen``: a frame conforms
        when the transport did not drop it and its upscale stage met the
        realtime deadline. (Skipped frames have ``upscale_ms == 0`` but
        fail on ``dropped``/``reference_lost``.)
        """
        if not self.records:
            return 0.0
        ok = 0
        for r in self.records:
            skipped = (
                r.trace is not None
                and r.trace.span("upscale").metadata.get("skipped", False)
            )
            if not r.dropped and not skipped and r.upscale_ms <= deadline_ms:
                ok += 1
        return ok / len(self.records)

    def mean_bitrate_mbps(self, fps: float = cal.TARGET_FPS) -> float:
        mean_bytes = float(np.mean([r.modeled_size_bytes for r in self.records]))
        return mean_bytes * 8 * fps / 1e6


def _transport_stage(
    server_frame: ServerFrame,
    link: NetworkLink,
    deadline_ms: float,
    at_ms: float = 0.0,
) -> TransmitResult:
    """Run the injected lossy transport and amend the network span.

    Replaces the server's flat ``transmission_ms`` span with the measured
    :meth:`NetworkLink.transmit` outcome (serialization + propagation +
    retransmission rounds) and keeps the ``server_timings_ms`` view in
    sync. ``at_ms`` is the frame's session-time transmit instant — the
    static link ignores it; a trace-driven link resolves its conditions
    there and the span picks up the ``scenario`` metadata.
    """
    outcome = link.transmit(
        server_frame.modeled_size_bytes, deadline_ms=deadline_ms, at_ms=at_ms
    )
    scenario_meta = getattr(link, "last_transmit_meta", None)
    extra = {"scenario": dict(scenario_meta)} if scenario_meta else {}
    if server_frame.trace is not None:
        server_frame.trace.amend_span(
            "network",
            modeled_ms=outcome.latency_ms,
            n_packets=outcome.n_packets,
            n_retransmissions=outcome.n_retransmissions,
            dropped=outcome.dropped,
            transport="lossy_link",
            **extra,
        )
    # server_timings_ms is a materialized view of the trace: keep it in
    # sync so dict consumers (mtp fallback, reports) see the transport.
    server_frame.server_timings_ms["network"] = outcome.latency_ms
    return outcome


def _resolve_scenario(
    scenario: Optional[object], link: Optional[NetworkLink], seed: int = 0
) -> Optional[NetworkLink]:
    """Materialize the ``scenario=`` knob into the session's link.

    ``scenario`` is a canned/synthetic name (see
    :func:`repro.network.trace.build_scenario`) or an already-built
    :class:`NetworkLink`; mutually exclusive with an explicit ``link``.
    """
    if scenario is None:
        return link
    if link is not None:
        raise ValueError("scenario= and link= are mutually exclusive")
    if isinstance(scenario, NetworkLink):
        return scenario
    if isinstance(scenario, str):
        return build_scenario(scenario, seed=seed)
    raise TypeError(
        f"scenario must be a name or NetworkLink, got {type(scenario).__name__}"
    )


def _apply_server_knobs(server: GameStreamServer, knobs: Dict[str, Any]) -> None:
    """Actuate one frame's ABR decision on the server before production.

    Shared by the serial loop and the pipelined producer (the dict
    crosses the feedback pipe verbatim), so both executors mutate the
    encoder identically. ``force_idr`` resets the encoder's GOP phase:
    the next frame is an I-frame regardless of position.
    """
    side = knobs.get("eval_roi_side")
    if side is not None and server.detector is not None:
        server.set_roi_side(side)
    quality = knobs.get("quality")
    if quality is not None:
        server.encoder.quality = quality
    gop_size = knobs.get("gop_size")
    if gop_size is not None:
        server.encoder.gop_size = gop_size
    if knobs.get("force_idr"):
        server.encoder.reset()


def _abr_produce_knobs(
    abr: ABRController, server_has_roi: bool, geometry: StreamGeometry
) -> Dict[str, Any]:
    """The ABR decision for the next frame, with the RoI side rescaled
    to the eval geometry (``None`` when the server has no detector)."""
    eval_side = _adaptive_eval_side(abr, geometry) if server_has_roi else None
    return abr.next_frame_knobs(eval_side)


def _apply_abr_client_knobs(client: StreamingClient, abr: ABRController) -> None:
    """Actuate the rung's client-side knobs (consumer process).

    The RoI pin follows the capped controller side like the adaptive
    path; the SR backend switches only when the rung actually changed it
    (``set_sr_backend`` rebuilds the upscaler) and only on designs that
    expose the zoo knob.
    """
    if getattr(client, "modeled_roi_side", None) is not None:
        client.modeled_roi_side = abr.side
    backend = abr.client_backend()
    if backend is not None and hasattr(client, "set_sr_backend"):
        if getattr(client, "sr_backend", None) is not backend:
            client.set_sr_backend(backend)


def _adaptive_eval_side(
    adaptive: AdaptiveRoIController, geometry: StreamGeometry
) -> int:
    """The controller's window side rescaled to the eval geometry.

    The controller plans on the modeled geometry (the paper's 720p frame);
    the server detects on the eval frame, so the side is rescaled by frame
    height exactly like ``RoIWindowPlan.side_for_frame`` does.
    """
    eval_side = int(
        round(adaptive.side * geometry.eval_lr_height / geometry.modeled_lr_height)
    )
    return max(2, min(eval_side, geometry.eval_lr_height))


def _apply_adaptive_side(
    server: GameStreamServer,
    client: StreamingClient,
    adaptive: AdaptiveRoIController,
    geometry: StreamGeometry,
) -> None:
    """Push the controller's (modeled-scale) window side into the pipeline.

    A client with a pinned ``modeled_roi_side`` follows the controller
    directly. The pipelined executor splits this into its two halves —
    the server side crosses the process boundary via the feedback
    channel, the client pin stays with the consumer.
    """
    if server.detector is not None:
        server.set_roi_side(_adaptive_eval_side(adaptive, geometry))
    if getattr(client, "modeled_roi_side", None) is not None:
        client.modeled_roi_side = adaptive.side


def _require_knob(client: StreamingClient, knob: str) -> None:
    """Reject a per-session knob the client design does not expose.

    Only the RoI-SR designs (``GameStreamSRClient``,
    ``SRIntegratedDecoderClient``) carry the optional execution knobs;
    asking any other design is a configuration error, not a silent
    no-op.
    """
    if not hasattr(client, knob):
        raise ValueError(
            f"design {client.design!r} does not support {knob}; use "
            "GameStreamSRClient or SRIntegratedDecoderClient"
        )


def apply_client_knobs(
    client: StreamingClient,
    *,
    gop_reuse: bool = False,
    sr_backend=None,
    dispatch=None,
) -> None:
    """Validate and enable the per-session client execution knobs.

    One shared entry point for every caller (serial session, pipelined
    session, CLI), so support checks and the mutual-exclusion rule live
    in exactly one place. All-defaults is a no-op.
    """
    if gop_reuse:
        _require_knob(client, "gop_reuse")
        client.gop_reuse = True
    if sr_backend is not None:
        _require_knob(client, "sr_backend")
        client.set_sr_backend(sr_backend)
    if dispatch is not None:
        _require_knob(client, "dispatch")
        client.set_dispatch(dispatch)
    if gop_reuse and hasattr(client, "_validate_sr_knobs"):
        # set_sr_backend/set_dispatch validate on their own; a lone
        # gop_reuse=True must still catch a knob set at construction.
        client._validate_sr_knobs()


def _validate_abr_knobs(
    abr: Optional[ABRController],
    *,
    adaptive: Optional[AdaptiveRoIController],
    gop_reuse: bool,
    sr_backend,
    dispatch,
) -> None:
    """Reject knob combinations the ABR controller subsumes.

    ABR owns the RoI loop (it *is* an :class:`AdaptiveRoIController`)
    and switches SR backends per rung, so a simultaneous ``adaptive``
    controller or a static ``gop_reuse``/``sr_backend``/``dispatch``
    pin would fight it frame by frame.
    """
    if abr is None:
        return
    conflicts = [
        name
        for name, on in (
            ("adaptive", adaptive is not None),
            ("gop_reuse", gop_reuse),
            ("sr_backend", sr_backend is not None),
            ("dispatch", dispatch is not None),
        )
        if on
    ]
    if conflicts:
        raise ValueError(
            f"abr= is mutually exclusive with {', '.join(conflicts)}"
        )


def _skipped_client_result(frame: ServerFrame, reason: str) -> ClientFrameResult:
    """The client-side record of a skipped (never decoded) frame.

    With ``skip_dropped`` enabled the client never decodes or upscales a
    frame the transport declared lost (``reason="transport_drop"``) or a
    P-frame whose reference chain a skipped frame broke
    (``reason="reference_lost"``): the RX radio window was still spent
    (the bytes arrived, the deadline did not hold), so the network span
    keeps its energy attribution, while decode/upscale/display are
    recorded as zeroed spans tagged ``skipped`` — the "zeroed upscale
    span" consumers can aggregate without special-casing. The display
    keeps showing the previous frame; the placeholder HR output is black
    and is excluded from quality scoring by the session loop.
    """
    geometry = frame.geometry
    trace = FrameTrace(index=frame.index, frame_type=frame.encoded.frame_type)
    with trace.stage("network", mtp=False) as st:
        split = split_transmission(frame.modeled_size_bytes)
        st.modeled_ms = split.serialization_ms
        st.add_energy(Component.NETWORK_RX, split.serialization_ms)
        st.meta(modeled_bytes=frame.modeled_size_bytes)
    for name in ("decode", "upscale", "display"):
        trace.add_span(name, 0.0, skipped=True, reason=reason)
    hr = np.zeros(
        (
            geometry.eval_lr_height * geometry.scale,
            geometry.eval_lr_width * geometry.scale,
            3,
        ),
        dtype=np.float64,
    )
    return ClientFrameResult(
        index=frame.index,
        frame_type=frame.encoded.frame_type,
        hr_frame=hr,
        client_timings_ms=trace.timings_ms(("decode", "upscale", "display")),
        energy_stages=trace.energy_stages(),
        trace=trace,
    )


def _consume_frame(
    server_frame: ServerFrame,
    client: StreamingClient,
    metrics: MetricsRegistry,
    *,
    link: Optional[NetworkLink],
    link_deadline_ms: float,
    adaptive: Optional[AdaptiveRoIController],
    evaluate_quality: bool,
    with_lpips: bool,
    lpips_stride: int,
    hr_fn: Optional[Callable[[int], np.ndarray]],
    skip_dropped: bool,
    skip_state: Optional[Dict[str, bool]] = None,
    abr: Optional[ABRController] = None,
    at_ms: float = 0.0,
) -> FrameRecord:
    """Run the client half of the pipeline on one produced server frame.

    This is the single consumer implementation shared by the serial
    :func:`run_session` loop and the pipelined executor
    (:func:`repro.streaming.pipelined.run_session_pipelined`) — both
    paths execute byte-for-byte the same transport, decode/SR, adaptive
    observation, quality scoring, and trace/energy assembly, which is
    what makes the cross-executor determinism guarantee hold by
    construction.
    """
    dropped, retransmissions = False, 0
    if link is not None:
        outcome = _transport_stage(server_frame, link, link_deadline_ms, at_ms)
        dropped, retransmissions = outcome.dropped, outcome.n_retransmissions
        if abr is not None:
            if server_frame.trace is not None and abr.frame_meta:
                server_frame.trace.amend_span("network", abr=dict(abr.frame_meta))
            abr.observe_network(
                outcome, server_frame.modeled_size_bytes, at_ms=at_ms
            )

    # A skipped frame breaks the decoder's reference chain: every later
    # P-frame is undecodable (its reference is missing or stale) until a
    # delivered I-frame resets the decoder. ``skip_state`` carries that
    # one bit of GOP state between consecutive _consume_frame calls.
    skipped, skip_reason = False, ""
    if skip_dropped:
        broken = skip_state is not None and skip_state.get("reference_broken", False)
        if dropped:
            skipped, skip_reason = True, "transport_drop"
        elif broken and server_frame.encoded.frame_type == "P":
            skipped, skip_reason = True, "reference_lost"
        if skip_state is not None:
            skip_state["reference_broken"] = skipped
    if skipped:
        client_result = _skipped_client_result(server_frame, skip_reason)
    else:
        client_result = client.process(server_frame)
        controller = abr if abr is not None else adaptive
        if controller is not None:
            controller.observe(client_result.upscale_ms)

    psnr_db = lpips_val = None
    if evaluate_quality and not skipped:
        assert hr_fn is not None, "quality evaluation requires an HR source"
        reference = hr_fn(server_frame.index)
        psnr_db = psnr_metric(reference, client_result.hr_frame)
        if with_lpips and server_frame.index % lpips_stride == 0:
            lpips_val = lpips_metric(reference, client_result.hr_frame)

    trace = None
    if server_frame.trace is not None and client_result.trace is not None:
        trace = server_frame.trace.extend(client_result.trace)
        observe_frame_trace(metrics, trace)

    energy = (
        energy_from_trace(client.device, trace)
        if trace is not None
        else energy_of_frame(client.device, client_result)
    )
    return FrameRecord(
        index=server_frame.index,
        frame_type=client_result.frame_type,
        upscale_ms=client_result.upscale_ms,
        mtp=mtp_from_frame(server_frame, client_result),
        energy=energy,
        modeled_size_bytes=server_frame.modeled_size_bytes,
        psnr_db=psnr_db,
        lpips=lpips_val,
        dropped=dropped,
        network_retransmissions=retransmissions,
        trace=trace,
    )


def run_session(
    server: GameStreamServer,
    client: StreamingClient,
    n_frames: int,
    evaluate_quality: bool = False,
    with_lpips: bool = False,
    lpips_stride: int = 1,
    hr_reference_fn: Optional[Callable[[int], np.ndarray]] = None,
    link: Optional[NetworkLink] = None,
    link_deadline_ms: float = float("inf"),
    adaptive: Optional[AdaptiveRoIController] = None,
    skip_dropped: bool = False,
    gop_reuse: bool = False,
    sr_backend=None,
    dispatch=None,
    scenario=None,
    abr: Optional[ABRController] = None,
) -> SessionResult:
    """Stream ``n_frames`` through ``server`` -> ``client`` and aggregate.

    ``evaluate_quality`` renders the native HR ground truth per frame and
    scores PSNR (and LPIPS when ``with_lpips``) of the client's output —
    substantially slower, so latency/energy benches leave it off.
    ``lpips_stride`` scores LPIPS on every k-th frame only (it is the
    most expensive metric); ``hr_reference_fn`` overrides the ground-truth
    source (used to share renders across designs).

    ``link`` injects a lossy :class:`NetworkLink` transport stage in place
    of the flat bandwidth model (frames missing ``link_deadline_ms`` are
    flagged dropped); ``adaptive`` closes the RoI-sizing loop from
    measured upscale spans. Both default off, keeping the paper's static
    configuration numerically identical to the pre-staged pipeline.

    ``skip_dropped`` (default off) short-circuits the client for frames
    the transport dropped: no decode/SR work runs, a zeroed upscale span
    is recorded instead, the frame is excluded from quality scoring, and
    the adaptive controller never observes it. Because a skipped frame
    breaks the decoder's reference chain, subsequent P-frames are
    skipped too (tagged ``reason="reference_lost"``) until the next
    delivered I-frame resets the decoder — decoding them against a
    missing or stale reference would crash or silently corrupt. With the
    default ``False`` the client still processes dropped frames in full
    — the historical behavior, pinned by the regression tests.

    ``gop_reuse`` (default off) turns on the compressed-domain SR cache
    on clients that support it (:mod:`repro.sr.gop_reuse`): P-frames warp
    the previous frame's SR output by the decoded motion field and only
    re-upscale the blocks whose residual energy marks them dirty, with a
    mandatory full refresh on I-frames and reference-chain breaks. With
    the default ``False`` the session traces stay byte-identical to the
    per-frame-SR configuration (pinned by the equivalence tests).

    ``sr_backend`` / ``dispatch`` (default off) swap the RoI SR executor
    for a model-zoo :class:`~repro.sr.backends.SRBackend` or a
    :class:`~repro.sr.dispatch.DifficultyDispatcher` on the clients that
    support them; mutually exclusive with each other and with
    ``gop_reuse`` (see :func:`apply_client_knobs`).

    ``scenario`` (default off) streams over a trace-driven time-varying
    link: a canned name (``"lte_drive"``), a ``"synthetic:<seed>"``
    generator spec, or a prebuilt :class:`NetworkLink`; mutually
    exclusive with ``link``. Frames transmit at their session-time
    instant (``index / fps``) so the link's bandwidth/RTT/loss schedule
    lines up with the stream, and the network span carries the
    instantaneous conditions as ``scenario`` metadata.

    ``abr`` (default off) closes the bitrate control loop: an
    :class:`~repro.streaming.abr.ABRController` observes each frame's
    transmit outcome and co-adapts codec quality, GOP structure, RoI
    size, and SR backend before the next frame is produced. Subsumes
    (and is mutually exclusive with) ``adaptive`` and the static
    ``gop_reuse``/``sr_backend``/``dispatch`` knobs.
    """
    if n_frames < 1:
        raise ValueError(f"n_frames must be >= 1, got {n_frames}")
    if lpips_stride < 1:
        raise ValueError(f"lpips_stride must be >= 1, got {lpips_stride}")
    link = _resolve_scenario(scenario, link)
    _validate_abr_knobs(
        abr, adaptive=adaptive, gop_reuse=gop_reuse,
        sr_backend=sr_backend, dispatch=dispatch,
    )
    apply_client_knobs(
        client, gop_reuse=gop_reuse, sr_backend=sr_backend, dispatch=dispatch
    )
    client.reset()
    metrics = MetricsRegistry()
    result = SessionResult(
        game_id=server.game.game_id,
        design=client.design,
        device_name=client.device.name,
        geometry=server.geometry,
        gop_size=server.gop_size,
        metrics=metrics,
    )
    hr_fn = hr_reference_fn if hr_reference_fn is not None else server.render_hr_reference
    skip_state = {"reference_broken": False}
    period_ms = 1000.0 / server.fps
    for index in range(n_frames):
        if abr is not None:
            _apply_server_knobs(
                server,
                _abr_produce_knobs(abr, server.detector is not None, server.geometry),
            )
            _apply_abr_client_knobs(client, abr)
        elif adaptive is not None:
            _apply_adaptive_side(server, client, adaptive, server.geometry)

        server_frame: ServerFrame = server.next_frame()

        result.records.append(
            _consume_frame(
                server_frame,
                client,
                metrics,
                link=link,
                link_deadline_ms=link_deadline_ms,
                adaptive=adaptive,
                evaluate_quality=evaluate_quality,
                with_lpips=with_lpips,
                lpips_stride=lpips_stride,
                hr_fn=hr_fn if evaluate_quality else None,
                skip_dropped=skip_dropped,
                skip_state=skip_state,
                abr=abr,
                at_ms=index * period_ms,
            )
        )
    return result
