"""End-to-end streaming session driver and result aggregation.

:func:`run_session` streams ``n_frames`` of one game through a server and
a client design, collecting per-frame latencies, MTP breakdowns, energy,
and (optionally) quality against the native HR render. All of the paper's
evaluation figures are computed from :class:`SessionResult` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..metrics.lpips import lpips as lpips_metric
from ..metrics.psnr import psnr as psnr_metric
from ..platform import calibration as cal
from ..platform.device import DeviceProfile
from ..platform.energy import EnergyBreakdown, overhead_mj, stage_energy_mj
from .client import StreamingClient
from .frames import ClientFrameResult, ServerFrame, StreamGeometry
from .mtp import MTPBreakdown, mtp_from_frame
from .server import GameStreamServer

__all__ = ["FrameRecord", "SessionResult", "run_session", "energy_of_frame"]


def energy_of_frame(
    device: DeviceProfile, client_result: ClientFrameResult
) -> EnergyBreakdown:
    """Integrate one frame's energy stages into a Fig. 12 breakdown."""
    totals = {"decode": 0.0, "upscale": 0.0, "network": 0.0}
    for category, stages in client_result.energy_stages.items():
        if category not in totals:
            raise ValueError(f"unknown energy category {category!r}")
        for component, ms in stages:
            totals[category] += stage_energy_mj(device, component, ms)
    return EnergyBreakdown(
        decode=totals["decode"],
        upscale=totals["upscale"],
        network=totals["network"],
        display=overhead_mj(device),
    )


@dataclass(frozen=True)
class FrameRecord:
    """Everything measured for one streamed frame."""

    index: int
    frame_type: str
    upscale_ms: float
    mtp: MTPBreakdown
    energy: EnergyBreakdown
    modeled_size_bytes: int
    psnr_db: Optional[float] = None
    lpips: Optional[float] = None

    @property
    def is_reference(self) -> bool:
        return self.frame_type == "I"

    @property
    def upscale_fps(self) -> float:
        """Output frame rate the upscaling stage alone can sustain."""
        return 1000.0 / self.upscale_ms if self.upscale_ms > 0 else float("inf")


@dataclass
class SessionResult:
    """Aggregated metrics of one streaming session."""

    game_id: str
    design: str
    device_name: str
    geometry: StreamGeometry
    gop_size: int
    records: List[FrameRecord] = field(default_factory=list)

    def _select(self, reference: Optional[bool]) -> List[FrameRecord]:
        if reference is None:
            return self.records
        return [r for r in self.records if r.is_reference == reference]

    def mean_upscale_ms(self, reference: Optional[bool] = None) -> float:
        records = self._select(reference)
        if not records:
            raise ValueError("no matching frames in session")
        return float(np.mean([r.upscale_ms for r in records]))

    def upscale_fps(self, reference: Optional[bool] = None) -> float:
        return 1000.0 / self.mean_upscale_ms(reference)

    def gop_upscale_ms(self) -> float:
        """Total upscaling time across the session (GOP throughput basis)."""
        return float(np.sum([r.upscale_ms for r in self.records]))

    def mean_mtp(self, reference: Optional[bool] = None) -> MTPBreakdown:
        return MTPBreakdown.mean([r.mtp for r in self._select(reference)])

    def mean_energy(self) -> EnergyBreakdown:
        return EnergyBreakdown.mean([r.energy for r in self.records])

    def mean_psnr(self) -> float:
        vals = [r.psnr_db for r in self.records if r.psnr_db is not None]
        if not vals:
            raise ValueError("session was run without quality evaluation")
        return float(np.mean(vals))

    def mean_lpips(self) -> float:
        vals = [r.lpips for r in self.records if r.lpips is not None]
        if not vals:
            raise ValueError("session was run without quality evaluation")
        return float(np.mean(vals))

    def psnr_series(self) -> List[float]:
        return [r.psnr_db for r in self.records if r.psnr_db is not None]

    # -- GOP-weighted aggregates -----------------------------------------
    # Per-frame-type costs are deterministic given the platform model, so
    # metrics for the paper's 60-frame GOPs (1 reference + 59 dependents)
    # can be synthesized from shorter simulated sessions.

    def gop_weighted_upscale_ms(self, gop_size: int = 60) -> float:
        """Mean per-frame upscaling latency over a synthetic GOP."""
        if gop_size < 1:
            raise ValueError(f"gop_size must be >= 1, got {gop_size}")
        ref = self.mean_upscale_ms(reference=True)
        if gop_size == 1:
            return ref
        nonref = self.mean_upscale_ms(reference=False)
        return (ref + (gop_size - 1) * nonref) / gop_size

    def gop_weighted_energy(self, gop_size: int = 60) -> EnergyBreakdown:
        """Mean per-frame energy breakdown over a synthetic GOP."""
        if gop_size < 1:
            raise ValueError(f"gop_size must be >= 1, got {gop_size}")
        ref = EnergyBreakdown.mean(
            [r.energy for r in self.records if r.is_reference]
        )
        if gop_size == 1:
            return ref
        nonref = EnergyBreakdown.mean(
            [r.energy for r in self.records if not r.is_reference]
        )
        return (ref + nonref.scaled(gop_size - 1)).scaled(1.0 / gop_size)

    def realtime_conformant(self, deadline_ms: float = cal.REALTIME_DEADLINE_MS) -> bool:
        """Do all frames meet the 60 FPS upscaling deadline?"""
        return all(r.upscale_ms <= deadline_ms for r in self.records)

    def mean_bitrate_mbps(self, fps: float = cal.TARGET_FPS) -> float:
        mean_bytes = float(np.mean([r.modeled_size_bytes for r in self.records]))
        return mean_bytes * 8 * fps / 1e6


def run_session(
    server: GameStreamServer,
    client: StreamingClient,
    n_frames: int,
    evaluate_quality: bool = False,
    with_lpips: bool = False,
    lpips_stride: int = 1,
    hr_reference_fn: Optional[Callable[[int], np.ndarray]] = None,
) -> SessionResult:
    """Stream ``n_frames`` through ``server`` -> ``client`` and aggregate.

    ``evaluate_quality`` renders the native HR ground truth per frame and
    scores PSNR (and LPIPS when ``with_lpips``) of the client's output —
    substantially slower, so latency/energy benches leave it off.
    ``lpips_stride`` scores LPIPS on every k-th frame only (it is the
    most expensive metric); ``hr_reference_fn`` overrides the ground-truth
    source (used to share renders across designs).
    """
    if n_frames < 1:
        raise ValueError(f"n_frames must be >= 1, got {n_frames}")
    if lpips_stride < 1:
        raise ValueError(f"lpips_stride must be >= 1, got {lpips_stride}")
    client.reset()
    result = SessionResult(
        game_id=server.game.game_id,
        design=client.design,
        device_name=client.device.name,
        geometry=server.geometry,
        gop_size=server.gop_size,
    )
    for _ in range(n_frames):
        server_frame: ServerFrame = server.next_frame()
        client_result = client.process(server_frame)

        psnr_db = lpips_val = None
        if evaluate_quality:
            if hr_reference_fn is not None:
                reference = hr_reference_fn(server_frame.index)
            else:
                reference = server.render_hr_reference(server_frame.index)
            psnr_db = psnr_metric(reference, client_result.hr_frame)
            if with_lpips and server_frame.index % lpips_stride == 0:
                lpips_val = lpips_metric(reference, client_result.hr_frame)

        result.records.append(
            FrameRecord(
                index=server_frame.index,
                frame_type=client_result.frame_type,
                upscale_ms=client_result.upscale_ms,
                mtp=mtp_from_frame(server_frame, client_result),
                energy=energy_of_frame(client.device, client_result),
                modeled_size_bytes=server_frame.modeled_size_bytes,
                psnr_db=psnr_db,
                lpips=lpips_val,
            )
        )
    return result
