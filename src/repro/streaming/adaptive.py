"""Runtime RoI-window adaptation (extension beyond the paper).

The paper sizes the RoI window *once*, at session start, from an NPU
benchmark (Sec. IV-B1). Real mobile SoCs throttle under sustained load,
so a window that met 16.66 ms cold can miss it ten minutes in.
:class:`AdaptiveRoIController` closes the loop: it watches measured
upscale latencies and multiplicatively shrinks the window when the
deadline is endangered, then additively regrows it while there is
headroom (AIMD, the TCP-style stable control law) — never dropping below
the foveal minimum, mirroring the paper's physiological floor.

This is an extension (clearly marked as such); the default pipeline keeps
the paper's static sizing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..platform import calibration as cal

__all__ = ["AdaptiveRoIController"]


@dataclass
class AdaptiveRoIController:
    """AIMD controller for the RoI window side (LR-frame pixels).

    Parameters
    ----------
    initial_side / min_side / max_side:
        Start, foveal-floor, and probe-ceiling window sides from
        :func:`repro.core.roi_sizing.plan_roi_window`.
    deadline_ms:
        Per-frame upscaling budget (16.66 ms for 60 FPS).
    headroom:
        Fraction of the deadline treated as the danger threshold; above
        ``headroom * deadline`` the window shrinks.
    shrink_factor / grow_step:
        Multiplicative decrease and additive increase of the side.
    """

    initial_side: int
    min_side: int
    max_side: int
    deadline_ms: float = cal.REALTIME_DEADLINE_MS
    headroom: float = 0.97
    shrink_factor: float = 0.85
    grow_step: int = 4
    _side: int = field(init=False)
    _history: List[float] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if not 2 <= self.min_side <= self.max_side:
            raise ValueError(
                f"need 2 <= min_side <= max_side, got {self.min_side}, {self.max_side}"
            )
        if not self.min_side <= self.initial_side <= self.max_side:
            raise ValueError(
                f"initial_side {self.initial_side} outside "
                f"[{self.min_side}, {self.max_side}]"
            )
        if self.deadline_ms <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline_ms}")
        if not 0 < self.shrink_factor < 1:
            raise ValueError(f"shrink_factor must be in (0, 1), got {self.shrink_factor}")
        if self.grow_step < 1:
            raise ValueError(f"grow_step must be >= 1, got {self.grow_step}")
        self._side = self.initial_side

    @property
    def side(self) -> int:
        """The window side to request for the next frame."""
        return self._side

    @property
    def at_foveal_floor(self) -> bool:
        return self._side == self.min_side

    def observe(self, upscale_latency_ms: float) -> int:
        """Feed one frame's measured upscale latency; returns the new side.

        Multiplicative shrink on (near-)misses, additive growth while
        comfortably under budget.
        """
        if upscale_latency_ms < 0:
            raise ValueError(f"latency must be >= 0, got {upscale_latency_ms}")
        self._history.append(upscale_latency_ms)
        if upscale_latency_ms > self.headroom * self.deadline_ms:
            self._side = self._quantize_down(self._side * self.shrink_factor)
        elif upscale_latency_ms < 0.8 * self.deadline_ms:
            self._side = min(self.max_side, self._side + self.grow_step)
        return self._side

    def _quantize_down(self, raw_side: float) -> int:
        """Shrunken side, snapped onto the ``grow_step`` lattice.

        Bare ``int(side * shrink_factor)`` truncation can land on any
        integer, misaligned with the codec-block / SR-tile granularity
        that additive growth preserves. Snap *down* to the nearest
        ``min_side + k * grow_step`` so shrink and grow share one
        lattice and a shrink is never rounded back above the raw value.
        """
        shrunk = int(raw_side)
        if shrunk <= self.min_side:
            return self.min_side
        aligned = (
            self.min_side
            + (shrunk - self.min_side) // self.grow_step * self.grow_step
        )
        return min(aligned, self.max_side)

    def miss_rate(self) -> float:
        """Fraction of observed frames that exceeded the deadline."""
        if not self._history:
            return 0.0
        misses = sum(1 for ms in self._history if ms > self.deadline_ms)
        return misses / len(self._history)
