"""Game-streaming server: render -> RoI detect -> encode -> transmit.

Implements the server half of Fig. 6: each call to
:meth:`GameStreamServer.next_frame` advances the game world, renders the
LR frame + depth buffer, runs the depth-guided RoI detection (when
enabled), encodes the frame, and returns the :class:`ServerFrame` that
would travel to the client. Server stage latencies come from the
calibrated platform model (a desktop-class server, Sec. V-A).

Each stage records a span into the frame's
:class:`~repro.streaming.pipeline.FrameTrace`; ``server_timings_ms`` is
the materialized MTP view of that trace. The ``network`` span carries the
*flat* bandwidth-model downlink by default — :func:`run_session` amends
it in place when a lossy :class:`~repro.network.NetworkLink` transport is
injected.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..codec.encoder import VideoEncoder
from ..core.config import DEFAULT_ROI_CONFIG, RoIConfig
from ..core.detector import RoIDetector
from ..platform import latency as lat
from ..render.games import GameWorkload
from ..render.rasterizer import RenderOutput
from .frames import ROI_METADATA_BYTES, ServerFrame, StreamGeometry
from .pipeline import SERVER_STAGES, FrameTrace, split_transmission

__all__ = ["GameStreamServer"]


class GameStreamServer:
    """Stateful per-session server for one game workload."""

    def __init__(
        self,
        game: GameWorkload,
        geometry: StreamGeometry,
        roi_side: Optional[int],
        gop_size: int = 60,
        quality: int = 60,
        fps: float = 60.0,
        roi_config: RoIConfig = DEFAULT_ROI_CONFIG,
        motion_method: str = "full",
    ) -> None:
        """``roi_side`` is the client's negotiated window on the *eval*
        geometry; pass None to disable RoI detection (SOTA mode).
        ``motion_method`` selects the encoder's block-matching search
        (``"full"`` exact search by default; ``"diamond"`` for the fast
        approximate mode). Pass ``roi_config`` with ``warm_start=True``
        to enable the detector's temporal warm start; each ``roi_detect``
        span then records which path ran (``search_mode``) and the
        winning window sum (``score``)."""
        self.game = game
        self.geometry = geometry
        self.fps = fps
        self.roi_config = roi_config
        self.encoder = VideoEncoder(
            gop_size=gop_size, quality=quality, motion_method=motion_method
        )
        self.detector = (
            RoIDetector(roi_side, roi_config) if roi_side is not None else None
        )
        self._index = 0
        self._hr_cache: tuple[int, RenderOutput] | None = None

    @property
    def gop_size(self) -> int:
        return self.encoder.gop_size

    @property
    def roi_side(self) -> Optional[int]:
        """The detection window side on the eval geometry (None = SOTA mode)."""
        return self.detector.window_side if self.detector is not None else None

    def set_roi_side(self, side: int) -> None:
        """Re-negotiate the RoI window side mid-session.

        This is the policy hook an :class:`~repro.streaming.adaptive.
        AdaptiveRoIController` drives from measured upscale spans; the
        paper's static sizing never calls it.
        """
        if self.detector is None:
            raise ValueError("cannot resize the RoI window: detection is disabled")
        if side < 2:
            raise ValueError(f"RoI side must be >= 2, got {side}")
        if side != self.detector.window_side:
            self.detector = RoIDetector(side, self.roi_config)

    def _render_hr(self, index: int) -> RenderOutput:
        if self._hr_cache is not None and self._hr_cache[0] == index:
            return self._hr_cache[1]
        g = self.geometry
        rendered = self.game.render_frame(
            index, g.eval_lr_width * g.scale, g.eval_lr_height * g.scale, self.fps
        )
        self._hr_cache = (index, rendered)
        return rendered

    def render_lr(self, index: int) -> RenderOutput:
        """Produce the LR frame + depth buffer for frame ``index``.

        With ``lr_source="downsample"`` (default) the server renders at HR
        and area-averages color and depth down — the anti-aliased stream a
        real game (MSAA/TAA) would encode. ``"native"`` renders directly
        at LR (aliased).
        """
        g = self.geometry
        if g.lr_source == "native":
            return self.game.render_frame(index, g.eval_lr_width, g.eval_lr_height, self.fps)
        hr = self._render_hr(index)
        s = g.scale
        h, w = g.eval_lr_height, g.eval_lr_width
        color = hr.color[: h * s, : w * s].reshape(h, s, w, s, 3).mean(axis=(1, 3))
        depth = hr.depth[: h * s, : w * s].reshape(h, s, w, s).mean(axis=(1, 3))
        return RenderOutput(color=color, depth=depth)

    def render_hr_reference(self, index: int) -> np.ndarray:
        """Native HR render of frame ``index`` (the quality ground truth)."""
        return self._render_hr(index).color

    def next_frame(self, prerendered: Optional[RenderOutput] = None) -> ServerFrame:
        """Advance one frame through the staged server pipeline.

        Every stage records a span into the frame's trace; the returned
        ``server_timings_ms`` dict is the trace's MTP view and therefore
        numerically identical to the pre-refactor hand-assembled dict.

        ``prerendered`` substitutes an already-computed
        :meth:`render_lr` output for this frame's render stage — the
        pipelined executor's render-prefetch pool uses it (``render_lr``
        is pure in the frame index, so prefetching cannot change the
        stream). The stage's span and modeled latency are recorded
        exactly as if the render had run inline.
        """
        index = self._index
        self._index += 1
        trace = FrameTrace(index=index)

        with trace.stage("input") as st:
            st.modeled_ms = lat.server_input_ms()
        with trace.stage("game_logic") as st:
            st.modeled_ms = lat.server_game_logic_ms()

        with trace.stage("render") as st:
            rendered = prerendered if prerendered is not None else self.render_lr(index)
            st.modeled_ms = lat.server_render_ms(self.geometry.modeled_lr_pixels)
            st.meta(lr_source=self.geometry.lr_source)

        with trace.stage("roi_detect") as st:
            roi = None
            if self.detector is not None:
                detection = self.detector.detect(rendered.depth)
                roi = detection.box
                st.modeled_ms = lat.server_roi_detect_ms()
                st.meta(
                    x=roi.x,
                    y=roi.y,
                    width=roi.width,
                    height=roi.height,
                    search_mode=detection.search_mode,
                    score=round(detection.score, 3),
                )
            else:
                st.meta(enabled=False)

        with trace.stage("encode") as st:
            encoded = self.encoder.encode_frame(rendered.color)
            st.modeled_ms = lat.server_encode_ms(self.geometry.modeled_lr_pixels)
            st.meta(frame_type=encoded.frame_type, payload_bytes=encoded.size_bytes)

        modeled_bytes = int(round(encoded.size_bytes * self.geometry.byte_scale))
        if roi is not None:
            modeled_bytes += ROI_METADATA_BYTES

        with trace.stage("network") as st:
            # Flat bandwidth-model downlink; the server owns the full
            # propagation + serialization time (see pipeline.py). A lossy
            # NetworkLink transport, when injected, amends this span.
            split = split_transmission(modeled_bytes)
            st.modeled_ms = split.total_ms
            st.meta(
                modeled_bytes=modeled_bytes,
                propagation_ms=split.propagation_ms,
                serialization_ms=split.serialization_ms,
            )

        trace.frame_type = encoded.frame_type
        return ServerFrame(
            index=index,
            encoded=encoded,
            roi=roi,
            geometry=self.geometry,
            server_timings_ms=trace.timings_ms(SERVER_STAGES),
            modeled_size_bytes=modeled_bytes,
            trace=trace,
        )
