"""Game-streaming server: render -> RoI detect -> encode -> transmit.

Implements the server half of Fig. 6: each call to
:meth:`GameStreamServer.next_frame` advances the game world, renders the
LR frame + depth buffer, runs the depth-guided RoI detection (when
enabled), encodes the frame, and returns the :class:`ServerFrame` that
would travel to the client. Server stage latencies come from the
calibrated platform model (a desktop-class server, Sec. V-A).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..codec.encoder import VideoEncoder
from ..core.config import DEFAULT_ROI_CONFIG, RoIConfig
from ..core.detector import RoIDetector
from ..platform import latency as lat
from ..render.games import GameWorkload
from ..render.rasterizer import RenderOutput
from .frames import ROI_METADATA_BYTES, ServerFrame, StreamGeometry

__all__ = ["GameStreamServer"]


class GameStreamServer:
    """Stateful per-session server for one game workload."""

    def __init__(
        self,
        game: GameWorkload,
        geometry: StreamGeometry,
        roi_side: Optional[int],
        gop_size: int = 60,
        quality: int = 60,
        fps: float = 60.0,
        roi_config: RoIConfig = DEFAULT_ROI_CONFIG,
        motion_method: str = "full",
    ) -> None:
        """``roi_side`` is the client's negotiated window on the *eval*
        geometry; pass None to disable RoI detection (SOTA mode).
        ``motion_method`` selects the encoder's block-matching search
        (``"full"`` exact search by default; ``"diamond"`` for the fast
        approximate mode)."""
        self.game = game
        self.geometry = geometry
        self.fps = fps
        self.encoder = VideoEncoder(
            gop_size=gop_size, quality=quality, motion_method=motion_method
        )
        self.detector = (
            RoIDetector(roi_side, roi_config) if roi_side is not None else None
        )
        self._index = 0
        self._hr_cache: tuple[int, RenderOutput] | None = None

    @property
    def gop_size(self) -> int:
        return self.encoder.gop_size

    def _render_hr(self, index: int) -> RenderOutput:
        if self._hr_cache is not None and self._hr_cache[0] == index:
            return self._hr_cache[1]
        g = self.geometry
        rendered = self.game.render_frame(
            index, g.eval_lr_width * g.scale, g.eval_lr_height * g.scale, self.fps
        )
        self._hr_cache = (index, rendered)
        return rendered

    def render_lr(self, index: int) -> RenderOutput:
        """Produce the LR frame + depth buffer for frame ``index``.

        With ``lr_source="downsample"`` (default) the server renders at HR
        and area-averages color and depth down — the anti-aliased stream a
        real game (MSAA/TAA) would encode. ``"native"`` renders directly
        at LR (aliased).
        """
        g = self.geometry
        if g.lr_source == "native":
            return self.game.render_frame(index, g.eval_lr_width, g.eval_lr_height, self.fps)
        hr = self._render_hr(index)
        s = g.scale
        h, w = g.eval_lr_height, g.eval_lr_width
        color = hr.color[: h * s, : w * s].reshape(h, s, w, s, 3).mean(axis=(1, 3))
        depth = hr.depth[: h * s, : w * s].reshape(h, s, w, s).mean(axis=(1, 3))
        return RenderOutput(color=color, depth=depth)

    def render_hr_reference(self, index: int) -> np.ndarray:
        """Native HR render of frame ``index`` (the quality ground truth)."""
        return self._render_hr(index).color

    def next_frame(self) -> ServerFrame:
        """Advance one frame through the server pipeline."""
        index = self._index
        self._index += 1

        rendered = self.render_lr(index)
        roi = None
        roi_detect_ms = 0.0
        if self.detector is not None:
            roi = self.detector.detect(rendered.depth).box
            roi_detect_ms = lat.server_roi_detect_ms()

        encoded = self.encoder.encode_frame(rendered.color)
        modeled_bytes = int(round(encoded.size_bytes * self.geometry.byte_scale))
        if roi is not None:
            modeled_bytes += ROI_METADATA_BYTES

        timings = {
            "input": lat.server_input_ms(),
            "game_logic": lat.server_game_logic_ms(),
            "render": lat.server_render_ms(self.geometry.modeled_lr_pixels),
            "roi_detect": roi_detect_ms,
            "encode": lat.server_encode_ms(self.geometry.modeled_lr_pixels),
            "network": lat.transmission_ms(modeled_bytes),
        }
        return ServerFrame(
            index=index,
            encoded=encoded,
            roi=roi,
            geometry=self.geometry,
            server_timings_ms=timings,
            modeled_size_bytes=modeled_bytes,
        )
