"""Client-side upscaling designs: GameStreamSR and its baselines.

Every client consumes :class:`~repro.streaming.frames.ServerFrame`
objects and produces :class:`~repro.streaming.frames.ClientFrameResult`
with (a) real upscaled pixels at the evaluation geometry and (b) stage
latencies + energy stage lists evaluated at the *modeled* geometry
(720p -> 1440p) through the calibrated platform model.

The client pipeline is staged (Fig. 9): :meth:`StreamingClient.process`
is a template method that records the shared network-receive, decode, and
display spans into a :class:`~repro.streaming.pipeline.FrameTrace` and
assembles the :class:`ClientFrameResult`; each design only implements its
:meth:`~StreamingClient._upscale_stage` (and may amend the decode span —
the SR-integrated decoder replaces it with its augmented datapath, NEMO
charges its in-decoder warp energy to it).

Designs:

* :class:`GameStreamSRClient` — the paper's design: hardware decode, DNN
  SR on the RoI (NPU) in parallel with GPU bilinear on the rest, merge.
* :class:`NemoClient` — the SOTA baseline (NEMO): software decode
  (codec-modified, so no hardware decoder), full-frame DNN SR on
  reference frames, and non-reference reconstruction from the upscaled
  reference + bilinearly upscaled motion vectors and residuals on the CPU.
* :class:`BilinearClient` — hardware decode + GPU bilinear only (quality
  floor).
* :class:`FullFrameSRClient` — DNN SR on every full frame (quality
  ceiling; hopelessly slow on mobile).
* :class:`SRIntegratedDecoderClient` — the paper's Fig. 15 future-work
  prototype: RoI-SR on reference frames only; non-reference frames are
  reconstructed inside the (augmented) decoder from the cached upscaled
  reference with RoI-guided residual interpolation (bicubic inside the
  RoI, bilinear outside), bypassing the NPU.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..codec.decoder import DecodedFrame, VideoDecoder
from ..contracts import expect
from ..codec.motion import compensate, upscale_motion_vectors
from ..core.roi_search import RoIBox
from ..core.upscaler import RoIAssistedUpscaler
from ..platform import latency as lat
from ..platform.device import DeviceProfile
from ..platform.energy import Component
from ..sr.interpolate import bicubic, bilinear
from ..sr.runner import SRRunner
from .frames import ClientFrameResult, ServerFrame
from .pipeline import CLIENT_STAGES, FrameTrace, split_transmission

__all__ = [
    "StreamingClient",
    "GameStreamSRClient",
    "NemoClient",
    "BilinearClient",
    "FullFrameSRClient",
    "SRIntegratedDecoderClient",
    "EnergyStages",
]

EnergyStages = Dict[str, List[Tuple[Component, float]]]


class StreamingClient:
    """Base class: owns the decoder, the device profile, and the template
    pipeline (network rx -> decode -> upscale -> display -> assemble)."""

    #: Human-readable design label used in reports.
    design = "abstract"
    #: Whether the design can use the hardware decoder block (NEMO's codec
    #: modifications force the software decoder, Sec. V-A).
    decode_hardware = True
    #: Component charged for the decode stage energy.
    decode_component = Component.HW_DECODER

    def __init__(self, device: DeviceProfile) -> None:
        self.device = device
        self.decoder = VideoDecoder()

    def reset(self) -> None:
        self.decoder.reset()

    # -- template pipeline ----------------------------------------------
    def process(self, frame: ServerFrame) -> ClientFrameResult:
        """Run one frame through the staged client pipeline."""
        self._check_frame(frame)
        trace = FrameTrace(index=frame.index, frame_type=frame.encoded.frame_type)

        with trace.stage("network", mtp=False) as st:
            # Energy-only span: the server's network span owns the MTP
            # downlink time; the client attributes the radio-active
            # serialization window to RX energy exactly once (pipeline.py).
            split = split_transmission(frame.modeled_size_bytes)
            st.modeled_ms = split.serialization_ms
            st.add_energy(Component.NETWORK_RX, split.serialization_ms)
            st.meta(modeled_bytes=frame.modeled_size_bytes)

        with trace.stage("decode") as st:
            decoded = self.decoder.decode_frame(frame.encoded)
            decode_ms = lat.decode_ms(
                frame.geometry.modeled_lr_pixels, self.device,
                hardware=self.decode_hardware,
            )
            st.modeled_ms = decode_ms
            st.add_energy(self.decode_component, decode_ms)
            st.meta(hardware=self.decode_hardware)

        hr = self._upscale_stage(frame, decoded, trace)
        expect(hr, "H W 3:f", name="hr_frame", where=f"{type(self).__name__}.process")

        with trace.stage("display") as st:
            st.modeled_ms = self._display_ms(frame, trace)

        return ClientFrameResult(
            index=frame.index,
            frame_type=frame.encoded.frame_type,
            hr_frame=hr,
            client_timings_ms=trace.timings_ms(CLIENT_STAGES),
            energy_stages=trace.energy_stages(),
            trace=trace,
        )

    # -- design hooks ----------------------------------------------------
    def _check_frame(self, frame: ServerFrame) -> None:
        """Validate per-design frame requirements before any work."""

    def _upscale_stage(
        self, frame: ServerFrame, decoded: DecodedFrame, trace: FrameTrace
    ) -> np.ndarray:
        """Record the design's upscale span(s) and return the HR pixels."""
        raise NotImplementedError

    def _display_ms(self, frame: ServerFrame, trace: FrameTrace) -> float:
        """Display-stage latency; designs may add composition work."""
        return lat.display_present_ms(self.device)


class GameStreamSRClient(StreamingClient):
    """The paper's RoI-assisted hybrid client (Fig. 9)."""

    design = "gamestreamsr"

    def __init__(
        self,
        device: DeviceProfile,
        runner: SRRunner,
        modeled_roi_side: Optional[int] = None,
    ) -> None:
        """``modeled_roi_side`` pins the RoI side at the modeled geometry
        (the negotiated plan side, e.g. ~300 px on 720p); by default the
        eval-scale RoI area is extrapolated by the area ratio."""
        super().__init__(device)
        self.upscaler = RoIAssistedUpscaler(runner)
        self.modeled_roi_side = modeled_roi_side

    def _modeled_roi_pixels(self, frame: ServerFrame) -> int:
        if self.modeled_roi_side is not None:
            return self.modeled_roi_side**2
        return frame.geometry.modeled_roi_pixels(frame.roi)

    def _check_frame(self, frame: ServerFrame) -> None:
        if frame.roi is None:
            raise ValueError("GameStreamSRClient requires server-side RoI data")

    def _upscale_stage(
        self, frame: ServerFrame, decoded: DecodedFrame, trace: FrameTrace
    ) -> np.ndarray:
        geometry = frame.geometry
        with trace.stage("upscale") as st:
            result = self.upscaler.upscale(decoded.rgb, frame.roi)

            roi_px = self._modeled_roi_pixels(frame)
            non_roi_px = geometry.modeled_lr_pixels - roi_px
            npu_ms = lat.npu_sr_latency_ms(roi_px, self.device)
            gpu_ms = lat.gpu_bilinear_ms(non_roi_px, self.device)
            merge_ms = lat.merge_ms(geometry.modeled_hr_pixels, self.device)
            # NPU and GPU run in parallel (Sec. IV-C); the RoI merge is a
            # composition copy and lands in the display stage, while its
            # GPU energy belongs to the upscale category (Fig. 12).
            st.modeled_ms = max(npu_ms, gpu_ms)
            st.add_energy(Component.NPU, npu_ms)
            st.add_energy(Component.GPU, gpu_ms + merge_ms)
            st.meta(
                npu_ms=npu_ms, gpu_ms=gpu_ms, merge_ms=merge_ms,
                modeled_roi_pixels=roi_px,
            )
        return result.frame

    def _display_ms(self, frame: ServerFrame, trace: FrameTrace) -> float:
        merge_ms = trace.span("upscale").metadata["merge_ms"]
        return lat.display_present_ms(self.device) + merge_ms


class NemoClient(StreamingClient):
    """NEMO (Yeo et al. 2020) ported to game streaming — the paper's SOTA.

    Reference frames get full-frame DNN SR; non-reference frames reuse the
    cached upscaled reference: HR prediction = warp(HR reference, 2x-scaled
    motion vectors), plus the bilinearly upscaled decoded residual. Codec
    modifications force the software decoder (Sec. V-A).
    """

    design = "nemo"
    decode_hardware = False
    decode_component = Component.CPU

    def __init__(self, device: DeviceProfile, runner: SRRunner, sr_tile: int = 72) -> None:
        super().__init__(device)
        self.runner = runner
        self.sr_tile = sr_tile
        self._hr_reference: Optional[np.ndarray] = None

    def reset(self) -> None:
        super().reset()
        self._hr_reference = None

    def _upscale_stage(
        self, frame: ServerFrame, decoded: DecodedFrame, trace: FrameTrace
    ) -> np.ndarray:
        geometry = frame.geometry
        with trace.stage("upscale") as st:
            if decoded.is_reference or self._hr_reference is None:
                hr = self.runner.upscale_tiled(decoded.rgb, tile=self.sr_tile)
                npu_ms = lat.npu_sr_latency_ms(geometry.modeled_lr_pixels, self.device)
                st.modeled_ms = npu_ms
                st.add_energy(Component.NPU, npu_ms)
                st.meta(path="full_frame_sr")
            else:
                from ..baselines.nemo import reconstruct_nonreference

                hr = reconstruct_nonreference(
                    self._hr_reference,
                    decoded.motion_vectors,
                    decoded.residual_rgb,
                    scale=geometry.scale,
                    block=frame.encoded.block,
                )
                cpu_up_ms = lat.cpu_bilinear_ms(geometry.modeled_lr_pixels, self.device)
                warp_ms = lat.cpu_warp_ms(geometry.modeled_hr_pixels, self.device)
                st.modeled_ms = cpu_up_ms + warp_ms
                st.add_energy(Component.CPU, cpu_up_ms)
                # Energy accounting note (calibration.py): the warp runs
                # inside NEMO's modified decoder, so its energy lands in
                # the decode category.
                trace.add_energy("decode", Component.RECON_MEMORY, warp_ms)
                st.meta(path="warp_reconstruction", warp_ms=warp_ms)
            self._hr_reference = hr
        return hr


class BilinearClient(StreamingClient):
    """Hardware decode + GPU bilinear upscale of the whole frame."""

    design = "bilinear"

    def _upscale_stage(
        self, frame: ServerFrame, decoded: DecodedFrame, trace: FrameTrace
    ) -> np.ndarray:
        geometry = frame.geometry
        with trace.stage("upscale") as st:
            s = geometry.scale
            hr = bilinear(
                decoded.rgb, geometry.eval_lr_height * s, geometry.eval_lr_width * s
            )
            gpu_ms = lat.gpu_bilinear_ms(geometry.modeled_lr_pixels, self.device)
            st.modeled_ms = gpu_ms
            st.add_energy(Component.GPU, gpu_ms)
        return hr


class FullFrameSRClient(StreamingClient):
    """DNN SR on every frame — the quality ceiling, far from real time."""

    design = "fullframe_sr"

    def __init__(self, device: DeviceProfile, runner: SRRunner, sr_tile: int = 72) -> None:
        super().__init__(device)
        self.runner = runner
        self.sr_tile = sr_tile

    def _upscale_stage(
        self, frame: ServerFrame, decoded: DecodedFrame, trace: FrameTrace
    ) -> np.ndarray:
        with trace.stage("upscale") as st:
            hr = self.runner.upscale_tiled(decoded.rgb, tile=self.sr_tile)
            npu_ms = lat.npu_sr_latency_ms(
                frame.geometry.modeled_lr_pixels, self.device
            )
            st.modeled_ms = npu_ms
            st.add_energy(Component.NPU, npu_ms)
        return hr


class SRIntegratedDecoderClient(StreamingClient):
    """Fig. 15 future-work prototype: RoI-SR only on reference frames.

    Non-reference frames bypass the NPU entirely: the (hypothetically
    augmented) hardware decoder reconstructs them in HR from the cached
    upscaled reference using 2x-scaled motion vectors, with RoI-guided
    residual interpolation — bicubic inside the RoI, bilinear outside.
    In trace terms: the upscale span collapses to zero and the decode
    span is *amended* with the augmented-datapath cost.
    """

    design = "sr_integrated_decoder"

    #: Modeled latency/energy multiplier of the augmented decoder relative
    #: to the stock hardware decoder (extra HR reconstruction datapath).
    DECODER_AUGMENT_FACTOR = 1.6
    #: In-decoder HR reconstruction engine (warp + RoI-guided residual
    #: interpolation + merge) per HR pixel — a fixed-function datapath at
    #: composition-level power. Sized so the prototype's projected savings
    #: land near the paper's "as high as 50 %" (Sec. VI), not at the
    #: free-lunch number a zero-cost decoder would give.
    RECON_MS_PER_HR_PX = 5.4e-6

    def __init__(self, device: DeviceProfile, runner: SRRunner) -> None:
        super().__init__(device)
        self.upscaler = RoIAssistedUpscaler(runner)
        self._hr_reference: Optional[np.ndarray] = None

    def reset(self) -> None:
        super().reset()
        self._hr_reference = None

    def _check_frame(self, frame: ServerFrame) -> None:
        if frame.roi is None:
            raise ValueError("SRIntegratedDecoderClient requires RoI data")

    def _roi_guided_residual(
        self, residual: np.ndarray, roi: RoIBox, h_hr: int, w_hr: int
    ) -> np.ndarray:
        upscaled = bilinear(residual, h_hr, w_hr)
        roi_hr = roi.scaled(h_hr // residual.shape[0])
        patch = roi.extract(residual)
        upscaled[roi_hr.y : roi_hr.y_end, roi_hr.x : roi_hr.x_end] = bicubic(
            patch, roi_hr.height, roi_hr.width
        )
        return upscaled

    def _upscale_stage(
        self, frame: ServerFrame, decoded: DecodedFrame, trace: FrameTrace
    ) -> np.ndarray:
        geometry = frame.geometry
        s = geometry.scale
        with trace.stage("upscale") as st:
            if decoded.is_reference or self._hr_reference is None:
                result = self.upscaler.upscale(decoded.rgb, frame.roi)
                hr = result.frame
                roi_px = geometry.modeled_roi_pixels(frame.roi)
                npu_ms = lat.npu_sr_latency_ms(roi_px, self.device)
                gpu_ms = lat.gpu_bilinear_ms(
                    geometry.modeled_lr_pixels - roi_px, self.device
                )
                st.modeled_ms = max(npu_ms, gpu_ms) + lat.merge_ms(
                    geometry.modeled_hr_pixels, self.device
                )
                st.add_energy(Component.NPU, npu_ms)
                st.add_energy(Component.GPU, gpu_ms)
                st.meta(path="roi_sr")
            else:
                mv_hr = upscale_motion_vectors(decoded.motion_vectors, s)
                block_hr = frame.encoded.block * s
                h_hr = geometry.eval_lr_height * s
                w_hr = geometry.eval_lr_width * s
                prediction = np.stack(
                    [
                        compensate(self._hr_reference[..., c], mv_hr, block_hr)
                        for c in range(3)
                    ],
                    axis=-1,
                )
                residual_hr = self._roi_guided_residual(
                    decoded.residual_rgb, frame.roi, h_hr, w_hr
                )
                hr = np.clip(prediction + residual_hr, 0.0, 1.0)
                # Everything happens inside the augmented decoder hardware
                # (entropy/transform decode plus the HR reconstruction
                # engine): amend the stock decode span with the augmented
                # datapath's latency and energy, and idle the upscaler.
                hw_decode_ms = trace.span("decode").modeled_ms
                recon_ms = self.RECON_MS_PER_HR_PX * geometry.modeled_hr_pixels
                trace.amend_span(
                    "decode",
                    modeled_ms=hw_decode_ms * self.DECODER_AUGMENT_FACTOR + recon_ms,
                    energy=[
                        (
                            Component.HW_DECODER,
                            hw_decode_ms * self.DECODER_AUGMENT_FACTOR,
                        ),
                        (Component.COMPOSITION, recon_ms),
                    ],
                    augmented=True,
                    recon_ms=recon_ms,
                )
                st.modeled_ms = 0.0
                st.meta(path="in_decoder_reconstruction")
            self._hr_reference = hr
        return hr
