"""Client-side upscaling designs: GameStreamSR and its baselines.

Every client consumes :class:`~repro.streaming.frames.ServerFrame`
objects and produces :class:`~repro.streaming.frames.ClientFrameResult`
with (a) real upscaled pixels at the evaluation geometry and (b) stage
latencies + energy stage lists evaluated at the *modeled* geometry
(720p -> 1440p) through the calibrated platform model.

The client pipeline is staged (Fig. 9): :meth:`StreamingClient.process`
is a template method that records the shared network-receive, decode, and
display spans into a :class:`~repro.streaming.pipeline.FrameTrace` and
assembles the :class:`ClientFrameResult`; each design only implements its
:meth:`~StreamingClient._upscale_stage` (and may amend the decode span —
the SR-integrated decoder replaces it with its augmented datapath, NEMO
charges its in-decoder warp energy to it).

Designs:

* :class:`GameStreamSRClient` — the paper's design: hardware decode, DNN
  SR on the RoI (NPU) in parallel with GPU bilinear on the rest, merge.
* :class:`NemoClient` — the SOTA baseline (NEMO): software decode
  (codec-modified, so no hardware decoder), full-frame DNN SR on
  reference frames, and non-reference reconstruction from the upscaled
  reference + bilinearly upscaled motion vectors and residuals on the CPU.
* :class:`BilinearClient` — hardware decode + GPU bilinear only (quality
  floor).
* :class:`FullFrameSRClient` — DNN SR on every full frame (quality
  ceiling; hopelessly slow on mobile).
* :class:`SRIntegratedDecoderClient` — the paper's Fig. 15 future-work
  prototype: RoI-SR on reference frames only; non-reference frames are
  reconstructed inside the (augmented) decoder from the cached upscaled
  reference with RoI-guided residual interpolation (bicubic inside the
  RoI, bilinear outside), bypassing the NPU.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..codec.decoder import DecodedFrame, VideoDecoder
from ..codec.residual import block_energy, block_pixel_counts
from ..contracts import expect
from ..codec.motion import compensate, upscale_motion_vectors
from ..core.roi_search import RoIBox
from ..core.upscaler import RoIAssistedUpscaler
from ..platform import latency as lat
from ..platform.device import DeviceProfile
from ..platform.energy import Component
from ..sr.backends import SRBackend
from ..sr.dispatch import DifficultyDispatcher, DispatchPlan
from ..sr.gop_reuse import (
    REUSE_DIRTY_THRESHOLD,
    GOPSRCache,
    composite_blocks,
    dirty_block_mask,
    warp_hr,
)
from ..sr.interpolate import bicubic, bilinear
from ..sr.runner import SRRunner
from .frames import ClientFrameResult, ServerFrame
from .pipeline import CLIENT_STAGES, FrameTrace, split_transmission

__all__ = [
    "StreamingClient",
    "GameStreamSRClient",
    "NemoClient",
    "BilinearClient",
    "FullFrameSRClient",
    "SRIntegratedDecoderClient",
    "EnergyStages",
]

EnergyStages = Dict[str, List[Tuple[Component, float]]]


class StreamingClient:
    """Base class: owns the decoder, the device profile, and the template
    pipeline (network rx -> decode -> upscale -> display -> assemble)."""

    #: Human-readable design label used in reports.
    design = "abstract"
    #: Whether the design can use the hardware decoder block (NEMO's codec
    #: modifications force the software decoder, Sec. V-A).
    decode_hardware = True
    #: Component charged for the decode stage energy.
    decode_component = Component.HW_DECODER

    def __init__(self, device: DeviceProfile) -> None:
        self.device = device
        self.decoder = VideoDecoder()

    def reset(self) -> None:
        self.decoder.reset()

    # -- template pipeline ----------------------------------------------
    def process(self, frame: ServerFrame) -> ClientFrameResult:
        """Run one frame through the staged client pipeline."""
        self._check_frame(frame)
        trace = FrameTrace(index=frame.index, frame_type=frame.encoded.frame_type)

        with trace.stage("network", mtp=False) as st:
            # Energy-only span: the server's network span owns the MTP
            # downlink time; the client attributes the radio-active
            # serialization window to RX energy exactly once (pipeline.py).
            split = split_transmission(frame.modeled_size_bytes)
            st.modeled_ms = split.serialization_ms
            st.add_energy(Component.NETWORK_RX, split.serialization_ms)
            st.meta(modeled_bytes=frame.modeled_size_bytes)

        with trace.stage("decode") as st:
            decoded = self.decoder.decode_frame(frame.encoded)
            decode_ms = lat.decode_ms(
                frame.geometry.modeled_lr_pixels, self.device,
                hardware=self.decode_hardware,
            )
            st.modeled_ms = decode_ms
            st.add_energy(self.decode_component, decode_ms)
            st.meta(hardware=self.decode_hardware)

        hr = self._upscale_stage(frame, decoded, trace)
        expect(hr, "H W 3:f", name="hr_frame", where=f"{type(self).__name__}.process")

        with trace.stage("display") as st:
            st.modeled_ms = self._display_ms(frame, trace)

        return ClientFrameResult(
            index=frame.index,
            frame_type=frame.encoded.frame_type,
            hr_frame=hr,
            client_timings_ms=trace.timings_ms(CLIENT_STAGES),
            energy_stages=trace.energy_stages(),
            trace=trace,
        )

    # -- design hooks ----------------------------------------------------
    def _check_frame(self, frame: ServerFrame) -> None:
        """Validate per-design frame requirements before any work."""

    def _upscale_stage(
        self, frame: ServerFrame, decoded: DecodedFrame, trace: FrameTrace
    ) -> np.ndarray:
        """Record the design's upscale span(s) and return the HR pixels."""
        raise NotImplementedError

    def _display_ms(self, frame: ServerFrame, trace: FrameTrace) -> float:
        """Display-stage latency; designs may add composition work."""
        return lat.display_present_ms(self.device)


def _roi_block_count(roi: RoIBox, block: int) -> int:
    """How many blocks of the LR grid the RoI intersects."""
    rows = -(-roi.y_end // block) - roi.y // block
    cols = -(-roi.x_end // block) - roi.x // block
    return rows * cols


def _refresh_reuse_meta(geometry, roi: RoIBox, reason: str, block: int) -> Dict:
    """The ``reuse`` span metadata for a full-refresh frame.

    Shared by every client with a GOP-reuse path so the ``sr.reuse/*``
    counters mean the same thing across designs.
    """
    nby = -(-geometry.eval_lr_height // block)
    nbx = -(-geometry.eval_lr_width // block)
    n_roi = _roi_block_count(roi, block)
    return dict(
        refresh=True, reason=reason, warp_ms=0.0, dirty_fraction=1.0,
        tiles_total=nby * nbx, tiles_reused=0,
        tiles_recomputed_sr=n_roi,
        tiles_recomputed_bilinear=nby * nbx - n_roi,
    )


class _ZooSRExecution:
    """Mixin: model-zoo SR execution knobs for the RoI-SR clients.

    Two mutually exclusive knobs (also exclusive with ``gop_reuse``):

    * ``sr_backend`` — swap the RoI DNN for any
      :class:`~repro.sr.backends.SRBackend`; the modeled RoI pass rides
      the backend's own latency/energy anchors (same-engine work
      serializes with the GPU bilinear rest, distinct engines run in
      parallel, as in Sec. IV-C).
    * ``dispatch`` — a :class:`~repro.sr.dispatch.DifficultyDispatcher`
      routes RoI tiles across a backend pool per frame; engine times
      come from the plan, evaluated at the *modeled* per-tile pixel
      load so budgets compare against the real-time deadline.

    Both default to ``None`` (off): the default path is untouched and
    stays byte-identical to the paper configuration.
    """

    sr_backend: Optional[SRBackend] = None
    dispatch: Optional[DifficultyDispatcher] = None

    def _init_sr_execution(
        self,
        sr_backend: Optional[SRBackend],
        dispatch: Optional[DifficultyDispatcher],
    ) -> None:
        self.sr_backend = None
        self.dispatch = None
        if sr_backend is not None:
            self.set_sr_backend(sr_backend)
        if dispatch is not None:
            self.set_dispatch(dispatch)

    def _validate_sr_knobs(self) -> None:
        active = [
            name
            for name, on in (
                ("gop_reuse", bool(getattr(self, "gop_reuse", False))),
                ("sr_backend", self.sr_backend is not None),
                ("dispatch", self.dispatch is not None),
            )
            if on
        ]
        if len(active) > 1:
            raise ValueError(
                "mutually exclusive SR execution knobs enabled together: "
                + ", ".join(active)
            )

    def set_sr_backend(self, backend: SRBackend) -> None:
        """Route the RoI SR pass through a model-zoo backend."""
        if backend.scale != self.upscaler.scale:
            raise ValueError(
                f"backend scale {backend.scale} != client scale "
                f"{self.upscaler.scale}"
            )
        self.sr_backend = backend
        self.upscaler = RoIAssistedUpscaler(backend)
        self._validate_sr_knobs()

    def set_dispatch(self, dispatcher: DifficultyDispatcher) -> None:
        """Route RoI tiles across a backend pool under a latency budget."""
        if dispatcher.scale != self.upscaler.scale:
            raise ValueError(
                f"dispatcher scale {dispatcher.scale} != client scale "
                f"{self.upscaler.scale}"
            )
        self.dispatch = dispatcher
        self._validate_sr_knobs()

    # -- execution --------------------------------------------------------
    def _roi_residual_energy(
        self, decoded: DecodedFrame, roi: RoIBox
    ) -> Optional[np.ndarray]:
        """Codec residual energies over the RoI tile grid, if available.

        P-frames carry a decoded residual; its per-tile energy biases
        the difficulty metric toward tiles the codec itself found hard
        to predict. Reference frames have no meaningful residual signal.
        """
        if decoded.is_reference:
            return None
        residual = decoded.residual_rgb
        if residual is None:
            return None
        return block_energy(roi.extract(residual), self.dispatch.tile)

    def _dispatch_upscale(
        self, frame: ServerFrame, decoded: DecodedFrame, modeled_roi_px: float
    ) -> Tuple[np.ndarray, DispatchPlan]:
        """Run the dispatcher over the RoI; bilinear everywhere else."""
        geometry = frame.geometry
        roi = frame.roi
        s = geometry.scale
        lr = decoded.rgb
        hr = bilinear(
            lr, geometry.eval_lr_height * s, geometry.eval_lr_width * s
        )
        tile = self.dispatch.tile
        n_tiles = (-(-roi.height // tile)) * (-(-roi.width // tile))
        hr_roi, plan = self.dispatch.run(
            roi.extract(lr),
            self.device,
            extra_energy=self._roi_residual_energy(decoded, roi),
            tile_pixels=modeled_roi_px / n_tiles,
        )
        roi_hr = roi.scaled(s)
        hr[roi_hr.y : roi_hr.y_end, roi_hr.x : roi_hr.x_end] = hr_roi
        return hr, plan

    # -- modeling ---------------------------------------------------------
    def _model_backend_roi(
        self, st, roi_px: float, gpu_ms: float, merge_ms: float,
        merge_serial: bool = False,
    ) -> None:
        """Model the RoI pass on ``sr_backend`` beside the GPU bilinear.

        Same-engine work serializes, distinct engines run in parallel.
        ``merge_serial`` keeps each design's merge convention: the
        SR-integrated decoder folds the merge into the upscale span
        (latency only), GameStreamSR defers it to display but charges
        its GPU energy here (Fig. 12).
        """
        b = self.sr_backend
        sr_ms = b.latency_ms(roi_px, self.device)
        stage_ms = sr_ms + gpu_ms if b.engine == "gpu" else max(sr_ms, gpu_ms)
        st.modeled_ms = stage_ms + (merge_ms if merge_serial else 0.0)
        st.add_energy(b.component, b.energy_charged_ms(sr_ms, self.device))
        st.add_energy(
            Component.GPU, gpu_ms if merge_serial else gpu_ms + merge_ms
        )
        st.meta(
            sr_backend=b.name, sr_ms=sr_ms, gpu_ms=gpu_ms, merge_ms=merge_ms,
            modeled_roi_pixels=roi_px,
        )

    def _model_dispatch_roi(
        self, st, plan: DispatchPlan, roi_px: float, gpu_ms: float,
        merge_ms: float, merge_serial: bool = False,
    ) -> None:
        """Model the dispatched RoI pass: engines run concurrently, the
        non-RoI bilinear joins the plan's GPU engine total."""
        engine_ms = dict(plan.engine_ms)
        engine_ms["gpu"] = engine_ms.get("gpu", 0.0) + gpu_ms
        st.modeled_ms = max(engine_ms.values()) + (
            merge_ms if merge_serial else 0.0
        )
        for b in self.dispatch.backends:
            ms = plan.backend_ms.get(b.name, 0.0)
            if ms > 0.0:
                st.add_energy(b.component, b.energy_charged_ms(ms, self.device))
        st.add_energy(
            Component.GPU, gpu_ms if merge_serial else gpu_ms + merge_ms
        )
        st.meta(
            gpu_ms=gpu_ms, merge_ms=merge_ms, modeled_roi_pixels=roi_px,
            dispatch=plan.meta(),
        )


class GameStreamSRClient(_ZooSRExecution, StreamingClient):
    """The paper's RoI-assisted hybrid client (Fig. 9).

    With ``gop_reuse`` enabled (default off — the default path stays
    byte-identical to the paper configuration) the client keeps a
    :class:`~repro.sr.gop_reuse.GOPSRCache`: on P-frames whose warp chain
    is intact it warps the previous frame's SR output by the decoded
    motion field and re-runs the DNN/bilinear paths only on the blocks
    the residual-energy mask marks dirty. I-frames, a cold cache, a
    broken reference chain (frame-index gap left by ``skip_dropped``), or
    an all-dirty mask fall back to the exact full per-frame path.
    """

    design = "gamestreamsr"

    #: LR context pixels forwarded around each recomputed SR tile (the
    #: same default halo as tiled full-frame inference).
    REUSE_TILE_HALO = 8

    def __init__(
        self,
        device: DeviceProfile,
        runner: SRRunner,
        modeled_roi_side: Optional[int] = None,
        gop_reuse: bool = False,
        reuse_threshold: float = REUSE_DIRTY_THRESHOLD,
        sr_backend: Optional[SRBackend] = None,
        dispatch: Optional[DifficultyDispatcher] = None,
    ) -> None:
        """``modeled_roi_side`` pins the RoI side at the modeled geometry
        (the negotiated plan side, e.g. ~300 px on 720p); by default the
        eval-scale RoI area is extrapolated by the area ratio."""
        super().__init__(device)
        self.runner = runner
        self.upscaler = RoIAssistedUpscaler(runner)
        self.modeled_roi_side = modeled_roi_side
        self.gop_reuse = gop_reuse
        self._reuse = GOPSRCache(threshold=reuse_threshold)
        self._init_sr_execution(sr_backend, dispatch)

    def reset(self) -> None:
        super().reset()
        self._reuse.reset()

    def _modeled_roi_pixels(self, frame: ServerFrame) -> int:
        if self.modeled_roi_side is not None:
            return self.modeled_roi_side**2
        return frame.geometry.modeled_roi_pixels(frame.roi)

    def _check_frame(self, frame: ServerFrame) -> None:
        if frame.roi is None:
            raise ValueError("GameStreamSRClient requires server-side RoI data")

    def _full_roi_sr(self, frame: ServerFrame, decoded: DecodedFrame, st) -> np.ndarray:
        """The paper's full per-frame path: DNN RoI + bilinear rest."""
        geometry = frame.geometry
        result = self.upscaler.upscale(decoded.rgb, frame.roi)

        roi_px = self._modeled_roi_pixels(frame)
        non_roi_px = geometry.modeled_lr_pixels - roi_px
        if self.sr_backend is not None:
            gpu_ms = lat.gpu_bilinear_ms(non_roi_px, self.device)
            merge_ms = lat.merge_ms(geometry.modeled_hr_pixels, self.device)
            self._model_backend_roi(st, roi_px, gpu_ms, merge_ms)
            return result.frame
        npu_ms = lat.npu_sr_latency_ms(roi_px, self.device)
        gpu_ms = lat.gpu_bilinear_ms(non_roi_px, self.device)
        merge_ms = lat.merge_ms(geometry.modeled_hr_pixels, self.device)
        # NPU and GPU run in parallel (Sec. IV-C); the RoI merge is a
        # composition copy and lands in the display stage, while its
        # GPU energy belongs to the upscale category (Fig. 12).
        st.modeled_ms = max(npu_ms, gpu_ms)
        st.add_energy(Component.NPU, npu_ms)
        st.add_energy(Component.GPU, gpu_ms + merge_ms)
        st.meta(
            npu_ms=npu_ms, gpu_ms=gpu_ms, merge_ms=merge_ms,
            modeled_roi_pixels=roi_px,
        )
        return result.frame

    def _upscale_stage(
        self, frame: ServerFrame, decoded: DecodedFrame, trace: FrameTrace
    ) -> np.ndarray:
        if self.dispatch is not None:
            geometry = frame.geometry
            roi_px = self._modeled_roi_pixels(frame)
            with trace.stage("upscale") as st:
                hr, plan = self._dispatch_upscale(frame, decoded, roi_px)
                gpu_ms = lat.gpu_bilinear_ms(
                    geometry.modeled_lr_pixels - roi_px, self.device
                )
                merge_ms = lat.merge_ms(geometry.modeled_hr_pixels, self.device)
                self._model_dispatch_roi(st, plan, roi_px, gpu_ms, merge_ms)
            return hr
        if not self.gop_reuse:
            with trace.stage("upscale") as st:
                hr = self._full_roi_sr(frame, decoded, st)
            return hr
        return self._upscale_stage_reuse(frame, decoded, trace)

    # -- GOP reuse path ---------------------------------------------------
    def _upscale_stage_reuse(
        self, frame: ServerFrame, decoded: DecodedFrame, trace: FrameTrace
    ) -> np.ndarray:
        geometry = frame.geometry
        block = frame.encoded.block
        reason = self._reuse.refresh_reason(frame.index, decoded.is_reference)
        dirty = None
        if reason is None:
            energy = decoded.residual_block_energy(block)
            counts = block_pixel_counts(
                geometry.eval_lr_height, geometry.eval_lr_width, block
            )
            dirty = dirty_block_mask(energy, counts, self._reuse.threshold)
            if bool(dirty.all()):
                # Every block dirty: the partial path would recompute the
                # whole frame anyway — collapse to the exact full path so
                # threshold 0 is bit-identical to per-frame SR.
                reason = "all_dirty"
        with trace.stage("upscale") as st:
            if reason is not None:
                hr = self._full_roi_sr(frame, decoded, st)
                reuse_meta = _refresh_reuse_meta(
                    frame.geometry, frame.roi, reason, block
                )
            else:
                hr, reuse_meta = self._warp_and_refresh(frame, decoded, dirty, st)
            st.meta(reuse=reuse_meta)
        if reason is None:
            # Observability-only sub-span: the warp time is already part
            # of the upscale span's modeled_ms (mtp=False avoids double
            # counting), but gets its own stage_ms histogram this way.
            trace.add_span("sr.reuse/warp", reuse_meta["warp_ms"], mtp=False)
        self._reuse.store(hr, frame.index)
        return hr

    def _warp_and_refresh(
        self,
        frame: ServerFrame,
        decoded: DecodedFrame,
        dirty: np.ndarray,
        st,
    ) -> Tuple[np.ndarray, Dict]:
        """Warp the cached SR canvas and recompute only the dirty blocks."""
        geometry = frame.geometry
        s = geometry.scale
        block = frame.encoded.block
        block_hr = block * s
        lr = decoded.rgb
        h_lr, w_lr = geometry.eval_lr_height, geometry.eval_lr_width
        h_hr, w_hr = h_lr * s, w_lr * s
        roi = frame.roi
        roi_hr = roi.scaled(s)

        mv_hr = upscale_motion_vectors(decoded.motion_vectors, s)
        canvas = warp_hr(self._reuse.hr, mv_hr, block_hr)

        # Real pixels: bilinear-refresh every dirty block, then overwrite
        # the dirty pixels inside the RoI with DNN tiles — matching the
        # full path's pixel-granularity DNN-inside / bilinear-outside
        # composition at the RoI boundary.
        hr_bilinear = bilinear(lr, h_hr, w_hr)
        composite_blocks(canvas, hr_bilinear, dirty, block_hr)

        coords = [tuple(map(int, c)) for c in np.argwhere(dirty)]
        in_roi = [
            (by, bx)
            for by, bx in coords
            if by * block < roi.y_end and (by + 1) * block > roi.y
            and bx * block < roi.x_end and (bx + 1) * block > roi.x
        ]
        if in_roi:
            origins = np.array(
                [[by * block, bx * block] for by, bx in in_roi], dtype=np.int64
            )
            tiles = self.runner.upscale_windows(
                lr, origins, tile=block, halo=self.REUSE_TILE_HALO
            )
            for tile_hr, (by, bx) in zip(tiles, in_roi):
                y0 = max(by * block_hr, roi_hr.y)
                y1 = min((by + 1) * block_hr, roi_hr.y_end, h_hr)
                x0 = max(bx * block_hr, roi_hr.x)
                x1 = min((bx + 1) * block_hr, roi_hr.x_end, w_hr)
                canvas[y0:y1, x0:x1] = tile_hr[
                    y0 - by * block_hr : y1 - by * block_hr,
                    x0 - bx * block_hr : x1 - bx * block_hr,
                ]

        # Modeled costs: dirty-pixel accounting at the eval geometry,
        # rescaled to the modeled (720p) geometry by area fraction —
        # honoring a pinned modeled RoI side exactly like the full path.
        dirty_px = np.repeat(np.repeat(dirty, block, axis=0), block, axis=1)[
            :h_lr, :w_lr
        ]
        roi_mask = np.zeros_like(dirty_px)
        roi_mask[roi.y : roi.y_end, roi.x : roi.x_end] = True
        dirty_lr = int(dirty_px.sum())
        dirty_roi_lr = int((dirty_px & roi_mask).sum())
        dirty_nonroi_lr = dirty_lr - dirty_roi_lr

        modeled_roi_px = self._modeled_roi_pixels(frame)
        modeled_nonroi_px = geometry.modeled_lr_pixels - modeled_roi_px
        roi_frac = dirty_roi_lr / roi.area if roi.area else 0.0
        nonroi_area = h_lr * w_lr - roi.area
        nonroi_frac = dirty_nonroi_lr / nonroi_area if nonroi_area else 0.0

        warp_ms = lat.gpu_warp_ms(geometry.modeled_hr_pixels, self.device)
        npu_ms = lat.npu_sr_latency_ms(modeled_roi_px * roi_frac, self.device)
        gpu_ms = lat.gpu_bilinear_ms(modeled_nonroi_px * nonroi_frac, self.device)
        merge_ms = lat.merge_ms(
            geometry.modeled_hr_pixels * dirty_lr / (h_lr * w_lr), self.device
        )
        # The warp precedes the parallel NPU/GPU refresh of dirty tiles;
        # the (now partial) merge copy still lands in the display stage
        # with its GPU energy in the upscale category, as in the full path.
        st.modeled_ms = warp_ms + max(npu_ms, gpu_ms)
        st.add_energy(Component.NPU, npu_ms)
        st.add_energy(Component.GPU, warp_ms + gpu_ms + merge_ms)
        st.meta(
            npu_ms=npu_ms, gpu_ms=gpu_ms, merge_ms=merge_ms,
            modeled_roi_pixels=modeled_roi_px,
        )
        reuse_meta = dict(
            refresh=False, reason="", warp_ms=warp_ms,
            dirty_fraction=float(dirty.mean()),
            tiles_total=int(dirty.size),
            tiles_reused=int(dirty.size) - len(coords),
            tiles_recomputed_sr=len(in_roi),
            tiles_recomputed_bilinear=len(coords) - len(in_roi),
        )
        return canvas, reuse_meta

    def _display_ms(self, frame: ServerFrame, trace: FrameTrace) -> float:
        merge_ms = trace.span("upscale").metadata["merge_ms"]
        return lat.display_present_ms(self.device) + merge_ms


class NemoClient(StreamingClient):
    """NEMO (Yeo et al. 2020) ported to game streaming — the paper's SOTA.

    Reference frames get full-frame DNN SR; non-reference frames reuse the
    cached upscaled reference: HR prediction = warp(HR reference, 2x-scaled
    motion vectors), plus the bilinearly upscaled decoded residual. Codec
    modifications force the software decoder (Sec. V-A).
    """

    design = "nemo"
    decode_hardware = False
    decode_component = Component.CPU

    def __init__(self, device: DeviceProfile, runner: SRRunner, sr_tile: int = 72) -> None:
        super().__init__(device)
        self.runner = runner
        self.sr_tile = sr_tile
        self._hr_reference: Optional[np.ndarray] = None

    def reset(self) -> None:
        super().reset()
        self._hr_reference = None

    def _upscale_stage(
        self, frame: ServerFrame, decoded: DecodedFrame, trace: FrameTrace
    ) -> np.ndarray:
        geometry = frame.geometry
        with trace.stage("upscale") as st:
            if decoded.is_reference or self._hr_reference is None:
                hr = self.runner.upscale_tiled(decoded.rgb, tile=self.sr_tile)
                npu_ms = lat.npu_sr_latency_ms(geometry.modeled_lr_pixels, self.device)
                st.modeled_ms = npu_ms
                st.add_energy(Component.NPU, npu_ms)
                st.meta(path="full_frame_sr")
            else:
                from ..baselines.nemo import reconstruct_nonreference

                hr = reconstruct_nonreference(
                    self._hr_reference,
                    decoded.motion_vectors,
                    decoded.residual_rgb,
                    scale=geometry.scale,
                    block=frame.encoded.block,
                )
                cpu_up_ms = lat.cpu_bilinear_ms(geometry.modeled_lr_pixels, self.device)
                warp_ms = lat.cpu_warp_ms(geometry.modeled_hr_pixels, self.device)
                st.modeled_ms = cpu_up_ms + warp_ms
                st.add_energy(Component.CPU, cpu_up_ms)
                # Energy accounting note (calibration.py): the warp runs
                # inside NEMO's modified decoder, so its energy lands in
                # the decode category.
                trace.add_energy("decode", Component.RECON_MEMORY, warp_ms)
                st.meta(path="warp_reconstruction", warp_ms=warp_ms)
            self._hr_reference = hr
        return hr


class BilinearClient(StreamingClient):
    """Hardware decode + GPU bilinear upscale of the whole frame."""

    design = "bilinear"

    def _upscale_stage(
        self, frame: ServerFrame, decoded: DecodedFrame, trace: FrameTrace
    ) -> np.ndarray:
        geometry = frame.geometry
        with trace.stage("upscale") as st:
            s = geometry.scale
            hr = bilinear(
                decoded.rgb, geometry.eval_lr_height * s, geometry.eval_lr_width * s
            )
            gpu_ms = lat.gpu_bilinear_ms(geometry.modeled_lr_pixels, self.device)
            st.modeled_ms = gpu_ms
            st.add_energy(Component.GPU, gpu_ms)
        return hr


class FullFrameSRClient(StreamingClient):
    """DNN SR on every frame — the quality ceiling, far from real time."""

    design = "fullframe_sr"

    def __init__(self, device: DeviceProfile, runner: SRRunner, sr_tile: int = 72) -> None:
        super().__init__(device)
        self.runner = runner
        self.sr_tile = sr_tile

    def _upscale_stage(
        self, frame: ServerFrame, decoded: DecodedFrame, trace: FrameTrace
    ) -> np.ndarray:
        with trace.stage("upscale") as st:
            hr = self.runner.upscale_tiled(decoded.rgb, tile=self.sr_tile)
            npu_ms = lat.npu_sr_latency_ms(
                frame.geometry.modeled_lr_pixels, self.device
            )
            st.modeled_ms = npu_ms
            st.add_energy(Component.NPU, npu_ms)
        return hr


class SRIntegratedDecoderClient(_ZooSRExecution, StreamingClient):
    """Fig. 15 future-work prototype: RoI-SR only on reference frames.

    Non-reference frames bypass the NPU entirely: the (hypothetically
    augmented) hardware decoder reconstructs them in HR from the cached
    upscaled reference using 2x-scaled motion vectors, with RoI-guided
    residual interpolation — bicubic inside the RoI, bilinear outside.
    In trace terms: the upscale span collapses to zero and the decode
    span is *amended* with the augmented-datapath cost.
    """

    design = "sr_integrated_decoder"

    #: Modeled latency/energy multiplier of the augmented decoder relative
    #: to the stock hardware decoder (extra HR reconstruction datapath).
    DECODER_AUGMENT_FACTOR = 1.6
    #: In-decoder HR reconstruction engine (warp + RoI-guided residual
    #: interpolation + merge) per HR pixel — a fixed-function datapath at
    #: composition-level power. Sized so the prototype's projected savings
    #: land near the paper's "as high as 50 %" (Sec. VI), not at the
    #: free-lunch number a zero-cost decoder would give.
    RECON_MS_PER_HR_PX = 5.4e-6
    #: Share of the reconstruction engine that runs regardless of the
    #: GOP-reuse dirty mask: the MV warp + merge datapath touches every HR
    #: pixel; only the remaining residual-interpolation share gates per
    #: dirty block when ``gop_reuse`` is enabled.
    REUSE_RECON_WARP_SHARE = 0.25

    def __init__(
        self,
        device: DeviceProfile,
        runner: SRRunner,
        gop_reuse: bool = False,
        reuse_threshold: float = REUSE_DIRTY_THRESHOLD,
        sr_backend: Optional[SRBackend] = None,
        dispatch: Optional[DifficultyDispatcher] = None,
    ) -> None:
        super().__init__(device)
        self.upscaler = RoIAssistedUpscaler(runner)
        self.gop_reuse = gop_reuse
        self.reuse_threshold = reuse_threshold
        self._hr_reference: Optional[np.ndarray] = None
        self._init_sr_execution(sr_backend, dispatch)

    def reset(self) -> None:
        super().reset()
        self._hr_reference = None

    def _check_frame(self, frame: ServerFrame) -> None:
        if frame.roi is None:
            raise ValueError("SRIntegratedDecoderClient requires RoI data")

    def _roi_guided_residual(
        self, residual: np.ndarray, roi: RoIBox, h_hr: int, w_hr: int
    ) -> np.ndarray:
        upscaled = bilinear(residual, h_hr, w_hr)
        roi_hr = roi.scaled(h_hr // residual.shape[0])
        patch = roi.extract(residual)
        upscaled[roi_hr.y : roi_hr.y_end, roi_hr.x : roi_hr.x_end] = bicubic(
            patch, roi_hr.height, roi_hr.width
        )
        return upscaled

    def _upscale_stage(
        self, frame: ServerFrame, decoded: DecodedFrame, trace: FrameTrace
    ) -> np.ndarray:
        geometry = frame.geometry
        s = geometry.scale
        with trace.stage("upscale") as st:
            if decoded.is_reference or self._hr_reference is None:
                roi_px = geometry.modeled_roi_pixels(frame.roi)
                if self.dispatch is not None:
                    hr, plan = self._dispatch_upscale(frame, decoded, roi_px)
                    gpu_ms = lat.gpu_bilinear_ms(
                        geometry.modeled_lr_pixels - roi_px, self.device
                    )
                    merge_ms = lat.merge_ms(geometry.modeled_hr_pixels, self.device)
                    self._model_dispatch_roi(
                        st, plan, roi_px, gpu_ms, merge_ms, merge_serial=True
                    )
                elif self.sr_backend is not None:
                    hr = self.upscaler.upscale(decoded.rgb, frame.roi).frame
                    gpu_ms = lat.gpu_bilinear_ms(
                        geometry.modeled_lr_pixels - roi_px, self.device
                    )
                    merge_ms = lat.merge_ms(geometry.modeled_hr_pixels, self.device)
                    self._model_backend_roi(
                        st, roi_px, gpu_ms, merge_ms, merge_serial=True
                    )
                else:
                    result = self.upscaler.upscale(decoded.rgb, frame.roi)
                    hr = result.frame
                    npu_ms = lat.npu_sr_latency_ms(roi_px, self.device)
                    gpu_ms = lat.gpu_bilinear_ms(
                        geometry.modeled_lr_pixels - roi_px, self.device
                    )
                    st.modeled_ms = max(npu_ms, gpu_ms) + lat.merge_ms(
                        geometry.modeled_hr_pixels, self.device
                    )
                    st.add_energy(Component.NPU, npu_ms)
                    st.add_energy(Component.GPU, gpu_ms)
                st.meta(path="roi_sr")
                if self.gop_reuse:
                    reason = (
                        "reference_frame" if decoded.is_reference else "cold_cache"
                    )
                    st.meta(
                        reuse=_refresh_reuse_meta(
                            geometry, frame.roi, reason, frame.encoded.block
                        )
                    )
            else:
                mv_hr = upscale_motion_vectors(decoded.motion_vectors, s)
                block_hr = frame.encoded.block * s
                h_hr = geometry.eval_lr_height * s
                w_hr = geometry.eval_lr_width * s
                prediction = np.stack(
                    [
                        compensate(self._hr_reference[..., c], mv_hr, block_hr)
                        for c in range(3)
                    ],
                    axis=-1,
                )
                residual = decoded.residual_rgb
                dirty = None
                if self.gop_reuse:
                    # Shared decoder summary (satellite: computed once in
                    # the decoder, consumed by both reuse consumers): the
                    # residual-interpolation engine only processes dirty
                    # blocks; clean blocks contribute zero residual.
                    block = frame.encoded.block
                    energy = decoded.residual_block_energy(block)
                    counts = block_pixel_counts(
                        geometry.eval_lr_height, geometry.eval_lr_width, block
                    )
                    dirty = dirty_block_mask(energy, counts, self.reuse_threshold)
                    dirty_px = np.repeat(
                        np.repeat(dirty, block, axis=0), block, axis=1
                    )[: geometry.eval_lr_height, : geometry.eval_lr_width]
                    residual = residual * dirty_px[:, :, None]
                residual_hr = self._roi_guided_residual(
                    residual, frame.roi, h_hr, w_hr
                )
                hr = np.clip(prediction + residual_hr, 0.0, 1.0)
                # Everything happens inside the augmented decoder hardware
                # (entropy/transform decode plus the HR reconstruction
                # engine): amend the stock decode span with the augmented
                # datapath's latency and energy, and idle the upscaler.
                hw_decode_ms = trace.span("decode").modeled_ms
                recon_ms = self.RECON_MS_PER_HR_PX * geometry.modeled_hr_pixels
                reuse_amend = {}
                if dirty is not None:
                    dirty_fraction = float(dirty.mean())
                    recon_ms *= (
                        self.REUSE_RECON_WARP_SHARE
                        + (1.0 - self.REUSE_RECON_WARP_SHARE) * dirty_fraction
                    )
                    n_dirty = int(dirty.sum())
                    reuse_amend = dict(
                        reuse=dict(
                            refresh=False, reason="", warp_ms=0.0,
                            dirty_fraction=dirty_fraction,
                            tiles_total=int(dirty.size),
                            tiles_reused=int(dirty.size) - n_dirty,
                            tiles_recomputed_sr=0,
                            tiles_recomputed_bilinear=n_dirty,
                        )
                    )
                trace.amend_span(
                    "decode",
                    modeled_ms=hw_decode_ms * self.DECODER_AUGMENT_FACTOR + recon_ms,
                    energy=[
                        (
                            Component.HW_DECODER,
                            hw_decode_ms * self.DECODER_AUGMENT_FACTOR,
                        ),
                        (Component.COMPOSITION, recon_ms),
                    ],
                    augmented=True,
                    recon_ms=recon_ms,
                    **reuse_amend,
                )
                st.modeled_ms = 0.0
                st.meta(path="in_decoder_reconstruction")
            self._hr_reference = hr
        return hr
