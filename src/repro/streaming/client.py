"""Client-side upscaling designs: GameStreamSR and its baselines.

Every client consumes :class:`~repro.streaming.frames.ServerFrame`
objects and produces :class:`~repro.streaming.frames.ClientFrameResult`
with (a) real upscaled pixels at the evaluation geometry and (b) stage
latencies + energy stage lists evaluated at the *modeled* geometry
(720p -> 1440p) through the calibrated platform model.

Designs:

* :class:`GameStreamSRClient` — the paper's design: hardware decode, DNN
  SR on the RoI (NPU) in parallel with GPU bilinear on the rest, merge.
* :class:`NemoClient` — the SOTA baseline (NEMO): software decode
  (codec-modified, so no hardware decoder), full-frame DNN SR on
  reference frames, and non-reference reconstruction from the upscaled
  reference + bilinearly upscaled motion vectors and residuals on the CPU.
* :class:`BilinearClient` — hardware decode + GPU bilinear only (quality
  floor).
* :class:`FullFrameSRClient` — DNN SR on every full frame (quality
  ceiling; hopelessly slow on mobile).
* :class:`SRIntegratedDecoderClient` — the paper's Fig. 15 future-work
  prototype: RoI-SR on reference frames only; non-reference frames are
  reconstructed inside the (augmented) decoder from the cached upscaled
  reference with RoI-guided residual interpolation (bicubic inside the
  RoI, bilinear outside), bypassing the NPU.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..codec.decoder import DecodedFrame, VideoDecoder
from ..codec.motion import compensate, upscale_motion_vectors
from ..core.roi_search import RoIBox
from ..core.upscaler import RoIAssistedUpscaler
from ..platform import latency as lat
from ..platform.device import DeviceProfile
from ..platform.energy import Component
from ..sr.interpolate import bicubic, bilinear
from ..sr.runner import SRRunner
from .frames import ClientFrameResult, ServerFrame

__all__ = [
    "StreamingClient",
    "GameStreamSRClient",
    "NemoClient",
    "BilinearClient",
    "FullFrameSRClient",
    "SRIntegratedDecoderClient",
]

EnergyStages = Dict[str, List[Tuple[Component, float]]]


class StreamingClient:
    """Base class: owns the video decoder and the device profile."""

    #: Human-readable design label used in reports.
    design = "abstract"

    def __init__(self, device: DeviceProfile) -> None:
        self.device = device
        self.decoder = VideoDecoder()

    def reset(self) -> None:
        self.decoder.reset()

    # -- shared helpers --------------------------------------------------
    def _decode(self, frame: ServerFrame, hardware: bool) -> tuple[DecodedFrame, float]:
        decoded = self.decoder.decode_frame(frame.encoded)
        ms = lat.decode_ms(
            frame.geometry.modeled_lr_pixels, self.device, hardware=hardware
        )
        return decoded, ms

    def _network_stage(self, frame: ServerFrame) -> tuple[float, EnergyStages]:
        rx_ms = lat.transmission_ms(frame.modeled_size_bytes) - lat.transmission_ms(0)
        return rx_ms, {"network": [(Component.NETWORK_RX, rx_ms)]}

    def process(self, frame: ServerFrame) -> ClientFrameResult:
        raise NotImplementedError


class GameStreamSRClient(StreamingClient):
    """The paper's RoI-assisted hybrid client (Fig. 9)."""

    design = "gamestreamsr"

    def __init__(
        self,
        device: DeviceProfile,
        runner: SRRunner,
        modeled_roi_side: Optional[int] = None,
    ) -> None:
        """``modeled_roi_side`` pins the RoI side at the modeled geometry
        (the negotiated plan side, e.g. ~300 px on 720p); by default the
        eval-scale RoI area is extrapolated by the area ratio."""
        super().__init__(device)
        self.upscaler = RoIAssistedUpscaler(runner)
        self.modeled_roi_side = modeled_roi_side

    def _modeled_roi_pixels(self, frame: ServerFrame) -> int:
        if self.modeled_roi_side is not None:
            return self.modeled_roi_side**2
        return frame.geometry.modeled_roi_pixels(frame.roi)

    def process(self, frame: ServerFrame) -> ClientFrameResult:
        if frame.roi is None:
            raise ValueError("GameStreamSRClient requires server-side RoI data")
        geometry = frame.geometry
        decoded, decode_ms = self._decode(frame, hardware=True)
        result = self.upscaler.upscale(decoded.rgb, frame.roi)

        roi_px = self._modeled_roi_pixels(frame)
        non_roi_px = geometry.modeled_lr_pixels - roi_px
        npu_ms = lat.npu_sr_latency_ms(roi_px, self.device)
        gpu_ms = lat.gpu_bilinear_ms(non_roi_px, self.device)
        merge_ms = lat.merge_ms(geometry.modeled_hr_pixels, self.device)
        # NPU and GPU run in parallel (Sec. IV-C); the RoI merge is a
        # composition copy and lands in the display stage.
        upscale_ms = max(npu_ms, gpu_ms)
        rx_ms, energy = self._network_stage(frame)
        energy["decode"] = [(Component.HW_DECODER, decode_ms)]
        energy["upscale"] = [
            (Component.NPU, npu_ms),
            (Component.GPU, gpu_ms + merge_ms),
        ]
        return ClientFrameResult(
            index=frame.index,
            frame_type=frame.encoded.frame_type,
            hr_frame=result.frame,
            client_timings_ms={
                "decode": decode_ms,
                "upscale": upscale_ms,
                "display": lat.display_present_ms(self.device) + merge_ms,
            },
            energy_stages=energy,
        )


class NemoClient(StreamingClient):
    """NEMO (Yeo et al. 2020) ported to game streaming — the paper's SOTA.

    Reference frames get full-frame DNN SR; non-reference frames reuse the
    cached upscaled reference: HR prediction = warp(HR reference, 2x-scaled
    motion vectors), plus the bilinearly upscaled decoded residual. Codec
    modifications force the software decoder (Sec. V-A).
    """

    design = "nemo"

    def __init__(self, device: DeviceProfile, runner: SRRunner, sr_tile: int = 72) -> None:
        super().__init__(device)
        self.runner = runner
        self.sr_tile = sr_tile
        self._hr_reference: Optional[np.ndarray] = None

    def reset(self) -> None:
        super().reset()
        self._hr_reference = None

    def process(self, frame: ServerFrame) -> ClientFrameResult:
        geometry = frame.geometry
        decoded, decode_ms = self._decode(frame, hardware=False)
        scale = geometry.scale
        rx_ms, energy = self._network_stage(frame)

        if decoded.is_reference or self._hr_reference is None:
            hr = self.runner.upscale_tiled(decoded.rgb, tile=self.sr_tile)
            self._hr_reference = hr
            npu_ms = lat.npu_sr_latency_ms(geometry.modeled_lr_pixels, self.device)
            upscale_ms = npu_ms
            energy["decode"] = [(Component.CPU, decode_ms)]
            energy["upscale"] = [(Component.NPU, npu_ms)]
        else:
            from ..baselines.nemo import reconstruct_nonreference

            hr = reconstruct_nonreference(
                self._hr_reference,
                decoded.motion_vectors,
                decoded.residual_rgb,
                scale=scale,
                block=frame.encoded.block,
            )
            self._hr_reference = hr

            cpu_up_ms = lat.cpu_bilinear_ms(geometry.modeled_lr_pixels, self.device)
            warp_ms = lat.cpu_warp_ms(geometry.modeled_hr_pixels, self.device)
            upscale_ms = cpu_up_ms + warp_ms
            # Energy accounting note (calibration.py): the warp runs inside
            # NEMO's modified decoder, so its energy lands in "decode".
            energy["decode"] = [
                (Component.CPU, decode_ms),
                (Component.RECON_MEMORY, warp_ms),
            ]
            energy["upscale"] = [(Component.CPU, cpu_up_ms)]

        return ClientFrameResult(
            index=frame.index,
            frame_type=frame.encoded.frame_type,
            hr_frame=hr,
            client_timings_ms={
                "decode": decode_ms,
                "upscale": upscale_ms,
                "display": lat.display_present_ms(self.device),
            },
            energy_stages=energy,
        )


class BilinearClient(StreamingClient):
    """Hardware decode + GPU bilinear upscale of the whole frame."""

    design = "bilinear"

    def process(self, frame: ServerFrame) -> ClientFrameResult:
        geometry = frame.geometry
        decoded, decode_ms = self._decode(frame, hardware=True)
        s = geometry.scale
        hr = bilinear(
            decoded.rgb, geometry.eval_lr_height * s, geometry.eval_lr_width * s
        )
        gpu_ms = lat.gpu_bilinear_ms(geometry.modeled_lr_pixels, self.device)
        rx_ms, energy = self._network_stage(frame)
        energy["decode"] = [(Component.HW_DECODER, decode_ms)]
        energy["upscale"] = [(Component.GPU, gpu_ms)]
        return ClientFrameResult(
            index=frame.index,
            frame_type=frame.encoded.frame_type,
            hr_frame=hr,
            client_timings_ms={
                "decode": decode_ms,
                "upscale": gpu_ms,
                "display": lat.display_present_ms(self.device),
            },
            energy_stages=energy,
        )


class FullFrameSRClient(StreamingClient):
    """DNN SR on every frame — the quality ceiling, far from real time."""

    design = "fullframe_sr"

    def __init__(self, device: DeviceProfile, runner: SRRunner, sr_tile: int = 72) -> None:
        super().__init__(device)
        self.runner = runner
        self.sr_tile = sr_tile

    def process(self, frame: ServerFrame) -> ClientFrameResult:
        geometry = frame.geometry
        decoded, decode_ms = self._decode(frame, hardware=True)
        hr = self.runner.upscale_tiled(decoded.rgb, tile=self.sr_tile)
        npu_ms = lat.npu_sr_latency_ms(geometry.modeled_lr_pixels, self.device)
        rx_ms, energy = self._network_stage(frame)
        energy["decode"] = [(Component.HW_DECODER, decode_ms)]
        energy["upscale"] = [(Component.NPU, npu_ms)]
        return ClientFrameResult(
            index=frame.index,
            frame_type=frame.encoded.frame_type,
            hr_frame=hr,
            client_timings_ms={
                "decode": decode_ms,
                "upscale": npu_ms,
                "display": lat.display_present_ms(self.device),
            },
            energy_stages=energy,
        )


class SRIntegratedDecoderClient(StreamingClient):
    """Fig. 15 future-work prototype: RoI-SR only on reference frames.

    Non-reference frames bypass the NPU entirely: the (hypothetically
    augmented) hardware decoder reconstructs them in HR from the cached
    upscaled reference using 2x-scaled motion vectors, with RoI-guided
    residual interpolation — bicubic inside the RoI, bilinear outside.
    """

    design = "sr_integrated_decoder"

    #: Modeled latency/energy multiplier of the augmented decoder relative
    #: to the stock hardware decoder (extra HR reconstruction datapath).
    DECODER_AUGMENT_FACTOR = 1.6
    #: In-decoder HR reconstruction engine (warp + RoI-guided residual
    #: interpolation + merge) per HR pixel — a fixed-function datapath at
    #: composition-level power. Sized so the prototype's projected savings
    #: land near the paper's "as high as 50 %" (Sec. VI), not at the
    #: free-lunch number a zero-cost decoder would give.
    RECON_MS_PER_HR_PX = 5.4e-6

    def __init__(self, device: DeviceProfile, runner: SRRunner) -> None:
        super().__init__(device)
        self.upscaler = RoIAssistedUpscaler(runner)
        self._hr_reference: Optional[np.ndarray] = None

    def reset(self) -> None:
        super().reset()
        self._hr_reference = None

    def _roi_guided_residual(
        self, residual: np.ndarray, roi: RoIBox, h_hr: int, w_hr: int
    ) -> np.ndarray:
        upscaled = bilinear(residual, h_hr, w_hr)
        roi_hr = roi.scaled(h_hr // residual.shape[0])
        patch = roi.extract(residual)
        upscaled[roi_hr.y : roi_hr.y_end, roi_hr.x : roi_hr.x_end] = bicubic(
            patch, roi_hr.height, roi_hr.width
        )
        return upscaled

    def process(self, frame: ServerFrame) -> ClientFrameResult:
        if frame.roi is None:
            raise ValueError("SRIntegratedDecoderClient requires RoI data")
        geometry = frame.geometry
        decoded, hw_decode_ms = self._decode(frame, hardware=True)
        s = geometry.scale
        rx_ms, energy = self._network_stage(frame)

        if decoded.is_reference or self._hr_reference is None:
            result = self.upscaler.upscale(decoded.rgb, frame.roi)
            hr = result.frame
            roi_px = geometry.modeled_roi_pixels(frame.roi)
            npu_ms = lat.npu_sr_latency_ms(roi_px, self.device)
            gpu_ms = lat.gpu_bilinear_ms(geometry.modeled_lr_pixels - roi_px, self.device)
            upscale_ms = max(npu_ms, gpu_ms) + lat.merge_ms(
                geometry.modeled_hr_pixels, self.device
            )
            decode_ms = hw_decode_ms
            energy["decode"] = [(Component.HW_DECODER, decode_ms)]
            energy["upscale"] = [(Component.NPU, npu_ms), (Component.GPU, gpu_ms)]
        else:
            mv_hr = upscale_motion_vectors(decoded.motion_vectors, s)
            block_hr = frame.encoded.block * s
            h_hr = geometry.eval_lr_height * s
            w_hr = geometry.eval_lr_width * s
            prediction = np.stack(
                [
                    compensate(self._hr_reference[..., c], mv_hr, block_hr)
                    for c in range(3)
                ],
                axis=-1,
            )
            residual_hr = self._roi_guided_residual(
                decoded.residual_rgb, frame.roi, h_hr, w_hr
            )
            hr = np.clip(prediction + residual_hr, 0.0, 1.0)
            # Everything happens inside the augmented decoder hardware:
            # entropy/transform decode plus the HR reconstruction engine.
            recon_ms = self.RECON_MS_PER_HR_PX * geometry.modeled_hr_pixels
            decode_ms = hw_decode_ms * self.DECODER_AUGMENT_FACTOR + recon_ms
            upscale_ms = 0.0
            energy["decode"] = [
                (Component.HW_DECODER, hw_decode_ms * self.DECODER_AUGMENT_FACTOR),
                (Component.COMPOSITION, recon_ms),
            ]
            energy["upscale"] = []
        self._hr_reference = hr

        return ClientFrameResult(
            index=frame.index,
            frame_type=frame.encoded.frame_type,
            hr_frame=hr,
            client_timings_ms={
                "decode": decode_ms,
                "upscale": upscale_ms,
                "display": lat.display_present_ms(self.device),
            },
            energy_stages=energy,
        )
