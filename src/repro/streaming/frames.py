"""Frame-level datatypes flowing through the streaming pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..codec.encoder import EncodedFrame
from ..core.roi_search import RoIBox
from .pipeline import FrameTrace

__all__ = [
    "StreamGeometry",
    "ServerFrame",
    "ClientFrameResult",
    "ROI_METADATA_BYTES",
    "BYTE_SCALE_EXPONENT",
]

#: Bytes added per frame to carry the RoI coordinates (x, y, w, h as u32).
ROI_METADATA_BYTES = 16

#: Rate-vs-resolution exponent for extrapolating compressed frame sizes.
BYTE_SCALE_EXPONENT = 0.75


@dataclass(frozen=True)
class StreamGeometry:
    """Evaluation-scale vs modeled-scale resolutions.

    Quality experiments run real pixels at a reduced ``eval`` geometry
    (pure-numpy inference cost); the latency/energy models are evaluated
    at the paper's ``modeled`` geometry (720p -> 1440p). Byte counts
    measured at eval scale are extrapolated by the area ratio.
    """

    eval_lr_height: int = 128
    eval_lr_width: int = 224
    modeled_lr_height: int = 720
    modeled_lr_width: int = 1280
    scale: int = 2
    #: How the server produces the LR stream: ``"downsample"`` renders at
    #: HR and area-downsamples (anti-aliased, like a game with MSAA/TAA —
    #: and the HR render doubles as the quality ground truth);
    #: ``"native"`` renders directly at LR (aliased point sampling).
    lr_source: str = "downsample"

    def __post_init__(self) -> None:
        for name in ("eval_lr_height", "eval_lr_width", "modeled_lr_height", "modeled_lr_width"):
            if getattr(self, name) < 2:
                raise ValueError(f"{name} must be >= 2")
        if self.scale < 1:
            raise ValueError(f"scale must be >= 1, got {self.scale}")
        if self.lr_source not in ("downsample", "native"):
            raise ValueError(
                f"lr_source must be 'downsample' or 'native', got {self.lr_source!r}"
            )

    @property
    def eval_lr_pixels(self) -> int:
        return self.eval_lr_height * self.eval_lr_width

    @property
    def modeled_lr_pixels(self) -> int:
        return self.modeled_lr_height * self.modeled_lr_width

    @property
    def modeled_hr_pixels(self) -> int:
        return self.modeled_lr_pixels * self.scale**2

    @property
    def pixel_scale(self) -> float:
        """Linear area factor from eval geometry to modeled geometry."""
        return self.modeled_lr_pixels / self.eval_lr_pixels

    @property
    def byte_scale(self) -> float:
        """Extrapolation factor from eval-scale bytes to modeled-scale bytes.

        Compressed video bitrate grows sublinearly with pixel count
        (detail does not scale with resolution); the standard
        rate-vs-resolution exponent of ~0.75 is used here.
        """
        return self.pixel_scale**BYTE_SCALE_EXPONENT

    def modeled_roi_pixels(self, roi: Optional[RoIBox]) -> int:
        """RoI area extrapolated to the modeled LR geometry (linear)."""
        if roi is None:
            return 0
        return int(round(roi.area * self.pixel_scale))


@dataclass(frozen=True)
class ServerFrame:
    """What the server emits per frame: payload + RoI + stage timings."""

    index: int
    encoded: EncodedFrame
    roi: Optional[RoIBox]
    geometry: StreamGeometry
    #: Server MTP-stage latencies — a materialized view of ``trace``
    #: (``trace.timings_ms(SERVER_STAGES)``); kept as a field so direct
    #: constructors and pickled artifacts stay valid.
    server_timings_ms: Dict[str, float]
    #: Eval-scale encoded payload extrapolated to modeled-scale bytes.
    modeled_size_bytes: int
    #: Structured per-stage trace recorded by the server pipeline.
    trace: Optional[FrameTrace] = None

    @property
    def is_reference(self) -> bool:
        return self.encoded.is_reference


@dataclass(frozen=True)
class ClientFrameResult:
    """What a client produces per frame: pixels + timings + energy inputs."""

    index: int
    frame_type: str
    hr_frame: np.ndarray
    #: Client stage latencies at modeled scale: decode, upscale, display.
    #: A materialized view of ``trace`` (``trace.timings_ms(CLIENT_STAGES)``).
    client_timings_ms: Dict[str, float]
    #: (component, ms) pairs for energy integration, by Fig. 12 category.
    #: A materialized view of ``trace`` (``trace.energy_stages()``).
    energy_stages: Dict[str, list] = field(default_factory=dict)
    #: Structured per-stage trace recorded by the client pipeline.
    trace: Optional[FrameTrace] = None

    @property
    def is_reference(self) -> bool:
        return self.frame_type == "I"

    @property
    def upscale_ms(self) -> float:
        return self.client_timings_ms["upscale"]
