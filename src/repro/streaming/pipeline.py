"""Staged pipeline architecture: stages, per-frame traces, network split.

The paper's end-to-end system (Fig. 6 / Fig. 9) is a pipeline — server
render -> RoI detect -> encode -> transmit -> client decode -> parallel
NPU/GPU upscale -> merge -> display. This module gives that pipeline an
explicit runtime representation:

* :class:`Stage` — a context manager recording one named span of work.
* :class:`StageSpan` — what a stage leaves behind: the *modeled* latency
  (calibrated platform model, ms), the *real* wall-clock cost of the
  simulation work (ms), zero or more energy attributions, and free-form
  payload metadata (byte counts, RoI geometry, retransmissions, ...).
* :class:`FrameTrace` — the ordered span list for one frame, with views
  that derive the legacy ``server_timings_ms`` / ``client_timings_ms`` /
  ``energy_stages`` dictionaries, so MTP and energy aggregation consume
  the trace instead of ad-hoc dicts.

Network ownership contract (the one place the downlink split is defined)
-----------------------------------------------------------------------
The **server** trace owns the MTP ``network`` stage and charges the full
downlink time — propagation *plus* serialization — because a frame is not
displayable before its last byte lands (Fig. 1a).  The **client** trace
records a ``network`` span too, but it is excluded from MTP (``mtp=False``)
and exists only to attribute the radio-active receive window
(serialization time) to :data:`Component.NETWORK_RX` energy, exactly once.
:func:`split_transmission` computes both sides with the exact floating
point expressions the pre-refactor code used (``transmission_ms(n)`` and
``transmission_ms(n) - transmission_ms(0)``), keeping the refactor
bit-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..platform import calibration as cal
from ..platform import latency as lat
from ..platform.energy import Component

__all__ = [
    "ENERGY_CATEGORIES",
    "SERVER_STAGES",
    "CLIENT_STAGES",
    "EnergyAttribution",
    "StageSpan",
    "Stage",
    "FrameTrace",
    "TransmissionSplit",
    "split_transmission",
]

#: Fig. 12 energy categories a span may attribute components to.
ENERGY_CATEGORIES = ("network", "decode", "upscale")

#: Server-side MTP stages in pipeline order (Fig. 6 left half).
SERVER_STAGES = ("input", "game_logic", "render", "roi_detect", "encode", "network")

#: Client-side MTP stages in pipeline order (Fig. 9).
CLIENT_STAGES = ("decode", "upscale", "display")


@dataclass(frozen=True)
class EnergyAttribution:
    """One (component, active-ms) energy contribution of a stage.

    ``category`` is the Fig. 12 bucket the energy lands in; it defaults to
    the recording span's name but may differ (e.g. the RoI merge runs in
    the display stage yet its GPU energy belongs to ``upscale``, and
    NEMO's warp runs in upscaling yet is charged to ``decode`` — see the
    calibration notes).
    """

    component: Component
    ms: float
    category: Optional[str] = None

    def resolved_category(self, span_name: str) -> str:
        return self.category if self.category is not None else span_name


@dataclass
class StageSpan:
    """The record one pipeline stage leaves in a :class:`FrameTrace`."""

    name: str
    #: Latency of the stage under the calibrated platform model (ms).
    modeled_ms: float = 0.0
    #: Real wall-clock time the simulation spent computing the stage (ms).
    wall_ms: float = 0.0
    #: Whether the span contributes to the MTP latency sum. Spans that
    #: exist purely for energy/observability (the client's RX span) are
    #: recorded with ``mtp=False``.
    mtp: bool = True
    energy: List[EnergyAttribution] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def add_energy(
        self, component: Component, ms: float, category: Optional[str] = None
    ) -> None:
        if ms < 0:
            raise ValueError(f"energy stage time must be >= 0, got {ms}")
        if category is not None and category not in ENERGY_CATEGORIES:
            raise ValueError(f"unknown energy category {category!r}")
        self.energy.append(EnergyAttribution(component, ms, category))

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "modeled_ms": self.modeled_ms,
            "wall_ms": self.wall_ms,
            "mtp": self.mtp,
            "energy": [
                {
                    "component": attr.component.value,
                    "ms": attr.ms,
                    "category": attr.resolved_category(self.name),
                }
                for attr in self.energy
            ],
        }
        if self.metadata:
            out["metadata"] = dict(self.metadata)
        return out


class Stage:
    """Context manager recording one named span into a :class:`FrameTrace`.

    Usage::

        with trace.stage("decode") as st:
            decoded = decoder.decode_frame(frame.encoded)   # real work
            st.modeled_ms = lat.decode_ms(px, device)        # modeled cost
            st.add_energy(Component.HW_DECODER, st.modeled_ms)
            st.meta(payload_bytes=frame.modeled_size_bytes)

    Wall-clock time between ``__enter__`` and ``__exit__`` is measured
    automatically; the span is appended to the trace on exit (also on
    exception, so partial traces remain inspectable).
    """

    def __init__(self, trace: "FrameTrace", name: str, mtp: bool = True) -> None:
        self._trace = trace
        self._span = StageSpan(name=name, mtp=mtp)
        self._t0 = 0.0

    @property
    def modeled_ms(self) -> float:
        return self._span.modeled_ms

    @modeled_ms.setter
    def modeled_ms(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"modeled_ms must be >= 0, got {value}")
        self._span.modeled_ms = float(value)

    def add_energy(
        self, component: Component, ms: float, category: Optional[str] = None
    ) -> None:
        self._span.add_energy(component, ms, category)

    def meta(self, **metadata: Any) -> None:
        self._span.metadata.update(metadata)

    def __enter__(self) -> "Stage":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.wall_ms = (time.perf_counter() - self._t0) * 1e3
        self._trace.spans.append(self._span)
        return None


class FrameTrace:
    """Ordered per-frame span record spanning server and client stages."""

    def __init__(
        self,
        index: int,
        frame_type: Optional[str] = None,
        spans: Optional[List[StageSpan]] = None,
    ) -> None:
        self.index = index
        self.frame_type = frame_type
        self.spans: List[StageSpan] = list(spans) if spans else []

    # -- recording -------------------------------------------------------
    def stage(self, name: str, mtp: bool = True) -> Stage:
        """Open a recording context for one named stage."""
        return Stage(self, name, mtp=mtp)

    def add_span(
        self,
        name: str,
        modeled_ms: float,
        energy: Sequence[Tuple[Component, float]] = (),
        mtp: bool = True,
        wall_ms: float = 0.0,
        **metadata: Any,
    ) -> StageSpan:
        """Record a span without the context-manager protocol."""
        span = StageSpan(
            name=name, modeled_ms=modeled_ms, wall_ms=wall_ms, mtp=mtp,
            metadata=dict(metadata),
        )
        for component, ms in energy:
            span.add_energy(component, ms)
        self.spans.append(span)
        return span

    def span(self, name: str) -> StageSpan:
        """The first recorded span named ``name`` (raises ``KeyError``)."""
        for span in self.spans:
            if span.name == name:
                return span
        raise KeyError(f"no span named {name!r} in trace of frame {self.index}")

    def has_span(self, name: str) -> bool:
        return any(span.name == name for span in self.spans)

    def amend_span(
        self,
        name: str,
        modeled_ms: Optional[float] = None,
        energy: Optional[Sequence[Tuple[Component, float]]] = None,
        **metadata: Any,
    ) -> StageSpan:
        """Rewrite an already-recorded span in place.

        This is how *augmenting* stages express themselves: the
        SR-integrated decoder replaces the stock hardware-decode span with
        its augmented-datapath cost, and the lossy-link transport replaces
        the server's flat network span with the measured transmit outcome.
        The span keeps its position and wall-clock time; ``energy`` (when
        given) replaces the attribution list; ``metadata`` is merged.
        """
        span = self.span(name)
        if modeled_ms is not None:
            if modeled_ms < 0:
                raise ValueError(f"modeled_ms must be >= 0, got {modeled_ms}")
            span.modeled_ms = float(modeled_ms)
        if energy is not None:
            span.energy = []
            for component, ms in energy:
                span.add_energy(component, ms)
        span.metadata.update(metadata)
        return span

    def add_energy(
        self, name: str, component: Component, ms: float, category: Optional[str] = None
    ) -> None:
        """Append one energy attribution to an existing span."""
        self.span(name).add_energy(component, ms, category)

    # -- views -----------------------------------------------------------
    def timings_ms(self, stages: Sequence[str]) -> Dict[str, float]:
        """MTP-stage latency dict over ``stages`` (absent stages are 0).

        Only spans recorded with ``mtp=True`` contribute; duplicate names
        sum. This is the view that replaces the hand-assembled
        ``server_timings_ms`` / ``client_timings_ms`` dicts.
        """
        out: Dict[str, float] = {name: 0.0 for name in stages}
        for span in self.spans:
            if span.mtp and span.name in out:
                out[span.name] += span.modeled_ms
        return out

    def stage_ms(self, name: str) -> float:
        """Total modeled ms of MTP spans named ``name`` (0 if absent)."""
        return sum(s.modeled_ms for s in self.spans if s.mtp and s.name == name)

    @property
    def total_modeled_ms(self) -> float:
        return sum(span.modeled_ms for span in self.spans if span.mtp)

    @property
    def total_wall_ms(self) -> float:
        return sum(span.wall_ms for span in self.spans)

    def energy_stages(self) -> Dict[str, List[Tuple[Component, float]]]:
        """Energy attributions grouped by Fig. 12 category.

        Every span *named* after a category contributes its key even when
        it carries no attributions (an idle upscale stage must still show
        up as ``"upscale": []``), and attributions may redirect themselves
        to another category (merge -> upscale, NEMO warp -> decode).
        """
        out: Dict[str, List[Tuple[Component, float]]] = {}
        for span in self.spans:
            if span.name in ENERGY_CATEGORIES:
                out.setdefault(span.name, [])
            for attr in span.energy:
                out.setdefault(attr.resolved_category(span.name), []).append(
                    (attr.component, attr.ms)
                )
        return out

    # -- composition / export -------------------------------------------
    def extend(self, other: "FrameTrace") -> "FrameTrace":
        """Concatenate another trace's spans (server + client -> frame).

        Spans keep their order and identity; the merged trace adopts the
        more specific ``frame_type`` of the two.
        """
        if other.index != self.index:
            raise ValueError(
                f"cannot merge traces of frames {self.index} and {other.index}"
            )
        merged = FrameTrace(
            index=self.index,
            frame_type=other.frame_type or self.frame_type,
            spans=self.spans + other.spans,
        )
        return merged

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "frame_type": self.frame_type,
            "total_modeled_ms": self.total_modeled_ms,
            "spans": [span.to_dict() for span in self.spans],
        }


# ----------------------------------------------------------------------
# Downlink transmission split (the satellite "one place" for the split)


@dataclass(frozen=True)
class TransmissionSplit:
    """Propagation-vs-serialization split of one downlink transfer.

    * ``total_ms`` — what the **server** charges to the MTP ``network``
      stage (the frame is displayable only after the last byte lands).
    * ``serialization_ms`` — what the **client** charges to
      ``NETWORK_RX`` energy (the radio is active only while bytes clock
      in); excluded from MTP so the downlink is never double-counted.
    * ``propagation_ms`` — the byte-independent air/queueing latency,
      owned by the server side alone.
    """

    total_ms: float
    propagation_ms: float
    serialization_ms: float


def split_transmission(
    size_bytes: int, bandwidth_mbps: float = cal.NETWORK_BANDWIDTH_MBPS
) -> TransmissionSplit:
    """Split one frame's downlink time into propagation + serialization.

    Computed with the exact floating-point expressions the historical
    server (``transmission_ms(n)``) and client
    (``transmission_ms(n) - transmission_ms(0)``) code paths used, so
    both sides of the refactor stay bit-identical with the seed.
    """
    total = lat.transmission_ms(size_bytes, bandwidth_mbps)
    propagation = lat.transmission_ms(0, bandwidth_mbps)
    return TransmissionSplit(
        total_ms=total,
        propagation_ms=propagation,
        serialization_ms=total - propagation,
    )
