"""Motion-to-photon latency accounting (paper Fig. 10b/10c).

MTP is the delay from the player's input to the resulting frame lighting
up the client display. Stages follow the end-to-end pipeline of Fig. 1a:
input uplink -> game logic -> render (+ RoI detect) -> encode -> network
downlink -> decode -> upscale -> display. Cloud gaming tolerates up to
150 ms, fast-paced genres 100 ms (Sec. V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from ..platform import calibration as cal
from .frames import ClientFrameResult, ServerFrame
from .pipeline import FrameTrace

__all__ = ["MTP_STAGES", "MTPBreakdown", "mtp_from_frame", "mtp_from_trace"]

#: Pipeline stages in order, matching Fig. 10c's x-axis.
MTP_STAGES = (
    "input",
    "game_logic",
    "render",
    "roi_detect",
    "encode",
    "network",
    "decode",
    "upscale",
    "display",
)


@dataclass(frozen=True)
class MTPBreakdown:
    """Per-stage MTP latencies in milliseconds."""

    stages_ms: Dict[str, float]

    def __post_init__(self) -> None:
        unknown = set(self.stages_ms) - set(MTP_STAGES)
        if unknown:
            raise ValueError(f"unknown MTP stages: {sorted(unknown)}")

    @property
    def total_ms(self) -> float:
        return sum(self.stages_ms.values())

    def conformant(self, budget_ms: float = cal.MTP_BUDGET_MS) -> bool:
        return self.total_ms <= budget_ms

    def stage(self, name: str) -> float:
        return self.stages_ms.get(name, 0.0)

    @staticmethod
    def mean(items: Iterable["MTPBreakdown"]) -> "MTPBreakdown":
        items = list(items)
        if not items:
            raise ValueError("cannot average an empty MTP list")
        acc: Dict[str, float] = {stage: 0.0 for stage in MTP_STAGES}
        for item in items:
            for stage in MTP_STAGES:
                acc[stage] += item.stage(stage)
        return MTPBreakdown({s: v / len(items) for s, v in acc.items()})


def mtp_from_frame(server: ServerFrame, client: ClientFrameResult) -> MTPBreakdown:
    """Assemble the end-to-end MTP breakdown for one frame.

    When both halves carry a structured trace (the staged pipeline always
    attaches one) the breakdown is computed from the merged trace; the
    timing dicts are views of the same spans, so either path yields the
    same numbers — the dict fallback keeps hand-built frames working.
    """
    if server.trace is not None and client.trace is not None:
        return mtp_from_trace(server.trace.extend(client.trace))
    stages = dict(server.server_timings_ms)
    stages.update(client.client_timings_ms)
    return MTPBreakdown({s: stages.get(s, 0.0) for s in MTP_STAGES})


def mtp_from_trace(trace: FrameTrace) -> MTPBreakdown:
    """MTP breakdown from a merged per-frame trace.

    Only spans recorded with ``mtp=True`` contribute — the client's
    energy-only network-receive span is excluded, so the downlink is
    counted exactly once (on the server side, which owns it).
    """
    return MTPBreakdown({s: trace.stage_ms(s) for s in MTP_STAGES})
