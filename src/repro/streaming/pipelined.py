"""Software-pipelined session executor: server and client overlap frames.

:func:`run_session` marches every frame through render -> RoI -> encode ->
transport -> decode -> SR strictly serially, so whole-pipeline FPS is
bounded by the *sum* of the server and client stage times. A real
streaming rig overlaps them: while the client upscales frame ``n`` the
server is already encoding frame ``n+1`` (the paper's 16.66 ms deadline
assumes exactly this). :func:`run_session_pipelined` reproduces that
overlap in software: the server stages run in a worker *producer*
process, encoded :class:`~repro.streaming.frames.ServerFrame` payloads
cross a bounded :class:`~repro.streaming.ring.ShmRing` shared-memory
ring, and the client stages consume them **in frame order** in the
parent process.

Dependency rules the executor enforces
--------------------------------------
* **GOP structure** — I-frames reset decoder state and P-frames depend on
  the previous reconstruction, on both sides of the wire. The encoder is
  sequential inside the single producer process and the decoder is
  sequential inside the consumer, which consumes strictly in frame
  order; no frame is ever decoded before its predecessor.
* **Bounded run-ahead** — the ring holds at most ``depth`` published
  frames, so the server runs at most ``depth`` frames ahead of the
  client (backpressure blocks the producer's push when the client
  falls behind).
* **Adaptive feedback lag** — the AIMD RoI controller observes frame
  ``n``'s measured upscale span and resizes the window for frame
  ``n+1``. That control edge crosses the process boundary through a
  feedback pipe: the producer may not produce frame ``n+1`` until the
  consumer has observed frame ``n`` and sent the window side. With
  ``adaptive`` enabled the pipeline therefore degenerates to lock-step
  (the documented one-frame feedback lag collapses the overlap); the
  paper's static sizing keeps the full ``depth``-deep overlap.

Determinism
-----------
Everything stochastic or stateful on the client side of the wire — the
:class:`~repro.network.NetworkLink` RNG, decoder state, the adaptive
controller, quality scoring — runs in the parent, in frame order,
through the *same* :func:`repro.streaming.session._consume_frame` helper
the serial loop uses; the producer runs the *same* sequential
``server.next_frame``. Pipelined sessions are therefore byte-identical
to serial ones by construction (guarded by the cross-process determinism
suite). Wall-clock data (``wall_ms``, ``pipeline/*`` metrics) is the one
legitimate difference; :func:`repro.observability.canonicalize_session_trace`
strips it for comparisons.

Failure semantics
-----------------
A producer that *raises* ships the traceback back over the feedback pipe
and the parent re-raises. A producer that *dies* (OOM-kill, SIGKILL) is
detected by the consumer's liveness poll; the session returns a
truncated-but-valid :class:`~repro.streaming.session.SessionResult`
holding every fully-consumed frame, with ``pipeline/truncated`` set in
its metrics. Either way the ring is drained, closed, and unlinked.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import time
import traceback
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..network.link import NetworkLink
from ..observability import (
    MetricsRegistry,
    observe_pipeline_dequeue,
    observe_pipeline_producer,
    observe_pipeline_truncation,
)
from .abr import ABRController
from .adaptive import AdaptiveRoIController
from .client import StreamingClient
from .frames import ServerFrame
from .pipeline import CLIENT_STAGES, SERVER_STAGES, FrameTrace
from .ring import DEFAULT_SLOT_BYTES, RingClosed, ShmRing
from .server import GameStreamServer
from .session import (
    SessionResult,
    _abr_produce_knobs,
    _adaptive_eval_side,
    _apply_abr_client_knobs,
    _apply_server_knobs,
    _consume_frame,
    _resolve_scenario,
    _validate_abr_knobs,
    apply_client_knobs,
)

__all__ = [
    "PipelineSchedule",
    "modeled_pipeline_schedule",
    "run_session_pipelined",
]

#: A consumer wait above this marks the frame as producer-stalled (the
#: poll granularity of the ring is 0.1 ms; anything past 1 ms means the
#: frame genuinely was not ready).
_STALL_THRESHOLD_MS = 1.0

#: How long the parent waits for the producer to exit during shutdown
#: before escalating to terminate().
_JOIN_TIMEOUT_S = 10.0


# -- render prefetch pool (inside the producer) --------------------------
# render_lr is pure in the frame index (the world state is a function of
# index and fps), so renders can run ahead in a pool without changing the
# stream. Pool workers hold their own copy of the server object; module
# globals are the standard ProcessPoolExecutor initializer idiom.

_POOL_SERVER: Optional[GameStreamServer] = None


def _render_pool_init(server: GameStreamServer) -> None:
    global _POOL_SERVER
    _POOL_SERVER = server


def _render_frame(index: int):
    assert _POOL_SERVER is not None, "render pool used before initialization"
    return _POOL_SERVER.render_lr(index)


class _RenderPrefetcher:
    """Keeps up to ``ahead`` render_lr futures in flight inside the pool."""

    def __init__(self, server: GameStreamServer, workers: int, ahead: int) -> None:
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_render_pool_init,
            initargs=(server,),
        )
        self._ahead = ahead
        self._futures: Dict[int, Future] = {}
        self._next_submit = 0

    def _fill(self, upto_exclusive: int) -> None:
        while self._next_submit < upto_exclusive:
            self._futures[self._next_submit] = self._pool.submit(
                _render_frame, self._next_submit
            )
            self._next_submit += 1

    def get(self, index: int):
        """The render of frame ``index``; tops the pipeline back up."""
        self._fill(index + 1 + self._ahead)
        return self._futures.pop(index).result()

    def shutdown(self) -> None:
        for fut in self._futures.values():
            fut.cancel()
        # wait=True: a wait=False shutdown can leave a pool worker parked
        # on its call-queue pipe after the producer exits — an orphan that
        # holds inherited fds (e.g. the session's stdout) open forever.
        self._pool.shutdown(wait=True, cancel_futures=True)


def _producer_main(
    ring_name: str,
    capacity: int,
    slot_bytes: int,
    server: GameStreamServer,
    n_frames: int,
    feedback_enabled: bool,
    render_workers: int,
    conn,
) -> None:
    """Producer process: run the server stages and publish frames.

    Attaches to the ring by name, runs ``server.next_frame()``
    sequentially (encoder state is order-dependent), and pushes pickled
    frames. With ``feedback_enabled`` it blocks on the feedback pipe for
    the consumer-authorized knob set before producing each frame —
    either an adaptive RoI side (``("side", index, eval_side)``) or a
    full ABR decision (``("knobs", index, dict)`` actuated through the
    shared ``_apply_server_knobs``). A raised exception is reported
    over the pipe before exiting.
    """
    ring = ShmRing(capacity, slot_bytes, name=ring_name, create=False)
    prefetcher: Optional[_RenderPrefetcher] = None
    try:
        if render_workers > 1 and not feedback_enabled:
            prefetcher = _RenderPrefetcher(
                server, workers=render_workers - 1, ahead=capacity
            )
        for index in range(n_frames):
            if feedback_enabled:
                msg = conn.recv()
                if msg[0] == "stop":
                    return
                assert msg[0] in ("side", "knobs") and msg[1] == index, msg
                if msg[0] == "side":
                    eval_side = msg[2]
                    if server.detector is not None and eval_side is not None:
                        server.set_roi_side(eval_side)
                else:
                    _apply_server_knobs(server, msg[2])
            prerendered = prefetcher.get(index) if prefetcher is not None else None
            frame = server.next_frame(prerendered=prerendered)
            payload = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
            ring.push(payload)
        conn.send(("done", n_frames))
    except RingClosed:
        pass  # consumer shut down early (error on its side); just exit
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
        raise
    finally:
        if prefetcher is not None:
            prefetcher.shutdown()
        ring.close()
        conn.close()


def run_session_pipelined(
    server: GameStreamServer,
    client: StreamingClient,
    n_frames: int,
    evaluate_quality: bool = False,
    with_lpips: bool = False,
    lpips_stride: int = 1,
    hr_reference_fn: Optional[Callable[[int], np.ndarray]] = None,
    link: Optional[NetworkLink] = None,
    link_deadline_ms: float = float("inf"),
    adaptive: Optional[AdaptiveRoIController] = None,
    skip_dropped: bool = False,
    gop_reuse: bool = False,
    sr_backend=None,
    dispatch=None,
    scenario=None,
    abr: Optional[ABRController] = None,
    depth: int = 2,
    workers: int = 1,
    slot_bytes: int = DEFAULT_SLOT_BYTES,
) -> SessionResult:
    """Pipelined drop-in for :func:`repro.streaming.session.run_session`.

    Same signature and :class:`SessionResult` contract as the serial
    loop, plus:

    ``depth``
        Ring capacity = how many frames the server may run ahead of the
        client. ``depth=2`` already overlaps fully when the two halves
        are balanced; deeper rings only help absorb *bursty* stage times
        (e.g. the I-frame encode spike at each GOP head).
    ``workers``
        Total server-side processes. ``1`` = the producer alone;
        ``>1`` adds a render-prefetch pool of ``workers - 1`` processes
        inside the producer (pure-by-index renders run ahead; RoI/encode
        stay sequential). Ignored when ``adaptive`` or ``abr`` is set —
        feedback lock-step makes prefetch pointless.
    ``slot_bytes``
        Fixed per-frame payload capacity of the ring.

    ``evaluate_quality`` scores against the *parent's* copy of the
    server (``render_hr_reference`` is pure in the frame index), unless
    ``hr_reference_fn`` overrides the source as in the serial loop.
    """
    if n_frames < 1:
        raise ValueError(f"n_frames must be >= 1, got {n_frames}")
    if lpips_stride < 1:
        raise ValueError(f"lpips_stride must be >= 1, got {lpips_stride}")
    if depth < 1:
        raise ValueError(f"pipeline depth must be >= 1, got {depth}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    link = _resolve_scenario(scenario, link)
    _validate_abr_knobs(
        abr, adaptive=adaptive, gop_reuse=gop_reuse,
        sr_backend=sr_backend, dispatch=dispatch,
    )
    # Client stages run in the parent process, so the GOP cache (and any
    # zoo backend / dispatcher state) sees frames in order exactly as in
    # the serial loop.
    apply_client_knobs(
        client, gop_reuse=gop_reuse, sr_backend=sr_backend, dispatch=dispatch
    )
    feedback_enabled = adaptive is not None or abr is not None

    client.reset()
    metrics = MetricsRegistry()
    result = SessionResult(
        game_id=server.game.game_id,
        design=client.design,
        device_name=client.device.name,
        geometry=server.geometry,
        gop_size=server.gop_size,
        metrics=metrics,
    )
    hr_fn = hr_reference_fn if hr_reference_fn is not None else server.render_hr_reference

    ring = ShmRing(depth, slot_bytes)
    parent_conn, child_conn = mp.Pipe()
    producer = mp.Process(
        target=_producer_main,
        args=(
            ring.name,
            depth,
            slot_bytes,
            server,
            n_frames,
            feedback_enabled,
            workers,
            child_conn,
        ),
        name="repro-pipeline-producer",
        daemon=False,  # the render-prefetch pool needs child processes
    )
    producer.start()
    child_conn.close()
    producer_error: Optional[str] = None
    skip_state = {"reference_broken": False}
    period_ms = 1000.0 / server.fps
    try:
        for index in range(n_frames):
            if abr is not None:
                # The serial loop's per-frame ABR actuation, split across
                # the process boundary: client knobs (RoI pin, SR backend)
                # stay here, the server knob dict crosses via the feedback
                # pipe (authorizing the producer to produce this frame).
                knobs = _abr_produce_knobs(
                    abr, server.detector is not None, server.geometry
                )
                _apply_abr_client_knobs(client, abr)
                parent_conn.send(("knobs", index, knobs))
            elif adaptive is not None:
                # The serial loop's _apply_adaptive_side, split across the
                # process boundary: the client pin stays here, the server
                # side crosses via the feedback pipe (authorizing the
                # producer to produce this frame).
                if getattr(client, "modeled_roi_side", None) is not None:
                    client.modeled_roi_side = adaptive.side
                parent_conn.send(
                    ("side", index, _adaptive_eval_side(adaptive, server.geometry))
                )
            waited_from = time.perf_counter()
            stalled = not ring.ready(index)
            payload = ring.pop(index, alive=producer.is_alive)
            if payload is None:
                producer_error = _drain_error(parent_conn)
                if producer_error is None:
                    observe_pipeline_truncation(metrics, n_frames - index)
                break
            queue_wait_ms = (time.perf_counter() - waited_from) * 1e3
            observe_pipeline_dequeue(
                metrics,
                queue_wait_ms,
                ring.occupancy,
                stalled and queue_wait_ms > _STALL_THRESHOLD_MS,
            )
            server_frame: ServerFrame = pickle.loads(payload)
            result.records.append(
                _consume_frame(
                    server_frame,
                    client,
                    metrics,
                    link=link,
                    link_deadline_ms=link_deadline_ms,
                    adaptive=adaptive,
                    evaluate_quality=evaluate_quality,
                    with_lpips=with_lpips,
                    lpips_stride=lpips_stride,
                    hr_fn=hr_fn if evaluate_quality else None,
                    skip_dropped=skip_dropped,
                    skip_state=skip_state,
                    abr=abr,
                    at_ms=index * period_ms,
                )
            )
    finally:
        observe_pipeline_producer(
            metrics,
            ring.backpressure_waits,
            ring.backpressure_wait_ms,
            ring.produced,
        )
        ring.mark_closed()  # unblocks a backpressured push
        if feedback_enabled and producer.is_alive():
            try:
                parent_conn.send(("stop",))  # unblocks a feedback recv
            except (BrokenPipeError, OSError):
                pass
        producer.join(timeout=_JOIN_TIMEOUT_S)
        if producer.is_alive():
            producer.terminate()
            producer.join()
        if producer_error is None:
            producer_error = _drain_error(parent_conn)
        parent_conn.close()
        ring.close()
        ring.unlink()
    if producer_error is not None:
        raise RuntimeError(
            f"pipeline producer failed:\n{producer_error}"
        )
    return result


def _drain_error(conn) -> Optional[str]:
    """Pull any pending producer message; return its error text, if any."""
    try:
        while conn.poll():
            msg = conn.recv()
            if msg[0] == "error":
                return msg[1]
    except (EOFError, BrokenPipeError, OSError):
        pass
    return None


# -- modeled pipeline schedule -------------------------------------------


@dataclass(frozen=True)
class PipelineSchedule:
    """Modeled steady-state timing of a depth-bounded two-stage pipeline.

    Computed from per-frame *modeled* stage times (the calibrated
    platform model the paper's numbers come from), so it is deterministic
    and host-independent — the modeled counterpart of the executor's
    wall-clock measurements, and the headline metric of
    ``benchmarks/bench_pipeline.py``.
    """

    n_frames: int
    depth: int
    serial_total_ms: float
    pipelined_total_ms: float
    server_busy_ms: float
    client_busy_ms: float

    @property
    def serial_fps(self) -> float:
        return 1e3 * self.n_frames / self.serial_total_ms

    @property
    def pipelined_fps(self) -> float:
        return 1e3 * self.n_frames / self.pipelined_total_ms

    @property
    def speedup(self) -> float:
        return self.serial_total_ms / self.pipelined_total_ms


def modeled_pipeline_schedule(
    traces: List[FrameTrace], depth: int = 2
) -> PipelineSchedule:
    """Schedule a session's frames through the modeled two-stage pipeline.

    The server half of frame ``i`` (input/game/render/RoI/encode/network
    modeled spans) may start once frame ``i-1``'s server half is done
    *and* slot ``i % depth`` is free (the client has consumed frame
    ``i - depth``); the client half (decode/SR/display) starts when its
    frame is published and the client is idle:

    ``server_done[i] = max(server_done[i-1], client_done[i-depth]) + S_i``
    ``client_done[i] = max(client_done[i-1], server_done[i]) + C_i``

    The serial baseline is ``sum(S_i + C_i)``. Both executors' traces
    give the same schedule (modeled spans are identical by the
    determinism guarantee).
    """
    if not traces:
        raise ValueError("cannot schedule an empty session")
    if depth < 1:
        raise ValueError(f"pipeline depth must be >= 1, got {depth}")
    server_ms = [
        sum(s.modeled_ms for s in t.spans if s.name in SERVER_STAGES) for t in traces
    ]
    client_ms = [
        sum(s.modeled_ms for s in t.spans if s.name in CLIENT_STAGES) for t in traces
    ]
    server_done: List[float] = []
    client_done: List[float] = []
    for i in range(len(traces)):
        start = server_done[i - 1] if i >= 1 else 0.0
        if i >= depth:
            start = max(start, client_done[i - depth])
        server_done.append(start + server_ms[i])
        prev_client = client_done[i - 1] if i >= 1 else 0.0
        client_done.append(max(prev_client, server_done[i]) + client_ms[i])
    return PipelineSchedule(
        n_frames=len(traces),
        depth=depth,
        serial_total_ms=sum(server_ms) + sum(client_ms),
        pipelined_total_ms=client_done[-1],
        server_busy_ms=sum(server_ms),
        client_busy_ms=sum(client_ms),
    )
