"""Adaptive-bitrate control: co-adapt codec, RoI, and SR to the link.

The scenario layer (:mod:`repro.network.trace`) makes delivery
conditions time-varying; this module closes the loop. A single static
operating point — one codec quality, one GOP length, one RoI size, one
SR backend — either wastes quality on a good link or drops frames
through every fade. :class:`ABRController` runs a rung *ladder* of
co-designed operating points and moves along it from observed per-frame
network outcomes, the same AIMD discipline the RoI controller already
applies to upscale latency:

* **down** one rung immediately when a frame drops or its delivery
  latency eats the network budget (multiplicative-style backoff under
  congestion), requesting an IDR so the decoder resyncs at the new
  operating point without waiting out a broken GOP;
* **up** one rung after a sustained run of comfortable deliveries
  (additive probe).

Each rung co-adapts every server/client knob the previous PRs built:
codec ``quality`` and ``gop_size`` (shorter GOPs heal faster on lossy
rungs), an RoI-size cap multiplied onto the inherited
:class:`~repro.streaming.adaptive.AdaptiveRoIController` AIMD side, and
the SR backend (a lighter model buys client-side headroom when the
link forces small, low-quality frames). The session layer actuates the
rung's server knobs before each frame is produced — in the pipelined
executor the decision crosses the feedback pipe in lock-step, which is
what keeps serial and pipelined sessions byte-identical.

This is an extension beyond the paper (which assumes a fixed 80 Mbps
WiFi link); the default pipeline keeps the static configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..network.link import TransmitResult
from ..platform import calibration as cal
from ..sr.backends import SRBackend, build_backend
from .adaptive import AdaptiveRoIController

__all__ = [
    "ABRRung",
    "ABRController",
    "DEFAULT_LADDER",
    "build_abr",
]


@dataclass(frozen=True)
class ABRRung:
    """One co-designed operating point on the ladder.

    ``roi_scale`` caps the adaptive RoI side at ``roi_scale * max_side``;
    ``sr_backend`` names a zoo backend (``None`` leaves the client's
    executor untouched — used for designs without the zoo knob).
    """

    name: str
    quality: int
    gop_size: int
    roi_scale: float = 1.0
    sr_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if not 1 <= self.quality <= 100:
            raise ValueError(f"quality must be in [1, 100], got {self.quality}")
        if self.gop_size < 1:
            raise ValueError(f"gop_size must be >= 1, got {self.gop_size}")
        if not 0.0 < self.roi_scale <= 1.0:
            raise ValueError(f"roi_scale must be in (0, 1], got {self.roi_scale}")


#: Highest-fidelity first. The top rung is the paper's static operating
#: point at elevated quality; the floor rung is what survives a deep
#: cellular outage: small low-quality frames, short healing GOPs, a
#: shrunken RoI, and interpolation-only upscaling.
DEFAULT_LADDER: Tuple[ABRRung, ...] = (
    ABRRung("hq", quality=75, gop_size=60, roi_scale=1.0, sr_backend="edsr"),
    ABRRung("default", quality=60, gop_size=60, roi_scale=1.0, sr_backend="edsr"),
    ABRRung("balanced", quality=45, gop_size=30, roi_scale=0.9, sr_backend="quicksrnet"),
    ABRRung("low", quality=32, gop_size=15, roi_scale=0.75, sr_backend="quicksrnet"),
    ABRRung("floor", quality=18, gop_size=8, roi_scale=0.6, sr_backend="bilinear_gpu"),
)


class ABRController(AdaptiveRoIController):
    """Ladder-based ABR on top of the AIMD RoI controller.

    The inherited controller keeps adapting the RoI side to *client*
    compute (upscale spans); this subclass adds the *network* control
    dimension: a rung index moved by per-frame
    :class:`~repro.network.link.TransmitResult` outcomes, whose rung caps
    the RoI side and selects codec quality, GOP length, and SR backend.

    Parameters
    ----------
    initial_side / min_side / max_side:
        RoI planning bounds, as for the base controller.
    ladder:
        Operating points, highest fidelity first.
    backends:
        Optional ``{name: SRBackend}`` pool for the rungs' SR choices
        (see :func:`build_abr`); without it backend switching is off.
    net_budget_ms:
        Per-frame delivery budget; a transmit outcome past
        ``net_headroom * net_budget_ms`` (or an outright drop) is a
        congestion signal.
    upshift_after:
        Consecutive comfortable deliveries before probing one rung up.
    cooldown_frames:
        Frames to hold after a downshift before reacting again — covers
        the one-frame actuation lag so one burst does not slam the
        ladder to the floor.
    """

    def __init__(
        self,
        initial_side: int,
        min_side: int,
        max_side: int,
        ladder: Sequence[ABRRung] = DEFAULT_LADDER,
        backends: Optional[Dict[str, SRBackend]] = None,
        net_budget_ms: float = 100.0,
        net_headroom: float = 0.85,
        upshift_after: int = 12,
        cooldown_frames: int = 2,
        start_rung: int = 0,
        deadline_ms: float = cal.REALTIME_DEADLINE_MS,
    ) -> None:
        super().__init__(
            initial_side=initial_side,
            min_side=min_side,
            max_side=max_side,
            deadline_ms=deadline_ms,
        )
        if not ladder:
            raise ValueError("ladder needs at least one rung")
        names = [r.name for r in ladder]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rung names: {names}")
        if not 0 <= start_rung < len(ladder):
            raise ValueError(f"start_rung {start_rung} outside ladder")
        if net_budget_ms <= 0:
            raise ValueError(f"net_budget_ms must be positive, got {net_budget_ms}")
        if not 0.0 < net_headroom <= 1.0:
            raise ValueError(f"net_headroom must be in (0, 1], got {net_headroom}")
        if upshift_after < 1:
            raise ValueError(f"upshift_after must be >= 1, got {upshift_after}")
        if cooldown_frames < 0:
            raise ValueError(f"cooldown_frames must be >= 0, got {cooldown_frames}")
        missing = {
            r.sr_backend
            for r in ladder
            if r.sr_backend is not None
            and backends is not None
            and r.sr_backend not in backends
        }
        if missing:
            raise ValueError(f"ladder backends missing from pool: {sorted(missing)}")
        self.ladder: Tuple[ABRRung, ...] = tuple(ladder)
        self.backends = backends
        self.net_budget_ms = net_budget_ms
        self.net_headroom = net_headroom
        self.upshift_after = upshift_after
        self.cooldown_frames = cooldown_frames
        self._rung_index = start_rung
        self._good_streak = 0
        self._cooldown = 0
        self._pending_idr = False
        self._last_knobs: Optional[Dict[str, object]] = None
        #: Span metadata of the most recent :meth:`next_frame_knobs`.
        self.frame_meta: Dict[str, object] = {}
        self.n_downshifts = 0
        self.n_upshifts = 0
        self.n_idr_requests = 0

    # -- state ------------------------------------------------------------

    @property
    def rung(self) -> ABRRung:
        """The operating point for the next produced frame."""
        return self.ladder[self._rung_index]

    @property
    def rung_index(self) -> int:
        return self._rung_index

    def _rung_side_cap(self) -> int:
        """The rung's RoI cap, snapped onto the controller lattice."""
        return self._quantize_down(self.max_side * self.rung.roi_scale)

    @property
    def side(self) -> int:
        """AIMD side clamped by the current rung's RoI cap."""
        return min(self._side, self._rung_side_cap())

    # -- network observation ----------------------------------------------

    def observe_network(
        self, outcome: TransmitResult, size_bytes: int, at_ms: float = 0.0
    ) -> None:
        """Feed one frame's transmit outcome; may move the rung.

        Ladder moves take effect on the *next* produced frame (the
        session actuates :meth:`next_frame_knobs` before production).
        """
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {size_bytes}")
        congested = (
            outcome.dropped
            or outcome.latency_ms > self.net_headroom * self.net_budget_ms
        )
        if self._cooldown > 0:
            self._cooldown -= 1
            if congested:
                self._good_streak = 0
            return
        if congested:
            self._good_streak = 0
            if self._rung_index < len(self.ladder) - 1:
                self._rung_index += 1
                self.n_downshifts += 1
                self._request_idr()
            self._cooldown = self.cooldown_frames
        else:
            self._good_streak += 1
            if self._good_streak >= self.upshift_after and self._rung_index > 0:
                self._rung_index -= 1
                self.n_upshifts += 1
                self._good_streak = 0

    def _request_idr(self) -> None:
        self._pending_idr = True
        self.n_idr_requests += 1

    # -- actuation ---------------------------------------------------------

    def next_frame_knobs(self, eval_roi_side: Optional[int]) -> Dict[str, object]:
        """Server-side knob set for the next produced frame.

        ``eval_roi_side`` is the controller side rescaled to the eval
        geometry by the session layer (``None`` for servers without RoI
        detection). Consumes the pending IDR request. The returned dict
        crosses the pipelined feedback pipe verbatim.
        """
        rung = self.rung
        knobs: Dict[str, object] = {
            "eval_roi_side": eval_roi_side,
            "quality": rung.quality,
            "gop_size": rung.gop_size,
            "force_idr": self._pending_idr,
        }
        self._pending_idr = False
        switched = (
            self._last_knobs is not None
            and self._last_knobs.get("rung") != rung.name
        )
        self._last_knobs = {"rung": rung.name, **knobs}
        self.frame_meta = {
            "rung": rung.name,
            "rung_index": self._rung_index,
            "quality": rung.quality,
            "gop_size": rung.gop_size,
            "roi_side": self.side,
            "sr_backend": rung.sr_backend,
            "force_idr": bool(knobs["force_idr"]),
            "switched": switched,
        }
        return knobs

    def client_backend(self) -> Optional[SRBackend]:
        """The rung's SR backend object, when a pool was provided."""
        if self.backends is None or self.rung.sr_backend is None:
            return None
        return self.backends[self.rung.sr_backend]


def build_abr(
    initial_side: int,
    min_side: int,
    max_side: int,
    ladder: Sequence[ABRRung] = DEFAULT_LADDER,
    runner=None,
    scale: int = 2,
    profile: str = "experiment",
    **kwargs,
) -> ABRController:
    """An :class:`ABRController` with its rungs' backend pool materialized.

    ``runner`` is reused for the EDSR rungs (so the top rung reproduces
    the session's default executor exactly); other neural rungs
    train-or-load their zoo weights via ``profile``. With ``runner=None``
    backend switching is disabled and the ladder only drives codec/RoI.
    """
    backends: Optional[Dict[str, SRBackend]] = None
    if runner is not None:
        backends = {}
        for rung in ladder:
            if rung.sr_backend is not None and rung.sr_backend not in backends:
                backends[rung.sr_backend] = build_backend(
                    rung.sr_backend,
                    scale=scale,
                    profile=profile,
                    runner=runner if rung.sr_backend == "edsr" else None,
                )
    return ABRController(
        initial_side=initial_side,
        min_side=min_side,
        max_side=max_side,
        ladder=ladder,
        backends=backends,
        **kwargs,
    )
