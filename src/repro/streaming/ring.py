"""Single-producer/single-consumer shared-memory ring of frame payloads.

The pipelined session executor (:mod:`repro.streaming.pipelined`) moves
encoded :class:`~repro.streaming.frames.ServerFrame` payloads from the
server worker process to the client consumer through this ring: a fixed
number of fixed-size slots in one ``multiprocessing.shared_memory``
segment, coordinated by a lock-free-style index protocol with explicit
per-slot seqlocks. No ``multiprocessing.Lock`` is ever taken on the data
path — publication and consumption are ordered writes of 64-bit counters.

Protocol
--------
Frame ``n`` always lands in slot ``n % capacity``; its *write epoch* is
``w = n // capacity``. The producer:

1. waits (backpressure) while ``produced - consumed >= capacity``;
2. marks the slot's seqlock *odd* (``2*w + 1``: write in progress);
3. copies the payload bytes + length into the slot;
4. publishes by setting the seqlock *even* (``2*w + 2``) and bumping the
   global ``produced`` counter.

The consumer spins (with a sleep backoff) until the slot's seqlock shows
the even epoch value it expects for frame ``n``, copies the payload out,
re-validates the seqlock (a violation means the protocol was broken —
the bounded ring makes overwrites impossible, so this is an assertion,
not a recovery path), and bumps ``consumed``, freeing the slot for frame
``n + capacity``.

Because exactly one process writes each control word (producer:
``produced``/slot seqlocks/stall counters, consumer: ``consumed``/
``closed``) and 64-bit aligned stores are atomic on every platform
CPython runs on, no further synchronization is needed. Stall evidence
(backpressure wait counts and total wait time) is accumulated in the
control block where either side can read it for observability.
"""

from __future__ import annotations

import time
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, Optional

import numpy as np

__all__ = [
    "DEFAULT_SLOT_BYTES",
    "RingClosed",
    "RingOverflow",
    "ShmRing",
]

#: Default per-slot payload capacity (pickled ServerFrames at the eval
#: geometries used by the benches are well under this).
DEFAULT_SLOT_BYTES = 8 << 20

#: Sleep between polls of a not-yet-ready control word. Chosen so a
#: 60 FPS-scale pipeline loses <1% of a frame period to poll latency.
_POLL_S = 100e-6

#: Consumer polls between liveness checks of the producer process
#: (``is_alive`` costs a syscall; once per ~20 ms is plenty).
_ALIVE_CHECK_EVERY = 200

# Control-block field indices (one u64 each).
_F_PRODUCED = 0
_F_CONSUMED = 1
_F_BACKPRESSURE_WAITS = 2
_F_BACKPRESSURE_NS = 3
_F_CLOSED = 4
_N_FIELDS = 8  # reserved slack for future counters

_SLOT_WORDS = 2  # per-slot control words: seqlock, payload length


class RingClosed(RuntimeError):
    """The consumer marked the ring closed while the producer was blocked."""


class RingOverflow(ValueError):
    """A payload exceeded the ring's fixed slot capacity."""


class ShmRing:
    """Bounded SPSC ring of byte payloads in POSIX shared memory.

    One process creates the ring (``create=True``, the consumer side in
    the pipelined executor) and owns the segment's lifetime
    (:meth:`close` + :meth:`unlink`); the peer attaches by name with
    ``create=False`` and only ever calls :meth:`close`. Attached rings
    are unregistered from the ``multiprocessing`` resource tracker so a
    worker's exit cannot tear the segment down under the creator.
    """

    def __init__(
        self,
        capacity: int,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        name: Optional[str] = None,
        create: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        if slot_bytes < 1:
            raise ValueError(f"slot_bytes must be >= 1, got {slot_bytes}")
        self.capacity = capacity
        self.slot_bytes = slot_bytes
        self._ctrl_words = _N_FIELDS + _SLOT_WORDS * capacity
        self._data_offset = 8 * self._ctrl_words
        size = self._data_offset + capacity * slot_bytes
        if create:
            self._shm = shared_memory.SharedMemory(create=True, size=size, name=name)
        else:
            if name is None:
                raise ValueError("attaching to a ring requires its name")
            self._shm = shared_memory.SharedMemory(name=name, create=False)
            # The tracker would unlink the segment when *this* process
            # exits; only the creator may do that.
            resource_tracker.unregister(self._shm._name, "shared_memory")  # noqa: SLF001
        self._owner = create
        self._ctrl: Optional[np.ndarray] = np.ndarray(
            (self._ctrl_words,), dtype=np.uint64, buffer=self._shm.buf
        )
        self._data: Optional[np.ndarray] = np.ndarray(
            (size - self._data_offset,),
            dtype=np.uint8,
            buffer=self._shm.buf,
            offset=self._data_offset,
        )
        if create:
            self._ctrl[:] = 0

    # -- identity / lifetime ---------------------------------------------
    @property
    def name(self) -> str:
        """Segment name a peer process attaches with."""
        return self._shm.name

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        self._ctrl = None
        self._data = None
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (creator only; idempotent)."""
        # Under the fork start method the attaching peer shares this
        # process's resource tracker, so its attach-side unregister (see
        # __init__) removed our registration too; re-register first so
        # unlink()'s own unregister finds the entry instead of logging a
        # KeyError in the tracker process.
        resource_tracker.register(self._shm._name, "shared_memory")  # noqa: SLF001
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def mark_closed(self) -> None:
        """Consumer-side shutdown signal: unblocks a backpressured push."""
        assert self._ctrl is not None
        self._ctrl[_F_CLOSED] = 1

    # -- counters ---------------------------------------------------------
    @property
    def produced(self) -> int:
        assert self._ctrl is not None
        return int(self._ctrl[_F_PRODUCED])

    @property
    def consumed(self) -> int:
        assert self._ctrl is not None
        return int(self._ctrl[_F_CONSUMED])

    @property
    def occupancy(self) -> int:
        """Frames currently published but not yet consumed."""
        return self.produced - self.consumed

    @property
    def backpressure_waits(self) -> int:
        """Pushes that found the ring full and had to wait."""
        assert self._ctrl is not None
        return int(self._ctrl[_F_BACKPRESSURE_WAITS])

    @property
    def backpressure_wait_ms(self) -> float:
        """Total time the producer spent blocked on a full ring."""
        assert self._ctrl is not None
        return int(self._ctrl[_F_BACKPRESSURE_NS]) / 1e6

    def _slot_seq(self, slot: int) -> int:
        assert self._ctrl is not None
        return int(self._ctrl[_N_FIELDS + _SLOT_WORDS * slot])

    def ready(self, index: int) -> bool:
        """Whether frame ``index`` is already published (non-blocking)."""
        expected = 2 * (index // self.capacity) + 2
        return self._slot_seq(index % self.capacity) == expected

    # -- producer side -----------------------------------------------------
    def push(self, payload: bytes, timeout_s: Optional[float] = None) -> None:
        """Publish the next frame payload, blocking while the ring is full.

        Raises :class:`RingOverflow` for payloads larger than a slot,
        :class:`RingClosed` if the consumer shut the ring down mid-wait,
        and ``TimeoutError`` after ``timeout_s`` of backpressure.
        """
        ctrl = self._ctrl
        assert ctrl is not None and self._data is not None
        n = len(payload)
        if n > self.slot_bytes:
            raise RingOverflow(
                f"payload of {n} bytes exceeds the ring slot size "
                f"{self.slot_bytes}; raise slot_bytes"
            )
        index = int(ctrl[_F_PRODUCED])
        deadline = None if timeout_s is None else time.perf_counter() + timeout_s
        waited_from: Optional[float] = None
        try:
            while index - int(ctrl[_F_CONSUMED]) >= self.capacity:
                if int(ctrl[_F_CLOSED]):
                    raise RingClosed("consumer closed the ring")
                if waited_from is None:
                    waited_from = time.perf_counter()
                    ctrl[_F_BACKPRESSURE_WAITS] += np.uint64(1)
                if deadline is not None and time.perf_counter() > deadline:
                    raise TimeoutError(
                        f"ring full for {timeout_s} s (capacity {self.capacity})"
                    )
                time.sleep(_POLL_S)
        finally:
            # Accumulate on every exit path: a timed-out or closed-out
            # wait is still producer stall time the observability layer
            # must see.
            if waited_from is not None:
                waited_ns = int((time.perf_counter() - waited_from) * 1e9)
                ctrl[_F_BACKPRESSURE_NS] += np.uint64(waited_ns)
        slot = index % self.capacity
        epoch = index // self.capacity
        base = _N_FIELDS + _SLOT_WORDS * slot
        ctrl[base] = np.uint64(2 * epoch + 1)  # seqlock odd: write in progress
        off = slot * self.slot_bytes
        self._data[off : off + n] = np.frombuffer(payload, dtype=np.uint8)
        ctrl[base + 1] = np.uint64(n)
        ctrl[base] = np.uint64(2 * epoch + 2)  # seqlock even: published
        ctrl[_F_PRODUCED] = np.uint64(index + 1)

    # -- consumer side -----------------------------------------------------
    def pop(
        self,
        index: int,
        alive: Optional[Callable[[], bool]] = None,
        timeout_s: Optional[float] = None,
    ) -> Optional[bytes]:
        """Copy frame ``index`` out of the ring, blocking until published.

        ``alive`` (when given) is polled while waiting; if it reports the
        producer dead and the frame still is not published, ``None`` is
        returned — the truncation signal the executor turns into a
        truncated-but-valid session. Raises ``TimeoutError`` after
        ``timeout_s``.
        """
        ctrl = self._ctrl
        assert ctrl is not None and self._data is not None
        slot = index % self.capacity
        epoch = index // self.capacity
        expected = 2 * epoch + 2
        base = _N_FIELDS + _SLOT_WORDS * slot
        deadline = None if timeout_s is None else time.perf_counter() + timeout_s
        polls = 0
        while int(ctrl[base]) != expected:
            polls += 1
            if alive is not None and polls % _ALIVE_CHECK_EVERY == 0 and not alive():
                if int(ctrl[base]) == expected:
                    break  # published in the instant before death
                return None
            if deadline is not None and time.perf_counter() > deadline:
                raise TimeoutError(f"frame {index} not published within {timeout_s} s")
            time.sleep(_POLL_S)
        n = int(ctrl[base + 1])
        off = slot * self.slot_bytes
        out = bytes(self._data[off : off + n])
        if int(ctrl[base]) != expected:  # seqlock re-validation
            raise RuntimeError(
                f"seqlock violated on slot {slot} while reading frame {index}: "
                "producer overwrote an unconsumed slot"
            )
        ctrl[_F_CONSUMED] = np.uint64(index + 1)
        return out
