"""End-to-end game-streaming simulation: server, client designs, sessions."""

from .abr import ABRController, ABRRung, DEFAULT_LADDER, build_abr
from .adaptive import AdaptiveRoIController
from .client import (
    BilinearClient,
    FullFrameSRClient,
    GameStreamSRClient,
    NemoClient,
    SRIntegratedDecoderClient,
    StreamingClient,
)
from .frames import ClientFrameResult, ROI_METADATA_BYTES, ServerFrame, StreamGeometry
from .mtp import MTP_STAGES, MTPBreakdown, mtp_from_frame, mtp_from_trace
from .pipeline import (
    CLIENT_STAGES,
    ENERGY_CATEGORIES,
    EnergyAttribution,
    FrameTrace,
    SERVER_STAGES,
    Stage,
    StageSpan,
    TransmissionSplit,
    split_transmission,
)
from .pipelined import (
    PipelineSchedule,
    modeled_pipeline_schedule,
    run_session_pipelined,
)
from .ring import DEFAULT_SLOT_BYTES, RingClosed, RingOverflow, ShmRing
from .server import GameStreamServer
from .session import (
    FrameRecord,
    SessionResult,
    apply_client_knobs,
    energy_from_trace,
    energy_of_frame,
    run_session,
)

__all__ = [
    "ABRController",
    "ABRRung",
    "AdaptiveRoIController",
    "BilinearClient",
    "CLIENT_STAGES",
    "ClientFrameResult",
    "DEFAULT_LADDER",
    "DEFAULT_SLOT_BYTES",
    "ENERGY_CATEGORIES",
    "EnergyAttribution",
    "FrameRecord",
    "FrameTrace",
    "FullFrameSRClient",
    "GameStreamSRClient",
    "GameStreamServer",
    "MTPBreakdown",
    "MTP_STAGES",
    "NemoClient",
    "PipelineSchedule",
    "ROI_METADATA_BYTES",
    "RingClosed",
    "RingOverflow",
    "SERVER_STAGES",
    "SRIntegratedDecoderClient",
    "ServerFrame",
    "SessionResult",
    "ShmRing",
    "Stage",
    "StageSpan",
    "StreamGeometry",
    "StreamingClient",
    "TransmissionSplit",
    "apply_client_knobs",
    "build_abr",
    "energy_from_trace",
    "energy_of_frame",
    "modeled_pipeline_schedule",
    "mtp_from_frame",
    "mtp_from_trace",
    "run_session",
    "run_session_pipelined",
    "split_transmission",
]
