"""End-to-end game-streaming simulation: server, client designs, sessions."""

from .adaptive import AdaptiveRoIController
from .client import (
    BilinearClient,
    FullFrameSRClient,
    GameStreamSRClient,
    NemoClient,
    SRIntegratedDecoderClient,
    StreamingClient,
)
from .frames import ClientFrameResult, ROI_METADATA_BYTES, ServerFrame, StreamGeometry
from .mtp import MTP_STAGES, MTPBreakdown, mtp_from_frame
from .server import GameStreamServer
from .session import FrameRecord, SessionResult, energy_of_frame, run_session

__all__ = [
    "AdaptiveRoIController",
    "BilinearClient",
    "ClientFrameResult",
    "FrameRecord",
    "FullFrameSRClient",
    "GameStreamSRClient",
    "GameStreamServer",
    "MTPBreakdown",
    "MTP_STAGES",
    "NemoClient",
    "ROI_METADATA_BYTES",
    "SRIntegratedDecoderClient",
    "ServerFrame",
    "SessionResult",
    "StreamGeometry",
    "StreamingClient",
    "energy_of_frame",
    "mtp_from_frame",
    "run_session",
]
