"""Disk-cached rendered frame sequences.

Rendering is the dominant cost of the quality experiments, and every
design under comparison consumes the *same* frames, so sequences are
rendered once per (game, resolution, length) and cached under
``.cache/renders/`` as uint8 color + float16 depth (the 8-bit frame/depth
precision real streaming pipelines carry anyway).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..cache import load_or_build
from ..render.games import GameWorkload, build_game
from ..render.rasterizer import RenderOutput

__all__ = ["FrameBundle", "rendered_sequence", "PrerenderedWorkload"]


@dataclass
class FrameBundle:
    """A rendered sequence at one resolution (quantized for storage)."""

    game_id: str
    width: int
    height: int
    fps: float
    color_u8: np.ndarray  # (N, H, W, 3) uint8
    depth_f16: np.ndarray  # (N, H, W) float16

    def __len__(self) -> int:
        return len(self.color_u8)

    def frame(self, index: int) -> RenderOutput:
        if not 0 <= index < len(self):
            raise IndexError(f"frame {index} outside bundle of {len(self)}")
        color = self.color_u8[index].astype(np.float64) / 255.0
        depth = np.clip(self.depth_f16[index].astype(np.float64), 0.0, 1.0)
        return RenderOutput(color=color, depth=depth)


def rendered_sequence(
    game_id: str, width: int, height: int, n_frames: int, fps: float = 60.0
) -> FrameBundle:
    """Render (or load from cache) ``n_frames`` of a game at one resolution."""

    def build() -> FrameBundle:
        game = build_game(game_id)
        colors = np.empty((n_frames, height, width, 3), dtype=np.uint8)
        depths = np.empty((n_frames, height, width), dtype=np.float16)
        for i in range(n_frames):
            out = game.render_frame(i, width, height, fps)
            colors[i] = np.clip(np.round(out.color * 255.0), 0, 255).astype(np.uint8)
            depths[i] = out.depth.astype(np.float16)
        return FrameBundle(game_id, width, height, fps, colors, depths)

    config = {
        "game": game_id,
        "w": width,
        "h": height,
        "n": n_frames,
        "fps": fps,
        "v": 1,  # bump to invalidate renders after scene changes
    }
    return load_or_build(f"render-{game_id}", config, build, subdir="renders")


class PrerenderedWorkload:
    """Duck-type of :class:`~repro.render.games.GameWorkload` backed by
    cached bundles; falls through to live rendering on a resolution miss."""

    def __init__(self, game: GameWorkload) -> None:
        self._game = game
        self._bundles: Dict[tuple[int, int], FrameBundle] = {}

    @property
    def game_id(self) -> str:
        return self._game.game_id

    @property
    def title(self) -> str:
        return self._game.title

    @property
    def genre(self) -> str:
        return self._game.genre

    @property
    def scene(self):
        return self._game.scene

    def preload(self, width: int, height: int, n_frames: int, fps: float = 60.0) -> None:
        self._bundles[(width, height)] = rendered_sequence(
            self.game_id, width, height, n_frames, fps
        )

    def render_frame(
        self, frame_index: int, width: int, height: int, fps: float = 60.0
    ) -> RenderOutput:
        bundle = self._bundles.get((width, height))
        if bundle is not None and frame_index < len(bundle) and bundle.fps == fps:
            return bundle.frame(frame_index)
        return self._game.render_frame(frame_index, width, height, fps)
