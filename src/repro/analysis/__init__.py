"""Experiment drivers, render caching, and report formatting."""

from .experiments import (
    ALL_GAME_IDS,
    DEVICE_NAMES,
    bandwidth_comparison,
    default_runner,
    input_resolution_sweep,
    perf_geometry,
    performance_sessions,
    quality_geometry,
    quality_sessions,
    roi_sizing_table,
    sota_timeline,
    upscale_factor_tradeoff,
)
from .parallel import default_worker_count, run_session_matrix
from .prerender import FrameBundle, PrerenderedWorkload, rendered_sequence
from .tables import fmt, format_paper_vs_measured, format_table
from .traces import (
    network_health,
    trace_energy_table,
    trace_mtp_table,
    wall_clock_profile,
)

__all__ = [
    "ALL_GAME_IDS",
    "DEVICE_NAMES",
    "FrameBundle",
    "PrerenderedWorkload",
    "bandwidth_comparison",
    "default_runner",
    "default_worker_count",
    "fmt",
    "format_paper_vs_measured",
    "format_table",
    "input_resolution_sweep",
    "network_health",
    "perf_geometry",
    "performance_sessions",
    "quality_geometry",
    "quality_sessions",
    "rendered_sequence",
    "roi_sizing_table",
    "run_session_matrix",
    "sota_timeline",
    "trace_energy_table",
    "trace_mtp_table",
    "upscale_factor_tradeoff",
    "wall_clock_profile",
]
