"""ASCII table rendering for benchmark reports (paper-vs-measured rows)."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_paper_vs_measured", "fmt"]


def fmt(value) -> str:
    """Compact numeric formatting for table cells."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 100:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None
) -> str:
    """Render rows as a fixed-width ASCII table."""
    str_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    separator = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out = []
    if title:
        out.append(title)
    out.extend([separator, line(list(headers)), separator])
    out.extend(line(row) for row in str_rows)
    out.append(separator)
    return "\n".join(out)


def format_paper_vs_measured(
    rows: Iterable[tuple[str, object, object]], title: str | None = None
) -> str:
    """Three-column table: metric, value the paper reports, our measurement."""
    return format_table(
        ["metric", "paper", "measured"],
        [(label, paper, measured) for label, paper, measured in rows],
        title=title,
    )
