"""Shared experiment drivers behind the benchmark suite.

One function per paper artifact (see the DESIGN.md per-experiment index);
each returns plain data structures and caches its heavy parts under
``.cache/`` so re-running a bench is fast and deterministic. The bench
files in ``benchmarks/`` are thin formatting wrappers around these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cache import load_or_build
from ..core.config import RoIConfig
from ..core.roi_sizing import RoIWindowPlan, plan_roi_window
from ..metrics.psnr import psnr as psnr_metric
from ..platform import calibration as cal
from ..platform import latency as lat
from ..platform.benchmark import max_realtime_roi_side
from ..platform.device import DeviceProfile, get_device
from ..render.games import GAME_TABLE, build_game
from ..sr.interpolate import resize
from ..sr.pretrained import default_sr_model
from ..sr.runner import SRRunner
from ..streaming.client import (
    BilinearClient,
    GameStreamSRClient,
    NemoClient,
    SRIntegratedDecoderClient,
    StreamingClient,
)
from ..streaming.frames import StreamGeometry
from ..streaming.server import GameStreamServer
from ..streaming.session import SessionResult, run_session
from .parallel import run_session_matrix, session_cache_key
from .prerender import PrerenderedWorkload, rendered_sequence

__all__ = [
    "ALL_GAME_IDS",
    "DEVICE_NAMES",
    "perf_geometry",
    "quality_geometry",
    "performance_sessions",
    "quality_sessions",
    "sota_timeline",
    "upscale_factor_tradeoff",
    "input_resolution_sweep",
    "roi_sizing_table",
    "bandwidth_comparison",
    "default_runner",
    "PERF_FRAMES",
    "QUALITY_FRAMES",
    "QUALITY_GOP",
    "STREAM_QUALITY",
    "FactorPoint",
]

ALL_GAME_IDS = [game_id for game_id, _, _ in GAME_TABLE]
DEVICE_NAMES = ("samsung_tab_s8", "pixel_7_pro")

#: Short sessions suffice for latency/energy (deterministic per frame
#: type); GOP-60 aggregates are synthesized via SessionResult helpers.
PERF_FRAMES = 16
#: Quality sessions simulate real GOPs at the evaluation geometry.
QUALITY_FRAMES = 36
QUALITY_GOP = 36
STREAM_QUALITY = 70

_RUNNER: Optional[SRRunner] = None


def default_runner() -> SRRunner:
    """The shared SR inference runner (trains/caches weights at first use)."""
    global _RUNNER  # reprolint: disable=fork-safety -- per-process memo of a deterministic artifact: every worker rebuilds identical weights from the cache
    if _RUNNER is None:
        _RUNNER = SRRunner(default_sr_model())
    return _RUNNER


def perf_geometry() -> StreamGeometry:
    """Small native-LR geometry for latency/energy sessions (pixels are
    irrelevant to the modeled timings)."""
    return StreamGeometry(
        eval_lr_height=64, eval_lr_width=112, lr_source="native"
    )


def quality_geometry() -> StreamGeometry:
    """Anti-aliased evaluation geometry for the quality experiments."""
    return StreamGeometry(eval_lr_height=128, eval_lr_width=224, lr_source="downsample")


def _make_client(
    design: str, device: DeviceProfile, plan: RoIWindowPlan
) -> StreamingClient:
    runner = default_runner()
    if design == "gamestreamsr":
        return GameStreamSRClient(device, runner, modeled_roi_side=plan.side)
    if design == "nemo":
        return NemoClient(device, runner)
    if design == "bilinear":
        return BilinearClient(device)
    if design == "sr_integrated_decoder":
        return SRIntegratedDecoderClient(device, runner)
    raise ValueError(f"unknown design {design!r}")


def _run_one_session(
    game_id: str,
    device_name: str,
    design: str,
    geometry: StreamGeometry,
    n_frames: int,
    gop_size: int,
    quality: int,
    evaluate_quality: bool,
    with_lpips: bool = False,
    lpips_stride: int = 2,
    roi_config: Optional[RoIConfig] = None,
    pipelined: bool = False,
) -> SessionResult:
    device = get_device(device_name)
    plan = plan_roi_window(device)
    game = PrerenderedWorkload(build_game(game_id))
    if geometry.lr_source == "native":
        game.preload(geometry.eval_lr_width, geometry.eval_lr_height, n_frames)
    else:
        game.preload(
            geometry.eval_lr_width * geometry.scale,
            geometry.eval_lr_height * geometry.scale,
            n_frames,
        )
    needs_roi = design in ("gamestreamsr", "sr_integrated_decoder")
    server = GameStreamServer(
        game,
        geometry,
        roi_side=plan.side_for_frame(geometry.eval_lr_height) if needs_roi else None,
        gop_size=gop_size,
        quality=quality,
        roi_config=roi_config or RoIConfig(),
    )
    client = _make_client(design, device, plan)
    if pipelined:
        from ..streaming.pipelined import run_session_pipelined

        return run_session_pipelined(
            server,
            client,
            n_frames=n_frames,
            evaluate_quality=evaluate_quality,
            with_lpips=with_lpips,
            lpips_stride=lpips_stride,
        )
    return run_session(
        server,
        client,
        n_frames=n_frames,
        evaluate_quality=evaluate_quality,
        with_lpips=with_lpips,
        lpips_stride=lpips_stride,
    )


def _cached_session(kind: str, pipelined: bool = False, **kwargs) -> SessionResult:
    # ``pipelined`` selects the executor, not the session: results are
    # byte-identical either way (the determinism suite guards this), so
    # it deliberately stays out of the cache key.
    def build() -> SessionResult:
        geometry = perf_geometry() if kind == "perf" else quality_geometry()
        params = dict(kwargs)
        return _run_one_session(
            geometry=geometry,
            evaluate_quality=(kind == "quality"),
            pipelined=pipelined,
            **params,
        )

    return load_or_build(
        f"session-{kind}", session_cache_key(kind, kwargs), build, subdir="sessions"
    )


def performance_sessions(
    device_name: str,
    game_ids: Sequence[str] = ("G1", "G3", "G5", "G7", "G10"),
    designs: Sequence[str] = ("gamestreamsr", "nemo"),
    n_frames: int = PERF_FRAMES,
    workers: int | None = None,
) -> Dict[str, Dict[str, SessionResult]]:
    """Latency/energy sessions per design per game (cached).

    Uncached cells of the (design, game) matrix are built in parallel
    across ``workers`` processes (see :mod:`repro.analysis.parallel`);
    the artifacts are identical to what the serial path would produce.
    """
    tasks = [
        (
            "perf",
            dict(
                game_id=game_id,
                device_name=device_name,
                design=design,
                n_frames=n_frames,
                gop_size=n_frames,
                quality=STREAM_QUALITY,
            ),
        )
        for design in designs
        for game_id in game_ids
    ]
    run_session_matrix(tasks, workers=workers)
    out: Dict[str, Dict[str, SessionResult]] = {}
    for design in designs:
        out[design] = {}
        for game_id in game_ids:
            out[design][game_id] = _cached_session(
                "perf",
                game_id=game_id,
                device_name=device_name,
                design=design,
                n_frames=n_frames,
                gop_size=n_frames,
                quality=STREAM_QUALITY,
            )
    return out


def quality_sessions(
    game_id: str,
    device_name: str = "samsung_tab_s8",
    designs: Sequence[str] = ("gamestreamsr", "nemo"),
    n_frames: int = QUALITY_FRAMES,
    gop_size: int = QUALITY_GOP,
    with_lpips: bool = True,
    workers: int | None = None,
) -> Dict[str, SessionResult]:
    """Pixel-true quality sessions per design for one game (cached).

    Like :func:`performance_sessions`, missing designs are built in
    parallel before the results are read back from the cache.
    """
    tasks = [
        (
            "quality",
            dict(
                game_id=game_id,
                device_name=device_name,
                design=design,
                n_frames=n_frames,
                gop_size=gop_size,
                quality=STREAM_QUALITY,
                with_lpips=with_lpips,
            ),
        )
        for design in designs
    ]
    run_session_matrix(tasks, workers=workers)
    return {
        design: _cached_session(
            "quality",
            game_id=game_id,
            device_name=device_name,
            design=design,
            n_frames=n_frames,
            gop_size=gop_size,
            quality=STREAM_QUALITY,
            with_lpips=with_lpips,
        )
        for design in designs
    }


# ----------------------------------------------------------------------
# Fig. 2 — SOTA upscaling timeline


def sota_timeline(
    device_name: str = "samsung_tab_s8", n_gops: int = 3, gop_size: int = 8
) -> List[dict]:
    """Per-frame SOTA upscale latencies over consecutive GOPs.

    Modeled latencies depend only on frame type, so short GOPs render the
    same staircase the paper's Fig. 2 shows for 60-frame GOPs.
    """
    session = _cached_session(
        "perf",
        game_id="G3",
        device_name=device_name,
        design="nemo",
        n_frames=n_gops * gop_size,
        gop_size=gop_size,
        quality=STREAM_QUALITY,
    )
    return [
        {
            "frame": r.index,
            "type": r.frame_type,
            "upscale_ms": r.upscale_ms,
            "meets_deadline": r.upscale_ms <= cal.REALTIME_DEADLINE_MS,
        }
        for r in session.records
    ]


# ----------------------------------------------------------------------
# Fig. 3 — latency/quality vs upscale factor; latency vs input resolution


@dataclass(frozen=True)
class FactorPoint:
    factor: float
    input_height: int
    input_width: int
    npu_latency_ms: float
    bilinear_psnr_db: float


def upscale_factor_tradeoff(
    device_name: str = "samsung_tab_s8",
    factors: Sequence[int] = (2, 3, 4, 6),
    target: tuple[int, int] = (256, 448),
) -> List[FactorPoint]:
    """SR latency and attainable quality for different upscale factors.

    Latency is the modeled NPU cost of an EDSR at the required input size
    for a 1440p target; quality is measured on real pixels (G3 frame) by
    downsampling the HR render by each factor and upscaling back.
    """

    def build() -> List[FactorPoint]:
        device = get_device(device_name)
        hr = rendered_sequence("G3", target[1], target[0], 1).frame(0).color
        points = []
        for factor in factors:
            in_h, in_w = target[0] // factor, target[1] // factor
            modeled_in_px = (2560 // factor) * (1440 // factor)
            latency = lat.npu_sr_latency_ms(modeled_in_px, device)
            lr = resize(hr, in_h, in_w, "bilinear")
            up = resize(lr, target[0], target[1], "bilinear")
            points.append(
                FactorPoint(factor, in_h, in_w, latency, psnr_metric(hr, up))
            )
        return points

    return load_or_build(
        "fig3a", {"device": device_name, "factors": list(factors), "target": target},
        build, subdir="experiments",
    )


def input_resolution_sweep(
    device_name: str = "samsung_tab_s8",
    resolutions: Sequence[tuple[str, int, int]] = (
        ("240p", 320, 240),
        ("360p", 640, 360),
        ("480p", 854, 480),
        ("720p", 1280, 720),
        ("1080p", 1920, 1080),
    ),
) -> List[dict]:
    """Fig. 3b: modeled x2-SR latency for different input resolutions."""
    device = get_device(device_name)
    return [
        {
            "label": label,
            "pixels": w * h,
            "latency_ms": lat.npu_sr_latency_ms(w * h, device),
            "meets_deadline": lat.npu_sr_latency_ms(w * h, device)
            <= cal.REALTIME_DEADLINE_MS,
        }
        for label, w, h in resolutions
    ]


# ----------------------------------------------------------------------
# Fig. 7 — RoI sizing


def roi_sizing_table() -> List[dict]:
    """Foveal minimum and device maximum RoI sides for both devices."""
    rows = []
    for name in DEVICE_NAMES:
        device = get_device(name)
        plan = plan_roi_window(device)
        rows.append(
            {
                "device": name,
                "ppi": device.display.ppi,
                "viewing_cm": device.viewing_distance_cm,
                "min_side": plan.min_side,
                "max_side": plan.max_side,
                "chosen_side": plan.side,
                "meets_foveal": plan.meets_foveal_minimum,
                "roi_latency_ms": lat.npu_sr_latency_ms(plan.side**2, device),
            }
        )
    return rows


# ----------------------------------------------------------------------
# bandwidth claim (Sec. IV-B2): 720p + RoI vs native-2K streaming


def bandwidth_comparison(game_id: str = "G3", n_frames: int = 12) -> dict:
    """Measured bitrate of streaming LR + RoI metadata vs native HR."""

    def build() -> dict:
        from ..codec.encoder import VideoEncoder
        from ..streaming.frames import ROI_METADATA_BYTES

        hr_bundle = rendered_sequence(game_id, 448, 256, n_frames)
        lr_frames = []
        hr_frames = []
        for i in range(n_frames):
            hr = hr_bundle.frame(i).color
            hr_frames.append(hr)
            lr_frames.append(hr.reshape(128, 2, 224, 2, 3).mean(axis=(1, 3)))
        enc_lr = VideoEncoder(gop_size=n_frames, quality=STREAM_QUALITY)
        enc_hr = VideoEncoder(gop_size=n_frames, quality=STREAM_QUALITY)
        lr_bytes = sum(f.size_bytes + ROI_METADATA_BYTES for f in enc_lr.encode_sequence(lr_frames))
        hr_bytes = sum(f.size_bytes for f in enc_hr.encode_sequence(hr_frames))
        return {
            "lr_bytes_per_frame": lr_bytes / n_frames,
            "hr_bytes_per_frame": hr_bytes / n_frames,
            "bandwidth_reduction_pct": 100.0 * (1.0 - lr_bytes / hr_bytes),
        }

    return load_or_build(
        "bandwidth", {"game": game_id, "n": n_frames, "q": STREAM_QUALITY},
        build, subdir="experiments",
    )
