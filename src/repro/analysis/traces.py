"""Analysis over per-frame pipeline traces and session metrics.

These builders consume the structured :class:`~repro.streaming.pipeline.
FrameTrace` records and :class:`~repro.observability.MetricsRegistry`
snapshot a staged :func:`~repro.streaming.session.run_session` attaches
to its :class:`~repro.streaming.session.SessionResult`, instead of the
aggregate ``FrameRecord`` fields. They are the observability payoff of
the staged pipeline: MTP and energy tables derived straight from spans,
wall-clock simulation profiles, and transport-health summaries that have
no pre-trace equivalent.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ..platform.device import get_device
from ..platform.energy import stage_energy_mj
from ..streaming.mtp import MTP_STAGES
from ..streaming.session import SessionResult

__all__ = [
    "trace_mtp_table",
    "trace_energy_table",
    "wall_clock_profile",
    "network_health",
]


def _require_traces(result: SessionResult) -> List:
    traces = result.frame_traces()
    if not traces:
        raise ValueError(
            "session carries no frame traces (hand-built records?); "
            "re-run the session through run_session"
        )
    return traces


def trace_mtp_table(result: SessionResult) -> List[Dict[str, Any]]:
    """Per-stage MTP rows (mean/max modeled ms) computed from the traces.

    Numerically identical to averaging ``FrameRecord.mtp`` — both are
    views of the same spans — but carried per stage with worst-case
    frames attached, which the aggregate breakdown cannot express.
    """
    traces = _require_traces(result)
    rows = []
    for stage in MTP_STAGES:
        series = [t.stage_ms(stage) for t in traces]
        worst = int(np.argmax(series))
        rows.append(
            {
                "stage": stage,
                "mean_ms": float(np.mean(series)),
                "max_ms": float(series[worst]),
                "max_frame": traces[worst].index,
            }
        )
    rows.append(
        {
            "stage": "total",
            "mean_ms": float(np.mean([t.total_modeled_ms for t in traces])),
            "max_ms": float(max(t.total_modeled_ms for t in traces)),
            "max_frame": max(traces, key=lambda t: t.total_modeled_ms).index,
        }
    )
    return rows


def trace_energy_table(result: SessionResult) -> List[Dict[str, Any]]:
    """Per-component energy rows (Fig. 12 drill-down) from the traces.

    Splits each category into its hardware components — e.g. ``upscale``
    into NPU vs GPU mJ — which the category-level ``EnergyBreakdown``
    aggregates away.
    """
    traces = _require_traces(result)
    device = get_device(result.device_name)
    totals: Dict[tuple, float] = {}
    for trace in traces:
        for span in trace.spans:
            for attr in span.energy:
                key = (attr.resolved_category(span.name), attr.component.value)
                totals[key] = totals.get(key, 0.0) + stage_energy_mj(
                    device, attr.component, attr.ms
                )
    n = len(traces)
    return [
        {
            "category": category,
            "component": component,
            "mean_mj_per_frame": mj / n,
        }
        for (category, component), mj in sorted(totals.items())
    ]


def wall_clock_profile(result: SessionResult) -> List[Dict[str, Any]]:
    """Mean *real* wall-clock cost of each simulation stage, in ms.

    This profiles the simulator itself (where does `run_session` spend
    its time?), not the modeled platform — only traces know it, because
    the legacy timing dicts never recorded wall clock.
    """
    traces = _require_traces(result)
    acc: Dict[str, List[float]] = {}
    for trace in traces:
        for span in trace.spans:
            acc.setdefault(span.name, []).append(span.wall_ms)
    total = sum(sum(v) for v in acc.values())
    return [
        {
            "stage": name,
            "mean_wall_ms": float(np.mean(series)),
            "share_pct": 100.0 * sum(series) / total if total > 0 else 0.0,
        }
        for name, series in acc.items()
    ]


def network_health(result: SessionResult) -> Dict[str, Any]:
    """Transport-stage health summary: drops, retransmissions, latency.

    Combines the per-record transport flags with the metrics registry's
    ``stage_ms/network`` histogram (p50/p95/max network latency). On the
    flat default link drops and retransmissions are structurally zero.
    """
    out: Dict[str, Any] = {
        "frames": len(result.records),
        "drop_rate": result.drop_rate(),
        "total_retransmissions": result.total_retransmissions(),
    }
    if result.metrics is not None and "stage_ms/network" in result.metrics.names():
        hist = result.metrics.histogram("stage_ms/network")
        out.update(
            {
                "network_ms_p50": hist.quantile(0.5),
                "network_ms_p95": hist.quantile(0.95),
                "network_ms_max": hist.max,
            }
        )
    return out
