"""Parallel fan-out of the (game, design) session matrix.

:func:`run_session_matrix` takes the list of session tasks an experiment
driver wants materialized and builds the ones missing from the artifact
cache across a :class:`~concurrent.futures.ProcessPoolExecutor`. Workers
write through :func:`repro.cache.load_or_build` with exactly the same
``(name, config)`` keys the serial path uses, so the cached artifacts are
byte-identical regardless of how (or in what order) they were produced —
the parent then reads every result back from the cache.

Scheduling is cache-aware: tasks whose artifact already exists are never
dispatched, and the remaining ones are ordered most-expensive-first
(quality sessions before perf sessions, longer sessions before shorter)
so the pool drains without a long straggler tail.

Worker count resolution: an explicit ``workers=`` argument wins, then the
``REPRO_SESSION_WORKERS`` environment variable, then ``os.cpu_count()``
capped at 8. ``workers <= 1`` (or a single pending task) runs serially
in-process — the default on single-core machines.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Any, Dict, List, Sequence, Tuple

from ..cache import artifact_path, cache_disabled

__all__ = [
    "SESSION_CACHE_SCHEMA",
    "SessionTask",
    "default_worker_count",
    "run_session_matrix",
    "session_cache_key",
]

#: (kind, kwargs) pair identifying one cached session — ``kind`` selects
#: the geometry/quality mode ("perf" or "quality"), ``kwargs`` are the
#: exact keyword arguments of ``repro.analysis.experiments._cached_session``.
SessionTask = Tuple[str, Dict[str, Any]]

#: Version of the cached-session artifact layout. Bumped whenever the
#: pickled ``SessionResult`` schema changes shape in ways old readers
#: would mis-handle (v2: staged pipeline — per-frame traces + metrics
#: registry attached). Part of the cache key, so stale seed-era pickles
#: are never loaded into the new code.
SESSION_CACHE_SCHEMA = 2

_MAX_DEFAULT_WORKERS = 8


def session_cache_key(kind: str, kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """The one place the session artifact cache key is assembled.

    Both the serial path (``experiments._cached_session``) and the
    parallel scheduler's existence probe must use this exact dict, or the
    fan-out would rebuild sessions the serial path considers cached.
    """
    return {"kind": kind, "schema": SESSION_CACHE_SCHEMA, **kwargs}


def default_worker_count() -> int:
    """Worker count from ``REPRO_SESSION_WORKERS`` or the CPU count."""
    env = os.environ.get("REPRO_SESSION_WORKERS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_SESSION_WORKERS must be an integer, got {env!r}"
            ) from None
    return max(1, min(_MAX_DEFAULT_WORKERS, os.cpu_count() or 1))


def _task_cached(task: SessionTask) -> bool:
    kind, kwargs = task
    return artifact_path(
        f"session-{kind}", session_cache_key(kind, kwargs), subdir="sessions"
    ).exists()


def _task_cost(task: SessionTask) -> Tuple[int, int]:
    """Sort key putting the most expensive sessions first."""
    kind, kwargs = task
    return (1 if kind == "quality" else 0, int(kwargs.get("n_frames", 0)))


def _build_session(task: SessionTask, pipelined: bool = False) -> None:
    """Worker entry point: build one session, write-through to the cache."""
    # Imported here (not at module top): experiments imports this module.
    from .experiments import _cached_session

    kind, kwargs = task
    if pipelined:
        _cached_session(kind, pipelined=True, **kwargs)
    else:
        # Keep the call shape identical to the serial path: the flag does
        # not affect the artifact, and builders substituted in tests may
        # not accept it.
        _cached_session(kind, **kwargs)


def run_session_matrix(
    tasks: Sequence[SessionTask],
    workers: int | None = None,
    pipelined: bool = False,
) -> None:
    """Ensure every task's session artifact exists, fanning out if needed.

    Safe to call with an arbitrary mix of cached and uncached tasks; the
    function returns once all artifacts are on disk. Results are *not*
    returned — callers read them through ``_cached_session`` afterwards,
    which is then a pure cache hit.

    ``pipelined`` builds each session through the software-pipelined
    executor (``repro.streaming.pipelined``) instead of the serial loop.
    The artifacts are byte-identical either way, so the flag does not
    enter the cache key — it only changes how a cache *miss* is built
    (useful when the matrix is dominated by a few long sessions the
    fan-out alone cannot overlap).
    """
    if workers is None:
        workers = default_worker_count()
    # Bind the executor flag only when set: the default path keeps the
    # plain one-argument _build_session(task) call shape (callers and
    # tests may substitute single-argument builders).
    build = partial(_build_session, pipelined=True) if pipelined else _build_session
    if cache_disabled():
        # No artifact store to fan out over: build everything in-process.
        for task in tasks:
            build(task)
        return
    pending = [t for t in tasks if not _task_cached(t)]
    if not pending:
        return
    pending.sort(key=_task_cost, reverse=True)
    if workers <= 1 or len(pending) == 1:
        for task in pending:
            build(task)
        return

    # Train/load the shared SR weights once before forking, so workers
    # don't race to train the same model from scratch.
    from ..sr.pretrained import default_sr_model

    default_sr_model()
    with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
        # list() propagates the first worker exception, if any.
        list(pool.map(build, pending))
