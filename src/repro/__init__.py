"""GameStreamSR reproduction (ISCA 2024).

Depth-guided region-of-importance super resolution for real-time cloud
game streaming on mobile platforms, plus every substrate the evaluation
needs: a software 3-D renderer with depth buffers, a GOP video codec, a
numpy neural framework with an EDSR SR model, calibrated mobile-device
latency/energy models, a network link model, and the NEMO baseline.

Quickstart::

    from repro import (
        build_game, plan_roi_window, samsung_tab_s8,
        RoIDetector, RoIAssistedUpscaler, SRRunner, default_sr_model,
    )

    device = samsung_tab_s8()
    plan = plan_roi_window(device)               # step-1 sizing probe
    game = build_game("G3")                       # Witcher-3-like scene
    frame = game.render_frame(0, 224, 128)        # color + depth buffer
    roi = RoIDetector(plan.side_for_frame(128)).detect(frame.depth).box
    upscaler = RoIAssistedUpscaler(SRRunner(default_sr_model()))
    hr = upscaler.upscale(frame.color, roi).frame  # 256x448 hybrid output

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results of every reproduced table and figure.
"""

from .core import (
    DEFAULT_ROI_CONFIG,
    HybridUpscaleResult,
    RoIAssistedUpscaler,
    RoIBox,
    RoIConfig,
    RoIDetection,
    RoIDetector,
    RoIWindowPlan,
    min_roi_side_px,
    plan_roi_window,
)
from .metrics import lpips, psnr, ssim
from .platform import (
    DeviceProfile,
    get_device,
    max_realtime_roi_side,
    npu_sr_latency_ms,
    pixel_7_pro,
    samsung_tab_s8,
)
from .render import GAME_TABLE, GameWorkload, all_games, build_game
from .sr import SRRunner, bilinear, default_sr_model
from .streaming import (
    BilinearClient,
    GameStreamSRClient,
    GameStreamServer,
    NemoClient,
    StreamGeometry,
    run_session,
)

__version__ = "1.0.0"

__all__ = [
    "BilinearClient",
    "DEFAULT_ROI_CONFIG",
    "DeviceProfile",
    "GAME_TABLE",
    "GameStreamSRClient",
    "GameStreamServer",
    "GameWorkload",
    "HybridUpscaleResult",
    "NemoClient",
    "RoIAssistedUpscaler",
    "RoIBox",
    "RoIConfig",
    "RoIDetection",
    "RoIDetector",
    "RoIWindowPlan",
    "SRRunner",
    "StreamGeometry",
    "__version__",
    "all_games",
    "bilinear",
    "build_game",
    "default_sr_model",
    "get_device",
    "lpips",
    "max_realtime_roi_side",
    "min_roi_side_px",
    "npu_sr_latency_ms",
    "pixel_7_pro",
    "plan_roi_window",
    "psnr",
    "run_session",
    "samsung_tab_s8",
    "ssim",
]
