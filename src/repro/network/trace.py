"""Trace-driven network scenarios: time-varying links for mobile streaming.

The base :class:`~repro.network.link.NetworkLink` is a single static
pipe. Real mobile streaming lives on LTE/5G/WiFi whose bandwidth, RTT,
and loss swing by an order of magnitude over seconds — the conditions
that motivate every adaptive knob in this repo. This module makes the
link time-varying:

* :class:`TraceSegment` / :class:`LinkTrace` — a piecewise-constant
  schedule of (bandwidth, propagation, loss) over session time, with
  optional looping past the end.
* :class:`GilbertElliott` — the classic two-state Markov burst-loss
  model layered on top of the schedule's baseline loss, so losses
  cluster the way radio fades do instead of arriving i.i.d.
* Exponential propagation jitter — queueing delay in the radio access
  network on top of the deterministic propagation floor.
* :class:`TraceDrivenLink` — a :class:`NetworkLink` subclass that looks
  all of this up at ``transmit(..., at_ms=t)`` time and records the
  instantaneous conditions in :attr:`TraceDrivenLink.last_transmit_meta`
  for observability.
* :func:`build_scenario` — canned cellular/WiFi traces plus a seeded
  synthetic generator (``synthetic:<seed>``), so benchmarks and the CLI
  can name a scenario with one string.

Everything is seeded and deterministic: the same trace + seed yields an
identical :class:`~repro.network.link.TransmitResult` sequence, which is
what lets serial and pipelined sessions stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .link import NetworkLink

__all__ = [
    "TraceSegment",
    "LinkTrace",
    "GilbertElliott",
    "TraceDrivenLink",
    "build_scenario",
    "available_scenarios",
    "synthetic_trace",
    "SCENARIO_NAMES",
]


@dataclass(frozen=True)
class TraceSegment:
    """Constant link conditions over ``[start_ms, next segment)``."""

    start_ms: float
    bandwidth_mbps: float
    propagation_ms: float
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.start_ms < 0:
            raise ValueError(f"start_ms must be >= 0, got {self.start_ms}")
        if self.bandwidth_mbps <= 0:
            raise ValueError(
                f"bandwidth must be positive, got {self.bandwidth_mbps}"
            )
        if self.propagation_ms < 0:
            raise ValueError(
                f"propagation must be >= 0, got {self.propagation_ms}"
            )
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")


@dataclass(frozen=True)
class LinkTrace:
    """A piecewise-constant schedule of link conditions.

    Segments must be sorted by ``start_ms`` with the first at 0. Lookups
    past the last segment either hold its conditions (``loop=False``) or
    wrap around modulo the trace duration (``loop=True``); looping needs
    an explicit ``duration_ms`` past the last segment start.
    """

    name: str
    segments: Tuple[TraceSegment, ...]
    loop: bool = False
    duration_ms: float = 0.0
    jitter_ms: float = 0.0
    ge_loss: Optional["GilbertElliott"] = None

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("trace needs at least one segment")
        if self.segments[0].start_ms != 0.0:
            raise ValueError("first segment must start at 0 ms")
        starts = [s.start_ms for s in self.segments]
        if starts != sorted(starts) or len(set(starts)) != len(starts):
            raise ValueError("segments must be sorted by strictly increasing start_ms")
        if self.loop and self.duration_ms <= self.segments[-1].start_ms:
            raise ValueError(
                "looping trace needs duration_ms past the last segment start"
            )
        if self.jitter_ms < 0:
            raise ValueError(f"jitter_ms must be >= 0, got {self.jitter_ms}")

    def segment_at(self, at_ms: float) -> TraceSegment:
        """The segment governing instant ``at_ms``."""
        if at_ms < 0:
            raise ValueError(f"at_ms must be >= 0, got {at_ms}")
        if self.loop:
            at_ms = at_ms % self.duration_ms
        lo, hi = 0, len(self.segments) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.segments[mid].start_ms <= at_ms:
                lo = mid
            else:
                hi = mid - 1
        return self.segments[lo]


@dataclass
class GilbertElliott:
    """Two-state Markov burst-loss model.

    In the *good* state packets are lost with ``p_loss_good``; in the
    *bad* state (a fade) with ``p_loss_bad``. The chain steps once per
    packet: good->bad with ``p_g2b``, bad->good with ``p_b2g``. Mean
    burst length is ``1 / p_b2g`` packets.
    """

    p_g2b: float = 0.01
    p_b2g: float = 0.25
    p_loss_good: float = 0.0
    p_loss_bad: float = 0.5

    def __post_init__(self) -> None:
        for name in ("p_g2b", "p_b2g", "p_loss_good", "p_loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.p_loss_bad >= 1.0 and self.p_b2g == 0.0:
            raise ValueError("absorbing always-lossy bad state never delivers")

    def step(self, in_bad: bool, rng: np.random.Generator) -> Tuple[bool, float]:
        """Advance one packet; returns (new state, loss prob in it)."""
        if in_bad:
            in_bad = rng.random() >= self.p_b2g
        else:
            in_bad = rng.random() < self.p_g2b
        return in_bad, self.p_loss_bad if in_bad else self.p_loss_good


class TraceDrivenLink(NetworkLink):
    """A :class:`NetworkLink` whose conditions follow a :class:`LinkTrace`.

    ``transmit(size, at_ms=t)`` resolves bandwidth/propagation/loss from
    the trace at ``t``, adds seeded exponential jitter to propagation,
    and — when the trace carries a Gilbert–Elliott model — steps the
    burst chain once per packet so losses cluster. The conditions used
    for the last call are published in :attr:`last_transmit_meta` (the
    session layer copies them into the frame's network span metadata).
    """

    def __init__(self, trace: LinkTrace, seed: int = 0) -> None:
        first = trace.segments[0]
        super().__init__(
            bandwidth_mbps=first.bandwidth_mbps,
            propagation_ms=first.propagation_ms,
            loss_rate=first.loss_rate,
            seed=seed,
        )
        self.trace = trace
        self.seed = seed
        self._ge_bad = False
        self._packet_loss_rate = first.loss_rate
        self.last_transmit_meta: Dict[str, object] = {}

    def _conditions_at(self, at_ms: float) -> Tuple[float, float, float]:
        segment = self.trace.segment_at(max(0.0, at_ms))
        propagation = segment.propagation_ms
        jitter = 0.0
        if self.trace.jitter_ms > 0.0:
            jitter = float(self._rng.exponential(self.trace.jitter_ms))
            propagation += jitter
        # Mirror the instantaneous conditions onto the plain-link attrs
        # so serialization_ms()/propagation_ms reads stay coherent, and
        # publish them for span metadata.
        self.bandwidth_mbps = segment.bandwidth_mbps
        self.propagation_ms = propagation
        self.loss_rate = segment.loss_rate
        self._packet_loss_rate = segment.loss_rate
        self.last_transmit_meta = {
            "scenario": self.trace.name,
            "at_ms": round(float(at_ms), 6),
            "bandwidth_mbps": segment.bandwidth_mbps,
            "propagation_ms": round(propagation, 6),
            "jitter_ms": round(jitter, 6),
            "loss_rate": segment.loss_rate,
            "burst_state": "bad" if self._ge_bad else "good",
        }
        return segment.bandwidth_mbps, propagation, segment.loss_rate

    def _lose_packets(self, n_outstanding: int, loss_rate: float) -> np.ndarray:
        ge = self.trace.ge_loss
        if ge is None:
            return super()._lose_packets(n_outstanding, loss_rate)
        mask = np.empty(n_outstanding, dtype=bool)
        for i in range(n_outstanding):
            self._ge_bad, p_state = ge.step(self._ge_bad, self._rng)
            # Independent fade loss on top of the schedule's baseline.
            p_total = 1.0 - (1.0 - loss_rate) * (1.0 - p_state)
            mask[i] = p_total > 0.0 and self._rng.random() < p_total
        self.last_transmit_meta["burst_state"] = "bad" if self._ge_bad else "good"
        return mask

    def reset(self) -> None:
        """Rewind RNG and burst state so a replay is bit-identical."""
        self._rng = np.random.default_rng(self.seed)
        self._ge_bad = False
        first = self.trace.segments[0]
        self.bandwidth_mbps = first.bandwidth_mbps
        self.propagation_ms = first.propagation_ms
        self.loss_rate = first.loss_rate
        self.last_transmit_meta = {}


def _steady(name, bandwidth, propagation, loss=0.0, jitter=0.0, ge=None):
    return LinkTrace(
        name=name,
        segments=(TraceSegment(0.0, bandwidth, propagation, loss),),
        jitter_ms=jitter,
        ge_loss=ge,
    )


def _wifi_stable() -> LinkTrace:
    """Uncontended home WiFi: the paper's nominal 80 Mbps downlink."""
    return _steady("wifi_stable", 80.0, 8.0, jitter=0.3)


def _wifi_congested() -> LinkTrace:
    """Shared-AP WiFi: periodic dips when a neighbor stream kicks in."""
    return LinkTrace(
        name="wifi_congested",
        segments=(
            TraceSegment(0.0, 60.0, 9.0, 0.005),
            TraceSegment(2_000.0, 22.0, 14.0, 0.02),
            TraceSegment(5_000.0, 48.0, 10.0, 0.01),
            TraceSegment(8_000.0, 16.0, 18.0, 0.03),
            TraceSegment(11_000.0, 55.0, 9.0, 0.005),
        ),
        loop=True,
        duration_ms=14_000.0,
        jitter_ms=1.5,
    )


def _lte_walk() -> LinkTrace:
    """Pedestrian LTE: gentle bandwidth swings, bursty fading loss."""
    return LinkTrace(
        name="lte_walk",
        segments=(
            TraceSegment(0.0, 28.0, 22.0, 0.01),
            TraceSegment(3_000.0, 18.0, 28.0, 0.02),
            TraceSegment(6_000.0, 34.0, 20.0, 0.005),
            TraceSegment(9_000.0, 12.0, 32.0, 0.03),
        ),
        loop=True,
        duration_ms=12_000.0,
        jitter_ms=2.0,
        ge_loss=GilbertElliott(p_g2b=0.004, p_b2g=0.2, p_loss_bad=0.4),
    )


def _lte_drive() -> LinkTrace:
    """Vehicular LTE: handovers gut the link for a stretch, then recover.

    The bursty cellular worst case: deep outage segments where even a
    heavily downshifted stream barely fits, plus long loss bursts."""
    return LinkTrace(
        name="lte_drive",
        segments=(
            TraceSegment(0.0, 24.0, 26.0, 0.01),
            TraceSegment(1_500.0, 5.0, 45.0, 0.05),
            TraceSegment(3_500.0, 20.0, 28.0, 0.01),
            TraceSegment(6_000.0, 3.5, 55.0, 0.08),
            TraceSegment(8_500.0, 26.0, 24.0, 0.01),
        ),
        loop=True,
        duration_ms=10_500.0,
        jitter_ms=4.0,
        ge_loss=GilbertElliott(p_g2b=0.01, p_b2g=0.12, p_loss_bad=0.5),
    )


def _5g_mmwave() -> LinkTrace:
    """mmWave 5G: huge bandwidth line-of-sight, cliffs on blockage."""
    return LinkTrace(
        name="5g_mmwave",
        segments=(
            TraceSegment(0.0, 400.0, 6.0, 0.0),
            TraceSegment(4_000.0, 9.0, 30.0, 0.04),
            TraceSegment(5_500.0, 380.0, 6.0, 0.0),
            TraceSegment(9_000.0, 7.0, 34.0, 0.05),
            TraceSegment(10_500.0, 420.0, 6.0, 0.0),
        ),
        loop=True,
        duration_ms=13_000.0,
        jitter_ms=1.0,
        ge_loss=GilbertElliott(p_g2b=0.006, p_b2g=0.15, p_loss_bad=0.45),
    )


_CANNED = {
    "wifi_stable": _wifi_stable,
    "wifi_congested": _wifi_congested,
    "lte_walk": _lte_walk,
    "lte_drive": _lte_drive,
    "5g_mmwave": _5g_mmwave,
}

#: Canned scenario names, in presentation order.
SCENARIO_NAMES: Tuple[str, ...] = tuple(_CANNED)


def synthetic_trace(
    seed: int,
    n_segments: int = 8,
    segment_ms: float = 2_000.0,
    bandwidth_range: Tuple[float, float] = (4.0, 60.0),
    propagation_range: Tuple[float, float] = (8.0, 40.0),
    max_loss: float = 0.05,
    jitter_ms: float = 2.0,
    bursty: bool = True,
) -> LinkTrace:
    """A seeded random-walk cellular trace.

    Bandwidth follows a log-space random walk between the range bounds
    (so dips are proportional, like fading), propagation anti-correlates
    with bandwidth (congested cells queue), and loss scales with how
    close the walk sits to the floor.
    """
    if n_segments < 1:
        raise ValueError(f"n_segments must be >= 1, got {n_segments}")
    rng = np.random.default_rng(seed)
    lo, hi = bandwidth_range
    log_lo, log_hi = np.log(lo), np.log(hi)
    level = rng.uniform(0.3, 0.9)  # position in log-bandwidth range
    segments: List[TraceSegment] = []
    for i in range(n_segments):
        level = float(np.clip(level + rng.normal(0.0, 0.22), 0.0, 1.0))
        bandwidth = float(np.exp(log_lo + level * (log_hi - log_lo)))
        p_lo, p_hi = propagation_range
        propagation = float(p_lo + (1.0 - level) * (p_hi - p_lo))
        loss = float(max_loss * (1.0 - level) ** 2)
        segments.append(
            TraceSegment(i * segment_ms, bandwidth, propagation, loss)
        )
    return LinkTrace(
        name=f"synthetic:{seed}",
        segments=tuple(segments),
        loop=True,
        duration_ms=n_segments * segment_ms,
        jitter_ms=jitter_ms,
        ge_loss=GilbertElliott(p_g2b=0.006, p_b2g=0.18, p_loss_bad=0.45)
        if bursty
        else None,
    )


def available_scenarios() -> Tuple[str, ...]:
    """Canned scenario names plus the ``synthetic:<seed>`` form."""
    return SCENARIO_NAMES + ("synthetic:<seed>",)


def build_scenario(name: str, seed: int = 0) -> TraceDrivenLink:
    """A :class:`TraceDrivenLink` for a canned or synthetic scenario.

    ``name`` is one of :data:`SCENARIO_NAMES` or ``synthetic:<seed>``
    (the embedded seed shapes the trace; ``seed`` still drives the
    per-packet loss RNG).
    """
    if name.startswith("synthetic:"):
        tail = name.split(":", 1)[1]
        try:
            trace_seed = int(tail)
        except ValueError:
            raise ValueError(
                f"synthetic scenario needs an integer seed, got {name!r}"
            ) from None
        return TraceDrivenLink(synthetic_trace(trace_seed), seed=seed)
    try:
        factory = _CANNED[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(available_scenarios())}"
        ) from None
    return TraceDrivenLink(factory(), seed=seed)
