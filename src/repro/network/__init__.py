"""Network substrate: lossy finite-bandwidth link with packetization,
plus trace-driven time-varying scenarios (LTE/5G/WiFi)."""

from .link import MTU_BYTES, NetworkLink, TransmitResult, packet_sizes
from .trace import (
    SCENARIO_NAMES,
    GilbertElliott,
    LinkTrace,
    TraceDrivenLink,
    TraceSegment,
    available_scenarios,
    build_scenario,
    synthetic_trace,
)

__all__ = [
    "MTU_BYTES",
    "NetworkLink",
    "TransmitResult",
    "packet_sizes",
    "SCENARIO_NAMES",
    "GilbertElliott",
    "LinkTrace",
    "TraceSegment",
    "TraceDrivenLink",
    "available_scenarios",
    "build_scenario",
    "synthetic_trace",
]
