"""Network substrate: lossy finite-bandwidth link with packetization."""

from .link import MTU_BYTES, NetworkLink, TransmitResult

__all__ = ["MTU_BYTES", "NetworkLink", "TransmitResult"]
