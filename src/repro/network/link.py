"""Network link model: bandwidth, propagation, packetization, loss.

Models the WiFi downlink between streaming server and mobile client. The
paper's motivation (Sec. II-A) is that 2K streams exceed what mobile
links sustain — the characterization study it cites saw 44-90 % frame
drops. :class:`NetworkLink` reproduces that mechanism: frames are
packetized, each packet takes serialization + propagation time, random
loss forces retransmission, and a frame *drops* when it misses its
display deadline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TransmitResult", "NetworkLink", "MTU_BYTES"]

#: Ethernet/WiFi payload MTU used for packetization.
MTU_BYTES = 1400


@dataclass(frozen=True)
class TransmitResult:
    """Outcome of transmitting one frame."""

    latency_ms: float
    n_packets: int
    n_retransmissions: int
    dropped: bool


class NetworkLink:
    """A lossy, finite-bandwidth downlink."""

    def __init__(
        self,
        bandwidth_mbps: float = 80.0,
        propagation_ms: float = 8.0,
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_mbps}")
        if propagation_ms < 0:
            raise ValueError(f"propagation must be >= 0, got {propagation_ms}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.bandwidth_mbps = bandwidth_mbps
        self.propagation_ms = propagation_ms
        self.loss_rate = loss_rate
        self._rng = np.random.default_rng(seed)

    def serialization_ms(self, size_bytes: int) -> float:
        """Time to clock ``size_bytes`` onto the link."""
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {size_bytes}")
        return size_bytes * 8 / (self.bandwidth_mbps * 1e3)

    def transmit(
        self, size_bytes: int, deadline_ms: float = float("inf")
    ) -> TransmitResult:
        """Send one frame; it drops if delivery misses ``deadline_ms``.

        Lost packets are retransmitted (adding one RTT each); a frame is
        only displayable once every packet has arrived.
        """
        n_packets = max(1, -(-size_bytes // MTU_BYTES))
        latency = self.serialization_ms(size_bytes) + self.propagation_ms
        retransmissions = 0
        if self.loss_rate > 0.0:
            lost = int(self._rng.binomial(n_packets, self.loss_rate))
            # Retransmit rounds until everything is through.
            while lost > 0:
                retransmissions += lost
                latency += 2 * self.propagation_ms + self.serialization_ms(
                    lost * MTU_BYTES
                )
                lost = int(self._rng.binomial(lost, self.loss_rate))
        return TransmitResult(
            latency_ms=latency,
            n_packets=n_packets,
            n_retransmissions=retransmissions,
            dropped=latency > deadline_ms,
        )

    def stream_drop_rate(
        self,
        frame_bytes: int,
        fps: float = 60.0,
        n_frames: int = 600,
        buffer_frames: float = 2.0,
    ) -> float:
        """Fraction of frames dropped when streaming at ``fps``.

        A frame drops when its delivery lags the display deadline
        (``buffer_frames`` periods of slack), including queueing behind
        earlier frames on the serialized link.
        """
        if fps <= 0 or n_frames < 1:
            raise ValueError("fps and n_frames must be positive")
        period = 1000.0 / fps
        deadline_slack = buffer_frames * period
        queue_free_at = 0.0
        drops = 0
        for i in range(n_frames):
            arrival = i * period
            start = max(arrival, queue_free_at)
            result = self.transmit(frame_bytes)
            finish = start + result.latency_ms
            queue_free_at = finish - self.propagation_ms
            if finish > arrival + deadline_slack:
                drops += 1
        return drops / n_frames
