"""Network link model: bandwidth, propagation, packetization, loss.

Models the WiFi downlink between streaming server and mobile client. The
paper's motivation (Sec. II-A) is that 2K streams exceed what mobile
links sustain — the characterization study it cites saw 44-90 % frame
drops. :class:`NetworkLink` reproduces that mechanism: frames are
packetized, each packet takes serialization + propagation time, random
loss forces retransmission, and a frame *drops* when it misses its
display deadline.

:meth:`NetworkLink.transmit` is *time-aware*: the optional ``at_ms``
argument names the instant the frame enters the link. The static base
link ignores it (conditions never change), but
:class:`~repro.network.trace.TraceDrivenLink` looks up bandwidth, RTT,
and loss from a :class:`~repro.network.trace.LinkTrace` at that instant,
which is how the time-varying LTE/5G/WiFi scenarios are driven.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TransmitResult", "NetworkLink", "MTU_BYTES", "packet_sizes"]

#: Ethernet/WiFi payload MTU used for packetization.
MTU_BYTES = 1400


def packet_sizes(size_bytes: int) -> np.ndarray:
    """Per-packet byte sizes of one packetized frame.

    ``size_bytes // MTU_BYTES`` full packets plus a partial tail packet
    when the frame does not divide evenly — the tail's *actual* size is
    what retransmission serialization must charge (losing a 200-byte
    tail does not re-clock 1400 bytes).
    """
    if size_bytes < 0:
        raise ValueError(f"size_bytes must be >= 0, got {size_bytes}")
    n_packets = max(1, -(-size_bytes // MTU_BYTES))
    sizes = np.full(n_packets, MTU_BYTES, dtype=np.int64)
    sizes[-1] = size_bytes - (n_packets - 1) * MTU_BYTES
    return sizes


@dataclass(frozen=True)
class TransmitResult:
    """Outcome of transmitting one frame.

    ``serialization_ms`` is the total time the link spent clocking bytes
    (first transmission + every retransmission round), i.e. how long the
    frame *occupies* the serialized link. ``latency_ms`` adds the
    byte-independent propagation components (one downlink propagation
    plus one RTT per retransmission round), which overlap with other
    frames' serialization and must never be charged to link occupancy.
    """

    latency_ms: float
    n_packets: int
    n_retransmissions: int
    dropped: bool
    serialization_ms: float = 0.0

    @property
    def propagation_total_ms(self) -> float:
        """Byte-independent share of the delivery latency."""
        return self.latency_ms - self.serialization_ms


class NetworkLink:
    """A lossy, finite-bandwidth downlink."""

    def __init__(
        self,
        bandwidth_mbps: float = 80.0,
        propagation_ms: float = 8.0,
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_mbps}")
        if propagation_ms < 0:
            raise ValueError(f"propagation must be >= 0, got {propagation_ms}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.bandwidth_mbps = bandwidth_mbps
        self.propagation_ms = propagation_ms
        self.loss_rate = loss_rate
        self._rng = np.random.default_rng(seed)

    def serialization_ms(self, size_bytes: int) -> float:
        """Time to clock ``size_bytes`` onto the link."""
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {size_bytes}")
        return size_bytes * 8 / (self.bandwidth_mbps * 1e3)

    # -- per-call conditions (overridden by the trace-driven link) -------
    def _conditions_at(self, at_ms: float) -> tuple[float, float, float]:
        """(bandwidth_mbps, propagation_ms, loss_rate) at instant ``at_ms``."""
        return self.bandwidth_mbps, self.propagation_ms, self.loss_rate

    def _lose_packets(self, n_outstanding: int, loss_rate: float) -> np.ndarray:
        """Boolean lost-mask over the outstanding packets of one round."""
        if loss_rate <= 0.0:
            return np.zeros(n_outstanding, dtype=bool)
        return self._rng.random(n_outstanding) < loss_rate

    def transmit(
        self,
        size_bytes: int,
        deadline_ms: float = float("inf"),
        at_ms: float = 0.0,
    ) -> TransmitResult:
        """Send one frame at instant ``at_ms``; it drops past ``deadline_ms``.

        Lost packets are retransmitted (adding one RTT each round); a
        frame is only displayable once every packet has arrived. Loss is
        drawn per packet, so a retransmission round serializes the
        *actual* byte sizes of the packets it lost — a partial tail
        packet re-clocks only its own bytes.
        """
        sizes = packet_sizes(size_bytes)
        n_packets = int(sizes.size)
        bandwidth, propagation, loss_rate = self._conditions_at(at_ms)
        serialization = size_bytes * 8 / (bandwidth * 1e3)
        latency = serialization + propagation
        retransmissions = 0
        outstanding = sizes
        while outstanding.size:
            lost = outstanding[self._lose_packets(outstanding.size, loss_rate)]
            if lost.size == 0:
                break
            retransmissions += int(lost.size)
            round_ser = int(lost.sum()) * 8 / (bandwidth * 1e3)
            serialization += round_ser
            latency += 2 * propagation + round_ser
            outstanding = lost
        return TransmitResult(
            latency_ms=latency,
            n_packets=n_packets,
            n_retransmissions=retransmissions,
            dropped=latency > deadline_ms,
            serialization_ms=serialization,
        )

    def stream_drop_rate(
        self,
        frame_bytes: int,
        fps: float = 60.0,
        n_frames: int = 600,
        buffer_frames: float = 2.0,
    ) -> float:
        """Fraction of frames dropped when streaming at ``fps``.

        A frame drops when its delivery lags the display deadline
        (``buffer_frames`` periods of slack), including queueing behind
        earlier frames on the serialized link. Only serialization time
        occupies the link: propagation (including each retransmission
        round's RTT) is in-flight air time that overlaps the next
        frame's bytes, so it never extends the busy window.
        """
        if fps <= 0 or n_frames < 1:
            raise ValueError("fps and n_frames must be positive")
        period = 1000.0 / fps
        deadline_slack = buffer_frames * period
        queue_free_at = 0.0
        drops = 0
        for i in range(n_frames):
            arrival = i * period
            start = max(arrival, queue_free_at)
            result = self.transmit(frame_bytes, at_ms=start)
            finish = start + result.latency_ms
            queue_free_at = start + result.serialization_ms
            if finish > arrival + deadline_slack:
                drops += 1
        return drops / n_frames
