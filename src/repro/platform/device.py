"""Mobile client device profiles (paper Sec. V-A platforms).

A :class:`DeviceProfile` captures everything the framework needs to know
about a client: display geometry (for foveal RoI sizing, Sec. IV-B1),
component latency coefficients, and component power draws. The two
built-in profiles model the paper's evaluation devices:

* ``samsung_tab_s8`` — Samsung Galaxy Tab S8 (Snapdragon 8 Gen 1, Hexagon
  tensor processor, 11" 2560x1600 @ 274 PPI);
* ``pixel_7_pro`` — Google Pixel 7 Pro (Tensor G2, edge TPU, 6.7"
  3120x1440 @ 512 PPI).

All numeric constants live in :mod:`repro.platform.calibration` together
with the paper anchor each one reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from . import calibration as cal

__all__ = ["DeviceProfile", "DisplaySpec", "samsung_tab_s8", "pixel_7_pro", "DEVICES", "get_device"]


@dataclass(frozen=True)
class DisplaySpec:
    """Physical display geometry used by the foveal-RoI math."""

    width_px: int
    height_px: int
    ppi: float
    refresh_hz: float = 60.0

    def __post_init__(self) -> None:
        if self.width_px < 1 or self.height_px < 1:
            raise ValueError("display dimensions must be positive")
        if self.ppi <= 0:
            raise ValueError(f"ppi must be positive, got {self.ppi}")


@dataclass(frozen=True)
class DeviceProfile:
    """A mobile client: display + latency coefficients + component powers."""

    name: str
    display: DisplaySpec
    #: Typical viewing distance in cm (tablet ~30, phone ~25; Sec. IV-B1).
    viewing_distance_cm: float

    # --- NPU latency model: t(px) = npu_a * px * (1 + px / npu_sat) ------
    npu_a_ms_per_px: float
    npu_sat_px: float

    # --- other latency coefficients (ms and ms/pixel) --------------------
    gpu_bilinear_ms_per_px: float
    gpu_bilinear_base_ms: float
    cpu_bilinear_ms_per_px: float
    cpu_warp_ms_per_px: float
    hw_decode_ms_per_px: float
    hw_decode_base_ms: float
    sw_decode_ms_per_px: float
    sw_decode_base_ms: float
    display_present_ms: float
    merge_ms_per_px: float

    # --- component power draws (watts) -----------------------------------
    npu_power_w: float
    gpu_power_w: float
    cpu_power_w: float
    hw_decoder_power_w: float
    network_rx_power_w: float
    composition_power_w: float
    camera_eyetracking_power_w: float

    # --- defaulted extensions (appended so existing construction sites
    # --- and keyword overrides keep working unchanged) -------------------
    #: GPU block-motion warp of an HR frame (GOP-reuse path).
    gpu_warp_ms_per_px: float = cal.GPU_WARP_MS_PER_PX
    #: SR model-zoo anchors (repro.sr.backends): per-model scale factors
    #: on the EDSR NPU latency curve, int8 power derating, CPU bicubic.
    fsrcnn_npu_latency_scale: float = cal.FSRCNN_NPU_LATENCY_SCALE
    quicksrnet_npu_latency_scale: float = cal.QUICKSRNET_NPU_LATENCY_SCALE
    edsr_int8_npu_latency_scale: float = cal.EDSR_INT8_NPU_LATENCY_SCALE
    edsr_int8_npu_power_scale: float = cal.EDSR_INT8_NPU_POWER_SCALE
    cpu_bicubic_ms_per_px: float = cal.CPU_BICUBIC_MS_PER_PX

    def with_overrides(self, **kwargs) -> "DeviceProfile":
        """A copy with selected fields replaced (for ablations)."""
        return replace(self, **kwargs)


def samsung_tab_s8() -> DeviceProfile:
    """Samsung Galaxy Tab S8 profile (Snapdragon 8 Gen 1 + Hexagon)."""
    return DeviceProfile(
        name="samsung_tab_s8",
        display=DisplaySpec(2560, 1600, ppi=cal.S8_TAB_PPI),
        viewing_distance_cm=cal.TABLET_VIEWING_DISTANCE_CM,
        npu_a_ms_per_px=cal.S8_NPU_A_MS_PER_PX,
        npu_sat_px=cal.S8_NPU_SAT_PX,
        gpu_bilinear_ms_per_px=cal.GPU_BILINEAR_MS_PER_PX,
        gpu_bilinear_base_ms=cal.GPU_BILINEAR_BASE_MS,
        cpu_bilinear_ms_per_px=cal.CPU_BILINEAR_MS_PER_PX,
        cpu_warp_ms_per_px=cal.CPU_WARP_MS_PER_PX,
        hw_decode_ms_per_px=cal.HW_DECODE_MS_PER_PX,
        hw_decode_base_ms=cal.HW_DECODE_BASE_MS,
        sw_decode_ms_per_px=cal.SW_DECODE_MS_PER_PX,
        sw_decode_base_ms=cal.SW_DECODE_BASE_MS,
        display_present_ms=cal.DISPLAY_PRESENT_MS,
        merge_ms_per_px=cal.MERGE_MS_PER_PX,
        npu_power_w=cal.S8_NPU_POWER_W,
        gpu_power_w=cal.S8_GPU_POWER_W,
        cpu_power_w=cal.S8_CPU_POWER_W,
        hw_decoder_power_w=cal.S8_HW_DECODER_POWER_W,
        network_rx_power_w=cal.NETWORK_RX_POWER_W,
        composition_power_w=cal.S8_COMPOSITION_POWER_W,
        camera_eyetracking_power_w=cal.CAMERA_EYETRACKING_POWER_W,
    )


def pixel_7_pro() -> DeviceProfile:
    """Google Pixel 7 Pro profile (Tensor G2 + edge TPU)."""
    return DeviceProfile(
        name="pixel_7_pro",
        display=DisplaySpec(3120, 1440, ppi=cal.PIXEL7_PPI),
        viewing_distance_cm=cal.PHONE_VIEWING_DISTANCE_CM,
        npu_a_ms_per_px=cal.PIXEL_NPU_A_MS_PER_PX,
        npu_sat_px=cal.PIXEL_NPU_SAT_PX,
        gpu_bilinear_ms_per_px=cal.GPU_BILINEAR_MS_PER_PX,
        gpu_bilinear_base_ms=cal.GPU_BILINEAR_BASE_MS,
        cpu_bilinear_ms_per_px=cal.CPU_BILINEAR_MS_PER_PX,
        cpu_warp_ms_per_px=cal.CPU_WARP_MS_PER_PX,
        hw_decode_ms_per_px=cal.HW_DECODE_MS_PER_PX,
        hw_decode_base_ms=cal.HW_DECODE_BASE_MS,
        sw_decode_ms_per_px=cal.SW_DECODE_MS_PER_PX,
        sw_decode_base_ms=cal.SW_DECODE_BASE_MS,
        display_present_ms=cal.DISPLAY_PRESENT_MS,
        merge_ms_per_px=cal.MERGE_MS_PER_PX,
        npu_power_w=cal.PIXEL_NPU_POWER_W,
        gpu_power_w=cal.PIXEL_GPU_POWER_W,
        cpu_power_w=cal.PIXEL_CPU_POWER_W,
        hw_decoder_power_w=cal.PIXEL_HW_DECODER_POWER_W,
        network_rx_power_w=cal.NETWORK_RX_POWER_W,
        composition_power_w=cal.PIXEL_COMPOSITION_POWER_W,
        camera_eyetracking_power_w=cal.CAMERA_EYETRACKING_POWER_W,
    )


DEVICES: Dict[str, "DeviceProfile"] = {}
# reprolint: disable-file=fork-safety -- DEVICES is a lazy memo of the deterministic built-in profiles; every process rebuilds identical content from calibration constants


def get_device(name: str) -> DeviceProfile:
    """Look up a built-in device profile by name."""
    if not DEVICES:
        DEVICES["samsung_tab_s8"] = samsung_tab_s8()
        DEVICES["pixel_7_pro"] = pixel_7_pro()
    try:
        return DEVICES[name]
    except KeyError:
        raise ValueError(
            f"unknown device {name!r}; choose from {sorted(DEVICES)}"
        ) from None
