"""Calibration constants for the analytical device model, with paper anchors.

Every constant here is tied to a number the paper publishes; derived
coefficients show their derivation inline. Resolutions follow the paper:
input 720p (1280x720 = 921,600 px), output 1440p/2K, upscale factor 2,
RoI window 300x300 = 90,000 px (Sec. IV-B1, Fig. 9).

NPU latency model
-----------------
``t(px) = a * px * (1 + px / sat)`` — linear in pixels with a saturation
term modelling on-chip-memory pressure at large feature maps. Two anchors
per device pin (a, sat):

* Samsung Tab S8:  t(90,000) = 16.2 ms (Fig. 9) and t(921,600) = 217.4 ms
  (reference-frame rate 4.6 FPS, Sec. V-B "Frame rate").
* Pixel 7 Pro:     t(90,000) = 16.4 ms (Fig. 10c) and t(921,600) = 232.6 ms
  (reference-frame rate 4.3 FPS).

Energy accounting
-----------------
Fig. 12 reports *streaming-pipeline* energy (decode / upscale /
network+display-overhead components). The paper's shares are mutually
consistent (ours: upscale 85 %, decode 6 %, rest 9 %; SOTA: decode 46 %;
overall savings 26 % S8 / 33 % Pixel; "our upscaling energy is slightly
higher than SOTA's") only if NEMO's HR warp+add reconstruction is counted
as *decode* energy (it happens inside NEMO's modified decoder) while its
latency belongs to the non-reference *upscaling stage* (the paper
attributes the 1.6x non-reference speedup to skipping MV/residual
upscaling + reconstruction). We adopt exactly that accounting; see
``tests/platform/test_energy.py`` for the consistency checks.
"""

from __future__ import annotations

# reprolint: disable-file=public-api -- constants-only module; __all__ is
# computed from globals() at the bottom, which the static pass cannot see.
__all__ = [name for name in dir() if name.isupper()]  # re-filled at bottom

# ----------------------------------------------------------------------
# Resolutions & timing targets (Sec. II, IV)
REALTIME_DEADLINE_MS = 16.66  # 60 FPS frame budget
TARGET_FPS = 60.0
INPUT_720P_PX = 1280 * 720  # 921,600
OUTPUT_1440P_PX = 2560 * 1440
ROI_WINDOW_SIDE_PX = 300  # max real-time RoI side (Sec. IV-B1)
ROI_WINDOW_PX = ROI_WINDOW_SIDE_PX**2
MTP_BUDGET_MS = 150.0  # cloud-gaming tolerance (Sec. V-B)
MTP_FAST_PACED_MS = 100.0  # fast-paced genres

# ----------------------------------------------------------------------
# Display geometry (Sec. IV-B1)
S8_TAB_PPI = 274.0  # GSMArena, cited by the paper
PIXEL7_PPI = 512.0
TABLET_VIEWING_DISTANCE_CM = 30.0  # typical mobile viewing distance [106]
PHONE_VIEWING_DISTANCE_CM = 25.0  # phones are held closer (Sec. IV-B1 note)
FOVEAL_VISUAL_ANGLE_DEG = 6.0  # human foveal angle 5-6 deg [16]

# ----------------------------------------------------------------------
# NPU latency model coefficients (derivation in module docstring)
# S8: R = 217.4/16.2 = 13.42, px ratio P = 10.24
#     sat = (921600 - (R/P)*90000) / ((R/P) - 1) = 2,589,124 px
#     a   = 16.2 / (90000 * (1 + 90000/sat)) = 1.7396e-4 ms/px
S8_NPU_SAT_PX = 2_589_124.0
S8_NPU_A_MS_PER_PX = 1.7396e-4
# Pixel: R = 232.6/16.4 = 14.18 -> sat = 2,071,123 px, a = 1.7462e-4
PIXEL_NPU_SAT_PX = 2_071_123.0
PIXEL_NPU_A_MS_PER_PX = 1.7462e-4

# ----------------------------------------------------------------------
# GPU bilinear upscaling (Fig. 9: non-RoI region of a 720p frame,
# 921,600 - 90,000 = 831,600 input px, takes 1.4 ms on the S8 GPU).
GPU_BILINEAR_BASE_MS = 0.2
GPU_BILINEAR_MS_PER_PX = (1.4 - GPU_BILINEAR_BASE_MS) / 831_600  # 1.443e-6

# CPU bilinear (NEMO's MV + residual upscaling path, Sec. V-B: the
# non-reference "upscaling stage" totals ~25 ms = 1.5x our 16.2 ms;
# 10 ms of it is the bilinear residual upscale, 15 ms the HR warp+add).
CPU_BILINEAR_MS_PER_PX = 10.0 / INPUT_720P_PX  # 1.085e-5 ms per input px
CPU_WARP_MS_PER_PX = 15.0 / (INPUT_720P_PX * 4)  # HR reconstruction

# Decoders (720p frame). NEMO must use libvpx on the CPU (Sec. V-A);
# our design uses the hardware decoder.
HW_DECODE_BASE_MS = 0.5
HW_DECODE_MS_PER_PX = (3.0 - HW_DECODE_BASE_MS) / INPUT_720P_PX
SW_DECODE_BASE_MS = 1.0
SW_DECODE_MS_PER_PX = (10.5 - SW_DECODE_BASE_MS) / INPUT_720P_PX

# Client-side merge of the upscaled RoI into the HR framebuffer and
# display submission (Fig. 9 / Fig. 10c "display" tail).
MERGE_MS_PER_PX = 0.4 / OUTPUT_1440P_PX  # GPU copy of the merged frame

# GPU block-motion warp of the previous HR frame (GOP-reuse path): a
# gather at one indirect read + one write per output pixel. Sized at 2x
# the sequential merge copy — the indirection defeats the linear
# prefetcher but the access pattern stays block-coherent, so it remains
# a bandwidth-bound texture op (~0.8 ms for a full 1440p canvas), far
# from the CPU warp's 15 ms.
GPU_WARP_MS_PER_PX = 2.0 * MERGE_MS_PER_PX
DISPLAY_PRESENT_MS = 12.0  # average vsync wait + composition at 60 Hz

# ----------------------------------------------------------------------
# Server-side stage latencies (Fig. 10c left stages; high-end desktop
# GPU server, Sec. V-A) and network (high-speed WiFi).
SERVER_INPUT_SAMPLING_MS = 8.0  # input capture + uplink propagation
SERVER_GAME_LOGIC_MS = 4.0
SERVER_RENDER_720P_MS = 5.0
SERVER_ENCODE_720P_MS = 3.0
SERVER_ROI_DETECT_MS = 0.8  # GPU compute-shader RoI pass (Sec. IV-B2)
NETWORK_PROPAGATION_MS = 8.0  # downlink air latency (WiFi)
NETWORK_BANDWIDTH_MBPS = 80.0

# Server GPU utilization anchor (Sec. IV-B2): 79 % at 1440p -> 52 % at
# 720p rendering+encoding. Power-law fit u = c * px^k:
#   k = ln(79/52) / ln(4) = 0.3018,  c = 52 / 921600^0.3018 = 0.8186
SERVER_GPU_UTIL_EXP = 0.3018
SERVER_GPU_UTIL_COEF = 52.0 / (921_600**0.3018)

# ----------------------------------------------------------------------
# Component powers (watts). Calibrated so the Fig. 11/12 energy shapes
# hold: Pixel — ours {upscale 85 %, decode 6 %, other 9 %}, SOTA decode
# 46 %, savings 33 %; S8 — savings 26 % (larger-panel overhead).
PIXEL_NPU_POWER_W = 2.5
PIXEL_GPU_POWER_W = 1.5
PIXEL_CPU_POWER_W = 2.5  # big-core cluster during sw decode / bilinear
PIXEL_HW_DECODER_POWER_W = 1.0
PIXEL_COMPOSITION_POWER_W = 1.2
PIXEL_DISPLAY_OVERHEAD_MJ_PER_FRAME = 3.2  # streaming-attributable panel+net
S8_NPU_POWER_W = 2.8
S8_GPU_POWER_W = 1.8
S8_CPU_POWER_W = 2.6
S8_HW_DECODER_POWER_W = 1.0
S8_COMPOSITION_POWER_W = 1.4
S8_DISPLAY_OVERHEAD_MJ_PER_FRAME = 14.0  # larger tablet panel (Sec. V-B)
NETWORK_RX_POWER_W = 0.8
#: Memory-bound HR warp+add inside NEMO's modified decoder (energy side).
RECON_POWER_W = 0.8
#: Camera-based eye tracking draw measured on the Pixel 7 Pro (Sec. III-A).
CAMERA_EYETRACKING_POWER_W = 2.8

# ----------------------------------------------------------------------
# SR model-zoo anchors (repro.sr.backends). Alternative nets run on the
# same NPU anchor curve t(px) = a*px*(1+px/sat) scaled by a per-model
# factor tied to the related work's reported mobile speedups:
#   * FSRCNN-style: ~3.3x faster than EDSR-class nets on mobile DSPs
#     (MobiSR Table 2 reports its compact models at 0.25-0.35x the
#     latency of the full model on the Hexagon DSP).
#   * QuickSRNet: plain conv stacks fuse into one pipelined NPU graph;
#     Berger et al. 2023 (Fig. 1) place QuickSRNet-small at ~5.5x the
#     throughput of repVGG-class SR baselines on a mobile accelerator.
#   * int8 EDSR: NAWQ-SR Sec. 5 reports ~1.8x latency reduction for
#     hybrid-precision execution vs FP16 on the same NPU, at ~0.7x the
#     power (int8 MACs toggle less datapath per op).
FSRCNN_NPU_LATENCY_SCALE = 0.30
QUICKSRNET_NPU_LATENCY_SCALE = 0.18
EDSR_INT8_NPU_LATENCY_SCALE = 0.55
EDSR_INT8_NPU_POWER_SCALE = 0.70
# CPU bicubic: 4x4 taps vs bilinear's 2x2 but the separable filter
# reuses row passes, so ~2.5x the per-pixel cost rather than 4x.
CPU_BICUBIC_MS_PER_PX = 2.5 * CPU_BILINEAR_MS_PER_PX

# Per-device display/network overhead bucket (mJ per frame), equal across
# designs by construction ("display and network processing energies do
# not vary", Sec. V-B).
DISPLAY_OVERHEAD_MJ = {
    "pixel_7_pro": PIXEL_DISPLAY_OVERHEAD_MJ_PER_FRAME,
    "samsung_tab_s8": S8_DISPLAY_OVERHEAD_MJ_PER_FRAME,
}

__all__ = [name for name in list(globals()) if name.isupper()]
