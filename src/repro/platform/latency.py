"""Latency models for every pipeline stage (client and server).

All functions return milliseconds. Client-side coefficients come from the
:class:`~repro.platform.device.DeviceProfile`; server/network constants
live in :mod:`repro.platform.calibration` with their paper anchors.
"""

from __future__ import annotations

from . import calibration as cal
from .device import DeviceProfile

__all__ = [
    "npu_sr_latency_ms",
    "gpu_bilinear_ms",
    "gpu_warp_ms",
    "cpu_bilinear_ms",
    "cpu_bicubic_ms",
    "cpu_warp_ms",
    "decode_ms",
    "merge_ms",
    "display_present_ms",
    "server_render_ms",
    "server_encode_ms",
    "server_game_logic_ms",
    "server_input_ms",
    "server_roi_detect_ms",
    "server_gpu_utilization",
    "transmission_ms",
]


def _check_pixels(pixels: float) -> float:
    if pixels < 0:
        raise ValueError(f"pixel count must be >= 0, got {pixels}")
    return float(pixels)


def npu_sr_latency_ms(input_pixels: float, device: DeviceProfile) -> float:
    """DNN super-resolution latency on the device NPU/TPU.

    Saturating-linear model ``a * px * (1 + px / sat)`` calibrated against
    the paper's 300x300 RoI and full-720p anchors (see calibration.py).
    """
    px = _check_pixels(input_pixels)
    return device.npu_a_ms_per_px * px * (1.0 + px / device.npu_sat_px)


def gpu_bilinear_ms(input_pixels: float, device: DeviceProfile) -> float:
    """Hardware bilinear (GL_LINEAR) upscale latency on the mobile GPU."""
    px = _check_pixels(input_pixels)
    if px == 0:
        return 0.0
    return device.gpu_bilinear_base_ms + device.gpu_bilinear_ms_per_px * px


def cpu_bilinear_ms(input_pixels: float, device: DeviceProfile) -> float:
    """Software bilinear upscale latency on the CPU (NEMO's MV/residual path)."""
    return device.cpu_bilinear_ms_per_px * _check_pixels(input_pixels)


def cpu_bicubic_ms(input_pixels: float, device: DeviceProfile) -> float:
    """Software bicubic upscale latency on the CPU (4x4 separable filter)."""
    return device.cpu_bicubic_ms_per_px * _check_pixels(input_pixels)


def cpu_warp_ms(output_pixels: float, device: DeviceProfile) -> float:
    """HR motion-compensated warp + add on the CPU (NEMO reconstruction)."""
    return device.cpu_warp_ms_per_px * _check_pixels(output_pixels)


def decode_ms(pixels: float, device: DeviceProfile, hardware: bool = True) -> float:
    """Frame decode latency; hardware decoder vs software (libvpx-on-CPU)."""
    px = _check_pixels(pixels)
    if hardware:
        return device.hw_decode_base_ms + device.hw_decode_ms_per_px * px
    return device.sw_decode_base_ms + device.sw_decode_ms_per_px * px


def merge_ms(output_pixels: float, device: DeviceProfile) -> float:
    """GPU copy merging the upscaled RoI into the HR framebuffer (Fig. 9)."""
    return device.merge_ms_per_px * _check_pixels(output_pixels)


def gpu_warp_ms(output_pixels: float, device: DeviceProfile) -> float:
    """GPU block-motion warp of the previous HR frame (GOP-reuse path)."""
    return device.gpu_warp_ms_per_px * _check_pixels(output_pixels)


def display_present_ms(device: DeviceProfile) -> float:
    """Average vsync wait + composition before the frame lights up."""
    return device.display_present_ms


# ----------------------------------------------------------------------
# server + network


def server_input_ms() -> float:
    """User-input capture and uplink to the server."""
    return cal.SERVER_INPUT_SAMPLING_MS


def server_game_logic_ms() -> float:
    """Game-engine world-state evaluation (Fig. 1a step-1)."""
    return cal.SERVER_GAME_LOGIC_MS


def server_render_ms(pixels: float = cal.INPUT_720P_PX) -> float:
    """Server GPU frame rendering, scaled from the 720p anchor."""
    return cal.SERVER_RENDER_720P_MS * _check_pixels(pixels) / cal.INPUT_720P_PX


def server_encode_ms(pixels: float = cal.INPUT_720P_PX) -> float:
    """Server hardware encoder, scaled from the 720p anchor."""
    return cal.SERVER_ENCODE_720P_MS * _check_pixels(pixels) / cal.INPUT_720P_PX


def server_roi_detect_ms() -> float:
    """Depth-map preprocessing + RoI search on server GPU shaders."""
    return cal.SERVER_ROI_DETECT_MS


def server_gpu_utilization(pixels: float) -> float:
    """Server GPU utilization (%) for render+encode at a given resolution.

    Power-law fit through the paper's anchors: 79 % at 1440p, 52 % at 720p
    on a GTX 3080 Ti (Sec. IV-B2).
    """
    px = _check_pixels(pixels)
    return min(100.0, cal.SERVER_GPU_UTIL_COEF * px**cal.SERVER_GPU_UTIL_EXP)


def transmission_ms(
    size_bytes: int, bandwidth_mbps: float = cal.NETWORK_BANDWIDTH_MBPS
) -> float:
    """Downlink transfer time: serialization at ``bandwidth_mbps`` + air."""
    if size_bytes < 0:
        raise ValueError(f"size_bytes must be >= 0, got {size_bytes}")
    if bandwidth_mbps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_mbps}")
    serialization = size_bytes * 8 / (bandwidth_mbps * 1e3)  # bits / (bits/ms)
    return cal.NETWORK_PROPAGATION_MS + serialization
