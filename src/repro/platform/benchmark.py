"""On-device capability probe (paper Fig. 6 step-1).

At session start, GameStreamSR benchmarks the client's NPU to find the
*maximum* RoI window the chosen SR model can upscale within the real-time
deadline (Sec. IV-B1 "Maximum RoI Window Size"). Here the probe queries
the calibrated latency model instead of a physical NPU, but exposes the
same contract: given a device and a deadline, return the largest square
window side (in pixels) that still meets the deadline.
"""

from __future__ import annotations

from . import calibration as cal
from .device import DeviceProfile
from .latency import npu_sr_latency_ms

__all__ = ["max_realtime_roi_side", "probe_latency_curve"]


def max_realtime_roi_side(
    device: DeviceProfile,
    deadline_ms: float = cal.REALTIME_DEADLINE_MS,
    max_side: int = 4096,
) -> int:
    """Largest square RoI side whose NPU upscale fits in ``deadline_ms``.

    Binary search over the monotone latency model — the analytic analogue
    of running the TFLite benchmark tool at increasing input sizes.
    """
    if deadline_ms <= 0:
        raise ValueError(f"deadline must be positive, got {deadline_ms}")
    lo, hi = 0, max_side
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if npu_sr_latency_ms(mid * mid, device) <= deadline_ms:
            lo = mid
        else:
            hi = mid - 1
    return lo


def probe_latency_curve(
    device: DeviceProfile, sides: list[int]
) -> list[tuple[int, float]]:
    """(side, latency_ms) samples of the NPU model — the Fig. 3b style sweep."""
    return [(side, npu_sr_latency_ms(side * side, device)) for side in sides]
