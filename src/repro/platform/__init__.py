"""Calibrated analytical models of the paper's mobile client platforms.

Substitutes the Samsung Galaxy Tab S8 / Pixel 7 Pro hardware: per-stage
latency and per-component power models pinned to every anchor the paper
publishes (see calibration.py for the anchor-by-anchor derivation).
"""

from . import calibration
from .benchmark import max_realtime_roi_side, probe_latency_curve
from .device import DeviceProfile, DisplaySpec, get_device, pixel_7_pro, samsung_tab_s8
from .energy import Component, EnergyBreakdown, component_power_w, overhead_mj, stage_energy_mj
from .eyetracking import EyeTrackingCost, eyetracking_cost
from .latency import (
    cpu_bicubic_ms,
    cpu_bilinear_ms,
    cpu_warp_ms,
    decode_ms,
    display_present_ms,
    gpu_bilinear_ms,
    merge_ms,
    npu_sr_latency_ms,
    server_encode_ms,
    server_game_logic_ms,
    server_gpu_utilization,
    server_input_ms,
    server_render_ms,
    server_roi_detect_ms,
    transmission_ms,
)

__all__ = [
    "Component",
    "DeviceProfile",
    "DisplaySpec",
    "EnergyBreakdown",
    "EyeTrackingCost",
    "calibration",
    "component_power_w",
    "cpu_bicubic_ms",
    "cpu_bilinear_ms",
    "cpu_warp_ms",
    "decode_ms",
    "display_present_ms",
    "eyetracking_cost",
    "get_device",
    "gpu_bilinear_ms",
    "max_realtime_roi_side",
    "merge_ms",
    "npu_sr_latency_ms",
    "overhead_mj",
    "pixel_7_pro",
    "probe_latency_curve",
    "samsung_tab_s8",
    "server_encode_ms",
    "server_game_logic_ms",
    "server_gpu_utilization",
    "server_input_ms",
    "server_render_ms",
    "server_roi_detect_ms",
    "stage_energy_mj",
    "transmission_ms",
]
