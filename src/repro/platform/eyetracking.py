"""Camera-based eye-tracking cost model (the rejected direct approach).

Sec. III-A argues against camera-based gaze tracking on phones: the
paper's profiling shows a Pixel 7 Pro draws an **extra 2.8 W** running
front-camera eye tracking during streaming. This module quantifies that
alternative so the motivation comparison (and its ablation bench) can be
reproduced: energy per frame and added battery drain relative to the
depth-guided server-side RoI detection (which costs the client nothing).
"""

from __future__ import annotations

from dataclasses import dataclass

from . import calibration as cal
from .device import DeviceProfile

__all__ = ["EyeTrackingCost", "eyetracking_cost"]


@dataclass(frozen=True)
class EyeTrackingCost:
    """Per-frame and per-hour cost of on-device camera gaze tracking."""

    power_w: float
    energy_per_frame_mj: float
    energy_per_hour_j: float
    battery_drain_pct_per_hour: float


def eyetracking_cost(
    device: DeviceProfile,
    fps: float = cal.TARGET_FPS,
    battery_wh: float = 19.0,
) -> EyeTrackingCost:
    """Cost of running camera-based eye tracking continuously.

    ``battery_wh`` defaults to a Pixel-7-Pro-class 5000 mAh / 3.85 V pack.
    """
    if fps <= 0:
        raise ValueError(f"fps must be positive, got {fps}")
    if battery_wh <= 0:
        raise ValueError(f"battery_wh must be positive, got {battery_wh}")
    power = device.camera_eyetracking_power_w
    per_frame_mj = power * 1e3 / fps
    per_hour_j = power * 3600.0
    drain_pct = per_hour_j / (battery_wh * 3600.0) * 100.0
    return EyeTrackingCost(
        power_w=power,
        energy_per_frame_mj=per_frame_mj,
        energy_per_hour_j=per_hour_j,
        battery_drain_pct_per_hour=drain_pct,
    )
