"""Energy accounting for the client streaming pipeline (Fig. 11/12).

Energy is integrated as component-power x stage-time over the stages a
client executes per frame, plus a fixed per-frame display/network
overhead bucket that is identical across designs (the paper notes display
and network energies do not vary between GameStreamSR and SOTA).

Component taxonomy follows Fig. 12: ``decode``, ``upscale``, ``network``,
``display`` (composition/panel overhead). NEMO's HR warp+add
reconstruction is charged to *decode* (it runs inside NEMO's modified
decoder) even though its latency belongs to the upscaling stage — see the
accounting note in :mod:`repro.platform.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Mapping

from . import calibration as cal
from .device import DeviceProfile

__all__ = ["Component", "EnergyBreakdown", "component_power_w", "stage_energy_mj", "overhead_mj"]


class Component(str, Enum):
    """Hardware units that draw power during a stage."""

    NPU = "npu"
    GPU = "gpu"
    CPU = "cpu"
    HW_DECODER = "hw_decoder"
    RECON_MEMORY = "recon_memory"  # memory-bound warp inside NEMO decode
    NETWORK_RX = "network_rx"
    COMPOSITION = "composition"


def component_power_w(device: DeviceProfile, component: Component) -> float:
    """Active power draw of ``component`` on ``device`` in watts."""
    table = {
        Component.NPU: device.npu_power_w,
        Component.GPU: device.gpu_power_w,
        Component.CPU: device.cpu_power_w,
        Component.HW_DECODER: device.hw_decoder_power_w,
        Component.RECON_MEMORY: cal.RECON_POWER_W,
        Component.NETWORK_RX: device.network_rx_power_w,
        Component.COMPOSITION: device.composition_power_w,
    }
    return table[component]


def stage_energy_mj(device: DeviceProfile, component: Component, ms: float) -> float:
    """Energy in millijoules for running ``component`` for ``ms``."""
    if ms < 0:
        raise ValueError(f"stage time must be >= 0, got {ms}")
    return component_power_w(device, component) * ms  # W * ms = mJ


def overhead_mj(device: DeviceProfile) -> float:
    """Fixed per-frame display/network overhead bucket (mJ)."""
    return cal.DISPLAY_OVERHEAD_MJ[device.name]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-frame (or per-GOP average) energy by Fig. 12 category, in mJ."""

    decode: float
    upscale: float
    network: float
    display: float

    @property
    def total(self) -> float:
        return self.decode + self.upscale + self.network + self.display

    def shares(self) -> Dict[str, float]:
        """Fractional share of each category (sums to 1)."""
        total = self.total
        if total <= 0:
            raise ValueError("cannot compute shares of zero total energy")
        return {
            "decode": self.decode / total,
            "upscale": self.upscale / total,
            "network": self.network / total,
            "display": self.display / total,
        }

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.decode + other.decode,
            self.upscale + other.upscale,
            self.network + other.network,
            self.display + other.display,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.decode * factor,
            self.upscale * factor,
            self.network * factor,
            self.display * factor,
        )

    @staticmethod
    def mean(items: Iterable["EnergyBreakdown"]) -> "EnergyBreakdown":
        items = list(items)
        if not items:
            raise ValueError("cannot average an empty breakdown list")
        total = items[0]
        for item in items[1:]:
            total = total + item
        return total.scaled(1.0 / len(items))
