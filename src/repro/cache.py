"""Content-addressed artifact cache for experiments and trained weights.

Rendered sequences, trained SR weights, and session results are expensive
to rebuild in pure numpy, so they are cached under ``.cache/`` at the
repository root (override with ``REPRO_CACHE_DIR``), keyed by a hash of
the generating configuration. Deleting the directory is always safe.

Set ``REPRO_CACHE_DISABLE=1`` to bypass the cache entirely (neither read
nor written) — the escape hatch the hotpath benchmarks use to time cold
builds.
"""

from __future__ import annotations

import functools
import hashlib
import json
import logging
import os
import pickle
from pathlib import Path
from typing import Any, Callable

_logger = logging.getLogger(__name__)

__all__ = [
    "cache_dir",
    "cache_disabled",
    "config_key",
    "artifact_path",
    "memoize",
    "load_or_build",
]


def cache_dir() -> Path:
    """The cache root (created on demand)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        root = Path(override)
    else:
        # src/repro/cache.py -> repo root is three levels up.
        root = Path(__file__).resolve().parents[2] / ".cache"
    root.mkdir(parents=True, exist_ok=True)
    return root


def cache_disabled() -> bool:
    """Whether ``REPRO_CACHE_DISABLE`` requests a cache bypass."""
    return os.environ.get("REPRO_CACHE_DISABLE", "").strip() in ("1", "true", "yes")


def config_key(config: Any) -> str:
    """Stable short hash of a JSON-serializable configuration."""
    blob = json.dumps(config, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def artifact_path(name: str, config: Any, subdir: str = "artifacts") -> Path:
    """Where :func:`load_or_build` stores the artifact for (name, config)."""
    return cache_dir() / subdir / f"{name}-{config_key(config)}.pkl"


def load_or_build(
    name: str, config: Any, builder: Callable[[], Any], subdir: str = "artifacts"
) -> Any:
    """Return the cached artifact for (name, config), building if absent."""
    if cache_disabled():
        return builder()
    path = artifact_path(name, config, subdir=subdir)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.exists():
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except (pickle.UnpicklingError, EOFError, AttributeError, OSError) as exc:
            # Truncated/corrupt artifact (e.g. an interrupted writer before
            # writes went through atomic os.replace): rebuild it.
            _logger.warning(
                "corrupt cache artifact %s (%s: %s); rebuilding",
                path,
                type(exc).__name__,
                exc,
            )
            path.unlink(missing_ok=True)
    artifact = builder()
    # Unique temp name per process: parallel session workers write through
    # this cache concurrently and must never interleave into one file.
    tmp = path.with_suffix(f".{os.getpid()}.tmp")
    with tmp.open("wb") as fh:
        pickle.dump(artifact, fh)
    tmp.replace(path)
    return artifact


def memoize(name: str, subdir: str = "artifacts") -> Callable:
    """Decorator caching a zero-side-effect builder keyed by its kwargs."""

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(**kwargs):
            return load_or_build(name, kwargs, lambda: fn(**kwargs), subdir=subdir)

        return wrapper

    return decorate
