"""Content-addressed artifact cache for experiments and trained weights.

Rendered sequences, trained SR weights, and session results are expensive
to rebuild in pure numpy, so they are cached under ``.cache/`` at the
repository root (override with ``REPRO_CACHE_DIR``), keyed by a hash of
the generating configuration. Deleting the directory is always safe.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Callable

__all__ = ["cache_dir", "config_key", "memoize", "load_or_build"]


def cache_dir() -> Path:
    """The cache root (created on demand)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        root = Path(override)
    else:
        # src/repro/cache.py -> repo root is three levels up.
        root = Path(__file__).resolve().parents[2] / ".cache"
    root.mkdir(parents=True, exist_ok=True)
    return root


def config_key(config: Any) -> str:
    """Stable short hash of a JSON-serializable configuration."""
    blob = json.dumps(config, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def load_or_build(
    name: str, config: Any, builder: Callable[[], Any], subdir: str = "artifacts"
) -> Any:
    """Return the cached artifact for (name, config), building if absent."""
    directory = cache_dir() / subdir
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}-{config_key(config)}.pkl"
    if path.exists():
        with path.open("rb") as fh:
            return pickle.load(fh)
    artifact = builder()
    tmp = path.with_suffix(".tmp")
    with tmp.open("wb") as fh:
        pickle.dump(artifact, fh)
    tmp.replace(path)
    return artifact


def memoize(name: str, subdir: str = "artifacts") -> Callable:
    """Decorator caching a zero-side-effect builder keyed by its kwargs."""

    def decorate(fn: Callable) -> Callable:
        def wrapper(**kwargs):
            return load_or_build(name, kwargs, lambda: fn(**kwargs), subdir=subdir)

        wrapper.__name__ = fn.__name__
        wrapper.__doc__ = fn.__doc__
        return wrapper

    return decorate
