"""Runtime ndarray contracts for the pipeline seams.

PRs 1-4 established dtype/shape invariants by hand (float32 no-grad
inference, float64 frozen-baseline RoI/codec arithmetic, (H, W, 3)
frames in [0, 1]); this module makes them executable at the seams where
arrays change hands: detector, depth preprocessing, Algorithm-1 search,
encoder/decoder, SR runner, and the streaming client/server pipeline.

Usage::

    from repro.contracts import shaped

    @shaped(frame="H W 3:f32", depth="H W:f32")
    def preprocess(frame, depth): ...

Checks run only when ``REPRO_CONTRACTS=1`` is set in the environment
(CI and the test suite turn it on). When disabled — the default —
``shaped`` returns the decorated function **unchanged**: no wrapper, no
per-call overhead, byte-identical behavior.

Spec mini-grammar
-----------------
A spec is ``DIMS[:DTYPE]`` with alternatives separated by ``|``::

    "H W 3:f32"        # rank 3, trailing dim exactly 3, float32
    "H W:n"            # rank 2, any numeric dtype
    "H W:n|H W C:n"    # rank 2 or rank 3 (grayscale-or-color seams)
    "N 2:i"            # rank 2, any integer dtype

* ``DIMS`` is a space-separated list; each token is an integer literal
  (exact size), an uppercase identifier (a dimension variable bound on
  first use and required to match on every later use — across arguments
  of the same call), or ``*`` (any size).
* ``DTYPE`` is one of the exact codes ``f16 f32 f64 u8 i8 i16 i32 i64
  b`` or a kind code: ``f`` (any float), ``i`` (any signed int), ``u``
  (any unsigned int), ``n`` (any numeric). Omitted means any dtype.
* A leading ``?`` (e.g. ``"?H W:f32"`` on any alternative) allows the
  argument to be ``None``.

Float arrays are additionally checked for finiteness (NaN/Inf are
always a contract violation at a seam).

Violations raise :class:`ContractViolation` (a ``TypeError``) naming
the function, the argument, the expected spec, and the actual
shape/dtype.
"""

from __future__ import annotations

import inspect
import os
from dataclasses import dataclass
from functools import wraps
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "ContractViolation",
    "ArraySpec",
    "DTYPE_CODES",
    "KIND_CODES",
    "contracts_enabled",
    "parse_spec",
    "shaped",
    "checked",
    "expect",
]


class ContractViolation(TypeError, ValueError):
    """An ndarray failed a :func:`shaped`/:func:`expect` contract.

    Subclasses both ``TypeError`` (it is a type-level breach) and
    ``ValueError`` (the seams it guards historically raised ValueError
    for bad shapes, and callers/tests catch that), so enabling contracts
    never changes which ``except``/``pytest.raises`` clauses match.
    """


#: Exact dtype codes of the spec grammar.
DTYPE_CODES: Dict[str, np.dtype] = {
    "f16": np.dtype(np.float16),
    "f32": np.dtype(np.float32),
    "f64": np.dtype(np.float64),
    "u8": np.dtype(np.uint8),
    "u16": np.dtype(np.uint16),
    "u32": np.dtype(np.uint32),
    "u64": np.dtype(np.uint64),
    "i8": np.dtype(np.int8),
    "i16": np.dtype(np.int16),
    "i32": np.dtype(np.int32),
    "i64": np.dtype(np.int64),
    "b": np.dtype(np.bool_),
}

#: Kind codes: spec token -> accepted ``np.dtype.kind`` characters.
KIND_CODES: Dict[str, str] = {
    "f": "f",
    "i": "i",
    "u": "u",
    "n": "fiu",
}


def contracts_enabled() -> bool:
    """True when ``REPRO_CONTRACTS`` is set to anything but ``''``/``0``."""
    return os.environ.get("REPRO_CONTRACTS", "0") not in ("", "0")


@dataclass(frozen=True)
class ArraySpec:
    """One parsed alternative of a contract spec string."""

    dims: Tuple[object, ...]  # int | str (dim variable) | "*"
    dtype: Optional[str]  # key of DTYPE_CODES / KIND_CODES, or None
    allow_none: bool = False

    def describe(self) -> str:
        dims = " ".join(str(d) for d in self.dims)
        out = f"{dims}:{self.dtype}" if self.dtype else dims
        return f"?{out}" if self.allow_none else out


def _parse_alternative(text: str) -> ArraySpec:
    text = text.strip()
    allow_none = text.startswith("?")
    if allow_none:
        text = text[1:].strip()
    if not text:
        raise ValueError("empty contract alternative")
    dims_part, sep, dtype_part = text.partition(":")
    dtype = dtype_part.strip() if sep else None
    if sep and dtype not in DTYPE_CODES and dtype not in KIND_CODES:
        raise ValueError(
            f"unknown dtype code {dtype!r} (expected one of "
            f"{sorted(DTYPE_CODES)} or {sorted(KIND_CODES)})"
        )
    dims: list[object] = []
    for token in dims_part.split():
        if token == "*" or token == "_":
            dims.append("*")
        elif token.isdigit():
            dims.append(int(token))
        elif token.isidentifier():
            dims.append(token)
        else:
            raise ValueError(f"bad dimension token {token!r} in spec {text!r}")
    if not dims:
        raise ValueError(f"spec {text!r} has no dimensions")
    return ArraySpec(dims=tuple(dims), dtype=dtype, allow_none=allow_none)


def parse_spec(text: str) -> Tuple[ArraySpec, ...]:
    """Parse ``"H W 3:f32|H W:f32"`` into a tuple of alternatives."""
    if not isinstance(text, str):
        raise TypeError(f"contract spec must be a string, got {type(text).__name__}")
    alternatives = tuple(_parse_alternative(alt) for alt in text.split("|"))
    return alternatives


def _dtype_ok(dtype: np.dtype, code: Optional[str]) -> bool:
    if code is None:
        return True
    exact = DTYPE_CODES.get(code)
    if exact is not None:
        return dtype == exact
    return dtype.kind in KIND_CODES[code]


def _match_alternative(
    spec: ArraySpec, array: np.ndarray, env: Dict[str, int]
) -> Optional[str]:
    """Return an error string, or None on success (committing dim bindings)."""
    shape = array.shape
    if len(shape) != len(spec.dims):
        return f"rank {len(shape)} != expected rank {len(spec.dims)}"
    trial: Dict[str, int] = {}
    for dim, size in zip(spec.dims, shape):
        if dim == "*":
            continue
        if isinstance(dim, int):
            if size != dim:
                return f"dimension {dim} expected, got {size}"
        else:
            bound = env.get(dim, trial.get(dim))
            if bound is None:
                trial[str(dim)] = size
            elif bound != size:
                return f"dimension {dim}={bound} already bound, got {size}"
    if not _dtype_ok(array.dtype, spec.dtype):
        return f"dtype {array.dtype} does not satisfy :{spec.dtype}"
    if array.dtype.kind == "f" and array.size and not np.isfinite(array).all():
        bad = int(np.size(array) - np.count_nonzero(np.isfinite(array)))
        return f"{bad} non-finite value(s)"
    env.update(trial)
    return None


def _check_value(
    where: str,
    name: str,
    value: Any,
    alternatives: Tuple[ArraySpec, ...],
    env: Dict[str, int],
) -> None:
    if value is None:
        if any(alt.allow_none for alt in alternatives):
            return
        raise ContractViolation(
            f"contract violation in {where}: argument {name!r} is None "
            f"but spec {'|'.join(a.describe() for a in alternatives)} "
            "does not allow it"
        )
    array = value if isinstance(value, np.ndarray) else np.asarray(value)
    errors = []
    for alt in alternatives:
        scratch = dict(env)
        err = _match_alternative(alt, array, scratch)
        if err is None:
            env.update(scratch)
            return
        errors.append(f"[{alt.describe()}] {err}")
    spec_text = "|".join(a.describe() for a in alternatives)
    raise ContractViolation(
        f"contract violation in {where}: argument {name!r} expected "
        f"{spec_text}, got shape {tuple(array.shape)} dtype {array.dtype} "
        f"({'; '.join(errors)})"
    )


def expect(value: Any, spec: str, name: str = "value", where: str = "expect") -> Any:
    """Imperative form: validate ``value`` against ``spec`` and return it.

    A cheap no-op (one env lookup) when contracts are disabled — for hot
    seams that build values mid-function rather than receiving them as
    arguments (e.g. the streaming client's upscale output).
    """
    if not contracts_enabled():
        return value
    _check_value(where, name, value, parse_spec(spec), {})
    return value


def checked(func: Callable, specs: Dict[str, str]) -> Callable:
    """Always-on wrapper around ``func`` (what :func:`shaped` applies when
    contracts are enabled; exposed separately so tests can exercise the
    checking logic without touching the environment)."""
    signature = inspect.signature(func)
    unknown = set(specs) - set(signature.parameters)
    if unknown:
        raise ValueError(
            f"@shaped on {func.__qualname__}: spec names {sorted(unknown)} "
            "are not parameters of the function"
        )
    parsed = {name: parse_spec(text) for name, text in specs.items()}
    where = func.__qualname__

    @wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        bound = signature.bind(*args, **kwargs)
        env: Dict[str, int] = {}
        for name, alternatives in parsed.items():
            if name in bound.arguments:
                _check_value(where, name, bound.arguments[name], alternatives, env)
        return func(*args, **kwargs)

    wrapper.__repro_contract__ = dict(specs)  # type: ignore[attr-defined]
    return wrapper


def shaped(**specs: str) -> Callable[[Callable], Callable]:
    """Declare per-argument ndarray contracts on a function.

    With ``REPRO_CONTRACTS`` unset (the default) the decorator is an
    identity: it returns the function object it was given, so disabled
    mode adds literally zero call overhead. With contracts enabled it
    validates every spec'd argument on every call, binding dimension
    variables across arguments (``psnr(reference="H W", test="H W")``
    requires both frames to agree).
    """
    if not contracts_enabled():
        def passthrough(func: Callable) -> Callable:
            return func

        return passthrough

    def decorate(func: Callable) -> Callable:
        return checked(func, specs)

    return decorate
