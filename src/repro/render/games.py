"""Ten synthetic game workloads (paper Table I substitutes).

Each builder returns a :class:`GameWorkload` — a named, genre-matched
animated scene standing in for the commercial title the paper streams
(G1 Metro Exodus ... G10 Forza Horizon 5). The scenes are designed to
exercise the properties GameStreamSR depends on:

* a textured foreground subject near the screen centre (player focus),
* distant low-detail background (mipmap LOD),
* a foreground/background valley in the depth histogram, and
* frame-to-frame camera/object motion for the codec's motion estimation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from .camera import Camera
from .math3d import compose, rotation_y, scaling, translation
from .mesh import Mesh, box, cone, cylinder, plane, sphere, terrain
from .rasterizer import RenderOutput
from .scene import Scene
from .shading import DirectionalLight, Material

__all__ = ["GameWorkload", "build_game", "all_games", "GAME_BUILDERS", "GAME_TABLE"]

#: Paper Table I: (id, title, genre).
GAME_TABLE: List[tuple[str, str, str]] = [
    ("G1", "Metro Exodus", "First Person Shooter"),
    ("G2", "Far Cry 5", "Third Person Shooter"),
    ("G3", "Witcher 3", "Role playing"),
    ("G4", "Red Dead Redemption 2", "Action"),
    ("G5", "Grand Theft Auto V", "Adventure"),
    ("G6", "God of War", "Action-adventure"),
    ("G7", "Shadow of the Tomb Raider", "Survival"),
    ("G8", "A Plague Tale: Requiem", "Stealth"),
    ("G9", "Farming Simulator 22", "Simulation"),
    ("G10", "Forza Horizon 5", "Racing"),
]


@dataclass
class GameWorkload:
    """A synthetic stand-in for one of the paper's game benchmarks."""

    game_id: str
    title: str
    genre: str
    scene: Scene
    camera_speed: float = 1.0  # world units per second of forward motion

    def render_frame(self, frame_index: int, width: int, height: int, fps: float = 60.0) -> RenderOutput:
        """Render frame ``frame_index`` of a ``fps`` stream."""
        if frame_index < 0:
            raise ValueError(f"frame_index must be >= 0, got {frame_index}")
        return self.scene.render_frame(frame_index / fps, width, height)

    def render_sequence(
        self, n_frames: int, width: int, height: int, fps: float = 60.0
    ) -> List[RenderOutput]:
        return [self.render_frame(i, width, height, fps) for i in range(n_frames)]


# ----------------------------------------------------------------------
# shared mesh assemblies


def _tree(height: float = 3.0) -> Mesh:
    trunk = cylinder(0.12 * height / 3, height * 0.4, segments=6)
    crown = cone(height * 0.35, height * 0.7, segments=7).transformed(
        translation(0, height * 0.35, 0)
    )
    return trunk.merged_with(crown)


def _house(width: float = 3.0, depth: float = 3.0, wall_h: float = 2.2) -> Mesh:
    body = box(width, wall_h, depth).transformed(translation(0, wall_h / 2, 0))
    roof = cone(max(width, depth) * 0.75, wall_h * 0.7, segments=4).transformed(
        translation(0, wall_h, 0)
    )
    return body.merged_with(roof)


def _figure(height: float = 1.8) -> Mesh:
    """A humanoid: torso cylinder + head sphere."""
    torso = cylinder(height * 0.16, height * 0.75, segments=8)
    head = sphere(height * 0.14, segments=8, rings=6).transformed(
        translation(0, height * 0.88, 0)
    )
    return torso.merged_with(head)


def _vehicle(length: float = 2.2) -> Mesh:
    body = box(length, length * 0.3, length * 0.45).transformed(
        translation(0, length * 0.22, 0)
    )
    cabin = box(length * 0.5, length * 0.22, length * 0.4).transformed(
        translation(-length * 0.05, length * 0.48, 0)
    )
    return body.merged_with(cabin)


def _rolling_hills(x: np.ndarray, z: np.ndarray) -> np.ndarray:
    return 0.6 * np.sin(x * 0.15) * np.cos(z * 0.12) - 0.2


def _forward_camera(
    start: np.ndarray, direction: np.ndarray, speed: float, look_ahead: float = 8.0,
    bob: float = 0.0, fov_deg: float = 60.0,
) -> Callable[[float], Camera]:
    start = np.asarray(start, dtype=np.float64)
    direction = np.asarray(direction, dtype=np.float64)
    direction = direction / np.linalg.norm(direction)

    def animate(t: float) -> Camera:
        pos = start + direction * speed * t
        if bob:
            pos = pos + np.array([0.0, bob * np.sin(t * 6.0), 0.0])
        return Camera(
            position=pos,
            target=pos + direction * look_ahead,
            fov_y=np.deg2rad(fov_deg),
        )

    return animate


# ----------------------------------------------------------------------
# the ten scenes


def _g1_metro() -> Scene:
    """FPS corridor: tunnel walls, pillars, an enemy figure ahead."""
    scene = Scene("metro_exodus", light=DirectionalLight((-0.2, -1.0, -0.4), 0.9, 0.3))
    wall_mat = Material((0.45, 0.4, 0.36), "bricks", texture_scale=6, detail_strength=0.8, lod_distance=14)
    floor_mat = Material((0.3, 0.3, 0.32), "checker", texture_scale=10, detail_strength=0.4, lod_distance=12)
    enemy_mat = Material((0.55, 0.2, 0.15), "noise", texture_scale=8, detail_strength=0.9, lod_distance=30)
    scene.add(plane(8, 80), floor_mat, translation(0, 0, -30))
    for side in (-1, 1):
        wall = box(0.4, 5, 80).transformed(translation(side * 4, 2.5, -30))
        scene.add(wall, wall_mat)
        for z in range(-60, 10, 10):
            scene.add(cylinder(0.3, 4.5, 8), wall_mat, translation(side * 3.2, 0, z))
    # Enemy ahead of the camera, walking toward it.
    scene.add(
        _figure(1.8),
        enemy_mat,
        animator=lambda t: translation(0.4 * np.sin(t * 2), 0, -14 + 1.5 * t),
    )
    scene.camera_animator = _forward_camera([0, 1.7, 4], [0, 0, -1], speed=1.2, bob=0.03)
    return scene


def _g2_farcry() -> Scene:
    """Third-person: player capsule centre-near, forest around."""
    scene = Scene("far_cry_5")
    ground = terrain(90, 16, _rolling_hills)
    scene.add(ground, Material((0.34, 0.48, 0.24), "grass", texture_scale=22, detail_strength=0.7, lod_distance=10))
    tree_mat = Material((0.25, 0.42, 0.2), "noise", texture_scale=9, detail_strength=0.8, lod_distance=18)
    rng = np.random.default_rng(2)
    for _ in range(14):
        x, z = rng.uniform(-30, 30), rng.uniform(-45, -8)
        if abs(x) < 3:
            x += np.sign(x or 1) * 4
        scene.add(_tree(rng.uniform(2.5, 4.5)), tree_mat, translation(x, 0, z))
    player_mat = Material((0.7, 0.5, 0.25), "stripes", texture_scale=6, detail_strength=0.8, lod_distance=40)
    scene.add(
        _figure(1.8), player_mat,
        animator=lambda t: compose(translation(0, 0.2, -6 - 1.8 * t), rotation_y(0.3 * np.sin(t))),
    )
    scene.camera_animator = _forward_camera([0, 2.6, 0], [0, -0.12, -1], speed=1.8)
    return scene


def _g3_witcher() -> Scene:
    """RPG village: houses, a well, the witcher centre-frame."""
    scene = Scene("witcher_3")
    scene.add(plane(70, 70, 2), Material((0.42, 0.4, 0.28), "grass", texture_scale=18, detail_strength=0.55, lod_distance=11))
    house_mat = Material((0.55, 0.42, 0.3), "bricks", texture_scale=5, detail_strength=0.85, lod_distance=16)
    for x, z, yaw in [(-8, -16, 0.3), (7, -20, -0.4), (-5, -30, 0.9), (10, -33, 0.2), (0, -42, 0.0)]:
        scene.add(_house(4, 4, 2.6), house_mat, compose(translation(x, 0, z), rotation_y(yaw)))
    well = cylinder(0.9, 1.1, 10)
    scene.add(well, Material((0.5, 0.5, 0.52), "marble", texture_scale=4, detail_strength=0.7, lod_distance=20), translation(3.5, 0, -10))
    hero_mat = Material((0.75, 0.72, 0.68), "marble", texture_scale=7, detail_strength=0.9, lod_distance=45)
    scene.add(
        _figure(1.85), hero_mat,
        animator=lambda t: compose(translation(0.6 * np.sin(t * 0.8), 0, -7 - 1.2 * t), rotation_y(t * 0.5)),
    )
    scene.camera_animator = _forward_camera([0, 2.2, 0], [0, -0.1, -1], speed=1.2, bob=0.02)
    return scene


def _g4_rdr2() -> Scene:
    """Western plains: rider centre, mesas far, cacti mid."""
    scene = Scene("red_dead_2", light=DirectionalLight((-0.5, -0.8, -0.2), 1.05, 0.38))
    scene.add(terrain(120, 14, lambda x, z: 0.4 * np.sin(x * 0.08) - 0.1), Material((0.62, 0.5, 0.32), "noise", texture_scale=16, detail_strength=0.6, lod_distance=10))
    mesa_mat = Material((0.58, 0.38, 0.28), "stripes", texture_scale=3, detail_strength=0.5, lod_distance=25)
    for x, z, s in [(-25, -55, 9), (18, -60, 12), (40, -50, 8)]:
        scene.add(box(s, s * 0.55, s * 0.8), mesa_mat, translation(x, s * 0.27, z))
    cactus_mat = Material((0.3, 0.5, 0.25), "noise", texture_scale=10, detail_strength=0.7, lod_distance=15)
    for x, z in [(-6, -14), (8, -22), (-12, -28), (5, -9)]:
        scene.add(cylinder(0.25, 2.2, 6), cactus_mat, translation(x, 0, z))
    horse = _vehicle(2.4).merged_with(_figure(1.4).transformed(translation(0, 0.9, 0)))
    scene.add(
        horse,
        Material((0.4, 0.26, 0.18), "noise", texture_scale=9, detail_strength=0.85, lod_distance=40),
        animator=lambda t: translation(0.3 * np.sin(t), 0.15, -8 - 2.5 * t),
    )
    scene.camera_animator = _forward_camera([0, 2.4, 0], [0, -0.1, -1], speed=2.5)
    return scene


def _g5_gta() -> Scene:
    """City chase: building canyon, hero car centre-near."""
    scene = Scene("gta_v")
    scene.add(plane(16, 140), Material((0.25, 0.25, 0.27), "stripes", texture_scale=30, detail_strength=0.35, lod_distance=14), translation(0, 0, -55))
    bld_mat = Material((0.5, 0.52, 0.58), "bricks", texture_scale=8, detail_strength=0.75, lod_distance=18)
    rng = np.random.default_rng(5)
    for side in (-1, 1):
        for z in range(-110, 0, 14):
            h = rng.uniform(8, 22)
            scene.add(box(8, h, 10), bld_mat, translation(side * 10.5, h / 2, z))
    car_mat = Material((0.75, 0.15, 0.12), "marble", texture_scale=5, detail_strength=0.8, lod_distance=35)
    scene.add(
        _vehicle(2.6), car_mat,
        animator=lambda t: translation(1.1 * np.sin(t * 1.4), 0, -9 - 3.5 * t),
    )
    traffic_mat = Material((0.2, 0.3, 0.6), "noise", texture_scale=5, detail_strength=0.6, lod_distance=25)
    scene.add(_vehicle(2.4), traffic_mat, animator=lambda t: translation(-2.8, 0, -26 - 2.0 * t))
    scene.camera_animator = _forward_camera([0, 2.8, 0], [0, -0.13, -1], speed=3.5, fov_deg=65)
    return scene


def _g6_gow() -> Scene:
    """Temple interior: pillar rows, statue, Kratos centre."""
    scene = Scene("god_of_war", light=DirectionalLight((-0.3, -1.0, -0.1), 0.85, 0.33))
    scene.add(plane(30, 90), Material((0.5, 0.48, 0.45), "marble", texture_scale=8, detail_strength=0.7, lod_distance=13), translation(0, 0, -35))
    pillar_mat = Material((0.6, 0.58, 0.5), "marble", texture_scale=4, detail_strength=0.8, lod_distance=16)
    for side in (-1, 1):
        for z in range(-70, 0, 9):
            scene.add(cylinder(0.8, 9, 9), pillar_mat, translation(side * 7, 0, z))
    statue = sphere(2.2, 10, 7).merged_with(box(3.5, 1.2, 3.5).transformed(translation(0, -2.6, 0)))
    scene.add(statue, pillar_mat, translation(0, 4.2, -45))
    hero_mat = Material((0.72, 0.6, 0.5), "noise", texture_scale=10, detail_strength=0.9, lod_distance=40)
    scene.add(
        _figure(1.9), hero_mat,
        animator=lambda t: compose(translation(0.3 * np.sin(t * 1.1), 0, -6.5 - 1.4 * t), rotation_y(0.2 * np.sin(t * 2))),
    )
    scene.camera_animator = _forward_camera([0, 2.3, 0], [0, -0.08, -1], speed=1.4, bob=0.02)
    return scene


def _g7_tomb_raider() -> Scene:
    """Jungle ruins: overgrown terrain, broken walls, Lara centre."""
    scene = Scene("tomb_raider")
    scene.add(terrain(70, 16, lambda x, z: 0.5 * np.sin(x * 0.2) * np.sin(z * 0.17)), Material((0.28, 0.42, 0.22), "grass", texture_scale=24, detail_strength=0.75, lod_distance=9))
    ruin_mat = Material((0.5, 0.5, 0.42), "bricks", texture_scale=6, detail_strength=0.8, lod_distance=14)
    for x, z, yaw in [(-5, -13, 0.4), (6, -18, -0.7), (-9, -26, 1.1), (2, -34, 0.1)]:
        scene.add(box(4, 3, 0.8), ruin_mat, compose(translation(x, 1.2, z), rotation_y(yaw)))
    jungle_mat = Material((0.22, 0.38, 0.18), "noise", texture_scale=12, detail_strength=0.85, lod_distance=12)
    rng = np.random.default_rng(7)
    for _ in range(10):
        x, z = rng.uniform(-25, 25), rng.uniform(-40, -10)
        if abs(x) < 2.5:
            x += 5
        scene.add(_tree(rng.uniform(3, 5)), jungle_mat, translation(x, 0, z))
    lara_mat = Material((0.45, 0.6, 0.65), "stripes", texture_scale=8, detail_strength=0.85, lod_distance=42)
    scene.add(
        _figure(1.75), lara_mat,
        animator=lambda t: translation(0.5 * np.sin(t * 1.3), 0.3, -6 - 1.5 * t),
    )
    scene.camera_animator = _forward_camera([0, 2.4, 0], [0, -0.12, -1], speed=1.5, bob=0.03)
    return scene


def _g8_plague_tale() -> Scene:
    """Night stealth: dim courtyard, crates, torch-lit figure."""
    scene = Scene(
        "plague_tale",
        light=DirectionalLight((-0.1, -1.0, -0.2), 0.45, 0.22),
        background=(0.08, 0.08, 0.14),
    )
    scene.add(plane(50, 70), Material((0.2, 0.2, 0.23), "checker", texture_scale=14, detail_strength=0.35, lod_distance=10), translation(0, 0, -25))
    crate_mat = Material((0.4, 0.3, 0.2), "bricks", texture_scale=4, detail_strength=0.7, lod_distance=14)
    for x, z in [(-4, -10), (4.5, -13), (-6, -18), (2, -22), (-2, -27)]:
        scene.add(box(1.6, 1.6, 1.6), crate_mat, translation(x, 0.8, z))
    wall_mat = Material((0.3, 0.28, 0.3), "bricks", texture_scale=7, detail_strength=0.6, lod_distance=13)
    for side in (-1, 1):
        scene.add(box(0.6, 4.5, 60), wall_mat, translation(side * 9, 2.2, -25))
    torch_mat = Material((0.95, 0.65, 0.25), "noise", texture_scale=6, detail_strength=0.9, lod_distance=30, unlit=True)
    scene.add(box(0.3, 0.5, 0.3), torch_mat, animator=lambda t: translation(1.8, 1.4 + 0.05 * np.sin(t * 9), -9 - 1.0 * t))
    hero_mat = Material((0.5, 0.45, 0.55), "noise", texture_scale=9, detail_strength=0.85, lod_distance=38)
    scene.add(
        _figure(1.6), hero_mat,
        animator=lambda t: translation(0.4 * np.sin(t * 0.9), 0, -7 - 1.0 * t),
    )
    scene.camera_animator = _forward_camera([0, 2.0, 0], [0, -0.1, -1], speed=1.0, bob=0.015)
    return scene


def _g9_farming() -> Scene:
    """Farm: crop rows, tractor centre, barn far."""
    scene = Scene("farming_sim")
    scene.add(plane(100, 100, 2), Material((0.45, 0.38, 0.22), "stripes", texture_scale=40, detail_strength=0.55, lod_distance=11))
    crop_mat = Material((0.4, 0.55, 0.2), "grass", texture_scale=20, detail_strength=0.8, lod_distance=12)
    for z in range(-45, -5, 5):
        scene.add(box(30, 0.7, 1.2), crop_mat, translation(0, 0.35, z))
    barn_mat = Material((0.6, 0.25, 0.2), "bricks", texture_scale=6, detail_strength=0.6, lod_distance=20)
    scene.add(_house(8, 6, 4), barn_mat, translation(-12, 0, -50))
    tractor_mat = Material((0.2, 0.6, 0.25), "checker", texture_scale=6, detail_strength=0.8, lod_distance=35)
    scene.add(
        _vehicle(3.0), tractor_mat,
        animator=lambda t: translation(0.0, 0.3, -10 - 1.6 * t),
    )
    scene.camera_animator = _forward_camera([0, 3.2, 0], [0, -0.16, -1], speed=1.6)
    return scene


def _g10_forza() -> Scene:
    """Racing: striped track, rival cars ahead, barriers, fast camera."""
    scene = Scene("forza_5")
    scene.add(plane(14, 200), Material((0.22, 0.22, 0.24), "stripes", texture_scale=50, detail_strength=0.5, lod_distance=16), translation(0, 0, -80))
    scene.add(plane(120, 200), Material((0.35, 0.5, 0.28), "grass", texture_scale=30, detail_strength=0.5, lod_distance=10), translation(0, -0.05, -80))
    barrier_mat = Material((0.8, 0.25, 0.2), "checker", texture_scale=12, detail_strength=0.9, lod_distance=20)
    for side in (-1, 1):
        scene.add(box(0.4, 1.0, 180), barrier_mat, translation(side * 7.2, 0.5, -80))
    rival_mat = Material((0.85, 0.75, 0.1), "marble", texture_scale=4, detail_strength=0.85, lod_distance=30)
    scene.add(_vehicle(2.6), rival_mat, animator=lambda t: translation(1.5 * np.sin(t * 2.2), 0, -11 - 6.0 * t))
    scene.add(_vehicle(2.4), Material((0.15, 0.35, 0.7), "noise", texture_scale=5, detail_strength=0.7, lod_distance=25), animator=lambda t: translation(-2.2, 0, -20 - 5.2 * t))
    scene.camera_animator = _forward_camera([0, 1.5, 0], [0, -0.05, -1], speed=6.0, fov_deg=70)
    return scene


GAME_BUILDERS: Dict[str, Callable[[], Scene]] = {
    "G1": _g1_metro,
    "G2": _g2_farcry,
    "G3": _g3_witcher,
    "G4": _g4_rdr2,
    "G5": _g5_gta,
    "G6": _g6_gow,
    "G7": _g7_tomb_raider,
    "G8": _g8_plague_tale,
    "G9": _g9_farming,
    "G10": _g10_forza,
}

_SPEEDS = {"G1": 1.2, "G2": 1.8, "G3": 1.2, "G4": 2.5, "G5": 3.5, "G6": 1.4, "G7": 1.5, "G8": 1.0, "G9": 1.6, "G10": 6.0}


def build_game(game_id: str) -> GameWorkload:
    """Build one of the ten workloads by id (``"G1"`` ... ``"G10"``)."""
    try:
        builder = GAME_BUILDERS[game_id]
    except KeyError:
        raise ValueError(
            f"unknown game id {game_id!r}; choose from {sorted(GAME_BUILDERS)}"
        ) from None
    entry = next(row for row in GAME_TABLE if row[0] == game_id)
    return GameWorkload(
        game_id=game_id,
        title=entry[1],
        genre=entry[2],
        scene=builder(),
        camera_speed=_SPEEDS[game_id],
    )


def all_games() -> List[GameWorkload]:
    """All ten workloads in Table I order."""
    return [build_game(game_id) for game_id, _, _ in GAME_TABLE]
