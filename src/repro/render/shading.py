"""Materials, procedural textures, Lambert lighting, and distance LOD.

The paper's RoI argument rests on a rendering property (Sec. III-B): thanks
to mipmapping, *near* objects are rendered with far more texture detail than
*far* ones, so depth predicts where the recoverable high-frequency detail
lives. :class:`Material` reproduces that: each surface combines a base
albedo with a procedural detail texture whose contribution is attenuated
with view distance exactly like a mip-chain fading out high frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = [
    "Material",
    "DirectionalLight",
    "checker",
    "stripes",
    "bricks",
    "value_noise",
    "marble",
    "grass_detail",
    "TEXTURES",
    "TextureFn",
]

TextureFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _hash01(ix: np.ndarray, iy: np.ndarray, seed: int = 0) -> np.ndarray:
    """Deterministic integer-lattice hash into [0, 1)."""
    with np.errstate(over="ignore"):
        h = (
            ix.astype(np.int64).astype(np.uint64) * np.uint64(374761393)
            + iy.astype(np.int64).astype(np.uint64) * np.uint64(668265263)
            + np.uint64(seed % (1 << 32)) * np.uint64(1442695040888963407)
        )
        h = (h ^ (h >> np.uint64(13))) * np.uint64(1274126177)
        h = h ^ (h >> np.uint64(16))
    return (h & np.uint64(0x7FFFFFFF)) / np.float64(0x7FFFFFFF)


def value_noise(u: np.ndarray, v: np.ndarray, seed: int = 0) -> np.ndarray:
    """Smooth value noise in [0, 1] over the (u, v) lattice."""
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    iu, iv = np.floor(u), np.floor(v)
    fu, fv = u - iu, v - iv
    # Smoothstep interpolation weights.
    wu = fu * fu * (3 - 2 * fu)
    wv = fv * fv * (3 - 2 * fv)
    n00 = _hash01(iu, iv, seed)
    n10 = _hash01(iu + 1, iv, seed)
    n01 = _hash01(iu, iv + 1, seed)
    n11 = _hash01(iu + 1, iv + 1, seed)
    top = n00 * (1 - wu) + n10 * wu
    bot = n01 * (1 - wu) + n11 * wu
    return top * (1 - wv) + bot * wv


def _fbm(u: np.ndarray, v: np.ndarray, octaves: int = 3, seed: int = 0) -> np.ndarray:
    """Fractional Brownian motion: octave-summed value noise in [0, 1]."""
    total = np.zeros_like(np.asarray(u, dtype=np.float64))
    amplitude, norm = 1.0, 0.0
    for octave in range(octaves):
        total += amplitude * value_noise(
            np.asarray(u) * 2**octave, np.asarray(v) * 2**octave, seed + octave
        )
        norm += amplitude
        amplitude *= 0.5
    return total / norm


def checker(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Binary checkerboard in {0, 1}."""
    return ((np.floor(u) + np.floor(v)) % 2).astype(np.float64)


def stripes(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Soft vertical stripes in [0, 1]."""
    del v
    return 0.5 + 0.5 * np.sin(2 * np.pi * np.asarray(u, dtype=np.float64))


def bricks(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Brick pattern: mortar lines score 0, brick faces ~1 with noise."""
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    row = np.floor(v)
    u_shifted = u + 0.5 * (row % 2)
    fu = u_shifted - np.floor(u_shifted)
    fv = v - row
    mortar = (fu < 0.05) | (fv < 0.1)
    face = 0.8 + 0.2 * value_noise(u_shifted * 7, v * 7, seed=3)
    return np.where(mortar, 0.15, face)


def marble(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Marble veins: sine distorted by fbm."""
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    turbulence = _fbm(u * 2, v * 2, octaves=3, seed=11)
    return 0.5 + 0.5 * np.sin(2 * np.pi * (u + 2.0 * turbulence))


def grass_detail(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """High-frequency grass/foliage speckle."""
    return _fbm(np.asarray(u) * 6, np.asarray(v) * 6, octaves=3, seed=7)


TEXTURES: dict[str, TextureFn] = {
    "checker": checker,
    "stripes": stripes,
    "bricks": bricks,
    "marble": marble,
    "grass": grass_detail,
    "noise": lambda u, v: _fbm(u, v, octaves=3, seed=0),
}


@dataclass(frozen=True)
class DirectionalLight:
    """Single directional light with an ambient floor."""

    direction: tuple[float, float, float] = (-0.4, -1.0, -0.3)
    intensity: float = 1.0
    ambient: float = 0.35

    def unit_direction(self) -> np.ndarray:
        d = np.asarray(self.direction, dtype=np.float64)
        return d / np.linalg.norm(d)


@dataclass(frozen=True)
class Material:
    """Surface appearance: albedo, tinted procedural detail, LOD behaviour.

    ``lod_distance`` is the view distance at which the detail texture's
    contribution has fallen to half — the mipmap emulation that gives game
    frames their depth/detail correlation.
    """

    base_color: tuple[float, float, float] = (0.7, 0.7, 0.7)
    texture: str | TextureFn | None = None
    texture_scale: float = 4.0
    detail_strength: float = 0.5
    detail_tint: tuple[float, float, float] = (1.0, 1.0, 1.0)
    lod_distance: float = 25.0
    unlit: bool = False

    def _texture_fn(self) -> TextureFn | None:
        if self.texture is None:
            return None
        if callable(self.texture):
            return self.texture
        try:
            return TEXTURES[self.texture]
        except KeyError:
            raise ValueError(
                f"unknown texture {self.texture!r}; choose from {sorted(TEXTURES)}"
            ) from None

    def shade(
        self,
        uv: np.ndarray,
        normal: np.ndarray,
        view_distance: np.ndarray,
        light: DirectionalLight,
    ) -> np.ndarray:
        """Shade ``N`` fragments; returns (N, 3) linear colors in [0, 1].

        ``uv``: (N, 2) texture coordinates; ``normal``: (3,) face normal;
        ``view_distance``: (N,) distance from the camera in world units.
        """
        uv = np.asarray(uv, dtype=np.float64)
        n = len(uv)
        color = np.broadcast_to(
            np.asarray(self.base_color, dtype=np.float64), (n, 3)
        ).copy()

        texture_fn = self._texture_fn()
        if texture_fn is not None and self.detail_strength > 0:
            pattern = texture_fn(
                uv[:, 0] * self.texture_scale, uv[:, 1] * self.texture_scale
            )
            # Mipmap-style LOD: detail contribution halves at lod_distance.
            lod = 1.0 / (1.0 + np.asarray(view_distance) / self.lod_distance)
            modulation = (pattern - 0.5)[:, None] * self.detail_strength
            tint = np.asarray(self.detail_tint, dtype=np.float64)
            color = color * (1.0 + modulation * lod[:, None] * 2.0 * tint)

        if not self.unlit:
            lambert = max(0.0, float(-light.unit_direction() @ normal))
            shade_term = light.ambient + light.intensity * lambert * (1 - light.ambient)
            color = color * shade_term
        return np.clip(color, 0.0, 1.0)
