"""Software 3-D renderer producing (color, depth-buffer) game frames.

Substitutes the commercial-game + ReShade depth-capture setup of the paper
(DESIGN.md, "Substitutions"): everything downstream only needs frames with
matching depth buffers and motion, which this package generates.
"""

from .camera import Camera
from .games import GAME_TABLE, GameWorkload, all_games, build_game
from .mesh import Mesh, box, cone, cylinder, plane, sphere, terrain
from .rasterizer import RenderOutput, render, sky_gradient
from .scene import Scene, SceneObject
from .shading import DirectionalLight, Material

__all__ = [
    "Camera",
    "DirectionalLight",
    "GAME_TABLE",
    "GameWorkload",
    "Material",
    "Mesh",
    "RenderOutput",
    "Scene",
    "SceneObject",
    "all_games",
    "box",
    "build_game",
    "cone",
    "cylinder",
    "plane",
    "render",
    "sky_gradient",
    "sphere",
    "terrain",
]
