"""Perspective camera (the "player's viewpoint" of Sec. III-B)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .math3d import look_at, perspective

__all__ = ["Camera"]


@dataclass
class Camera:
    """A pinhole camera defined by pose and vertical field of view."""

    position: np.ndarray = field(default_factory=lambda: np.array([0.0, 1.6, 5.0]))
    target: np.ndarray = field(default_factory=lambda: np.zeros(3))
    up: np.ndarray = field(default_factory=lambda: np.array([0.0, 1.0, 0.0]))
    fov_y: float = np.deg2rad(60.0)
    near: float = 0.1
    far: float = 200.0

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=np.float64)
        self.target = np.asarray(self.target, dtype=np.float64)
        self.up = np.asarray(self.up, dtype=np.float64)

    def view_matrix(self) -> np.ndarray:
        return look_at(self.position, self.target, self.up)

    def projection_matrix(self, aspect: float) -> np.ndarray:
        return perspective(self.fov_y, aspect, self.near, self.far)

    def view_projection(self, width: int, height: int) -> np.ndarray:
        if width < 1 or height < 1:
            raise ValueError(f"invalid viewport {width}x{height}")
        return self.projection_matrix(width / height) @ self.view_matrix()

    def moved(self, position, target=None) -> "Camera":
        """A copy of this camera at a new pose (used for camera animation)."""
        return Camera(
            position=np.asarray(position, dtype=np.float64),
            target=self.target if target is None else np.asarray(target, dtype=np.float64),
            up=self.up.copy(),
            fov_y=self.fov_y,
            near=self.near,
            far=self.far,
        )
