"""Dependency-free image export (PPM/PGM) for rendered frames.

Lets users dump framebuffers and depth maps to disk without pillow or
matplotlib; every image viewer (and ImageMagick) reads the netpbm
formats.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

__all__ = ["save_ppm", "save_pgm", "load_ppm"]


def _to_u8(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image, dtype=np.float64)
    return np.clip(np.round(image * 255.0), 0, 255).astype(np.uint8)


def save_ppm(image: np.ndarray, path: str | os.PathLike) -> Path:
    """Write an (H, W, 3) image in [0, 1] as a binary PPM (P6)."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) image, got {image.shape}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    h, w = image.shape[:2]
    with path.open("wb") as fh:
        fh.write(f"P6\n{w} {h}\n255\n".encode())
        fh.write(_to_u8(image).tobytes())
    return path


def save_pgm(image: np.ndarray, path: str | os.PathLike) -> Path:
    """Write an (H, W) map in [0, 1] as a binary PGM (P5) — depth maps."""
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValueError(f"expected (H, W) map, got {image.shape}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    h, w = image.shape
    with path.open("wb") as fh:
        fh.write(f"P5\n{w} {h}\n255\n".encode())
        fh.write(_to_u8(image).tobytes())
    return path


def load_ppm(path: str | os.PathLike) -> np.ndarray:
    """Read a binary PPM (P6) back into an (H, W, 3) float image in [0, 1]."""
    data = Path(path).read_bytes()
    if not data.startswith(b"P6"):
        raise ValueError(f"{path}: not a binary PPM (P6) file")
    # Header: magic, width, height, maxval, then a single whitespace byte.
    fields: list[bytes] = []
    pos = 2
    while len(fields) < 3:
        while pos < len(data) and data[pos : pos + 1].isspace():
            pos += 1
        if data[pos : pos + 1] == b"#":  # comment line
            while data[pos : pos + 1] not in (b"\n", b""):
                pos += 1
            continue
        start = pos
        while pos < len(data) and not data[pos : pos + 1].isspace():
            pos += 1
        fields.append(data[start:pos])
    pos += 1  # the single whitespace after maxval
    w, h, maxval = (int(f) for f in fields)
    if maxval != 255:
        raise ValueError(f"{path}: only 8-bit PPMs are supported")
    pixels = np.frombuffer(data, dtype=np.uint8, count=h * w * 3, offset=pos)
    return pixels.reshape(h, w, 3).astype(np.float64) / 255.0
