"""Minimal 3-D math: vectors, 4x4 transforms, projection matrices.

Conventions: right-handed world space, column-vector matrices (points are
transformed as ``M @ [x, y, z, 1]^T``), OpenGL-style clip space with depth
mapped to [0, 1] after the viewport transform (0 = near plane, 1 = far) —
matching the Z-buffer the paper reads RoI data from (Sec. III-B).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "normalize",
    "translation",
    "scaling",
    "rotation_x",
    "rotation_y",
    "rotation_z",
    "look_at",
    "perspective",
    "transform_points",
    "compose",
]


def normalize(v: np.ndarray) -> np.ndarray:
    """Unit-normalize a vector; raises on (near-)zero input."""
    v = np.asarray(v, dtype=np.float64)
    norm = float(np.linalg.norm(v))
    if norm < 1e-12:
        raise ValueError("cannot normalize a zero-length vector")
    return v / norm


def translation(x: float, y: float, z: float) -> np.ndarray:
    m = np.eye(4)
    m[:3, 3] = (x, y, z)
    return m


def scaling(sx: float, sy: float | None = None, sz: float | None = None) -> np.ndarray:
    sy = sx if sy is None else sy
    sz = sx if sz is None else sz
    return np.diag([sx, sy, sz, 1.0])


def _rotation(axis: int, angle: float) -> np.ndarray:
    c, s = np.cos(angle), np.sin(angle)
    m = np.eye(4)
    i, j = [(1, 2), (0, 2), (0, 1)][axis]
    m[i, i] = c
    m[j, j] = c
    if axis == 1:  # y-axis uses the transposed sign pattern
        m[i, j] = s
        m[j, i] = -s
    else:
        m[i, j] = -s
        m[j, i] = s
    return m


def rotation_x(angle: float) -> np.ndarray:
    """Rotation about +X by ``angle`` radians."""
    return _rotation(0, angle)


def rotation_y(angle: float) -> np.ndarray:
    """Rotation about +Y by ``angle`` radians."""
    return _rotation(1, angle)


def rotation_z(angle: float) -> np.ndarray:
    """Rotation about +Z by ``angle`` radians."""
    return _rotation(2, angle)


def compose(*matrices: np.ndarray) -> np.ndarray:
    """Multiply transforms left-to-right (first argument applied last)."""
    out = np.eye(4)
    for m in matrices:
        out = out @ m
    return out


def look_at(eye: np.ndarray, target: np.ndarray, up=(0.0, 1.0, 0.0)) -> np.ndarray:
    """World->view matrix for a camera at ``eye`` looking at ``target``."""
    eye = np.asarray(eye, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    forward = normalize(target - eye)  # camera looks down -Z in view space
    up = np.asarray(up, dtype=np.float64)
    right = normalize(np.cross(forward, up))
    true_up = np.cross(right, forward)
    view = np.eye(4)
    view[0, :3] = right
    view[1, :3] = true_up
    view[2, :3] = -forward
    view[:3, 3] = -view[:3, :3] @ eye
    return view


def perspective(fov_y: float, aspect: float, near: float, far: float) -> np.ndarray:
    """Perspective projection (``fov_y`` radians, ``aspect`` = width/height)."""
    if near <= 0 or far <= near:
        raise ValueError(f"need 0 < near < far, got near={near}, far={far}")
    if not 0 < fov_y < np.pi:
        raise ValueError(f"fov_y must be in (0, pi), got {fov_y}")
    f = 1.0 / np.tan(fov_y / 2.0)
    m = np.zeros((4, 4))
    m[0, 0] = f / aspect
    m[1, 1] = f
    m[2, 2] = (far + near) / (near - far)
    m[2, 3] = 2 * far * near / (near - far)
    m[3, 2] = -1.0
    return m


def transform_points(matrix: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Apply a 4x4 ``matrix`` to (N, 3) ``points``; returns (N, 4) clip coords."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"expected (N, 3) points, got {points.shape}")
    homo = np.concatenate([points, np.ones((len(points), 1))], axis=1)
    return homo @ matrix.T
