"""Z-buffered triangle rasterizer — the GPU of our game-streaming server.

Implements the pipeline of paper Fig. 4 in software: vertex processing
(model-view-projection transform), primitive assembly, near-plane clipping,
rasterization with barycentric edge functions, perspective-correct
attribute interpolation, pixel shading, and — crucially for GameStreamSR —
a **depth buffer** output of the same resolution as the color buffer,
exactly what the server-side RoI detector consumes.

Depth convention: the returned ``depth`` buffer holds *linearized* view
distance normalized by the far plane, in [0, 1] with 0 at the camera and
1 at the far plane / background. (Hardware Z-buffers store a nonlinear
quantity; ReShade-style depth shaders — the tool the paper uses to capture
depth — linearize it before use, so we expose the linearized form
directly. It is what Fig. 5's grayscale depth map shows.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .camera import Camera
from .math3d import transform_points
from .mesh import Mesh
from .shading import DirectionalLight, Material

__all__ = ["RenderOutput", "render", "sky_gradient"]

#: Triangles whose doubled signed screen-space area is below this are
#: treated as degenerate (edge-on or collapsed) and skipped.
_DEGENERATE_TRIANGLE_AREA = 1e-12


@dataclass(frozen=True)
class RenderOutput:
    """One rendered frame: color framebuffer + depth buffer (Fig. 5)."""

    color: np.ndarray  # (H, W, 3) float in [0, 1]
    depth: np.ndarray  # (H, W) float in [0, 1]; 0 = near, 1 = far/background

    @property
    def resolution(self) -> tuple[int, int]:
        return self.color.shape[0], self.color.shape[1]


def sky_gradient(
    width: int,
    height: int,
    horizon=(0.75, 0.82, 0.92),
    zenith=(0.35, 0.55, 0.85),
) -> np.ndarray:
    """Vertical sky gradient used as the default background."""
    t = np.linspace(0.0, 1.0, height)[:, None, None]
    horizon = np.asarray(horizon, dtype=np.float64)
    zenith = np.asarray(zenith, dtype=np.float64)
    return np.broadcast_to(zenith * (1 - t) + horizon * t, (height, width, 3)).copy()


def _clip_near(
    positions: np.ndarray, uvs: np.ndarray, near_w: float
) -> tuple[np.ndarray, np.ndarray]:
    """Sutherland-Hodgman clip of one triangle against ``w >= near_w``.

    ``positions``: (3, 4) clip coordinates; ``uvs``: (3, 2). Returns the
    clipped polygon as ((K, 4), (K, 2)) with K in {0, 3, 4}.
    """
    out_pos: List[np.ndarray] = []
    out_uv: List[np.ndarray] = []
    for i in range(3):
        current_p, current_uv = positions[i], uvs[i]
        next_p, next_uv = positions[(i + 1) % 3], uvs[(i + 1) % 3]
        current_in = current_p[3] >= near_w
        next_in = next_p[3] >= near_w
        if current_in:
            out_pos.append(current_p)
            out_uv.append(current_uv)
        if current_in != next_in:
            t = (near_w - current_p[3]) / (next_p[3] - current_p[3])
            out_pos.append(current_p + t * (next_p - current_p))
            out_uv.append(current_uv + t * (next_uv - current_uv))
    if len(out_pos) < 3:
        return np.empty((0, 4)), np.empty((0, 2))
    return np.asarray(out_pos), np.asarray(out_uv)


def render(
    objects: Sequence[tuple[Mesh, Material]],
    camera: Camera,
    width: int,
    height: int,
    light: DirectionalLight | None = None,
    background: np.ndarray | tuple[float, float, float] | None = None,
) -> RenderOutput:
    """Render world-space ``(mesh, material)`` pairs to a framebuffer.

    Meshes must already be in world space (apply model transforms first via
    :meth:`Mesh.transformed`).
    """
    if width < 2 or height < 2:
        raise ValueError(f"viewport too small: {width}x{height}")
    light = light or DirectionalLight()

    if background is None:
        color = sky_gradient(width, height)
    elif isinstance(background, np.ndarray) and background.ndim == 3:
        if background.shape != (height, width, 3):
            raise ValueError(
                f"background shape {background.shape} != ({height}, {width}, 3)"
            )
        color = background.astype(np.float64).copy()
    else:
        color = np.broadcast_to(
            np.asarray(background, dtype=np.float64), (height, width, 3)
        ).copy()
    depth = np.ones((height, width), dtype=np.float64)

    mvp = camera.view_projection(width, height)
    for mesh, material in objects:
        _raster_mesh(mesh, material, mvp, camera, light, color, depth)

    return RenderOutput(color=color, depth=depth)


def _raster_triangle(
    positions: np.ndarray,  # (3, 4) clip coords, all w >= near_w
    uv_face: np.ndarray,  # (3, 2)
    normal: np.ndarray,
    material: Material,
    light: DirectionalLight,
    far: float,
    color: np.ndarray,
    depth: np.ndarray,
) -> None:
    height, width = depth.shape
    w_clip = positions[:, 3]
    ndc = positions[:, :3] / w_clip[:, None]
    xs = (ndc[:, 0] + 1.0) * 0.5 * (width - 1)
    ys = (1.0 - ndc[:, 1]) * 0.5 * (height - 1)
    inv_w = 1.0 / w_clip

    min_x = max(int(np.floor(xs.min())), 0)
    max_x = min(int(np.ceil(xs.max())), width - 1)
    min_y = max(int(np.floor(ys.min())), 0)
    max_y = min(int(np.ceil(ys.max())), height - 1)
    if min_x > max_x or min_y > max_y:
        return

    area = (xs[1] - xs[0]) * (ys[2] - ys[0]) - (xs[2] - xs[0]) * (ys[1] - ys[0])
    if abs(area) < _DEGENERATE_TRIANGLE_AREA:
        return
    px, py = np.meshgrid(
        np.arange(min_x, max_x + 1, dtype=np.float64),
        np.arange(min_y, max_y + 1, dtype=np.float64),
        indexing="xy",
    )
    w0 = ((xs[1] - px) * (ys[2] - py) - (xs[2] - px) * (ys[1] - py)) / area
    w1 = ((xs[2] - px) * (ys[0] - py) - (xs[0] - px) * (ys[2] - py)) / area
    w2 = 1.0 - w0 - w1
    inside = (w0 >= -1e-9) & (w1 >= -1e-9) & (w2 >= -1e-9)
    if not inside.any():
        return

    b0, b1, b2 = w0[inside], w1[inside], w2[inside]
    rows = py[inside].astype(np.intp)
    cols = px[inside].astype(np.intp)

    # Perspective-correct interpolation of 1/w gives the true view distance.
    one_over_w = b0 * inv_w[0] + b1 * inv_w[1] + b2 * inv_w[2]
    view_distance = 1.0 / one_over_w
    frag_depth = np.clip(view_distance / far, 0.0, 1.0)

    closer = frag_depth < depth[rows, cols]
    if not closer.any():
        return
    rows, cols = rows[closer], cols[closer]
    b0, b1, b2 = b0[closer], b1[closer], b2[closer]
    one_over_w = one_over_w[closer]
    frag_depth = frag_depth[closer]
    view_distance = view_distance[closer]

    uv = (
        b0[:, None] * uv_face[0] * inv_w[0]
        + b1[:, None] * uv_face[1] * inv_w[1]
        + b2[:, None] * uv_face[2] * inv_w[2]
    ) / one_over_w[:, None]

    shaded = material.shade(uv, normal, view_distance, light)
    depth[rows, cols] = frag_depth
    color[rows, cols] = shaded


def _raster_mesh(
    mesh: Mesh,
    material: Material,
    mvp: np.ndarray,
    camera: Camera,
    light: DirectionalLight,
    color: np.ndarray,
    depth: np.ndarray,
) -> None:
    clip = transform_points(mvp, mesh.vertices)  # (V, 4)
    near_w = camera.near
    normals = mesh.face_normals()

    for f_idx, face in enumerate(mesh.faces):
        positions = clip[face]
        uvs = mesh.uvs[face]
        if (positions[:, 3] < near_w).any():
            if (positions[:, 3] < near_w).all():
                continue
            poly_pos, poly_uv = _clip_near(positions, uvs, near_w)
            # Fan-triangulate the clipped polygon (3 or 4 vertices).
            for k in range(1, len(poly_pos) - 1):
                _raster_triangle(
                    poly_pos[[0, k, k + 1]],
                    poly_uv[[0, k, k + 1]],
                    normals[f_idx],
                    material,
                    light,
                    camera.far,
                    color,
                    depth,
                )
        else:
            _raster_triangle(
                positions,
                uvs,
                normals[f_idx],
                material,
                light,
                camera.far,
                color,
                depth,
            )
