"""Triangle meshes and primitive generators.

A :class:`Mesh` stores vertices, triangle indices, and per-vertex UV
coordinates (used by the procedural textures in :mod:`repro.render.shading`).
Primitives cover everything the ten synthetic game scenes need: boxes,
ground planes, UV spheres, cylinders, cones, and heightmap terrain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["Mesh", "box", "plane", "sphere", "cylinder", "cone", "terrain"]


@dataclass
class Mesh:
    """Indexed triangle mesh with per-vertex UVs."""

    vertices: np.ndarray  # (V, 3) float
    faces: np.ndarray  # (F, 3) int
    uvs: np.ndarray  # (V, 2) float

    def __post_init__(self) -> None:
        self.vertices = np.asarray(self.vertices, dtype=np.float64)
        self.faces = np.asarray(self.faces, dtype=np.intp)
        self.uvs = np.asarray(self.uvs, dtype=np.float64)
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 3:
            raise ValueError(f"vertices must be (V, 3), got {self.vertices.shape}")
        if self.faces.ndim != 2 or self.faces.shape[1] != 3:
            raise ValueError(f"faces must be (F, 3), got {self.faces.shape}")
        if self.uvs.shape != (len(self.vertices), 2):
            raise ValueError(
                f"uvs must be (V, 2) = ({len(self.vertices)}, 2), got {self.uvs.shape}"
            )
        if len(self.faces) and (
            self.faces.min() < 0 or self.faces.max() >= len(self.vertices)
        ):
            raise ValueError("face indices out of range")

    @property
    def n_triangles(self) -> int:
        return len(self.faces)

    def transformed(self, matrix: np.ndarray) -> "Mesh":
        """A copy with vertices transformed by a 4x4 ``matrix``."""
        homo = np.concatenate(
            [self.vertices, np.ones((len(self.vertices), 1))], axis=1
        )
        verts = (homo @ matrix.T)[:, :3]
        return Mesh(verts, self.faces.copy(), self.uvs.copy())

    def merged_with(self, other: "Mesh") -> "Mesh":
        """Concatenate two meshes into one."""
        offset = len(self.vertices)
        return Mesh(
            np.concatenate([self.vertices, other.vertices]),
            np.concatenate([self.faces, other.faces + offset]),
            np.concatenate([self.uvs, other.uvs]),
        )

    def face_normals(self) -> np.ndarray:
        """(F, 3) unit normals (degenerate faces get a +Y normal)."""
        tri = self.vertices[self.faces]
        normals = np.cross(tri[:, 1] - tri[:, 0], tri[:, 2] - tri[:, 0])
        lengths = np.linalg.norm(normals, axis=1, keepdims=True)
        bad = lengths[:, 0] < 1e-12
        normals[bad] = (0.0, 1.0, 0.0)
        lengths[bad] = 1.0
        return normals / lengths


def box(sx: float = 1.0, sy: float = 1.0, sz: float = 1.0) -> Mesh:
    """Axis-aligned box centred at the origin with the given extents."""
    hx, hy, hz = sx / 2, sy / 2, sz / 2
    # Each face gets its own 4 vertices so UVs are per-face.
    face_defs = [
        # (corner, edge_u, edge_v) per face
        ((-hx, -hy, hz), (sx, 0, 0), (0, sy, 0)),  # +Z
        ((hx, -hy, -hz), (-sx, 0, 0), (0, sy, 0)),  # -Z
        ((hx, -hy, hz), (0, 0, -sz), (0, sy, 0)),  # +X
        ((-hx, -hy, -hz), (0, 0, sz), (0, sy, 0)),  # -X
        ((-hx, hy, hz), (sx, 0, 0), (0, 0, -sz)),  # +Y
        ((-hx, -hy, -hz), (sx, 0, 0), (0, 0, sz)),  # -Y
    ]
    verts, faces, uvs = [], [], []
    for corner, eu, ev in face_defs:
        base = len(verts)
        c = np.array(corner)
        eu = np.array(eu)
        ev = np.array(ev)
        verts.extend([c, c + eu, c + eu + ev, c + ev])
        uvs.extend([(0, 0), (1, 0), (1, 1), (0, 1)])
        faces.extend([(base, base + 1, base + 2), (base, base + 2, base + 3)])
    return Mesh(np.array(verts), np.array(faces), np.array(uvs, dtype=np.float64))


def plane(size_x: float = 1.0, size_z: float = 1.0, divisions: int = 1) -> Mesh:
    """Horizontal (XZ) plane at y=0, subdivided ``divisions`` times per axis."""
    if divisions < 1:
        raise ValueError(f"divisions must be >= 1, got {divisions}")
    n = divisions + 1
    xs = np.linspace(-size_x / 2, size_x / 2, n)
    zs = np.linspace(-size_z / 2, size_z / 2, n)
    gx, gz = np.meshgrid(xs, zs, indexing="xy")
    verts = np.stack([gx.ravel(), np.zeros(n * n), gz.ravel()], axis=1)
    us, vs = np.meshgrid(np.linspace(0, 1, n), np.linspace(0, 1, n), indexing="xy")
    uvs = np.stack([us.ravel(), vs.ravel()], axis=1)
    faces = []
    for row in range(divisions):
        for col in range(divisions):
            i = row * n + col
            faces.append((i, i + 1, i + n + 1))
            faces.append((i, i + n + 1, i + n))
    return Mesh(verts, np.array(faces), uvs)


def sphere(radius: float = 1.0, segments: int = 12, rings: int = 8) -> Mesh:
    """UV sphere centred at the origin."""
    if segments < 3 or rings < 2:
        raise ValueError("sphere needs >= 3 segments and >= 2 rings")
    verts, uvs = [], []
    for ring in range(rings + 1):
        phi = np.pi * ring / rings
        for seg in range(segments + 1):
            theta = 2 * np.pi * seg / segments
            verts.append(
                (
                    radius * np.sin(phi) * np.cos(theta),
                    radius * np.cos(phi),
                    radius * np.sin(phi) * np.sin(theta),
                )
            )
            uvs.append((seg / segments, ring / rings))
    faces = []
    stride = segments + 1
    for ring in range(rings):
        for seg in range(segments):
            a = ring * stride + seg
            b = a + stride
            faces.append((a, b, a + 1))
            faces.append((a + 1, b, b + 1))
    return Mesh(np.array(verts), np.array(faces), np.array(uvs))


def cylinder(radius: float = 0.5, height: float = 1.0, segments: int = 10) -> Mesh:
    """Closed cylinder along +Y, base at y=0."""
    if segments < 3:
        raise ValueError("cylinder needs >= 3 segments")
    verts, uvs, faces = [], [], []
    for level, y in enumerate((0.0, height)):
        for seg in range(segments + 1):
            theta = 2 * np.pi * seg / segments
            verts.append((radius * np.cos(theta), y, radius * np.sin(theta)))
            uvs.append((seg / segments, float(level)))
    stride = segments + 1
    for seg in range(segments):
        a, b = seg, seg + stride
        faces.append((a, a + 1, b + 1))
        faces.append((a, b + 1, b))
    # Caps.
    for level, y in enumerate((0.0, height)):
        centre = len(verts)
        verts.append((0.0, y, 0.0))
        uvs.append((0.5, 0.5))
        base = level * stride
        for seg in range(segments):
            tri = (centre, base + seg, base + seg + 1)
            faces.append(tri if level == 0 else tri[::-1])
    return Mesh(np.array(verts), np.array(faces), np.array(uvs))


def cone(radius: float = 0.5, height: float = 1.0, segments: int = 10) -> Mesh:
    """Cone along +Y with apex at ``height``, base at y=0."""
    if segments < 3:
        raise ValueError("cone needs >= 3 segments")
    verts, uvs, faces = [], [], []
    for seg in range(segments + 1):
        theta = 2 * np.pi * seg / segments
        verts.append((radius * np.cos(theta), 0.0, radius * np.sin(theta)))
        uvs.append((seg / segments, 0.0))
    apex = len(verts)
    verts.append((0.0, height, 0.0))
    uvs.append((0.5, 1.0))
    centre = len(verts)
    verts.append((0.0, 0.0, 0.0))
    uvs.append((0.5, 0.5))
    for seg in range(segments):
        faces.append((seg, apex, seg + 1))
        faces.append((centre, seg, seg + 1))
    return Mesh(np.array(verts), np.array(faces), np.array(uvs))


def terrain(
    size: float,
    divisions: int,
    height_fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
) -> Mesh:
    """Heightmapped XZ grid; ``height_fn(x, z)`` returns vertex heights."""
    base = plane(size, size, divisions)
    xs = base.vertices[:, 0]
    zs = base.vertices[:, 2]
    heights = np.asarray(height_fn(xs, zs), dtype=np.float64)
    if heights.shape != xs.shape:
        raise ValueError(
            f"height_fn returned shape {heights.shape}, expected {xs.shape}"
        )
    verts = base.vertices.copy()
    verts[:, 1] = heights
    return Mesh(verts, base.faces, base.uvs)
