"""Scene graph with animation — the "game engine" state evaluator.

In the paper's pipeline (Fig. 1a, step-1) the game engine evaluates the
next world state from user input, then issues draw calls. Here a
:class:`Scene` owns static and animated objects plus a camera path; calling
:meth:`Scene.render_frame` with a time (or frame index) plays that role and
returns a (color, depth) pair from the rasterizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .camera import Camera
from .mesh import Mesh
from .rasterizer import RenderOutput, render
from .shading import DirectionalLight, Material

__all__ = ["SceneObject", "Scene", "TransformFn", "CameraFn"]

TransformFn = Callable[[float], np.ndarray]
CameraFn = Callable[[float], Camera]


@dataclass
class SceneObject:
    """A mesh + material, optionally animated by a time->matrix function."""

    mesh: Mesh
    material: Material
    transform: Optional[np.ndarray] = None
    animator: Optional[TransformFn] = None

    def world_mesh(self, t: float) -> Mesh:
        matrix = self.animator(t) if self.animator is not None else self.transform
        if matrix is None:
            return self.mesh
        return self.mesh.transformed(matrix)


@dataclass
class Scene:
    """A renderable, animatable world."""

    name: str
    objects: List[SceneObject] = field(default_factory=list)
    light: DirectionalLight = field(default_factory=DirectionalLight)
    camera: Camera = field(default_factory=Camera)
    camera_animator: Optional[CameraFn] = None
    background: Optional[np.ndarray | tuple] = None

    def add(
        self,
        mesh: Mesh,
        material: Material,
        transform: Optional[np.ndarray] = None,
        animator: Optional[TransformFn] = None,
    ) -> "Scene":
        self.objects.append(SceneObject(mesh, material, transform, animator))
        return self

    def camera_at(self, t: float) -> Camera:
        return self.camera_animator(t) if self.camera_animator else self.camera

    def n_triangles(self) -> int:
        return sum(obj.mesh.n_triangles for obj in self.objects)

    def render_frame(self, t: float, width: int, height: int) -> RenderOutput:
        """Render the scene state at time ``t`` (seconds)."""
        world = [(obj.world_mesh(t), obj.material) for obj in self.objects]
        return render(
            world,
            self.camera_at(t),
            width,
            height,
            light=self.light,
            background=self.background,
        )
