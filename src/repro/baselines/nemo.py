"""NEMO-style non-reference frame reconstruction (Yeo et al. 2020).

The SOTA baseline upscales only reference frames with the DNN; every
non-reference frame is rebuilt at high resolution from (a) the cached
upscaled reference, (b) the codec's motion vectors scaled to HR, and
(c) the bilinearly upscaled decoded residual. This module holds the pure
reconstruction function shared by :class:`repro.streaming.NemoClient`
and the tests.
"""

from __future__ import annotations

import numpy as np

from ..codec.motion import compensate, upscale_motion_vectors
from ..sr.interpolate import bilinear

__all__ = ["reconstruct_nonreference"]


def reconstruct_nonreference(
    hr_reference: np.ndarray,
    motion_vectors: np.ndarray,
    residual_rgb: np.ndarray,
    scale: int,
    block: int,
) -> np.ndarray:
    """NEMO HR reconstruction: warp(HR ref, s*MV) + bilinear-up(residual).

    ``block`` is the codec's LR block size; the HR warp uses
    ``block * scale`` blocks with ``scale``-multiplied displacements.
    """
    hr_reference = np.asarray(hr_reference, dtype=np.float64)
    residual_rgb = np.asarray(residual_rgb, dtype=np.float64)
    if hr_reference.ndim != 3 or hr_reference.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) HR reference, got {hr_reference.shape}")
    h_hr, w_hr = hr_reference.shape[:2]
    if residual_rgb.shape[:2] != (h_hr // scale, w_hr // scale):
        raise ValueError(
            f"residual {residual_rgb.shape[:2]} does not match HR/scale "
            f"({h_hr // scale}, {w_hr // scale})"
        )
    mv_hr = upscale_motion_vectors(motion_vectors, scale)
    prediction = np.stack(
        [compensate(hr_reference[..., c], mv_hr, block * scale) for c in range(3)],
        axis=-1,
    )
    residual_hr = bilinear(residual_rgb, h_hr, w_hr)
    return np.clip(prediction + residual_hr, 0.0, 1.0)
