"""Baseline designs the paper compares against.

The client classes live in :mod:`repro.streaming.client` (they share the
session machinery); this package re-exports them and hosts the pure NEMO
reconstruction math.
"""

from ..streaming.client import BilinearClient, FullFrameSRClient, NemoClient
from .nemo import reconstruct_nonreference

__all__ = [
    "BilinearClient",
    "FullFrameSRClient",
    "NemoClient",
    "reconstruct_nonreference",
]
