"""Super-resolution: classical filters, neural runners, in-repo training."""

from .gop_reuse import (
    REUSE_DIRTY_THRESHOLD,
    GOPSRCache,
    composite_blocks,
    dirty_block_mask,
    warp_hr,
)
from .interpolate import FILTERS, bicubic, bilinear, lanczos, nearest, resize, upscale
from .pretrained import PROFILES, default_sr_model, model_geometry, training_frames
from .runner import SRRunner
from .training import PatchDataset, TrainReport, extract_patches, train_sr_model

__all__ = [
    "FILTERS",
    "GOPSRCache",
    "PROFILES",
    "PatchDataset",
    "REUSE_DIRTY_THRESHOLD",
    "SRRunner",
    "TrainReport",
    "bicubic",
    "bilinear",
    "composite_blocks",
    "dirty_block_mask",
    "default_sr_model",
    "extract_patches",
    "lanczos",
    "model_geometry",
    "nearest",
    "resize",
    "training_frames",
    "train_sr_model",
    "upscale",
    "warp_hr",
]
