"""Super-resolution: classical filters, neural runners, in-repo training."""

from .interpolate import FILTERS, bicubic, bilinear, lanczos, nearest, resize, upscale
from .pretrained import PROFILES, default_sr_model, model_geometry, training_frames
from .runner import SRRunner
from .training import PatchDataset, TrainReport, extract_patches, train_sr_model

__all__ = [
    "FILTERS",
    "PROFILES",
    "PatchDataset",
    "SRRunner",
    "TrainReport",
    "bicubic",
    "bilinear",
    "default_sr_model",
    "extract_patches",
    "lanczos",
    "model_geometry",
    "nearest",
    "resize",
    "training_frames",
    "train_sr_model",
    "upscale",
]
