"""Super-resolution: classical filters, neural runners, in-repo training."""

from .backends import (
    InterpBackend,
    NeuralBackend,
    SRBackend,
    available_backends,
    build_backend,
)
from .dispatch import DifficultyDispatcher, DispatchPlan, tile_difficulty
from .gop_reuse import (
    REUSE_DIRTY_THRESHOLD,
    GOPSRCache,
    composite_blocks,
    dirty_block_mask,
    warp_hr,
)
from .interpolate import FILTERS, bicubic, bilinear, lanczos, nearest, resize, upscale
from .pretrained import (
    PROFILES,
    ZOO_ARCHS,
    default_sr_model,
    model_geometry,
    training_frames,
    zoo_sr_model,
)
from .runner import SRRunner
from .training import PatchDataset, TrainReport, extract_patches, train_sr_model

__all__ = [
    "DifficultyDispatcher",
    "DispatchPlan",
    "FILTERS",
    "GOPSRCache",
    "InterpBackend",
    "NeuralBackend",
    "PROFILES",
    "PatchDataset",
    "REUSE_DIRTY_THRESHOLD",
    "SRBackend",
    "SRRunner",
    "TrainReport",
    "ZOO_ARCHS",
    "available_backends",
    "bicubic",
    "bilinear",
    "build_backend",
    "composite_blocks",
    "dirty_block_mask",
    "default_sr_model",
    "extract_patches",
    "lanczos",
    "model_geometry",
    "nearest",
    "resize",
    "tile_difficulty",
    "training_frames",
    "train_sr_model",
    "upscale",
    "warp_hr",
    "zoo_sr_model",
]
