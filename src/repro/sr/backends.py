"""First-class SR execution backends: the model zoo behind dispatch.

The paper runs exactly one EDSR on one NPU. The related work (MobiSR,
NAWQ-SR, QuickSRNet) shows the mobile win comes from *choosing* the
engine per patch — which needs SR execution abstracted behind a uniform
interface. :class:`SRBackend` is that interface: a named upscaler with a
modeled latency/energy footprint on a
:class:`~repro.platform.device.DeviceProfile`, executable on whole
patches (:meth:`~SRBackend.upscale`, duck-compatible with
:class:`~repro.core.upscaler.RoIAssistedUpscaler`) or batched equal-size
tiles (:meth:`~SRBackend.upscale_batch`, the seam
:mod:`repro.sr.dispatch` routes through).

Two families:

* :class:`NeuralBackend` — an :class:`~repro.sr.runner.SRRunner` on the
  modeled NPU. Latency rides the device's calibrated EDSR anchor curve
  scaled by a per-model ``DeviceProfile`` field (EDSR itself uses scale
  1.0, so the default backend reproduces
  :func:`~repro.platform.latency.npu_sr_latency_ms` bit-for-bit); an
  optional power-scale field derates the energy charge (int8 datapaths
  draw less per ms, NAWQ-SR Sec. 5).
* :class:`InterpBackend` — classical filters on the GPU (hardware
  bilinear) or CPU (software bicubic), with the platform model's
  existing latency anchors and no weights.

``build_backend(name)`` materializes a zoo member by name; neural
members load deterministic in-repo weights via
:func:`repro.sr.pretrained.zoo_sr_model`.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Optional

import numpy as np

from ..platform.device import DeviceProfile
from ..platform.energy import Component
from ..platform.latency import (
    cpu_bicubic_ms,
    gpu_bilinear_ms,
    npu_sr_latency_ms,
)
from .interpolate import bicubic, bilinear
from .runner import SRRunner

__all__ = [
    "SRBackend",
    "NeuralBackend",
    "InterpBackend",
    "available_backends",
    "build_backend",
]


class SRBackend(abc.ABC):
    """A named SR executor with a modeled platform footprint.

    Attributes
    ----------
    name:
        Zoo identifier (``"edsr"``, ``"quicksrnet"``, ...).
    scale:
        Integer upscale factor.
    engine:
        Which modeled processor executes it: ``"npu"``, ``"gpu"`` or
        ``"cpu"``. The dispatcher sums latency per engine and runs
        engines concurrently (they are distinct silicon blocks).
    component:
        The :class:`~repro.platform.energy.Component` the energy charge
        lands on.
    quality_rank:
        Relative output quality, lower is better — the dispatcher's
        preference order when the budget allows.
    """

    name: str
    scale: int
    engine: str
    component: Component
    quality_rank: int

    @abc.abstractmethod
    def upscale(self, image: np.ndarray) -> np.ndarray:
        """Upscale one (H, W, C) image in [0, 1] to (H*s, W*s, C)."""

    @abc.abstractmethod
    def upscale_batch(self, tiles: np.ndarray) -> np.ndarray:
        """Upscale an (N, h, w, C) tile stack to (N, h*s, w*s, C)."""

    @abc.abstractmethod
    def latency_ms(self, lr_pixels: float, device: DeviceProfile) -> float:
        """Modeled latency for one batched invocation over ``lr_pixels``."""

    def energy_charged_ms(
        self, latency_ms: float, device: DeviceProfile
    ) -> float:
        """Milliseconds to charge at ``component``'s power draw.

        Defaults to the latency itself; backends on derated datapaths
        (int8) override the effective draw by scaling the charged time.
        """
        return latency_ms

    def describe(self) -> str:
        return f"{self.name} (x{self.scale}, {self.engine})"


class NeuralBackend(SRBackend):
    """An :class:`SRRunner` executing on the modeled NPU.

    ``latency_scale_field`` / ``power_scale_field`` name defaulted
    :class:`DeviceProfile` fields so per-device calibration flows
    through ``device.with_overrides(...)`` like every other anchor;
    ``None`` means 1.0 (the EDSR reference point).
    """

    engine = "npu"
    component = Component.NPU

    def __init__(
        self,
        name: str,
        runner: SRRunner,
        quality_rank: int,
        latency_scale_field: Optional[str] = None,
        power_scale_field: Optional[str] = None,
    ) -> None:
        self.name = name
        self.runner = runner
        self.scale = runner.scale
        self.quality_rank = quality_rank
        self._latency_scale_field = latency_scale_field
        self._power_scale_field = power_scale_field

    def _field(self, device: DeviceProfile, field: Optional[str]) -> float:
        return 1.0 if field is None else float(getattr(device, field))

    def upscale(self, image: np.ndarray) -> np.ndarray:
        return self.runner.upscale(image)

    def upscale_batch(self, tiles: np.ndarray) -> np.ndarray:
        return self.runner.upscale_batch(tiles)

    def latency_ms(self, lr_pixels: float, device: DeviceProfile) -> float:
        scale = self._field(device, self._latency_scale_field)
        if scale == 1.0:
            # Exactly the reference call, not a float multiply by 1.0 —
            # the default-path byte-identity guarantee rests on this.
            return npu_sr_latency_ms(lr_pixels, device)
        return npu_sr_latency_ms(lr_pixels, device) * scale

    def energy_charged_ms(
        self, latency_ms: float, device: DeviceProfile
    ) -> float:
        return latency_ms * self._field(device, self._power_scale_field)


class InterpBackend(SRBackend):
    """A classical interpolation filter with a platform latency anchor."""

    def __init__(
        self,
        name: str,
        scale: int,
        filter_fn: Callable[[np.ndarray, int, int], np.ndarray],
        engine: str,
        component: Component,
        latency_fn: Callable[[float, DeviceProfile], float],
        quality_rank: int,
    ) -> None:
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        self.name = name
        self.scale = scale
        self.engine = engine
        self.component = component
        self.quality_rank = quality_rank
        self._filter = filter_fn
        self._latency_fn = latency_fn

    def upscale(self, image: np.ndarray) -> np.ndarray:
        h, w = image.shape[:2]
        return self._filter(image, h * self.scale, w * self.scale)

    def upscale_batch(self, tiles: np.ndarray) -> np.ndarray:
        n, h, w = tiles.shape[:3]
        s = self.scale
        if n == 0:
            return np.empty(
                (0, h * s, w * s) + tiles.shape[3:], dtype=tiles.dtype
            )
        return np.stack([self._filter(t, h * s, w * s) for t in tiles])

    def latency_ms(self, lr_pixels: float, device: DeviceProfile) -> float:
        return self._latency_fn(lr_pixels, device)


#: name -> (quality_rank, latency_scale_field, power_scale_field) for the
#: neural members; interpolation members are constructed inline below.
_NEURAL_SPECS: Dict[str, tuple] = {
    "edsr": (0, None, None),
    "edsr_int8": (1, "edsr_int8_npu_latency_scale", "edsr_int8_npu_power_scale"),
    "fsrcnn": (2, "fsrcnn_npu_latency_scale", None),
    "quicksrnet": (3, "quicksrnet_npu_latency_scale", None),
}


def available_backends() -> tuple:
    """All zoo member names, best quality first."""
    return tuple(_NEURAL_SPECS) + ("bicubic_cpu", "bilinear_gpu")


def build_backend(
    name: str,
    scale: int = 2,
    profile: str = "experiment",
    runner: Optional[SRRunner] = None,
) -> SRBackend:
    """Materialize a zoo backend by name.

    Neural members train-or-load their deterministic in-repo weights
    (``profile`` selects the shared geometry table); pass ``runner`` to
    reuse an already-built :class:`SRRunner` instead (its scale must
    match — the EDSR default path does this so the backend wraps the
    session's existing model object).
    """
    if name in _NEURAL_SPECS:
        rank, lat_field, pow_field = _NEURAL_SPECS[name]
        if runner is None:
            from .pretrained import zoo_sr_model  # deferred: training import

            runner = SRRunner(zoo_sr_model(name, scale=scale, profile=profile))
        if runner.scale != scale:
            raise ValueError(
                f"runner scale {runner.scale} != requested scale {scale}"
            )
        return NeuralBackend(
            name,
            runner,
            quality_rank=rank,
            latency_scale_field=lat_field,
            power_scale_field=pow_field,
        )
    if name == "bilinear_gpu":
        return InterpBackend(
            "bilinear_gpu",
            scale,
            bilinear,
            engine="gpu",
            component=Component.GPU,
            latency_fn=gpu_bilinear_ms,
            quality_rank=5,
        )
    if name == "bicubic_cpu":
        return InterpBackend(
            "bicubic_cpu",
            scale,
            bicubic,
            engine="cpu",
            component=Component.CPU,
            latency_fn=cpu_bicubic_ms,
            quality_rank=4,
        )
    raise ValueError(
        f"unknown SR backend {name!r}; choose from {available_backends()}"
    )
