"""Deterministic in-repo "pretrained" SR models.

The paper deploys an EDSR trained offline; with no network access we
train deterministically on rendered game frames at first use and cache
the weights under ``.cache/weights/``. Two profiles:

* ``"experiment"`` — a width/depth-reduced EDSR used by the quality
  experiments (pure-numpy inference over whole sequences must stay
  tractable; see DESIGN.md scale notes);
* ``"paper"`` — the paper's full 16-block/64-channel geometry, exercised
  by unit tests and available to users with patience.
"""

from __future__ import annotations

import logging
import zipfile
from pathlib import Path
from typing import Sequence

import numpy as np

from ..cache import cache_dir
from ..neural.layers import Module
from ..neural.models import EDSR, FSRCNNLite, QuantizedEDSR, QuickSRNet
from ..neural.serialization import load_weights, save_weights
from .training import extract_patches, train_sr_model

__all__ = [
    "model_geometry",
    "default_sr_model",
    "zoo_sr_model",
    "training_frames",
    "PROFILES",
    "ZOO_ARCHS",
    "DEFAULT_TRAIN_CODEC_QUALITY",
]

_logger = logging.getLogger(__name__)

PROFILES = {
    # profile: (n_resblocks, n_feats, epochs, per_frame_patches)
    "experiment": (3, 20, 25, 40),
    "tiny": (1, 8, 4, 10),
    "paper": (16, 64, 2, 8),
}

#: Codec quality the deployed stream uses; training matches it
#: (see repro.sr.training.extract_patches).
DEFAULT_TRAIN_CODEC_QUALITY = 70


def model_geometry(profile: str) -> tuple[int, int]:
    """(n_resblocks, n_feats) for a named profile."""
    try:
        blocks, feats, _, _ = PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown profile {profile!r}; choose from {sorted(PROFILES)}"
        ) from None
    return blocks, feats


def training_frames(
    height: int = 256, width: int = 448, game_ids: Sequence[str] = ("G1", "G3", "G5", "G7"),
    frames_per_game: int = 2,
) -> list[np.ndarray]:
    """Render the HR frames the default models train on."""
    from ..render.games import build_game  # deferred: keep import cost lazy

    frames = []
    for game_id in game_ids:
        game = build_game(game_id)
        for i in range(frames_per_game):
            frames.append(game.render_frame(i * 7, width, height).color)
    return frames


def _load_or_train(
    model: Module,
    path: Path,
    scale: int,
    epochs: int,
    per_frame: int,
    force_retrain: bool,
) -> Module:
    """Shared cache-or-train path for every zoo architecture."""
    if path.exists() and not force_retrain:
        try:
            return load_weights(model, path)
        except (zipfile.BadZipFile, OSError, KeyError, ValueError) as exc:
            # A truncated/garbled checkpoint (e.g. from an interrupted
            # run) must not brick the whole suite: drop it and retrain.
            _logger.warning(
                "corrupt weights cache %s (%s: %s); retraining",
                path, type(exc).__name__, exc,
            )
            path.unlink(missing_ok=True)

    frames = training_frames()
    dataset = extract_patches(
        frames,
        scale=scale,
        patch_lr=20,
        per_frame=per_frame,
        seed=11,
        codec_quality=DEFAULT_TRAIN_CODEC_QUALITY,
    )
    train_sr_model(model, dataset, epochs=epochs, batch_size=8, lr=1.2e-3, seed=3)
    save_weights(model, path)
    return model


def default_sr_model(
    scale: int = 2, profile: str = "experiment", force_retrain: bool = False
) -> EDSR:
    """Load (or train-and-cache) the default EDSR for ``scale``/``profile``."""
    blocks, feats, epochs, per_frame = PROFILES.get(profile, (None,) * 4)
    if blocks is None:
        raise ValueError(
            f"unknown profile {profile!r}; choose from {sorted(PROFILES)}"
        )
    model = EDSR(scale=scale, n_resblocks=blocks, n_feats=feats, seed=7)
    path = cache_dir() / "weights" / f"edsr_{profile}_x{scale}.npz"
    return _load_or_train(model, path, scale, epochs, per_frame, force_retrain)


#: Architectures :func:`zoo_sr_model` can build (neural zoo members; the
#: interpolation backends in repro.sr.backends need no weights).
ZOO_ARCHS = ("edsr", "edsr_int8", "fsrcnn", "quicksrnet")


def zoo_sr_model(
    arch: str = "edsr",
    scale: int = 2,
    profile: str = "experiment",
    force_retrain: bool = False,
) -> Module:
    """Load (or train-and-cache) a model-zoo architecture.

    Geometry derives from the shared ``PROFILES`` table so every zoo
    member shrinks together under the test/experiment profiles:

    * ``edsr`` — the default model (same cache file as
      :func:`default_sr_model`);
    * ``edsr_int8`` — the trained EDSR weights loaded into a
      :class:`~repro.neural.models.QuantizedEDSR` and fake-quantized
      (no separate cache: quantization is deterministic post-processing);
    * ``fsrcnn`` — :class:`~repro.neural.models.FSRCNNLite`;
    * ``quicksrnet`` — :class:`~repro.neural.models.QuickSRNet`.
    """
    blocks, feats, epochs, per_frame = PROFILES.get(profile, (None,) * 4)
    if blocks is None:
        raise ValueError(
            f"unknown profile {profile!r}; choose from {sorted(PROFILES)}"
        )
    if arch == "edsr":
        return default_sr_model(scale, profile, force_retrain)
    if arch == "edsr_int8":
        trained = default_sr_model(scale, profile, force_retrain)
        model = QuantizedEDSR(scale=scale, n_resblocks=blocks, n_feats=feats, seed=7)
        model.load_state_dict(trained.state_dict())
        return model.quantize()
    if arch == "fsrcnn":
        model = FSRCNNLite(
            scale=scale,
            feats=feats,
            shrink=max(4, feats // 2),
            n_maps=blocks,
            seed=7,
        )
    elif arch == "quicksrnet":
        model = QuickSRNet(scale=scale, n_convs=blocks, feats=feats, seed=7)
    else:
        raise ValueError(
            f"unknown zoo architecture {arch!r}; choose from {ZOO_ARCHS}"
        )
    path = cache_dir() / "weights" / f"{arch}_{profile}_x{scale}.npz"
    return _load_or_train(model, path, scale, epochs, per_frame, force_retrain)
